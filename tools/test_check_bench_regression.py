#!/usr/bin/env python3
"""Tests for tools/check_bench_regression.py — the CI perf/quality gate.

The gate decides whether CI goes red, so it needs its own suite: baseline
matching across trajectory vs flat files, the missing-`threads` default
(pre-PR3 records are single-thread), --min-scaling, config mismatch, and
the quality mode added for the fig11/ablation/roi trend gating.

Written as stdlib unittest so it runs anywhere Python runs; pytest
collects unittest classes, so CI runs it via `pytest tools` and local
ctest runs it via `python3 -m unittest discover -s tools`.
"""

import importlib.util
import json
import os
import sys
import tempfile
import unittest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 "check_bench_regression.py"))
cbr = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(cbr)


def record(codec, stage, mb_per_s, threads=None, **extra):
    r = {"codec": codec, "stage": stage, "mb_per_s": mb_per_s}
    if threads is not None:
        r["threads"] = threads
    r.update(extra)
    return r


CONFIG = {"stage": "config", "field": "warpx_like_ez", "nx": 64, "ny": 64,
          "nz": 128, "threads": 1}


class GateHarness(unittest.TestCase):
    """Writes temp JSON files and runs main() with a patched argv."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def write(self, name, doc):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def run_gate(self, baseline, current, *flags):
        argv = sys.argv
        sys.argv = ["check_bench_regression.py", baseline, current,
                    *flags]
        try:
            return cbr.main()
        finally:
            sys.argv = argv

    def flat(self, records):
        return {"bench": "throughput", "records": records}

    def trajectory(self, *entries):
        return {"bench": "throughput",
                "trajectory": [{"rev": f"r{i}", "records": rs}
                               for i, rs in enumerate(entries)]}


class RecordsOfTest(unittest.TestCase):
    def test_flat_doc(self):
        records, rev = cbr.records_of({"bench": "b", "records": [{"a": 1}]})
        self.assertEqual(records, [{"a": 1}])
        self.assertEqual(rev, "b")

    def test_trajectory_uses_last_entry(self):
        doc = {"trajectory": [
            {"rev": "old", "records": [{"v": 1}]},
            {"rev": "new", "records": [{"v": 2}]}]}
        records, rev = cbr.records_of(doc)
        self.assertEqual(records, [{"v": 2}])
        self.assertEqual(rev, "new")

    def test_lane_selects_alternate_trajectory(self):
        doc = {"trajectory": [{"rev": "default", "records": [{"v": 1}]}],
               "trajectory_full": [
                   {"rev": "full-old", "records": [{"v": 10}]},
                   {"rev": "full-new", "records": [{"v": 20}]}]}
        records, rev = cbr.records_of(doc, "trajectory_full")
        self.assertEqual(records, [{"v": 20}])
        self.assertEqual(rev, "full-new")

    def test_missing_lane_falls_back_to_flat(self):
        # A bench --json output has no trajectory lanes at all; any lane
        # name degrades to the flat records list.
        doc = {"bench": "b", "records": [{"a": 1}]}
        records, rev = cbr.records_of(doc, "trajectory_full")
        self.assertEqual(records, [{"a": 1}])
        self.assertEqual(rev, "b")

    def test_missing_threads_defaults_to_one(self):
        # Pre-PR3 baselines carry no threads field; they must keep
        # matching the single-thread gate.
        self.assertEqual(cbr.threads_of({"codec": "sz-lr"}), 1)
        self.assertEqual(cbr.threads_of({"threads": 4}), 4)

    def test_find_matches_on_codec_stage_threads(self):
        records = [record("sz-lr", "compress", 100.0),
                   record("sz-lr", "compress", 400.0, threads=4)]
        self.assertEqual(cbr.find(records, "sz-lr", "compress"), 100.0)
        self.assertEqual(
            cbr.find(records, "sz-lr", "compress", threads=4), 400.0)
        self.assertIsNone(cbr.find(records, "sz-lr", "decompress"))


class ThroughputGateTest(GateHarness):
    def test_within_tolerance_passes(self):
        base = self.write("b.json", self.flat(
            [CONFIG, record("sz-lr", "compress", 100.0, threads=1)]))
        cur = self.write("c.json", self.flat(
            [CONFIG, record("sz-lr", "compress", 90.0, threads=1)]))
        self.assertEqual(self.run_gate(base, cur), 0)

    def test_regression_fails(self):
        base = self.write("b.json", self.flat(
            [CONFIG, record("sz-lr", "compress", 100.0, threads=1)]))
        cur = self.write("c.json", self.flat(
            [CONFIG, record("sz-lr", "compress", 50.0, threads=1)]))
        self.assertEqual(self.run_gate(base, cur), 1)

    def test_missing_threads_baseline_still_gates(self):
        # A pre-PR3 baseline (no threads field) must gate a current run
        # whose records carry threads=1.
        base = self.write("b.json", self.trajectory(
            [CONFIG, record("sz-lr", "compress", 100.0)]))
        cur = self.write("c.json", self.flat(
            [CONFIG, record("sz-lr", "compress", 50.0, threads=1)]))
        self.assertEqual(self.run_gate(base, cur), 1)

    def test_multithread_records_do_not_alias_the_gate(self):
        # A fast 4-thread record must not mask a 1-thread regression.
        base = self.write("b.json", self.flat(
            [CONFIG, record("sz-lr", "compress", 100.0, threads=1)]))
        cur = self.write("c.json", self.flat(
            [CONFIG, record("sz-lr", "compress", 50.0, threads=1),
             record("sz-lr", "compress", 400.0, threads=4)]))
        self.assertEqual(self.run_gate(base, cur), 1)

    def test_missing_gated_metric_is_structural_failure(self):
        base = self.write("b.json", self.flat(
            [CONFIG, record("sz-lr", "compress", 100.0, threads=1)]))
        cur = self.write("c.json", self.flat([CONFIG]))
        self.assertEqual(self.run_gate(base, cur), 2)

    def test_config_mismatch_is_structural_failure(self):
        other = dict(CONFIG, nx=128)
        base = self.write("b.json", self.flat(
            [CONFIG, record("sz-lr", "compress", 100.0, threads=1)]))
        cur = self.write("c.json", self.flat(
            [other, record("sz-lr", "compress", 100.0, threads=1)]))
        self.assertEqual(self.run_gate(base, cur), 2)

    def test_trajectory_gates_against_last_entry(self):
        base = self.write("b.json", self.trajectory(
            [CONFIG, record("sz-lr", "compress", 50.0, threads=1)],
            [CONFIG, record("sz-lr", "compress", 100.0, threads=1)]))
        cur = self.write("c.json", self.flat(
            [CONFIG, record("sz-lr", "compress", 60.0, threads=1)]))
        # 60 passes vs the old 50 but must fail vs the last entry's 100.
        self.assertEqual(self.run_gate(base, cur), 1)

    def test_lane_flag_gates_the_named_trajectory(self):
        # One file, two lanes: the default lane would pass, the full lane
        # must be the one gated when --lane selects it.
        doc = {"bench": "throughput",
               "trajectory": [{"rev": "d", "records": [
                   CONFIG, record("sz-lr", "compress", 50.0, threads=1)]}],
               "trajectory_full": [{"rev": "f", "records": [
                   CONFIG, record("sz-lr", "compress", 100.0, threads=1)]}]}
        base = self.write("b.json", doc)
        cur = self.write("c.json", self.flat(
            [CONFIG, record("sz-lr", "compress", 60.0, threads=1)]))
        self.assertEqual(self.run_gate(base, cur), 0)
        self.assertEqual(
            self.run_gate(base, cur, "--lane", "trajectory_full"), 1)


class MinScalingTest(GateHarness):
    def scaling_docs(self, one_thread, four_thread):
        records = [
            CONFIG,
            record("sz-lr", "compress", 100.0, threads=1),
            record("chunked-sz-lr", "compress", one_thread, threads=1),
            record("chunked-sz-lr", "compress", four_thread, threads=4),
        ]
        return (self.write("b.json", self.flat(records)),
                self.write("c.json", self.flat(records)))

    def test_scaling_met_passes(self):
        base, cur = self.scaling_docs(100.0, 250.0)
        self.assertEqual(self.run_gate(base, cur, "--min-scaling", "2.0"), 0)

    def test_scaling_missed_fails(self):
        base, cur = self.scaling_docs(100.0, 150.0)
        self.assertEqual(self.run_gate(base, cur, "--min-scaling", "2.0"), 1)

    def test_scaling_records_missing_is_structural_failure(self):
        records = [CONFIG, record("sz-lr", "compress", 100.0, threads=1)]
        base = self.write("b.json", self.flat(records))
        cur = self.write("c.json", self.flat(records))
        self.assertEqual(self.run_gate(base, cur, "--min-scaling", "2.0"), 2)


class QualityGateTest(GateHarness):
    def quality_records(self, ratio, psnr):
        return [
            {"codec": "sz-lr", "vis_method": "resampling", "ratio": ratio,
             "psnr_db": psnr},
            {"codec": "sz-interp", "vis_method": "dual_cell", "ratio": 30.0,
             "psnr_db": 70.0},
        ]

    def run_quality(self, base, cur, *flags):
        return self.run_gate(base, cur, "--mode", "quality", *flags)

    def test_identical_passes(self):
        base = self.write("b.json", self.flat(self.quality_records(20, 65)))
        cur = self.write("c.json", self.flat(self.quality_records(20, 65)))
        self.assertEqual(self.run_quality(base, cur), 0)

    def test_ratio_regression_fails(self):
        base = self.write("b.json", self.flat(self.quality_records(20, 65)))
        cur = self.write("c.json", self.flat(self.quality_records(15, 65)))
        self.assertEqual(self.run_quality(base, cur), 1)

    def test_within_tolerance_passes(self):
        base = self.write("b.json", self.flat(self.quality_records(20, 65)))
        cur = self.write("c.json", self.flat(
            self.quality_records(19.9, 64.9)))
        self.assertEqual(self.run_quality(base, cur), 0)

    def test_tolerance_flag_widens_floor(self):
        base = self.write("b.json", self.flat(self.quality_records(20, 65)))
        cur = self.write("c.json", self.flat(self.quality_records(15, 65)))
        self.assertEqual(
            self.run_quality(base, cur, "--tolerance", "0.3"), 0)

    def test_dropped_record_is_structural_failure(self):
        base = self.write("b.json", self.flat(self.quality_records(20, 65)))
        cur = self.write("c.json", self.flat(
            self.quality_records(20, 65)[:1]))
        self.assertEqual(self.run_quality(base, cur), 2)

    def test_matching_ignores_extra_current_records(self):
        base = self.write("b.json", self.flat(self.quality_records(20, 65)))
        extended = self.quality_records(20, 65) + [
            {"codec": "new-codec", "vis_method": "resampling",
             "ratio": 1.0, "psnr_db": 1.0}]
        cur = self.write("c.json", self.flat(extended))
        self.assertEqual(self.run_quality(base, cur), 0)

    def test_custom_metric_list(self):
        base = self.write("b.json", self.flat(
            [{"codec": "chunked-sz-lr", "stage": "roi_1tile",
              "speedup": 8.0}]))
        ok = self.write("ok.json", self.flat(
            [{"codec": "chunked-sz-lr", "stage": "roi_1tile",
              "speedup": 5.0}]))
        bad = self.write("bad.json", self.flat(
            [{"codec": "chunked-sz-lr", "stage": "roi_1tile",
              "speedup": 3.0}]))
        flags = ("--metrics", "speedup", "--tolerance", "0.5")
        self.assertEqual(self.run_quality(base, ok, *flags), 0)
        self.assertEqual(self.run_quality(base, bad, *flags), 1)

    def test_no_gated_metrics_is_structural_failure(self):
        base = self.write("b.json", self.flat(
            [{"codec": "sz-lr", "other": 1.0}]))
        cur = self.write("c.json", self.flat(
            [{"codec": "sz-lr", "other": 1.0}]))
        self.assertEqual(self.run_quality(base, cur), 2)

    def test_integer_fields_are_identity_not_collapsed(self):
        # Records differing only in an int field (threads) must gate
        # independently: a regression in one must not be masked by the
        # other overwriting it in the match table.
        def recs(speedup_1t, speedup_4t):
            return [{"codec": "chunked-sz-lr", "stage": "roi_1tile",
                     "threads": 1, "speedup": speedup_1t},
                    {"codec": "chunked-sz-lr", "stage": "roi_1tile",
                     "threads": 4, "speedup": speedup_4t}]
        base = self.write("b.json", self.flat(recs(8.0, 8.0)))
        cur = self.write("c.json", self.flat(recs(1.0, 8.0)))
        flags = ("--metrics", "speedup", "--tolerance", "0.5")
        self.assertEqual(self.run_quality(base, cur, *flags), 1)

    def test_service_doc_with_fault_hooks_config_field_still_gates(self):
        # The service bench's config record grew a `fault_hooks` field
        # when the fault-injection layer was compiled in (disarmed). The
        # speedup gate must neither trip on the new config field nor let
        # it mask a real speedup regression.
        def service_doc(speedup, hooks):
            config = {"stage": "config", "field": "warpx_like_ez",
                      "nx": 64, "ny": 64, "nz": 128, "clients": 4,
                      "reps": 3}
            if hooks is not None:
                config["fault_hooks"] = hooks
            return self.flat([config,
                              {"stage": "speedup", "clients": 4,
                               "speedup": speedup}])
        base = self.write("b.json", service_doc(5.0, None))  # pre-hooks
        ok = self.write("ok.json", service_doc(4.8, 0))
        bad = self.write("bad.json", service_doc(2.0, 0))
        flags = ("--metrics", "speedup", "--tolerance", "0.3")
        self.assertEqual(self.run_quality(base, ok, *flags), 0)
        self.assertEqual(self.run_quality(base, bad, *flags), 1)

    def test_lane_flag_selects_quality_lane(self):
        # The stream bench gates tiles_saved_frac per dataset field: the
        # warpx baseline lives in `trajectory`, the nyx one in
        # `trajectory_nyx`, and --lane must pick the right baseline. A
        # nyx-only cull regression must fail the nyx lane while the
        # default (warpx) lane still passes.
        def stream(field, saved_frac):
            return [{"stage": "streamed_iso", "field": field,
                     "method": "re-sampling", "threads": 1,
                     "tiles_total": 8192, "mesh_identical": 1,
                     "tiles_saved_frac": saved_frac}]
        doc = {"bench": "stream",
               "trajectory": [{"rev": "w", "records":
                               stream("warpx_like_ez", 0.62)}],
               "trajectory_nyx": [{"rev": "n", "records":
                                   stream("nyx_like_density", 0.55)}]}
        base = self.write("b.json", doc)
        cur_ok = self.write("ok.json", self.flat(
            stream("nyx_like_density", 0.54)))
        cur_bad = self.write("bad.json", self.flat(
            stream("nyx_like_density", 0.10)))
        flags = ("--metrics", "tiles_saved_frac", "--tolerance", "0.2",
                 "--lane", "trajectory_nyx")
        self.assertEqual(self.run_quality(base, cur_ok, *flags), 0)
        self.assertEqual(self.run_quality(base, cur_bad, *flags), 1)
        # Against the default lane the nyx record is a different identity
        # (field differs), so the warpx baseline would be "missing" — the
        # structural failure proves lanes cannot silently cross-match.
        self.assertEqual(self.run_quality(
            base, cur_ok, "--metrics", "tiles_saved_frac",
            "--tolerance", "0.2"), 2)

    def test_quality_mode_ignores_config_records(self):
        base = self.write("b.json", self.flat(
            [CONFIG] + self.quality_records(20, 65)))
        cur = self.write("c.json", self.flat(
            [dict(CONFIG, nx=32)] + self.quality_records(20, 65)))
        self.assertEqual(self.run_quality(base, cur), 0)


if __name__ == "__main__":
    unittest.main()
