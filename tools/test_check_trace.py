"""Unit tests for check_trace.py (stdlib unittest; CI also collects these
under pytest). Covers the JSON/shape checks, the per-thread nesting
validator, and the span/counter reconciliation."""

import json
import os
import tempfile
import unittest

import check_trace


def ev(name, tid, ts, dur):
    return {"name": name, "ph": "X", "cat": "amrvis", "pid": 1,
            "tid": tid, "ts": ts, "dur": dur}


def aev(name, tid, ts, dur):
    """Async (backdated) span, e.g. service.queue — nesting-exempt."""
    e = ev(name, tid, ts, dur)
    e["cat"] = "amrvis.async"
    return e


class TempFiles(unittest.TestCase):
    def write(self, obj, text=None):
        fd, path = tempfile.mkstemp(suffix=".json")
        with os.fdopen(fd, "w") as f:
            if text is not None:
                f.write(text)
            else:
                json.dump(obj, f)
        self.addCleanup(os.remove, path)
        return path

    def run_main(self, events, metrics=None, reconcile=None, text=None):
        argv = [self.write(events, text=text)]
        if metrics is not None:
            argv += ["--metrics", self.write(metrics)]
        if reconcile is not None:
            argv += ["--reconcile", reconcile]
        return check_trace.main(argv)


class TraceShapeTest(TempFiles):
    def test_empty_trace_passes(self):
        self.assertEqual(self.run_main([]), 0)

    def test_valid_trace_passes(self):
        self.assertEqual(self.run_main([ev("a", 0, 0, 10)]), 0)

    def test_unparsable_file_fails(self):
        self.assertEqual(self.run_main(None, text="[{\"name\": "), 1)

    def test_non_array_root_fails(self):
        self.assertEqual(self.run_main({"name": "x"}), 1)

    def test_begin_end_events_rejected(self):
        bad = ev("a", 0, 0, 10)
        bad["ph"] = "B"
        self.assertEqual(self.run_main([bad]), 1)

    def test_missing_duration_fails(self):
        bad = ev("a", 0, 0, 10)
        del bad["dur"]
        self.assertEqual(self.run_main([bad]), 1)

    def test_negative_timestamp_fails(self):
        self.assertEqual(self.run_main([ev("a", 0, -5, 10)]), 1)

    def test_unknown_category_fails(self):
        bad = ev("a", 0, 0, 10)
        bad["cat"] = "other"
        self.assertEqual(self.run_main([bad]), 1)


class NestingTest(TempFiles):
    def test_children_before_parent_nest(self):
        # Two disjoint children, then the parent containing both.
        events = [ev("child1", 0, 0, 10), ev("child2", 0, 20, 10),
                  ev("parent", 0, 0, 40)]
        self.assertEqual(self.run_main(events), 0)

    def test_deep_nesting_passes(self):
        events = [ev("inner", 0, 4, 2), ev("mid", 0, 2, 6),
                  ev("outer", 0, 0, 10)]
        self.assertEqual(self.run_main(events), 0)

    def test_partial_overlap_fails(self):
        # [0, 10) and [5, 20): neither nests nor is disjoint.
        events = [ev("a", 0, 0, 10), ev("b", 0, 5, 15)]
        self.assertEqual(self.run_main(events), 1)

    def test_grandparent_partial_overlap_detected(self):
        # "outer" contains "late" but straddles "early"'s interior: the
        # pairwise-adjacent check would miss this, the stack must not.
        events = [ev("early", 0, 0, 10), ev("late", 0, 12, 4),
                  ev("outer", 0, 5, 20)]
        self.assertEqual(self.run_main(events), 1)

    def test_touching_spans_are_disjoint(self):
        events = [ev("a", 0, 0, 10), ev("b", 0, 10, 10)]
        self.assertEqual(self.run_main(events), 0)

    def test_out_of_order_ends_fail(self):
        events = [ev("a", 0, 0, 30), ev("b", 0, 5, 10)]
        self.assertEqual(self.run_main(events), 1)

    def test_threads_validated_independently(self):
        # Overlapping intervals on DIFFERENT threads are fine.
        events = [ev("a", 0, 0, 10), ev("b", 1, 5, 15)]
        self.assertEqual(self.run_main(events), 0)

    def test_async_spans_exempt_from_nesting(self):
        # A backdated queue span legitimately straddles scope spans on the
        # thread that eventually picked the request up.
        events = [ev("service.prefetch", 0, 0, 10),
                  aev("service.queue", 0, 5, 10),
                  ev("service.point", 0, 15, 20)]
        self.assertEqual(self.run_main(events), 0)

    def test_scope_spans_still_checked_with_async_present(self):
        events = [aev("service.queue", 0, 0, 100),
                  ev("a", 0, 0, 10), ev("b", 0, 5, 15)]
        self.assertEqual(self.run_main(events), 1)


class ReconcileTest(TempFiles):
    METRICS = {"counters": {"tile.decode": 2}, "gauges": {},
               "histograms": {}}

    def test_matching_count_passes(self):
        events = [ev("tile.decode", 0, 0, 5), ev("tile.decode", 0, 10, 5)]
        self.assertEqual(self.run_main(events, metrics=self.METRICS), 0)

    def test_count_mismatch_fails(self):
        events = [ev("tile.decode", 0, 0, 5)]
        self.assertEqual(self.run_main(events, metrics=self.METRICS), 1)

    def test_zero_spans_fail_even_if_counter_zero(self):
        metrics = {"counters": {"tile.decode": 0}}
        self.assertEqual(self.run_main([], metrics=metrics), 1)

    def test_missing_counter_fails(self):
        events = [ev("tile.decode", 0, 0, 5)]
        self.assertEqual(self.run_main(events, metrics={"counters": {}}), 1)

    def test_custom_reconcile_name(self):
        events = [ev("container.parse", 0, 0, 5)]
        metrics = {"counters": {"container.parse": 1}}
        self.assertEqual(
            self.run_main(events, metrics=metrics,
                          reconcile="container.parse"), 0)

    def test_unparsable_metrics_fails(self):
        events = [ev("tile.decode", 0, 0, 5)]
        argv = [self.write(events), "--metrics", self.write(None, text="{")]
        self.assertEqual(check_trace.main(argv), 1)


if __name__ == "__main__":
    unittest.main()
