#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by src/obs/trace.

Checks, in order:

1. The file parses as JSON and is a list of event objects.
2. Every event is a complete ("ph": "X") span with a name, a non-negative
   integer tid/ts/dur, and the amrvis category.
3. Per tid, SCOPE spans (cat "amrvis") in FILE ORDER have monotonically
   non-decreasing end times (the emitter pushes each span at scope exit
   under one mutex, so file order per thread is program order), and every
   pair of scope spans on one thread either nests or is disjoint — a
   partial overlap means a broken emitter. Async spans (cat
   "amrvis.async") are backdated intervals measured by the caller — e.g.
   a request's queue wait, emitted by whichever thread picked it up — and
   are shape-checked but exempt from the nesting invariant.
4. With --metrics METRICS.json (an obs::snapshot_json() dump) and
   --reconcile NAME: the number of NAME spans in the trace equals the
   NAME counter in the registry dump, and is nonzero. The instrumented
   sites bump the counter and open the span at the same place, so any
   drift means dropped or duplicated events.

Exit status 0 on success; 1 with a diagnostic on the first failure.

Usage:
    check_trace.py TRACE.json [--metrics METRICS.json]
                   [--reconcile tile.decode]
"""

import argparse
import json
import sys


def fail(msg):
    print("check_trace: FAIL: %s" % msg)
    return 1


def validate_events(events):
    """Shape-check every event; returns an error string or None."""
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            return "event %d is not an object" % i
        if e.get("ph") != "X":
            return "event %d: ph=%r, only complete 'X' events are emitted" % (
                i, e.get("ph"))
        name = e.get("name")
        if not isinstance(name, str) or not name:
            return "event %d has no name" % i
        if e.get("cat") not in ("amrvis", "amrvis.async"):
            return "event %d (%s): cat=%r is not an amrvis category" % (
                i, name, e.get("cat"))
        for key in ("tid", "ts", "dur"):
            v = e.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                return "event %d (%s): %s=%r is not a non-negative int" % (
                    i, name, key, v)
    return None


def validate_nesting(events):
    """Scope spans of one tid must nest or be disjoint; error or None.

    Events arrive in end-time order per tid (pushed at scope exit under a
    mutex), children before parents. A stack of disjoint completed spans
    is maintained: a new span must either contain recent stack entries
    (its children — popped) or start at/after the latest one's end.
    Intervals are half-open [ts, ts+dur), so touching spans are disjoint.
    Async spans are skipped: a backdated interval overlaps whatever scopes
    its emitting thread was inside while it elapsed.
    """
    by_tid = {}
    for e in events:
        if e.get("cat") == "amrvis.async":
            continue
        by_tid.setdefault(e["tid"], []).append(e)
    for tid, seq in sorted(by_tid.items()):
        prev_end = None
        stack = []  # disjoint, time-ascending (start, end, name)
        for e in seq:
            start, end = e["ts"], e["ts"] + e["dur"]
            if prev_end is not None and end < prev_end:
                return ("tid %d: span %r ends at %d before the previously "
                        "emitted span's end %d — file order is not end-time "
                        "order" % (tid, e["name"], end, prev_end))
            prev_end = end
            while stack:
                top_start, top_end, top_name = stack[-1]
                if start <= top_start and top_end <= end:
                    stack.pop()  # contained: a child of this span
                    continue
                if top_end <= start:
                    break  # disjoint: an earlier sibling subtree
                return ("tid %d: spans %r [%d,%d) and %r [%d,%d) partially "
                        "overlap" % (tid, top_name, top_start, top_end,
                                     e["name"], start, end))
            stack.append((start, end, e["name"]))
    return None


def reconcile(events, metrics_doc, name):
    """Span count of `name` must equal the registry counter; err or None."""
    span_count = sum(1 for e in events if e["name"] == name)
    counters = metrics_doc.get("counters", {})
    if name not in counters:
        return "counter %r missing from the metrics dump" % name
    counter = counters[name]
    if span_count == 0:
        return "no %r spans in the trace — nothing to reconcile" % name
    if span_count != counter:
        return "%r: %d spans in the trace but counter=%d" % (
            name, span_count, counter)
    return None


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Validate an amrvis Chrome trace-event JSON file.")
    ap.add_argument("trace", help="trace file (AMRVIS_TRACE output)")
    ap.add_argument("--metrics",
                    help="obs::snapshot_json() dump (AMRVIS_METRICS_DUMP "
                         "output) to reconcile against")
    ap.add_argument("--reconcile", default="tile.decode", metavar="NAME",
                    help="counter/span name to reconcile when --metrics is "
                         "given (default: tile.decode)")
    args = ap.parse_args(argv)

    try:
        with open(args.trace) as f:
            events = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail("trace %s does not parse: %s" % (args.trace, e))
    if not isinstance(events, list):
        return fail("trace root is %s, expected a JSON array"
                    % type(events).__name__)

    err = validate_events(events)
    if err is None:
        err = validate_nesting(events)
    if err is not None:
        return fail(err)

    if args.metrics:
        try:
            with open(args.metrics) as f:
                metrics_doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            return fail("metrics %s does not parse: %s" % (args.metrics, e))
        err = reconcile(events, metrics_doc, args.reconcile)
        if err is not None:
            return fail(err)
        print("check_trace: OK: %d events, %r reconciled against the "
              "registry" % (len(events), args.reconcile))
        return 0

    print("check_trace: OK: %d events" % len(events))
    return 0


if __name__ == "__main__":
    sys.exit(main())
