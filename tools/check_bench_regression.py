#!/usr/bin/env python3
"""Gate bench JSON runs against the committed BENCH_* trajectories.

Throughput mode (default):
    check_bench_regression.py BASELINE.json CURRENT.json \
        [--max-regression 0.15] [--codec sz-lr] [--stage compress] \
        [--threads 1] [--min-scaling 2.0] [--scaling-codec chunked-sz-lr] \
        [--scaling-threads 4]

Quality mode (fig11/ablation/roi trend gating):
    check_bench_regression.py BASELINE.json CURRENT.json \
        --mode quality --metrics ratio,psnr_db [--tolerance 0.02]

BASELINE.json is either a committed trajectory file (BENCH_*.json, in
which case the *last* trajectory entry is the baseline) or a flat bench
--json output. CURRENT.json is a bench --json output.

In throughput mode the script prints a comparison for every (codec,
stage, threads) record carrying mb_per_s, and exits non-zero if the gated
metric (default: sz-lr compress at 1 thread) regressed more than
--max-regression against the baseline. Records without a `threads` field
(pre-PR3 baselines) are treated as single-thread, so the single-thread
trajectory gating is unaffected by the multi-thread records.

With --min-scaling, throughput mode additionally requires CURRENT's
--scaling-codec compress throughput at --scaling-threads threads to be at
least --min-scaling times its own 1-thread record. That check compares two
measurements from the same run on the same machine, so it is valid on any
multi-core runner regardless of the committed baseline's hardware (the
reference container is single-core and cannot demonstrate scaling).

In quality mode, records are matched on the set of their string- and
integer-valued fields (codec/variant/vis_method/stage/threads/...) minus
the gated metrics themselves, and every gated metric of every baseline
record must satisfy current >= (1 - tolerance) * baseline.
Metrics are treated as higher-is-better (ratio, psnr_db, rssim-style
similarity, speedup); do not list error-style metrics where lower is
better. A baseline record with no match in CURRENT fails the gate —
silently dropping a measured configuration is itself a regression.
Compression ratio and PSNR of the seeded synthetic studies are
deterministic, so the default 2% tolerance only absorbs harmless noise;
the roi speedup gate uses a looser tolerance because it is a timing
ratio.

Absolute MB/s is hardware-dependent; the default 15% tolerance assumes
baseline and current were measured on comparable machines (CI runners of
the same class). Regenerate the committed baseline when the runner class
changes.
"""

import argparse
import json
import sys


def records_of(doc, lane="trajectory"):
    """Flat records from either a trajectory file or a bench output.

    `lane` selects which trajectory list of a committed BENCH_* file the
    baseline comes from (default: the gated "trajectory" lane; pass
    "trajectory_full" for the paper-scale throughput lane, or
    "trajectory_nyx" / "trajectory_full_nyx" for the Nyx-field stream
    and throughput lanes). Flat bench outputs ignore it."""
    if lane in doc:
        return doc[lane][-1]["records"], doc[lane][-1].get(
            "rev", "baseline")
    return doc.get("records", []), doc.get("bench", "baseline")


def threads_of(record):
    """Thread count of a record; pre-PR3 records carry none and are 1."""
    return int(record.get("threads", 1))


def find(records, codec, stage, threads=1, key="mb_per_s"):
    for r in records:
        if (r.get("codec") == codec and r.get("stage") == stage
                and threads_of(r) == threads and key in r):
            return float(r[key])
    return None


def config_of(records):
    for r in records:
        if r.get("stage") == "config":
            return {k: r.get(k) for k in ("field", "nx", "ny", "nz",
                                          "threads")}
    return None


def quality_key(record, metrics):
    """Identity of a quality record: its string- and integer-valued
    fields, minus the gated metrics themselves. Integers matter:
    records can differ only in `threads` (or a tile count) while sharing
    every string field, and collapsing them onto one key would let a
    regression in the overwritten record pass silently. Gated metrics
    are excluded by name rather than by type because %.9g emission turns
    an integral measurement into a JSON int."""
    return tuple(sorted((k, v) for k, v in record.items()
                        if isinstance(v, (str, int)) and k not in metrics))


def run_quality(base_records, cur_records, metrics, tolerance):
    """Gate higher-is-better metrics record-by-record; 0 ok, 1 regressed,
    2 structural mismatch (baseline record missing from current)."""
    current = {quality_key(r, metrics): r for r in cur_records
               if r.get("stage") != "config"}
    status = 0
    checked = 0
    for base in base_records:
        if base.get("stage") == "config":
            continue
        gated = [m for m in metrics if m in base]
        if not gated:
            continue
        ident = ", ".join(f"{k}={v}" for k, v in quality_key(base, metrics))
        cur = current.get(quality_key(base, metrics))
        if cur is None:
            print(f"FAIL: baseline record ({ident}) missing from current "
                  f"JSON", file=sys.stderr)
            status = max(status, 2)
            continue
        for m in gated:
            if m not in cur:
                print(f"FAIL: metric {m} missing from current ({ident})",
                      file=sys.stderr)
                status = max(status, 2)
                continue
            b, c = float(base[m]), float(cur[m])
            floor = (1.0 - tolerance) * b
            checked += 1
            mark = "ok"
            if c < floor:
                mark = "REGRESSED"
                status = max(status, 1)
                print(f"FAIL: {m} regressed for ({ident}): {c:.4g} < "
                      f"floor {floor:.4g} (baseline {b:.4g})",
                      file=sys.stderr)
            print(f"{ident:<60} {m:<10} {b:>10.4g} {c:>10.4g} {mark}")
    if checked == 0:
        print("FAIL: no baseline records carry the gated metrics "
              f"({','.join(metrics)})", file=sys.stderr)
        return 2
    if status == 0:
        print(f"OK: {checked} quality metrics within "
              f"{tolerance:.0%} of baseline")
    return status


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regression", type=float, default=0.15,
                    help="allowed fractional slowdown for the gated metric")
    ap.add_argument("--codec", default="sz-lr")
    ap.add_argument("--stage", default="compress")
    ap.add_argument("--threads", type=int, default=1,
                    help="thread count of the gated metric's record")
    ap.add_argument("--min-scaling", type=float, default=None,
                    help="require scaling-codec compress at scaling-threads "
                         "to beat this multiple of its own 1-thread record "
                         "(within CURRENT; machine-independent ratio)")
    ap.add_argument("--scaling-codec", default="chunked-sz-lr")
    ap.add_argument("--scaling-threads", type=int, default=4)
    ap.add_argument("--mode", choices=("throughput", "quality"),
                    default="throughput")
    ap.add_argument("--metrics", default="ratio,psnr_db",
                    help="quality mode: comma list of higher-is-better "
                         "record keys to gate")
    ap.add_argument("--tolerance", type=float, default=0.02,
                    help="quality mode: allowed fractional decrease")
    ap.add_argument("--lane", default="trajectory",
                    help="trajectory list to read the baseline from "
                         "(e.g. trajectory_full for the paper-scale lane)")
    args = ap.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        base_records, base_rev = records_of(json.load(f), args.lane)
    with open(args.current, encoding="utf-8") as f:
        cur_records, _ = records_of(json.load(f), args.lane)

    if args.mode == "quality":
        print(f"baseline: {args.baseline} ({base_rev})")
        return run_quality(base_records, cur_records,
                           [m for m in args.metrics.split(",") if m],
                           args.tolerance)

    base_cfg = config_of(base_records)
    cur_cfg = config_of(cur_records)
    if base_cfg and cur_cfg and base_cfg != cur_cfg:
        print(f"FAIL: bench configs differ — baseline {base_cfg} vs "
              f"current {cur_cfg}; MB/s at different problem sizes is "
              f"not comparable", file=sys.stderr)
        return 2

    print(f"baseline: {args.baseline} ({base_rev})")
    print(f"{'codec':<18} {'stage':<12} {'threads':>7} {'baseline':>10} "
          f"{'current':>10} {'ratio':>7}")
    for r in cur_records:
        if "mb_per_s" not in r:
            continue
        codec, stage, threads = r.get("codec"), r.get("stage"), threads_of(r)
        base = find(base_records, codec, stage, threads)
        cur = float(r["mb_per_s"])
        ratio = cur / base if base else float("nan")
        print(f"{codec:<18} {stage:<12} {threads:>7} "
              f"{base if base else float('nan'):>10.1f} {cur:>10.1f} "
              f"{ratio:>6.2f}x")

    base = find(base_records, args.codec, args.stage, args.threads)
    cur = find(cur_records, args.codec, args.stage, args.threads)
    if base is None or cur is None:
        print(f"FAIL: gated metric ({args.codec}, {args.stage}, "
              f"{args.threads}t) missing from "
              f"{'baseline' if base is None else 'current'} JSON",
              file=sys.stderr)
        return 2
    floor = (1.0 - args.max_regression) * base
    if cur < floor:
        print(f"FAIL: {args.codec} {args.stage} regressed: {cur:.1f} MB/s "
              f"< {floor:.1f} MB/s "
              f"({args.max_regression:.0%} below baseline {base:.1f})",
              file=sys.stderr)
        return 1
    print(f"OK: {args.codec} {args.stage} {cur:.1f} MB/s >= floor "
          f"{floor:.1f} MB/s (baseline {base:.1f})")

    if args.min_scaling is not None:
        one = find(cur_records, args.scaling_codec, "compress", 1)
        many = find(cur_records, args.scaling_codec, "compress",
                    args.scaling_threads)
        if one is None or many is None:
            print(f"FAIL: scaling records for {args.scaling_codec} compress "
                  f"(1t / {args.scaling_threads}t) missing from current "
                  f"JSON (no-OpenMP build?)", file=sys.stderr)
            return 2
        scaling = many / one
        if scaling < args.min_scaling:
            print(f"FAIL: {args.scaling_codec} compress scaled only "
                  f"{scaling:.2f}x at {args.scaling_threads} threads "
                  f"(required {args.min_scaling:.2f}x of its 1-thread "
                  f"{one:.1f} MB/s)", file=sys.stderr)
            return 1
        print(f"OK: {args.scaling_codec} compress scales {scaling:.2f}x at "
              f"{args.scaling_threads} threads ({one:.1f} -> {many:.1f} "
              f"MB/s) >= {args.min_scaling:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
