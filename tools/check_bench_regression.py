#!/usr/bin/env python3
"""Gate bench_throughput runs against the committed BENCH trajectory.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json \
        [--max-regression 0.15] [--codec sz-lr] [--stage compress] \
        [--threads 1] [--min-scaling 2.0] [--scaling-codec chunked-sz-lr] \
        [--scaling-threads 4]

BASELINE.json is either the committed trajectory file (BENCH_throughput.json,
in which case the *last* trajectory entry is the baseline) or a flat
bench_throughput --json output. CURRENT.json is a bench_throughput --json
output. The script prints a comparison for every (codec, stage, threads)
record carrying mb_per_s, and exits non-zero if the gated metric (default:
sz-lr compress at 1 thread) regressed more than --max-regression against
the baseline. Records without a `threads` field (pre-PR3 baselines) are
treated as single-thread, so the single-thread trajectory gating is
unaffected by the multi-thread records.

With --min-scaling, the script additionally requires CURRENT's
--scaling-codec compress throughput at --scaling-threads threads to be at
least --min-scaling times its own 1-thread record. That check compares two
measurements from the same run on the same machine, so it is valid on any
multi-core runner regardless of the committed baseline's hardware (the
reference container is single-core and cannot demonstrate scaling).

Absolute MB/s is hardware-dependent; the default 15% tolerance assumes
baseline and current were measured on comparable machines (CI runners of
the same class). Regenerate the committed baseline when the runner class
changes.
"""

import argparse
import json
import sys


def records_of(doc):
    """Flat records from either a trajectory file or a bench output."""
    if "trajectory" in doc:
        return doc["trajectory"][-1]["records"], doc["trajectory"][-1].get(
            "rev", "baseline")
    return doc.get("records", []), doc.get("bench", "baseline")


def threads_of(record):
    """Thread count of a record; pre-PR3 records carry none and are 1."""
    return int(record.get("threads", 1))


def find(records, codec, stage, threads=1, key="mb_per_s"):
    for r in records:
        if (r.get("codec") == codec and r.get("stage") == stage
                and threads_of(r) == threads and key in r):
            return float(r[key])
    return None


def config_of(records):
    for r in records:
        if r.get("stage") == "config":
            return {k: r.get(k) for k in ("field", "nx", "ny", "nz",
                                          "threads")}
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regression", type=float, default=0.15,
                    help="allowed fractional slowdown for the gated metric")
    ap.add_argument("--codec", default="sz-lr")
    ap.add_argument("--stage", default="compress")
    ap.add_argument("--threads", type=int, default=1,
                    help="thread count of the gated metric's record")
    ap.add_argument("--min-scaling", type=float, default=None,
                    help="require scaling-codec compress at scaling-threads "
                         "to beat this multiple of its own 1-thread record "
                         "(within CURRENT; machine-independent ratio)")
    ap.add_argument("--scaling-codec", default="chunked-sz-lr")
    ap.add_argument("--scaling-threads", type=int, default=4)
    args = ap.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        base_records, base_rev = records_of(json.load(f))
    with open(args.current, encoding="utf-8") as f:
        cur_records, _ = records_of(json.load(f))

    base_cfg = config_of(base_records)
    cur_cfg = config_of(cur_records)
    if base_cfg and cur_cfg and base_cfg != cur_cfg:
        print(f"FAIL: bench configs differ — baseline {base_cfg} vs "
              f"current {cur_cfg}; MB/s at different problem sizes is "
              f"not comparable", file=sys.stderr)
        return 2

    print(f"baseline: {args.baseline} ({base_rev})")
    print(f"{'codec':<18} {'stage':<12} {'threads':>7} {'baseline':>10} "
          f"{'current':>10} {'ratio':>7}")
    for r in cur_records:
        if "mb_per_s" not in r:
            continue
        codec, stage, threads = r.get("codec"), r.get("stage"), threads_of(r)
        base = find(base_records, codec, stage, threads)
        cur = float(r["mb_per_s"])
        ratio = cur / base if base else float("nan")
        print(f"{codec:<18} {stage:<12} {threads:>7} "
              f"{base if base else float('nan'):>10.1f} {cur:>10.1f} "
              f"{ratio:>6.2f}x")

    base = find(base_records, args.codec, args.stage, args.threads)
    cur = find(cur_records, args.codec, args.stage, args.threads)
    if base is None or cur is None:
        print(f"FAIL: gated metric ({args.codec}, {args.stage}, "
              f"{args.threads}t) missing from "
              f"{'baseline' if base is None else 'current'} JSON",
              file=sys.stderr)
        return 2
    floor = (1.0 - args.max_regression) * base
    if cur < floor:
        print(f"FAIL: {args.codec} {args.stage} regressed: {cur:.1f} MB/s "
              f"< {floor:.1f} MB/s "
              f"({args.max_regression:.0%} below baseline {base:.1f})",
              file=sys.stderr)
        return 1
    print(f"OK: {args.codec} {args.stage} {cur:.1f} MB/s >= floor "
          f"{floor:.1f} MB/s (baseline {base:.1f})")

    if args.min_scaling is not None:
        one = find(cur_records, args.scaling_codec, "compress", 1)
        many = find(cur_records, args.scaling_codec, "compress",
                    args.scaling_threads)
        if one is None or many is None:
            print(f"FAIL: scaling records for {args.scaling_codec} compress "
                  f"(1t / {args.scaling_threads}t) missing from current "
                  f"JSON (no-OpenMP build?)", file=sys.stderr)
            return 2
        scaling = many / one
        if scaling < args.min_scaling:
            print(f"FAIL: {args.scaling_codec} compress scaled only "
                  f"{scaling:.2f}x at {args.scaling_threads} threads "
                  f"(required {args.min_scaling:.2f}x of its 1-thread "
                  f"{one:.1f} MB/s)", file=sys.stderr)
            return 1
        print(f"OK: {args.scaling_codec} compress scales {scaling:.2f}x at "
              f"{args.scaling_threads} threads ({one:.1f} -> {many:.1f} "
              f"MB/s) >= {args.min_scaling:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
