// Unit tests for deterministic fault injection (util/fault.hpp): spec
// grammar, op-counter schedules, per-kind behavior, determinism, and the
// instrumented decode/parse sites actually firing.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "compress/chunked.hpp"
#include "compress/szlr.hpp"
#include "util/array3d.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace amrvis {
namespace {

using fault::FaultPlan;
using fault::FaultScope;
using fault::Kind;
using fault::Rule;
using fault::Site;

Array3<double> ramp(Shape3 s) {
  Array3<double> a(s);
  for (std::int64_t i = 0; i < a.size(); ++i)
    a[i] = 0.25 * static_cast<double>(i % 97) - 3.0;
  return a;
}

TEST(FaultSpec, ParsesFullGrammar) {
  const FaultPlan plan = FaultPlan::parse(
      "tiledecode:throw:start=4,every=7,count=3;pooltask:delay:ms=2;"
      "headerparse:flip:seed=9");
  ASSERT_EQ(plan.rules.size(), 3u);
  EXPECT_EQ(plan.rules[0].site, Site::kTileDecode);
  EXPECT_EQ(plan.rules[0].kind, Kind::kThrow);
  EXPECT_EQ(plan.rules[0].start, 4u);
  EXPECT_EQ(plan.rules[0].every, 7u);
  EXPECT_EQ(plan.rules[0].count, 3);
  EXPECT_EQ(plan.rules[1].site, Site::kPoolTask);
  EXPECT_EQ(plan.rules[1].kind, Kind::kDelay);
  EXPECT_EQ(plan.rules[1].ms, 2u);
  EXPECT_EQ(plan.rules[2].site, Site::kHeaderParse);
  EXPECT_EQ(plan.rules[2].kind, Kind::kBitFlip);
  EXPECT_EQ(plan.rules[2].seed, 9u);
}

TEST(FaultSpec, EmptySpecMeansNoRules) {
  EXPECT_TRUE(FaultPlan::parse("").rules.empty());
}

TEST(FaultSpec, RejectsMalformedSpecsTyped) {
  const char* bad[] = {
      "tiledecode",                 // missing kind
      "elsewhere:throw",            // unknown site
      "tiledecode:explode",         // unknown kind
      "tiledecode:throw:start",     // option without value
      "tiledecode:throw:start=x",   // non-numeric value
      "tiledecode:throw:bogus=1",   // unknown option
      "tiledecode:throw:every=0",   // never fires
  };
  for (const char* spec : bad) {
    try {
      (void)FaultPlan::parse(spec);
      FAIL() << "spec must be rejected: " << spec;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kBadFaultSpec) << spec;
    }
  }
}

TEST(Fault, DisabledByDefaultAndZeroCostOps) {
  ASSERT_FALSE(fault::enabled());
  EXPECT_FALSE(fault::on_op(Site::kTileDecode).has_value());
}

TEST(Fault, ThrowScheduleIsDeterministic) {
  FaultPlan plan;
  plan.rules.push_back(
      Rule{Site::kTileDecode, Kind::kThrow, /*start=*/2, /*every=*/3,
           /*count=*/2, /*ms=*/1, /*seed=*/0});
  for (int run = 0; run < 2; ++run) {
    FaultScope scope(plan);
    std::vector<int> fired;
    for (int op = 0; op < 12; ++op) {
      try {
        (void)fault::on_op(Site::kTileDecode);
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
        fired.push_back(op);
      }
    }
    // start=2, every=3, count=2 -> ops 2 and 5 fire, then the rule is
    // exhausted; identical on every run.
    EXPECT_EQ(fired, (std::vector<int>{2, 5}));
    EXPECT_EQ(fault::ops(Site::kTileDecode), 12u);
    EXPECT_EQ(fault::injected(Site::kTileDecode), 2u);
  }
  EXPECT_FALSE(fault::enabled());  // scope uninstalls
}

TEST(Fault, InstallResetsCounters) {
  FaultPlan plan;
  plan.rules.push_back(Rule{Site::kCacheInsert, Kind::kDelay, 0, 1, -1, 0, 0});
  FaultScope scope(plan);
  (void)fault::on_op(Site::kCacheInsert);
  EXPECT_EQ(fault::ops(Site::kCacheInsert), 1u);
  fault::install(plan);
  EXPECT_EQ(fault::ops(Site::kCacheInsert), 0u);
  EXPECT_EQ(fault::injected(Site::kCacheInsert), 0u);
}

TEST(Fault, BitFlipMutatesExactlyOneDeterministicBit) {
  FaultPlan plan;
  plan.rules.push_back(
      Rule{Site::kTileDecode, Kind::kBitFlip, 0, 1, -1, 1, /*seed=*/7});
  const Bytes payload{0x00, 0xff, 0x55, 0xaa};

  Bytes first, second;
  {
    FaultScope scope(plan);
    const auto m = fault::on_op(Site::kTileDecode, payload);
    ASSERT_TRUE(m.has_value());
    first = *m;
  }
  {
    FaultScope scope(plan);
    const auto m = fault::on_op(Site::kTileDecode, payload);
    ASSERT_TRUE(m.has_value());
    second = *m;
  }
  EXPECT_EQ(first, second);  // same seed, same op index -> same bit
  int diff_bits = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    std::uint8_t x = static_cast<std::uint8_t>(first[i] ^ payload[i]);
    while (x != 0) {
      diff_bits += x & 1;
      x = static_cast<std::uint8_t>(x >> 1);
    }
  }
  EXPECT_EQ(diff_bits, 1);
}

TEST(Fault, FlipWithoutPayloadCountsButReturnsNothing) {
  FaultPlan plan;
  plan.rules.push_back(Rule{Site::kPoolTask, Kind::kBitFlip, 0, 1, -1, 1, 0});
  FaultScope scope(plan);
  EXPECT_FALSE(fault::on_op(Site::kPoolTask).has_value());
  EXPECT_EQ(fault::injected(Site::kPoolTask), 1u);
}

TEST(Fault, SitesAreIndependentlyScheduled) {
  FaultPlan plan;
  plan.rules.push_back(Rule{Site::kTileDecode, Kind::kDelay, 0, 1, -1, 0, 0});
  FaultScope scope(plan);
  (void)fault::on_op(Site::kTileDecode);
  (void)fault::on_op(Site::kHeaderParse);
  EXPECT_EQ(fault::injected(Site::kTileDecode), 1u);
  EXPECT_EQ(fault::injected(Site::kHeaderParse), 0u);
}

// ---- the instrumented production sites actually route through the plan --

TEST(FaultSites, HeaderParseFaultSurfacesFromParseContainer) {
  const compress::ChunkedCompressor codec(
      std::make_unique<compress::SzLrCompressor>(),
      compress::ChunkShape{8, 8, 4});
  const Bytes blob = codec.compress(ramp({16, 16, 8}).view(), 1e-3);

  FaultScope scope("headerparse:throw:count=1");
  try {
    (void)compress::detail::parse_container(blob, codec.inner().name());
    FAIL() << "injected header fault must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
  }
  // Exhausted: the next parse succeeds with the same bytes.
  EXPECT_NO_THROW(
      (void)compress::detail::parse_container(blob, codec.inner().name()));
}

TEST(FaultSites, TileDecodeFlipYieldsTypedCorruptionNotGarbage) {
  const compress::ChunkedCompressor codec(
      std::make_unique<compress::SzLrCompressor>(),
      compress::ChunkShape{8, 8, 4});
  const Array3<double> data = ramp({16, 16, 8});
  const Bytes blob = codec.compress(data.view(), 1e-3);
  const Array3<double> clean = codec.decompress(blob);

  int typed_errors = 0, clean_decodes = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    FaultScope scope("tiledecode:flip:count=1,seed=" + std::to_string(seed));
    try {
      const Array3<double> out = codec.decompress(blob);
      // A flipped bit that survives decode must still yield the right
      // shape (the data may differ; error-bounded streams are dense).
      EXPECT_EQ(out.shape(), clean.shape());
      ++clean_decodes;
    } catch (const Error&) {
      ++typed_errors;
    }
  }
  EXPECT_EQ(typed_errors + clean_decodes, 6);
}

}  // namespace
}  // namespace amrvis
