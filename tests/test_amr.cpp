// Unit and property tests for the mini-AMReX substrate: box algebra,
// box arrays, FABs, sampling operators and the hierarchy semantics the
// paper's pipeline depends on (redundant coarse data, composites,
// densities).

#include <gtest/gtest.h>

#include "amr/boxarray.hpp"
#include "amr/hierarchy.hpp"
#include "amr/sampling.hpp"
#include "util/rng.hpp"

namespace amrvis::amr {
namespace {

Box box(std::int64_t x0, std::int64_t y0, std::int64_t z0, std::int64_t x1,
        std::int64_t y1, std::int64_t z1) {
  return Box{{x0, y0, z0}, {x1, y1, z1}};
}

TEST(IntVectOps, Arithmetic) {
  const IntVect a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ(a + b, (IntVect{5, 7, 9}));
  EXPECT_EQ(b - a, (IntVect{3, 3, 3}));
  EXPECT_EQ(a * 2, (IntVect{2, 4, 6}));
  EXPECT_TRUE(a.all_le(b));
  EXPECT_FALSE(b.all_le(a));
}

TEST(IntVectOps, FloorDivNegative) {
  EXPECT_EQ(floor_div(-1, 2), -1);
  EXPECT_EQ(floor_div(-2, 2), -1);
  EXPECT_EQ(floor_div(-3, 2), -2);
  EXPECT_EQ(floor_div(3, 2), 1);
}

TEST(BoxAlgebra, SizeAndContains) {
  const Box b = box(2, 2, 2, 5, 6, 7);
  EXPECT_EQ(b.size(), (IntVect{4, 5, 6}));
  EXPECT_EQ(b.num_cells(), 120);
  EXPECT_TRUE(b.contains({2, 2, 2}));
  EXPECT_TRUE(b.contains({5, 6, 7}));
  EXPECT_FALSE(b.contains({6, 6, 7}));
}

TEST(BoxAlgebra, IntersectDisjoint) {
  EXPECT_FALSE(box(0, 0, 0, 1, 1, 1).intersect(box(3, 3, 3, 4, 4, 4)));
  const auto o = box(0, 0, 0, 3, 3, 3).intersect(box(2, 2, 2, 5, 5, 5));
  ASSERT_TRUE(o);
  EXPECT_EQ(*o, box(2, 2, 2, 3, 3, 3));
}

TEST(BoxAlgebra, RefineCoarsenInverse) {
  const Box b = box(1, 2, 3, 6, 7, 9);
  EXPECT_EQ(b.refine(2).coarsen(2), b);
}

TEST(BoxAlgebra, CoarsenCovers) {
  // Coarsening must produce a box whose refinement covers the original.
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const IntVect lo{static_cast<std::int64_t>(rng.next_below(20)) - 10,
                     static_cast<std::int64_t>(rng.next_below(20)) - 10,
                     static_cast<std::int64_t>(rng.next_below(20)) - 10};
    const IntVect hi = lo + IntVect{static_cast<std::int64_t>(rng.next_below(8)),
                                    static_cast<std::int64_t>(rng.next_below(8)),
                                    static_cast<std::int64_t>(rng.next_below(8))};
    const Box b{lo, hi};
    EXPECT_TRUE(b.coarsen(2).refine(2).contains(b));
  }
}

TEST(BoxAlgebra, SurroundingNodes) {
  const Box b = box(0, 0, 0, 3, 3, 3);
  EXPECT_EQ(b.surrounding_nodes().size(), (IntVect{5, 5, 5}));
}

TEST(BoxAlgebra, FlatIndexIsXFastest) {
  const Box b = box(10, 10, 10, 12, 12, 12);
  EXPECT_EQ(b.flat_index({10, 10, 10}), 0);
  EXPECT_EQ(b.flat_index({11, 10, 10}), 1);
  EXPECT_EQ(b.flat_index({10, 11, 10}), 3);
  EXPECT_EQ(b.flat_index({10, 10, 11}), 9);
}

TEST(BoxDifference, DisjointKeepsAll) {
  const auto rest = box_difference(box(0, 0, 0, 1, 1, 1),
                                   box(5, 5, 5, 6, 6, 6));
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0], box(0, 0, 0, 1, 1, 1));
}

TEST(BoxDifference, FullyCoveredIsEmpty) {
  EXPECT_TRUE(box_difference(box(1, 1, 1, 2, 2, 2),
                             box(0, 0, 0, 3, 3, 3)).empty());
}

TEST(BoxDifference, PiecesAreDisjointAndExact) {
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    auto rand_box = [&] {
      const IntVect lo{static_cast<std::int64_t>(rng.next_below(6)),
                       static_cast<std::int64_t>(rng.next_below(6)),
                       static_cast<std::int64_t>(rng.next_below(6))};
      const IntVect hi = lo +
                         IntVect{static_cast<std::int64_t>(rng.next_below(5)),
                                 static_cast<std::int64_t>(rng.next_below(5)),
                                 static_cast<std::int64_t>(rng.next_below(5))};
      return Box{lo, hi};
    };
    const Box a = rand_box(), b = rand_box();
    const auto pieces = box_difference(a, b);
    // Pieces are pairwise disjoint, inside a, outside b.
    std::int64_t cells = 0;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      cells += pieces[i].num_cells();
      EXPECT_TRUE(a.contains(pieces[i]));
      EXPECT_FALSE(pieces[i].intersects(b));
      for (std::size_t j = i + 1; j < pieces.size(); ++j)
        EXPECT_FALSE(pieces[i].intersects(pieces[j]));
    }
    const auto overlap = a.intersect(b);
    const std::int64_t expected =
        a.num_cells() - (overlap ? overlap->num_cells() : 0);
    EXPECT_EQ(cells, expected);
  }
}

TEST(BoxArrayOps, CoversAndDisjoint) {
  BoxArray ba({box(0, 0, 0, 3, 3, 3), box(4, 0, 0, 7, 3, 3)});
  EXPECT_TRUE(ba.is_disjoint());
  EXPECT_TRUE(ba.covers(box(0, 0, 0, 7, 3, 3)));
  EXPECT_FALSE(ba.covers(box(0, 0, 0, 8, 3, 3)));
  EXPECT_EQ(ba.num_cells(), 128);
  EXPECT_EQ(ba.minimal_bounding_box(), box(0, 0, 0, 7, 3, 3));
}

TEST(BoxArrayOps, OverlapDetected) {
  BoxArray ba({box(0, 0, 0, 3, 3, 3), box(3, 0, 0, 5, 3, 3)});
  EXPECT_FALSE(ba.is_disjoint());
}

TEST(BoxArrayOps, ContainsCell) {
  BoxArray ba({box(0, 0, 0, 1, 1, 1)});
  EXPECT_TRUE(ba.contains_cell({1, 1, 1}));
  EXPECT_FALSE(ba.contains_cell({2, 1, 1}));
}

TEST(FArrayBoxOps, GlobalIndexing) {
  FArrayBox fab(box(4, 4, 4, 7, 7, 7), 0.0);
  fab.at({5, 6, 7}) = 2.5;
  EXPECT_DOUBLE_EQ(fab.at({5, 6, 7}), 2.5);
  EXPECT_DOUBLE_EQ(fab.at({4, 4, 4}), 0.0);
}

TEST(FArrayBoxOps, CopyFromOverlap) {
  FArrayBox dst(box(0, 0, 0, 3, 3, 3), 0.0);
  FArrayBox src(box(2, 2, 2, 5, 5, 5), 7.0);
  dst.copy_from(src);
  EXPECT_DOUBLE_EQ(dst.at({2, 2, 2}), 7.0);
  EXPECT_DOUBLE_EQ(dst.at({3, 3, 3}), 7.0);
  EXPECT_DOUBLE_EQ(dst.at({1, 1, 1}), 0.0);
}

TEST(Sampling, NearestUpsampleBlocks) {
  Array3<double> coarse({2, 2, 2});
  for (std::int64_t i = 0; i < 8; ++i) coarse[i] = static_cast<double>(i);
  const Array3<double> fine = upsample_nearest(coarse.view(), 2);
  EXPECT_EQ(fine.shape(), (Shape3{4, 4, 4}));
  EXPECT_DOUBLE_EQ(fine(0, 0, 0), coarse(0, 0, 0));
  EXPECT_DOUBLE_EQ(fine(1, 1, 1), coarse(0, 0, 0));
  EXPECT_DOUBLE_EQ(fine(2, 0, 0), coarse(1, 0, 0));
  EXPECT_DOUBLE_EQ(fine(3, 3, 3), coarse(1, 1, 1));
}

TEST(Sampling, TrilinearReproducesLinearField) {
  // Trilinear prolongation is exact on affine data (away from clamps).
  Array3<double> coarse({8, 8, 8});
  for (std::int64_t k = 0; k < 8; ++k)
    for (std::int64_t j = 0; j < 8; ++j)
      for (std::int64_t i = 0; i < 8; ++i)
        coarse(i, j, k) = 2.0 * i + 3.0 * j - k;
  const Array3<double> fine = upsample_trilinear(coarse.view(), 2);
  // Interior fine cell centers: x_f = (i + 0.5)/2 - 0.5.
  for (std::int64_t k = 2; k < 14; ++k)
    for (std::int64_t j = 2; j < 14; ++j)
      for (std::int64_t i = 2; i < 14; ++i) {
        const double x = (i + 0.5) / 2.0 - 0.5;
        const double y = (j + 0.5) / 2.0 - 0.5;
        const double z = (k + 0.5) / 2.0 - 0.5;
        EXPECT_NEAR(fine(i, j, k), 2.0 * x + 3.0 * y - z, 1e-12);
      }
}

TEST(Sampling, CoarsenAverageConserves) {
  Array3<double> fine({4, 4, 4});
  Rng rng(23);
  double total = 0;
  for (std::int64_t i = 0; i < fine.size(); ++i) {
    fine[i] = rng.normal();
    total += fine[i];
  }
  const Array3<double> coarse = coarsen_average(fine.view(), 2);
  double coarse_total = 0;
  for (std::int64_t i = 0; i < coarse.size(); ++i)
    coarse_total += coarse[i] * 8.0;
  EXPECT_NEAR(total, coarse_total, 1e-10);
}

TEST(Sampling, CoarsenThenUpsampleIdentityOnBlockConstant) {
  Array3<double> fine({4, 4, 4});
  for (std::int64_t k = 0; k < 4; ++k)
    for (std::int64_t j = 0; j < 4; ++j)
      for (std::int64_t i = 0; i < 4; ++i)
        fine(i, j, k) = static_cast<double>((i / 2) + 10 * (j / 2) +
                                            100 * (k / 2));
  const Array3<double> back =
      upsample_nearest(coarsen_average(fine.view(), 2).view(), 2);
  for (std::int64_t i = 0; i < fine.size(); ++i)
    EXPECT_DOUBLE_EQ(back[i], fine[i]);
}

/// A small two-level hierarchy with analytically known contents:
/// coarse domain 8^3 (one patch), one fine patch covering the refined
/// region [4..11]^3 in fine index space (= coarse [2..5]^3).
AmrHierarchy small_hierarchy() {
  AmrHierarchy hier(2);
  AmrLevel l0;
  l0.domain = box(0, 0, 0, 7, 7, 7);
  FArrayBox cfab(l0.domain);
  for (std::int64_t k = 0; k < 8; ++k)
    for (std::int64_t j = 0; j < 8; ++j)
      for (std::int64_t i = 0; i < 8; ++i)
        cfab.at({i, j, k}) = 100.0 + static_cast<double>(i + j + k);
  l0.box_array.push_back(l0.domain);
  l0.fabs.push_back(std::move(cfab));
  hier.add_level(std::move(l0));

  AmrLevel l1;
  l1.domain = box(0, 0, 0, 15, 15, 15);
  const Box fine_box = box(4, 4, 4, 11, 11, 11);
  FArrayBox ffab(fine_box);
  for (std::int64_t k = 4; k <= 11; ++k)
    for (std::int64_t j = 4; j <= 11; ++j)
      for (std::int64_t i = 4; i <= 11; ++i)
        ffab.at({i, j, k}) = 1000.0 + static_cast<double>(i + j + k);
  l1.box_array.push_back(fine_box);
  l1.fabs.push_back(std::move(ffab));
  hier.add_level(std::move(l1));
  return hier;
}

TEST(Hierarchy, CoveredMaskMatchesFinePatch) {
  const AmrHierarchy hier = small_hierarchy();
  const auto masks = hier.covered_masks(0);
  ASSERT_EQ(masks.size(), 1u);
  std::int64_t covered = 0;
  for (std::int64_t i = 0; i < masks[0].size(); ++i) covered += masks[0][i];
  EXPECT_EQ(covered, 4 * 4 * 4);  // fine box coarsened = [2..5]^3
  EXPECT_EQ(masks[0][Box(IntVect{0, 0, 0}, IntVect{7, 7, 7})
                         .flat_index({2, 2, 2})],
            1);
  EXPECT_EQ(masks[0][Box(IntVect{0, 0, 0}, IntVect{7, 7, 7})
                         .flat_index({1, 2, 2})],
            0);
}

TEST(Hierarchy, FinestLevelHasNoCoveredCells) {
  const AmrHierarchy hier = small_hierarchy();
  for (const auto& mask : hier.covered_masks(1))
    for (std::int64_t i = 0; i < mask.size(); ++i) EXPECT_EQ(mask[i], 0);
}

TEST(Hierarchy, CompositeUsesFineWhereCovered) {
  const AmrHierarchy hier = small_hierarchy();
  const Array3<double> composite = hier.composite_uniform();
  EXPECT_EQ(composite.shape(), (Shape3{16, 16, 16}));
  // Inside the fine patch: fine values.
  EXPECT_DOUBLE_EQ(composite(4, 4, 4), 1000.0 + 12.0);
  EXPECT_DOUBLE_EQ(composite(11, 11, 11), 1000.0 + 33.0);
  // Outside: upsampled coarse values (fine cell 0 -> coarse cell 0).
  EXPECT_DOUBLE_EQ(composite(0, 0, 0), 100.0);
  EXPECT_DOUBLE_EQ(composite(15, 15, 15), 100.0 + 21.0);
  EXPECT_DOUBLE_EQ(composite(1, 0, 0), 100.0);  // same coarse cell
}

TEST(Hierarchy, DensitySumsToOne) {
  const AmrHierarchy hier = small_hierarchy();
  const auto stats = hier.level_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_NEAR(stats[0].density + stats[1].density, 1.0, 1e-12);
  // Fine patch covers 8^3 of 16^3 = 1/8 of the domain.
  EXPECT_NEAR(stats[1].density, 1.0 / 8.0, 1e-12);
  EXPECT_NEAR(stats[0].covered_fraction, 64.0 / 512.0, 1e-12);
}

TEST(Hierarchy, SynchronizeCoarseFromFine) {
  AmrHierarchy hier = small_hierarchy();
  hier.synchronize_coarse_from_fine();
  // Covered coarse cell (2,2,2) should now hold the average of fine cells
  // (4..5)^3: values 1000 + (i+j+k) over that block; mean i+j+k = 13.5.
  EXPECT_NEAR(hier.level(0).fabs[0].at({2, 2, 2}), 1013.5, 1e-12);
  // Uncovered coarse cells unchanged.
  EXPECT_DOUBLE_EQ(hier.level(0).fabs[0].at({0, 0, 0}), 100.0);
}

TEST(Hierarchy, RatioToFinest) {
  const AmrHierarchy hier = small_hierarchy();
  EXPECT_EQ(hier.ratio_to_finest(0), 2);
  EXPECT_EQ(hier.ratio_to_finest(1), 1);
}

TEST(Hierarchy, RejectsOverlappingPatches) {
  AmrHierarchy hier(2);
  AmrLevel l0;
  l0.domain = box(0, 0, 0, 7, 7, 7);
  l0.box_array.push_back(box(0, 0, 0, 4, 7, 7));
  l0.box_array.push_back(box(4, 0, 0, 7, 7, 7));  // overlaps at x=4
  l0.fabs.emplace_back(box(0, 0, 0, 4, 7, 7));
  l0.fabs.emplace_back(box(4, 0, 0, 7, 7, 7));
  EXPECT_THROW(hier.add_level(std::move(l0)), Error);
}

TEST(Hierarchy, RejectsLevelZeroGaps) {
  AmrHierarchy hier(2);
  AmrLevel l0;
  l0.domain = box(0, 0, 0, 7, 7, 7);
  l0.box_array.push_back(box(0, 0, 0, 3, 7, 7));  // misses x in [4..7]
  l0.fabs.emplace_back(box(0, 0, 0, 3, 7, 7));
  EXPECT_THROW(hier.add_level(std::move(l0)), Error);
}

TEST(Hierarchy, RejectsFinePatchOutsideDomain) {
  AmrHierarchy hier = small_hierarchy();
  AmrLevel l2;
  l2.domain = box(0, 0, 0, 31, 31, 31);
  l2.box_array.push_back(box(30, 30, 30, 33, 33, 33));
  l2.fabs.emplace_back(box(30, 30, 30, 33, 33, 33));
  EXPECT_THROW(hier.add_level(std::move(l2)), Error);
}

}  // namespace
}  // namespace amrvis::amr
