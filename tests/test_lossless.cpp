// Lossless substrate tests: Huffman and LZSS must round-trip arbitrary
// payloads bit-exactly.

#include <gtest/gtest.h>

#include "compress/huffman.hpp"
#include "compress/lzss.hpp"
#include "util/rng.hpp"

namespace amrvis::compress {
namespace {

TEST(Huffman, EmptyStream) {
  const Bytes blob = huffman_encode({});
  EXPECT_TRUE(huffman_decode(blob).empty());
}

TEST(Huffman, SingleSymbolRepeated) {
  std::vector<std::uint32_t> syms(1000, 42);
  const Bytes blob = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(blob), syms);
  EXPECT_LT(blob.size(), 200u);  // ~1 bit per symbol + table
}

TEST(Huffman, TwoSymbols) {
  std::vector<std::uint32_t> syms;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i)
    syms.push_back(rng.next_double() < 0.9 ? 7 : 1234567);
  const Bytes blob = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(blob), syms);
}

TEST(Huffman, SkewedQuantizerLikeDistribution) {
  // Quantizer output: huge spike at the center code, geometric tails.
  std::vector<std::uint32_t> syms;
  Rng rng(11);
  for (int i = 0; i < 100000; ++i) {
    const double g = rng.normal() * 3.0;
    syms.push_back(static_cast<std::uint32_t>(32768 + std::lround(g)));
  }
  const Bytes blob = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(blob), syms);
  // Entropy of N(0,3) quantized ~ 3.4 bits; table overhead small.
  EXPECT_LT(blob.size(), 100000u);  // < 8 bits per symbol
}

TEST(Huffman, UniformWideAlphabet) {
  std::vector<std::uint32_t> syms;
  Rng rng(17);
  for (int i = 0; i < 20000; ++i)
    syms.push_back(static_cast<std::uint32_t>(rng.next_below(4096)));
  const Bytes blob = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(blob), syms);
}

TEST(Huffman, SingleSymbolOnce) {
  // Minimal stream hitting the one-leaf tree (length-1 code) path.
  const std::vector<std::uint32_t> syms{987654321u};
  const Bytes blob = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(blob), syms);
}

TEST(Huffman, EmptyStreamBlobIsHeaderOnly) {
  // An empty stream must not serialize a code table.
  const Bytes blob = huffman_encode({});
  EXPECT_EQ(blob.size(), sizeof(std::uint64_t));
  EXPECT_TRUE(huffman_decode(blob).empty());
}

TEST(Huffman, FibonacciSkewHitsDepthClamp) {
  // Fibonacci-weighted frequencies build a maximally unbalanced Huffman
  // tree: 34 distinct symbols give a deepest leaf of 33 > kMaxCodeLen
  // (32), forcing the depth clamp + Kraft repair in build_code_lengths.
  // Fibonacci is the minimal total weight achieving that depth, so this
  // is the smallest stream that genuinely exercises the clamp.
  constexpr int kLeaves = 34;
  std::vector<std::uint64_t> fib{1, 1};
  while (fib.size() < kLeaves) fib.push_back(fib.end()[-1] + fib.end()[-2]);
  std::vector<std::uint32_t> syms;
  std::uint64_t total = 0;
  for (const std::uint64_t f : fib) total += f;
  syms.reserve(static_cast<std::size_t>(total));
  for (int s = 0; s < kLeaves; ++s)
    syms.insert(syms.end(), static_cast<std::size_t>(fib[static_cast<std::size_t>(s)]),
                static_cast<std::uint32_t>(s * 7919));
  const Bytes blob = huffman_encode(syms);
  // decode asserts every code length <= kMaxCodeLen, so a broken clamp or
  // Kraft repair surfaces as a throw or a mismatch here.
  EXPECT_EQ(huffman_decode(blob), syms);
}

TEST(Huffman, AllDistinctSymbols) {
  std::vector<std::uint32_t> syms;
  for (std::uint32_t i = 0; i < 2000; ++i) syms.push_back(i * 977 + 3);
  const Bytes blob = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(blob), syms);
}

class LzssRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LzssRoundTrip, RandomBytes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Bytes input;
  const int n = GetParam() * 1000;
  for (int i = 0; i < n; ++i)
    input.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  const Bytes blob = lzss_encode(input);
  EXPECT_EQ(lzss_decode(blob), input);
}

TEST_P(LzssRoundTrip, RepetitiveBytes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  Bytes input;
  const int n = GetParam() * 1000;
  while (static_cast<int>(input.size()) < n) {
    // Random short motif repeated a random number of times.
    const std::size_t motif_len = 1 + rng.next_below(12);
    const std::size_t reps = 1 + rng.next_below(40);
    Bytes motif;
    for (std::size_t i = 0; i < motif_len; ++i)
      motif.push_back(static_cast<std::uint8_t>(rng.next_below(8)));
    for (std::size_t r = 0; r < reps; ++r)
      input.insert(input.end(), motif.begin(), motif.end());
  }
  const Bytes blob = lzss_encode(input);
  EXPECT_EQ(lzss_decode(blob), input);
  EXPECT_LT(blob.size(), input.size());  // must actually compress
}

INSTANTIATE_TEST_SUITE_P(Sizes, LzssRoundTrip, ::testing::Values(1, 5, 37));

TEST(Lzss, Empty) {
  const Bytes blob = lzss_encode({});
  EXPECT_TRUE(lzss_decode(blob).empty());
}

TEST(Lzss, SingleByte) {
  const Bytes input{0xAB};
  EXPECT_EQ(lzss_decode(lzss_encode(input)), input);
}

TEST(Lzss, AllZeros) {
  Bytes input(100000, 0);
  const Bytes blob = lzss_encode(input);
  EXPECT_EQ(lzss_decode(blob), input);
  EXPECT_LT(blob.size(), 2000u);
}

TEST(Lzss, OverlappingMatch) {
  // "abcabcabc..." forces self-overlapping copies.
  Bytes input;
  for (int i = 0; i < 10000; ++i)
    input.push_back(static_cast<std::uint8_t>('a' + (i % 3)));
  EXPECT_EQ(lzss_decode(lzss_encode(input)), input);
}

TEST(Lzss, LongRangeMatchAtWindowEdge) {
  // Motif recurs exactly 64 KiB apart: offset == window size boundary.
  Rng rng(23);
  Bytes input;
  Bytes motif;
  for (int i = 0; i < 64; ++i)
    motif.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  input.insert(input.end(), motif.begin(), motif.end());
  while (input.size() < (1u << 16))
    input.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  input.insert(input.end(), motif.begin(), motif.end());
  EXPECT_EQ(lzss_decode(lzss_encode(input)), input);
}

// --------------------------- LZSS v2 ----------------------------------

constexpr LzssLevel kAllLevels[] = {LzssLevel::kFast, LzssLevel::kLazy,
                                    LzssLevel::kOptimal};

/// Adversarial corpora for the parser levels: low-entropy quantizer-like
/// bytes, pure noise, overlapping-run and deferred-match patterns.
std::vector<Bytes> v2_corpora() {
  std::vector<Bytes> inputs;
  Rng rng(77);
  Bytes low;
  for (int i = 0; i < 200000; ++i)
    low.push_back(static_cast<std::uint8_t>(rng.next_below(16)));
  inputs.push_back(std::move(low));
  Bytes noise;
  for (int i = 0; i < 50000; ++i)
    noise.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  inputs.push_back(std::move(noise));
  Bytes runs;
  for (int i = 0; i < 30000; ++i)
    runs.push_back(static_cast<std::uint8_t>('a' + (i % 3)));
  inputs.push_back(std::move(runs));
  // Classic lazy-parse win, one instance per random 8-byte block P:
  // emit P[0..3], a separator, P[1..7], a separator, then P itself. At P,
  // greedy grabs the len-4 match on P[0..3] and needs a second token for
  // the tail; lazy defers one byte to take the len-7 match on P[1..7]
  // (literal + one match). Random blocks keep the reps from matching
  // each other, unlike a periodic bait that greedy also parses well.
  Bytes lazy_bait;
  for (int r = 0; r < 2000; ++r) {
    std::uint8_t p[8];
    for (auto& b : p) b = static_cast<std::uint8_t>(rng.next_below(256));
    lazy_bait.insert(lazy_bait.end(), p, p + 4);
    lazy_bait.push_back(0xAA);
    lazy_bait.insert(lazy_bait.end(), p + 1, p + 8);
    lazy_bait.push_back(0xBB);
    lazy_bait.insert(lazy_bait.end(), p, p + 8);
    lazy_bait.push_back(0xCC);
  }
  inputs.push_back(std::move(lazy_bait));
  inputs.push_back({});
  inputs.push_back({0x42});
  inputs.push_back({1, 2, 3});
  inputs.push_back(Bytes(7, 7));
  return inputs;
}

TEST(LzssV2, AllLevelsRoundTripAllCorpora) {
  for (const Bytes& input : v2_corpora())
    for (const LzssLevel level : kAllLevels) {
      const Bytes blob = lzss_encode(input, level);
      EXPECT_EQ(lzss_decode(blob), input)
          << "level " << static_cast<int>(level) << " input size "
          << input.size();
    }
}

TEST(LzssV2, HeaderCarriesVersionBitAndTag) {
  for (const LzssLevel level : kAllLevels) {
    const Bytes blob = lzss_encode(Bytes{1, 2, 3, 4}, level);
    ASSERT_GE(blob.size(), 9u);
    EXPECT_NE(blob[7] & 0x80, 0) << "bit 63 of the size word not set";
    EXPECT_EQ(blob[8], 0xA2) << "bad magic/version byte";
  }
  // v1 blobs keep bit 63 clear — the version switch can never misfire.
  const Bytes v1 = lzss_encode_v1(Bytes{1, 2, 3, 4});
  EXPECT_EQ(v1[7] & 0x80, 0);
}

TEST(LzssV2, EmptyInputHasEmptyTokenStream) {
  // The v1 writer emits a dangling control byte for empty input; v2 must
  // not (exact token consumption makes it illegal).
  const Bytes blob = lzss_encode({});
  // u64 header + tag + u64 token_len(0), nothing else.
  EXPECT_EQ(blob.size(), 8u + 1u + 8u);
  EXPECT_TRUE(lzss_decode(blob).empty());
  const Bytes v1 = lzss_encode_v1({});
  EXPECT_EQ(v1.size(), 8u + 8u + 1u);  // the dangling control byte
  EXPECT_TRUE(lzss_decode(v1).empty());  // v1 leniency keeps accepting it
}

TEST(LzssV2, OptimalNeverWorseAndLazyBeatsGreedyOnBait) {
  for (const Bytes& input : v2_corpora()) {
    const std::size_t fast = lzss_encode(input, LzssLevel::kFast).size();
    const std::size_t lazy = lzss_encode(input, LzssLevel::kLazy).size();
    const std::size_t opt = lzss_encode(input, LzssLevel::kOptimal).size();
    // The DP is exact for the cost model, so no level can beat it by
    // more than the sub-byte control-group tail slack.
    EXPECT_LE(opt, lazy + 1) << "input size " << input.size();
    EXPECT_LE(opt, fast + 1) << "input size " << input.size();
  }
  // On the deferred-match bait the lazy parse must strictly beat greedy
  // (same chain depth would be ideal, but v1 greedy is the baseline the
  // tentpole claims to improve on).
  const Bytes bait = v2_corpora()[3];
  EXPECT_LT(lzss_encode(bait, LzssLevel::kLazy).size(),
            lzss_encode_v1(bait).size());
}

TEST(LzssV2, V1BlobsStillDecode) {
  Rng rng(31);
  Bytes input;
  for (int i = 0; i < 50000; ++i)
    input.push_back(static_cast<std::uint8_t>(rng.next_below(32)));
  EXPECT_EQ(lzss_decode(lzss_encode_v1(input)), input);
}

TEST(LzssV2, BadVersionTagThrows) {
  Bytes blob = lzss_encode(Bytes{1, 2, 3, 4});
  blob[8] = 0xA3;  // wrong version nibble
  EXPECT_THROW((void)lzss_decode(blob), Error);
  blob[8] = 0x12;  // wrong magic nibble
  EXPECT_THROW((void)lzss_decode(blob), Error);
}

// ----------------- decoder strictness regressions ----------------------

/// Hand-build a blob: `out_size` header (v2-flagged or v1 raw) + tag +
/// the raw token bytes, exactly as the wire format specifies.
Bytes build_blob(bool v2, std::uint64_t out_size, const Bytes& tokens) {
  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint64_t>(v2 ? (out_size | (std::uint64_t{1} << 63))
                          : out_size);
  if (v2) w.put<std::uint8_t>(0xA2);
  w.put_blob(tokens);
  return blob;
}

TEST(LzssStrict, MatchOverrunningOutSizeThrowsBothVersions) {
  // Regression for the seed decoder bug: control byte 0x10 = 4 literals
  // then a match; the match (off=1, len=4) would push the output to 8
  // bytes while the header declares 5. The seed decoder copied the full
  // match and returned an oversized buffer; now it must throw typed
  // kCorruptPayload — in both blob versions.
  const Bytes tokens{0x10, 'a', 'b', 'c', 'd', 0x01, 0x00, 0x00};
  for (const bool v2 : {false, true}) {
    const Bytes blob = build_blob(v2, 5, tokens);
    try {
      (void)lzss_decode(blob);
      FAIL() << "match overrun not detected (v2=" << v2 << ")";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCorruptPayload) << e.what();
    }
  }
}

TEST(LzssStrict, TrailingTokenBytesThrowInV2Only) {
  // out_size 1 is satisfied by the first literal; a second token byte
  // dangles. v1 historically ignored it (and frozen v1 payloads rely on
  // the leniency — see the golden suite); v2 must reject.
  const Bytes tokens{0x00, 'A', 0xFF};
  EXPECT_EQ(lzss_decode(build_blob(false, 1, tokens)), Bytes{'A'});
  try {
    (void)lzss_decode(build_blob(true, 1, tokens));
    FAIL() << "trailing token bytes accepted in v2";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPayload) << e.what();
  }
}

TEST(LzssStrict, SetControlBitsPastFinalTokenThrowInV2Only) {
  // Control byte 0x02 claims token #2 is a match, but out_size is
  // satisfied after the first literal — the set bit describes nothing.
  const Bytes tokens{0x02, 'A'};
  EXPECT_EQ(lzss_decode(build_blob(false, 1, tokens)), Bytes{'A'});
  try {
    (void)lzss_decode(build_blob(true, 1, tokens));
    FAIL() << "set control bits past the final token accepted in v2";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPayload) << e.what();
  }
}

TEST(LzssStrict, TrailingBlobBytesThrowInV2Only) {
  // Bytes after the length-prefixed token stream: v2 rejects, v1 keeps
  // the historical leniency.
  for (const bool v2 : {false, true}) {
    const Bytes input{1, 2, 3};
    Bytes blob = v2 ? lzss_encode(input) : lzss_encode_v1(input);
    blob.push_back(0xEE);
    if (v2) {
      EXPECT_THROW((void)lzss_decode(blob), Error);
    } else {
      EXPECT_EQ(lzss_decode(blob), (Bytes{1, 2, 3}));
    }
  }
}

TEST(LzssStrict, TruncatedStreamsThrowTyped) {
  // Every prefix of a valid v2 blob either throws a typed Error or (for
  // the empty-output header prefix) decodes empty — never UB or a crash.
  Bytes input;
  for (int i = 0; i < 500; ++i)
    input.push_back(static_cast<std::uint8_t>(i % 7));
  const Bytes blob = lzss_encode(input);
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    const Bytes prefix(blob.begin(),
                       blob.begin() + static_cast<std::ptrdiff_t>(cut));
    try {
      const Bytes out = lzss_decode(prefix);
      EXPECT_TRUE(out.empty());
    } catch (const Error&) {
      // typed throw is the expected path
    }
  }
}

}  // namespace
}  // namespace amrvis::compress
