// Lossless substrate tests: Huffman and LZSS must round-trip arbitrary
// payloads bit-exactly.

#include <gtest/gtest.h>

#include "compress/huffman.hpp"
#include "compress/lzss.hpp"
#include "util/rng.hpp"

namespace amrvis::compress {
namespace {

TEST(Huffman, EmptyStream) {
  const Bytes blob = huffman_encode({});
  EXPECT_TRUE(huffman_decode(blob).empty());
}

TEST(Huffman, SingleSymbolRepeated) {
  std::vector<std::uint32_t> syms(1000, 42);
  const Bytes blob = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(blob), syms);
  EXPECT_LT(blob.size(), 200u);  // ~1 bit per symbol + table
}

TEST(Huffman, TwoSymbols) {
  std::vector<std::uint32_t> syms;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i)
    syms.push_back(rng.next_double() < 0.9 ? 7 : 1234567);
  const Bytes blob = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(blob), syms);
}

TEST(Huffman, SkewedQuantizerLikeDistribution) {
  // Quantizer output: huge spike at the center code, geometric tails.
  std::vector<std::uint32_t> syms;
  Rng rng(11);
  for (int i = 0; i < 100000; ++i) {
    const double g = rng.normal() * 3.0;
    syms.push_back(static_cast<std::uint32_t>(32768 + std::lround(g)));
  }
  const Bytes blob = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(blob), syms);
  // Entropy of N(0,3) quantized ~ 3.4 bits; table overhead small.
  EXPECT_LT(blob.size(), 100000u);  // < 8 bits per symbol
}

TEST(Huffman, UniformWideAlphabet) {
  std::vector<std::uint32_t> syms;
  Rng rng(17);
  for (int i = 0; i < 20000; ++i)
    syms.push_back(static_cast<std::uint32_t>(rng.next_below(4096)));
  const Bytes blob = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(blob), syms);
}

TEST(Huffman, SingleSymbolOnce) {
  // Minimal stream hitting the one-leaf tree (length-1 code) path.
  const std::vector<std::uint32_t> syms{987654321u};
  const Bytes blob = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(blob), syms);
}

TEST(Huffman, EmptyStreamBlobIsHeaderOnly) {
  // An empty stream must not serialize a code table.
  const Bytes blob = huffman_encode({});
  EXPECT_EQ(blob.size(), sizeof(std::uint64_t));
  EXPECT_TRUE(huffman_decode(blob).empty());
}

TEST(Huffman, FibonacciSkewHitsDepthClamp) {
  // Fibonacci-weighted frequencies build a maximally unbalanced Huffman
  // tree: 34 distinct symbols give a deepest leaf of 33 > kMaxCodeLen
  // (32), forcing the depth clamp + Kraft repair in build_code_lengths.
  // Fibonacci is the minimal total weight achieving that depth, so this
  // is the smallest stream that genuinely exercises the clamp.
  constexpr int kLeaves = 34;
  std::vector<std::uint64_t> fib{1, 1};
  while (fib.size() < kLeaves) fib.push_back(fib.end()[-1] + fib.end()[-2]);
  std::vector<std::uint32_t> syms;
  std::uint64_t total = 0;
  for (const std::uint64_t f : fib) total += f;
  syms.reserve(static_cast<std::size_t>(total));
  for (int s = 0; s < kLeaves; ++s)
    syms.insert(syms.end(), static_cast<std::size_t>(fib[static_cast<std::size_t>(s)]),
                static_cast<std::uint32_t>(s * 7919));
  const Bytes blob = huffman_encode(syms);
  // decode asserts every code length <= kMaxCodeLen, so a broken clamp or
  // Kraft repair surfaces as a throw or a mismatch here.
  EXPECT_EQ(huffman_decode(blob), syms);
}

TEST(Huffman, AllDistinctSymbols) {
  std::vector<std::uint32_t> syms;
  for (std::uint32_t i = 0; i < 2000; ++i) syms.push_back(i * 977 + 3);
  const Bytes blob = huffman_encode(syms);
  EXPECT_EQ(huffman_decode(blob), syms);
}

class LzssRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(LzssRoundTrip, RandomBytes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Bytes input;
  const int n = GetParam() * 1000;
  for (int i = 0; i < n; ++i)
    input.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  const Bytes blob = lzss_encode(input);
  EXPECT_EQ(lzss_decode(blob), input);
}

TEST_P(LzssRoundTrip, RepetitiveBytes) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  Bytes input;
  const int n = GetParam() * 1000;
  while (static_cast<int>(input.size()) < n) {
    // Random short motif repeated a random number of times.
    const std::size_t motif_len = 1 + rng.next_below(12);
    const std::size_t reps = 1 + rng.next_below(40);
    Bytes motif;
    for (std::size_t i = 0; i < motif_len; ++i)
      motif.push_back(static_cast<std::uint8_t>(rng.next_below(8)));
    for (std::size_t r = 0; r < reps; ++r)
      input.insert(input.end(), motif.begin(), motif.end());
  }
  const Bytes blob = lzss_encode(input);
  EXPECT_EQ(lzss_decode(blob), input);
  EXPECT_LT(blob.size(), input.size());  // must actually compress
}

INSTANTIATE_TEST_SUITE_P(Sizes, LzssRoundTrip, ::testing::Values(1, 5, 37));

TEST(Lzss, Empty) {
  const Bytes blob = lzss_encode({});
  EXPECT_TRUE(lzss_decode(blob).empty());
}

TEST(Lzss, SingleByte) {
  const Bytes input{0xAB};
  EXPECT_EQ(lzss_decode(lzss_encode(input)), input);
}

TEST(Lzss, AllZeros) {
  Bytes input(100000, 0);
  const Bytes blob = lzss_encode(input);
  EXPECT_EQ(lzss_decode(blob), input);
  EXPECT_LT(blob.size(), 2000u);
}

TEST(Lzss, OverlappingMatch) {
  // "abcabcabc..." forces self-overlapping copies.
  Bytes input;
  for (int i = 0; i < 10000; ++i)
    input.push_back(static_cast<std::uint8_t>('a' + (i % 3)));
  EXPECT_EQ(lzss_decode(lzss_encode(input)), input);
}

TEST(Lzss, LongRangeMatchAtWindowEdge) {
  // Motif recurs exactly 64 KiB apart: offset == window size boundary.
  Rng rng(23);
  Bytes input;
  Bytes motif;
  for (int i = 0; i < 64; ++i)
    motif.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  input.insert(input.end(), motif.begin(), motif.end());
  while (input.size() < (1u << 16))
    input.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  input.insert(input.end(), motif.begin(), motif.end());
  EXPECT_EQ(lzss_decode(lzss_encode(input)), input);
}

}  // namespace
}  // namespace amrvis::compress
