// Round-trip and error-bound tests for the lossy codecs: the foundational
// guarantee everything downstream (visualization studies) relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "compress/compressor.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace amrvis::compress {
namespace {

Array3<double> smooth_field(Shape3 s, std::uint64_t seed = 7) {
  Array3<double> a(s);
  Rng rng(seed);
  const double px = rng.uniform(1.0, 3.0);
  const double py = rng.uniform(1.0, 3.0);
  const double pz = rng.uniform(1.0, 3.0);
  for (std::int64_t k = 0; k < s.nz; ++k)
    for (std::int64_t j = 0; j < s.ny; ++j)
      for (std::int64_t i = 0; i < s.nx; ++i)
        a(i, j, k) = std::sin(px * i * 0.11) * std::cos(py * j * 0.07) +
                     0.3 * std::sin(pz * k * 0.05);
  return a;
}

Array3<double> noisy_field(Shape3 s, std::uint64_t seed = 13) {
  Array3<double> a = smooth_field(s, seed);
  Rng rng(seed * 31 + 1);
  for (std::int64_t i = 0; i < a.size(); ++i) a[i] += 0.2 * rng.normal();
  return a;
}

struct Case {
  const char* codec;
  double abs_eb;
};

class RoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(RoundTrip, SmoothFieldWithinBound) {
  const auto [codec, eb] = GetParam();
  const auto comp = make_compressor(codec);
  const Array3<double> data = smooth_field({33, 20, 17});
  const Bytes blob = comp->compress(data.view(), eb);
  const Array3<double> back = comp->decompress(blob);
  ASSERT_EQ(back.shape(), data.shape());
  EXPECT_LE(max_abs_diff(data.span(), back.span()), eb * 1.0000001);
}

TEST_P(RoundTrip, NoisyFieldWithinBound) {
  const auto [codec, eb] = GetParam();
  const auto comp = make_compressor(codec);
  const Array3<double> data = noisy_field({24, 24, 24});
  const Bytes blob = comp->compress(data.view(), eb);
  const Array3<double> back = comp->decompress(blob);
  EXPECT_LE(max_abs_diff(data.span(), back.span()), eb * 1.0000001);
}

TEST_P(RoundTrip, CompressesSmoothData) {
  const auto [codec, eb] = GetParam();
  if (eb < 1e-6) GTEST_SKIP() << "tiny bounds need not compress";
  const auto comp = make_compressor(codec);
  const Array3<double> data = smooth_field({32, 32, 32});
  const Bytes blob = comp->compress(data.view(), eb);
  EXPECT_LT(blob.size(),
            static_cast<std::size_t>(data.size()) * sizeof(double));
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, RoundTrip,
    ::testing::Values(Case{"sz-lr", 1e-2}, Case{"sz-lr", 1e-4},
                      Case{"sz-lr", 1e-7}, Case{"sz-interp", 1e-2},
                      Case{"sz-interp", 1e-4}, Case{"sz-interp", 1e-7},
                      Case{"zfp-like", 1e-2}, Case{"zfp-like", 1e-4},
                      Case{"zfp-like", 1e-7}),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = info.param.codec;
      for (auto& c : name)
        if (c == '-') c = '_';
      return name + "_eb" + std::to_string(static_cast<int>(
                                -std::log10(info.param.abs_eb)));
    });

TEST(CompressorEdgeCases, ConstantField) {
  for (const char* codec : {"sz-lr", "sz-interp", "zfp-like"}) {
    const auto comp = make_compressor(codec);
    Array3<double> data({16, 16, 16});
    for (std::int64_t i = 0; i < data.size(); ++i) data[i] = 3.25;
    const Bytes blob = comp->compress(data.view(), 1e-3);
    const Array3<double> back = comp->decompress(blob);
    EXPECT_LE(max_abs_diff(data.span(), back.span()), 1e-3) << codec;
    // A constant field must compress extremely well.
    EXPECT_LT(blob.size(), 4096u) << codec;
  }
}

TEST(CompressorEdgeCases, TinyArrays) {
  for (const char* codec : {"sz-lr", "sz-interp", "zfp-like"}) {
    const auto comp = make_compressor(codec);
    for (Shape3 s : {Shape3{1, 1, 1}, Shape3{2, 1, 1}, Shape3{5, 3, 1},
                     Shape3{3, 3, 3}}) {
      const Array3<double> data = noisy_field(s, 99);
      const Bytes blob = comp->compress(data.view(), 1e-4);
      const Array3<double> back = comp->decompress(blob);
      ASSERT_EQ(back.shape(), s) << codec;
      EXPECT_LE(max_abs_diff(data.span(), back.span()), 1e-4 * 1.0000001)
          << codec << " shape " << s.nx << "x" << s.ny << "x" << s.nz;
    }
  }
}

TEST(CompressorEdgeCases, NonMultipleOfBlockSize) {
  const auto comp = make_compressor("sz-lr");
  const Array3<double> data = noisy_field({37, 41, 29}, 5);
  const Bytes blob = comp->compress(data.view(), 1e-3);
  const Array3<double> back = comp->decompress(blob);
  EXPECT_LE(max_abs_diff(data.span(), back.span()), 1e-3 * 1.0000001);
}

TEST(CompressorEdgeCases, ExtremeOutliers) {
  // A field with isolated huge spikes exercises the outlier escape path.
  const auto comp = make_compressor("sz-lr");
  Array3<double> data = smooth_field({20, 20, 20});
  data(3, 4, 5) = 1e12;
  data(10, 11, 12) = -4e11;
  const Bytes blob = comp->compress(data.view(), 1e-3);
  const Array3<double> back = comp->decompress(blob);
  EXPECT_LE(max_abs_diff(data.span(), back.span()), 1e-3 * 1.0000001);
}

TEST(CompressorEdgeCases, RelativeBoundResolution) {
  const Array3<double> data = smooth_field({16, 16, 16});
  const MinMax mm = min_max(data.span());
  const double abs_eb =
      resolve_abs_eb(ErrorBoundMode::kRelative, 1e-3, data.span());
  EXPECT_NEAR(abs_eb, 1e-3 * mm.range(), 1e-12);
  EXPECT_DOUBLE_EQ(
      resolve_abs_eb(ErrorBoundMode::kAbsolute, 0.5, data.span()), 0.5);
}

TEST(CompressorEdgeCases, UnknownNameThrows) {
  EXPECT_THROW(make_compressor("bogus"), Error);
}

TEST(CompressorRatios, InterpBeatsLorenzoOnSmoothData) {
  // The paper's WarpX finding (Fig. 12): global interpolation wins on
  // smooth fields at equal error bound.
  const Array3<double> data = smooth_field({48, 48, 48});
  const auto lr = make_compressor("sz-lr");
  const auto itp = make_compressor("sz-interp");
  const double eb = 1e-3;
  const std::size_t lr_size = lr->compress(data.view(), eb).size();
  const std::size_t itp_size = itp->compress(data.view(), eb).size();
  EXPECT_LT(itp_size, lr_size);
}

}  // namespace
}  // namespace amrvis::compress
