// Chaos soak: many client threads hammer one QueryService while a
// deterministic fault plan (util/fault.hpp) injects decode throws, cache
// insert failures and pool-task delays. The suite pins the fault-tolerance
// contract end to end:
//
//   - no crash, no deadlock, no unhandled exception escapes a request —
//     every failure surfaces as a typed Outcome;
//   - service counters stay coherent (requests == issued, failures and
//     degraded match what the clients observed);
//   - once the plan is exhausted/uninstalled and quarantines are lifted,
//     responses are bit-identical to the fault-free references.
//
// CI runs this under ASan and TSan (ctest -L chaos). The schedule can be
// swapped without a rebuild through AMRVIS_CHAOS_SPEC.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "compress/compressor.hpp"
#include "service/query_service.hpp"
#include "sim/fields.hpp"
#include "sim/tagging.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace amrvis::service {
namespace {

using amr::Box;
using amr::IntVect;
using compress::AmrCompressed;
using compress::compress_hierarchy;
using compress::make_compressor;
using compress::RedundantHandling;

// Deterministic, bounded-count schedule: throws at the tile-decode and
// cache-insert sites (exercising retry, breaker and quarantine paths) plus
// short pool-task delays to widen race windows under TSan. Every rule has
// a finite count so the soak always drains to a fault-free steady state.
constexpr const char* kDefaultSpec =
    "tiledecode:throw:start=3,every=5,count=25;"
    "cacheinsert:throw:start=10,every=9,count=6;"
    "pooltask:delay:every=17,ms=1,count=20";

std::string chaos_spec() {
  const char* env = std::getenv("AMRVIS_CHAOS_SPEC");
  return env != nullptr ? std::string(env) : std::string(kDefaultSpec);
}

struct Fixture {
  std::unique_ptr<compress::Compressor> codec;
  AmrCompressed compressed;
  Box finest_domain;
  double iso = 0.0;
};

/// Same shape as the test_service fixture: two-level hierarchy, small
/// tiles so there is real tile traffic for the faults to land on.
Fixture make_fixture() {
  Array3<double> field = sim::nyx_like_density({32, 32, 32});
  sim::TaggingSpec spec;
  spec.fine_fraction = 0.3;
  spec.block = 4;
  spec.max_grid_size = 16;
  const sim::SyntheticDataset ds =
      sim::build_two_level_hierarchy(std::move(field), spec);
  Fixture f;
  f.codec = make_compressor("chunked-sz-lr@16x16x8");
  f.compressed = compress_hierarchy(ds.hierarchy, *f.codec, 1e-3,
                                    RedundantHandling::kKeep);
  f.finest_domain = f.compressed.domains.back();
  const MinMax mm = compress::hierarchy_min_max(ds.hierarchy);
  f.iso = 0.5 * (mm.min + mm.max);
  return f;
}

void expect_mesh_identical(const vis::TriMesh& a, const vis::TriMesh& b) {
  ASSERT_EQ(a.vertices.size(), b.vertices.size());
  ASSERT_EQ(a.triangles.size(), b.triangles.size());
  EXPECT_EQ(std::memcmp(a.vertices.data(), b.vertices.data(),
                        a.vertices.size() * sizeof(vis::Vec3)),
            0);
  for (std::size_t t = 0; t < a.triangles.size(); ++t)
    ASSERT_EQ(a.triangles[t].v, b.triangles[t].v) << "tri " << t;
}

TEST(ChaosSoak, EightClientsSurviveInjectedFaultsAndRecoverBitExact) {
  const Fixture f = make_fixture();

  // Fault-free references, computed with the uncached primitives before
  // any plan is installed.
  const std::int64_t zmid =
      (f.finest_domain.lo().z + f.finest_domain.hi().z) / 2;
  const IntVect probe{f.finest_domain.lo().x + 5,
                      f.finest_domain.lo().y + 9,
                      f.finest_domain.lo().z + 13};
  const double ref_point =
      amr::sample_point_compressed(f.compressed, *f.codec, probe);
  const Array3<double> ref_plane =
      amr::sample_plane_compressed(f.compressed, *f.codec, 2, zmid);
  const Box roi{{2, 2, 2}, {25, 25, 25}};
  const auto ref_region =
      compress::decompress_level_region(f.compressed, *f.codec, 0, roi);
  const vis::TriMesh ref_mesh = vis::amr_isosurface_streamed(
      f.compressed, *f.codec, f.iso, vis::VisMethod::kDualCell);

  QueryService svc(f.compressed, *f.codec);

  constexpr int kClients = 8;
  constexpr int kReps = 4;
  constexpr int kRequestsPerRep = 3;  // point + region + plane
  std::atomic<int> untyped{0};   // failures without a proper code/message
  std::atomic<int> failed{0};    // !outcome.ok()
  std::atomic<int> degraded{0};  // ok but quarantine/cull degraded
  {
    fault::FaultScope scope(chaos_spec());
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int t = 0; t < kClients; ++t)
      clients.emplace_back([&, t] {
        for (int rep = 0; rep < kReps; ++rep) {
          const Shape3 fs = f.finest_domain.shape();
          const IntVect p{f.finest_domain.lo().x + (3 + t * 5) % fs.nx,
                          f.finest_domain.lo().y + (2 + rep * 7) % fs.ny,
                          f.finest_domain.lo().z + 11 % fs.nz};
          const Request reqs[kRequestsPerRep] = {
              Request::Point(p),
              Request::Region(0, Box{{t, t, 0}, {t + 12, t + 12, 15}}),
              Request::Plane(2, zmid),
          };
          for (const Request& req : reqs) {
            // execute_full must NEVER throw for request-scoped failures;
            // any exception here escapes the thread and aborts the test,
            // which is exactly the regression this soak exists to catch.
            const Response r = svc.execute_full(req);
            if (!r.outcome.ok()) {
              failed.fetch_add(1);
              if (r.outcome.code == ErrorCode::kGeneric ||
                  r.outcome.code == ErrorCode::kOk ||
                  r.outcome.message.empty())
                untyped.fetch_add(1);
            } else if (r.outcome.degraded()) {
              degraded.fetch_add(1);
            }
          }
        }
      });
    for (auto& th : clients) th.join();
  }  // plan uninstalled

  // Counter coherence: exactly one account() per issued request, and the
  // service-wide failure/degraded totals match what the clients saw.
  const auto ctr = svc.counters();
  const auto issued =
      static_cast<std::uint64_t>(kClients * kReps * kRequestsPerRep);
  EXPECT_EQ(ctr.requests, issued);
  EXPECT_EQ(ctr.failures, static_cast<std::uint64_t>(failed.load()));
  EXPECT_EQ(ctr.degraded, static_cast<std::uint64_t>(degraded.load()));
  EXPECT_EQ(untyped.load(), 0);

  // The schedule throws 31 times against max_retries=2; some requests
  // must have needed the retry layer (the exact split is timing-dependent
  // across threads, the floor is not).
  EXPECT_GT(ctr.retries, 0u);

  // Faults gone, quarantines lifted: every response is bit-identical to
  // the fault-free references again.
  svc.unquarantine_all();
  EXPECT_EQ(svc.quarantined_containers(), 0u);

  EXPECT_EQ(svc.point(probe), ref_point);

  const Array3<double> plane = svc.plane(2, zmid);
  ASSERT_EQ(plane.shape(), ref_plane.shape());
  EXPECT_EQ(std::memcmp(plane.data(), ref_plane.data(),
                        static_cast<std::size_t>(plane.size()) *
                            sizeof(double)),
            0);

  const auto region = svc.region(0, roi);
  ASSERT_EQ(region.size(), ref_region.size());
  for (std::size_t rp = 0; rp < region.size(); ++rp) {
    ASSERT_EQ(region[rp].box, ref_region[rp].box);
    ASSERT_EQ(region[rp].data.size(), ref_region[rp].data.size());
    EXPECT_EQ(std::memcmp(region[rp].data.data(), ref_region[rp].data.data(),
                          static_cast<std::size_t>(region[rp].data.size()) *
                              sizeof(double)),
              0);
  }

  const vis::TriMesh mesh = svc.isosurface(f.iso, vis::VisMethod::kDualCell);
  expect_mesh_identical(mesh, ref_mesh);
}

TEST(ChaosSoak, BatchFrontEndIsolatesFaultsPerRequest) {
  // run_batch under a decode-fault schedule: a request that dies must not
  // abort its siblings, and the batch prefetch must swallow its own
  // injected failures (the affected tiles are simply decoded later by the
  // requests that need them).
  const Fixture f = make_fixture();
  QueryService svc(f.compressed, *f.codec);

  std::vector<Request> reqs;
  reqs.push_back(Request::Region(0, Box{{0, 0, 0}, {19, 19, 19}}));
  reqs.push_back(Request::Region(99, Box{{0, 0, 0}, {1, 1, 1}}));  // bad
  reqs.push_back(Request::Region(0, Box{{8, 8, 8}, {27, 27, 27}}));

  std::vector<Response> responses;
  {
    fault::FaultScope scope("tiledecode:throw:start=1,every=3,count=4");
    responses = svc.run_batch(reqs);
  }
  ASSERT_EQ(responses.size(), reqs.size());
  EXPECT_FALSE(responses[1].outcome.ok());  // the bad level stays typed
  EXPECT_EQ(responses[1].outcome.code, ErrorCode::kPrecondition);
  // The two good requests either served fully or report a typed failure /
  // degradation — never a crash, never a half-filled payload with ok().
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    if (responses[i].outcome.ok() && !responses[i].outcome.degraded())
      EXPECT_FALSE(responses[i].patches.empty());
    else if (!responses[i].outcome.ok())
      EXPECT_NE(responses[i].outcome.code, ErrorCode::kGeneric);
  }
  EXPECT_EQ(svc.counters().requests, reqs.size());
}

}  // namespace
}  // namespace amrvis::service
