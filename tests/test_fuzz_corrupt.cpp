// Deterministic single-bit-flip fuzz sweep over the golden container
// blobs: every bit of each blob (the FULL blob for goldens under 16 KiB,
// else the first 4 KiB — headers plus most of the payload) is flipped in
// turn and the result decompressed. The contract under corruption is
// binary: the decode either succeeds (the flip landed in a numerically
// tolerant spot) or throws a typed amrvis::Error — never any other
// exception, never a crash, OOM or hang.
//
// The sweep is exhaustive and deterministic (no RNG), so a regression is
// reproducible from the failing bit index alone. ctest label: fuzz (the
// ASan CI lane runs it with ctest -L fuzz).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "compress/chunked.hpp"
#include "compress/szlr.hpp"
#include "util/bytestream.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace amrvis::compress {
namespace {

std::string data_path(const std::string& file) {
  return std::string(AMRVIS_TEST_DATA_DIR "/") + file;
}

/// Codec matching the golden writers (see tests/test_roi.cpp header).
ChunkedCompressor golden_codec() {
  return ChunkedCompressor(make_compressor("sz-lr"), ChunkShape{8, 8, 4});
}

/// Flip every bit of the blob in turn (full blob under 16 KiB, first
/// 4 KiB above — all goldens today are under the cutoff, so the sweep is
/// exhaustive; the cap only bounds future, larger goldens). Each mutant
/// must decode or throw amrvis::Error.
void sweep_blob(const std::string& file) {
  const Bytes blob = read_file(data_path(file));
  ASSERT_FALSE(blob.empty()) << file;
  const ChunkedCompressor codec = golden_codec();
  // Serial backend: ~60k decode attempts; forking a pool/OpenMP team per
  // mutant would dominate the runtime, and a single thread makes any
  // failing bit index exactly reproducible.
  ScopedParallelBackend serial(ParallelBackend::kSerial);

  const std::size_t nbytes =
      blob.size() < (16u << 10) ? blob.size() : 4096;
  std::int64_t survived = 0;
  std::int64_t rejected = 0;
  Bytes mutant = blob;
  for (std::size_t bit = 0; bit < nbytes * 8; ++bit) {
    const std::size_t byte = bit / 8;
    const auto mask = static_cast<std::uint8_t>(1u << (bit % 8));
    mutant[byte] = static_cast<std::uint8_t>(mutant[byte] ^ mask);
    try {
      const Array3<double> out = codec.decompress(mutant);
      (void)out;
      ++survived;
    } catch (const Error&) {
      ++rejected;  // the pass condition: typed, catchable, no crash
    } catch (const std::exception& e) {
      FAIL() << file << " bit " << bit << ": non-taxonomy exception "
             << e.what();
    }
    mutant[byte] = blob[byte];  // restore for the next flip
  }
  EXPECT_EQ(survived + rejected, static_cast<std::int64_t>(nbytes * 8));
  // Sanity on both sides of the contract: the sweep must actually be
  // exercising the validation paths (header flips reject) and some
  // payload flips must survive as value noise — an all-reject sweep
  // would mean the container rejects its own format.
  EXPECT_GT(rejected, 0) << file;
  EXPECT_GT(survived, 0) << file;
}

TEST(FuzzCorrupt, V1GoldenBlobEveryHeaderAndPayloadBitFlip) {
  sweep_blob("golden_v1_chunked_szlr.bin");
}

TEST(FuzzCorrupt, V2GoldenBlobEveryHeaderAndPayloadBitFlip) {
  sweep_blob("golden_v2_chunked_szlr.bin");
}

TEST(FuzzCorrupt, V3GoldenBlobEveryHeaderAndPayloadBitFlip) {
  sweep_blob("golden_v3_chunked_szlr.bin");
}

TEST(FuzzCorrupt, V4GoldenBlobEveryHeaderAndPayloadBitFlip) {
  // The v4 header adds the max-err and histogram tables: flips landing
  // there must be caught by their validation (negative/NaN err, bucket
  // mass mismatch), never mis-slice the payload.
  sweep_blob("golden_v4_chunked_szlr.bin");
}

TEST(FuzzCorrupt, Lzss2GoldenBlobEveryHeaderAndPayloadBitFlip) {
  // Current-writer golden: v4 container, lzss-v2 tile payloads. Flips in
  // the lzss headers hit the version tag / size-word checks, flips in
  // the token streams hit the v2 strict-consumption checks — all must
  // reject typed, and value-noise flips must still survive.
  sweep_blob("golden_lzss2_chunked_szlr.bin");
}

}  // namespace
}  // namespace amrvis::compress
