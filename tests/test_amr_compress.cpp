// Tests for AMR-aware compression: per-level/per-patch compression with a
// shared relative bound, redundant-data handling, and structural fidelity
// of the decompressed hierarchy.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>

#include "compress/amr_compress.hpp"
#include "compress/chunked.hpp"
#include "compress/compressor.hpp"
#include "sim/fields.hpp"
#include "sim/tagging.hpp"
#include "util/stats.hpp"

namespace amrvis::compress {
namespace {

sim::SyntheticDataset make_test_dataset(double fine_fraction = 0.3) {
  Array3<double> field = sim::nyx_like_density({32, 32, 32});
  sim::TaggingSpec spec;
  spec.fine_fraction = fine_fraction;
  spec.block = 4;
  spec.max_grid_size = 16;
  return sim::build_two_level_hierarchy(std::move(field), spec);
}

struct Case {
  const char* codec;
  double rel_eb;
  RedundantHandling handling;
};

class AmrRoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(AmrRoundTrip, EveryLevelWithinGlobalBound) {
  const auto [codec_name, rel_eb, handling] = GetParam();
  const auto codec = make_compressor(codec_name);
  const sim::SyntheticDataset ds = make_test_dataset();

  const AmrCompressed compressed =
      compress_hierarchy(ds.hierarchy, *codec, rel_eb, handling);
  const amr::AmrHierarchy back = decompress_hierarchy(compressed, *codec);

  const MinMax mm = hierarchy_min_max(ds.hierarchy);
  const double abs_eb = rel_eb * mm.range();
  EXPECT_NEAR(compressed.abs_eb, abs_eb, 1e-15);

  // Structure preserved.
  ASSERT_EQ(back.num_levels(), ds.hierarchy.num_levels());
  for (int l = 0; l < back.num_levels(); ++l) {
    ASSERT_EQ(back.level(l).fabs.size(), ds.hierarchy.level(l).fabs.size());
    for (std::size_t p = 0; p < back.level(l).fabs.size(); ++p)
      EXPECT_EQ(back.level(l).fabs[p].box(),
                ds.hierarchy.level(l).fabs[p].box());
  }

  // Error bound. With kKeep every stored cell obeys the bound; with
  // kMeanFill covered coarse cells were rebuilt from bounded fine data
  // via conservative averaging, so they also obey it.
  for (int l = 0; l < back.num_levels(); ++l)
    for (std::size_t p = 0; p < back.level(l).fabs.size(); ++p) {
      const auto orig = ds.hierarchy.level(l).fabs[p].values();
      const auto recon = back.level(l).fabs[p].values();
      if (handling == RedundantHandling::kKeep || l == back.num_levels() - 1) {
        EXPECT_LE(max_abs_diff(orig, recon), abs_eb * 1.0000001)
            << "level " << l << " patch " << p;
      } else {
        // Mean-fill: check only uncovered cells against the bound.
        const auto masks = ds.hierarchy.covered_masks(l);
        const auto& mask = masks[p];
        for (std::int64_t i = 0; i < mask.size(); ++i) {
          if (!mask[i]) {
            EXPECT_LE(std::abs(orig[static_cast<std::size_t>(i)] -
                               recon[static_cast<std::size_t>(i)]),
                      abs_eb * 1.0000001);
          }
        }
      }
    }

  // The composite (what analysis consumes) is always bounded: it uses
  // only uncovered coarse data and fine data.
  const Array3<double> orig_c = ds.hierarchy.composite_uniform();
  const Array3<double> back_c = back.composite_uniform();
  EXPECT_LE(max_abs_diff(orig_c.span(), back_c.span()), abs_eb * 1.0000001);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AmrRoundTrip,
    ::testing::Values(
        Case{"sz-lr", 1e-3, RedundantHandling::kKeep},
        Case{"sz-lr", 1e-3, RedundantHandling::kMeanFill},
        Case{"sz-lr", 1e-2, RedundantHandling::kMeanFill},
        Case{"sz-interp", 1e-3, RedundantHandling::kKeep},
        Case{"sz-interp", 1e-2, RedundantHandling::kMeanFill},
        Case{"zfp-like", 1e-3, RedundantHandling::kKeep}),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = info.param.codec;
      for (auto& c : name)
        if (c == '-') c = '_';
      name += info.param.handling == RedundantHandling::kKeep ? "_keep"
                                                              : "_meanfill";
      name += info.param.rel_eb == 1e-3 ? "_eb3" : "_eb2";
      return name;
    });

TEST(AmrCompression, RatioAccounting) {
  const auto codec = make_compressor("sz-lr");
  const sim::SyntheticDataset ds = make_test_dataset();
  const AmrCompressed compressed = compress_hierarchy(
      ds.hierarchy, *codec, 1e-3, RedundantHandling::kKeep);
  EXPECT_EQ(compressed.original_cells, ds.hierarchy.total_stored_cells());
  EXPECT_GT(compressed.ratio(), 1.0);
  EXPECT_EQ(compressed.compressed_bytes(),
            [&] {
              std::size_t n = 0;
              for (const auto& lvl : compressed.levels)
                for (const auto& p : lvl.patches) n += p.blob.size();
              return n;
            }());
}

TEST(AmrCompression, MeanFillImprovesRatio) {
  // Neutralizing redundant coarse data must not hurt the ratio (it
  // replaces structure with a constant) — paper §2.2's optimization.
  const auto codec = make_compressor("sz-lr");
  const sim::SyntheticDataset ds = make_test_dataset(0.4);
  const double keep =
      compress_hierarchy(ds.hierarchy, *codec, 1e-3,
                         RedundantHandling::kKeep)
          .ratio();
  const double fill =
      compress_hierarchy(ds.hierarchy, *codec, 1e-3,
                         RedundantHandling::kMeanFill)
          .ratio();
  EXPECT_GE(fill, keep * 0.98);  // allow noise, expect >= in practice
}

TEST(AmrCompression, CodecMismatchThrows) {
  const auto lr = make_compressor("sz-lr");
  const auto itp = make_compressor("sz-interp");
  const sim::SyntheticDataset ds = make_test_dataset();
  const AmrCompressed compressed = compress_hierarchy(
      ds.hierarchy, *lr, 1e-3, RedundantHandling::kKeep);
  EXPECT_THROW(decompress_hierarchy(compressed, *itp), Error);
}

TEST(AmrCompression, TighterBoundLowersRatio) {
  const auto codec = make_compressor("sz-lr");
  const sim::SyntheticDataset ds = make_test_dataset();
  double prev_ratio = 1e18;
  for (const double eb : {1e-2, 1e-3, 1e-4, 1e-5}) {
    const double r = compress_hierarchy(ds.hierarchy, *codec, eb,
                                        RedundantHandling::kMeanFill)
                         .ratio();
    EXPECT_LT(r, prev_ratio) << "eb " << eb;
    prev_ratio = r;
  }
}

TEST(AmrCompression, GlobalRangeSharedAcrossLevels) {
  // The absolute bound must come from the global range, not per-patch
  // ranges: a patch with tiny local range must still be reconstructed
  // within the global bound (and not tighter than necessary, which we
  // can't observe — but correctness is the global bound).
  const auto codec = make_compressor("sz-lr");
  const sim::SyntheticDataset ds = make_test_dataset();
  const AmrCompressed compressed = compress_hierarchy(
      ds.hierarchy, *codec, 1e-3, RedundantHandling::kKeep);
  const MinMax mm = hierarchy_min_max(ds.hierarchy);
  EXPECT_NEAR(compressed.abs_eb, 1e-3 * mm.range(), 1e-12);
}

// Regression for the terminate-on-throw bug: decompress_hierarchy decodes
// patches inside parallel_for, where codec decoders throw amrvis::Error on
// corrupt blobs. Under OpenMP an exception escaping the region was
// std::terminate — the PR 2 corrupt-blob hardening became an abort. The
// exception must now be catchable; this runs in every CI OMP_NUM_THREADS
// leg.
TEST(AmrCompression, CorruptPatchBlobThrowsCatchablyUnderParallelDecode) {
  const auto codec = make_compressor("sz-lr");
  const sim::SyntheticDataset ds = make_test_dataset();
  AmrCompressed compressed = compress_hierarchy(ds.hierarchy, *codec, 1e-3,
                                                RedundantHandling::kKeep);

  // Scribble over a patch header in the middle of the fine level (the one
  // with several patches) so the decoder throws from a worker iteration,
  // not just the first one.
  auto& patches = compressed.levels.back().patches;
  ASSERT_GT(patches.size(), 1u);
  Bytes& blob = patches[patches.size() / 2].blob;
  ASSERT_GE(blob.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b) blob[b] = 0xff;
  EXPECT_THROW(decompress_hierarchy(compressed, *codec), Error);
}

TEST(AmrCompression, TruncatedPatchBlobThrowsCatchablyUnderParallelDecode) {
  const auto codec = make_compressor("sz-interp");
  const sim::SyntheticDataset ds = make_test_dataset();
  AmrCompressed compressed = compress_hierarchy(ds.hierarchy, *codec, 1e-3,
                                                RedundantHandling::kKeep);
  Bytes& blob = compressed.levels.back().patches.back().blob;
  blob.resize(blob.size() / 2);
  EXPECT_THROW(decompress_hierarchy(compressed, *codec), Error);
}

/// Single-level hierarchy whose only patch exceeds the oversized-patch
/// routing threshold (2^17 cells).
amr::AmrHierarchy make_big_patch_hierarchy() {
  const amr::Box box({0, 0, 0}, {63, 63, 39});  // 64x64x40 = 163840 cells
  amr::FArrayBox fab(box);
  auto vals = fab.values();
  const Shape3 s = fab.shape();
  for (std::int64_t k = 0; k < s.nz; ++k)
    for (std::int64_t j = 0; j < s.ny; ++j)
      for (std::int64_t i = 0; i < s.nx; ++i)
        vals[static_cast<std::size_t>((k * s.ny + j) * s.nx + i)] =
            std::sin(0.11 * static_cast<double>(i)) *
                std::cos(0.07 * static_cast<double>(j)) +
            0.01 * static_cast<double>(k);
  amr::AmrLevel lvl;
  lvl.domain = box;
  lvl.box_array = amr::BoxArray({box});
  lvl.fabs.push_back(std::move(fab));
  amr::AmrHierarchy hier(2);
  hier.add_level(std::move(lvl));
  return hier;
}

TEST(AmrCompression, OversizedPatchRoutesThroughChunkedContainer) {
  const auto codec = make_compressor("sz-lr");
  const amr::AmrHierarchy hier = make_big_patch_hierarchy();
  const AmrCompressed compressed = compress_hierarchy(
      hier, *codec, 1e-3, RedundantHandling::kKeep);

  // The oversized patch's blob is a chunked container, not a bare codec
  // blob, and it still round-trips within the bound.
  ASSERT_EQ(compressed.levels.size(), 1u);
  ASSERT_EQ(compressed.levels[0].patches.size(), 1u);
  EXPECT_TRUE(ChunkedCompressor::is_chunked_blob(
      compressed.levels[0].patches[0].blob));

  const amr::AmrHierarchy back = decompress_hierarchy(compressed, *codec);
  const auto orig = hier.level(0).fabs[0].values();
  const auto recon = back.level(0).fabs[0].values();
  EXPECT_LE(max_abs_diff(orig, recon), compressed.abs_eb * 1.0000001);
}

TEST(AmrCompression, ChunkedCodecHierarchyRoundTripsWithoutDoubleWrap) {
  // A hierarchy compressed with a chunked-* codec directly must round
  // trip: small patches' blobs are containers carrying the *inner*
  // codec's name, so the oversized-patch routing must not wrap the codec
  // a second time on either side (that threw "chunked: codec mismatch").
  const auto codec = make_compressor("chunked-sz-lr");
  const sim::SyntheticDataset ds = make_test_dataset();
  const AmrCompressed compressed = compress_hierarchy(
      ds.hierarchy, *codec, 1e-3, RedundantHandling::kKeep);
  const amr::AmrHierarchy back = decompress_hierarchy(compressed, *codec);
  for (int l = 0; l < back.num_levels(); ++l)
    for (std::size_t p = 0; p < back.level(l).fabs.size(); ++p)
      EXPECT_LE(max_abs_diff(ds.hierarchy.level(l).fabs[p].values(),
                             back.level(l).fabs[p].values()),
                compressed.abs_eb * 1.0000001);

  // Oversized patches keep working too (single wrap, no nesting).
  const amr::AmrHierarchy big = make_big_patch_hierarchy();
  const AmrCompressed big_compressed = compress_hierarchy(
      big, *codec, 1e-3, RedundantHandling::kKeep);
  const amr::AmrHierarchy big_back =
      decompress_hierarchy(big_compressed, *codec);
  EXPECT_LE(max_abs_diff(big.level(0).fabs[0].values(),
                         big_back.level(0).fabs[0].values()),
            big_compressed.abs_eb * 1.0000001);
}

TEST(AmrCompression, CorruptChunkedTileThrowsCatchablyUnderParallelDecode) {
  const auto codec = make_compressor("sz-lr");
  const amr::AmrHierarchy hier = make_big_patch_hierarchy();
  AmrCompressed compressed = compress_hierarchy(hier, *codec, 1e-3,
                                                RedundantHandling::kKeep);
  // Flip the first tile's inner "SZLR" magic: the inner codec then throws
  // from the chunked decoder's parallel region, nested in the per-patch
  // region.
  Bytes& blob = compressed.levels[0].patches[0].blob;
  const std::array<std::uint8_t, 4> inner_magic{0x52, 0x4c, 0x5a, 0x53};
  const auto it = std::search(blob.begin() + 8, blob.end(),
                              inner_magic.begin(), inner_magic.end());
  ASSERT_NE(it, blob.end());
  *it ^= 0xff;
  EXPECT_THROW(decompress_hierarchy(compressed, *codec), Error);
}

}  // namespace
}  // namespace amrvis::compress
