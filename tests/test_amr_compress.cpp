// Tests for AMR-aware compression: per-level/per-patch compression with a
// shared relative bound, redundant-data handling, and structural fidelity
// of the decompressed hierarchy.

#include <gtest/gtest.h>

#include "compress/amr_compress.hpp"
#include "compress/compressor.hpp"
#include "sim/fields.hpp"
#include "sim/tagging.hpp"
#include "util/stats.hpp"

namespace amrvis::compress {
namespace {

sim::SyntheticDataset make_test_dataset(double fine_fraction = 0.3) {
  Array3<double> field = sim::nyx_like_density({32, 32, 32});
  sim::TaggingSpec spec;
  spec.fine_fraction = fine_fraction;
  spec.block = 4;
  spec.max_grid_size = 16;
  return sim::build_two_level_hierarchy(std::move(field), spec);
}

struct Case {
  const char* codec;
  double rel_eb;
  RedundantHandling handling;
};

class AmrRoundTrip : public ::testing::TestWithParam<Case> {};

TEST_P(AmrRoundTrip, EveryLevelWithinGlobalBound) {
  const auto [codec_name, rel_eb, handling] = GetParam();
  const auto codec = make_compressor(codec_name);
  const sim::SyntheticDataset ds = make_test_dataset();

  const AmrCompressed compressed =
      compress_hierarchy(ds.hierarchy, *codec, rel_eb, handling);
  const amr::AmrHierarchy back = decompress_hierarchy(compressed, *codec);

  const MinMax mm = hierarchy_min_max(ds.hierarchy);
  const double abs_eb = rel_eb * mm.range();
  EXPECT_NEAR(compressed.abs_eb, abs_eb, 1e-15);

  // Structure preserved.
  ASSERT_EQ(back.num_levels(), ds.hierarchy.num_levels());
  for (int l = 0; l < back.num_levels(); ++l) {
    ASSERT_EQ(back.level(l).fabs.size(), ds.hierarchy.level(l).fabs.size());
    for (std::size_t p = 0; p < back.level(l).fabs.size(); ++p)
      EXPECT_EQ(back.level(l).fabs[p].box(),
                ds.hierarchy.level(l).fabs[p].box());
  }

  // Error bound. With kKeep every stored cell obeys the bound; with
  // kMeanFill covered coarse cells were rebuilt from bounded fine data
  // via conservative averaging, so they also obey it.
  for (int l = 0; l < back.num_levels(); ++l)
    for (std::size_t p = 0; p < back.level(l).fabs.size(); ++p) {
      const auto orig = ds.hierarchy.level(l).fabs[p].values();
      const auto recon = back.level(l).fabs[p].values();
      if (handling == RedundantHandling::kKeep || l == back.num_levels() - 1) {
        EXPECT_LE(max_abs_diff(orig, recon), abs_eb * 1.0000001)
            << "level " << l << " patch " << p;
      } else {
        // Mean-fill: check only uncovered cells against the bound.
        const auto masks = ds.hierarchy.covered_masks(l);
        const auto& mask = masks[p];
        for (std::int64_t i = 0; i < mask.size(); ++i) {
          if (!mask[i]) {
            EXPECT_LE(std::abs(orig[static_cast<std::size_t>(i)] -
                               recon[static_cast<std::size_t>(i)]),
                      abs_eb * 1.0000001);
          }
        }
      }
    }

  // The composite (what analysis consumes) is always bounded: it uses
  // only uncovered coarse data and fine data.
  const Array3<double> orig_c = ds.hierarchy.composite_uniform();
  const Array3<double> back_c = back.composite_uniform();
  EXPECT_LE(max_abs_diff(orig_c.span(), back_c.span()), abs_eb * 1.0000001);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AmrRoundTrip,
    ::testing::Values(
        Case{"sz-lr", 1e-3, RedundantHandling::kKeep},
        Case{"sz-lr", 1e-3, RedundantHandling::kMeanFill},
        Case{"sz-lr", 1e-2, RedundantHandling::kMeanFill},
        Case{"sz-interp", 1e-3, RedundantHandling::kKeep},
        Case{"sz-interp", 1e-2, RedundantHandling::kMeanFill},
        Case{"zfp-like", 1e-3, RedundantHandling::kKeep}),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = info.param.codec;
      for (auto& c : name)
        if (c == '-') c = '_';
      name += info.param.handling == RedundantHandling::kKeep ? "_keep"
                                                              : "_meanfill";
      name += info.param.rel_eb == 1e-3 ? "_eb3" : "_eb2";
      return name;
    });

TEST(AmrCompression, RatioAccounting) {
  const auto codec = make_compressor("sz-lr");
  const sim::SyntheticDataset ds = make_test_dataset();
  const AmrCompressed compressed = compress_hierarchy(
      ds.hierarchy, *codec, 1e-3, RedundantHandling::kKeep);
  EXPECT_EQ(compressed.original_cells, ds.hierarchy.total_stored_cells());
  EXPECT_GT(compressed.ratio(), 1.0);
  EXPECT_EQ(compressed.compressed_bytes(),
            [&] {
              std::size_t n = 0;
              for (const auto& lvl : compressed.levels)
                for (const auto& p : lvl.patches) n += p.blob.size();
              return n;
            }());
}

TEST(AmrCompression, MeanFillImprovesRatio) {
  // Neutralizing redundant coarse data must not hurt the ratio (it
  // replaces structure with a constant) — paper §2.2's optimization.
  const auto codec = make_compressor("sz-lr");
  const sim::SyntheticDataset ds = make_test_dataset(0.4);
  const double keep =
      compress_hierarchy(ds.hierarchy, *codec, 1e-3,
                         RedundantHandling::kKeep)
          .ratio();
  const double fill =
      compress_hierarchy(ds.hierarchy, *codec, 1e-3,
                         RedundantHandling::kMeanFill)
          .ratio();
  EXPECT_GE(fill, keep * 0.98);  // allow noise, expect >= in practice
}

TEST(AmrCompression, CodecMismatchThrows) {
  const auto lr = make_compressor("sz-lr");
  const auto itp = make_compressor("sz-interp");
  const sim::SyntheticDataset ds = make_test_dataset();
  const AmrCompressed compressed = compress_hierarchy(
      ds.hierarchy, *lr, 1e-3, RedundantHandling::kKeep);
  EXPECT_THROW(decompress_hierarchy(compressed, *itp), Error);
}

TEST(AmrCompression, TighterBoundLowersRatio) {
  const auto codec = make_compressor("sz-lr");
  const sim::SyntheticDataset ds = make_test_dataset();
  double prev_ratio = 1e18;
  for (const double eb : {1e-2, 1e-3, 1e-4, 1e-5}) {
    const double r = compress_hierarchy(ds.hierarchy, *codec, eb,
                                        RedundantHandling::kMeanFill)
                         .ratio();
    EXPECT_LT(r, prev_ratio) << "eb " << eb;
    prev_ratio = r;
  }
}

TEST(AmrCompression, GlobalRangeSharedAcrossLevels) {
  // The absolute bound must come from the global range, not per-patch
  // ranges: a patch with tiny local range must still be reconstructed
  // within the global bound (and not tighter than necessary, which we
  // can't observe — but correctness is the global bound).
  const auto codec = make_compressor("sz-lr");
  const sim::SyntheticDataset ds = make_test_dataset();
  const AmrCompressed compressed = compress_hierarchy(
      ds.hierarchy, *codec, 1e-3, RedundantHandling::kKeep);
  const MinMax mm = hierarchy_min_max(ds.hierarchy);
  EXPECT_NEAR(compressed.abs_eb, 1e-3 * mm.range(), 1e-12);
}

}  // namespace
}  // namespace amrvis::compress
