// Unit tests for the error-controlled linear quantizer — the stage that
// carries the error-bound guarantee of every prediction codec.

#include <gtest/gtest.h>

#include <cmath>

#include "compress/quantizer.hpp"
#include "util/rng.hpp"

namespace amrvis::compress {
namespace {

TEST(Quantizer, ExactPredictionGivesCenterCode) {
  const LinearQuantizer q(0.1);
  std::vector<double> outliers;
  double recon;
  const auto code = q.encode(5.0, 5.0, recon, outliers);
  EXPECT_EQ(code, static_cast<std::uint32_t>(q.radius()));
  EXPECT_DOUBLE_EQ(recon, 5.0);
  EXPECT_TRUE(outliers.empty());
}

TEST(Quantizer, BoundHoldsAcrossResidualSweep) {
  const double eb = 0.05;
  const LinearQuantizer q(eb);
  std::vector<double> outliers;
  for (double residual = -10.0; residual <= 10.0; residual += 0.0137) {
    double recon;
    const auto code = q.encode(3.0 + residual, 3.0, recon, outliers);
    EXPECT_LE(std::abs(recon - (3.0 + residual)), eb + 1e-15);
    // Decoder agreement.
    std::size_t pos = 0;
    std::vector<double> decode_outliers = outliers;
    if (code == 0) {
      const double d = q.decode(code, 3.0, decode_outliers,
                                pos = decode_outliers.size() - 1);
      EXPECT_DOUBLE_EQ(d, recon);
    } else {
      std::size_t zero = 0;
      EXPECT_DOUBLE_EQ(q.decode(code, 3.0, {}, zero), recon);
    }
  }
}

TEST(Quantizer, LargeResidualEscapesToOutlier) {
  const LinearQuantizer q(1e-6, 128);
  std::vector<double> outliers;
  double recon;
  const auto code = q.encode(1.0, 0.0, recon, outliers);
  EXPECT_EQ(code, 0u);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_LE(std::abs(recon - 1.0), 1e-6);
}

TEST(Quantizer, CodesStayInRange) {
  const LinearQuantizer q(0.01, 256);
  Rng rng(3);
  std::vector<double> outliers;
  for (int i = 0; i < 10000; ++i) {
    double recon;
    const auto code =
        q.encode(rng.normal() * 10.0, rng.normal() * 10.0, recon, outliers);
    EXPECT_LT(code, q.num_codes());
  }
}

TEST(Quantizer, EncoderDecoderLockstep) {
  // Replaying the decoder over the encoder's outputs reproduces exactly
  // the reconstructed values the encoder committed to.
  const double eb = 0.02;
  const LinearQuantizer q(eb);
  Rng rng(7);
  std::vector<double> values(500), preds(500);
  for (int i = 0; i < 500; ++i) {
    values[static_cast<std::size_t>(i)] = rng.normal() * 4.0;
    preds[static_cast<std::size_t>(i)] = rng.normal() * 4.0;
  }
  std::vector<std::uint32_t> codes;
  std::vector<double> recons, outliers;
  for (int i = 0; i < 500; ++i) {
    double r;
    codes.push_back(q.encode(values[static_cast<std::size_t>(i)],
                             preds[static_cast<std::size_t>(i)], r,
                             outliers));
    recons.push_back(r);
  }
  std::size_t outlier_pos = 0;
  for (int i = 0; i < 500; ++i) {
    const double d = q.decode(codes[static_cast<std::size_t>(i)],
                              preds[static_cast<std::size_t>(i)], outliers,
                              outlier_pos);
    EXPECT_DOUBLE_EQ(d, recons[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(outlier_pos, outliers.size());
}

TEST(Quantizer, RejectsNonPositiveBound) {
  EXPECT_THROW(LinearQuantizer(0.0), Error);
  EXPECT_THROW(LinearQuantizer(-1.0), Error);
}

}  // namespace
}  // namespace amrvis::compress
