// Tests for the chunk-parallel wrapper codec (compress/chunked.hpp):
// thread-count determinism of the container bytes, round-trip quality vs
// the unchunked codec, degenerate/non-tile-multiple shapes, and container
// header validation on corrupt blobs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "compress/chunked.hpp"
#include "compress/compressor.hpp"
#include "metrics/quality.hpp"
#include "sim/fields.hpp"
#include "util/stats.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace amrvis::compress {
namespace {

constexpr const char* kCodecs[] = {"sz-lr", "sz-interp", "zfp-like"};

/// Thread counts every determinism test sweeps. Without OpenMP the
/// parallel helpers are serial, so a single pass is the whole matrix.
std::vector<int> thread_counts() {
#ifdef _OPENMP
  return {1, 2, std::max(4, omp_get_max_threads())};
#else
  return {1};
#endif
}

/// RAII restore of the OpenMP thread-count setting.
class ThreadCountGuard {
 public:
#ifdef _OPENMP
  ThreadCountGuard() : saved_(omp_get_max_threads()) {}
  ~ThreadCountGuard() { omp_set_num_threads(saved_); }
  static void set(int n) { omp_set_num_threads(n); }

 private:
  int saved_;
#else
  static void set(int) {}
#endif
};

Array3<double> test_field() {
  return sim::warpx_like_ez({64, 64, 128});
}

TEST(ChunkedFactory, BuildsChunkedCodecs) {
  for (const char* base : kCodecs) {
    const auto codec = make_compressor(std::string("chunked-") + base);
    EXPECT_EQ(codec->name(), std::string("chunked-") + base);
  }
  EXPECT_THROW(make_compressor("chunked-"), Error);
  EXPECT_THROW(make_compressor("chunked-nope"), Error);
}

TEST(ChunkedDeterminism, BlobsBitIdenticalAcrossThreadCounts) {
  const Array3<double> data = test_field();
  const double abs_eb = resolve_abs_eb(ErrorBoundMode::kRelative, 1e-3,
                                       data.span());
  ThreadCountGuard guard;
  for (const char* base : kCodecs) {
    const auto chunked = make_compressor(std::string("chunked-") + base);
    Bytes reference;
    for (const int nt : thread_counts()) {
      ThreadCountGuard::set(nt);
      const Bytes blob = chunked->compress(data.view(), abs_eb);
      if (reference.empty()) reference = blob;
      EXPECT_EQ(blob, reference)
          << base << ": container bytes differ at " << nt << " threads";
      // Decompression must also be thread-count independent (it writes
      // disjoint tile regions of the same output array).
      const Array3<double> out = chunked->decompress(blob);
      ASSERT_EQ(out.shape(), data.shape());
      EXPECT_LE(max_abs_diff(data.span(), out.span()), abs_eb)
          << base << " at " << nt << " threads";
    }
  }
}

TEST(ChunkedDeterminism, RoundTripQualityMatchesUnchunkedCodec) {
  const Array3<double> data = test_field();
  const double abs_eb = resolve_abs_eb(ErrorBoundMode::kRelative, 1e-3,
                                       data.span());
  for (const char* base : kCodecs) {
    const auto plain = make_compressor(base);
    const auto chunked = make_compressor(std::string("chunked-") + base);
    const Array3<double> plain_out =
        plain->decompress(plain->compress(data.view(), abs_eb));
    const Array3<double> chunked_out =
        chunked->decompress(chunked->compress(data.view(), abs_eb));
    // Both obey the same absolute bound; tiling changes prediction
    // contexts at tile faces but must not move PSNR materially.
    EXPECT_LE(max_abs_diff(data.span(), chunked_out.span()), abs_eb) << base;
    const double psnr_plain = metrics::psnr(data.span(), plain_out.span());
    const double psnr_chunked = metrics::psnr(data.span(), chunked_out.span());
    EXPECT_NEAR(psnr_chunked, psnr_plain, 3.0) << base;
  }
}

TEST(ChunkedDeterminism, NonMultipleAndDegenerateShapes) {
  // Tile 8x8x8 against shapes that exercise clipped boundary tiles, a
  // single undersized tile, and 1-D/2-D degenerate extents.
  const Shape3 shapes[] = {
      {17, 13, 9}, {8, 8, 8}, {5, 5, 5}, {1, 40, 33}, {40, 1, 1}, {1, 1, 7}};
  ThreadCountGuard guard;
  for (const char* base : kCodecs) {
    for (const Shape3& s : shapes) {
      Array3<double> data(s);
      for (std::int64_t f = 0; f < data.size(); ++f)
        data[f] = std::sin(0.3 * static_cast<double>(f)) +
                  0.05 * static_cast<double>(f % 11);
      const double abs_eb = resolve_abs_eb(ErrorBoundMode::kRelative, 1e-3,
                                           data.span());
      const ChunkedCompressor codec(make_compressor(base), ChunkShape{8, 8, 8});
      Bytes reference;
      for (const int nt : thread_counts()) {
        ThreadCountGuard::set(nt);
        const Bytes blob = codec.compress(data.view(), abs_eb);
        if (reference.empty()) reference = blob;
        EXPECT_EQ(blob, reference) << base << " shape " << s.nx << "x" << s.ny
                                   << "x" << s.nz << " at " << nt << " threads";
        const Array3<double> out = codec.decompress(blob);
        ASSERT_EQ(out.shape(), s);
        EXPECT_LE(max_abs_diff(data.span(), out.span()), abs_eb)
            << base << " shape " << s.nx << "x" << s.ny << "x" << s.nz;
      }
    }
  }
}

// --------------------------- validation --------------------------------

/// Small chunked sz-lr blob (2 tiles along z) for header-tampering tests.
Bytes small_container(const ChunkedCompressor& codec) {
  Array3<double> data({8, 8, 8});
  for (std::int64_t f = 0; f < data.size(); ++f)
    data[f] = 0.25 * static_cast<double>(f % 17);
  return codec.compress(data.view(), 1e-3);
}

ChunkedCompressor small_codec() {
  return ChunkedCompressor(make_compressor("sz-lr"), ChunkShape{8, 8, 4});
}

// Container header offsets for a "sz-lr" container (name length 5):
// magic@0(4) version@4(2) namelen@6(2) name@8(5) shape@13(3x i64)
// tile@37(3x i64) ntiles@61(u64) sizes@69.
constexpr std::size_t kShapeOff = 13;
constexpr std::size_t kTileOff = 37;

TEST(ChunkedValidation, IsChunkedBlobDetectsContainers) {
  const ChunkedCompressor codec = small_codec();
  const Bytes container = small_container(codec);
  EXPECT_TRUE(ChunkedCompressor::is_chunked_blob(container));

  const auto plain = make_compressor("sz-lr");
  Array3<double> data({4, 4, 4}, 1.0);
  EXPECT_FALSE(ChunkedCompressor::is_chunked_blob(
      plain->compress(data.view(), 1e-3)));
  EXPECT_FALSE(ChunkedCompressor::is_chunked_blob({}));
  EXPECT_FALSE(ChunkedCompressor::is_chunked_blob(Bytes{0x41, 0x56}));
}

TEST(ChunkedValidation, BadMagicThrows) {
  const ChunkedCompressor codec = small_codec();
  Bytes blob = small_container(codec);
  blob[0] ^= 0xff;
  EXPECT_THROW(codec.decompress(blob), Error);
}

TEST(ChunkedValidation, UnsupportedVersionThrows) {
  const ChunkedCompressor codec = small_codec();
  Bytes blob = small_container(codec);
  blob[4] = 0x7f;
  EXPECT_THROW(codec.decompress(blob), Error);
}

TEST(ChunkedValidation, CodecNameMismatchThrows) {
  const ChunkedCompressor codec = small_codec();
  const Bytes blob = small_container(codec);
  const auto other = make_compressor("chunked-sz-interp");
  EXPECT_THROW(other->decompress(blob), Error);
}

TEST(ChunkedValidation, TileCountMismatchThrows) {
  const ChunkedCompressor codec = small_codec();
  Bytes blob = small_container(codec);
  // Claim nz = 100: ceil(100/4) = 25 tiles expected vs 2 stored.
  const std::int64_t nz = 100;
  std::memcpy(blob.data() + kShapeOff + 16, &nz, sizeof(nz));
  EXPECT_THROW(codec.decompress(blob), Error);
}

TEST(ChunkedValidation, TileShapeMismatchThrows) {
  const ChunkedCompressor codec = small_codec();
  Bytes blob = small_container(codec);
  // Claim nz = 7 with tile nz = 4: tile count still 2, but the second
  // tile's slot is now 8x8x3 while its blob decodes to 8x8x4.
  const std::int64_t nz = 7;
  std::memcpy(blob.data() + kShapeOff + 16, &nz, sizeof(nz));
  EXPECT_THROW(codec.decompress(blob), Error);
}

TEST(ChunkedValidation, ImplausibleShapeThrows) {
  const ChunkedCompressor codec = small_codec();
  // A corrupt header must not drive the output allocation: huge claimed
  // dimensions are rejected before any memory is touched.
  Bytes blob = small_container(codec);
  const std::int64_t huge = std::int64_t{1} << 40;
  std::memcpy(blob.data() + kShapeOff, &huge, sizeof(huge));
  EXPECT_THROW(codec.decompress(blob), Error);

  Bytes blob2 = small_container(codec);
  const std::int64_t zero = 0;
  std::memcpy(blob2.data() + kTileOff, &zero, sizeof(zero));
  EXPECT_THROW(codec.decompress(blob2), Error);
}

TEST(ChunkedValidation, CellCountOverflowThrows) {
  // Dims that individually pass the per-axis cap but whose product
  // overflows int64 (2^24 * 2^24 * 2^16 = 2^64): the cell-cap check must
  // reject via division, not compute the wrapped product (UB) and let a
  // bogus shape through.
  const ChunkedCompressor codec = small_codec();
  Bytes blob = small_container(codec);
  const std::int64_t big_xy = std::int64_t{1} << 24;
  const std::int64_t big_z = std::int64_t{1} << 16;
  std::memcpy(blob.data() + kShapeOff, &big_xy, sizeof(big_xy));
  std::memcpy(blob.data() + kShapeOff + 8, &big_xy, sizeof(big_xy));
  std::memcpy(blob.data() + kShapeOff + 16, &big_z, sizeof(big_z));
  EXPECT_THROW(codec.decompress(blob), Error);
}

TEST(ChunkedValidation, TileSizeTableLargerThanBlobThrows) {
  // A header claiming a huge (but shape-consistent) tile count must be
  // rejected before the ntiles-sized bookkeeping vectors are allocated:
  // shape 2^24 x 128 x 1 with 1x1x1 tiles wants 2^31 table entries
  // (16 GiB) from a ~100-byte blob.
  const ChunkedCompressor codec = small_codec();
  Bytes blob = small_container(codec);
  const std::int64_t nx = std::int64_t{1} << 24;
  const std::int64_t ny = 128;
  const std::int64_t nz = 1;
  const std::int64_t one = 1;
  std::memcpy(blob.data() + kShapeOff, &nx, sizeof(nx));
  std::memcpy(blob.data() + kShapeOff + 8, &ny, sizeof(ny));
  std::memcpy(blob.data() + kShapeOff + 16, &nz, sizeof(nz));
  for (int d = 0; d < 3; ++d)
    std::memcpy(blob.data() + kTileOff + 8 * d, &one, sizeof(one));
  const std::uint64_t ntiles = std::uint64_t{1} << 31;
  std::memcpy(blob.data() + kTileOff + 24, &ntiles, sizeof(ntiles));
  EXPECT_THROW(codec.decompress(blob), Error);
}

TEST(ChunkedValidation, TruncatedAndTrailingBytesThrow) {
  const ChunkedCompressor codec = small_codec();
  const Bytes blob = small_container(codec);

  Bytes truncated(blob.begin(), blob.end() - 5);
  EXPECT_THROW(codec.decompress(truncated), Error);

  Bytes trailing = blob;
  trailing.push_back(0);
  EXPECT_THROW(codec.decompress(trailing), Error);
}

TEST(ChunkedValidation, PlainCodecBlobThrows) {
  const auto plain = make_compressor("sz-lr");
  Array3<double> data({4, 4, 4}, 1.0);
  const Bytes blob = plain->compress(data.view(), 1e-3);
  const ChunkedCompressor codec = small_codec();
  EXPECT_THROW(codec.decompress(blob), Error);
}

}  // namespace
}  // namespace amrvis::compress
