// Persistent work-stealing pool (util/thread_pool.hpp) and the pluggable
// parallel backend (util/parallel.hpp): every chunk runs exactly once,
// first-exception capture/rethrow matches the OpenMP helpers, nested and
// concurrent run() calls compose, and — the hard product contract — the
// pool backend produces BIT-identical compressed blobs and loop results
// to the OpenMP and serial backends.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "compress/chunked.hpp"
#include "compress/compressor.hpp"
#include "util/array3d.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/thread_pool.hpp"

namespace amrvis {
namespace {

Array3<double> wavy_field(Shape3 s) {
  Array3<double> data(s);
  for (std::int64_t k = 0; k < s.nz; ++k)
    for (std::int64_t j = 0; j < s.ny; ++j)
      for (std::int64_t i = 0; i < s.nx; ++i)
        data(i, j, k) = std::sin(0.21 * static_cast<double>(i)) *
                            std::cos(0.13 * static_cast<double>(j)) +
                        0.05 * static_cast<double>(k);
  return data;
}

TEST(ThreadPool, RunExecutesEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kChunks = 1000;
  std::vector<std::atomic<int>> counts(kChunks);
  for (auto& c : counts) c.store(0);
  pool.run(kChunks, [&](std::int64_t c) {
    counts[static_cast<std::size_t>(c)].fetch_add(1);
  });
  for (std::int64_t c = 0; c < kChunks; ++c)
    ASSERT_EQ(counts[static_cast<std::size_t>(c)].load(), 1) << c;
}

TEST(ThreadPool, RunRethrowsFirstExceptionAndStaysUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run(64,
                        [&](std::int64_t c) {
                          if (c == 13) throw Error("chunk 13 boom");
                        }),
               Error);
  // The failed job must not wedge the workers.
  std::atomic<std::int64_t> ran{0};
  pool.run(64, [&](std::int64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, NestedRunComposesWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<std::int64_t> inner_total{0};
  pool.run(6, [&](std::int64_t) {
    // A chunk that itself fans out: the claiming thread participates, so
    // completion never depends on a free worker.
    pool.run(16, [&](std::int64_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 6 * 16);
}

TEST(ThreadPool, ConcurrentRunsFromManyClientThreads) {
  ThreadPool pool(3);
  constexpr int kClients = 6;
  std::atomic<std::int64_t> total{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t)
    clients.emplace_back([&] {
      for (int rep = 0; rep < 20; ++rep)
        pool.run(32, [&](std::int64_t) { total.fetch_add(1); });
    });
  for (auto& th : clients) th.join();
  EXPECT_EQ(total.load(), kClients * 20 * 32);
}

TEST(ThreadPool, PostRunsDetachedTask) {
  ThreadPool pool(1);
  std::promise<int> prom;
  auto fut = prom.get_future();
  pool.post([&prom] { prom.set_value(42); });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, WorkerThreadsSelfIdentify) {
  EXPECT_FALSE(ThreadPool::on_worker_thread());
  ThreadPool pool(1);
  std::promise<bool> prom;
  auto fut = prom.get_future();
  pool.post([&prom] { prom.set_value(ThreadPool::on_worker_thread()); });
  EXPECT_TRUE(fut.get());
}

TEST(ParallelBackend, PoolForMatchesSerialBitwise) {
  constexpr std::int64_t kN = 10'000;
  std::vector<double> serial(kN), pooled(kN);
  auto body = [](std::int64_t i) {
    return std::sin(0.001 * static_cast<double>(i)) * 3.25 + 1.0;
  };
  {
    ScopedParallelBackend scope(ParallelBackend::kSerial);
    parallel_for(kN, [&](std::int64_t i) {
      serial[static_cast<std::size_t>(i)] = body(i);
    });
  }
  {
    ScopedParallelBackend scope(ParallelBackend::kPool);
    parallel_for(kN, [&](std::int64_t i) {
      pooled[static_cast<std::size_t>(i)] = body(i);
    });
  }
  EXPECT_EQ(serial, pooled);
}

TEST(ParallelBackend, PoolReduceIsDeterministicAcrossRepeats) {
  constexpr std::int64_t kN = 5'000;
  auto map = [](std::int64_t i) {
    return std::cos(0.01 * static_cast<double>(i));
  };
  auto combine = [](double a, double b) { return a + b; };
  double first = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    ScopedParallelBackend scope(ParallelBackend::kPool);
    const double sum = parallel_reduce(kN, 0.0, map, combine);
    if (rep == 0)
      first = sum;
    else
      EXPECT_EQ(sum, first);  // bitwise: fixed partitioning, fixed fold order
  }
}

TEST(ParallelBackend, PoolExceptionPropagatesLikeSerial) {
  ScopedParallelBackend scope(ParallelBackend::kPool);
  EXPECT_THROW(parallel_for(256,
                            [&](std::int64_t i) {
                              if (i == 200) throw Error("pool loop boom");
                            }),
               Error);
}

TEST(ParallelBackend, ChunkedBlobBitIdenticalAcrossBackends) {
  // The acceptance contract: the compression pipeline's outputs may not
  // depend on which execution backend ran the hot loops.
  const Array3<double> field = wavy_field({48, 40, 24});
  const auto codec =
      compress::make_compressor("chunked-sz-lr@16x16x8");
  Bytes blobs[3];
  const ParallelBackend backends[] = {ParallelBackend::kOpenMP,
                                      ParallelBackend::kPool,
                                      ParallelBackend::kSerial};
  for (int b = 0; b < 3; ++b) {
    ScopedParallelBackend scope(backends[b]);
    blobs[b] = codec->compress(field.view(), 1e-4);
  }
  EXPECT_EQ(blobs[0], blobs[1]);
  EXPECT_EQ(blobs[0], blobs[2]);

  // And decode round-trips identically under every backend too.
  Array3<double> ref;
  for (int b = 0; b < 3; ++b) {
    ScopedParallelBackend scope(backends[b]);
    Array3<double> out = codec->decompress(blobs[0]);
    if (b == 0) {
      ref = std::move(out);
    } else {
      ASSERT_EQ(out.shape(), ref.shape());
      for (std::int64_t f = 0; f < out.size(); ++f)
        ASSERT_EQ(out[f], ref[f]);
    }
  }
}

}  // namespace
}  // namespace amrvis
