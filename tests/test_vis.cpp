// Tests for the visualization substrate: re-sampling, iso-surface
// extraction, marching squares, mesh utilities and crack measurement —
// including executable versions of the paper's conceptual Figures 4-8.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/fields.hpp"
#include "util/bytestream.hpp"
#include "vis/crack.hpp"
#include "vis/isosurface.hpp"
#include "vis/mesh.hpp"
#include "vis/resample.hpp"

namespace amrvis::vis {
namespace {

TEST(Resample, PaperFigure4Example) {
  // Paper Fig. 4 (left): a vertex value is the average of its adjacent
  // cells; the "6" comes from neighbors 8, 6, 6, 4.
  Array3<double> cells({2, 2, 1});
  cells(0, 0, 0) = 8;
  cells(1, 0, 0) = 6;
  cells(0, 1, 0) = 6;
  cells(1, 1, 0) = 4;
  const Array3<double> verts = resample_to_vertices(cells.view());
  EXPECT_EQ(verts.shape(), (Shape3{3, 3, 2}));
  // Center vertex of the 2x2 cell block (in the k=0 vertex plane it
  // averages 4 cells; with nz=1 the k=0 and k=1 planes both see them).
  EXPECT_DOUBLE_EQ(verts(1, 1, 0), 6.0);
  // Corner vertex touches exactly one cell.
  EXPECT_DOUBLE_EQ(verts(0, 0, 0), 8.0);
  // Edge vertex averages two cells.
  EXPECT_DOUBLE_EQ(verts(1, 0, 0), 7.0);
}

TEST(Resample, GrowsEachDimensionByOne) {
  Array3<double> cells({5, 4, 3}, 1.0);
  const Array3<double> verts = resample_to_vertices(cells.view());
  EXPECT_EQ(verts.shape(), (Shape3{6, 5, 4}));
  for (std::int64_t i = 0; i < verts.size(); ++i)
    EXPECT_DOUBLE_EQ(verts[i], 1.0);
}

TEST(Resample, MaskedIgnoresInvalidCells) {
  Array3<double> cells({2, 1, 1});
  cells(0, 0, 0) = 10.0;
  cells(1, 0, 0) = 99.0;
  Array3<std::uint8_t> valid({2, 1, 1}, 1);
  valid(1, 0, 0) = 0;
  Array3<std::uint8_t> vertex_valid;
  const Array3<double> verts = resample_to_vertices_masked(
      cells.view(), valid.view(), vertex_valid);
  // The shared vertex must only see the valid cell.
  EXPECT_DOUBLE_EQ(verts(1, 0, 0), 10.0);
  EXPECT_EQ(vertex_valid(1, 0, 0), 1);
  // The far vertex of the invalid cell has no valid neighbor.
  EXPECT_EQ(vertex_valid(2, 0, 0), 0);
}

TEST(Isosurface, SphereAreaConverges) {
  // Marching over f = r - |p - c| at iso 0 recovers a sphere of radius r.
  const double radius = 10.0;
  const Array3<double> f =
      sim::sphere_field({32, 32, 32}, 15.5, 15.5, 15.5, radius);
  TriMesh mesh = extract_isosurface(f.view(), 0.0, {});
  mesh.weld();
  const double expected = 4.0 * 3.14159265358979 * radius * radius;
  EXPECT_NEAR(mesh.area(), expected, 0.05 * expected);
  // A closed surface has no boundary edges.
  EXPECT_TRUE(mesh.boundary_edges().empty());
}

TEST(Isosurface, WatertightAcrossIsoValues) {
  const Array3<double> f =
      sim::sphere_field({20, 20, 20}, 9.5, 9.5, 9.5, 6.0);
  for (const double iso : {-2.0, -1.0, 0.0, 1.0, 2.5}) {
    TriMesh mesh = extract_isosurface(f.view(), iso, {});
    mesh.weld();
    EXPECT_TRUE(mesh.boundary_edges().empty()) << "iso=" << iso;
  }
}

TEST(Isosurface, EmptyWhenIsoOutsideRange) {
  const Array3<double> f =
      sim::sphere_field({8, 8, 8}, 3.5, 3.5, 3.5, 2.0);
  EXPECT_TRUE(extract_isosurface(f.view(), 100.0, {}).empty());
  EXPECT_TRUE(extract_isosurface(f.view(), -100.0, {}).empty());
}

TEST(Isosurface, PlanarFieldGivesFlatSurfaceAtExactHeight) {
  // f = z - 4.25: iso 0 is the plane z = 4.25.
  Array3<double> f({8, 8, 8});
  for (std::int64_t k = 0; k < 8; ++k)
    for (std::int64_t j = 0; j < 8; ++j)
      for (std::int64_t i = 0; i < 8; ++i)
        f(i, j, k) = static_cast<double>(k) - 4.25;
  const TriMesh mesh = extract_isosurface(f.view(), 0.0, {});
  ASSERT_FALSE(mesh.empty());
  for (const Vec3& v : mesh.vertices) EXPECT_NEAR(v.z, 4.25, 1e-12);
  // Area of a 7x7-cell cross-section.
  EXPECT_NEAR(mesh.area(), 49.0, 1e-9);
}

TEST(Isosurface, TransformAppliesOriginAndSpacing) {
  Array3<double> f({4, 4, 4});
  for (std::int64_t k = 0; k < 4; ++k)
    for (std::int64_t j = 0; j < 4; ++j)
      for (std::int64_t i = 0; i < 4; ++i)
        f(i, j, k) = static_cast<double>(k) - 1.5;
  const GridTransform tf{Vec3{10, 20, 30}, 2.0};
  const TriMesh mesh = extract_isosurface(f.view(), 0.0, tf);
  ASSERT_FALSE(mesh.empty());
  for (const Vec3& v : mesh.vertices) {
    EXPECT_NEAR(v.z, 30.0 + 1.5 * 2.0, 1e-12);
    EXPECT_GE(v.x, 10.0);
    EXPECT_LE(v.x, 10.0 + 3 * 2.0);
  }
}

TEST(Isosurface, CellMaskRestrictsExtraction) {
  Array3<double> f({4, 4, 4});
  for (std::int64_t k = 0; k < 4; ++k)
    for (std::int64_t j = 0; j < 4; ++j)
      for (std::int64_t i = 0; i < 4; ++i)
        f(i, j, k) = static_cast<double>(k) - 1.5;
  Array3<std::uint8_t> mask({3, 3, 3}, 0);
  mask(1, 1, 1) = 1;  // only the center cell
  const TriMesh full = extract_isosurface(f.view(), 0.0, {});
  const TriMesh masked =
      extract_isosurface(f.view(), 0.0, {}, 0, mask.view());
  EXPECT_LT(masked.num_triangles(), full.num_triangles());
  EXPECT_NEAR(masked.area(), 1.0, 1e-9);  // one cell's worth of plane
}

TEST(Isosurface, LevelTagPropagates) {
  const Array3<double> f =
      sim::sphere_field({8, 8, 8}, 3.5, 3.5, 3.5, 2.0);
  const TriMesh mesh = extract_isosurface(f.view(), 0.0, {}, 3);
  for (const Triangle& t : mesh.triangles) EXPECT_EQ(t.level, 3);
}

TEST(MarchingSquares, PaperFigure4Contour) {
  // Paper Fig. 4 (right): iso value 5 on vertex data.
  Array3<double> verts({3, 3, 1});
  const double vals[9] = {8, 7, 4, 6, 6, 3, 4, 6, 4};
  for (std::int64_t j = 0; j < 3; ++j)
    for (std::int64_t i = 0; i < 3; ++i)
      verts(i, j, 0) = vals[j * 3 + i];
  const auto segments = marching_squares(verts.view(), 5.0);
  // Contour separates the high (left) from the low (right) region:
  // each cell with a sign change yields exactly one segment here.
  EXPECT_GE(segments.size(), 2u);
  // All crossing points must have interpolated coordinates inside the grid.
  for (const auto& s : segments) {
    EXPECT_GE(std::min(s.ax, s.bx), 0.0);
    EXPECT_LE(std::max(s.ax, s.bx), 2.0);
  }
}

TEST(MarchingSquares, CircleLengthApproximation) {
  const std::int64_t n = 64;
  Array3<double> verts({n, n, 1});
  const double r = 20.0;
  for (std::int64_t j = 0; j < n; ++j)
    for (std::int64_t i = 0; i < n; ++i) {
      const double dx = static_cast<double>(i) - 31.5;
      const double dy = static_cast<double>(j) - 31.5;
      verts(i, j, 0) = r - std::sqrt(dx * dx + dy * dy);
    }
  const auto segments = marching_squares(verts.view(), 0.0);
  double length = 0;
  for (const auto& s : segments) {
    const double dx = s.bx - s.ax, dy = s.by - s.ay;
    length += std::sqrt(dx * dx + dy * dy);
  }
  EXPECT_NEAR(length, 2.0 * 3.14159265 * r, 0.02 * 2.0 * 3.14159265 * r);
}

TEST(MarchingSquares, SaddleProducesTwoSegments) {
  Array3<double> verts({2, 2, 1});
  verts(0, 0, 0) = 1.0;
  verts(1, 1, 0) = 1.0;
  verts(1, 0, 0) = -1.0;
  verts(0, 1, 0) = -1.0;
  const auto segments = marching_squares(verts.view(), 0.0);
  EXPECT_EQ(segments.size(), 2u);
}

TEST(MeshOps, AppendRebasesIndices) {
  TriMesh a, b;
  a.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  a.triangles = {{{0, 1, 2}, 0}};
  b.vertices = {{5, 5, 5}, {6, 5, 5}, {5, 6, 5}};
  b.triangles = {{{0, 1, 2}, 1}};
  a.append(b);
  EXPECT_EQ(a.num_vertices(), 6u);
  EXPECT_EQ(a.num_triangles(), 2u);
  EXPECT_EQ(a.triangles[1].v[0], 3u);
  EXPECT_EQ(a.triangles[1].level, 1);
}

TEST(MeshOps, WeldMergesDuplicates) {
  TriMesh m;
  m.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0},
                {1, 0, 0}, {0, 1, 0}, {1, 1, 0}};
  m.triangles = {{{0, 1, 2}, 0}, {{3, 5, 4}, 0}};
  m.weld();
  EXPECT_EQ(m.num_vertices(), 4u);
  EXPECT_EQ(m.num_triangles(), 2u);
  // The shared edge (1,0,0)-(0,1,0) is now interior: 2 boundary edges
  // per triangle remain = 4.
  EXPECT_EQ(m.boundary_edges().size(), 4u);
}

TEST(MeshOps, WeldDropsDegenerateTriangles) {
  TriMesh m;
  m.vertices = {{0, 0, 0}, {0, 0, 0}, {1, 1, 1}};
  m.triangles = {{{0, 1, 2}, 0}};
  m.weld();
  EXPECT_EQ(m.num_triangles(), 0u);
}

TEST(MeshOps, AreaOfUnitRightTriangle) {
  TriMesh m;
  m.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  m.triangles = {{{0, 1, 2}, 0}};
  EXPECT_DOUBLE_EQ(m.area(), 0.5);
}

TEST(MeshOps, BoundsOfMesh) {
  TriMesh m;
  m.vertices = {{-1, 2, 3}, {4, -5, 6}, {0, 0, 0}};
  m.triangles = {{{0, 1, 2}, 0}};
  Vec3 lo, hi;
  ASSERT_TRUE(m.bounds(lo, hi));
  EXPECT_DOUBLE_EQ(lo.x, -1);
  EXPECT_DOUBLE_EQ(lo.y, -5);
  EXPECT_DOUBLE_EQ(hi.x, 4);
  EXPECT_DOUBLE_EQ(hi.z, 6);
  TriMesh empty;
  EXPECT_FALSE(empty.bounds(lo, hi));
}

TEST(PointTriangle, DistanceCases) {
  const Vec3 a{0, 0, 0}, b{2, 0, 0}, c{0, 2, 0};
  // Above the interior: perpendicular distance.
  EXPECT_NEAR(point_triangle_distance({0.5, 0.5, 3.0}, a, b, c), 3.0, 1e-12);
  // Closest to vertex a.
  EXPECT_NEAR(point_triangle_distance({-1, -1, 0}, a, b, c), std::sqrt(2.0),
              1e-12);
  // Closest to edge ab.
  EXPECT_NEAR(point_triangle_distance({1, -2, 0}, a, b, c), 2.0, 1e-12);
  // On the triangle: zero.
  EXPECT_NEAR(point_triangle_distance({0.5, 0.5, 0}, a, b, c), 0.0, 1e-12);
}

TEST(CrackCensus, ClosedSurfaceHasNone) {
  const Array3<double> f =
      sim::sphere_field({24, 24, 24}, 11.5, 11.5, 11.5, 8.0);
  TriMesh mesh = extract_isosurface(f.view(), 0.0, {});
  const CrackStats stats =
      measure_cracks(mesh, {0, 0, 0}, {23, 23, 23});
  EXPECT_EQ(stats.interior_boundary_edges, 0);
}

TEST(CrackCensus, DomainBoundaryEdgesExcluded) {
  // A plane surface spanning the whole domain terminates at the outer
  // faces only; those edges are not cracks.
  Array3<double> f({8, 8, 8});
  for (std::int64_t k = 0; k < 8; ++k)
    for (std::int64_t j = 0; j < 8; ++j)
      for (std::int64_t i = 0; i < 8; ++i)
        f(i, j, k) = static_cast<double>(k) - 3.4;
  TriMesh mesh = extract_isosurface(f.view(), 0.0, {});
  const CrackStats stats = measure_cracks(mesh, {0, 0, 0}, {7, 7, 7});
  EXPECT_EQ(stats.interior_boundary_edges, 0);
}

TEST(CrackCensus, DetectsMaskHole) {
  // Cutting a hole in the extraction mask creates interior boundary.
  Array3<double> f({8, 8, 8});
  for (std::int64_t k = 0; k < 8; ++k)
    for (std::int64_t j = 0; j < 8; ++j)
      for (std::int64_t i = 0; i < 8; ++i)
        f(i, j, k) = static_cast<double>(k) - 3.4;
  Array3<std::uint8_t> mask({7, 7, 7}, 1);
  mask(3, 3, 3) = 0;
  TriMesh mesh = extract_isosurface(f.view(), 0.0, {}, 0, mask.view());
  const CrackStats stats = measure_cracks(mesh, {0, 0, 0}, {7, 7, 7});
  EXPECT_GT(stats.interior_boundary_edges, 0);
}

TEST(CrackCensus, GapDistanceBetweenOffsetSheets) {
  // Two parallel square sheets at different levels, 1.5 apart, not
  // overlapping in x: the gap distance from the level-1 sheet's boundary
  // to the level-0 sheet is the lateral+vertical offset.
  TriMesh m;
  auto add_quad = [&m](Vec3 p, double size, int level) {
    const auto base = static_cast<std::uint32_t>(m.vertices.size());
    m.vertices.push_back(p);
    m.vertices.push_back({p.x + size, p.y, p.z});
    m.vertices.push_back({p.x + size, p.y + size, p.z});
    m.vertices.push_back({p.x, p.y + size, p.z});
    m.triangles.push_back({{base, base + 1, base + 2}, level});
    m.triangles.push_back({{base, base + 2, base + 3}, level});
  };
  add_quad({0, 0, 5.0}, 4.0, 0);
  add_quad({5.5, 0, 5.0}, 4.0, 1);  // gap of 1.5 in x
  const CrackStats stats = measure_cracks(m, {-10, -10, -10}, {20, 20, 20});
  EXPECT_GT(stats.edges_measured, 0);
  // Per sheet, the four boundary-edge midpoints sit 1.5 / 3.5 / 3.5 / 5.5
  // from the other sheet: mean 3.5, max 5.5, min (nearest crack) 1.5.
  EXPECT_NEAR(stats.mean_gap, 3.5, 0.2);
  EXPECT_NEAR(stats.max_gap, 5.5, 0.2);
}

TEST(MeshObj, WritesValidFile) {
  TriMesh m;
  m.vertices = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  m.triangles = {{{0, 1, 2}, 0}};
  const std::string path = ::testing::TempDir() + "/amrvis_mesh.obj";
  m.write_obj(path);
  const Bytes data = read_file(path);
  const std::string text(data.begin(), data.end());
  EXPECT_NE(text.find("v 0 0 0"), std::string::npos);
  EXPECT_NE(text.find("f 1 2 3"), std::string::npos);
}

}  // namespace
}  // namespace amrvis::vis
