// Concurrent query service (service/query_service.hpp): every query kind
// returns bit-identical results to the uncached primitives, the shared
// cache turns repeated work into hits, the batched front end prefetches
// the deduplicated union of overlapping region ROIs, async submission
// carries results and exceptions through futures, and — the S1 contract —
// many client threads can hammer one service concurrently while each
// request's stats stay coherent (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "compress/compressor.hpp"
#include "service/query_service.hpp"
#include "sim/fields.hpp"
#include "sim/tagging.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/stats.hpp"

namespace amrvis::service {
namespace {

using amr::Box;
using amr::IntVect;
using compress::AmrCompressed;
using compress::compress_hierarchy;
using compress::make_compressor;
using compress::RedundantHandling;

struct Fixture {
  std::unique_ptr<compress::Compressor> codec;
  AmrCompressed compressed;
  Box finest_domain;
  double iso = 0.0;
};

/// Two-level hierarchy under a chunked codec (small tiles => real tile
/// traffic for the cache), kKeep handling.
Fixture make_fixture() {
  Array3<double> field = sim::nyx_like_density({32, 32, 32});
  sim::TaggingSpec spec;
  spec.fine_fraction = 0.3;
  spec.block = 4;
  spec.max_grid_size = 16;
  const sim::SyntheticDataset ds =
      sim::build_two_level_hierarchy(std::move(field), spec);
  Fixture f;
  f.codec = make_compressor("chunked-sz-lr@16x16x8");
  f.compressed = compress_hierarchy(ds.hierarchy, *f.codec, 1e-3,
                                    RedundantHandling::kKeep);
  f.finest_domain = f.compressed.domains.back();
  const MinMax mm = compress::hierarchy_min_max(ds.hierarchy);
  f.iso = 0.5 * (mm.min + mm.max);
  return f;
}

void expect_mesh_identical(const vis::TriMesh& a, const vis::TriMesh& b) {
  ASSERT_EQ(a.vertices.size(), b.vertices.size());
  ASSERT_EQ(a.triangles.size(), b.triangles.size());
  EXPECT_EQ(std::memcmp(a.vertices.data(), b.vertices.data(),
                        a.vertices.size() * sizeof(vis::Vec3)),
            0);
  for (std::size_t t = 0; t < a.triangles.size(); ++t)
    ASSERT_EQ(a.triangles[t].v, b.triangles[t].v) << "tri " << t;
}

TEST(QueryService, PointMatchesDirectSamplingAndRepeatsHitCache) {
  const Fixture f = make_fixture();
  QueryService svc(f.compressed, *f.codec);
  const IntVect p{f.finest_domain.lo().x + 5, f.finest_domain.lo().y + 9,
                  f.finest_domain.lo().z + 13};
  const double direct =
      amr::sample_point_compressed(f.compressed, *f.codec, p);

  QueryStats s1;
  EXPECT_EQ(svc.point(p, &s1), direct);
  EXPECT_GE(s1.tiles_decoded, 1);
  EXPECT_EQ(s1.cache_hits, 0);

  QueryStats s2;
  EXPECT_EQ(svc.point(p, &s2), direct);
  EXPECT_EQ(s2.tiles_decoded, 0);  // entirely served from the cache
  EXPECT_GE(s2.cache_hits, 1);

  const auto ctr = svc.counters();
  EXPECT_EQ(ctr.requests, 2u);
  EXPECT_EQ(ctr.tiles_decoded, s1.tiles_decoded);
  EXPECT_EQ(ctr.cache_hits, s2.cache_hits);
}

TEST(QueryService, PlaneAndRegionAreBitIdenticalToUncachedPaths) {
  const Fixture f = make_fixture();
  QueryService svc(f.compressed, *f.codec);
  const std::int64_t zmid =
      (f.finest_domain.lo().z + f.finest_domain.hi().z) / 2;

  const Array3<double> direct_plane =
      amr::sample_plane_compressed(f.compressed, *f.codec, 2, zmid);
  const Array3<double> served = svc.plane(2, zmid);
  ASSERT_EQ(served.shape(), direct_plane.shape());
  for (std::int64_t i = 0; i < served.size(); ++i)
    ASSERT_EQ(served[i], direct_plane[i]);

  const Box roi{{2, 2, 2}, {25, 25, 25}};
  const auto direct_region =
      compress::decompress_level_region(f.compressed, *f.codec, 0, roi);
  QueryStats rs;
  const auto served_region = svc.region(0, roi, &rs);
  ASSERT_EQ(served_region.size(), direct_region.size());
  for (std::size_t rp = 0; rp < served_region.size(); ++rp) {
    ASSERT_EQ(served_region[rp].box, direct_region[rp].box);
    for (std::int64_t i = 0; i < served_region[rp].data.size(); ++i)
      ASSERT_EQ(served_region[rp].data[i], direct_region[rp].data[i]);
  }
  EXPECT_GT(rs.tiles_decoded + rs.cache_hits, 0);
  EXPECT_GE(rs.service_ms, 0.0);
}

TEST(QueryService, IsoMeshBitIdenticalToUncachedAndSecondRunAllHits) {
  const Fixture f = make_fixture();
  QueryService svc(f.compressed, *f.codec);
  const vis::TriMesh direct = vis::amr_isosurface_streamed(
      f.compressed, *f.codec, f.iso, vis::VisMethod::kDualCell);

  QueryStats s1;
  const vis::TriMesh served =
      svc.isosurface(f.iso, vis::VisMethod::kDualCell, &s1);
  expect_mesh_identical(served, direct);
  ASSERT_FALSE(served.empty());

  QueryStats s2;
  const vis::TriMesh again =
      svc.isosurface(f.iso, vis::VisMethod::kDualCell, &s2);
  expect_mesh_identical(again, direct);
  EXPECT_EQ(s2.tiles_decoded, 0);  // the whole working set stayed cached
  EXPECT_GE(s2.cache_hits, s1.tiles_decoded);
}

TEST(QueryService, BatchMergePrefetchesOverlappingRegionsOnce) {
  const Fixture f = make_fixture();
  std::vector<Request> reqs;
  reqs.push_back(Request::Region(0, Box{{0, 0, 0}, {19, 19, 19}}));
  reqs.push_back(Request::Region(0, Box{{8, 8, 8}, {27, 27, 27}}));
  reqs.push_back(Request::Region(0, Box{{4, 4, 4}, {15, 15, 23}}));

  QueryService merged(f.compressed, *f.codec);
  const auto responses = merged.run_batch(reqs);
  ASSERT_EQ(responses.size(), reqs.size());
  // The merge prefetched the deduplicated decode-unit union across the
  // pool, so no request decoded anything itself — every tile it touched
  // was already resident.
  for (const Response& r : responses) {
    EXPECT_EQ(r.stats.tiles_decoded, 0);
    EXPECT_GT(r.stats.cache_hits, 0);
    EXPECT_GE(r.stats.queue_ms, 0.0);
  }

  // Total decode work equals what an unmerged service ends up doing
  // after its own cache dedup — the merge moves the work up front, it
  // must not change the unique-tile count...
  ServiceOptions unmerged_opts;
  unmerged_opts.merge_regions = false;
  QueryService unmerged(f.compressed, *f.codec, unmerged_opts);
  const auto unmerged_responses = unmerged.run_batch(reqs);
  EXPECT_EQ(merged.counters().tiles_decoded,
            unmerged.counters().tiles_decoded);

  // ...nor the bytes: responses are bit-identical either way.
  for (std::size_t i = 0; i < responses.size(); ++i) {
    ASSERT_EQ(responses[i].patches.size(),
              unmerged_responses[i].patches.size());
    for (std::size_t rp = 0; rp < responses[i].patches.size(); ++rp)
      for (std::int64_t v = 0; v < responses[i].patches[rp].data.size();
           ++v)
        ASSERT_EQ(responses[i].patches[rp].data[v],
                  unmerged_responses[i].patches[rp].data[v]);
  }
}

TEST(QueryService, SubmitServesAsynchronouslyWithQueueTiming) {
  const Fixture f = make_fixture();
  QueryService svc(f.compressed, *f.codec);
  const IntVect p{f.finest_domain.lo().x + 3, f.finest_domain.lo().y + 3,
                  f.finest_domain.lo().z + 3};
  const double direct =
      amr::sample_point_compressed(f.compressed, *f.codec, p);
  auto fut = svc.submit(Request::Point(p));
  Response resp = fut.get();
  EXPECT_EQ(resp.value, direct);
  EXPECT_TRUE(resp.stats.queued);  // went through the pool's queue
  EXPECT_GE(resp.stats.queue_ms, 0.0);
  EXPECT_GE(resp.stats.service_ms, 0.0);
}

TEST(QueryService, SynchronousPathsReportUnqueuedZeroQueueTime) {
  // Regression: queue_ms used to be populated only by the async/batch
  // paths; the sync path must report an explicit queued=false with a
  // 0 ms wait on every API, so latency consumers never see a silently
  // missing label.
  const Fixture f = make_fixture();
  QueryService svc(f.compressed, *f.codec);
  const IntVect p{f.finest_domain.lo().x + 3, f.finest_domain.lo().y + 3,
                  f.finest_domain.lo().z + 3};

  QueryStats s;
  (void)svc.point(p, &s);
  EXPECT_FALSE(s.queued);
  EXPECT_EQ(s.queue_ms, 0.0);

  s = {};
  (void)svc.plane(2, f.finest_domain.lo().z + 2, &s);
  EXPECT_FALSE(s.queued);
  EXPECT_EQ(s.queue_ms, 0.0);

  const Response r = svc.execute_full(Request::Point(p));
  EXPECT_FALSE(r.stats.queued);
  EXPECT_EQ(r.stats.queue_ms, 0.0);

  // The batch front end queues: its responses must say so.
  const std::vector<Response> batch =
      svc.run_batch({Request::Point(p), Request::Point(p)});
  ASSERT_EQ(batch.size(), 2u);
  for (const Response& br : batch) {
    EXPECT_TRUE(br.stats.queued);
    EXPECT_GE(br.stats.queue_ms, 0.0);
  }
}

TEST(QueryService, SubmitPropagatesQueryExceptionsThroughTheFuture) {
  const Fixture f = make_fixture();
  QueryService svc(f.compressed, *f.codec);
  auto fut = svc.submit(
      Request::Region(99, Box{{0, 0, 0}, {1, 1, 1}}));  // bad level
  EXPECT_THROW(fut.get(), Error);
}

// ------------------ fault tolerance & degraded modes -------------------

TEST(QueryServiceFault, PreCancelledRequestYieldsTypedCancelledOutcome) {
  const Fixture f = make_fixture();
  QueryService svc(f.compressed, *f.codec);
  Request r = Request::Plane(2, (f.finest_domain.lo().z +
                                 f.finest_domain.hi().z) /
                                    2);
  r.cancel = std::make_shared<std::atomic<bool>>(true);  // already fired

  const Response resp = svc.execute_full(r);
  EXPECT_FALSE(resp.outcome.ok());
  EXPECT_EQ(resp.outcome.code, ErrorCode::kCancelled);
  EXPECT_FALSE(resp.outcome.message.empty());

  // The throwing front end surfaces the identical typed error.
  try {
    (void)svc.execute(r);
    FAIL() << "execute() must throw the cancelled error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
  EXPECT_EQ(svc.counters().failures, 2u);
  EXPECT_EQ(svc.counters().requests, 2u);
}

TEST(QueryServiceFault, MicroDeadlineTimesOutTyped) {
  const Fixture f = make_fixture();
  QueryService svc(f.compressed, *f.codec);
  const Response resp = svc.execute_full(
      Request::Iso(f.iso, vis::VisMethod::kDualCell).with_deadline(1e-6));
  EXPECT_FALSE(resp.outcome.ok());
  EXPECT_EQ(resp.outcome.code, ErrorCode::kTimeout);
  // Deadlines are not transient: no retry was burned on it.
  EXPECT_EQ(svc.counters().retries, 0u);
}

TEST(QueryServiceFault, TransientInjectedFaultIsRetriedInvisibly) {
  const Fixture f = make_fixture();
  const IntVect p{f.finest_domain.lo().x + 5, f.finest_domain.lo().y + 9,
                  f.finest_domain.lo().z + 13};
  const double direct =
      amr::sample_point_compressed(f.compressed, *f.codec, p);

  ServiceOptions o;
  o.retry_backoff_ms = 0.0;  // keep the test instant
  QueryService svc(f.compressed, *f.codec, o);
  {
    fault::FaultScope scope("tiledecode:throw:count=1");
    EXPECT_EQ(svc.point(p), direct);  // caller never sees the fault
  }
  const auto ctr = svc.counters();
  EXPECT_EQ(ctr.retries, 1u);
  EXPECT_EQ(ctr.failures, 0u);
  EXPECT_EQ(ctr.requests, 1u);
}

TEST(QueryServiceFault, BreakerQuarantinesDegradesThenRecoversBitExact) {
  const Fixture f = make_fixture();
  const Box roi{{0, 0, 0}, {15, 15, 15}};
  const auto ref =
      compress::decompress_level_region(f.compressed, *f.codec, 0, roi);
  ASSERT_FALSE(ref.empty());

  ServiceOptions o;
  o.max_retries = 0;          // every injected failure is fatal + recorded
  o.retry_backoff_ms = 0.0;
  o.quarantine_failures = 2;  // the 16^3 level-0 patches hold 2 tiles
  QueryService svc(f.compressed, *f.codec, o);

  // Two distinct tile slots of the same patch container fail: the
  // breaker trips and quarantines the container.
  {
    fault::FaultScope scope("tiledecode:throw");
    const Box halves[] = {Box{{0, 0, 0}, {15, 15, 7}},
                          Box{{0, 0, 8}, {15, 15, 15}}};
    for (const Box& b : halves) {
      const Response r = svc.execute_full(Request::Region(0, b));
      ASSERT_FALSE(r.outcome.ok());
      EXPECT_EQ(r.outcome.code, ErrorCode::kFaultInjected);
      // The outcome names the failing storage, which is what feeds the
      // breaker — and what an operator needs to act on.
      EXPECT_NE(r.outcome.context.container, 0u);
      EXPECT_NE(r.outcome.context.tile, ErrorContext::kNoTile);
    }
  }
  EXPECT_EQ(svc.counters().failures, 2u);
  EXPECT_GE(svc.quarantined_containers(), 1u);

  // The faults are gone but the breaker stays tripped: the same region
  // now DEGRADES (quarantined patches are skipped and reported) instead
  // of failing or silently serving suspect bytes.
  const Response degraded = svc.execute_full(Request::Region(0, roi));
  EXPECT_TRUE(degraded.outcome.ok());
  EXPECT_TRUE(degraded.outcome.degraded());
  EXPECT_GT(degraded.outcome.quarantined_patches, 0);
  EXPECT_LT(degraded.patches.size(), ref.size());
  EXPECT_GE(svc.counters().degraded, 1u);

  // Storage fixed, quarantine lifted: responses are bit-identical to the
  // fault-free reference again.
  svc.unquarantine_all();
  EXPECT_EQ(svc.quarantined_containers(), 0u);
  const auto again = svc.region(0, roi);
  ASSERT_EQ(again.size(), ref.size());
  for (std::size_t rp = 0; rp < again.size(); ++rp) {
    ASSERT_EQ(again[rp].box, ref[rp].box);
    ASSERT_EQ(again[rp].data.size(), ref[rp].data.size());
    EXPECT_EQ(std::memcmp(again[rp].data.data(), ref[rp].data.data(),
                          static_cast<std::size_t>(again[rp].data.size()) *
                              sizeof(double)),
              0);
  }
}

TEST(QueryServiceFault, CorruptStatsTableFallsBackToCullFreeIso) {
  const Fixture f = make_fixture();
  const vis::TriMesh ref = vis::amr_isosurface_streamed(
      f.compressed, *f.codec, f.iso, vis::VisMethod::kDualCell);
  ASSERT_FALSE(ref.empty());

  // Corrupt the per-tile stats table (min > max) of one level-0 patch
  // container — the payload stays intact, so the values are still
  // recoverable, only the culling metadata is lies.
  auto corrupted = f.compressed;
  Bytes& blob = corrupted.levels[0].patches[0].blob;
  ASSERT_EQ(blob[4], 4);  // current container version
  std::uint64_t ntiles = 0;
  std::memcpy(&ntiles, blob.data() + 61, sizeof(ntiles));
  const std::size_t stats_off = 69 + 8 * ntiles;
  const double bad_min = 1.0, bad_max = 0.0;
  std::memcpy(blob.data() + stats_off, &bad_min, sizeof(double));
  std::memcpy(blob.data() + stats_off + 8, &bad_max, sizeof(double));

  QueryService svc(corrupted, *f.codec);
  const Response r =
      svc.execute_full(Request::Iso(f.iso, vis::VisMethod::kDualCell));
  ASSERT_TRUE(r.outcome.ok());
  EXPECT_TRUE(r.outcome.stats_fallback);
  EXPECT_TRUE(r.outcome.degraded());
  EXPECT_GE(svc.counters().degraded, 1u);
  // Stats never change values: the lenient cull-free mesh is the mesh.
  expect_mesh_identical(r.mesh, ref);

  // A plain region decode of the corrupt container has no such fallback:
  // it must surface the typed stats error.
  const Response region = svc.execute_full(
      Request::Region(0, Box{{0, 0, 0}, {15, 15, 15}}));
  EXPECT_FALSE(region.outcome.ok());
  EXPECT_EQ(region.outcome.code, ErrorCode::kStatsInvalid);
}

TEST(QueryService, ManyClientThreadsHammerOneServiceCoherently) {
  // S1: concurrent clients share the service; per-request stats are
  // stack-owned so no query can corrupt another's counts, and every
  // value served concurrently matches the single-threaded reference.
  // The TSan CI lane runs this to certify the no-data-race claim.
  const Fixture f = make_fixture();
  QueryService svc(f.compressed, *f.codec);
  constexpr int kClients = 8;
  constexpr int kReps = 5;
  const std::int64_t zmid =
      (f.finest_domain.lo().z + f.finest_domain.hi().z) / 2;
  const Array3<double> ref_plane =
      amr::sample_plane_compressed(f.compressed, *f.codec, 2, zmid);

  std::atomic<int> mismatches{0};
  std::atomic<int> stat_errors{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t)
    clients.emplace_back([&, t] {
      for (int rep = 0; rep < kReps; ++rep) {
        // Point probes at client-distinct cells (wrapped into the
        // finest domain, whatever its extent).
        const Shape3 fs = f.finest_domain.shape();
        const IntVect p{
            f.finest_domain.lo().x + (3 + t * 5) % fs.nx,
            f.finest_domain.lo().y + (2 + rep * 7) % fs.ny,
            f.finest_domain.lo().z + 11 % fs.nz};
        QueryStats ps;
        const double got = svc.point(p, &ps);
        const double want =
            amr::sample_point_compressed(f.compressed, *f.codec, p);
        if (got != want) mismatches.fetch_add(1);
        if (ps.tiles_decoded + ps.cache_hits < 1) stat_errors.fetch_add(1);

        // Region decodes with overlapping ROIs across clients.
        const Box roi{{t, t, 0}, {t + 12, t + 12, 15}};
        QueryStats rs;
        const auto patches = svc.region(0, roi, &rs);
        if (patches.empty()) mismatches.fetch_add(1);
        if (rs.tiles_decoded + rs.cache_hits < 1) stat_errors.fetch_add(1);

        // Plane slices, all identical to the reference.
        QueryStats ss;
        const Array3<double> plane = svc.plane(2, zmid, &ss);
        for (std::int64_t i = 0; i < plane.size(); ++i)
          if (plane[i] != ref_plane[i]) {
            mismatches.fetch_add(1);
            break;
          }
      }
    });
  for (auto& th : clients) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(stat_errors.load(), 0);
  EXPECT_EQ(svc.counters().requests,
            static_cast<std::uint64_t>(kClients * kReps * 3));
  // The shared once-flag cache bounds total decode work: far fewer
  // decodes than requests * touched tiles.
  EXPECT_GT(svc.counters().cache_hits, 0);
}

}  // namespace
}  // namespace amrvis::service
