// Streaming decode subsystem: TileStream iteration/prefetch/memory-bound
// contracts, amr::for_each_tile_compressed plumbing, and the streamed
// ROI-aware isosurface path — whose meshes must be BIT-identical
// (vertices, triangles, emission order) to the full-inflate amr_iso
// pipelines across codecs, shapes, handlings, methods and thread counts.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <vector>

#include "amr/sampling.hpp"
#include "compress/amr_compress.hpp"
#include "compress/chunked.hpp"
#include "compress/compressor.hpp"
#include "compress/tile_stream.hpp"
#include "sim/fields.hpp"
#include "sim/tagging.hpp"
#include "util/bytestream.hpp"
#include "util/fault.hpp"
#include "vis/amr_iso.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace amrvis {
namespace {

using amr::Box;
using amr::IntVect;
using compress::ChunkedCompressor;
using compress::ChunkShape;
using compress::make_compressor;
using compress::TileStream;
using compress::TileStreamOptions;

constexpr const char* kCodecs[] = {"sz-lr", "sz-interp", "zfp-like"};

std::vector<int> thread_counts() {
#ifdef _OPENMP
  return {1, 2, std::max(4, omp_get_max_threads())};
#else
  return {1};
#endif
}

class ThreadCountGuard {
 public:
#ifdef _OPENMP
  ThreadCountGuard() : saved_(omp_get_max_threads()) {}
  ~ThreadCountGuard() { omp_set_num_threads(saved_); }
  static void set(int n) { omp_set_num_threads(n); }

 private:
  int saved_;
#else
  static void set(int) {}
#endif
};

/// Deterministic dyadic filler (same construction as test_roi.cpp).
Array3<double> deterministic_field(Shape3 s) {
  Array3<double> data(s);
  for (std::int64_t f = 0; f < data.size(); ++f) {
    const auto h = static_cast<std::uint64_t>(f) * 2654435761ULL;
    data[f] = static_cast<double>(h % 1024) / 64.0 - 8.0 +
              static_cast<double>(f % 11) / 16.0;
  }
  return data;
}

std::string data_path(const std::string& file) {
  return std::string(AMRVIS_TEST_DATA_DIR "/") + file;
}

Array3<double> slice(const Array3<double>& full, const Box& region) {
  Array3<double> out(region.shape());
  const Shape3 os = out.shape();
  for (std::int64_t dz = 0; dz < os.nz; ++dz)
    for (std::int64_t dy = 0; dy < os.ny; ++dy)
      std::memcpy(&out(0, dy, dz),
                  &full(region.lo().x, region.lo().y + dy,
                        region.lo().z + dz),
                  static_cast<std::size_t>(os.nx) * sizeof(double));
  return out;
}

bool bit_equal(const Array3<double>& a, const Array3<double>& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(double)) ==
             0;
}

// --------------------------- TileStream --------------------------------

TEST(TileStream, LayoutOrderYieldsEveryTileBitExact) {
  const Array3<double> data = deterministic_field({17, 13, 9});
  const ChunkedCompressor codec(make_compressor("sz-lr"), ChunkShape{8, 8, 4});
  const Bytes blob = codec.compress(data.view(), 1e-3);
  const Array3<double> full = codec.decompress(blob);

  TileStream stream(codec, blob);
  EXPECT_EQ(stream.tiles_total(), 3 * 2 * 3);
  EXPECT_EQ(stream.tiles_selected(), stream.tiles_total());
  std::int64_t expect_index = 0;
  while (auto tile = stream.next()) {
    EXPECT_EQ(tile->index, expect_index++);  // container slot order
    EXPECT_TRUE(bit_equal(tile->data, slice(full, tile->box)));
    EXPECT_LE(tile->stats.min, tile->stats.max);
    EXPECT_LE(stream.live_tiles(), 2);
  }
  EXPECT_EQ(expect_index, stream.tiles_total());
  EXPECT_EQ(stream.tiles_decoded(), stream.tiles_total());
  EXPECT_LE(stream.peak_live_tiles(), 2);  // the memory-bound contract
  EXPECT_GT(stream.peak_live_bytes(), 0u);
  EXPECT_LE(stream.peak_live_bytes(),
            2u * 8 * 8 * 4 * sizeof(double));
  EXPECT_FALSE(stream.next().has_value());  // exhausted stays exhausted
}

TEST(TileStream, PrefetchOnAndOffYieldIdenticalSequences) {
  const Array3<double> data = deterministic_field({16, 16, 8});
  const ChunkedCompressor codec(make_compressor("sz-lr"), ChunkShape{8, 8, 4});
  const Bytes blob = codec.compress(data.view(), 1e-3);
  ThreadCountGuard guard;
  for (const int nt : thread_counts()) {
    ThreadCountGuard::set(nt);
    TileStreamOptions on, off;
    on.prefetch = true;
    off.prefetch = false;
    TileStream a(codec, blob, on);
    TileStream b(codec, blob, off);
    while (true) {
      auto ta = a.next();
      auto tb = b.next();
      ASSERT_EQ(ta.has_value(), tb.has_value());
      if (!ta) break;
      EXPECT_EQ(ta->index, tb->index);
      EXPECT_EQ(ta->box, tb->box);
      EXPECT_TRUE(bit_equal(ta->data, tb->data));
    }
    EXPECT_LE(a.peak_live_tiles(), 2);
    EXPECT_LE(b.peak_live_tiles(), 1);  // no decode-ahead without prefetch
  }
}

TEST(TileStream, RegionFilterSelectsOnlyIntersectingTiles) {
  const Array3<double> data = deterministic_field({16, 16, 8});
  const ChunkedCompressor codec(make_compressor("sz-lr"), ChunkShape{8, 8, 4});
  const Bytes blob = codec.compress(data.view(), 1e-3);

  TileStreamOptions opt;
  opt.region = Box{{1, 1, 1}, {3, 3, 2}};  // interior of tile 0
  TileStream stream(codec, blob, opt);
  EXPECT_EQ(stream.tiles_selected(), 1);
  auto tile = stream.next();
  ASSERT_TRUE(tile.has_value());
  EXPECT_EQ(tile->index, 0);
  EXPECT_FALSE(stream.next().has_value());
  EXPECT_EQ(stream.tiles_decoded(), 1);

  TileStreamOptions bad;
  bad.region = Box{{0, 0, 0}, {16, 15, 7}};
  EXPECT_THROW((void)TileStream(codec, blob, bad), Error);
}

TEST(TileStream, ValueBandOrderMatchesTilesOverlapping) {
  // Tiles hold their own index as a constant (the test_roi construction),
  // so band selection is exact and comparable to tiles_overlapping.
  const ChunkShape tile{8, 8, 4};
  Array3<double> data({16, 16, 8});
  for (std::int64_t k = 0; k < 8; ++k)
    for (std::int64_t j = 0; j < 16; ++j)
      for (std::int64_t i = 0; i < 16; ++i)
        data(i, j, k) = static_cast<double>((k / tile.nz) * 4 +
                                            (j / tile.ny) * 2 + i / tile.nx);
  const ChunkedCompressor codec(make_compressor("sz-lr"), tile);
  const Bytes blob = codec.compress(data.view(), 1e-6);

  TileStreamOptions opt;
  opt.order = TileStreamOptions::Order::kValueBand;
  opt.band_lo = 2.5;
  opt.band_hi = 4.5;
  TileStream stream(codec, blob, opt);
  const auto expect = codec.tiles_overlapping(blob, 2.5, 4.5);
  ASSERT_EQ(stream.tiles_selected(),
            static_cast<std::int64_t>(expect.size()));
  for (const auto& e : expect) {
    auto tile_out = stream.next();
    ASSERT_TRUE(tile_out.has_value());
    EXPECT_EQ(tile_out->index, e.index);
    EXPECT_EQ(tile_out->box, e.box);
  }
  EXPECT_FALSE(stream.next().has_value());

  // band_widen loosens the cut the way an abs_eb-aware caller needs —
  // but only on pre-v4 containers, whose stats bound ORIGINAL values.
  // A v4 container's stats bound the decoded values exactly, so the
  // widen is ignored: a band strictly between the tile constants
  // selects nothing.
  TileStreamOptions widened = opt;
  widened.band_lo = widened.band_hi = 4.75;  // between tiles 4 and 5
  widened.band_widen = 0.5;
  TileStream ws_exact(codec, blob, widened);
  EXPECT_EQ(ws_exact.tiles_selected(), 0);  // exact stats: no widening

  // Downgrade the blob to v2 (strip the face/err/histogram tables) to
  // exercise the widened regime: tile 5's [5, 5] widens to [4.5, 5.5].
  Bytes v2 = blob;
  ASSERT_EQ(v2[4], 4);
  std::uint64_t ntiles = 0;
  std::memcpy(&ntiles, v2.data() + 61, sizeof(ntiles));
  ASSERT_EQ(ntiles, 8u);
  const std::size_t face_off = 69 + (8 + 16) * ntiles;
  v2[4] = 2;
  v2.erase(v2.begin() + static_cast<std::ptrdiff_t>(face_off),
           v2.begin() + static_cast<std::ptrdiff_t>(
                            face_off + (96 + 8 + 64) * ntiles));
  TileStream ws(codec, v2, widened);
  EXPECT_EQ(ws.tiles_selected(), 1);  // tile 5 within the widened band

  TileStreamOptions bad_band;
  bad_band.order = TileStreamOptions::Order::kValueBand;
  bad_band.band_lo = 1.0;
  bad_band.band_hi = 0.0;
  EXPECT_THROW((void)TileStream(codec, blob, bad_band), Error);
}

TEST(TileStream, V1GoldenBlobStreamsEveryTileWithUnboundedStats) {
  const Bytes blob = read_file(data_path("golden_v1_chunked_szlr.bin"));
  const ChunkedCompressor codec(make_compressor("sz-lr"), ChunkShape{8, 8, 4});
  const Array3<double> full = codec.decompress(blob);

  TileStreamOptions opt;
  opt.order = TileStreamOptions::Order::kValueBand;  // v1: cannot cull
  opt.band_lo = opt.band_hi = 1e300;
  TileStream stream(codec, blob, opt);
  EXPECT_EQ(stream.tiles_selected(), 12);
  std::int64_t n = 0;
  while (auto tile = stream.next()) {
    EXPECT_EQ(tile->stats.min, -std::numeric_limits<double>::infinity());
    EXPECT_EQ(tile->stats.max, std::numeric_limits<double>::infinity());
    EXPECT_TRUE(bit_equal(tile->data, slice(full, tile->box)));
    ++n;
  }
  EXPECT_EQ(n, 12);
}

TEST(TileStream, CorruptTilePayloadThrowsFromNext) {
  const Array3<double> data = deterministic_field({16, 16, 8});
  const ChunkedCompressor codec(make_compressor("sz-lr"), ChunkShape{8, 8, 4});
  Bytes blob = codec.compress(data.view(), 1e-3);
  // Scramble the tail of the payload (the last tile's bytes) without
  // touching header or size table: construction succeeds, the decode of
  // that tile must throw from next() — on every thread count, proving
  // the parallel prefetch rethrows instead of std::terminate.
  for (std::size_t i = blob.size() - 40; i < blob.size(); ++i)
    blob[i] = static_cast<std::uint8_t>(i * 131);
  ThreadCountGuard guard;
  for (const int nt : thread_counts()) {
    ThreadCountGuard::set(nt);
    TileStream stream(codec, blob);
    bool threw = false;
    try {
      while (stream.next()) {
      }
    } catch (const Error&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << nt << " threads";
    // The stream is poisoned: a catch-and-continue caller must get an
    // error, never a default-constructed tile posing as data.
    EXPECT_THROW((void)stream.next(), Error) << nt << " threads";
  }
}

TEST(TileStream, TransientFaultRetriesLosslesslyPersistentFaultPoisons) {
  const Array3<double> data = deterministic_field({16, 16, 8});
  const ChunkedCompressor codec(make_compressor("sz-lr"), ChunkShape{8, 8, 4});
  const Bytes blob = codec.compress(data.view(), 1e-3);
  const Array3<double> full = codec.decompress(blob);  // before any plan

  // One injected decode failure: next() throws the typed transient error
  // with (container, slot) context, the cursor does not advance, and the
  // immediate retry resumes the stream losslessly.
  compress::TileCache store(compress::TileCache::kUnbounded);
  {
    fault::FaultScope scope("tiledecode:throw:count=1");
    TileStreamOptions opt;
    opt.prefetch = false;  // batch = 1 tile: deterministic op schedule
    opt.cache = compress::TileCacheRef{&store, 7};
    TileStream stream(codec, blob, opt);
    try {
      (void)stream.next();
      FAIL() << "the injected fault must surface from next()";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kFaultInjected);
      EXPECT_EQ(e.context().container, 7u);
      EXPECT_EQ(e.context().tile, 0);
    }
    std::int64_t n = 0;
    while (auto tile = stream.next()) {
      EXPECT_EQ(tile->index, n++);
      EXPECT_TRUE(bit_equal(tile->data, slice(full, tile->box)));
    }
    EXPECT_EQ(n, stream.tiles_total());
  }

  // Two consecutive failures of the same batch poison the stream — and
  // the poison outlives the fault plan: even after the plan is gone,
  // next() refuses with a typed error naming the failed slot instead of
  // handing out an undecoded buffer as data.
  TileStreamOptions opt;
  opt.prefetch = false;
  TileStream poisoned(codec, blob, opt);
  {
    fault::FaultScope scope("tiledecode:throw");
    EXPECT_THROW((void)poisoned.next(), Error);  // failure 1: retryable
    EXPECT_THROW((void)poisoned.next(), Error);  // failure 2: poisons
  }
  try {
    (void)poisoned.next();
    FAIL() << "a poisoned stream must keep refusing";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDecodeFailure);
    EXPECT_NE(std::strstr(e.what(), "failed twice"), nullptr);
    EXPECT_EQ(e.context().tile, 0);
  }
}

// ---------------------- for_each_tile_compressed -----------------------

sim::SyntheticDataset make_test_dataset() {
  Array3<double> field = sim::nyx_like_density({32, 32, 32});
  sim::TaggingSpec spec;
  spec.fine_fraction = 0.3;
  spec.block = 4;
  spec.max_grid_size = 16;
  return sim::build_two_level_hierarchy(std::move(field), spec);
}

compress::AmrChunkPolicy test_policy() {
  compress::AmrChunkPolicy policy;
  policy.oversized_patch_cells = 1000;
  policy.tile = ChunkShape{8, 8, 8};
  return policy;
}

TEST(ForEachTile, TilesReassembleTheLevelBitExact) {
  const sim::SyntheticDataset ds = make_test_dataset();
  const auto codec = make_compressor("sz-lr");
  for (const bool chunk_patches : {false, true}) {
    const auto compressed = compress_hierarchy(
        ds.hierarchy, *codec, 1e-3, compress::RedundantHandling::kKeep,
        chunk_patches ? test_policy() : compress::AmrChunkPolicy{});
    const amr::AmrHierarchy full =
        decompress_hierarchy(compressed, *codec);
    for (int l = 0; l < full.num_levels(); ++l) {
      const Box dom = compressed.domains[static_cast<std::size_t>(l)];
      // Paint every streamed tile; the union must equal the decoded
      // hierarchy on every patch cell, each cell painted exactly once.
      Array3<double> painted(dom.shape(), 0.0);
      Array3<std::uint8_t> count(dom.shape(), 0);
      compress::RegionDecodeStats stats;
      amr::for_each_tile_compressed(
          compressed, *codec, l, dom,
          [&](amr::HierTile&& t) {
            EXPECT_EQ(t.level, l);
            for (std::int64_t k = t.box.lo().z; k <= t.box.hi().z; ++k)
              for (std::int64_t j = t.box.lo().y; j <= t.box.hi().y; ++j)
                for (std::int64_t i = t.box.lo().x; i <= t.box.hi().x;
                     ++i) {
                  const IntVect o = IntVect{i, j, k} - dom.lo();
                  painted(o.x, o.y, o.z) =
                      t.data(i - t.box.lo().x, j - t.box.lo().y,
                             k - t.box.lo().z);
                  ++count(o.x, o.y, o.z);
                }
          },
          {}, &stats);
      EXPECT_EQ(stats.tiles_decoded, stats.tiles_total);
      for (const auto& fab : full.level(l).fabs) {
        const Box& b = fab.box();
        for (std::int64_t k = b.lo().z; k <= b.hi().z; ++k)
          for (std::int64_t j = b.lo().y; j <= b.hi().y; ++j)
            for (std::int64_t i = b.lo().x; i <= b.hi().x; ++i) {
              const IntVect o = IntVect{i, j, k} - dom.lo();
              EXPECT_EQ(count(o.x, o.y, o.z), 1);
              EXPECT_EQ(painted(o.x, o.y, o.z), fab.at({i, j, k}));
            }
      }
    }
  }
}

TEST(ForEachTile, RegionRestrictsDecodeAndAllLevelsRunFinestFirst) {
  const sim::SyntheticDataset ds = make_test_dataset();
  const auto codec = make_compressor("sz-lr");
  const auto compressed =
      compress_hierarchy(ds.hierarchy, *codec, 1e-3,
                         compress::RedundantHandling::kKeep, test_policy());

  // Corner region of level 0 (single 16^3 patch, 8 tiles of 8^3): only
  // one tile may be decoded.
  compress::RegionDecodeStats stats;
  std::int64_t n = 0;
  const Box dom0 = compressed.domains[0];
  amr::for_each_tile_compressed(
      compressed, *codec, 0, {dom0.lo(), dom0.lo() + IntVect::uniform(2)},
      [&](amr::HierTile&&) { ++n; }, {}, &stats);
  EXPECT_EQ(n, 1);
  EXPECT_EQ(stats.tiles_decoded, 1);
  EXPECT_EQ(stats.tiles_total, 8);

  // All-levels variant: finest level tiles arrive before any coarser.
  int last_level = std::numeric_limits<int>::max();
  amr::for_each_tile_compressed(compressed, *codec, [&](amr::HierTile&& t) {
    EXPECT_LE(t.level, last_level);
    last_level = t.level;
  });
  EXPECT_EQ(last_level, 0);
}

// ------------------------- streamed isosurface -------------------------

/// Exact (bitwise) mesh comparison: vertex coordinates, triangle indices,
/// level tags and ORDER all must match.
void expect_mesh_identical(const vis::TriMesh& a, const vis::TriMesh& b,
                           const std::string& what) {
  ASSERT_EQ(a.vertices.size(), b.vertices.size()) << what;
  ASSERT_EQ(a.triangles.size(), b.triangles.size()) << what;
  EXPECT_EQ(std::memcmp(a.vertices.data(), b.vertices.data(),
                        a.vertices.size() * sizeof(vis::Vec3)),
            0)
      << what;
  for (std::size_t t = 0; t < a.triangles.size(); ++t) {
    EXPECT_EQ(a.triangles[t].v, b.triangles[t].v) << what << " tri " << t;
    EXPECT_EQ(a.triangles[t].level, b.triangles[t].level)
        << what << " tri " << t;
  }
}

/// Single-level hierarchy wrapping `data` as one whole-domain patch.
amr::AmrHierarchy single_level_hierarchy(Array3<double> data) {
  amr::AmrHierarchy hier(2);
  const Box dom = Box::from_shape(data.shape());
  amr::AmrLevel l0;
  l0.domain = dom;
  amr::FArrayBox fab(dom);
  std::copy(data.span().begin(), data.span().end(), fab.values().begin());
  l0.box_array.push_back(dom);
  l0.fabs.push_back(std::move(fab));
  hier.add_level(std::move(l0));
  return hier;
}

constexpr vis::VisMethod kMethods[] = {
    vis::VisMethod::kResampling, vis::VisMethod::kDualCell,
    vis::VisMethod::kDualCellSwitching};

TEST(StreamedIso, SingleLevelMatchesFullInflateAcrossCodecsShapesThreads) {
  // Non-multiple-of-tile, tile-exact, 1xNxM and Nx1x1 shapes. Chunk
  // policy forces the whole-domain patch through the tile container.
  const Shape3 shapes[] = {{17, 13, 9}, {16, 16, 8}, {1, 40, 33}, {40, 1, 1}};
  compress::AmrChunkPolicy policy;
  policy.oversized_patch_cells = 16;  // always tile
  policy.tile = ChunkShape{8, 8, 4};
  vis::StreamedIsoOptions opt;
  opt.slab_nz = 4;
  ThreadCountGuard guard;
  for (const char* base : kCodecs) {
    const auto codec = make_compressor(base);
    for (const Shape3& s : shapes) {
      const amr::AmrHierarchy hier =
          single_level_hierarchy(deterministic_field(s));
      const auto compressed = compress_hierarchy(
          hier, *codec, 1e-3, compress::RedundantHandling::kKeep, policy);
      const amr::AmrHierarchy full = decompress_hierarchy(compressed, *codec);
      for (const auto method : kMethods) {
        const vis::TriMesh expect = vis::amr_isosurface(full, 0.25, method);
        for (const int nt : thread_counts()) {
          ThreadCountGuard::set(nt);
          const vis::TriMesh streamed = vis::amr_isosurface_streamed(
              compressed, *codec, 0.25, method, opt);
          expect_mesh_identical(
              streamed, expect,
              std::string(base) + " " + vis::vis_method_name(method) + " " +
                  std::to_string(s.nx) + "x" + std::to_string(s.ny) + "x" +
                  std::to_string(s.nz) + " " + std::to_string(nt) + "t");
        }
      }
    }
  }
}

TEST(StreamedIso, TwoLevelHierarchyMatchesAcrossMethodsAndHandlings) {
  const sim::SyntheticDataset ds = make_test_dataset();
  const auto codec = make_compressor("sz-lr");
  vis::StreamedIsoOptions opt;
  opt.slab_nz = 8;
  ThreadCountGuard guard;
  for (const auto handling : {compress::RedundantHandling::kKeep,
                              compress::RedundantHandling::kMeanFill}) {
    const auto compressed =
        compress_hierarchy(ds.hierarchy, *codec, 1e-3, handling,
                           test_policy());
    const amr::AmrHierarchy full = decompress_hierarchy(compressed, *codec);
    // An isovalue crossing both levels of the clumpy density field.
    const double iso = 1.5;
    for (const auto method : kMethods) {
      const vis::TriMesh expect = vis::amr_isosurface(full, iso, method);
      ASSERT_FALSE(expect.empty());
      for (const int nt : thread_counts()) {
        ThreadCountGuard::set(nt);
        const vis::TriMesh streamed = vis::amr_isosurface_streamed(
            compressed, *codec, iso, method, opt);
        expect_mesh_identical(
            streamed, expect,
            std::string(vis::vis_method_name(method)) +
                (handling == compress::RedundantHandling::kMeanFill
                     ? " mean-fill"
                     : " keep") +
                " " + std::to_string(nt) + "t");
      }
    }
  }
}

TEST(StreamedIso, ChunkedCodecHierarchyAndCullToggleMatch) {
  // The hierarchy codec itself chunked (every patch blob a container),
  // and value culling on vs off: all four combinations bit-identical.
  const sim::SyntheticDataset ds = make_test_dataset();
  const auto codec = make_compressor("chunked-sz-lr@8x8x8");
  const auto compressed = compress_hierarchy(
      ds.hierarchy, *codec, 1e-3, compress::RedundantHandling::kKeep);
  const amr::AmrHierarchy full = decompress_hierarchy(compressed, *codec);
  const double iso = 1.5;
  const vis::TriMesh expect =
      vis::amr_isosurface(full, iso, vis::VisMethod::kResampling);
  std::map<bool, vis::StreamedIsoStats> run;
  for (const bool cull : {true, false}) {
    vis::StreamedIsoOptions opt;
    opt.slab_nz = 8;
    opt.value_cull = cull;
    vis::StreamedIsoStats stats;
    const vis::TriMesh streamed = vis::amr_isosurface_streamed(
        compressed, *codec, iso, vis::VisMethod::kResampling, opt, &stats);
    expect_mesh_identical(streamed, expect,
                          cull ? "cull on" : "cull off");
    EXPECT_GT(stats.tiles_total, 0);
    EXPECT_GT(stats.slabs_total, 0);
    run[cull] = stats;
  }
  // Culling only ever removes decode work (data-free slabs are skipped
  // either way), and both settings produced the identical mesh above.
  EXPECT_LE(run[true].slabs_decoded, run[false].slabs_decoded);
  EXPECT_LE(run[true].tiles_decoded, run[false].tiles_decoded);
  EXPECT_EQ(run[true].tiles_total, run[false].tiles_total);
}

TEST(StreamedIso, ValueCullSkipsSlabsAndBoundsMemory) {
  // A tall field whose surface lives in one thin z-band: the sweep must
  // decode only the straddling slabs (plus seam neighbors) and its live
  // raster bytes must stay far below the full-inflate footprint.
  const Shape3 s{16, 16, 96};
  Array3<double> data(s);
  for (std::int64_t k = 0; k < s.nz; ++k)
    for (std::int64_t j = 0; j < s.ny; ++j)
      for (std::int64_t i = 0; i < s.nx; ++i)
        data(i, j, k) = static_cast<double>(k);  // ramp: iso k0 in one slab
  const auto codec = make_compressor("sz-lr");
  compress::AmrChunkPolicy policy;
  policy.oversized_patch_cells = 16;
  policy.tile = ChunkShape{16, 16, 8};
  const auto compressed =
      compress_hierarchy(single_level_hierarchy(std::move(data)), *codec,
                         1e-3, compress::RedundantHandling::kKeep, policy);
  const amr::AmrHierarchy full = decompress_hierarchy(compressed, *codec);

  vis::StreamedIsoOptions opt;
  opt.slab_nz = 8;
  vis::StreamedIsoStats stats;
  const double iso = 50.5;  // straddles exactly one 8-plane slab
  const vis::TriMesh streamed = vis::amr_isosurface_streamed(
      compressed, *codec, iso, vis::VisMethod::kResampling, opt, &stats);
  expect_mesh_identical(
      streamed, vis::amr_isosurface(full, iso, vis::VisMethod::kResampling),
      "ramp cull");
  EXPECT_EQ(stats.slabs_total, 12);
  // The straddling slab plus at most its two seam neighbors.
  EXPECT_GE(stats.slabs_decoded, 1);
  EXPECT_LE(stats.slabs_decoded, 3);
  EXPECT_LT(stats.tiles_decoded, stats.tiles_total / 2);
  // Peak live bytes stay well under one full level raster (values alone:
  // 16*16*96 doubles).
  const std::size_t full_raster =
      static_cast<std::size_t>(s.size()) * sizeof(double);
  EXPECT_LT(stats.peak_live_bytes, full_raster / 2);
}

TEST(StreamedIso, BrickSweepBoundsMemoryOnWideDomain) {
  // A transversely large, z-thin domain — the shape that breaks any
  // full-xy slab raster. The brick sweep's peak live footprint must stay
  // below even a single xy value plane, while the mesh stays
  // bit-identical to full inflate; a misaligned-brick run with a tiny
  // decoded-tile LRU must also match (tiles spanning bricks are carried,
  // not re-decoded) and respect the O(k·tile) bound.
  const Shape3 s{192, 160, 12};
  const auto codec = make_compressor("sz-lr");
  compress::AmrChunkPolicy policy;
  policy.oversized_patch_cells = 16;
  policy.tile = ChunkShape{8, 8, 4};
  const auto compressed =
      compress_hierarchy(single_level_hierarchy(deterministic_field(s)),
                         *codec, 1e-3, compress::RedundantHandling::kKeep,
                         policy);
  const amr::AmrHierarchy full = decompress_hierarchy(compressed, *codec);
  const double iso = 0.25;
  const std::size_t xy_plane =
      static_cast<std::size_t>(s.nx * s.ny) * sizeof(double);

  for (const auto method :
       {vis::VisMethod::kResampling, vis::VisMethod::kDualCell}) {
    const vis::TriMesh expect = vis::amr_isosurface(full, iso, method);
    ASSERT_FALSE(expect.empty());

    // Tile-aligned bricks (the default): every tile is decoded exactly
    // once and nothing needs carrying.
    vis::StreamedIsoOptions aligned;
    aligned.slab_nz = 4;
    vis::StreamedIsoStats as;
    expect_mesh_identical(
        vis::amr_isosurface_streamed(compressed, *codec, iso, method,
                                     aligned, &as),
        expect, std::string("aligned ") + vis::vis_method_name(method));
    EXPECT_LE(as.peak_live_tiles, 2);
    EXPECT_LT(as.peak_live_bytes, xy_plane);

    // Misaligned bricks + k-tile LRU: tiles span brick seams, so the
    // sweep must carry them across bricks (hits, not re-decodes) while
    // the live-tile high-water mark stays within lru_tiles + 1.
    vis::StreamedIsoOptions skew = aligned;
    skew.brick_nx = 5;
    skew.brick_ny = 7;
    skew.lru_tiles = 4;
    vis::StreamedIsoStats ss;
    expect_mesh_identical(
        vis::amr_isosurface_streamed(compressed, *codec, iso, method, skew,
                                     &ss),
        expect, std::string("skew ") + vis::vis_method_name(method));
    EXPECT_GT(ss.cache_hits, 0);
    EXPECT_LE(ss.peak_live_tiles, 5);  // lru_tiles + the tile in hand
    EXPECT_LT(ss.peak_live_bytes, xy_plane);
  }
}

TEST(StreamedIso, NanMaskedFieldStaysBitIdenticalUnderCull) {
  // A NaN-masked block inside an otherwise high-valued region: the
  // marching extractor still emits geometry at NaN-adjacent cubes
  // whenever a real corner crosses the isovalue, so the writer records
  // the conservative (-inf, +inf) range for NaN-holding tiles and the
  // cull must keep them — dropping them would silently change the mesh.
  const Shape3 s{16, 16, 24};
  Array3<double> data(s);
  for (std::int64_t f = 0; f < data.size(); ++f)
    data[f] = 10.0 + static_cast<double>(f % 7) / 8.0;  // all >> iso
  // The block straddles tile seams on every axis (tiles are 8x8x4), so
  // the tiles it touches are MIXED NaN/real — the case where a finite
  // [min, max] of the real cells would wrongly vouch for silence.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::int64_t k = 6; k < 11; ++k)
    for (std::int64_t j = 5; j < 12; ++j)
      for (std::int64_t i = 5; i < 12; ++i) data(i, j, k) = nan;

  const auto codec = make_compressor("sz-lr");
  compress::AmrChunkPolicy policy;
  policy.oversized_patch_cells = 16;
  policy.tile = ChunkShape{8, 8, 4};
  const auto compressed =
      compress_hierarchy(single_level_hierarchy(std::move(data)), *codec,
                         1e-3, compress::RedundantHandling::kKeep, policy);
  const amr::AmrHierarchy full = decompress_hierarchy(compressed, *codec);

  vis::StreamedIsoOptions opt;
  opt.slab_nz = 4;
  const double iso = 5.0;  // every real value is above; only NaN cubes cut
  for (const auto method :
       {vis::VisMethod::kResampling, vis::VisMethod::kDualCell}) {
    const vis::TriMesh expect = vis::amr_isosurface(full, iso, method);
    vis::StreamedIsoStats stats;
    const vis::TriMesh streamed = vis::amr_isosurface_streamed(
        compressed, *codec, iso, method, opt, &stats);
    expect_mesh_identical(streamed, expect,
                          std::string("nan ") + vis::vis_method_name(method));
    // The NaN-holding tiles (and their seam neighbors) are decoded, the
    // far all-above tiles are still culled.
    EXPECT_GT(stats.tiles_decoded, 0);
    EXPECT_LT(stats.tiles_decoded, stats.tiles_total);
  }

  // Legacy containers are a separate trap: the PRE-v3 writers computed
  // stats by SKIPPING NaN cells, so their finite ranges wrongly vouch
  // for NaN-holding tiles. The cull must refuse to trust them (v1/v2
  // patches decode whole). Build a genuine v2 blob by stripping the
  // v3/v4 tables: version byte -> 2; face (96), max-err (8) and
  // histogram (64) bytes per tile — everything after the 8-byte sizes
  // + 16-byte stats tables — erased.
  auto downgraded = compressed;
  Bytes& blob = downgraded.levels[0].patches[0].blob;
  ASSERT_EQ(blob[4], 4);
  std::uint64_t ntiles = 0;
  std::memcpy(&ntiles, blob.data() + 61, sizeof(ntiles));
  ASSERT_EQ(ntiles, 24u);  // 16x16x24 under 8x8x4
  const std::size_t face_off = 69 + (8 + 16) * ntiles;
  blob[4] = 2;
  blob.erase(blob.begin() + static_cast<std::ptrdiff_t>(face_off),
             blob.begin() + static_cast<std::ptrdiff_t>(
                                face_off + (96 + 8 + 64) * ntiles));
  const amr::AmrHierarchy full_v2 = decompress_hierarchy(downgraded, *codec);
  const vis::TriMesh expect_v2 =
      vis::amr_isosurface(full_v2, iso, vis::VisMethod::kResampling);
  vis::StreamedIsoStats v2_stats;
  const vis::TriMesh streamed_v2 = vis::amr_isosurface_streamed(
      downgraded, *codec, iso, vis::VisMethod::kResampling, opt, &v2_stats);
  expect_mesh_identical(streamed_v2, expect_v2, "nan v2 legacy blob");
  EXPECT_EQ(v2_stats.tiles_decoded, v2_stats.tiles_total)
      << "pre-v3 stats must not be trusted by the cull";
}

TEST(StreamedIso, ValidationErrors) {
  const sim::SyntheticDataset ds = make_test_dataset();
  const auto codec = make_compressor("sz-lr");
  const auto compressed = compress_hierarchy(
      ds.hierarchy, *codec, 1e-3, compress::RedundantHandling::kKeep);
  const auto other = make_compressor("sz-interp");
  EXPECT_THROW((void)vis::amr_isosurface_streamed(
                   compressed, *other, 0.0, vis::VisMethod::kResampling),
               Error);
}

}  // namespace
}  // namespace amrvis
