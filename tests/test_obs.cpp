// Tests for the observability layer (src/obs/): sharded metrics registry
// (counter/gauge/histogram correctness under an 8-thread hammer, snapshot
// merge vs a serial reference, stable JSON), trace spans (file
// well-formedness + nesting under every parallel backend, zero allocations
// on the disarmed path), and the ObsEndToEnd suite the ctest trace fixture
// drives with AMRVIS_TRACE / AMRVIS_METRICS_DUMP set in the environment.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compress/chunked.hpp"
#include "compress/compressor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fields.hpp"
#include "util/parallel.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter for the disarmed-path test. Counting every
// new/delete in the binary is exactly what we want: a disarmed span must
// not allocate ANYTHING.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}

// GCC pattern-matches free() inside a replaced operator delete against the
// compiler's built-in operator new and warns; the pairing is in fact
// malloc/free (see the replacements above), so silence the false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace amrvis {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;

// ---------------------------------------------------------------------------
// Minimal JSON syntax validator (no DOM): enough to prove emitted
// documents parse.

class JsonValidator {
 public:
  static bool valid(const std::string& doc) {
    JsonValidator v(doc);
    v.ws();
    if (!v.value()) return false;
    v.ws();
    return v.p_ == v.end_;
  }

 private:
  explicit JsonValidator(const std::string& doc)
      : p_(doc.data()), end_(doc.data() + doc.size()) {}

  void ws() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                         *p_ == '\r'))
      ++p_;
  }
  bool lit(const char* s) {
    const std::size_t n = std::strlen(s);
    if (static_cast<std::size_t>(end_ - p_) < n ||
        std::strncmp(p_, s, n) != 0)
      return false;
    p_ += n;
    return true;
  }
  bool string() {
    if (p_ >= end_ || *p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ >= end_) return false;
      }
      ++p_;
    }
    if (p_ >= end_) return false;
    ++p_;  // closing quote
    return true;
  }
  bool number() {
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    while (p_ < end_ && (std::isdigit(static_cast<unsigned char>(*p_)) ||
                         *p_ == '.' || *p_ == 'e' || *p_ == 'E' ||
                         *p_ == '+' || *p_ == '-'))
      ++p_;
    return p_ > start;
  }
  bool value() {
    ws();
    if (p_ >= end_) return false;
    switch (*p_) {
      case '{': {
        ++p_;
        ws();
        if (p_ < end_ && *p_ == '}') {
          ++p_;
          return true;
        }
        for (;;) {
          ws();
          if (!string()) return false;
          ws();
          if (p_ >= end_ || *p_ != ':') return false;
          ++p_;
          if (!value()) return false;
          ws();
          if (p_ < end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          break;
        }
        if (p_ >= end_ || *p_ != '}') return false;
        ++p_;
        return true;
      }
      case '[': {
        ++p_;
        ws();
        if (p_ < end_ && *p_ == ']') {
          ++p_;
          return true;
        }
        for (;;) {
          if (!value()) return false;
          ws();
          if (p_ < end_ && *p_ == ',') {
            ++p_;
            continue;
          }
          break;
        }
        if (p_ >= end_ || *p_ != ']') return false;
        ++p_;
        return true;
      }
      case '"':
        return string();
      case 't':
        return lit("true");
      case 'f':
        return lit("false");
      case 'n':
        return lit("null");
      default:
        return number();
    }
  }

  const char* p_;
  const char* end_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const char* tag) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = ::testing::TempDir();
  if (!name.empty() && name.back() != '/') name += '/';
  name += "amrvis_obs_";
  name += info->test_suite_name();
  name += '_';
  name += info->name();
  name += '_';
  name += tag;
  // gtest parametrizations put '/' in test names.
  std::replace(name.begin(), name.end(), '/', '-');
  return name;
}

// ---------------------------------------------------------------------------
// Registry

TEST(ObsMetrics, CounterGaugeBasics) {
  auto& c = obs::counter("test.basic.counter");
  const std::uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before + 42);
  EXPECT_EQ(&c, &obs::counter("test.basic.counter"));  // interned

  auto& g = obs::gauge("test.basic.gauge");
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
  g.set_max(100);
  EXPECT_EQ(g.value(), 100);
  g.set_max(5);  // lower: no effect
  EXPECT_EQ(g.value(), 100);
}

TEST(ObsMetrics, HistogramBucketEdges) {
  auto& h = obs::histogram("test.edges.hist", {1.0, 10.0, 100.0});
  h.reset();
  h.observe(0.5);    // bucket 0: x <= 1
  h.observe(1.0);    // bucket 0: inclusive upper edge
  h.observe(1.0001); // bucket 1
  h.observe(10.0);   // bucket 1
  h.observe(99.0);   // bucket 2
  h.observe(1e9);    // overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.0 + 1e9, 1e-6);
}

TEST(ObsMetrics, HistogramQuantileBucketMatchesSampleRank) {
  auto& h = obs::histogram("test.quantile.hist", obs::latency_ms_buckets());
  h.reset();
  // Deterministic skewed sample; same values go into a sorted vector.
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) {
    const double v = 0.05 * static_cast<double>((i * 7919) % 997) + 0.01;
    sample.push_back(v);
    h.observe(v);
  }
  std::sort(sample.begin(), sample.end());
  for (const double q : {0.5, 0.95, 0.99}) {
    const std::size_t idx = std::min<std::size_t>(
        static_cast<std::size_t>(q * static_cast<double>(sample.size() - 1) +
                                 0.5),
        sample.size() - 1);
    const double sample_q = sample[idx];
    const auto bucket = h.quantile_bucket(q);
    EXPECT_GT(sample_q, bucket.lo) << "q=" << q;
    EXPECT_LE(sample_q, bucket.hi) << "q=" << q;
  }
}

TEST(ObsMetrics, EightThreadHammerMergesExactly) {
  auto& c = obs::counter("test.hammer.counter");
  auto& g = obs::gauge("test.hammer.gauge");
  auto& h = obs::histogram("test.hammer.hist", {1.0, 2.0, 4.0, 8.0});
  c.reset();
  g.set(0);
  h.reset();

  constexpr int kThreads = 8;
  constexpr int kOps = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        c.add();
        g.add(1);
        h.observe(static_cast<double>((t + i) % 10));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kOps);
  EXPECT_EQ(g.value(), static_cast<std::int64_t>(kThreads) * kOps);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kOps);

  // Serial reference: replay the same observations single-threaded into
  // per-bucket tallies using the documented bucket rule.
  const std::vector<double> bounds = h.bounds();
  std::vector<std::uint64_t> expected(bounds.size() + 1, 0);
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOps; ++i) {
      const double x = static_cast<double>((t + i) % 10);
      const std::size_t b = static_cast<std::size_t>(
          std::lower_bound(bounds.begin(), bounds.end(), x) - bounds.begin());
      ++expected[b];
      expected_sum += x;
    }
  }
  EXPECT_EQ(h.bucket_counts(), expected);
  EXPECT_NEAR(h.sum(), expected_sum, expected_sum * 1e-12);
}

TEST(ObsMetrics, SnapshotJsonParsesAndContainsMetrics) {
  obs::counter("test.json.counter").add(3);
  obs::gauge("test.json.gauge").set(-5);
  obs::histogram("test.json.hist", {0.5, 5.0}).observe(1.0);

  const std::string json = obs::snapshot_json();
  EXPECT_TRUE(JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\":-5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);

  const std::string text = obs::snapshot_text();
  EXPECT_NE(text.find("test.json.counter"), std::string::npos);
  EXPECT_NE(text.find("test.json.gauge"), std::string::npos);
}

TEST(ObsMetrics, SnapshotHistogramCountEqualsBucketSum) {
  auto& h = obs::histogram("test.snapcount.hist", {1.0, 2.0});
  h.reset();
  for (int i = 0; i < 100; ++i) h.observe(static_cast<double>(i % 3));
  const obs::Snapshot snap = obs::snapshot();
  bool found = false;
  for (const auto& hv : snap.histograms) {
    if (hv.name != "test.snapcount.hist") continue;
    found = true;
    std::uint64_t total = 0;
    for (const std::uint64_t c : hv.counts) total += c;
    EXPECT_EQ(hv.count, total);
    EXPECT_EQ(hv.count, 100u);
    ASSERT_EQ(hv.counts.size(), hv.bounds.size() + 1);
  }
  EXPECT_TRUE(found);
}

TEST(ObsMetrics, ResetZeroesEverything) {
  obs::counter("test.reset.counter").add(9);
  obs::gauge("test.reset.gauge").set(9);
  obs::histogram("test.reset.hist", {1.0}).observe(0.5);
  obs::reset();
  EXPECT_EQ(obs::counter("test.reset.counter").value(), 0u);
  EXPECT_EQ(obs::gauge("test.reset.gauge").value(), 0);
  EXPECT_EQ(obs::histogram("test.reset.hist", {1.0}).count(), 0u);
}

// ---------------------------------------------------------------------------
// Trace spans

struct TraceEvent {
  std::string name;
  long long tid = -1;
  long long ts = -1;
  long long dur = -1;
};

// The writer emits one event object per line with a pinned key order;
// extract the fields the nesting check needs.
std::vector<TraceEvent> parse_events(const std::string& doc) {
  std::vector<TraceEvent> out;
  std::istringstream in(doc);
  std::string line;
  while (std::getline(in, line)) {
    const auto npos = std::string::npos;
    const auto name_at = line.find("\"name\":\"");
    if (name_at == npos) continue;
    TraceEvent e;
    const auto name_end = line.find('"', name_at + 8);
    e.name = line.substr(name_at + 8, name_end - (name_at + 8));
    const std::pair<const char*, long long TraceEvent::*> fields[] = {
        {"\"tid\":", &TraceEvent::tid},
        {"\"ts\":", &TraceEvent::ts},
        {"\"dur\":", &TraceEvent::dur}};
    for (const auto& [key, field] : fields) {
      const auto at = line.find(key);
      if (at != npos)
        e.*field = std::stoll(line.substr(at + std::strlen(key)));
    }
    out.push_back(std::move(e));
  }
  return out;
}

// X events are pushed at scope EXIT under one mutex, so per tid the file
// order is end-time order and children precede parents. Two spans on the
// same thread must then either nest or be disjoint.
void expect_spans_nest(const std::vector<TraceEvent>& events) {
  std::vector<std::vector<TraceEvent>> by_tid;
  for (const TraceEvent& e : events) {
    ASSERT_GE(e.tid, 0);
    ASSERT_GE(e.ts, 0);
    ASSERT_GE(e.dur, 0);
    if (static_cast<std::size_t>(e.tid) >= by_tid.size())
      by_tid.resize(static_cast<std::size_t>(e.tid) + 1);
    by_tid[static_cast<std::size_t>(e.tid)].push_back(e);
  }
  for (const auto& seq : by_tid) {
    long long prev_end = -1;
    for (std::size_t i = 0; i < seq.size(); ++i) {
      const long long end_i = seq[i].ts + seq[i].dur;
      EXPECT_GE(end_i, prev_end)
          << "per-tid file order must be end-time order";
      prev_end = end_i;
      for (std::size_t j = i + 1; j < seq.size(); ++j) {
        // seq[j] ended later; it must contain seq[i] or be disjoint.
        const long long end_j = seq[j].ts + seq[j].dur;
        const bool contains = seq[j].ts <= seq[i].ts && end_i <= end_j;
        const bool disjoint = seq[j].ts >= end_i;
        EXPECT_TRUE(contains || disjoint)
            << seq[i].name << " [" << seq[i].ts << "," << end_i << ") vs "
            << seq[j].name << " [" << seq[j].ts << "," << end_j << ")";
      }
    }
  }
}

class ObsTraceBackends
    : public ::testing::TestWithParam<ParallelBackend> {};

TEST_P(ObsTraceBackends, TraceFileWellFormedAndNested) {
  const std::string path = temp_path("trace.json");
  obs::trace_arm(path.c_str(), /*ring_capacity=*/64);  // small: force flushes
  {
    ScopedParallelBackend scope(GetParam());
    const auto codec = compress::make_compressor("chunked-sz-lr");
    const Array3<double> field = sim::warpx_like_ez({32, 32, 64});
    const Bytes blob = codec->compress(field.view(), 1e-3);
    const Array3<double> round = codec->decompress(blob);
    ASSERT_EQ(round.shape(), field.shape());
  }
  obs::trace_disarm();

  const std::string doc = read_file(path);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(JsonValidator::valid(doc)) << path;

  const std::vector<TraceEvent> events = parse_events(doc);
  ASSERT_FALSE(events.empty());
  int decodes = 0;
  int compresses = 0;
  for (const TraceEvent& e : events) {
    if (e.name == "tile.decode") ++decodes;
    if (e.name == "container.compress") ++compresses;
  }
  EXPECT_GT(decodes, 0);
  EXPECT_EQ(compresses, 1);
  expect_spans_nest(events);
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ObsTraceBackends,
    ::testing::Values(ParallelBackend::kSerial, ParallelBackend::kOpenMP
#ifdef AMRVIS_HAVE_THREAD_POOL
                      ,
                      ParallelBackend::kPool
#endif
                      ),
    [](const ::testing::TestParamInfo<ParallelBackend>& info) {
      switch (info.param) {
        case ParallelBackend::kSerial:
          return "serial";
        case ParallelBackend::kOpenMP:
          return "openmp";
        case ParallelBackend::kPool:
          return "pool";
      }
      return "unknown";
    });

TEST(ObsTrace, DisarmedSpansAllocateNothing) {
  if (std::getenv("AMRVIS_TRACE") != nullptr)
    GTEST_SKIP() << "AMRVIS_TRACE set: tracing armed by the environment";
  obs::trace_disarm();
  ASSERT_FALSE(obs::trace_armed());

  const std::uint64_t before = g_alloc_count.load();
  for (int i = 0; i < 100000; ++i) {
    OBS_SPAN("test.disarmed", {"i", i});
  }
  const std::uint64_t after = g_alloc_count.load();
  EXPECT_EQ(after, before) << "disarmed spans must not allocate";
}

TEST(ObsTrace, DisarmMidRunDropsStraddlingSpansWhole) {
  const std::string path = temp_path("trace.json");
  obs::trace_arm(path.c_str());
  {
    obs::SpanScope straddler("test.straddler");
    obs::trace_disarm();  // span is open across the disarm
  }
  // The file must still be a complete well-formed JSON array.
  const std::string doc = read_file(path);
  EXPECT_TRUE(JsonValidator::valid(doc)) << doc;
  EXPECT_EQ(doc.find("test.straddler"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsTrace, EmitSpanHonorsDisarm) {
  const std::string path = temp_path("trace.json");
  obs::trace_arm(path.c_str());
  obs::trace_emit_span("test.manual", obs::trace_clock_us() - 100, 100);
  obs::trace_disarm();
  obs::trace_emit_span("test.after", obs::trace_clock_us() - 100, 100);
  const std::string doc = read_file(path);
  EXPECT_TRUE(JsonValidator::valid(doc)) << doc;
  EXPECT_NE(doc.find("test.manual"), std::string::npos);
  EXPECT_EQ(doc.find("test.after"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ObsEndToEnd: driven by the ctest fixture with AMRVIS_TRACE and
// AMRVIS_METRICS_DUMP set in the environment (tools/check_trace.py then
// validates the produced files, reconciling tile.decode span count with
// the registry counter). The tests themselves never arm or disarm
// programmatically, so they also pass in the plain unit sweep.

TEST(ObsEndToEnd, CompressDecodeRegionWorkload) {
  const auto codec = compress::make_compressor("chunked-sz-lr");
  const Array3<double> field = sim::warpx_like_ez({48, 48, 96});
  const Bytes blob = codec->compress(field.view(), 1e-3);

  const auto* chunked =
      dynamic_cast<const compress::ChunkedCompressor*>(codec.get());
  ASSERT_NE(chunked, nullptr);
  compress::RegionDecodeStats stats;
  const Array3<double> roi = chunked->decompress_region(
      blob, amr::Box{{8, 8, 8}, {23, 23, 23}}, &stats);
  EXPECT_EQ(roi.shape(), (Shape3{16, 16, 16}));
  EXPECT_GT(stats.tiles_decoded, 0);

  // The whole-blob inflate exercises the parallel decode seam too.
  const Array3<double> round = codec->decompress(blob);
  EXPECT_EQ(round.shape(), field.shape());

  // Registry sanity under the same process the fixture validates.
  EXPECT_GT(obs::counter("tile.decode").value(), 0u);
  EXPECT_GT(obs::counter("container.parse").value(), 0u);
}

}  // namespace
}  // namespace amrvis
