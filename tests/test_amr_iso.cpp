// Tests for the AMR iso-surface pipelines: per-level rasterization,
// the crack behaviour of re-sampling (paper Figs. 5-6), the dual-cell
// gap and its switching-cell fix (paper Figs. 7-8) — the depicted
// behaviours as executable assertions.

#include <gtest/gtest.h>

#include <cmath>

#include "vis/amr_iso.hpp"
#include "vis/crack.hpp"

namespace amrvis::vis {
namespace {

using amr::AmrHierarchy;
using amr::AmrLevel;
using amr::Box;
using amr::FArrayBox;
using amr::IntVect;

/// Two-level hierarchy sampling an analytic function: coarse 16^3 cells
/// over the full domain, fine patches covering the x < half region.
/// f is sampled at cell centers in finest-world coordinates (fine cell
/// size 1, coarse 2).
template <typename F>
AmrHierarchy make_split_hierarchy(const F& f) {
  AmrHierarchy hier(2);
  const Box coarse_domain{{0, 0, 0}, {15, 15, 15}};
  const Box fine_domain = coarse_domain.refine(2);

  AmrLevel l0;
  l0.domain = coarse_domain;
  FArrayBox cfab(coarse_domain);
  for (std::int64_t k = 0; k < 16; ++k)
    for (std::int64_t j = 0; j < 16; ++j)
      for (std::int64_t i = 0; i < 16; ++i)
        cfab.at({i, j, k}) = f(2.0 * i + 1.0, 2.0 * j + 1.0, 2.0 * k + 1.0);
  l0.box_array.push_back(coarse_domain);
  l0.fabs.push_back(std::move(cfab));
  hier.add_level(std::move(l0));

  AmrLevel l1;
  l1.domain = fine_domain;
  const Box fine_box{{0, 0, 0}, {15, 31, 31}};  // x < 16 (half domain)
  FArrayBox ffab(fine_box);
  for (std::int64_t k = 0; k <= 31; ++k)
    for (std::int64_t j = 0; j <= 31; ++j)
      for (std::int64_t i = 0; i <= 15; ++i)
        ffab.at({i, j, k}) = f(i + 0.5, j + 0.5, k + 0.5);
  l1.box_array.push_back(fine_box);
  l1.fabs.push_back(std::move(ffab));
  hier.add_level(std::move(l1));
  return hier;
}

double plane_z(double, double, double z) { return z - 16.3; }

double sphere(double x, double y, double z) {
  const double dx = x - 16, dy = y - 16, dz = z - 16;
  return 12.0 - std::sqrt(dx * dx + dy * dy + dz * dz);
}

TEST(RasterizeLevels, MasksReflectStructure) {
  const AmrHierarchy hier = make_split_hierarchy(plane_z);
  const auto fields = rasterize_levels(hier);
  ASSERT_EQ(fields.size(), 2u);
  // Coarse: all cells have data; left half covered by fine.
  EXPECT_EQ(fields[0].cell_size, 2);
  EXPECT_EQ(fields[0].has_data(0, 0, 0), 1);
  EXPECT_EQ(fields[0].uncovered(0, 0, 0), 0);   // under the fine patch
  EXPECT_EQ(fields[0].uncovered(15, 0, 0), 1);  // right half uncovered
  // Fine: data only in the patch.
  EXPECT_EQ(fields[1].cell_size, 1);
  EXPECT_EQ(fields[1].has_data(0, 0, 0), 1);
  EXPECT_EQ(fields[1].has_data(16, 0, 0), 0);
  EXPECT_EQ(fields[1].uncovered(15, 31, 31), 1);
}

TEST(ResamplingIso, BothLevelsContribute) {
  const AmrHierarchy hier = make_split_hierarchy(plane_z);
  const TriMesh mesh = resampling_isosurface(hier, 0.0);
  std::size_t l0 = 0, l1 = 0;
  for (const Triangle& t : mesh.triangles) (t.level ? l1 : l0)++;
  EXPECT_GT(l0, 0u);
  EXPECT_GT(l1, 0u);
  // Surface height is exact on this linear field: z = 16.3 everywhere.
  for (const Vec3& v : mesh.vertices) EXPECT_NEAR(v.z, 16.3, 0.75);
}

TEST(ResamplingIso, CrackAtLevelInterfaceForCurvedData) {
  // For curved data the coarse and fine contours disagree at the
  // interface: interior boundary edges must exist (paper Figs. 1a, 5, 6).
  const AmrHierarchy hier = make_split_hierarchy(sphere);
  const TriMesh mesh = resampling_isosurface(hier, 0.0);
  const CrackStats stats = measure_cracks(mesh, {0, 0, 0}, {32, 32, 32});
  EXPECT_GT(stats.interior_boundary_edges, 0);
}

TEST(DualCellIso, PlainDualHasGapAtInterface) {
  const AmrHierarchy hier = make_split_hierarchy(sphere);
  const TriMesh dual = dualcell_isosurface(hier, 0.0, false);
  const TriMesh dual_switch = dualcell_isosurface(hier, 0.0, true);
  const CrackStats plain =
      measure_cracks(dual, {0, 0, 0}, {32, 32, 32});
  const CrackStats switched =
      measure_cracks(dual_switch, {0, 0, 0}, {32, 32, 32});
  ASSERT_GT(plain.edges_measured, 0);
  ASSERT_GT(switched.edges_measured, 0);
  // Switching cells bridge the gap: mean gap collapses (Fig. 1b vs 1c).
  EXPECT_LT(switched.mean_gap, 0.55 * plain.mean_gap);
}

TEST(DualCellIso, SwitchingAddsCoarseOverlapTriangles) {
  const AmrHierarchy hier = make_split_hierarchy(sphere);
  const TriMesh plain = dualcell_isosurface(hier, 0.0, false);
  const TriMesh switched = dualcell_isosurface(hier, 0.0, true);
  std::size_t plain_l0 = 0, switched_l0 = 0;
  for (const Triangle& t : plain.triangles)
    if (t.level == 0) ++plain_l0;
  for (const Triangle& t : switched.triangles)
    if (t.level == 0) ++switched_l0;
  EXPECT_GT(switched_l0, plain_l0);
  // Fine level is identical in both.
  std::size_t plain_l1 = 0, switched_l1 = 0;
  for (const Triangle& t : plain.triangles)
    if (t.level == 1) ++plain_l1;
  for (const Triangle& t : switched.triangles)
    if (t.level == 1) ++switched_l1;
  EXPECT_EQ(plain_l1, switched_l1);
}

TEST(DualCellIso, UsesOriginalValuesNotInterpolated) {
  // The dual-cell surface of a linear ramp passes exactly through cell
  // centers' iso crossing — and differs from the re-sampled surface by
  // construction only in vertex placement, not height, on linear data.
  const AmrHierarchy hier = make_split_hierarchy(plane_z);
  const TriMesh dual = dualcell_isosurface(hier, 0.0, true);
  ASSERT_FALSE(dual.empty());
  for (const Vec3& v : dual.vertices) EXPECT_NEAR(v.z, 16.3, 1.0);
}

TEST(DualCellIso, WorldPositionsAtCellCenters) {
  // On a single-level hierarchy the dual grid nodes are cell centers:
  // surface x-positions are offset by half a cell vs the vertex grid.
  AmrHierarchy hier(2);
  const Box domain{{0, 0, 0}, {7, 7, 7}};
  AmrLevel l0;
  l0.domain = domain;
  FArrayBox fab(domain);
  for (std::int64_t k = 0; k < 8; ++k)
    for (std::int64_t j = 0; j < 8; ++j)
      for (std::int64_t i = 0; i < 8; ++i)
        fab.at({i, j, k}) = static_cast<double>(i) - 3.2;
  l0.box_array.push_back(domain);
  l0.fabs.push_back(std::move(fab));
  hier.add_level(std::move(l0));
  const TriMesh mesh = dualcell_isosurface(hier, 0.0, true);
  ASSERT_FALSE(mesh.empty());
  // Cell centers at i + 0.5 (cell size 1 on the finest==only level):
  // values i - 3.2 cross 0 between centers 3.5 and 4.5 at x = 3.7.
  for (const Vec3& v : mesh.vertices) EXPECT_NEAR(v.x, 3.7, 1e-9);
}

TEST(AmrIsosurface, DispatchMatchesDirectCalls) {
  const AmrHierarchy hier = make_split_hierarchy(sphere);
  EXPECT_EQ(amr_isosurface(hier, 0.0, VisMethod::kResampling)
                .num_triangles(),
            resampling_isosurface(hier, 0.0).num_triangles());
  EXPECT_EQ(amr_isosurface(hier, 0.0, VisMethod::kDualCell).num_triangles(),
            dualcell_isosurface(hier, 0.0, false).num_triangles());
  EXPECT_EQ(
      amr_isosurface(hier, 0.0, VisMethod::kDualCellSwitching)
          .num_triangles(),
      dualcell_isosurface(hier, 0.0, true).num_triangles());
}

TEST(AmrIsosurface, MethodNames) {
  EXPECT_STREQ(vis_method_name(VisMethod::kResampling), "re-sampling");
  EXPECT_STREQ(vis_method_name(VisMethod::kDualCell), "dual-cell");
  EXPECT_STREQ(vis_method_name(VisMethod::kDualCellSwitching),
               "dual-cell+switch");
}

TEST(AmrIsosurface, SingleLevelResamplingMatchesPlainExtraction) {
  // With one level and full coverage, the AMR pipeline must reduce to
  // plain re-sampling + extraction (no masks in play).
  AmrHierarchy hier(2);
  const Box domain{{0, 0, 0}, {11, 11, 11}};
  AmrLevel l0;
  l0.domain = domain;
  FArrayBox fab(domain);
  auto small_sphere = [](double x, double y, double z) {
    const double dx = x - 6, dy = y - 6, dz = z - 6;
    return 4.0 - std::sqrt(dx * dx + dy * dy + dz * dz);
  };
  for (std::int64_t k = 0; k < 12; ++k)
    for (std::int64_t j = 0; j < 12; ++j)
      for (std::int64_t i = 0; i < 12; ++i)
        fab.at({i, j, k}) = small_sphere(i + 0.5, j + 0.5, k + 0.5);
  l0.box_array.push_back(domain);
  l0.fabs.push_back(std::move(fab));
  hier.add_level(std::move(l0));
  TriMesh mesh = resampling_isosurface(hier, 0.0);
  mesh.weld();
  EXPECT_TRUE(mesh.boundary_edges().empty());  // closed within the level
}

}  // namespace
}  // namespace amrvis::vis
