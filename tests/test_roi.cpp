// Region-of-interest decode subsystem (container v2): golden-blob format
// compatibility, ROI property tests (decompress_region == slice of full
// decode, bit-for-bit, across codecs/shapes/threads), per-tile stats
// culling, adversarial v2 header handling, the make_compressor tile-shape
// suffix, and the AMR/sampling consumers of partial decode.
//
// Golden blobs under tests/data/ pin the container format:
//  - golden_v1_chunked_szlr.bin      version-1 container written by the
//                                    PR3 code (no stats table). FROZEN:
//                                    the v1 writer no longer exists; this
//                                    file can never be regenerated and
//                                    must decode byte-exactly forever.
//  - golden_v2_chunked_szlr.bin      version-2 container written by the
//                                    PR4 code (min/max stats, no face
//                                    table). FROZEN like v1 — the PR5
//                                    writer emits v3.
//  - golden_v3_chunked_szlr.bin      version-3 container written by the
//                                    PR5–7 code (per-tile min/max +
//                                    face-slab stats of ORIGINAL values).
//                                    FROZEN like v1/v2 — the v4 writer
//                                    records decoded-value stats.
//  - golden_v4_chunked_szlr.bin      version-4 container written by the
//                                    PR8 code (exact decoded-value tile +
//                                    face stats, achieved max error, 16-
//                                    bucket histogram) whose tiles carry
//                                    lzss-v1 payloads. FROZEN since the
//                                    lzss-v2 bump: the v1-writing codec
//                                    path is gone from production.
//  - golden_lzss2_chunked_szlr.bin   current-writer container (v4
//                                    container, lzss-v2 tile payloads,
//                                    default lazy parse).
//                                    Regenerate ONLY on an intentional
//                                    format bump:
//                                      cmake --build build --target gen_golden_blobs
//                                      ./build/tests/gen_golden_blobs tests/data
//  - *.dec.bin                       raw little-endian doubles of the
//                                    expected decode, byte-compared.
// Input field/codec for the v2/v3/v4/lzss2 golden files: golden_field()
// 12x10x9, sz-lr, tile 8x8x4, abs_eb 1e-3 (lock-step with
// gen_golden_blobs.cpp). LZSS is lossless, so golden_v4 and golden_lzss2
// decode to the same doubles (asserted below).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "amr/sampling.hpp"
#include "compress/amr_compress.hpp"
#include "compress/chunked.hpp"
#include "compress/compressor.hpp"
#include "compress/lzss.hpp"
#include "sim/fields.hpp"
#include "sim/tagging.hpp"
#include "util/bytestream.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace amrvis::compress {
namespace {

using amr::Box;
using amr::IntVect;

constexpr const char* kCodecs[] = {"sz-lr", "sz-interp", "zfp-like"};

std::vector<int> thread_counts() {
#ifdef _OPENMP
  return {1, 2, std::max(4, omp_get_max_threads())};
#else
  return {1};
#endif
}

/// RAII restore of the OpenMP thread-count setting.
class ThreadCountGuard {
 public:
#ifdef _OPENMP
  ThreadCountGuard() : saved_(omp_get_max_threads()) {}
  ~ThreadCountGuard() { omp_set_num_threads(saved_); }
  static void set(int n) { omp_set_num_threads(n); }

 private:
  int saved_;
#else
  static void set(int) {}
#endif
};

/// Deterministic filler shared with gen_golden_blobs.cpp. Every term is
/// a small dyadic rational and the sum is exact, so the field is
/// bit-identical on every platform and compiler — no libm (sin ulp) or
/// FMA-contraction dependence feeds the byte-exact golden contract.
Array3<double> deterministic_field(Shape3 s) {
  Array3<double> data(s);
  for (std::int64_t f = 0; f < data.size(); ++f) {
    const auto h = static_cast<std::uint64_t>(f) * 2654435761ULL;
    data[f] = static_cast<double>(h % 1024) / 64.0 - 8.0 +
              static_cast<double>(f % 11) / 16.0;
  }
  return data;
}

Array3<double> golden_field() { return deterministic_field({12, 10, 9}); }

ChunkedCompressor golden_codec() {
  return ChunkedCompressor(make_compressor("sz-lr"), ChunkShape{8, 8, 4});
}

std::string data_path(const std::string& file) {
  return std::string(AMRVIS_TEST_DATA_DIR "/") + file;
}

/// Slice `region` out of a full array (0-based), row-copy like the codec.
Array3<double> slice(const Array3<double>& full, const Box& region) {
  Array3<double> out(region.shape());
  const Shape3 os = out.shape();
  for (std::int64_t dz = 0; dz < os.nz; ++dz)
    for (std::int64_t dy = 0; dy < os.ny; ++dy)
      std::memcpy(&out(0, dy, dz),
                  &full(region.lo().x, region.lo().y + dy,
                        region.lo().z + dz),
                  static_cast<std::size_t>(os.nx) * sizeof(double));
  return out;
}

bool bit_equal(const Array3<double>& a, const Array3<double>& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(double)) == 0;
}

// ------------------------- golden blobs --------------------------------

TEST(RoiGolden, V1BlobStillDecodesByteExact) {
  const Bytes blob = read_file(data_path("golden_v1_chunked_szlr.bin"));
  const Bytes expect = read_file(data_path("golden_v1_chunked_szlr.dec.bin"));
  ASSERT_GE(blob.size(), 5u);
  EXPECT_EQ(blob[4], 1) << "golden v1 blob is not version 1";

  const ChunkedCompressor codec = golden_codec();
  const Array3<double> dec = codec.decompress(blob);
  ASSERT_EQ(static_cast<std::size_t>(dec.size()) * sizeof(double),
            expect.size());
  EXPECT_EQ(std::memcmp(dec.data(), expect.data(), expect.size()), 0)
      << "v1 container decode changed — silent format break";
}

TEST(RoiGolden, V1BlobSupportsRegionDecode) {
  // ROI decode must work on pre-stats containers too (no stats needed).
  const Bytes blob = read_file(data_path("golden_v1_chunked_szlr.bin"));
  const ChunkedCompressor codec = golden_codec();
  const Array3<double> full = codec.decompress(blob);
  const Box region{{3, 2, 1}, {10, 9, 6}};
  RegionDecodeStats stats;
  const Array3<double> roi = codec.decompress_region(blob, region, &stats);
  EXPECT_TRUE(bit_equal(roi, slice(full, region)));
  EXPECT_EQ(stats.tiles_total, 12);  // 12x10x9 under 8x8x4 = 2*2*3
  EXPECT_LT(stats.tiles_decoded, stats.tiles_total);
}

TEST(RoiGolden, V1BlobTilesOverlappingIsConservative) {
  // A v1 container has no stats table: every tile must be returned, with
  // an unbounded range, so culling is conservative rather than wrong.
  const Bytes blob = read_file(data_path("golden_v1_chunked_szlr.bin"));
  const auto tiles = golden_codec().tiles_overlapping(blob, 0.0, 0.0);
  ASSERT_EQ(tiles.size(), 12u);
  for (const TileRegion& t : tiles) {
    EXPECT_EQ(t.stats.min, -std::numeric_limits<double>::infinity());
    EXPECT_EQ(t.stats.max, std::numeric_limits<double>::infinity());
  }
}

TEST(RoiGolden, V2BlobStillDecodesByteExact) {
  // FROZEN since the PR5 v3 bump: the v2 writer is gone; this blob can
  // never be regenerated and must decode byte-exactly forever.
  const Bytes blob = read_file(data_path("golden_v2_chunked_szlr.bin"));
  const Bytes expect = read_file(data_path("golden_v2_chunked_szlr.dec.bin"));
  ASSERT_GE(blob.size(), 5u);
  EXPECT_EQ(blob[4], 2) << "golden v2 blob is not version 2";

  const ChunkedCompressor codec = golden_codec();
  const Array3<double> dec = codec.decompress(blob);
  ASSERT_EQ(static_cast<std::size_t>(dec.size()) * sizeof(double),
            expect.size());
  EXPECT_EQ(std::memcmp(dec.data(), expect.data(), expect.size()), 0)
      << "v2 container decode changed — silent format break";

  // A v2 container carries no face table: the face-stat query must come
  // back empty (consumers fall back to whole-tile ranges), never throw.
  EXPECT_TRUE(codec.tile_face_stats(blob).empty());
  // And ROI decode still works on it.
  const Box region{{3, 2, 1}, {10, 9, 6}};
  EXPECT_TRUE(bit_equal(codec.decompress_region(blob, region),
                        slice(dec, region)));
}

TEST(RoiGolden, V3BlobStillDecodesByteExact) {
  // FROZEN since the v4 bump: the v3 writer is gone (the v4 writer
  // records decoded-value stats); this blob can never be regenerated and
  // must decode byte-exactly forever.
  const Bytes blob = read_file(data_path("golden_v3_chunked_szlr.bin"));
  const Bytes expect = read_file(data_path("golden_v3_chunked_szlr.dec.bin"));
  ASSERT_GE(blob.size(), 5u);
  EXPECT_EQ(blob[4], 3) << "golden v3 blob is not version 3";

  const ChunkedCompressor codec = golden_codec();
  const Array3<double> dec = codec.decompress(blob);
  ASSERT_EQ(static_cast<std::size_t>(dec.size()) * sizeof(double),
            expect.size());
  EXPECT_EQ(std::memcmp(dec.data(), expect.data(), expect.size()), 0)
      << "v3 container decode changed — silent format break";

  // A v3 container carries face-slab stats but no error/histogram
  // tables: the face query still works, ROI decode still works.
  EXPECT_EQ(codec.tile_face_stats(blob).size(), 12u);
  const Box region{{3, 2, 1}, {10, 9, 6}};
  EXPECT_TRUE(bit_equal(codec.decompress_region(blob, region),
                        slice(dec, region)));
}

TEST(RoiGolden, V4BlobStillDecodesByteExact) {
  // FROZEN since the lzss-v2 bump: this blob's tiles carry lzss-v1
  // payloads and the production v1-writing path is gone; it can never be
  // regenerated and must decode byte-exactly forever (this is also the
  // standing regression test for the v1 decoder's trailing-byte
  // leniency on real payloads).
  const Bytes blob = read_file(data_path("golden_v4_chunked_szlr.bin"));
  const Bytes expect = read_file(data_path("golden_v4_chunked_szlr.dec.bin"));
  ASSERT_GE(blob.size(), 5u);
  EXPECT_EQ(blob[4], 4) << "golden v4 blob is not version 4";

  const ChunkedCompressor codec = golden_codec();
  const Array3<double> dec = codec.decompress(blob);
  ASSERT_EQ(static_cast<std::size_t>(dec.size()) * sizeof(double),
            expect.size());
  EXPECT_EQ(std::memcmp(dec.data(), expect.data(), expect.size()), 0)
      << "v4 container decode changed — silent format break";
}

TEST(RoiGolden, Lzss2BlobDecodesByteExactAndReproduces) {
  const Bytes blob = read_file(data_path("golden_lzss2_chunked_szlr.bin"));
  const Bytes expect =
      read_file(data_path("golden_lzss2_chunked_szlr.dec.bin"));
  ASSERT_GE(blob.size(), 5u);
  EXPECT_EQ(blob[4], 4) << "golden lzss2 blob is not container version 4";

  const ChunkedCompressor codec = golden_codec();
  const Array3<double> dec = codec.decompress(blob);
  ASSERT_EQ(static_cast<std::size_t>(dec.size()) * sizeof(double),
            expect.size());
  EXPECT_EQ(std::memcmp(dec.data(), expect.data(), expect.size()), 0)
      << "lzss2 container decode changed — silent format break";

  // The writer must also still produce these exact bytes: an encoder-side
  // drift is a format break even if decode still accepts old blobs.
  const Bytes rewritten = codec.compress(golden_field().view(), 1e-3);
  EXPECT_EQ(rewritten, blob)
      << "current-writer container bytes changed — regen goldens only on "
         "an intentional format bump (see header comment)";
}

TEST(RoiGolden, V4AndLzss2GoldensDecodeIdentically) {
  // The two goldens differ only in the LZSS blob version inside the
  // tiles; LZSS is lossless, so the decoded doubles must be identical —
  // the format bump may not change a single decoded value.
  const Bytes dec_v4 = read_file(data_path("golden_v4_chunked_szlr.dec.bin"));
  const Bytes dec_l2 =
      read_file(data_path("golden_lzss2_chunked_szlr.dec.bin"));
  EXPECT_EQ(dec_v4, dec_l2);
}

TEST(RoiGolden, V4FaceStatsBoundTheirDecodedSlabs) {
  // The face table must be exact for its slabs: every face range is
  // contained in the tile range, and recomputing the two-layer slab
  // ranges from the DECODED field reproduces the stored values — v4
  // stats bound what a reader will actually see, not the original input.
  const ChunkedCompressor codec = golden_codec();
  const Bytes blob = codec.compress(golden_field().view(), 1e-3);
  const Array3<double> field = codec.decompress(blob);
  const auto tiles = codec.tiles_overlapping(
      blob, -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::infinity());
  const auto faces = codec.tile_face_stats(blob);
  ASSERT_EQ(faces.size(), tiles.size());
  for (const TileRegion& t : tiles) {
    const auto& tf = faces[static_cast<std::size_t>(t.index)];
    for (int f = 0; f < 6; ++f) {
      EXPECT_GE(tf[static_cast<std::size_t>(f)].min, t.stats.min);
      EXPECT_LE(tf[static_cast<std::size_t>(f)].max, t.stats.max);
    }
    // Recompute the +x slab by hand and compare exactly.
    const Box b = t.box;
    const std::int64_t x0 =
        std::max(b.lo().x, b.hi().x - 1);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (std::int64_t z = b.lo().z; z <= b.hi().z; ++z)
      for (std::int64_t y = b.lo().y; y <= b.hi().y; ++y)
        for (std::int64_t x = x0; x <= b.hi().x; ++x) {
          lo = std::min(lo, field(x, y, z));
          hi = std::max(hi, field(x, y, z));
        }
    EXPECT_EQ(tf[1].min, lo) << "tile " << t.index;
    EXPECT_EQ(tf[1].max, hi) << "tile " << t.index;
  }
}

// ---------------------- ROI property tests -----------------------------

/// Region boxes exercising the ISSUE grid for a given field shape:
/// full field, single cell, a box straddling tile seams, and a 1-thick
/// plane. All are clipped into the field.
std::vector<Box> region_cases(const Shape3& s, const ChunkShape& tile) {
  const Box field = Box::from_shape(s);
  std::vector<Box> regions;
  regions.push_back(field);  // region == full
  const IntVect mid{s.nx / 2, s.ny / 2, s.nz / 2};
  regions.push_back({mid, mid});  // single cell
  // Straddle the first tile seam on every axis that has one (clip keeps
  // this valid for sub-tile fields too).
  const IntVect seam{std::min(tile.nx, s.nx - 1), std::min(tile.ny, s.ny - 1),
                     std::min(tile.nz, s.nz - 1)};
  regions.push_back(
      {elementwise_max(seam - IntVect::uniform(2), IntVect{0, 0, 0}),
       elementwise_min(seam + IntVect::uniform(2), field.hi())});
  regions.push_back({{0, 0, s.nz / 2}, {s.nx - 1, s.ny - 1, s.nz / 2}});
  return regions;
}

TEST(RoiProperty, RegionEqualsSliceOfFullDecodeAllCodecsShapesThreads) {
  // Non-multiple-of-tile, tile-exact, sub-tile, 1xNxM and Nx1x1 shapes.
  const Shape3 shapes[] = {
      {17, 13, 9}, {8, 8, 8}, {5, 5, 5}, {1, 40, 33}, {40, 1, 1}};
  const ChunkShape tile{8, 8, 4};
  ThreadCountGuard guard;
  for (const char* base : kCodecs) {
    for (const Shape3& s : shapes) {
      const Array3<double> data = deterministic_field(s);
      const double abs_eb = resolve_abs_eb(ErrorBoundMode::kRelative, 1e-3,
                                           data.span());
      const ChunkedCompressor codec(make_compressor(base), tile);
      const Bytes blob = codec.compress(data.view(), abs_eb);
      const Array3<double> full = codec.decompress(blob);
      for (const Box& region : region_cases(s, tile)) {
        const Array3<double> expect = slice(full, region);
        for (const int nt : thread_counts()) {
          ThreadCountGuard::set(nt);
          const Array3<double> roi = codec.decompress_region(blob, region);
          EXPECT_TRUE(bit_equal(roi, expect))
              << base << " shape " << s.nx << "x" << s.ny << "x" << s.nz
              << " region " << region << " at " << nt << " threads";
        }
      }
    }
  }
}

TEST(RoiProperty, DecodesOnlyIntersectingTiles) {
  // 16x16x8 under 8x8x4 tiles = 2x2x2 grid of 8 tiles.
  const Array3<double> data = deterministic_field({16, 16, 8});
  const ChunkedCompressor codec(make_compressor("sz-lr"), ChunkShape{8, 8, 4});
  const Bytes blob = codec.compress(data.view(), 1e-3);

  RegionDecodeStats stats;
  // Interior of tile 0 only.
  (void)codec.decompress_region(blob, {{1, 1, 1}, {3, 3, 2}}, &stats);
  EXPECT_EQ(stats.tiles_decoded, 1);
  EXPECT_EQ(stats.tiles_total, 8);
  // Straddles the x and y seams in the low-z slab: 4 tiles.
  (void)codec.decompress_region(blob, {{6, 6, 0}, {9, 9, 3}}, &stats);
  EXPECT_EQ(stats.tiles_decoded, 4);
  // Full field: all 8.
  (void)codec.decompress_region(blob, Box::from_shape(data.shape()), &stats);
  EXPECT_EQ(stats.tiles_decoded, 8);
}

TEST(RoiProperty, RegionOutsideFieldThrows) {
  const Array3<double> data = deterministic_field({16, 16, 8});
  const ChunkedCompressor codec(make_compressor("sz-lr"), ChunkShape{8, 8, 4});
  const Bytes blob = codec.compress(data.view(), 1e-3);
  EXPECT_THROW((void)codec.decompress_region(blob, {{0, 0, 0}, {16, 15, 7}}),
               Error);
  EXPECT_THROW(
      (void)codec.decompress_region(blob, {{-1, 0, 0}, {3, 3, 3}}, nullptr),
      Error);
}

// ----------------------- per-tile stats culling ------------------------

TEST(RoiStats, TilesOverlappingCullsByValueRange) {
  // Each 8x8x4 tile of a 16x16x8 field holds its own tile index as a
  // constant, so per-tile stats are exact: min = max = index.
  const ChunkShape tile{8, 8, 4};
  Array3<double> data({16, 16, 8});
  for (std::int64_t k = 0; k < 8; ++k)
    for (std::int64_t j = 0; j < 16; ++j)
      for (std::int64_t i = 0; i < 16; ++i)
        data(i, j, k) = static_cast<double>((k / tile.nz) * 4 +
                                            (j / tile.ny) * 2 + i / tile.nx);
  const ChunkedCompressor codec(make_compressor("sz-lr"), tile);
  const Bytes blob = codec.compress(data.view(), 1e-6);

  const auto band = codec.tiles_overlapping(blob, 2.5, 4.5);
  ASSERT_EQ(band.size(), 2u);
  EXPECT_EQ(band[0].index, 3);
  EXPECT_EQ(band[1].index, 4);
  EXPECT_EQ(band[0].box, (Box{{8, 8, 0}, {15, 15, 3}}));
  EXPECT_EQ(band[1].box, (Box{{0, 0, 4}, {7, 7, 7}}));
  EXPECT_EQ(band[0].stats.min, 3.0);
  EXPECT_EQ(band[0].stats.max, 3.0);

  EXPECT_EQ(codec.tiles_overlapping(blob, 2.0, 2.0).size(), 1u);
  EXPECT_EQ(codec.tiles_overlapping(blob, 100.0, 200.0).size(), 0u);
  EXPECT_EQ(codec.tiles_overlapping(blob, -1e300, 1e300).size(), 8u);
  EXPECT_THROW((void)codec.tiles_overlapping(blob, 1.0, 0.0), Error);

  // The culled tile set is sufficient: decoding just those tiles yields
  // every cell in the value band (the isosurface access pattern).
  const Array3<double> full = codec.decompress(blob);
  for (const TileRegion& t : band) {
    const Array3<double> part = codec.decompress_region(blob, t.box);
    EXPECT_TRUE(bit_equal(part, slice(full, t.box)));
  }
}

TEST(RoiStats, NanAndInfCellsDoNotPoisonStats) {
  // The quantizer stores non-finite values losslessly, so NaN-masked
  // fields are legal codec inputs; the writer must not emit NaN stats
  // its own parser would reject (min <= max validation). A tile holding
  // any NaN records the conservative (-inf, +inf) range (a NaN-cornered
  // marching cube can still emit geometry, so no finite range may vouch
  // for it), and infinities are genuine range endpoints.
  const ChunkShape tile{8, 8, 4};
  Array3<double> data = deterministic_field({16, 16, 8});
  // Tile 0 ([0..7]x[0..7]x[0..3]): all NaN. Tile 1: one +inf cell.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (std::int64_t k = 0; k < 4; ++k)
    for (std::int64_t j = 0; j < 8; ++j)
      for (std::int64_t i = 0; i < 8; ++i) data(i, j, k) = nan;
  data(12, 3, 1) = std::numeric_limits<double>::infinity();

  const ChunkedCompressor codec(make_compressor("sz-lr"), tile);
  const Bytes blob = codec.compress(data.view(), 1e-3);  // must not throw
  const Array3<double> out = codec.decompress(blob);     // on decode either

  // Non-finite cells round-trip bit-exactly through the outlier path.
  for (std::int64_t k = 0; k < 4; ++k)
    for (std::int64_t j = 0; j < 8; ++j)
      for (std::int64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(std::isnan(out(i, j, k)));
  EXPECT_EQ(out(12, 3, 1), std::numeric_limits<double>::infinity());

  // Region decode through the NaN tile and across its seam still equals
  // the full-decode slice bit-for-bit (NaN-safe comparison via memcmp).
  const Box seam{{5, 5, 1}, {10, 10, 5}};
  EXPECT_TRUE(bit_equal(codec.decompress_region(blob, seam),
                        slice(out, seam)));

  // All-NaN tile 0: unbounded range, so every band query returns it.
  const auto hits = codec.tiles_overlapping(blob, -2.0, -1.5);
  bool tile0_hit = false;
  for (const TileRegion& t : hits)
    if (t.index == 0) {
      tile0_hit = true;
      EXPECT_EQ(t.stats.min, -std::numeric_limits<double>::infinity());
      EXPECT_EQ(t.stats.max, std::numeric_limits<double>::infinity());
    }
  EXPECT_TRUE(tile0_hit);
  // Tile 1's +inf is a real endpoint: an arbitrarily high band hits it.
  bool tile1_hit = false;
  for (const TileRegion& t : codec.tiles_overlapping(blob, 1e300, 1e308))
    tile1_hit |= t.index == 1;
  EXPECT_TRUE(tile1_hit);
}

TEST(RoiStats, V1ContainersReturnEveryTileForAnyBand) {
  // Property (v1 half): with no stats table the cull must degrade to
  // "return everything" for every band, however improbable — dropping a
  // tile it knows nothing about would be wrong, not conservative.
  const Bytes blob = read_file(data_path("golden_v1_chunked_szlr.bin"));
  const ChunkedCompressor codec = golden_codec();
  const double bands[][2] = {{0.0, 0.0},
                             {-1e308, -1e307},
                             {1e307, 1e308},
                             {-1e-300, 1e-300}};
  for (const auto& b : bands) {
    const auto tiles = codec.tiles_overlapping(blob, b[0], b[1]);
    EXPECT_EQ(tiles.size(), 12u) << "band [" << b[0] << ", " << b[1] << "]";
  }
}

TEST(RoiStats, EbWidenedCullNeverDropsAMatchingDecodedValue) {
  // Property (v2 half), fuzzed over codecs x error bounds: for any band
  // [lo, hi], the tiles NOT returned by tiles_overlapping(lo - eb,
  // hi + eb) must contain no decoded value inside [lo, hi] — the
  // contract the streamed isosurface cull rests on. eb spans loose to
  // near-lossless so the widening matters (loose bounds) and degenerates
  // harmlessly (tight bounds).
  const ChunkShape tile{8, 8, 4};
  const Shape3 shapes[] = {{17, 13, 9}, {16, 16, 8}};
  for (const char* base : kCodecs) {
    for (const double eb_rel : {1e-1, 1e-3, 1e-6}) {
      for (const Shape3& s : shapes) {
        const Array3<double> data = deterministic_field(s);
        const double abs_eb =
            resolve_abs_eb(ErrorBoundMode::kRelative, eb_rel, data.span());
        const ChunkedCompressor codec(make_compressor(base), tile);
        const Bytes blob = codec.compress(data.view(), abs_eb);
        const auto all = codec.tiles_overlapping(
            blob, -std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity());
        // Bands around several isovalues spanning the field's range.
        for (const double iso : {-7.9, -2.5, 0.0, 3.25, 7.5}) {
          for (const double half_width : {0.0, 0.5}) {
            const double lo = iso - half_width, hi = iso + half_width;
            const auto hits = codec.tiles_overlapping(blob, lo - abs_eb,
                                                      hi + abs_eb);
            std::vector<bool> kept(all.size(), false);
            for (const TileRegion& t : hits)
              kept[static_cast<std::size_t>(t.index)] = true;
            for (const TileRegion& t : all) {
              if (kept[static_cast<std::size_t>(t.index)]) continue;
              // Dropped tile: no decoded cell may land in [lo, hi].
              const Array3<double> part =
                  codec.decompress_region(blob, t.box);
              for (std::int64_t f = 0; f < part.size(); ++f)
                ASSERT_FALSE(part[f] >= lo && part[f] <= hi)
                    << base << " eb " << eb_rel << " iso " << iso
                    << " tile " << t.index << " holds " << part[f];
            }
          }
        }
      }
    }
  }
}

// ------------------ adversarial container headers ----------------------

// v4 container offsets for a "sz-lr" container (name length 5):
// magic@0(4) version@4(2) namelen@6(2) name@8(5) shape@13(3x i64)
// tile@37(3x i64) ntiles@61(u64) sizes@69(8*n) stats@69+8n(16*n)
// faces@69+24n(96*n) max_err@69+120n(8*n) hist@69+128n(64*n) payload.
constexpr std::size_t kSizesOff = 69;

/// 16x16x8 sz-lr container, 8 tiles: sizes@69..133, stats@133..261,
/// faces@261..1029, max_err@1029..1093, hist@1093..1605.
Bytes adversarial_container() {
  const Array3<double> data = deterministic_field({16, 16, 8});
  const ChunkedCompressor codec(make_compressor("sz-lr"), ChunkShape{8, 8, 4});
  return codec.compress(data.view(), 1e-3);
}

ChunkedCompressor adversarial_codec() {
  return ChunkedCompressor(make_compressor("sz-lr"), ChunkShape{8, 8, 4});
}

constexpr std::size_t kNtiles = 8;
constexpr std::size_t kStatsOff = kSizesOff + 8 * kNtiles;
constexpr std::size_t kFaceOff = kStatsOff + 16 * kNtiles;
constexpr std::size_t kErrOff = kFaceOff + 96 * kNtiles;
constexpr std::size_t kHistOff = kErrOff + 8 * kNtiles;

TEST(RoiAdversarial, TruncatedStatsTableThrows) {
  const ChunkedCompressor codec = adversarial_codec();
  // Cut in the middle of the stats table (drops the payload too) and
  // right before its last byte: both must throw, never read OOB.
  for (const std::size_t keep :
       {kStatsOff + 5, kStatsOff + 16 * kNtiles - 1}) {
    Bytes blob = adversarial_container();
    ASSERT_GT(blob.size(), keep);
    blob.resize(keep);
    EXPECT_THROW((void)codec.decompress(blob), Error);
    EXPECT_THROW((void)codec.decompress_region(blob, {{0, 0, 0}, {1, 1, 1}}),
                 Error);
  }
}

TEST(RoiAdversarial, StatsTableLengthDisagreeingWithNtilesThrows) {
  // Remove exactly one stats entry: the header still claims 8 tiles, so
  // parsing consumes 16 payload bytes as stats and the payload comes up
  // short — the container must be rejected, not mis-sliced.
  const ChunkedCompressor codec = adversarial_codec();
  Bytes blob = adversarial_container();
  blob.erase(blob.begin() + static_cast<std::ptrdiff_t>(kStatsOff),
             blob.begin() + static_cast<std::ptrdiff_t>(kStatsOff + 16));
  EXPECT_THROW((void)codec.decompress(blob), Error);
}

TEST(RoiAdversarial, MinGreaterThanMaxThrows) {
  const ChunkedCompressor codec = adversarial_codec();
  Bytes blob = adversarial_container();
  double mn, mx;
  std::memcpy(&mn, blob.data() + kStatsOff, sizeof(mn));
  std::memcpy(&mx, blob.data() + kStatsOff + 8, sizeof(mx));
  ASSERT_LT(mn, mx);
  std::memcpy(blob.data() + kStatsOff, &mx, sizeof(mx));
  std::memcpy(blob.data() + kStatsOff + 8, &mn, sizeof(mn));
  EXPECT_THROW((void)codec.decompress(blob), Error);
  EXPECT_THROW((void)codec.tiles_overlapping(blob, 0.0, 1.0), Error);
}

TEST(RoiAdversarial, NanStatsThrow) {
  // A NaN range poisons every comparison the culling predicate makes; it
  // must be rejected like min > max.
  const ChunkedCompressor codec = adversarial_codec();
  Bytes blob = adversarial_container();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(blob.data() + kStatsOff, &nan, sizeof(nan));
  EXPECT_THROW((void)codec.decompress(blob), Error);
}

TEST(RoiAdversarial, TruncatedFaceTableThrows) {
  const ChunkedCompressor codec = adversarial_codec();
  // Cut inside the face table and right before its last byte: both must
  // throw, never read OOB or mis-slice the payload.
  for (const std::size_t keep :
       {kFaceOff + 17, kFaceOff + 96 * kNtiles - 1}) {
    Bytes blob = adversarial_container();
    ASSERT_GT(blob.size(), keep);
    blob.resize(keep);
    EXPECT_THROW((void)codec.decompress(blob), Error);
    EXPECT_THROW((void)codec.tile_face_stats(blob), Error);
  }
}

TEST(RoiAdversarial, FaceStatsMinGreaterThanMaxOrNanThrow) {
  const ChunkedCompressor codec = adversarial_codec();
  {
    Bytes blob = adversarial_container();
    double mn, mx;
    std::memcpy(&mn, blob.data() + kFaceOff, sizeof(mn));
    std::memcpy(&mx, blob.data() + kFaceOff + 8, sizeof(mx));
    ASSERT_LE(mn, mx);
    std::memcpy(blob.data() + kFaceOff, &mx, sizeof(mx));
    std::memcpy(blob.data() + kFaceOff + 8, &mn, sizeof(mn));
    if (mn != mx) {
      EXPECT_THROW((void)codec.decompress(blob), Error);
    }
  }
  {
    Bytes blob = adversarial_container();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    // Last face entry of the last tile: the validation must reach it.
    std::memcpy(blob.data() + kFaceOff + 96 * kNtiles - 16, &nan,
                sizeof(nan));
    EXPECT_THROW((void)codec.decompress(blob), Error);
    EXPECT_THROW((void)codec.tile_face_stats(blob), Error);
  }
}

TEST(RoiAdversarial, V3MagicWithV2LengthThrows) {
  // A v2-sized blob (no face table) relabeled as v3: the face parse
  // would eat payload bytes, so the tile slicing must come up short.
  Bytes blob = read_file(data_path("golden_v2_chunked_szlr.bin"));
  ASSERT_EQ(blob[4], 2);
  blob[4] = 3;
  EXPECT_THROW((void)golden_codec().decompress(blob), Error);
}

TEST(RoiAdversarial, V2MagicWithV4LengthThrows) {
  // The converse: a v4 blob relabeled v2 leaves the face/err/histogram
  // tables inside the payload area, so tile slots point at metadata
  // bytes — the inner codec must reject them (and the trailing-bytes
  // check backstops it).
  Bytes blob = adversarial_container();
  ASSERT_EQ(blob[4], 4);
  blob[4] = 2;
  EXPECT_THROW((void)adversarial_codec().decompress(blob), Error);
}

TEST(RoiAdversarial, V3MagicWithV4LengthThrows) {
  // A v4 blob relabeled v3: the max-err and histogram tables become
  // payload bytes and the tile slicing must come up short.
  Bytes blob = adversarial_container();
  ASSERT_EQ(blob[4], 4);
  blob[4] = 3;
  EXPECT_THROW((void)adversarial_codec().decompress(blob), Error);
}

TEST(RoiAdversarial, V4MagicWithV3LengthThrows) {
  // A v3-sized blob (no err/histogram tables) relabeled as v4: parsing
  // would eat 72 payload bytes per tile as metadata, so the container
  // must be rejected, not mis-sliced.
  Bytes blob = read_file(data_path("golden_v3_chunked_szlr.bin"));
  ASSERT_EQ(blob[4], 3);
  blob[4] = 4;
  EXPECT_THROW((void)golden_codec().decompress(blob), Error);
}

TEST(RoiAdversarial, TruncatedErrTableThrows) {
  const ChunkedCompressor codec = adversarial_codec();
  for (const std::size_t keep : {kErrOff + 3, kErrOff + 8 * kNtiles - 1}) {
    Bytes blob = adversarial_container();
    ASSERT_GT(blob.size(), keep);
    blob.resize(keep);
    EXPECT_THROW((void)codec.decompress(blob), Error);
    EXPECT_THROW((void)codec.tiles_overlapping(blob, 0.0, 1.0), Error);
  }
}

TEST(RoiAdversarial, TruncatedHistTableThrows) {
  const ChunkedCompressor codec = adversarial_codec();
  for (const std::size_t keep :
       {kHistOff + 7, kHistOff + 64 * kNtiles - 1}) {
    Bytes blob = adversarial_container();
    ASSERT_GT(blob.size(), keep);
    blob.resize(keep);
    EXPECT_THROW((void)codec.decompress(blob), Error);
    EXPECT_THROW((void)codec.tile_face_stats(blob), Error);
  }
}

TEST(RoiAdversarial, NegativeOrNanMaxErrThrows) {
  // A max-err entry below zero (or NaN) can only be corruption: the
  // achieved error of a real encode is a finite non-negative double.
  const ChunkedCompressor codec = adversarial_codec();
  const double bad[] = {-1.0, std::numeric_limits<double>::quiet_NaN()};
  for (const double v : bad) {
    Bytes blob = adversarial_container();
    // Last entry of the table: the validation must reach it.
    std::memcpy(blob.data() + kErrOff + 8 * (kNtiles - 1), &v, sizeof(v));
    EXPECT_THROW((void)codec.decompress(blob), Error);
    EXPECT_THROW((void)codec.tiles_overlapping(blob, 0.0, 1.0), Error);
  }
}

TEST(RoiAdversarial, HistogramMassMismatchThrows) {
  // Each tile's histogram must sum to its cell count (or be all-zero,
  // the "no sketch" marker a NaN tile writes). Any other mass is
  // corruption and would silently skew expected-in-band ranking.
  const ChunkedCompressor codec = adversarial_codec();
  Bytes blob = adversarial_container();
  std::uint32_t b0 = 0;
  std::memcpy(&b0, blob.data() + kHistOff, sizeof(b0));
  const std::uint32_t bumped = b0 + 1;
  std::memcpy(blob.data() + kHistOff, &bumped, sizeof(bumped));
  EXPECT_THROW((void)codec.decompress(blob), Error);
  EXPECT_THROW((void)codec.tiles_overlapping(blob, 0.0, 1.0), Error);
}

TEST(RoiAdversarial, V2MagicWithV1LengthThrows) {
  // A v1-sized blob (no stats table) relabeled as v2: the stats parse
  // would eat payload bytes, so the tile slicing must come up short.
  Bytes blob = read_file(data_path("golden_v1_chunked_szlr.bin"));
  ASSERT_EQ(blob[4], 1);
  blob[4] = 2;
  EXPECT_THROW((void)golden_codec().decompress(blob), Error);
}

TEST(RoiAdversarial, V1MagicWithV4LengthThrows) {
  // A current (v4) blob relabeled v1 leaves every metadata table inside
  // the payload area, so tile slots point at stats doubles — the inner
  // codec must reject them (trailing-bytes check backstops it).
  const ChunkedCompressor codec = adversarial_codec();
  Bytes blob = adversarial_container();
  blob[4] = 1;
  EXPECT_THROW((void)codec.decompress(blob), Error);
}

// ----------------------- factory tile suffix ---------------------------

TEST(RoiFactory, TileSuffixRoundTrips) {
  const auto codec = make_compressor("chunked-sz-lr@8x8x4");
  EXPECT_EQ(codec->name(), "chunked-sz-lr@8x8x4");
  // name() -> make_compressor -> name() is a fixed point.
  EXPECT_EQ(make_compressor(codec->name())->name(), codec->name());
  // Default tile shape keeps the suffix-free name.
  EXPECT_EQ(make_compressor("chunked-sz-lr")->name(), "chunked-sz-lr");

  // The suffix actually selects the tile grid: 16x16x8 under 8x8x4 = 8.
  const Array3<double> data = deterministic_field({16, 16, 8});
  const Bytes blob = data.size() > 0 ? codec->compress(data.view(), 1e-3)
                                     : Bytes{};
  const auto* chunked = dynamic_cast<const ChunkedCompressor*>(codec.get());
  ASSERT_NE(chunked, nullptr);
  RegionDecodeStats stats;
  (void)chunked->decompress_region(blob, {{0, 0, 0}, {0, 0, 0}}, &stats);
  EXPECT_EQ(stats.tiles_total, 8);

  // A suffixed codec decodes blobs a default-tile codec wrote (tile shape
  // comes from the header, not the codec): container compatibility.
  const auto other = make_compressor("chunked-sz-lr@4x4x4");
  EXPECT_TRUE(bit_equal(other->decompress(blob), codec->decompress(blob)));
}

TEST(RoiFactory, LzssLevelSuffixRoundTrips) {
  // "+fast"/"+optimal" select the LZSS parse level and survive the
  // name() -> make_compressor -> name() round trip, composed with the
  // chunked prefix and tile suffix in the documented order.
  EXPECT_EQ(make_compressor("sz-lr+fast")->name(), "sz-lr+fast");
  EXPECT_EQ(make_compressor("sz-lr+optimal")->name(), "sz-lr+optimal");
  // "+lazy" is the default and normalizes to the suffix-free name.
  EXPECT_EQ(make_compressor("sz-lr+lazy")->name(), "sz-lr");
  EXPECT_EQ(make_compressor("sz-lr")->name(), "sz-lr");
  for (const char* name :
       {"chunked-sz-lr+optimal@8x8x4", "chunked-sz-interp+fast",
        "zfp-like+optimal"}) {
    const auto codec = make_compressor(name);
    EXPECT_EQ(codec->name(), name);
    EXPECT_EQ(make_compressor(codec->name())->name(), codec->name());
  }
  // A bogus level suffix is an unknown codec, not silently the default.
  EXPECT_THROW((void)make_compressor("sz-lr+best"), Error);

  // Level-agnostic name compatibility: levels are interchangeable for
  // decode, different codecs never are.
  EXPECT_TRUE(codec_names_compatible("sz-lr+fast", "sz-lr+optimal"));
  EXPECT_TRUE(codec_names_compatible("sz-lr", "sz-lr+lazy"));
  EXPECT_FALSE(codec_names_compatible("sz-lr", "sz-interp+fast"));
}

TEST(RoiFactory, CrossLevelDecodeIsBitExact) {
  // The parse level changes the bytes a codec writes, never what it can
  // read: every level's container decodes with every other level's codec
  // to identical doubles.
  const Array3<double> data = deterministic_field({16, 16, 8});
  const char* levels[] = {"chunked-sz-lr@8x8x4", "chunked-sz-lr+fast@8x8x4",
                          "chunked-sz-lr+optimal@8x8x4"};
  std::vector<Bytes> blobs;
  for (const char* n : levels)
    blobs.push_back(make_compressor(n)->compress(data.view(), 1e-3));
  const Array3<double> expect = make_compressor(levels[0])->decompress(blobs[0]);
  for (const char* n : levels)
    for (const Bytes& b : blobs)
      EXPECT_TRUE(bit_equal(make_compressor(n)->decompress(b), expect))
          << "decoding with " << n;
}

TEST(RoiFactory, MalformedTileSuffixThrows) {
  for (const char* name :
       {"chunked-sz-lr@", "chunked-sz-lr@8x8", "chunked-sz-lr@0x8x8",
        "chunked-sz-lr@8x8x-4", "chunked-sz-lr@ax8x8", "chunked-sz-lr@8x8x8x8",
        "chunked-@8x8x8"}) {
    EXPECT_THROW((void)make_compressor(name), Error) << name;
  }
}

TEST(RoiFactory, UnknownCodecErrorListsEveryRegisteredName) {
  // A typo'd codec name must be diagnosable from the exception alone:
  // every registered base codec plus the chunked-<codec>@TXxTYxTZ wrapper
  // form appear in the message, and the registry helper agrees with what
  // the factory actually accepts.
  const auto& names = registered_compressor_names();
  ASSERT_GE(names.size(), 3u);
  for (const std::string& n : names) {
    EXPECT_NO_THROW((void)make_compressor(n)) << n;
    EXPECT_NO_THROW((void)make_compressor("chunked-" + n)) << n;
  }
  for (const char* bogus : {"sz-lr2", "lzss", "", "chunked-nope"}) {
    try {
      (void)make_compressor(bogus);
      FAIL() << "make_compressor(\"" << bogus << "\") did not throw";
    } catch (const Error& e) {
      const std::string msg = e.what();
      for (const std::string& n : names)
        EXPECT_NE(msg.find(n), std::string::npos)
            << "'" << bogus << "' error does not name codec " << n
            << ": " << msg;
      EXPECT_NE(msg.find("chunked-<codec>@TXxTYxTZ"), std::string::npos)
          << "'" << bogus << "' error does not show the chunked form: "
          << msg;
    }
  }
}

// ------------------- AMR + sampling consumers --------------------------

sim::SyntheticDataset make_test_dataset() {
  Array3<double> field = sim::nyx_like_density({32, 32, 32});
  sim::TaggingSpec spec;
  spec.fine_fraction = 0.3;
  spec.block = 4;
  spec.max_grid_size = 16;
  return sim::build_two_level_hierarchy(std::move(field), spec);
}

/// Chunk every patch (16^3 = 4096 > 1000) with small tiles so partial
/// decode is observable on a test-sized hierarchy.
AmrChunkPolicy test_policy() {
  AmrChunkPolicy policy;
  policy.oversized_patch_cells = 1000;
  policy.tile = ChunkShape{8, 8, 8};
  return policy;
}

TEST(RoiAmr, LevelRegionMatchesFullDecodeChunkedAndPlain) {
  const sim::SyntheticDataset ds = make_test_dataset();
  const auto codec = make_compressor("sz-lr");
  for (const bool chunk_patches : {false, true}) {
    const AmrCompressed compressed = compress_hierarchy(
        ds.hierarchy, *codec, 1e-3, RedundantHandling::kKeep,
        chunk_patches ? test_policy() : AmrChunkPolicy{});
    const amr::AmrHierarchy full = decompress_hierarchy(compressed, *codec);
    for (int l = 0; l < full.num_levels(); ++l) {
      const Box dom = compressed.domains[static_cast<std::size_t>(l)];
      const IntVect mid = floor_div(dom.lo() + dom.hi(), IntVect::uniform(2));
      const Box region{elementwise_max(dom.lo(), mid - IntVect::uniform(3)),
                       elementwise_min(dom.hi(), mid + IntVect::uniform(3))};
      RegionDecodeStats stats;
      const auto rps =
          decompress_level_region(compressed, *codec, l, region, &stats);
      ASSERT_FALSE(rps.empty());
      for (const RegionPatch& rp : rps) {
        const amr::FArrayBox& fab =
            full.level(l).fabs[static_cast<std::size_t>(rp.patch)];
        const Box local{rp.box.lo() - fab.box().lo(),
                        rp.box.hi() - fab.box().lo()};
        Array3<double> fab_data(fab.box().shape());
        std::copy(fab.values().begin(), fab.values().end(),
                  fab_data.span().begin());
        EXPECT_TRUE(bit_equal(rp.data, slice(fab_data, local)))
            << "level " << l << " patch " << rp.patch
            << (chunk_patches ? " (chunked)" : " (plain)");
      }
    }
    if (chunk_patches) {
      // Level 0 is a single 16^3 patch carrying 8 tiles under the 8^3
      // policy; a corner region must inflate exactly one of them.
      const Box dom0 = compressed.domains[0];
      RegionDecodeStats stats;
      (void)decompress_level_region(
          compressed, *codec, 0,
          {dom0.lo(), dom0.lo() + IntVect::uniform(2)}, &stats);
      EXPECT_EQ(stats.tiles_total, 8);
      EXPECT_EQ(stats.tiles_decoded, 1)
          << "corner region decode inflated more than its tile";
    }
  }
}

TEST(RoiAmr, LevelRegionValidation) {
  const sim::SyntheticDataset ds = make_test_dataset();
  const auto codec = make_compressor("sz-lr");
  const AmrCompressed compressed = compress_hierarchy(
      ds.hierarchy, *codec, 1e-3, RedundantHandling::kKeep);
  EXPECT_THROW((void)decompress_level_region(compressed, *codec, -1,
                                             {{0, 0, 0}, {1, 1, 1}}),
               Error);
  EXPECT_THROW((void)decompress_level_region(compressed, *codec, 99,
                                             {{0, 0, 0}, {1, 1, 1}}),
               Error);
  const auto other = make_compressor("sz-interp");
  EXPECT_THROW((void)decompress_level_region(compressed, *other, 0,
                                             {{0, 0, 0}, {1, 1, 1}}),
               Error);
  // A disjoint region is not an error: it decodes nothing.
  const auto rps = decompress_level_region(
      compressed, *codec, 0, {{-10, -10, -10}, {-5, -5, -5}});
  EXPECT_TRUE(rps.empty());
}

TEST(RoiSampling, PointMatchesCompositeUniform) {
  const sim::SyntheticDataset ds = make_test_dataset();
  const auto codec = make_compressor("sz-lr");
  for (const auto handling :
       {RedundantHandling::kKeep, RedundantHandling::kMeanFill}) {
    const AmrCompressed compressed = compress_hierarchy(
        ds.hierarchy, *codec, 1e-3, handling, test_policy());
    const Array3<double> composite =
        decompress_hierarchy(compressed, *codec).composite_uniform();
    const Box fd = compressed.domains.back();
    const IntVect probes[] = {fd.lo(), fd.hi(),
                              floor_div(fd.lo() + fd.hi(),
                                        IntVect::uniform(2)),
                              fd.lo() + IntVect{3, 29, 17}};
    for (const IntVect p : probes) {
      RegionDecodeStats stats;
      const double v =
          amr::sample_point_compressed(compressed, *codec, p, &stats);
      const IntVect o = p - fd.lo();
      EXPECT_EQ(v, composite(o.x, o.y, o.z)) << "point " << p;
      EXPECT_GE(stats.tiles_decoded, 1);
    }
    EXPECT_THROW((void)amr::sample_point_compressed(
                     compressed, *codec, fd.hi() + IntVect::uniform(1)),
                 Error);
  }
}

TEST(RoiSampling, PlaneMatchesCompositeSlice) {
  const sim::SyntheticDataset ds = make_test_dataset();
  const auto codec = make_compressor("sz-lr");
  const AmrCompressed compressed = compress_hierarchy(
      ds.hierarchy, *codec, 1e-3, RedundantHandling::kMeanFill,
      test_policy());
  const Array3<double> composite =
      decompress_hierarchy(compressed, *codec).composite_uniform();
  const Box fd = compressed.domains.back();
  const Shape3 fs = fd.shape();

  for (int axis = 0; axis < 3; ++axis) {
    const std::int64_t extent = axis == 0 ? fs.nx : axis == 1 ? fs.ny : fs.nz;
    for (const std::int64_t rel : {std::int64_t{0}, extent / 2, extent - 1}) {
      const std::int64_t index = fd.lo()[axis] + rel;
      RegionDecodeStats stats;
      const Array3<double> plane = amr::sample_plane_compressed(
          compressed, *codec, axis, index, &stats);
      // Build the expected slice from the composite.
      Shape3 ps = fs;
      (axis == 0 ? ps.nx : axis == 1 ? ps.ny : ps.nz) = 1;
      ASSERT_EQ(plane.shape(), ps);
      bool equal = true;
      for (std::int64_t k = 0; k < ps.nz && equal; ++k)
        for (std::int64_t j = 0; j < ps.ny && equal; ++j)
          for (std::int64_t i = 0; i < ps.nx && equal; ++i) {
            IntVect o{i, j, k};
            o[axis] = rel;
            equal = plane(i, j, k) == composite(o.x, o.y, o.z);
          }
      EXPECT_TRUE(equal) << "axis " << axis << " index " << index;
      // Partial decode: a plane cannot need every tile of a 3-D field.
      EXPECT_LT(stats.tiles_decoded, stats.tiles_total)
          << "axis " << axis << " index " << index;
    }
  }

  EXPECT_THROW(
      (void)amr::sample_plane_compressed(compressed, *codec, 3, 0), Error);
  EXPECT_THROW((void)amr::sample_plane_compressed(compressed, *codec, 0,
                                                  fd.hi().x + 1),
               Error);
}

}  // namespace
}  // namespace amrvis::compress
