// Golden-blob and boundary-shape tests for the optimized szlr / interp /
// huffman hot paths (PR: fused single-pass kernels + flat-table Huffman).
//
// The optimized encoders are required to be BIT-IDENTICAL to the seed
// encoders. The seed algorithms (three-pass szlr with per-point boundary
// lambdas, std::map Huffman with a per-bit writer, branchy quantizer
// rounding) are embedded here verbatim as reference implementations in
// the `seedref` namespace, and every test compares whole blobs byte for
// byte on fields that exercise both the interior fast paths and the
// boundary fallbacks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

#include "compress/huffman.hpp"
#include "compress/interp.hpp"
#include "compress/lzss.hpp"
#include "compress/quantizer.hpp"
#include "compress/szlr.hpp"
#include "util/rng.hpp"

namespace amrvis::compress {
namespace seedref {

// ---------------------------------------------------------------------
// Seed bit writer: strictly per-bit, MSB-first.
// ---------------------------------------------------------------------
struct BitWriter {
  Bytes bytes;
  int fill = 0;
  void put_bit(std::uint64_t bit) {
    if (fill == 0) bytes.push_back(0);
    bytes.back() |= static_cast<std::uint8_t>((bit & 1u) << (7 - fill));
    fill = (fill + 1) & 7;
  }
  void put_bits(std::uint64_t value, int nbits) {
    for (int b = nbits - 1; b >= 0; --b) put_bit((value >> b) & 1u);
  }
};

// ---------------------------------------------------------------------
// Seed Huffman encoder: std::map histogram and encode table.
// ---------------------------------------------------------------------
constexpr int kMaxCodeLen = 32;

struct SymbolLength {
  std::uint32_t symbol;
  std::uint8_t length;
};

inline std::vector<SymbolLength> build_code_lengths(
    const std::map<std::uint32_t, std::uint64_t>& freq) {
  struct Node {
    std::uint64_t weight;
    int left = -1, right = -1;
    std::uint32_t symbol = 0;
  };
  std::vector<Node> nodes;
  using HeapItem = std::pair<std::uint64_t, int>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (const auto& [sym, count] : freq) {
    nodes.push_back({count, -1, -1, sym});
    heap.emplace(count, static_cast<int>(nodes.size() - 1));
  }
  if (nodes.size() == 1) return {{nodes[0].symbol, 1}};
  while (heap.size() > 1) {
    auto [wa, a] = heap.top();
    heap.pop();
    auto [wb, b] = heap.top();
    heap.pop();
    nodes.push_back({wa + wb, a, b, 0});
    heap.emplace(wa + wb, static_cast<int>(nodes.size() - 1));
  }
  std::vector<SymbolLength> out;
  std::vector<std::pair<int, int>> stack{
      {static_cast<int>(nodes.size()) - 1, 0}};
  while (!stack.empty()) {
    auto [idx, depth] = stack.back();
    stack.pop_back();
    const Node& n = nodes[static_cast<std::size_t>(idx)];
    if (n.left < 0) {
      out.push_back(
          {n.symbol, static_cast<std::uint8_t>(std::min(depth, kMaxCodeLen))});
    } else {
      stack.emplace_back(n.left, depth + 1);
      stack.emplace_back(n.right, depth + 1);
    }
  }
  auto kraft = [&out] {
    long double k = 0;
    for (const auto& sl : out) k += std::pow(2.0L, -int(sl.length));
    return k;
  };
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.length != b.length ? a.length < b.length : a.symbol < b.symbol;
  });
  while (kraft() > 1.0L + 1e-18L) {
    bool changed = false;
    for (auto it = out.rbegin(); it != out.rend(); ++it) {
      if (it->length < kMaxCodeLen) {
        ++it->length;
        changed = true;
        break;
      }
    }
    if (!changed) throw Error("seedref huffman: Kraft");
  }
  return out;
}

struct CanonicalCode {
  std::vector<SymbolLength> lengths;
  std::vector<std::uint64_t> codes;
};

inline CanonicalCode canonicalize(std::vector<SymbolLength> lengths) {
  std::sort(lengths.begin(), lengths.end(),
            [](const SymbolLength& a, const SymbolLength& b) {
              return a.length != b.length ? a.length < b.length
                                          : a.symbol < b.symbol;
            });
  CanonicalCode cc;
  cc.lengths = std::move(lengths);
  cc.codes.resize(cc.lengths.size());
  std::uint64_t code = 0;
  int prev_len = 0;
  for (std::size_t i = 0; i < cc.lengths.size(); ++i) {
    const int len = cc.lengths[i].length;
    code <<= (len - prev_len);
    cc.codes[i] = code;
    ++code;
    prev_len = len;
  }
  return cc;
}

inline Bytes huffman_encode(std::span<const std::uint32_t> symbols) {
  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint64_t>(symbols.size());
  if (symbols.empty()) return blob;

  std::map<std::uint32_t, std::uint64_t> freq;
  for (std::uint32_t s : symbols) ++freq[s];

  const CanonicalCode cc = canonicalize(build_code_lengths(freq));

  std::vector<SymbolLength> by_symbol = cc.lengths;
  std::sort(by_symbol.begin(), by_symbol.end(),
            [](const SymbolLength& a, const SymbolLength& b) {
              return a.symbol < b.symbol;
            });
  w.put<std::uint32_t>(static_cast<std::uint32_t>(by_symbol.size()));
  std::uint32_t prev = 0;
  for (const auto& sl : by_symbol) {
    std::uint32_t delta = sl.symbol - prev;
    prev = sl.symbol;
    while (delta >= 0x80) {
      w.put<std::uint8_t>(static_cast<std::uint8_t>(delta) | 0x80);
      delta >>= 7;
    }
    w.put<std::uint8_t>(static_cast<std::uint8_t>(delta));
    w.put<std::uint8_t>(sl.length);
  }

  std::map<std::uint32_t, std::pair<std::uint64_t, int>> enc;
  for (std::size_t i = 0; i < cc.lengths.size(); ++i)
    enc[cc.lengths[i].symbol] = {cc.codes[i], cc.lengths[i].length};

  BitWriter bits;
  for (std::uint32_t s : symbols) {
    const auto& [code, len] = enc.at(s);
    bits.put_bits(code, len);
  }
  w.put_blob(bits.bytes);
  return blob;
}

// ---------------------------------------------------------------------
// Seed linear quantizer: branchy round-half-away-from-zero.
// ---------------------------------------------------------------------
struct Quantizer {
  double eb;
  std::int32_t radius = 32768;

  double quantize_outlier(double value, std::vector<double>& outliers) const {
    const double step = 2.0 * eb;
    const double snapped = step * std::round(value / step);
    const double stored =
        (std::isfinite(snapped) && std::abs(snapped - value) <= eb) ? snapped
                                                                    : value;
    outliers.push_back(stored);
    return stored;
  }

  std::uint32_t encode(double value, double predicted, double& reconstructed,
                       std::vector<double>& outliers) const {
    const double diff = value - predicted;
    const double scaled = diff / (2.0 * eb);
    if (scaled > static_cast<double>(radius - 1) ||
        scaled < -static_cast<double>(radius - 1)) {
      reconstructed = quantize_outlier(value, outliers);
      return 0;
    }
    const auto q =
        static_cast<std::int32_t>(scaled < 0 ? scaled - 0.5 : scaled + 0.5);
    reconstructed = predicted + 2.0 * eb * static_cast<double>(q);
    if (!(std::abs(reconstructed - value) <= eb)) {
      reconstructed = quantize_outlier(value, outliers);
      return 0;
    }
    return static_cast<std::uint32_t>(q + radius);
  }
};

// ---------------------------------------------------------------------
// Seed SZ-L/R encoder: three passes per block, per-point boundary lambda.
// ---------------------------------------------------------------------
inline void put_svarint(Bytes& out, std::int64_t v) {
  std::uint64_t u = (static_cast<std::uint64_t>(v) << 1) ^
                    static_cast<std::uint64_t>(v >> 63);
  while (u >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(u) | 0x80);
    u >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(u));
}

inline double lorenzo_predict(const View3<const double>& recon,
                              std::int64_t i, std::int64_t j,
                              std::int64_t k) {
  auto f = [&](std::int64_t a, std::int64_t b, std::int64_t c) -> double {
    if (a < 0 || b < 0 || c < 0) return 0.0;
    return recon(a, b, c);
  };
  return f(i - 1, j, k) + f(i, j - 1, k) + f(i, j, k - 1) -
         f(i - 1, j - 1, k) - f(i - 1, j, k - 1) - f(i, j - 1, k - 1) +
         f(i - 1, j - 1, k - 1);
}

struct RegressionFit {
  double b0 = 0, bx = 0, by = 0, bz = 0;
};

inline RegressionFit fit_block(View3<const double> data, std::int64_t i0,
                               std::int64_t j0, std::int64_t k0,
                               std::int64_t bx, std::int64_t by,
                               std::int64_t bz) {
  const double mx = (static_cast<double>(bx) - 1.0) / 2.0;
  const double my = (static_cast<double>(by) - 1.0) / 2.0;
  const double mz = (static_cast<double>(bz) - 1.0) / 2.0;
  double sum = 0, sx = 0, sy = 0, sz = 0, vxx = 0, vyy = 0, vzz = 0;
  for (std::int64_t dz = 0; dz < bz; ++dz)
    for (std::int64_t dy = 0; dy < by; ++dy)
      for (std::int64_t dx = 0; dx < bx; ++dx) {
        const double v = data(i0 + dx, j0 + dy, k0 + dz);
        const double cx = static_cast<double>(dx) - mx;
        const double cy = static_cast<double>(dy) - my;
        const double cz = static_cast<double>(dz) - mz;
        sum += v;
        sx += cx * v;
        sy += cy * v;
        sz += cz * v;
        vxx += cx * cx;
        vyy += cy * cy;
        vzz += cz * cz;
      }
  const double n = static_cast<double>(bx * by * bz);
  RegressionFit fit;
  fit.bx = vxx > 0 ? sx / vxx : 0.0;
  fit.by = vyy > 0 ? sy / vyy : 0.0;
  fit.bz = vzz > 0 ? sz / vzz : 0.0;
  fit.b0 = sum / n - fit.bx * mx - fit.by * my - fit.bz * mz;
  return fit;
}

struct CoeffCodec {
  double eb0, ebs;
  std::int64_t prev[4] = {0, 0, 0, 0};

  CoeffCodec(double abs_eb, int block_size)
      : eb0(abs_eb * 0.5),
        ebs(abs_eb / (2.0 * static_cast<double>(block_size))) {}

  RegressionFit encode(const RegressionFit& fit, Bytes& stream) {
    const double ebs_[4] = {eb0, ebs, ebs, ebs};
    const double vals[4] = {fit.b0, fit.bx, fit.by, fit.bz};
    double recon[4];
    for (int c = 0; c < 4; ++c) {
      const auto code = static_cast<std::int64_t>(
          std::llround(vals[c] / (2.0 * ebs_[c])));
      put_svarint(stream, code - prev[c]);
      prev[c] = code;
      recon[c] = 2.0 * ebs_[c] * static_cast<double>(code);
    }
    return {recon[0], recon[1], recon[2], recon[3]};
  }
};

inline Bytes szlr_compress(View3<const double> data, double abs_eb,
                           int block_size) {
  const Shape3 s = data.shape();
  const std::int64_t bs = block_size;
  const Quantizer quant{abs_eb};

  Array3<double> recon_arr(s);
  auto recon = recon_arr.view();
  View3<const double> recon_c(recon_arr.data(), s);

  std::vector<std::uint32_t> codes;
  std::vector<double> outliers;
  Bytes choice_bits;
  Bytes coeff_stream;
  CoeffCodec coeffs(abs_eb, block_size);

  const std::int64_t nbx = (s.nx + bs - 1) / bs;
  const std::int64_t nby = (s.ny + bs - 1) / bs;
  const std::int64_t nbz = (s.nz + bs - 1) / bs;

  for (std::int64_t bk = 0; bk < nbz; ++bk)
    for (std::int64_t bj = 0; bj < nby; ++bj)
      for (std::int64_t bi = 0; bi < nbx; ++bi) {
        const std::int64_t i0 = bi * bs, j0 = bj * bs, k0 = bk * bs;
        const std::int64_t ex = std::min(bs, s.nx - i0);
        const std::int64_t ey = std::min(bs, s.ny - j0);
        const std::int64_t ez = std::min(bs, s.nz - k0);

        const RegressionFit fit = fit_block(data, i0, j0, k0, ex, ey, ez);

        double err_reg = 0.0, err_lor = 0.0;
        for (std::int64_t dz = 0; dz < ez; ++dz)
          for (std::int64_t dy = 0; dy < ey; ++dy)
            for (std::int64_t dx = 0; dx < ex; ++dx) {
              const std::int64_t i = i0 + dx, j = j0 + dy, k = k0 + dz;
              const double v = data(i, j, k);
              const double pr = fit.b0 + fit.bx * static_cast<double>(dx) +
                                fit.by * static_cast<double>(dy) +
                                fit.bz * static_cast<double>(dz);
              err_reg += std::abs(v - pr);
              auto f = [&](std::int64_t a, std::int64_t b,
                           std::int64_t c) -> double {
                if (a < 0 || b < 0 || c < 0) return 0.0;
                return data(a, b, c);
              };
              const double pl = f(i - 1, j, k) + f(i, j - 1, k) +
                                f(i, j, k - 1) - f(i - 1, j - 1, k) -
                                f(i - 1, j, k - 1) - f(i, j - 1, k - 1) +
                                f(i - 1, j - 1, k - 1);
              err_lor += std::abs(v - pl);
            }

        const bool use_regression = err_reg < err_lor;
        choice_bits.push_back(use_regression ? 1 : 0);

        RegressionFit qfit;
        if (use_regression) qfit = coeffs.encode(fit, coeff_stream);

        for (std::int64_t dz = 0; dz < ez; ++dz)
          for (std::int64_t dy = 0; dy < ey; ++dy)
            for (std::int64_t dx = 0; dx < ex; ++dx) {
              const std::int64_t i = i0 + dx, j = j0 + dy, k = k0 + dz;
              const double v = data(i, j, k);
              const double pred =
                  use_regression
                      ? qfit.b0 + qfit.bx * static_cast<double>(dx) +
                            qfit.by * static_cast<double>(dy) +
                            qfit.bz * static_cast<double>(dz)
                      : lorenzo_predict(recon_c, i, j, k);
              double rv;
              codes.push_back(quant.encode(v, pred, rv, outliers));
              recon(i, j, k) = rv;
            }
      }

  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint32_t>(0x535a4c52u);
  w.put<std::int64_t>(s.nx);
  w.put<std::int64_t>(s.ny);
  w.put<std::int64_t>(s.nz);
  w.put<double>(abs_eb);
  w.put<std::int32_t>(static_cast<std::int32_t>(bs));

  const Bytes choice_z = lzss_encode(choice_bits);
  const Bytes coeff_z = lzss_encode(coeff_stream);
  const Bytes codes_z = lzss_encode(huffman_encode(codes));
  w.put_blob(choice_z);
  w.put_blob(coeff_z);
  w.put_blob(codes_z);
  w.put<std::uint64_t>(outliers.size());
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(outliers.data()),
               outliers.size() * sizeof(double)});
  return blob;
}

// ---------------------------------------------------------------------
// Seed SZ-Interp encoder: per-point predict/get lambdas.
// ---------------------------------------------------------------------
struct AxisGeom {
  int axis;
  std::int64_t h;
  std::int64_t s;
};

template <typename Get>
double predict(const AxisGeom& g, std::int64_t t, std::int64_t n, bool cubic,
               const Get& get) {
  const std::int64_t a = t - g.h;
  const std::int64_t b = t + g.h;
  if (b >= n) {
    if (a - g.s >= 0) return 1.5 * get(a) - 0.5 * get(a - g.s);
    return get(a);
  }
  if (cubic && a - g.s >= 0 && b + g.s < n) {
    return (-get(a - g.s) + 9.0 * get(a) + 9.0 * get(b) - get(b + g.s)) /
           16.0;
  }
  return 0.5 * (get(a) + get(b));
}

template <typename Fn>
void for_each_target(const Shape3& sh, const AxisGeom& g, const Fn& fn) {
  const std::int64_t n[3] = {sh.nx, sh.ny, sh.nz};
  std::int64_t stride[3];
  for (int d = 0; d < 3; ++d) {
    if (d == g.axis) stride[d] = g.s;
    else if (d < g.axis) stride[d] = g.h;
    else stride[d] = g.s;
  }
  for (std::int64_t k = (g.axis == 2 ? g.h : 0); k < n[2]; k += stride[2])
    for (std::int64_t j = (g.axis == 1 ? g.h : 0); j < n[1]; j += stride[1])
      for (std::int64_t i = (g.axis == 0 ? g.h : 0); i < n[0]; i += stride[0])
        fn(i, j, k);
}

inline std::int64_t initial_stride(const Shape3& sh, std::int64_t cap) {
  const std::int64_t m = std::max({sh.nx, sh.ny, sh.nz});
  std::int64_t s = 2;
  while (s < m && s < cap) s <<= 1;
  return s;
}

inline Bytes interp_compress(View3<const double> data, double abs_eb,
                             std::int64_t max_stride) {
  const Shape3 sh = data.shape();
  const Quantizer quant{abs_eb};
  Array3<double> recon_arr(sh);
  auto recon = recon_arr.view();

  const std::int64_t S = initial_stride(sh, max_stride);
  std::vector<double> anchors;
  for (std::int64_t k = 0; k < sh.nz; k += S)
    for (std::int64_t j = 0; j < sh.ny; j += S)
      for (std::int64_t i = 0; i < sh.nx; i += S) {
        anchors.push_back(data(i, j, k));
        recon(i, j, k) = data(i, j, k);
      }

  std::vector<std::uint32_t> codes;
  std::vector<double> outliers;
  Bytes choices;

  for (std::int64_t s = S; s >= 2; s /= 2) {
    const std::int64_t h = s / 2;
    for (int axis = 0; axis < 3; ++axis) {
      const AxisGeom g{axis, h, s};
      const std::int64_t n_axis =
          axis == 0 ? sh.nx : (axis == 1 ? sh.ny : sh.nz);
      if (h >= n_axis && h > 0) {
        choices.push_back(0);
        continue;
      }
      double err_lin = 0.0, err_cub = 0.0;
      for_each_target(sh, g, [&](std::int64_t i, std::int64_t j,
                                 std::int64_t k) {
        auto get = [&](std::int64_t c) {
          return axis == 0 ? recon(c, j, k)
                           : (axis == 1 ? recon(i, c, k) : recon(i, j, c));
        };
        const std::int64_t t = axis == 0 ? i : (axis == 1 ? j : k);
        const double v = data(i, j, k);
        err_lin += std::abs(v - predict(g, t, n_axis, false, get));
        err_cub += std::abs(v - predict(g, t, n_axis, true, get));
      });
      const bool cubic = err_cub < err_lin;
      choices.push_back(cubic ? 1 : 0);

      for_each_target(sh, g, [&](std::int64_t i, std::int64_t j,
                                 std::int64_t k) {
        auto get = [&](std::int64_t c) {
          return axis == 0 ? recon(c, j, k)
                           : (axis == 1 ? recon(i, c, k) : recon(i, j, c));
        };
        const std::int64_t t = axis == 0 ? i : (axis == 1 ? j : k);
        const double pred = predict(g, t, n_axis, cubic, get);
        double rv;
        codes.push_back(quant.encode(data(i, j, k), pred, rv, outliers));
        recon(i, j, k) = rv;
      });
    }
  }

  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint32_t>(0x535a4950u);
  w.put<std::int64_t>(sh.nx);
  w.put<std::int64_t>(sh.ny);
  w.put<std::int64_t>(sh.nz);
  w.put<double>(abs_eb);
  w.put<std::int64_t>(S);
  w.put_blob(choices);
  w.put<std::uint64_t>(anchors.size());
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(anchors.data()),
               anchors.size() * sizeof(double)});
  w.put_blob(lzss_encode(huffman_encode(codes)));
  w.put<std::uint64_t>(outliers.size());
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(outliers.data()),
               outliers.size() * sizeof(double)});
  return blob;
}

}  // namespace seedref

namespace {

/// Structured test field: smooth trend + oscillation + noise, so both
/// predictor families stay competitive and block choices mix.
Array3<double> structured_field(const Shape3& s, std::uint64_t seed,
                                double noise) {
  Array3<double> a(s);
  Rng rng(seed);
  for (std::int64_t k = 0; k < s.nz; ++k)
    for (std::int64_t j = 0; j < s.ny; ++j)
      for (std::int64_t i = 0; i < s.nx; ++i)
        a(i, j, k) = std::sin(0.11 * static_cast<double>(i)) *
                         std::cos(0.07 * static_cast<double>(j)) +
                     0.013 * static_cast<double>(k) +
                     0.5 * std::sin(0.31 * static_cast<double>(i + j + k)) +
                     noise * rng.normal();
  return a;
}

const Shape3 kBoundaryHeavyShapes[] = {
    {32, 32, 32},   // not a multiple of the szlr block size
    {13, 9, 30},    // all dims clipped
    {12, 12, 12},   // exact multiple
    {6, 6, 6},      // single block
    {1, 40, 17},    // thin slab 1xNxM
    {65, 1, 1},     // line Nx1x1
    {5, 5, 5},      // smaller than one block
};

TEST(FastPathGolden, SzLrBlobsMatchSeedEncoder) {
  for (const Shape3& s : kBoundaryHeavyShapes) {
    for (const double noise : {0.0, 0.4}) {
      const Array3<double> field = structured_field(s, 99, noise);
      const SzLrCompressor codec;
      const Bytes opt = codec.compress(field.view(), 1e-3);
      const Bytes ref = seedref::szlr_compress(field.view(), 1e-3, 6);
      ASSERT_EQ(opt.size(), ref.size())
          << "shape " << s.nx << "x" << s.ny << "x" << s.nz
          << " noise " << noise;
      EXPECT_TRUE(opt == ref)
          << "blob mismatch at shape " << s.nx << "x" << s.ny << "x" << s.nz
          << " noise " << noise;
    }
  }
}

TEST(FastPathGolden, SzInterpBlobsMatchSeedEncoder) {
  const Shape3 shapes[] = {{32, 32, 32}, {33, 17, 9}, {1, 64, 3},
                           {100, 1, 1},  {5, 5, 5},   {16, 16, 16}};
  for (const Shape3& s : shapes) {
    for (const double noise : {0.0, 0.4}) {
      const Array3<double> field = structured_field(s, 1234, noise);
      const SzInterpCompressor codec;
      const Bytes opt = codec.compress(field.view(), 1e-3);
      const Bytes ref = seedref::interp_compress(field.view(), 1e-3, 64);
      ASSERT_EQ(opt.size(), ref.size())
          << "shape " << s.nx << "x" << s.ny << "x" << s.nz
          << " noise " << noise;
      EXPECT_TRUE(opt == ref)
          << "blob mismatch at shape " << s.nx << "x" << s.ny << "x" << s.nz
          << " noise " << noise;
    }
  }
}

TEST(FastPathGolden, HuffmanBlobsMatchSeedEncoder) {
  Rng rng(5);
  std::vector<std::vector<std::uint32_t>> streams;
  // Quantizer-like: narrow normal around the center code (dense table).
  streams.emplace_back();
  for (int i = 0; i < 40000; ++i)
    streams.back().push_back(
        static_cast<std::uint32_t>(32768 + std::lround(rng.normal() * 3)));
  // Uniform over a modest alphabet.
  streams.emplace_back();
  for (int i = 0; i < 20000; ++i)
    streams.back().push_back(
        static_cast<std::uint32_t>(rng.next_below(1000)));
  // Sparse huge alphabet (forces the sorted-vector fallback).
  streams.emplace_back();
  for (int i = 0; i < 5000; ++i)
    streams.back().push_back(static_cast<std::uint32_t>(
        1000000000u + 12347u * static_cast<std::uint32_t>(i)));
  // Single distinct symbol, and a two-symbol skew.
  streams.push_back(std::vector<std::uint32_t>(777, 42u));
  streams.emplace_back();
  for (int i = 0; i < 5000; ++i)
    streams.back().push_back(i % 17 == 0 ? 3u : 9u);
  // Empty stream.
  streams.emplace_back();

  for (const auto& syms : streams) {
    const Bytes opt = huffman_encode(syms);
    const Bytes ref = seedref::huffman_encode(syms);
    ASSERT_EQ(opt.size(), ref.size()) << "stream size " << syms.size();
    EXPECT_TRUE(opt == ref) << "blob mismatch, stream size " << syms.size();
    // And the flat-table decoder inverts both.
    EXPECT_EQ(huffman_decode(opt), syms);
  }
}

TEST(FastPathBoundary, RoundtripBoundHoldsOnBoundaryHeavyShapes) {
  const double abs_eb = 1e-3;
  for (const Shape3& s : kBoundaryHeavyShapes) {
    const Array3<double> field = structured_field(s, 321, 0.25);
    for (const bool use_interp : {false, true}) {
      Bytes blob;
      Array3<double> out;
      if (use_interp) {
        const SzInterpCompressor codec;
        blob = codec.compress(field.view(), abs_eb);
        out = codec.decompress(blob);
      } else {
        const SzLrCompressor codec;
        blob = codec.compress(field.view(), abs_eb);
        out = codec.decompress(blob);
      }
      ASSERT_EQ(out.shape(), s);
      double max_err = 0.0;
      for (std::int64_t f = 0; f < field.size(); ++f)
        max_err = std::max(max_err, std::abs(field[f] - out[f]));
      EXPECT_LE(max_err, abs_eb)
          << (use_interp ? "sz-interp" : "sz-lr") << " shape " << s.nx << "x"
          << s.ny << "x" << s.nz;
    }
  }
}

// --------------------------- security ---------------------------------

/// Hand-craft a huffman blob header: count, table entries (delta varint +
/// length byte), then an empty payload blob.
Bytes corrupt_huffman_blob(std::uint8_t length_byte) {
  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint64_t>(1);   // one encoded symbol
  w.put<std::uint32_t>(1);   // one table entry
  w.put<std::uint8_t>(5);    // symbol delta varint (symbol = 5)
  w.put<std::uint8_t>(length_byte);
  w.put<std::uint64_t>(4);   // payload blob: enough bits for any one code
  for (int i = 0; i < 4; ++i) w.put<std::uint8_t>(0);
  return blob;
}

TEST(HuffmanSecurity, OutOfRangeCodeLengthThrows) {
  // Seed decoder indexed count_at_len[length] with an unvalidated length
  // byte: 200 wrote far past the kMaxCodeLen-sized stack arrays. Must be
  // rejected at parse time now.
  EXPECT_THROW(huffman_decode(corrupt_huffman_blob(200)), Error);
  EXPECT_THROW(huffman_decode(corrupt_huffman_blob(33)), Error);
  EXPECT_THROW(huffman_decode(corrupt_huffman_blob(0)), Error);
  // Boundary values stay accepted.
  EXPECT_NO_THROW(huffman_decode(corrupt_huffman_blob(1)));
  EXPECT_NO_THROW(huffman_decode(corrupt_huffman_blob(32)));
}

TEST(HuffmanSecurity, OverlongSymbolCountThrows) {
  // A count claiming more symbols than the payload holds must throw, not
  // decode zero-padding forever.
  std::vector<std::uint32_t> syms(100, 7u);
  syms[3] = 9u;
  Bytes blob = huffman_encode(syms);
  std::uint64_t huge = 1u << 20;
  std::memcpy(blob.data(), &huge, sizeof(huge));
  EXPECT_THROW(huffman_decode(blob), Error);
}

TEST(HuffmanSecurity, OverlongSymbolDeltaVarintThrows) {
  // Six continuation bytes push the varint shift past 32 bits — UB in the
  // seed parser; must be rejected.
  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint64_t>(1);  // one encoded symbol
  w.put<std::uint32_t>(1);  // one table entry
  for (int i = 0; i < 6; ++i) w.put<std::uint8_t>(0x81);
  w.put<std::uint8_t>(0x01);  // varint terminator
  w.put<std::uint8_t>(1);     // length byte
  w.put<std::uint64_t>(1);
  w.put<std::uint8_t>(0);
  EXPECT_THROW(huffman_decode(blob), Error);
}

TEST(InterpSecurity, ShortAnchorStreamThrows) {
  // n_anchor smaller than the anchor grid must throw before the
  // placement loop reads past the anchors vector (seed read heap OOB).
  const Shape3 s{4, 4, 4};
  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint32_t>(0x535a4950u);  // "SZIP"
  w.put<std::int64_t>(s.nx);
  w.put<std::int64_t>(s.ny);
  w.put<std::int64_t>(s.nz);
  w.put<double>(1e-3);
  w.put<std::int64_t>(4);           // S: one anchor expected
  w.put_blob({});                   // choices
  w.put<std::uint64_t>(0);          // n_anchor = 0 (corrupt: expected 1)
  const Bytes codes = lzss_encode(huffman_encode(std::vector<std::uint32_t>{}));
  w.put_blob(codes);
  w.put<std::uint64_t>(0);          // outliers
  const SzInterpCompressor codec;
  EXPECT_THROW(codec.decompress(blob), Error);
}

TEST(QuantizerSecurity, OutlierStarvationThrows) {
  const LinearQuantizer q(1e-3);
  std::size_t pos = 0;
  EXPECT_THROW(q.decode(0, 0.0, {}, pos), Error);
}

// ----------------------------- lzss -----------------------------------

/// Seed LZSS encoder (plain byte-loop match compare, no early reject),
/// embedded as the reference for the tightened hash-chain loop: the
/// frozen v1 writer (lzss_encode_v1) must stay byte-identical. The v2
/// cost-based encoder intentionally emits different tokens and is
/// covered by the round-trip and golden suites instead.
Bytes seedref_lzss_encode(std::span<const std::uint8_t> input) {
  constexpr std::size_t kWindow = 1u << 16;
  constexpr std::size_t kMinMatch = 4;
  constexpr std::size_t kMaxMatch = 258;
  constexpr std::size_t kHashSize = 1u << 16;
  constexpr int kMaxChain = 48;
  const auto hash4 = [](const std::uint8_t* p) {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> 16;
  };

  Bytes out;
  ByteWriter w(out);
  w.put<std::uint64_t>(input.size());

  Bytes tokens;
  std::uint8_t control = 0;
  int control_bits = 0;
  std::size_t control_pos = 0;
  auto open_group = [&] {
    control = 0;
    control_bits = 0;
    control_pos = tokens.size();
    tokens.push_back(0);
  };
  auto close_group = [&] { tokens[control_pos] = control; };

  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(input.size(), -1);

  open_group();
  std::size_t i = 0;
  while (i < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (i + kMinMatch <= input.size()) {
      const std::uint32_t h = hash4(&input[i]);
      std::int64_t cand = head[h];
      int chain = 0;
      while (cand >= 0 && chain < kMaxChain &&
             i - static_cast<std::size_t>(cand) <= kWindow) {
        const std::size_t c = static_cast<std::size_t>(cand);
        const std::size_t limit = std::min(kMaxMatch, input.size() - i);
        std::size_t len = 0;
        while (len < limit && input[c + len] == input[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_off = i - c;
          if (len == limit) break;
        }
        cand = prev[c];
        ++chain;
      }
    }

    if (best_len >= kMinMatch) {
      control |= static_cast<std::uint8_t>(1u << control_bits);
      tokens.push_back(static_cast<std::uint8_t>(best_off & 0xff));
      tokens.push_back(static_cast<std::uint8_t>((best_off >> 8) & 0xff));
      tokens.push_back(static_cast<std::uint8_t>(best_len - kMinMatch));
      const std::size_t end = i + best_len;
      for (; i < end && i + kMinMatch <= input.size(); ++i) {
        const std::uint32_t h = hash4(&input[i]);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      i = end;
    } else {
      tokens.push_back(input[i]);
      if (i + kMinMatch <= input.size()) {
        const std::uint32_t h = hash4(&input[i]);
        prev[i] = head[h];
        head[h] = static_cast<std::int64_t>(i);
      }
      ++i;
    }

    if (++control_bits == 8) {
      close_group();
      if (i < input.size()) open_group();
      else control_bits = -1;
    }
  }
  if (control_bits >= 0) close_group();

  w.put_blob(tokens);
  return out;
}

TEST(LzssFastPath, EncoderIsByteIdenticalToSeed) {
  Rng rng(99);
  std::vector<Bytes> inputs;
  // Low-entropy bytes (the quantizer-output-like case the bench measures).
  Bytes low;
  for (int i = 0; i < 1 << 16; ++i)
    low.push_back(static_cast<std::uint8_t>(rng.next_below(16)));
  inputs.push_back(std::move(low));
  // Highly repetitive: long matches exercise the len == limit break and
  // the in-match hash insertion loop.
  Bytes rep;
  for (int i = 0; i < 5000; ++i)
    rep.push_back(static_cast<std::uint8_t>("abcabcabd"[i % 9]));
  inputs.push_back(std::move(rep));
  // Incompressible: every candidate rejected, literal-only stream.
  Bytes rnd;
  for (int i = 0; i < 1 << 14; ++i)
    rnd.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  inputs.push_back(std::move(rnd));
  // Degenerate sizes around the kMinMatch threshold.
  inputs.push_back({});
  inputs.push_back({1, 2, 3});
  inputs.push_back({7, 7, 7, 7, 7, 7, 7, 7});

  for (const Bytes& input : inputs) {
    const Bytes v1 = lzss_encode_v1(input);
    const Bytes ref = seedref_lzss_encode(input);
    ASSERT_EQ(v1, ref) << "input size " << input.size();
    EXPECT_EQ(lzss_decode(v1), input);
  }
}

TEST(LzssSecurity, HugeOutSizeHeaderThrows) {
  // out_size is attacker-controlled; the seed decoder reserved it
  // unbounded, so a corrupt header OOMed before any token decoding. The
  // cap is the maximum expansion of the token stream actually present
  // (each 3-byte match token yields at most 258 bytes).
  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint64_t>(std::uint64_t{1} << 60);
  const Bytes tokens = {0x01, 0x01, 0x00, 0xfe};  // one max-length match
  w.put_blob(tokens);
  EXPECT_THROW(lzss_decode(blob), Error);
}

TEST(LzssSecurity, OutSizeJustPastExpansionCapThrows) {
  // 4 token bytes can never expand past 4 * 86 = 344 bytes; 345 must be
  // rejected before the reserve, regardless of token contents.
  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint64_t>(345);
  w.put_blob(Bytes{0x01, 0x01, 0x00, 0xfe});
  EXPECT_THROW(lzss_decode(blob), Error);
}

TEST(LzssSecurity, MaxExpansionRoundTripStillDecodes) {
  // A legitimately maximally-expanding stream (long runs -> back-to-back
  // 258-byte matches) stays under the cap and round-trips.
  Bytes input(1 << 15, 0xab);
  const Bytes blob = lzss_encode(input);
  EXPECT_EQ(lzss_decode(blob), input);
}

}  // namespace
}  // namespace amrvis::compress
