// Tests for the software renderer and the quality metrics (PSNR, SSIM,
// R-SSIM) the paper evaluates with.

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/quality.hpp"
#include "render/render.hpp"
#include "util/bytestream.hpp"
#include "sim/fields.hpp"
#include "util/rng.hpp"
#include "vis/isosurface.hpp"

namespace amrvis {
namespace {

using render::Image;
using render::OrthoCamera;
using vis::TriMesh;
using vis::Vec3;

TriMesh unit_square_at(double z, int level = 0) {
  TriMesh m;
  m.vertices = {{0, 0, z}, {1, 0, z}, {1, 1, z}, {0, 1, z}};
  m.triangles = {{{0, 1, 2}, level}, {{0, 2, 3}, level}};
  return m;
}

TEST(Camera, FitFramesBounds) {
  const OrthoCamera cam = OrthoCamera::fit({0, 0, 0}, {10, 20, 30}, 2, 0.0);
  EXPECT_EQ(cam.axis, 2);
  EXPECT_DOUBLE_EQ(cam.u0, 0.0);
  EXPECT_DOUBLE_EQ(cam.u1, 10.0);  // u = x for axis 2
  EXPECT_DOUBLE_EQ(cam.v0, 0.0);
  EXPECT_DOUBLE_EQ(cam.v1, 20.0);  // v = y for axis 2
}

TEST(Camera, MarginExpandsWindow) {
  const OrthoCamera cam = OrthoCamera::fit({0, 0, 0}, {10, 10, 10}, 0, 0.1);
  EXPECT_DOUBLE_EQ(cam.u0, -1.0);
  EXPECT_DOUBLE_EQ(cam.u1, 11.0);
}

TEST(Renderer, CoversExpectedPixels) {
  const TriMesh m = unit_square_at(0.0);
  OrthoCamera cam;
  cam.axis = 2;
  cam.u0 = cam.v0 = -0.5;
  cam.u1 = cam.v1 = 1.5;
  const Image img = render::render_mesh(m, cam, 64, 64);
  // The square covers the central quarter of the window => about 1/4 of
  // pixels lit.
  int lit = 0;
  for (double g : img.gray)
    if (g > 0) ++lit;
  EXPECT_NEAR(static_cast<double>(lit) / (64.0 * 64.0), 0.25, 0.03);
}

TEST(Renderer, ZBufferPicksNearest) {
  // Camera looks along +z from above (larger z wins). Two stacked
  // squares with different orientations to give different shades is
  // overkill; instead check determinism of the winning layer via level
  // coloring: the near square hides the far one.
  TriMesh near_far = unit_square_at(5.0, 1);
  near_far.append(unit_square_at(1.0, 0));
  OrthoCamera cam;
  cam.axis = 2;
  cam.u0 = cam.v0 = 0.0;
  cam.u1 = cam.v1 = 1.0;
  const std::string path = ::testing::TempDir() + "/zbuffer.ppm";
  render::write_level_colored_ppm(near_far, cam, 8, 8, path);
  const Bytes ppm = read_file(path);
  // Level 1 tints red > blue; check one interior pixel after the header.
  const std::string text(ppm.begin(), ppm.end());
  const std::size_t header_end = text.find("255\n") + 4;
  const std::size_t center = header_end + (4 * 8 + 4) * 3;
  ASSERT_LT(center + 2, ppm.size());
  EXPECT_GT(static_cast<int>(ppm[center]),
            static_cast<int>(ppm[center + 2]));  // red channel dominates
}

TEST(Renderer, DeterministicAcrossRuns) {
  const Array3<double> f =
      sim::sphere_field({16, 16, 16}, 7.5, 7.5, 7.5, 5.0);
  const TriMesh mesh = vis::extract_isosurface(f.view(), 0.0, {});
  const OrthoCamera cam = OrthoCamera::fit({0, 0, 0}, {15, 15, 15}, 0);
  const Image a = render::render_mesh(mesh, cam, 64, 64);
  const Image b = render::render_mesh(mesh, cam, 64, 64);
  EXPECT_EQ(a.gray, b.gray);
}

TEST(Renderer, EmptyMeshIsBackground) {
  const Image img = render::render_mesh({}, {}, 16, 16);
  for (double g : img.gray) EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(Metrics, MseAndPsnrKnownValues) {
  const std::vector<double> a{0.0, 1.0, 2.0, 3.0};
  std::vector<double> b = a;
  EXPECT_DOUBLE_EQ(metrics::mse(a, b), 0.0);
  EXPECT_TRUE(std::isinf(metrics::psnr(a, b)));
  b[0] = 0.3;
  EXPECT_NEAR(metrics::mse(a, b), 0.09 / 4.0, 1e-12);
  // PSNR = 20 log10(3) - 10 log10(0.0225)
  EXPECT_NEAR(metrics::psnr(a, b),
              20.0 * std::log10(3.0) - 10.0 * std::log10(0.0225), 1e-9);
}

TEST(Metrics, SsimIdentityIsOne) {
  Array3<double> a({16, 16, 16});
  Rng rng(2);
  for (std::int64_t i = 0; i < a.size(); ++i) a[i] = rng.normal();
  EXPECT_NEAR(metrics::ssim(a.view(), a.view()), 1.0, 1e-12);
}

TEST(Metrics, SsimDropsWithNoise) {
  Array3<double> a({16, 16, 16});
  Rng rng(4);
  for (std::int64_t i = 0; i < a.size(); ++i) a[i] = rng.normal();
  Array3<double> slightly = a, badly = a;
  Rng noise(5);
  for (std::int64_t i = 0; i < a.size(); ++i) {
    const double n = noise.normal();
    slightly[i] += 0.02 * n;
    badly[i] += 0.5 * n;
  }
  const double s1 = metrics::ssim(a.view(), slightly.view());
  const double s2 = metrics::ssim(a.view(), badly.view());
  EXPECT_GT(s1, s2);
  EXPECT_GT(s1, 0.99);
  EXPECT_LT(s2, 0.9);
}

TEST(Metrics, SsimInvariantToSharedShift) {
  // Adding the same constant to both inputs must not change SSIM
  // materially (means shift together; variances unchanged).
  Array3<double> a({12, 12, 12});
  Rng rng(6);
  for (std::int64_t i = 0; i < a.size(); ++i) a[i] = rng.normal();
  Array3<double> b = a;
  for (std::int64_t i = 0; i < a.size(); ++i) b[i] += 0.05 * rng.normal();
  const double base = metrics::ssim(a.view(), b.view());
  Array3<double> a2 = a, b2 = b;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    a2[i] += 100.0;
    b2[i] += 100.0;
  }
  // C1/C2 depend on the range of `a`, which is unchanged by the shift.
  EXPECT_NEAR(metrics::ssim(a2.view(), b2.view()), base, 5e-3);
}

TEST(Metrics, RssimDefinition) {
  EXPECT_DOUBLE_EQ(metrics::reverse_ssim(0.999), 1.0 - 0.999);
  metrics::RdPoint p;
  p.ssim_value = 0.9996;
  EXPECT_NEAR(p.rssim(), 4e-4, 1e-12);
}

TEST(Metrics, Works2D) {
  // Images are volumes with nz == 1.
  Array3<double> a({32, 32, 1});
  Rng rng(8);
  for (std::int64_t i = 0; i < a.size(); ++i) a[i] = rng.next_double();
  Array3<double> b = a;
  b(16, 16, 0) += 0.3;
  const double s = metrics::ssim(a.view(), b.view());
  EXPECT_LT(s, 1.0);
  EXPECT_GT(s, 0.8);
}

TEST(Metrics, PsnrMonotoneInErrorMagnitude) {
  Array3<double> a({8, 8, 8});
  Rng rng(10);
  for (std::int64_t i = 0; i < a.size(); ++i) a[i] = rng.normal();
  double prev = std::numeric_limits<double>::infinity();
  for (const double amp : {0.001, 0.01, 0.1}) {
    Array3<double> b = a;
    Rng noise(11);
    for (std::int64_t i = 0; i < a.size(); ++i)
      b[i] += amp * noise.normal();
    const double p = metrics::psnr(a.span(), b.span());
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(Metrics, SsimRejectsShapeMismatch) {
  Array3<double> a({4, 4, 4}), b({4, 4, 5});
  EXPECT_THROW(metrics::ssim(a.view(), b.view()), Error);
}

TEST(ImageIo, PgmRoundTripHeader) {
  Image img(4, 2);
  img.at(0, 0) = 1.0;
  img.at(3, 1) = 0.5;
  const std::string path = ::testing::TempDir() + "/test.pgm";
  render::write_pgm(img, path);
  const Bytes data = read_file(path);
  const std::string text(data.begin(), data.end());
  EXPECT_EQ(text.rfind("P5\n4 2\n255\n", 0), 0u);
  EXPECT_EQ(data.size(), 11u + 8u);
  EXPECT_EQ(data[11], 255);  // first pixel
}

}  // namespace
}  // namespace amrvis
