// Regenerates the *current-writer* golden container blobs under
// tests/data/ (see tests/test_roi.cpp for the compatibility contract).
//
//   cmake --build build --target gen_golden_blobs
//   ./build/tests/gen_golden_blobs tests/data
//
// Only run this after an INTENTIONAL format bump (container version or
// the LZSS blob format inside the tiles), and commit the new files
// alongside the change: the golden suite exists to make silent format
// breaks impossible. Frozen blobs (golden_v1_* from the PR3 writer,
// golden_v2_* from the PR4 writer, golden_v3_* from the PR5–7 writer,
// golden_v4_* from the PR8 writer whose tiles carry lzss-v1 payloads)
// can never be regenerated — those writers are gone — and must not be
// deleted while the decoder still claims support for them. CI's
// golden-consistency job re-runs this tool and byte-compares only the
// regenerable files below.
//
// The input field and codec configuration here must stay in lock-step
// with golden_field()/golden_codec() in tests/test_roi.cpp.

#include <cstdio>
#include <string>

#include "compress/chunked.hpp"
#include "compress/compressor.hpp"
#include "util/bytestream.hpp"

using namespace amrvis;
using namespace amrvis::compress;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "tests/data";

  // Deterministic 12x10x9 field, non-multiple of the 8x8x4 tile so the
  // golden blobs exercise clipped boundary tiles. Dyadic-exact terms
  // only (no libm): the field, and therefore the container bytes, are
  // platform-independent. (The frozen v1 goldens were generated from a
  // different, sin-based input; irrelevant, since they are decode-only.)
  Array3<double> data({12, 10, 9});
  for (std::int64_t f = 0; f < data.size(); ++f) {
    const auto h = static_cast<std::uint64_t>(f) * 2654435761ULL;
    data[f] = static_cast<double>(h % 1024) / 64.0 - 8.0 +
              static_cast<double>(f % 11) / 16.0;
  }
  // Container v4 with lzss-v2 tile payloads (default lazy parse) — the
  // current writer configuration. Same field and tiling as the frozen
  // golden_v4 blob, so the two must decode to identical doubles.
  const ChunkedCompressor codec(make_compressor("sz-lr"), ChunkShape{8, 8, 4});
  const Bytes blob = codec.compress(data.view(), 1e-3);
  const Array3<double> dec = codec.decompress(blob);
  write_file(dir + "/golden_lzss2_chunked_szlr.bin", blob);
  write_file(dir + "/golden_lzss2_chunked_szlr.dec.bin",
             {reinterpret_cast<const std::uint8_t*>(dec.data()),
              static_cast<std::size_t>(dec.size()) * sizeof(double)});
  std::printf("wrote %s/golden_lzss2_chunked_szlr.bin (%zu bytes) and "
              ".dec.bin (%lld doubles)\n",
              dir.c_str(), blob.size(), static_cast<long long>(dec.size()));
  return 0;
}
