// Unit tests for the util substrate: streams, FFT, RNG, parallel
// helpers, arrays and stats.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <regex>
#include <string>
#include <vector>

#include "util/array3d.hpp"
#include "util/bytestream.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/fft.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace amrvis {
namespace {

TEST(ByteStream, PodRoundTrip) {
  Bytes buf;
  ByteWriter w(buf);
  w.put<std::uint32_t>(0xdeadbeef);
  w.put<double>(3.14159);
  w.put<std::int64_t>(-42);
  ByteReader r(buf);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(r.get<double>(), 3.14159);
  EXPECT_EQ(r.get<std::int64_t>(), -42);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteStream, BlobRoundTrip) {
  Bytes buf;
  ByteWriter w(buf);
  const Bytes payload{1, 2, 3, 4, 5};
  w.put_blob(payload);
  w.put_blob({});
  ByteReader r(buf);
  const auto back = r.get_blob();
  EXPECT_EQ(Bytes(back.begin(), back.end()), payload);
  EXPECT_TRUE(r.get_blob().empty());
}

TEST(ByteStream, TruncatedThrows) {
  Bytes buf;
  ByteWriter w(buf);
  w.put<std::uint16_t>(7);
  ByteReader r(buf);
  EXPECT_THROW(r.get<std::uint64_t>(), Error);
}

TEST(ByteStream, GetBytesPastEndThrows) {
  const Bytes buf{1, 2, 3};
  ByteReader r(buf);
  (void)r.get_bytes(3);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW((void)r.get_bytes(1), Error);
}

TEST(ByteStream, GetBytesPartialOverrunThrows) {
  // A request straddling the end must throw without consuming anything.
  const Bytes buf{1, 2, 3, 4};
  ByteReader r(buf);
  (void)r.get<std::uint16_t>();
  EXPECT_THROW((void)r.get_bytes(3), Error);
  EXPECT_EQ(r.position(), 2u);  // failed read must not advance
}

TEST(ByteStream, BlobWithLyingLengthThrows) {
  // A length prefix larger than the remaining payload is corruption, not
  // an out-of-bounds read.
  Bytes buf;
  ByteWriter w(buf);
  w.put<std::uint64_t>(1000);  // claims 1000 payload bytes...
  w.put<std::uint8_t>(42);     // ...but only 1 follows
  ByteReader r(buf);
  EXPECT_THROW((void)r.get_blob(), Error);
}

TEST(ByteStream, HugeBlobLengthDoesNotOverflowBoundsCheck) {
  // Regression: a blob length near SIZE_MAX used to overflow the
  // `pos_ + n <= size` bounds check and read out of bounds.
  Bytes buf;
  ByteWriter w(buf);
  w.put<std::uint64_t>(~std::uint64_t{0} - 4);
  ByteReader r(buf);
  EXPECT_THROW((void)r.get_blob(), Error);
}

TEST(ByteStream, EmptyReaderThrows) {
  ByteReader r(std::span<const std::uint8_t>{});
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW((void)r.get<std::uint8_t>(), Error);
}

TEST(BitStream, BitsRoundTrip) {
  BitWriter w;
  w.put_bits(0b1011, 4);
  w.put_bits(0x12345678, 32);
  w.put_bit(1);
  BitReader r(w.bytes());
  EXPECT_EQ(r.get_bits(4), 0b1011u);
  EXPECT_EQ(r.get_bits(32), 0x12345678u);
  EXPECT_EQ(r.get_bit(), 1u);
}

TEST(BitStream, BitCount) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  w.put_bits(0, 13);
  EXPECT_EQ(w.bit_count(), 13u);
  w.put_bits(0, 3);
  EXPECT_EQ(w.bit_count(), 16u);
}

TEST(BitStream, OutOfBitsThrows) {
  BitWriter w;
  w.put_bits(0xff, 8);
  BitReader r(w.bytes());
  (void)r.get_bits(8);
  EXPECT_THROW((void)r.get_bit(), Error);
}

TEST(BitStream, GetBitsStraddlingEndThrows) {
  // A multi-bit read that starts in bounds but crosses the end must
  // raise, not fabricate trailing bits.
  BitWriter w;
  w.put_bits(0b101, 3);  // one byte in the buffer
  BitReader r(w.bytes());
  (void)r.get_bits(3);
  // 5 padding bits remain: this read starts in bounds, then runs out.
  EXPECT_THROW((void)r.get_bits(12), Error);
}

TEST(BitStream, EmptyReaderThrows) {
  BitReader r(std::span<const std::uint8_t>{});
  EXPECT_EQ(r.bits_consumed(), 0u);
  EXPECT_THROW((void)r.get_bit(), Error);
}

class Fft1dRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Fft1dRoundTrip, InverseRecoversInput) {
  const std::int64_t n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  std::vector<Complex> data(static_cast<std::size_t>(n));
  for (auto& c : data) c = Complex(rng.normal(), rng.normal());
  const auto original = data;
  fft_1d(data.data(), n, false);
  fft_1d(data.data(), n, true);
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(data[static_cast<std::size_t>(i)] -
                         original[static_cast<std::size_t>(i)]),
                0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes, Fft1dRoundTrip,
                         ::testing::Values(1, 2, 4, 16, 64, 256, 1024));

TEST(Fft, SingleModeSpectrum) {
  // A pure cosine concentrates energy at +/-k.
  const std::int64_t n = 64;
  std::vector<Complex> data(static_cast<std::size_t>(n));
  const int k = 5;
  for (std::int64_t i = 0; i < n; ++i)
    data[static_cast<std::size_t>(i)] =
        std::cos(2.0 * 3.14159265358979 * k * static_cast<double>(i) /
                 static_cast<double>(n));
  fft_1d(data.data(), n, false);
  for (std::int64_t f = 0; f < n; ++f) {
    const double mag = std::abs(data[static_cast<std::size_t>(f)]);
    if (f == k || f == n - k)
      EXPECT_NEAR(mag, static_cast<double>(n) / 2.0, 1e-8);
    else
      EXPECT_NEAR(mag, 0.0, 1e-8);
  }
}

TEST(Fft, NonPow2Throws) {
  std::vector<Complex> data(12);
  EXPECT_THROW(fft_1d(data.data(), 12, false), Error);
}

TEST(Fft, ThreeDRoundTrip) {
  Array3<Complex> data({8, 4, 16});
  Rng rng(3);
  for (std::int64_t i = 0; i < data.size(); ++i)
    data[i] = Complex(rng.normal(), rng.normal());
  Array3<Complex> original = data;
  fft_3d(data, false);
  fft_3d(data, true);
  for (std::int64_t i = 0; i < data.size(); ++i)
    EXPECT_NEAR(std::abs(data[i] - original[i]), 0.0, 1e-9);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Parallel, ForCoversAllIndices) {
  std::vector<int> hits(1000, 0);
  parallel_for(1000, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(Parallel, ReduceMatchesSerial) {
  const std::int64_t n = 100000;
  const double parallel_sum = parallel_reduce<double>(
      n, 0.0, [](std::int64_t i) { return static_cast<double>(i); },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(parallel_sum,
                   static_cast<double>(n) * static_cast<double>(n - 1) / 2.0);
}

TEST(Parallel, ChunkedCoversAll) {
  std::vector<int> hits(997, 0);  // prime size vs grain 64
  parallel_for_chunked(997, 64,
                       [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 997);
}

// Exception contract: a throw from a body must reach the caller as the
// original exception, never std::terminate. Under OpenMP the seed helpers
// let the exception escape the worker thread (abort); these tests run in
// every CI OMP_NUM_THREADS leg.

TEST(Parallel, ForPropagatesBodyException) {
  EXPECT_THROW(parallel_for(512,
                            [](std::int64_t i) {
                              if (i == 137) throw Error("body failed");
                            }),
               Error);
}

TEST(Parallel, ForPreservesOriginalExceptionAndMessage) {
  try {
    parallel_for(512, [](std::int64_t i) {
      if (i == 400) throw std::out_of_range("custom exception type");
    });
    FAIL() << "parallel_for swallowed the exception";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "custom exception type");
  }
}

TEST(Parallel, ForSingleIterationPropagates) {
  // n == 1 takes the no-region shortcut; the contract must hold there too.
  EXPECT_THROW(parallel_for(1, [](std::int64_t) { throw Error("one"); }),
               Error);
}

TEST(Parallel, ChunkedPropagatesBodyException) {
  EXPECT_THROW(parallel_for_chunked(997, 64,
                                    [](std::int64_t i) {
                                      if (i == 900) throw Error("chunk");
                                    }),
               Error);
}

TEST(Parallel, ReducePropagatesMapException) {
  EXPECT_THROW(parallel_reduce<double>(
                   100000, 0.0,
                   [](std::int64_t i) -> double {
                     if (i == 99999) throw Error("map failed");
                     return static_cast<double>(i);
                   },
                   [](double a, double b) { return a + b; }),
               Error);
}

TEST(Parallel, HelpersUsableAfterException) {
  // A failed region must not poison later calls (fresh guard per call).
  EXPECT_THROW(parallel_for(64, [](std::int64_t) { throw Error("x"); }),
               Error);
  std::vector<int> hits(64, 0);
  parallel_for(64, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(Array3, IndexLayoutIsXFastest) {
  Array3<double> a({3, 4, 5});
  a(1, 2, 3) = 42.0;
  EXPECT_DOUBLE_EQ(a[(3 * 4 + 2) * 3 + 1], 42.0);
}

TEST(Array3, ViewConvertsToConst) {
  Array3<double> a({2, 2, 2}, 1.0);
  View3<double> v = a.view();
  View3<const double> cv = v;  // implicit conversion under test
  EXPECT_DOUBLE_EQ(cv(1, 1, 1), 1.0);
}

TEST(Array3, ShapeRank) {
  EXPECT_EQ((Shape3{5, 1, 1}).rank(), 1);
  EXPECT_EQ((Shape3{5, 4, 1}).rank(), 2);
  EXPECT_EQ((Shape3{5, 4, 3}).rank(), 3);
  EXPECT_EQ((Shape3{1, 1, 1}).rank(), 1);
}

TEST(Stats, MinMaxMeanVariance) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const MinMax mm = min_max(xs);
  EXPECT_DOUBLE_EQ(mm.min, 1.0);
  EXPECT_DOUBLE_EQ(mm.max, 4.0);
  EXPECT_DOUBLE_EQ(mm.range(), 3.0);
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
}

TEST(Stats, MaxAbsDiff) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.5, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 2.0);
}

TEST(CliFlags, ParseForms) {
  Cli cli;
  cli.add_flag("alpha", "1", "");
  cli.add_flag("beta", "x", "");
  cli.add_flag("gamma", "0", "");
  const char* argv[] = {"prog", "--alpha=7", "--beta", "hello", "--gamma"};
  ASSERT_TRUE(cli.parse(5, const_cast<char**>(argv)));
  EXPECT_EQ(cli.get_int("alpha"), 7);
  EXPECT_EQ(cli.get("beta"), "hello");
  EXPECT_TRUE(cli.get_bool("gamma"));
}

TEST(CliFlags, UnknownFlagThrows) {
  Cli cli;
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, const_cast<char**>(argv)), Error);
}

TEST(ErrorMacros, RequireThrowsWithContext) {
  try {
    AMRVIS_REQUIRE_MSG(false, "ctx");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("ctx"), std::string::npos);
  }
}

TEST(Files, WriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/amrvis_io_test.bin";
  Bytes data{0, 1, 2, 255, 128};
  write_file(path, data);
  EXPECT_EQ(read_file(path), data);
}

// RAII capture of log output through set_log_sink; restores the default
// stderr sink on destruction.
class LogCapture {
 public:
  LogCapture() {
    set_log_sink([this](LogLevel level, const std::string& line) {
      levels.push_back(level);
      lines.push_back(line);
    });
  }
  ~LogCapture() { set_log_sink(nullptr); }
  std::vector<LogLevel> levels;
  std::vector<std::string> lines;
};

TEST(Log, SinkCapturesFilteredLines) {
  LogCapture cap;
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kInfo);
  AMRVIS_LOG(kDebug) << "dropped";
  AMRVIS_LOG(kWarn) << "kept " << 42;
  set_log_level(saved);
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_EQ(cap.levels[0], LogLevel::kWarn);
  EXPECT_NE(cap.lines[0].find("kept 42"), std::string::npos);
}

TEST(Log, DefaultFormatIsPinned) {
  // The line format is a stability contract: ISO-8601 UTC timestamp with
  // milliseconds, then "[amrvis LEVEL t<tid>] ", then the message.
  //   2026-08-08T12:34:56.789Z [amrvis INFO t0] message
  const std::string line = format_log_line(LogLevel::kInfo, "message");
  EXPECT_TRUE(std::regex_match(
      line,
      std::regex(R"(\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z )"
                 R"(\[amrvis INFO t\d+\] message)")))
      << line;
  // The sink receives exactly the formatted line.
  LogCapture cap;
  log_message(LogLevel::kError, "boom");
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_TRUE(std::regex_match(
      cap.lines[0],
      std::regex(R"(\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z )"
                 R"(\[amrvis ERROR t\d+\] boom)")))
      << cap.lines[0];
}

}  // namespace
}  // namespace amrvis
