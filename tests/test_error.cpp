// Unit tests for the typed error taxonomy (util/error.hpp): code + context
// propagation, what() formatting, context enrichment, and the macro layer.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "util/cancel.hpp"
#include "util/error.hpp"

namespace amrvis {
namespace {

TEST(Error, LegacyStringConstructorIsGeneric) {
  const Error e("something broke");
  EXPECT_EQ(e.code(), ErrorCode::kGeneric);
  EXPECT_FALSE(e.context().any());
  EXPECT_STREQ(e.what(), "something broke");  // no tag for kGeneric
  EXPECT_EQ(e.message(), "something broke");
}

TEST(Error, TypedWhatCarriesCodeTag) {
  const Error e(ErrorCode::kCorruptHeader, "bad container magic");
  EXPECT_EQ(e.code(), ErrorCode::kCorruptHeader);
  EXPECT_STREQ(e.what(), "[corrupt-header] bad container magic");
  EXPECT_EQ(e.message(), "bad container magic");  // unformatted
}

TEST(Error, WhatAppendsKnownContextFieldsOnly) {
  const Error full(ErrorCode::kDecodeFailure, "tile broke", {7, 3, 128});
  EXPECT_STREQ(full.what(),
               "[decode-failure] tile broke (container 7, tile 3, byte 128)");

  const Error partial(ErrorCode::kDecodeFailure, "tile broke",
                      {7, ErrorContext::kNoTile, -1});
  EXPECT_STREQ(partial.what(), "[decode-failure] tile broke (container 7)");

  const Error none(ErrorCode::kDecodeFailure, "tile broke");
  EXPECT_STREQ(none.what(), "[decode-failure] tile broke");
}

TEST(Error, IsACatchableRuntimeError) {
  try {
    throw Error(ErrorCode::kTimeout, "deadline");
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::strstr(e.what(), "deadline"), nullptr);
    return;
  }
  FAIL() << "Error must stay catchable as std::runtime_error";
}

TEST(Error, WithContextFillsOnlyUnknownFields) {
  const Error inner(ErrorCode::kCorruptPayload, "short read",
                    {0, ErrorContext::kNoTile, 12});
  const Error enriched = inner.with_context({42, 5, 999});
  EXPECT_EQ(enriched.code(), ErrorCode::kCorruptPayload);
  EXPECT_EQ(enriched.context().container, 42u);  // was unknown, filled
  EXPECT_EQ(enriched.context().tile, 5);         // was unknown, filled
  EXPECT_EQ(enriched.context().byte_offset, 12);  // inner knowledge wins
}

TEST(Error, CodeNamesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kOk), "ok");
  EXPECT_STREQ(error_code_name(ErrorCode::kCorruptHeader), "corrupt-header");
  EXPECT_STREQ(error_code_name(ErrorCode::kCorruptPayload),
               "corrupt-payload");
  EXPECT_STREQ(error_code_name(ErrorCode::kStatsInvalid), "stats-invalid");
  EXPECT_STREQ(error_code_name(ErrorCode::kDecodeFailure), "decode-failure");
  EXPECT_STREQ(error_code_name(ErrorCode::kTimeout), "timeout");
  EXPECT_STREQ(error_code_name(ErrorCode::kCancelled), "cancelled");
  EXPECT_STREQ(error_code_name(ErrorCode::kQuarantined), "quarantined");
  EXPECT_STREQ(error_code_name(ErrorCode::kFaultInjected), "fault-injected");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnavailable), "unavailable");
}

TEST(Error, OnlyInjectedFaultsAreTransient) {
  EXPECT_TRUE(error_is_transient(ErrorCode::kFaultInjected));
  EXPECT_FALSE(error_is_transient(ErrorCode::kCorruptPayload));
  EXPECT_FALSE(error_is_transient(ErrorCode::kTimeout));
  EXPECT_FALSE(error_is_transient(ErrorCode::kQuarantined));
}

TEST(ErrorMacros, RequireThrowsPrecondition) {
  try {
    AMRVIS_REQUIRE_MSG(1 == 2, "numbers drifted");
    FAIL() << "AMRVIS_REQUIRE_MSG must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kPrecondition);
    EXPECT_NE(std::strstr(e.what(), "precondition failed"), nullptr);
    EXPECT_NE(std::strstr(e.what(), "numbers drifted"), nullptr);
    // The message already leads with the kind; no "[precondition]" tag.
    EXPECT_EQ(std::strstr(e.what(), "[precondition]"), nullptr);
  }
}

TEST(ErrorMacros, CheckThrowsTypedError) {
  try {
    AMRVIS_CHECK(ErrorCode::kCorruptPayload, false, "stream truncated");
    FAIL() << "AMRVIS_CHECK must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCorruptPayload);
    EXPECT_NE(std::strstr(e.what(), "corrupt-payload failed"), nullptr);
    EXPECT_NE(std::strstr(e.what(), "stream truncated"), nullptr);
  }
}

TEST(CancelToken, DefaultNeverFires) {
  const util::CancelToken t;
  EXPECT_FALSE(t.cancelled());
  EXPECT_FALSE(t.expired());
  EXPECT_NO_THROW(t.check());
  t.cancel();  // no flag: a no-op, not a crash
  EXPECT_FALSE(t.cancelled());
}

TEST(CancelToken, ManualCancelThrowsCancelled) {
  const util::CancelToken t = util::CancelToken::manual();
  EXPECT_NO_THROW(t.check());
  t.cancel();
  try {
    t.check();
    FAIL() << "cancelled token must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
}

TEST(CancelToken, PastDeadlineThrowsTimeout) {
  const auto past =
      util::CancelToken::Clock::now() - std::chrono::milliseconds(5);
  const util::CancelToken t = util::CancelToken::with_deadline(past);
  EXPECT_TRUE(t.expired());
  try {
    t.check();
    FAIL() << "expired token must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTimeout);
  }
}

}  // namespace
}  // namespace amrvis
