// TileCache contract suite (the caching layer of the concurrent query
// service): the byte budget is never exceeded at any point in time, N
// concurrent readers of one key decode it exactly once (per-entry
// once-flag), a decode that throws poisons nobody — the exception reaches
// every waiter and the next call retries fresh — and the AmrTileCache
// binding carries the per-patch sizing invariant by construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "compress/amr_compress.hpp"
#include "compress/compressor.hpp"
#include "compress/tile_cache.hpp"
#include "sim/fields.hpp"
#include "sim/tagging.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace amrvis::compress {
namespace {

/// Bytes of one s-shaped decoded tile.
std::size_t tile_bytes(Shape3 s) {
  return static_cast<std::size_t>(s.size()) * sizeof(double);
}

/// A decode producing an 8x8x8 tile whose cells encode `tag`.
TileCache::Decode make_decode(double tag,
                              std::atomic<int>* count = nullptr) {
  return [tag, count] {
    if (count != nullptr) count->fetch_add(1);
    Array3<double> data({8, 8, 8});
    for (std::int64_t f = 0; f < data.size(); ++f)
      data[f] = tag + static_cast<double>(f);
    return data;
  };
}

TEST(TileCache, HitFlagSplitsDecodeWorkFromReuse) {
  TileCache cache(TileCache::kUnbounded);
  const std::uint64_t c = TileCache::new_container_id();
  bool hit = true;
  auto a = cache.get_or_decode(c, 0, make_decode(1.0), &hit);
  EXPECT_FALSE(hit);  // this call ran the decode
  auto b = cache.get_or_decode(c, 0, make_decode(2.0), &hit);
  EXPECT_TRUE(hit);
  // Served the FIRST decode's value; the second lambda never ran.
  EXPECT_EQ((*b)(0, 0, 0), 1.0);
  EXPECT_EQ(a.get(), b.get());
  const auto ctr = cache.counters();
  EXPECT_EQ(ctr.hits, 1);
  EXPECT_EQ(ctr.misses, 1);
  EXPECT_EQ(ctr.entries, 1);
}

TEST(TileCache, ByteBudgetNeverExceededUnderRandomWorkload) {
  // Property test: across a randomized get/reuse workload the retained
  // bytes NEVER exceed the budget — not just at rest, at every step.
  const std::size_t one = tile_bytes({8, 8, 8});
  TileCache cache(3 * one + one / 2);  // room for 3 tiles, not 4
  const std::uint64_t c1 = TileCache::new_container_id();
  const std::uint64_t c2 = TileCache::new_container_id();
  Rng rng(0xC0FFEE);
  std::atomic<int> decodes{0};
  for (int step = 0; step < 500; ++step) {
    const std::uint64_t c = (rng.next_u64() & 1) != 0 ? c1 : c2;
    const auto tile = static_cast<std::int64_t>(rng.next_u64() % 12);
    const auto v = cache.get_or_decode(
        c, tile, make_decode(static_cast<double>(tile), &decodes));
    ASSERT_EQ((*v)(0, 0, 0), static_cast<double>(tile));
    const auto ctr = cache.counters();
    ASSERT_LE(ctr.bytes, cache.byte_budget()) << "step " << step;
    ASSERT_LE(ctr.peak_bytes, cache.byte_budget());
    ASSERT_LE(ctr.entries, 3);
  }
  const auto ctr = cache.counters();
  EXPECT_EQ(ctr.misses, decodes.load());
  EXPECT_GT(ctr.evictions, 0);  // 24 keys through a 3-slot budget
  EXPECT_GT(ctr.hits, 0);
}

TEST(TileCache, ConcurrentReadersDecodeExactlyOnce) {
  TileCache cache(TileCache::kUnbounded);
  const std::uint64_t c = TileCache::new_container_id();
  constexpr int kReaders = 8;
  std::atomic<int> decodes{0};
  std::atomic<int> ready{0};
  std::vector<std::thread> readers;
  std::vector<double> seen(kReaders, 0.0);
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r)
    readers.emplace_back([&, r] {
      ready.fetch_add(1);
      while (ready.load() < kReaders) std::this_thread::yield();
      const auto v = cache.get_or_decode(c, 7, [&] {
        decodes.fetch_add(1);
        // Widen the in-flight window so waiters really overlap.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return make_decode(7.0)();
      });
      seen[static_cast<std::size_t>(r)] = (*v)(0, 0, 0);
    });
  for (auto& t : readers) t.join();
  EXPECT_EQ(decodes.load(), 1);  // the once-flag contract
  for (double v : seen) EXPECT_EQ(v, 7.0);
  const auto ctr = cache.counters();
  EXPECT_EQ(ctr.misses, 1);
  EXPECT_EQ(ctr.hits, kReaders - 1);
}

TEST(TileCache, ThrowingDecodeReachesAllWaitersThenRetriesFresh) {
  TileCache cache(TileCache::kUnbounded);
  const std::uint64_t c = TileCache::new_container_id();
  constexpr int kReaders = 6;
  std::atomic<int> attempts{0};
  std::atomic<int> failures{0};
  std::atomic<int> ready{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r)
    readers.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kReaders) std::this_thread::yield();
      try {
        cache.get_or_decode(c, 3, [&]() -> Array3<double> {
          attempts.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          throw Error("decode boom");
        });
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  for (auto& t : readers) t.join();
  // One in-flight decode threw; the decoding caller AND every waiter on
  // that entry saw the exception. Late callers may have retried (each
  // retry throws again), so attempts >= 1 and failures == kReaders.
  EXPECT_GE(attempts.load(), 1);
  EXPECT_EQ(failures.load(), kReaders);
  EXPECT_GE(cache.counters().failed_decodes, 1);

  // The failure was not cached: a later call decodes fresh and succeeds.
  bool hit = true;
  const auto v = cache.get_or_decode(c, 3, make_decode(3.5), &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ((*v)(0, 0, 0), 3.5);
}

TEST(TileCache, OversizedValueBypassesRetention) {
  const std::size_t one = tile_bytes({8, 8, 8});
  TileCache cache(one / 2);  // smaller than any decoded tile
  const std::uint64_t c = TileCache::new_container_id();
  const auto v = cache.get_or_decode(c, 0, make_decode(9.0));
  EXPECT_EQ((*v)(0, 0, 0), 9.0);  // the value is served...
  const auto ctr = cache.counters();
  EXPECT_EQ(ctr.bypasses, 1);  // ...but never retained
  EXPECT_EQ(ctr.bytes, 0u);
  EXPECT_EQ(ctr.entries, 0);
}

TEST(TileCache, EvictsLeastRecentlyUsedFirst) {
  const std::size_t one = tile_bytes({8, 8, 8});
  TileCache cache(2 * one);  // two slots
  const std::uint64_t c = TileCache::new_container_id();
  std::atomic<int> decodes{0};
  cache.get_or_decode(c, 0, make_decode(0.0, &decodes));  // A
  cache.get_or_decode(c, 1, make_decode(1.0, &decodes));  // B
  cache.get_or_decode(c, 0, make_decode(0.0, &decodes));  // touch A
  cache.get_or_decode(c, 2, make_decode(2.0, &decodes));  // C evicts B
  EXPECT_EQ(decodes.load(), 3);
  bool hit = false;
  cache.get_or_decode(c, 0, make_decode(0.0, &decodes), &hit);
  EXPECT_TRUE(hit);  // A survived (recently used)
  cache.get_or_decode(c, 1, make_decode(1.0, &decodes), &hit);
  EXPECT_FALSE(hit);  // B was the LRU victim
}

TEST(TileCache, InvalidateDropsOneContainerOnly) {
  TileCache cache(TileCache::kUnbounded);
  const std::uint64_t c1 = TileCache::new_container_id();
  const std::uint64_t c2 = TileCache::new_container_id();
  cache.get_or_decode(c1, 0, make_decode(1.0));
  cache.get_or_decode(c2, 0, make_decode(2.0));
  cache.invalidate(c1);
  bool hit = true;
  cache.get_or_decode(c1, 0, make_decode(1.0), &hit);
  EXPECT_FALSE(hit);  // c1 redecodes
  cache.get_or_decode(c2, 0, make_decode(2.0), &hit);
  EXPECT_TRUE(hit);  // c2 untouched
}

TEST(TileCache, ClearResetsRetention) {
  TileCache cache(TileCache::kUnbounded);
  const std::uint64_t c = TileCache::new_container_id();
  cache.get_or_decode(c, 0, make_decode(1.0));
  cache.clear();
  const auto ctr = cache.counters();
  EXPECT_EQ(ctr.bytes, 0u);
  EXPECT_EQ(ctr.entries, 0);
}

TEST(TileCache, QuarantineRefusesExplicitlyAndUnquarantineResets) {
  TileCache cache(TileCache::kUnbounded);
  const std::uint64_t c = TileCache::new_container_id();

  // A failed decode is counted per slot but NEVER auto-quarantines:
  // retry-fresh stays the default (the circuit breaker decides).
  for (int attempt = 0; attempt < 2; ++attempt) {
    EXPECT_THROW(cache.get_or_decode(c, 4,
                                     []() -> Array3<double> {
                                       throw Error(ErrorCode::kDecodeFailure,
                                                   "decode boom");
                                     }),
                 Error);
  }
  EXPECT_EQ(cache.failure_count(c, 4), 2);
  EXPECT_FALSE(cache.is_quarantined(c, 4));

  // Explicit quarantine: the slot refuses with the typed error before
  // running any decode, and the refusal is counted.
  cache.quarantine(c, 4);
  EXPECT_TRUE(cache.is_quarantined(c, 4));
  std::atomic<int> decodes{0};
  try {
    cache.get_or_decode(c, 4, make_decode(4.0, &decodes));
    FAIL() << "a quarantined slot must refuse";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kQuarantined);
  }
  EXPECT_EQ(decodes.load(), 0);  // never decoded, never blocked a waiter
  EXPECT_EQ(cache.counters().quarantine_refusals, 1);

  // Sibling slots of the same container stay servable.
  EXPECT_NO_THROW(cache.get_or_decode(c, 5, make_decode(5.0)));

  // Lifting the quarantine also resets the slot's failure count, and the
  // slot serves again.
  cache.unquarantine(c);
  EXPECT_FALSE(cache.is_quarantined(c, 4));
  EXPECT_EQ(cache.failure_count(c, 4), 0);
  bool hit = true;
  const auto v = cache.get_or_decode(c, 4, make_decode(4.0, &decodes), &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ((*v)(0, 0, 0), 4.0);
}

TEST(AmrTileCacheBinding, RefIsSizedByConstructionAndBoundsChecked) {
  Array3<double> field = sim::nyx_like_density({32, 32, 32});
  sim::TaggingSpec spec;
  spec.fine_fraction = 0.3;
  spec.block = 4;
  spec.max_grid_size = 16;
  const sim::SyntheticDataset ds =
      sim::build_two_level_hierarchy(std::move(field), spec);
  const auto codec = make_compressor("sz-lr");
  const AmrCompressed compressed = compress_hierarchy(
      ds.hierarchy, *codec, 1e-3, RedundantHandling::kKeep);

  TileCache store(TileCache::kUnbounded);
  const AmrTileCache binding(store, compressed);
  // Every (level, patch) of the hierarchy has a handle, each distinct.
  std::vector<std::uint64_t> ids;
  for (std::size_t l = 0; l < compressed.levels.size(); ++l)
    for (std::size_t p = 0; p < compressed.levels[l].patches.size(); ++p) {
      const TileCacheRef ref = binding.ref(static_cast<int>(l), p);
      EXPECT_EQ(ref.cache, &store);
      ids.push_back(ref.container);
    }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());

  // The old ad-hoc plain-cache required every consumer to re-check its
  // size; the binding rejects out-of-range addressing at the source.
  EXPECT_THROW(binding.ref(-1, 0), Error);
  EXPECT_THROW(binding.ref(static_cast<int>(compressed.levels.size()), 0),
               Error);
  EXPECT_THROW(binding.ref(0, compressed.levels[0].patches.size()), Error);
}

}  // namespace
}  // namespace amrvis::compress
