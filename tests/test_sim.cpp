// Tests for the synthetic data generators and AMR tagging: statistical
// sanity of the fields, determinism, coverage calibration against the
// paper's Table 1 densities, and clustering correctness.

#include <gtest/gtest.h>

#include <cmath>

#include "amr/sampling.hpp"
#include "sim/advection.hpp"
#include "sim/fields.hpp"
#include "sim/grf.hpp"
#include "sim/tagging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace amrvis::sim {
namespace {

TEST(Grf, ZeroMeanUnitVariance) {
  GrfSpec spec;
  spec.seed = 9;
  const Array3<double> f = gaussian_random_field({32, 32, 32}, spec);
  EXPECT_NEAR(mean(f.span()), 0.0, 1e-12);
  EXPECT_NEAR(variance(f.span()), 1.0, 1e-9);
}

TEST(Grf, Deterministic) {
  GrfSpec spec;
  spec.seed = 33;
  const Array3<double> a = gaussian_random_field({16, 16, 16}, spec);
  const Array3<double> b = gaussian_random_field({16, 16, 16}, spec);
  EXPECT_DOUBLE_EQ(max_abs_diff(a.span(), b.span()), 0.0);
}

TEST(Grf, SeedChangesField) {
  GrfSpec a_spec, b_spec;
  a_spec.seed = 1;
  b_spec.seed = 2;
  const Array3<double> a = gaussian_random_field({16, 16, 16}, a_spec);
  const Array3<double> b = gaussian_random_field({16, 16, 16}, b_spec);
  EXPECT_GT(max_abs_diff(a.span(), b.span()), 0.1);
}

TEST(Grf, SpectralIndexControlsSmoothness) {
  // Steeper spectrum => smoother field => smaller mean |gradient|.
  GrfSpec steep, shallow;
  steep.spectral_index = 4.0;
  shallow.spectral_index = 1.0;
  steep.seed = shallow.seed = 5;
  const Array3<double> fs = gaussian_random_field({32, 32, 32}, steep);
  const Array3<double> fh = gaussian_random_field({32, 32, 32}, shallow);
  auto mean_grad = [](const Array3<double>& f) {
    double g = 0;
    std::int64_t n = 0;
    for (std::int64_t k = 0; k < 32; ++k)
      for (std::int64_t j = 0; j < 32; ++j)
        for (std::int64_t i = 0; i + 1 < 32; ++i, ++n)
          g += std::abs(f(i + 1, j, k) - f(i, j, k));
    return g / static_cast<double>(n);
  };
  EXPECT_LT(mean_grad(fs), mean_grad(fh));
}

TEST(Grf, NonPow2Throws) {
  EXPECT_THROW(gaussian_random_field({12, 16, 16}, {}), Error);
}

TEST(NyxField, PositiveAndSkewed) {
  const Array3<double> rho = nyx_like_density({32, 32, 32});
  MinMax mm = min_max(rho.span());
  EXPECT_GT(mm.min, 0.0);
  // Lognormal + halos: max far above the mean (clumpy).
  EXPECT_GT(mm.max, 10.0 * mean(rho.span()));
}

TEST(NyxField, Deterministic) {
  const Array3<double> a = nyx_like_density({16, 16, 16});
  const Array3<double> b = nyx_like_density({16, 16, 16});
  EXPECT_DOUBLE_EQ(max_abs_diff(a.span(), b.span()), 0.0);
}

TEST(WarpXField, PulseLocalizedAndSigned) {
  WarpXLikeSpec spec;
  spec.noise_amplitude = 0.0;
  const Shape3 s{32, 32, 256};
  const Array3<double> ez = warpx_like_ez(s, spec);
  const MinMax mm = min_max(ez.span());
  EXPECT_LT(mm.min, -0.2);
  EXPECT_GT(mm.max, 0.2);
  // Peak |Ez| near the pulse center plane, small far ahead of it.
  const auto z0 = static_cast<std::int64_t>(spec.pulse_center_z * 256);
  double near_max = 0, ahead_max = 0;
  for (std::int64_t j = 0; j < s.ny; ++j)
    for (std::int64_t i = 0; i < s.nx; ++i) {
      near_max = std::max(near_max, std::abs(ez(i, j, z0)));
      ahead_max = std::max(ahead_max, std::abs(ez(i, j, 250)));
    }
  EXPECT_GT(near_max, 5.0 * ahead_max);
}

TEST(WarpXField, SmootherThanNyx) {
  // The paper picked these two applications for their contrast: WarpX
  // smooth, Nyx irregular. "Smooth" in the compression-relevant sense is
  // local predictability: the energy of the second difference relative
  // to the field's variance (scale-invariant, unlike a range-normalized
  // gradient which the Nyx halos' huge range would wash out).
  WarpXLikeSpec wspec;
  wspec.noise_amplitude = 0;
  const Array3<double> ez = warpx_like_ez({32, 32, 128}, wspec);
  const Array3<double> rho = nyx_like_density({32, 32, 32});
  auto curvature = [](const Array3<double>& f) {
    const Shape3 s = f.shape();
    double g = 0;
    std::int64_t n = 0;
    for (std::int64_t k = 0; k < s.nz; ++k)
      for (std::int64_t j = 0; j < s.ny; ++j)
        for (std::int64_t i = 1; i + 1 < s.nx; ++i, ++n) {
          const double d2 = f(i + 1, j, k) - 2.0 * f(i, j, k) +
                            f(i - 1, j, k);
          g += d2 * d2;
        }
    return g / static_cast<double>(n) / variance(f.span());
  };
  EXPECT_LT(curvature(ez), curvature(rho));
}

TEST(BlockScores, MaxValueCriterion) {
  Array3<double> f({16, 16, 16}, 0.0);
  f(3, 3, 3) = 9.0;    // block (0,0,0)
  f(12, 12, 12) = 5.0; // block (1,1,1)
  const Array3<double> scores =
      block_scores(f, RefineCriterion::kMaxValue, 8);
  EXPECT_EQ(scores.shape(), (Shape3{2, 2, 2}));
  EXPECT_DOUBLE_EQ(scores(0, 0, 0), 9.0);
  EXPECT_DOUBLE_EQ(scores(1, 1, 1), 5.0);
  EXPECT_DOUBLE_EQ(scores(1, 0, 0), 0.0);
}

TEST(BlockScores, GradientCriterionFlatIsZero) {
  Array3<double> f({8, 8, 8}, 4.0);
  const Array3<double> scores =
      block_scores(f, RefineCriterion::kGradient, 4);
  for (std::int64_t i = 0; i < scores.size(); ++i)
    EXPECT_DOUBLE_EQ(scores[i], 0.0);
}

TEST(ClusterTags, SingleBlock) {
  Array3<std::uint8_t> tags({4, 4, 4}, 0);
  tags(1, 2, 3) = 1;
  const auto boxes = cluster_tags(tags);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0], amr::Box(amr::IntVect{1, 2, 3}, amr::IntVect{1, 2, 3}));
}

TEST(ClusterTags, MergesRectangles) {
  Array3<std::uint8_t> tags({4, 4, 4}, 0);
  for (std::int64_t k = 1; k <= 2; ++k)
    for (std::int64_t j = 0; j <= 3; ++j)
      for (std::int64_t i = 2; i <= 3; ++i) tags(i, j, k) = 1;
  const auto boxes = cluster_tags(tags);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0],
            amr::Box(amr::IntVect{2, 0, 1}, amr::IntVect{3, 3, 2}));
}

TEST(ClusterTags, CoversExactlyTheTags) {
  Rng rng(41);
  Array3<std::uint8_t> tags({6, 5, 4}, 0);
  for (std::int64_t i = 0; i < tags.size(); ++i)
    tags[i] = rng.next_double() < 0.3 ? 1 : 0;
  const auto boxes = cluster_tags(tags);
  // Paint the boxes and compare against the tags exactly.
  Array3<std::uint8_t> painted({6, 5, 4}, 0);
  std::int64_t box_cells = 0;
  for (const auto& b : boxes) {
    box_cells += b.num_cells();
    for (std::int64_t k = b.lo().z; k <= b.hi().z; ++k)
      for (std::int64_t j = b.lo().y; j <= b.hi().y; ++j)
        for (std::int64_t i = b.lo().x; i <= b.hi().x; ++i)
          painted(i, j, k) = 1;
  }
  std::int64_t tag_cells = 0;
  for (std::int64_t i = 0; i < tags.size(); ++i) {
    tag_cells += tags[i];
    EXPECT_EQ(painted[i], tags[i]);
  }
  EXPECT_EQ(box_cells, tag_cells);  // boxes are disjoint and exact
}

class HierarchyCoverage
    : public ::testing::TestWithParam<std::pair<const char*, double>> {};

TEST_P(HierarchyCoverage, HitsTargetFineFraction) {
  const auto [kind, target] = GetParam();
  Array3<double> field = std::string(kind) == "nyx"
                             ? nyx_like_density({64, 64, 64})
                             : warpx_like_ez({32, 32, 128});
  TaggingSpec spec;
  spec.criterion = std::string(kind) == "nyx"
                       ? RefineCriterion::kMaxValue
                       : RefineCriterion::kMaxAbsValue;
  spec.fine_fraction = target;
  spec.block = 4;
  const SyntheticDataset ds = build_two_level_hierarchy(std::move(field),
                                                        spec);
  const auto stats = ds.hierarchy.level_stats();
  // Post-dilation calibration: within one block quantum of the target.
  EXPECT_NEAR(stats[1].density, target, 0.06);
  EXPECT_NEAR(stats[0].density + stats[1].density, 1.0, 1e-12);
  // Patch-based AMR invariants.
  EXPECT_TRUE(ds.hierarchy.level(1).box_array.is_disjoint());
}

INSTANTIATE_TEST_SUITE_P(
    Targets, HierarchyCoverage,
    ::testing::Values(std::pair{"nyx", 0.407}, std::pair{"nyx", 0.2},
                      std::pair{"warpx", 0.086}, std::pair{"warpx", 0.3}));

TEST(Hierarchy2Level, FineDataMatchesTruth) {
  Array3<double> field = nyx_like_density({32, 32, 32});
  const Array3<double> truth = field;
  TaggingSpec spec;
  spec.fine_fraction = 0.3;
  spec.block = 4;
  const SyntheticDataset ds =
      build_two_level_hierarchy(std::move(field), spec);
  for (const auto& fab : ds.hierarchy.level(1).fabs) {
    const amr::Box& b = fab.box();
    for (std::int64_t k = b.lo().z; k <= b.hi().z; ++k)
      for (std::int64_t j = b.lo().y; j <= b.hi().y; ++j)
        for (std::int64_t i = b.lo().x; i <= b.hi().x; ++i)
          EXPECT_DOUBLE_EQ(fab.at({i, j, k}), truth(i, j, k));
  }
}

TEST(Hierarchy2Level, CoarseIsConservativeAverage) {
  Array3<double> field = nyx_like_density({32, 32, 32});
  const Array3<double> truth = field;
  TaggingSpec spec;
  spec.fine_fraction = 0.3;
  spec.block = 4;
  const SyntheticDataset ds =
      build_two_level_hierarchy(std::move(field), spec);
  const Array3<double> expected = amr::coarsen_average(truth.view(), 2);
  for (const auto& fab : ds.hierarchy.level(0).fabs) {
    const amr::Box& b = fab.box();
    for (std::int64_t k = b.lo().z; k <= b.hi().z; ++k)
      for (std::int64_t j = b.lo().y; j <= b.hi().y; ++j)
        for (std::int64_t i = b.lo().x; i <= b.hi().x; ++i)
          EXPECT_NEAR(fab.at({i, j, k}), expected(i, j, k), 1e-12);
  }
}

TEST(Hierarchy2Level, MaxGridSizeRespected) {
  Array3<double> field = nyx_like_density({64, 64, 64});
  TaggingSpec spec;
  spec.fine_fraction = 0.5;
  spec.block = 4;
  spec.max_grid_size = 16;
  const SyntheticDataset ds =
      build_two_level_hierarchy(std::move(field), spec);
  for (int l = 0; l < 2; ++l)
    for (const auto& b : ds.hierarchy.level(l).box_array) {
      EXPECT_LE(b.size().x, 16);
      EXPECT_LE(b.size().y, 16);
      EXPECT_LE(b.size().z, 16);
    }
}

TEST(Advection, PeriodicMassConservedWithoutDiffusionLoss) {
  Array3<double> f({16, 16, 16});
  Rng rng(3);
  for (std::int64_t i = 0; i < f.size(); ++i)
    f[i] = rng.next_double();
  double before = 0;
  for (std::int64_t i = 0; i < f.size(); ++i) before += f[i];
  AdvectionSpec spec;
  advect_diffuse(f, spec, 10);
  double after = 0;
  for (std::int64_t i = 0; i < f.size(); ++i) after += f[i];
  EXPECT_NEAR(before, after, 1e-8 * std::abs(before));
}

TEST(Advection, TransportsPeak) {
  Array3<double> f({32, 4, 4}, 0.0);
  f(4, 2, 2) = 1.0;
  AdvectionSpec spec;
  spec.vx = 0.9;
  spec.vy = spec.vz = 0.0;
  spec.diffusion = 0.0;
  advect_diffuse(f, spec, 10);
  // Peak should have moved ~9 cells in +x (upwind diffusion spreads it).
  std::int64_t argmax = 0;
  double best = -1;
  for (std::int64_t i = 0; i < 32; ++i)
    if (f(i, 2, 2) > best) {
      best = f(i, 2, 2);
      argmax = i;
    }
  EXPECT_GT(argmax, 8);
  EXPECT_LT(argmax, 18);
}

TEST(Advection, RejectsUnstableParameters) {
  Array3<double> f({8, 8, 8}, 0.0);
  AdvectionSpec bad;
  bad.vx = 1.5;
  EXPECT_THROW(advect_diffuse(f, bad, 1), Error);
  AdvectionSpec bad2;
  bad2.diffusion = 0.5;
  EXPECT_THROW(advect_diffuse(f, bad2, 1), Error);
}

}  // namespace
}  // namespace amrvis::sim
