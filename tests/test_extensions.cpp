// Tests for the extension modules: the 2-D stitching mesh (paper Fig. 8
// lower path), the zMesh-style 1-D baseline (paper §1 critique), and the
// CSV emission.

#include <gtest/gtest.h>

#include <cmath>

#include "compress/compressor.hpp"
#include "compress/amr_compress.hpp"
#include "compress/zmesh_like.hpp"
#include "metrics/csv.hpp"
#include "sim/fields.hpp"
#include "sim/tagging.hpp"
#include "util/bytestream.hpp"
#include "util/stats.hpp"
#include "vis/stitch2d.hpp"

namespace amrvis {
namespace {

double diag_ramp(double x, double y) { return x + 0.37 * y - 14.2; }

double radial(double x, double y) {
  const double dx = x - 20.0, dy = y - 16.0;
  return 12.0 - std::sqrt(dx * dx + dy * dy);
}

TEST(Stitch2d, SamplerShapes) {
  const vis::TwoLevel2d data = vis::sample_two_level_2d(16, 16, 6,
                                                        diag_ramp);
  EXPECT_EQ(data.coarse.shape(), (Shape3{16, 16, 1}));
  EXPECT_EQ(data.fine.shape(), (Shape3{12, 32, 1}));
  // Fine and coarse sample the same function: a coarse cell equals the
  // function at its center.
  EXPECT_NEAR(data.coarse(3, 4, 0), diag_ramp(7.0, 9.0), 1e-12);
  EXPECT_NEAR(data.fine(3, 4, 0), diag_ramp(3.5, 4.5), 1e-12);
}

TEST(Stitch2d, GapWithoutStitchClosedWithIt) {
  // A contour crossing the level interface dangles without the
  // stitching strip and connects with it — the Fig. 8 behaviour.
  const vis::TwoLevel2d data = vis::sample_two_level_2d(16, 16, 6,
                                                        diag_ramp);
  const auto gap = vis::stitch_contour_2d(data, 0.0, false);
  const auto stitched = vis::stitch_contour_2d(data, 0.0, true);
  EXPECT_GT(gap.dangling_endpoints, 0);
  EXPECT_EQ(stitched.dangling_endpoints, 0);
  EXPECT_TRUE(gap.stitch_segments.empty());
  EXPECT_FALSE(stitched.stitch_segments.empty());
  // Coarse and fine contours identical in both runs.
  EXPECT_EQ(gap.coarse_segments.size(), stitched.coarse_segments.size());
  EXPECT_EQ(gap.fine_segments.size(), stitched.fine_segments.size());
}

TEST(Stitch2d, RadialContourAlsoCloses) {
  const vis::TwoLevel2d data = vis::sample_two_level_2d(16, 16, 8, radial);
  const auto gap = vis::stitch_contour_2d(data, 0.0, false);
  const auto stitched = vis::stitch_contour_2d(data, 0.0, true);
  EXPECT_GT(gap.dangling_endpoints, 0);
  EXPECT_EQ(stitched.dangling_endpoints, 0);
}

TEST(Stitch2d, NoCrossingNoDangling) {
  // Contour entirely inside the fine region: nothing dangles either way.
  auto left_blob = [](double x, double y) {
    const double dx = x - 5.0, dy = y - 16.0;
    return 3.5 - std::sqrt(dx * dx + dy * dy);
  };
  const vis::TwoLevel2d data =
      vis::sample_two_level_2d(16, 16, 8, left_blob);
  const auto gap = vis::stitch_contour_2d(data, 0.0, false);
  EXPECT_EQ(gap.dangling_endpoints, 0);
  EXPECT_TRUE(gap.coarse_segments.empty());
}

TEST(ZmeshBaseline, RoundTripWithinBound) {
  Array3<double> field = sim::nyx_like_density({32, 32, 32});
  sim::TaggingSpec spec;
  spec.fine_fraction = 0.3;
  spec.block = 4;
  const auto ds = sim::build_two_level_hierarchy(std::move(field), spec);
  const auto codec = compress::make_compressor("sz-lr");
  const auto compressed =
      compress::compress_hierarchy_flat1d(ds.hierarchy, *codec, 1e-3);
  const auto back = compress::decompress_flat1d(compressed, *codec);
  ASSERT_EQ(back.size(), 2u);
  // Verify the bound on the flattened arrays.
  for (int l = 0; l < 2; ++l) {
    std::size_t pos = 0;
    for (const auto& fab : ds.hierarchy.level(l).fabs)
      for (const double v : fab.values()) {
        ASSERT_LT(pos, back[static_cast<std::size_t>(l)].size());
        EXPECT_LE(std::abs(v - back[static_cast<std::size_t>(l)][pos++]),
                  compressed.abs_eb * 1.0000001);
      }
  }
}

TEST(ZmeshBaseline, LosesToPerPatch3dCompression) {
  // The paper's critique of zMesh: flattening to 1-D forfeits spatial
  // locality, so 3-D per-patch compression achieves a better ratio at
  // the same bound.
  Array3<double> field = sim::nyx_like_density({64, 64, 64});
  sim::TaggingSpec spec;
  spec.fine_fraction = 0.4;
  spec.block = 8;
  const auto ds = sim::build_two_level_hierarchy(std::move(field), spec);
  const auto codec = compress::make_compressor("sz-lr");
  const double flat_ratio =
      compress::compress_hierarchy_flat1d(ds.hierarchy, *codec, 1e-3)
          .ratio();
  const double patch_ratio =
      compress::compress_hierarchy(ds.hierarchy, *codec, 1e-3,
                                   compress::RedundantHandling::kKeep)
          .ratio();
  EXPECT_GT(patch_ratio, flat_ratio);
}

TEST(Csv, TableFormatting) {
  metrics::CsvTable table({"a", "b"});
  table.add_row(std::vector<std::string>{"x,y", "plain"});
  table.add_row(std::vector<double>{1.5, 2.0});
  const std::string text = table.to_string();
  EXPECT_EQ(text, "a,b\n\"x,y\",plain\n1.5,2\n");
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(Csv, RowWidthMismatchThrows) {
  metrics::CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row(std::vector<std::string>{"only-one"}), Error);
}

TEST(Csv, RdSeriesAndFileRoundTrip) {
  std::vector<metrics::RdPoint> points(2);
  points[0] = {1e-3, 30.0, 65.0, 0.9995};
  points[1] = {1e-2, 60.0, 50.0, 0.99};
  const metrics::CsvTable table = metrics::rd_series_to_csv("sz-lr", points);
  const std::string path = ::testing::TempDir() + "/rd.csv";
  table.write(path);
  const Bytes data = read_file(path);
  const std::string text(data.begin(), data.end());
  EXPECT_NE(text.find("codec,rel_eb,ratio"), std::string::npos);
  EXPECT_NE(text.find("sz-lr,0.001,30"), std::string::npos);
}

}  // namespace
}  // namespace amrvis

// --- plotfile round-trip tests (appended) -----------------------------

#include <filesystem>

#include "compress/plotfile.hpp"

namespace amrvis {
namespace {

sim::SyntheticDataset plotfile_dataset() {
  Array3<double> field = sim::nyx_like_density({32, 32, 32});
  sim::TaggingSpec spec;
  spec.fine_fraction = 0.3;
  spec.block = 4;
  spec.max_grid_size = 16;
  return sim::build_two_level_hierarchy(std::move(field), spec);
}

TEST(Plotfile, RawRoundTripIsExact) {
  const auto ds = plotfile_dataset();
  const std::string dir = ::testing::TempDir() + "/plt_raw";
  std::filesystem::create_directories(dir);
  compress::write_plotfile(dir, ds.hierarchy);
  const amr::AmrHierarchy back = compress::read_plotfile(dir);
  ASSERT_EQ(back.num_levels(), ds.hierarchy.num_levels());
  for (int l = 0; l < back.num_levels(); ++l) {
    ASSERT_EQ(back.level(l).fabs.size(), ds.hierarchy.level(l).fabs.size());
    for (std::size_t p = 0; p < back.level(l).fabs.size(); ++p) {
      EXPECT_EQ(back.level(l).fabs[p].box(),
                ds.hierarchy.level(l).fabs[p].box());
      EXPECT_DOUBLE_EQ(
          max_abs_diff(back.level(l).fabs[p].values(),
                       ds.hierarchy.level(l).fabs[p].values()),
          0.0);
    }
  }
}

TEST(Plotfile, CompressedRoundTripWithinBound) {
  const auto ds = plotfile_dataset();
  const auto codec = compress::make_compressor("sz-lr");
  const double abs_eb = compress::resolve_abs_eb(
      compress::ErrorBoundMode::kRelative, 1e-3,
      ds.hierarchy.level(1).fabs[0].values());
  const std::string dir = ::testing::TempDir() + "/plt_sz";
  std::filesystem::create_directories(dir);
  compress::write_plotfile(dir, ds.hierarchy, codec.get(), abs_eb);
  const amr::AmrHierarchy back = compress::read_plotfile(dir);
  for (int l = 0; l < back.num_levels(); ++l)
    for (std::size_t p = 0; p < back.level(l).fabs.size(); ++p)
      EXPECT_LE(max_abs_diff(back.level(l).fabs[p].values(),
                             ds.hierarchy.level(l).fabs[p].values()),
                abs_eb * 1.0000001);
  // Compressed payload must actually be smaller than raw.
  const auto raw_dir = ::testing::TempDir() + "/plt_raw2";
  std::filesystem::create_directories(raw_dir);
  compress::write_plotfile(raw_dir, ds.hierarchy);
  EXPECT_LT(std::filesystem::file_size(dir + "/level_1.bin"),
            std::filesystem::file_size(raw_dir + "/level_1.bin"));
}

TEST(Plotfile, MissingFileThrows) {
  EXPECT_THROW(compress::read_plotfile(::testing::TempDir() + "/nope"),
               Error);
}

}  // namespace
}  // namespace amrvis