// Integration tests over the full pipeline plus "paper-shape" assertions:
// the qualitative findings of the paper must hold on the synthetic
// datasets (see DESIGN.md §6). These are the repository's reproduction
// contract.

#include <gtest/gtest.h>

#include "compress/compressor.hpp"
#include "core/datasets.hpp"
#include "core/demo1d.hpp"
#include "core/study.hpp"
#include "core/visual_study.hpp"

namespace amrvis::core {
namespace {

/// Small-but-structured dataset variants so the suite stays fast.
DatasetSpec small_nyx() {
  DatasetSpec spec = nyx_spec();
  spec.fine_shape = {64, 64, 64};
  return spec;
}

DatasetSpec small_warpx() {
  DatasetSpec spec = warpx_spec();
  spec.fine_shape = {32, 32, 256};
  return spec;
}

TEST(Datasets, SpecLookup) {
  EXPECT_EQ(dataset_spec("nyx").name, "nyx");
  EXPECT_EQ(dataset_spec("warpx").field, "Ez");
  EXPECT_THROW(dataset_spec("bogus"), Error);
}

TEST(Datasets, PaperDensitiesReproduced) {
  // Table 1: Nyx 59.3/40.7, WarpX 91.4/8.6 (tolerance: tagging quantum).
  {
    const auto ds = make_dataset(nyx_spec());
    const auto stats = ds.hierarchy.level_stats();
    EXPECT_NEAR(stats[0].density, 0.593, 0.05);
    EXPECT_NEAR(stats[1].density, 0.407, 0.05);
  }
  {
    const auto ds = make_dataset(warpx_spec());
    const auto stats = ds.hierarchy.level_stats();
    EXPECT_NEAR(stats[0].density, 0.914, 0.03);
    EXPECT_NEAR(stats[1].density, 0.086, 0.03);
  }
}

TEST(Datasets, PaperGridShapesAtFullScale) {
  const auto nyx = nyx_spec(true);
  EXPECT_EQ(nyx.fine_shape, (Shape3{512, 512, 512}));
  const auto warpx = warpx_spec(true);
  EXPECT_EQ(warpx.fine_shape, (Shape3{256, 256, 2048}));
}

TEST(Datasets, RenderAxisIsShortest) {
  EXPECT_EQ(render_axis(warpx_spec()), 0);
  EXPECT_EQ(render_axis(nyx_spec()), 0);  // cube: first minimal axis
}

TEST(Datasets, IsoValueSelection) {
  const auto spec = small_nyx();
  const auto ds = make_dataset(spec);
  const double iso = pick_iso_value(spec, ds.fine_truth);
  // Quantile-based iso lies strictly inside the value range.
  double lo = ds.fine_truth[0], hi = ds.fine_truth[0];
  for (std::int64_t i = 0; i < ds.fine_truth.size(); ++i) {
    lo = std::min(lo, ds.fine_truth[i]);
    hi = std::max(hi, ds.fine_truth[i]);
  }
  EXPECT_GT(iso, lo);
  EXPECT_LT(iso, hi);
}

TEST(StudyRows, SanityAndMonotonicity) {
  const auto ds = make_dataset(small_nyx());
  const auto codec = compress::make_compressor("sz-lr");
  double prev_ratio = 0.0, prev_psnr = 1e9;
  for (const double eb : {1e-4, 1e-3, 1e-2}) {
    const StudyRow row = run_compression_study(ds, *codec, eb);
    EXPECT_GT(row.ratio, 1.0);
    EXPECT_GT(row.ratio, prev_ratio);      // looser bound -> higher CR
    EXPECT_LT(row.psnr_db, prev_psnr);     // looser bound -> lower PSNR
    EXPECT_GT(row.ssim_value, 0.0);
    EXPECT_LE(row.ssim_value, 1.0);
    prev_ratio = row.ratio;
    prev_psnr = row.psnr_db;
  }
}

TEST(StudyRows, RdSweepMatchesSingleRuns) {
  const auto ds = make_dataset(small_nyx());
  const auto codec = compress::make_compressor("sz-interp");
  const auto points = rate_distortion_sweep(ds, *codec, {1e-3, 1e-2});
  ASSERT_EQ(points.size(), 2u);
  const StudyRow row = run_compression_study(ds, *codec, 1e-3);
  EXPECT_NEAR(points[0].ratio, row.ratio, 1e-9);
  EXPECT_NEAR(points[0].psnr_db, row.psnr_db, 1e-9);
}

// ---------------------------------------------------------------------
// Paper-shape assertions.
// ---------------------------------------------------------------------

TEST(PaperShape, InterpWinsRateDistortionOnSmoothWarpX) {
  // Fig. 12: SZ-Interp gives a higher compression ratio at equal bounds
  // on the smooth field. Run at the spec's default scale — the balance
  // between the codecs is resolution-dependent and the claim is about
  // the evaluation configuration.
  const auto ds = make_dataset(warpx_spec());
  const auto lr = compress::make_compressor("sz-lr");
  const auto itp = compress::make_compressor("sz-interp");
  int wins = 0;
  for (const double eb : {1e-3, 1e-2}) {
    const double cr_lr = run_compression_study(ds, *lr, eb).ratio;
    const double cr_itp = run_compression_study(ds, *itp, eb).ratio;
    if (cr_itp > cr_lr) ++wins;
  }
  EXPECT_EQ(wins, 2);
}

TEST(PaperShape, LrWinsQualityOnIrregularNyxAtLargeBound) {
  // Fig. 13 / §4.2: on the irregular data SZ-L/R yields better quality
  // (higher PSNR / lower R-SSIM) at the paper's headline bound 1e-2.
  const auto ds = make_dataset(nyx_spec());  // default 128^3 scale
  const auto lr = compress::make_compressor("sz-lr");
  const auto itp = compress::make_compressor("sz-interp");
  const StudyRow row_lr = run_compression_study(ds, *lr, 1e-2);
  const StudyRow row_itp = run_compression_study(ds, *itp, 1e-2);
  EXPECT_LT(row_lr.rssim(), row_itp.rssim());
}

TEST(PaperShape, DualCellAmplifiesCompressionArtifacts) {
  // Figs. 9-11: at equal eb, the dual-cell render deviates more from the
  // original-data render than the re-sampling render does — for both
  // codecs, on both datasets.
  for (const auto& spec : {small_nyx(), small_warpx()}) {
    const auto ds = make_dataset(spec);
    const double iso = pick_iso_value(spec, ds.fine_truth);
    VisualStudyOptions options;
    options.axis = render_axis(spec);
    options.image_size = 192;
    for (const char* codec_name : {"sz-lr", "sz-interp"}) {
      const auto codec = compress::make_compressor(codec_name);
      amr::AmrHierarchy decompressed;
      run_compression_study(ds, *codec, 1e-2,
                            compress::RedundantHandling::kMeanFill,
                            &decompressed);
      const auto resampled = run_visual_study(
          ds, decompressed, iso, vis::VisMethod::kResampling, options);
      const auto dual = run_visual_study(
          ds, decompressed, iso, vis::VisMethod::kDualCellSwitching,
          options);
      EXPECT_GT(dual.image_rssim(), resampled.image_rssim())
          << spec.name << " " << codec_name;
    }
  }
}

TEST(PaperShape, VisualDamageGrowsWithErrorBound) {
  const auto spec = small_warpx();
  const auto ds = make_dataset(spec);
  const double iso = pick_iso_value(spec, ds.fine_truth);
  const auto codec = compress::make_compressor("sz-lr");
  VisualStudyOptions options;
  options.axis = render_axis(spec);
  options.image_size = 192;
  double prev = -1.0;
  for (const double eb : {1e-4, 1e-3, 1e-2}) {
    amr::AmrHierarchy decompressed;
    run_compression_study(ds, *codec, eb,
                          compress::RedundantHandling::kMeanFill,
                          &decompressed);
    const auto vr = run_visual_study(ds, decompressed, iso,
                                     vis::VisMethod::kResampling, options);
    EXPECT_GT(vr.image_rssim(), prev);
    prev = vr.image_rssim();
  }
}

TEST(PaperShape, SwitchingCellsBridgeDualGapOnOriginalData) {
  // Fig. 1: on original (uncompressed) data, dual-cell+switch closes the
  // inter-level gap that plain dual-cell leaves.
  const auto spec = small_warpx();
  const auto ds = make_dataset(spec);
  const double iso = pick_iso_value(spec, ds.fine_truth);
  VisualStudyOptions options;
  options.axis = render_axis(spec);
  const auto plain = run_original_visual_census(
      ds, iso, vis::VisMethod::kDualCell, options);
  const auto switched = run_original_visual_census(
      ds, iso, vis::VisMethod::kDualCellSwitching, options);
  ASSERT_GT(plain.original_cracks.edges_measured, 0);
  ASSERT_GT(switched.original_cracks.edges_measured, 0);
  EXPECT_LT(switched.original_cracks.mean_gap,
            plain.original_cracks.mean_gap);
}

TEST(Demo1d, ResamplingSmoothsBlockArtifacts) {
  // Fig. 14 in both synthetic and real-codec form.
  const Demo1dResult synthetic = run_demo1d(9, 3);
  EXPECT_LT(synthetic.resampled_artifact_energy,
            synthetic.dual_artifact_energy);
  const Demo1dResult real = run_demo1d_real_codec(96, 0.1);
  EXPECT_LT(real.resampled_artifact_energy, real.dual_artifact_energy);
}

TEST(Demo1d, StaircaseMatchesPaperExample) {
  const Demo1dResult r = run_demo1d(9, 3);
  // Decompressed = 000 333 666 staircase of the 0..8 ramp.
  ASSERT_EQ(r.decompressed.size(), 9u);
  EXPECT_DOUBLE_EQ(r.decompressed[0], 0.0);
  EXPECT_DOUBLE_EQ(r.decompressed[2], 0.0);
  EXPECT_DOUBLE_EQ(r.decompressed[3], 3.0);
  EXPECT_DOUBLE_EQ(r.decompressed[8], 6.0);
  // Re-sampled vertex between blocks is the midpoint (1.5, 4.5, ...).
  EXPECT_DOUBLE_EQ(r.resampled[3], 1.5);
  EXPECT_DOUBLE_EQ(r.resampled[6], 4.5);
}

TEST(VisualStudy, OriginalVsItselfIsPerfect) {
  const auto spec = small_nyx();
  const auto ds = make_dataset(spec);
  const double iso = pick_iso_value(spec, ds.fine_truth);
  VisualStudyOptions options;
  options.axis = render_axis(spec);
  options.image_size = 128;
  const auto r = run_visual_study(ds, ds.hierarchy, iso,
                                  vis::VisMethod::kResampling, options);
  EXPECT_NEAR(r.image_rssim(), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.area_deviation(), 0.0);
  EXPECT_EQ(r.original_triangles, r.decompressed_triangles);
}

}  // namespace
}  // namespace amrvis::core
