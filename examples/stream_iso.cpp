// Streaming out-of-core isosurface: extract a surface from a COMPRESSED
// hierarchy without ever inflating it whole.
//
// The pipeline demonstrated here:
//   1. build a WarpX-like field and wrap it as a (single-level) AMR
//      hierarchy, compressed patch-by-patch into tiled v3 containers;
//   2. amr_isosurface_streamed() sweeps the hierarchy in z-slabs,
//      decoding — one tile at a time, through compress::TileStream —
//      only the tiles whose face-aware value ranges can touch the
//      isovalue, and contours them into the exact mesh the full-inflate
//      pipeline would produce;
//   3. the stats show how little was decoded and held live.
//
// Also shown: iterating raw tiles with TileStream directly (the
// compress-layer primitive the vis path is built on).
//
//   ./build/examples/stream_iso [out.obj]

#include <cstdio>

#include "compress/amr_compress.hpp"
#include "compress/compressor.hpp"
#include "compress/tile_stream.hpp"
#include "core/datasets.hpp"
#include "vis/amr_iso.hpp"

using namespace amrvis;

int main(int argc, char** argv) {
  // A 64x64x128 WarpX-like Ez pulse, one whole-domain patch.
  const Shape3 shape{64, 64, 128};
  Array3<double> field = core::uniform_truth_field("warpx", shape);
  const double iso =
      core::pick_iso_value(core::dataset_spec("warpx"), field);

  amr::AmrHierarchy hier(2);
  amr::AmrLevel l0;
  l0.domain = amr::Box::from_shape(shape);
  amr::FArrayBox fab(l0.domain);
  std::copy(field.span().begin(), field.span().end(),
            fab.values().begin());
  l0.box_array.push_back(l0.domain);
  l0.fabs.push_back(std::move(fab));
  hier.add_level(std::move(l0));

  // Compress with 8^3 tiles so the value cull has real granularity.
  const auto codec = compress::make_compressor("sz-lr");
  compress::AmrChunkPolicy policy;
  policy.oversized_patch_cells = 1;
  policy.tile = compress::ChunkShape{8, 8, 8};
  const compress::AmrCompressed compressed = compress_hierarchy(
      hier, *codec, 1e-3, compress::RedundantHandling::kKeep, policy);
  std::printf("compressed %lld cells -> %zu bytes (ratio %.1f)\n",
              static_cast<long long>(compressed.original_cells),
              compressed.compressed_bytes(), compressed.ratio());

  // Streamed isosurface: never holds more than a couple of z-slabs.
  vis::StreamedIsoOptions opt;
  opt.slab_nz = policy.tile.nz;
  vis::StreamedIsoStats stats;
  const vis::TriMesh mesh = vis::amr_isosurface_streamed(
      compressed, *codec, iso, vis::VisMethod::kResampling, opt, &stats);
  std::printf("isosurface at %.4g: %zu triangles\n", iso,
              mesh.num_triangles());
  std::printf("decoded %lld of %lld tiles (%.1f%% saved), %lld of %lld "
              "slabs, peak live %.2f MB vs %.2f MB full raster\n",
              static_cast<long long>(stats.tiles_decoded),
              static_cast<long long>(stats.tiles_total),
              100.0 * (1.0 - static_cast<double>(stats.tiles_decoded) /
                                 static_cast<double>(stats.tiles_total)),
              static_cast<long long>(stats.slabs_decoded),
              static_cast<long long>(stats.slabs_total),
              static_cast<double>(stats.peak_live_bytes) / 1e6,
              static_cast<double>(shape.size()) * sizeof(double) / 1e6);

  // The compress-layer primitive underneath: walk the tiles of one patch
  // blob near the isovalue, one decoded buffer at a time. (A non-owning
  // ChunkedCompressor view is how the AMR layer reads tiled patch blobs;
  // make_compressor("chunked-sz-lr@8x8x8") builds the owning form.)
  const compress::ChunkedCompressor view(*codec, policy.tile);
  compress::TileStreamOptions so;
  so.order = compress::TileStreamOptions::Order::kValueBand;
  so.band_lo = so.band_hi = iso;
  so.band_widen = compressed.abs_eb;
  compress::TileStream stream(view, compressed.levels[0].patches[0].blob,
                              so);
  std::int64_t n = 0;
  double lo = 0, hi = 0;
  while (auto tile = stream.next()) {
    if (n == 0) {
      lo = tile->stats.min;
      hi = tile->stats.max;
    }
    ++n;
  }
  std::printf("TileStream: %lld of %lld tiles straddle the isovalue "
              "(first range [%.3g, %.3g]); peak live tiles %d (<= 2)\n",
              static_cast<long long>(n),
              static_cast<long long>(stream.tiles_total()), lo, hi,
              stream.peak_live_tiles());

  if (argc > 1) {
    mesh.write_obj(argv[1]);
    std::printf("wrote %s\n", argv[1]);
  }
  return 0;
}
