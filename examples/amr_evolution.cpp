// AMR grid evolution over time (paper Fig. 2): advect the truth field,
// re-tag after each interval, and report how the grid structure follows
// the features — optionally compressing each snapshot in situ (the
// AMRIC-style usage the paper's introduction motivates).
//
//   ./amr_evolution [--steps 4] [--size 64] [--eb 1e-3]

#include <cstdio>

#include "compress/compressor.hpp"
#include "core/datasets.hpp"
#include "core/study.hpp"
#include "sim/advection.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace amrvis;

  Cli cli;
  cli.add_flag("steps", "4", "number of regrid snapshots");
  cli.add_flag("size", "64", "fine-grid edge length");
  cli.add_flag("substeps", "20", "advection steps between snapshots");
  cli.add_flag("eb", "1e-3", "in situ compression relative error bound");
  if (!cli.parse(argc, argv)) return 0;

  core::DatasetSpec spec = core::nyx_spec();
  const auto n = cli.get_int("size");
  spec.fine_shape = {n, n, n};

  // Evolving truth field, re-tagged into a fresh hierarchy per snapshot.
  sim::SyntheticDataset dataset = core::make_dataset(spec);
  Array3<double> field = std::move(dataset.fine_truth);
  const auto codec = compress::make_compressor("sz-lr");
  const sim::AdvectionSpec advection;

  std::printf("%5s %9s %9s %12s %8s %9s\n", "step", "patches", "fine%",
              "cells", "CR", "PSNR");
  for (int step = 0; step <= static_cast<int>(cli.get_int("steps")); ++step) {
    sim::TaggingSpec tagging;
    tagging.criterion = spec.criterion;
    tagging.fine_fraction = spec.fine_fraction;
    tagging.block = std::max<std::int64_t>(4, n / 16);
    Array3<double> copy = field;  // tagging consumes the field
    sim::SyntheticDataset snapshot =
        sim::build_two_level_hierarchy(std::move(copy), tagging);

    const auto stats = snapshot.hierarchy.level_stats();
    const core::StudyRow row = core::run_compression_study(
        snapshot, *codec, cli.get_double("eb"));
    std::printf("%5d %9lld %8.1f%% %12lld %8.1f %9.2f\n", step,
                static_cast<long long>(stats[1].num_patches),
                100.0 * stats[1].density,
                static_cast<long long>(
                    snapshot.hierarchy.total_stored_cells()),
                row.ratio, row.psnr_db);

    sim::advect_diffuse(field, advection,
                        static_cast<int>(cli.get_int("substeps")));
  }
  return 0;
}
