// Quickstart: the whole pipeline in ~60 lines.
//
// Generates a small Nyx-like AMR dataset, compresses it with SZ-L/R at a
// relative error bound, decompresses, extracts iso-surfaces with both the
// re-sampling and dual-cell(+switching) methods, renders them, and prints
// the paper's metrics (CR / PSNR / SSIM / R-SSIM and image R-SSIM).
//
//   ./quickstart [--size 64] [--eb 1e-3] [--out /tmp/quickstart]

#include <cstdio>

#include "compress/compressor.hpp"
#include "core/datasets.hpp"
#include "core/study.hpp"
#include "core/visual_study.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace amrvis;

  Cli cli;
  cli.add_flag("size", "64", "fine-grid edge length (power of two)");
  cli.add_flag("eb", "1e-3", "relative error bound");
  cli.add_flag("out", "", "prefix for PGM/PPM dumps (empty = no dumps)");
  if (!cli.parse(argc, argv)) return 0;

  // 1. Build a two-level Nyx-like dataset.
  core::DatasetSpec spec = core::nyx_spec();
  const auto n = cli.get_int("size");
  spec.fine_shape = {n, n, n};
  const sim::SyntheticDataset dataset = core::make_dataset(spec);
  for (const auto& stats : dataset.hierarchy.level_stats())
    std::printf("level %d: %lldx%lldx%lld, %lld patches, density %.1f%%\n",
                stats.level, static_cast<long long>(stats.domain_shape.nx),
                static_cast<long long>(stats.domain_shape.ny),
                static_cast<long long>(stats.domain_shape.nz),
                static_cast<long long>(stats.num_patches),
                100.0 * stats.density);

  // 2. Compress + decompress, report data-domain quality.
  const auto codec = compress::make_compressor("sz-lr");
  amr::AmrHierarchy decompressed;
  const core::StudyRow row = core::run_compression_study(
      dataset, *codec, cli.get_double("eb"),
      compress::RedundantHandling::kMeanFill, &decompressed);
  std::printf("\n%s @ rel_eb=%.0e: CR=%.1f  PSNR=%.2f dB  SSIM=%.7f  "
              "R-SSIM=%.3e\n",
              row.compressor.c_str(), row.rel_eb, row.ratio, row.psnr_db,
              row.ssim_value, row.rssim());

  // 3. Visualize with both methods and compare against the original.
  const double iso = core::pick_iso_value(spec, dataset.fine_truth);
  core::VisualStudyOptions options;
  options.axis = core::render_axis(spec);
  options.image_size = 256;
  for (const auto method :
       {vis::VisMethod::kResampling, vis::VisMethod::kDualCellSwitching}) {
    options.dump_prefix =
        cli.get("out").empty()
            ? ""
            : cli.get("out") + "_" + vis::vis_method_name(method);
    const core::VisualStudyResult r = core::run_visual_study(
        dataset, decompressed, iso, method, options);
    std::printf(
        "%-18s image R-SSIM=%.3e  cracks(orig)=%lld gap=%.2f  "
        "cracks(dec)=%lld  tris=%zu\n",
        vis::vis_method_name(method), r.image_rssim(),
        static_cast<long long>(r.original_cracks.interior_boundary_edges),
        r.original_cracks.mean_gap,
        static_cast<long long>(
            r.decompressed_cracks.interior_boundary_edges),
        r.decompressed_triangles);
  }
  return 0;
}
