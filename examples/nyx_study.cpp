// Nyx-like end-to-end study (paper §4.2): both SZ compressors at several
// error bounds on the irregular cosmology-like dataset, with both
// visualization methods — prints a combined quantitative + visual table
// and optionally dumps renders.
//
//   ./nyx_study [--size 128] [--full] [--out /tmp/nyx]

#include <cstdio>

#include "compress/compressor.hpp"
#include "core/datasets.hpp"
#include "core/study.hpp"
#include "core/visual_study.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace amrvis;

  Cli cli;
  cli.add_flag("size", "0", "override fine-grid edge (0 = spec default)");
  cli.add_flag("full", "0", "paper-scale 512^3 grids");
  cli.add_flag("out", "", "prefix for image dumps");
  if (!cli.parse(argc, argv)) return 0;

  core::DatasetSpec spec = core::nyx_spec(cli.get_bool("full"));
  if (const auto n = cli.get_int("size"); n > 0) spec.fine_shape = {n, n, n};
  const sim::SyntheticDataset dataset = core::make_dataset(spec);
  const double iso = core::pick_iso_value(spec, dataset.fine_truth);

  std::printf("Nyx-like dataset %lld^3 fine, iso=%.4g\n",
              static_cast<long long>(spec.fine_shape.nx), iso);
  std::printf("%-10s %-7s %8s %9s %11s %11s | %-18s %12s %10s\n",
              "codec", "eb", "CR", "PSNR", "SSIM", "R-SSIM", "vis method",
              "img R-SSIM", "cracks");

  core::VisualStudyOptions options;
  options.axis = core::render_axis(spec);
  for (const char* codec_name : {"sz-lr", "sz-interp"}) {
    const auto codec = compress::make_compressor(codec_name);
    for (const double eb : {1e-4, 1e-3, 1e-2}) {
      amr::AmrHierarchy decompressed;
      const core::StudyRow row = core::run_compression_study(
          dataset, *codec, eb, compress::RedundantHandling::kMeanFill,
          &decompressed);
      bool first = true;
      for (const auto method : {vis::VisMethod::kResampling,
                                vis::VisMethod::kDualCellSwitching}) {
        if (!cli.get("out").empty())
          options.dump_prefix = cli.get("out") + "_" +
                                std::string(codec_name) + "_" +
                                std::to_string(eb) + "_" +
                                vis::vis_method_name(method);
        const auto vr = core::run_visual_study(dataset, decompressed, iso,
                                               method, options);
        if (first)
          std::printf("%-10s %-7.0e %8.1f %9.2f %11.7f %11.3e", codec_name,
                      eb, row.ratio, row.psnr_db, row.ssim_value,
                      row.rssim());
        else
          std::printf("%-10s %-7s %8s %9s %11s %11s", "", "", "", "", "",
                      "");
        std::printf(" | %-18s %12.3e %10lld\n",
                    vis::vis_method_name(method), vr.image_rssim(),
                    static_cast<long long>(
                        vr.decompressed_cracks.interior_boundary_edges));
        first = false;
      }
    }
  }
  return 0;
}
