// Side-by-side visualization-method comparison on ORIGINAL data (paper
// Fig. 1): re-sampling (cracks), plain dual-cell (gaps), and dual-cell
// with switching cells (fixed). Writes level-colored renders and prints
// the crack census for each.
//
//   ./vis_compare [--dataset warpx|nyx] [--out /tmp/fig1]

#include <cstdio>

#include "core/datasets.hpp"
#include "core/visual_study.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace amrvis;

  Cli cli;
  cli.add_flag("dataset", "warpx", "nyx or warpx");
  cli.add_flag("out", "", "prefix for image dumps");
  if (!cli.parse(argc, argv)) return 0;

  const core::DatasetSpec spec = core::dataset_spec(cli.get("dataset"));
  const sim::SyntheticDataset dataset = core::make_dataset(spec);
  const double iso = core::pick_iso_value(spec, dataset.fine_truth);

  core::VisualStudyOptions options;
  options.axis = core::render_axis(spec);

  std::printf("%-20s %10s %12s %10s %10s %12s\n", "method", "tris",
              "bdry edges", "mean gap", "max gap", "area");
  for (const auto method :
       {vis::VisMethod::kResampling, vis::VisMethod::kDualCell,
        vis::VisMethod::kDualCellSwitching}) {
    if (!cli.get("out").empty())
      options.dump_prefix =
          cli.get("out") + "_" + vis::vis_method_name(method);
    const auto r =
        core::run_original_visual_census(dataset, iso, method, options);
    std::printf("%-20s %10zu %12lld %10.3f %10.3f %12.1f\n",
                vis::vis_method_name(method), r.original_triangles,
                static_cast<long long>(
                    r.original_cracks.interior_boundary_edges),
                r.original_cracks.mean_gap, r.original_cracks.max_gap,
                r.original_area);
  }
  return 0;
}
