// Concurrent query clients: N threads share ONE QueryService over a
// compressed AMR hierarchy.
//
// The pipeline demonstrated here:
//   1. build a nyx-like field, refine it into a two-level hierarchy and
//      compress it under a tiled (chunked) codec;
//   2. stand up a service::QueryService — a shared byte-bounded
//      decoded-tile cache plus the persistent work-stealing pool — and
//      hammer it from several client threads at once with point probes,
//      plane slices and region decodes;
//   3. run a BATCH of overlapping region requests (the service merges
//      them: the deduplicated union of their tiles is prefetched across
//      the pool, then every request is served from cache), and one
//      async request through submit();
//   4. the counters show how much decode work the shared cache ate.
//
// Every value the service returns is bit-identical to calling the
// uncached primitives (amr::sample_point_compressed & friends) directly;
// the cache moves decode work, never values.
//
//   ./build/examples/query_clients

#include <cstdio>
#include <thread>
#include <vector>

#include "compress/compressor.hpp"
#include "core/datasets.hpp"
#include "obs/metrics.hpp"
#include "service/query_service.hpp"
#include "sim/tagging.hpp"

using namespace amrvis;

int main() {
  // A 32^3 nyx-like density field, refined where it is busiest.
  Array3<double> field = core::uniform_truth_field("nyx", {32, 32, 32});
  sim::TaggingSpec spec;
  spec.fine_fraction = 0.3;
  spec.block = 4;
  spec.max_grid_size = 16;
  const sim::SyntheticDataset ds =
      sim::build_two_level_hierarchy(std::move(field), spec);

  // Tiled codec: region queries inflate only the tiles they touch, and
  // those tiles are exactly what the service's cache retains.
  const auto codec = compress::make_compressor("chunked-sz-lr@16x16x8");
  const compress::AmrCompressed compressed = compress_hierarchy(
      ds.hierarchy, *codec, 1e-3, compress::RedundantHandling::kKeep);
  const amr::Box finest = compressed.domains.back();
  const Shape3 fs = finest.shape();

  // One service, shared by every client below. The cache budget bounds
  // resident decoded bytes at ALL times; the pool is sized once for the
  // process (override with AMRVIS_POOL_THREADS).
  service::ServiceOptions opts;
  opts.cache_bytes = std::size_t{32} << 20;
  service::QueryService svc(compressed, *codec, opts);

  // ---- N concurrent clients, mixed synchronous queries ----
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (int rep = 0; rep < 3; ++rep) {
        const amr::IntVect p{finest.lo().x + (3 + c * 5) % fs.nx,
                             finest.lo().y + (2 + rep * 7) % fs.ny,
                             finest.lo().z + (c + rep) % fs.nz};
        service::QueryStats ps;
        svc.point(p, &ps);
        svc.plane(2, finest.lo().z + fs.nz / 2);
        svc.region(0, amr::Box{{c, c, 0}, {c + 12, c + 12, 15}});
      }
    });
  for (auto& t : clients) t.join();

  auto ctr = svc.counters();
  std::printf("%d clients, %llu requests: %lld tiles decoded, %lld cache "
              "hits\n",
              kClients, static_cast<unsigned long long>(ctr.requests),
              static_cast<long long>(ctr.tiles_decoded),
              static_cast<long long>(ctr.cache_hits));

  // ---- batched overlapping regions: merged, prefetched, served ----
  std::vector<service::Request> batch;
  batch.push_back(service::Request::Region(0, {{0, 0, 0}, {19, 19, 19}}));
  batch.push_back(service::Request::Region(0, {{8, 8, 8}, {27, 27, 27}}));
  batch.push_back(service::Request::Region(0, {{4, 4, 4}, {15, 15, 23}}));
  const auto responses = svc.run_batch(batch);
  for (std::size_t i = 0; i < responses.size(); ++i)
    std::printf("batch[%zu]: %zu patches, decoded %lld itself, %lld from "
                "cache (queue %.3f ms, service %.3f ms)\n",
                i, responses[i].patches.size(),
                static_cast<long long>(responses[i].stats.tiles_decoded),
                static_cast<long long>(responses[i].stats.cache_hits),
                responses[i].stats.queue_ms, responses[i].stats.service_ms);

  // ---- fire-and-forget: the future carries result or exception ----
  auto fut = svc.submit(service::Request::Point(finest.lo()));
  const service::Response async = fut.get();
  std::printf("async point = %.6g (queued %.3f ms)\n", async.value,
              async.stats.queue_ms);

  const auto& cc = svc.cache().counters();
  std::printf("cache: %zu entries, %.2f MB resident (peak %.2f MB, "
              "budget %.0f MB), %lld evictions\n",
              cc.entries, static_cast<double>(cc.bytes) / 1e6,
              static_cast<double>(cc.peak_bytes) / 1e6,
              static_cast<double>(opts.cache_bytes) / 1e6,
              static_cast<long long>(cc.evictions));

  // ---- the same run, as the process-wide obs registry saw it ----
  // Every layer this example exercised (codec stages, tile cache, pool,
  // service) reports into src/obs; run with AMRVIS_TRACE=/tmp/trace.json
  // to also get a per-span Chrome trace of the exact same workload.
  std::printf("\n-- obs registry (snapshot_text) --\n%s",
              obs::snapshot_text().c_str());
  return 0;
}
