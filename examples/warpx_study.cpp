// WarpX-like end-to-end study (paper §4.1): the smooth elongated "Ez"
// dataset under both SZ compressors, both visualization methods, with the
// dual-cell artifact-amplification comparison front and center.
//
//   ./warpx_study [--full] [--out /tmp/warpx]

#include <cstdio>

#include "compress/compressor.hpp"
#include "core/datasets.hpp"
#include "core/study.hpp"
#include "core/visual_study.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace amrvis;

  Cli cli;
  cli.add_flag("full", "0", "paper-scale 256x256x2048 grids");
  cli.add_flag("out", "", "prefix for image dumps");
  if (!cli.parse(argc, argv)) return 0;

  const core::DatasetSpec spec = core::warpx_spec(cli.get_bool("full"));
  const sim::SyntheticDataset dataset = core::make_dataset(spec);
  const double iso = core::pick_iso_value(spec, dataset.fine_truth);

  std::printf("WarpX-like dataset %lldx%lldx%lld fine, iso=%.4g\n",
              static_cast<long long>(spec.fine_shape.nx),
              static_cast<long long>(spec.fine_shape.ny),
              static_cast<long long>(spec.fine_shape.nz), iso);

  core::VisualStudyOptions options;
  options.axis = core::render_axis(spec);

  for (const char* codec_name : {"sz-lr", "sz-interp"}) {
    const auto codec = compress::make_compressor(codec_name);
    std::printf("\n=== %s ===\n", codec_name);
    for (const double eb : {1e-4, 1e-3, 1e-2}) {
      amr::AmrHierarchy decompressed;
      const core::StudyRow row = core::run_compression_study(
          dataset, *codec, eb, compress::RedundantHandling::kMeanFill,
          &decompressed);
      std::printf("eb=%.0e  CR=%.1f  PSNR=%.2f  R-SSIM=%.3e\n", eb,
                  row.ratio, row.psnr_db, row.rssim());
      for (const auto method : {vis::VisMethod::kResampling,
                                vis::VisMethod::kDualCellSwitching}) {
        if (!cli.get("out").empty())
          options.dump_prefix = cli.get("out") + "_" +
                                std::string(codec_name) + "_" +
                                std::to_string(eb) + "_" +
                                vis::vis_method_name(method);
        const auto vr = core::run_visual_study(dataset, decompressed, iso,
                                               method, options);
        std::printf("   %-18s image R-SSIM=%.3e  area dev=%.2f%%\n",
                    vis::vis_method_name(method), vr.image_rssim(),
                    100.0 * vr.area_deviation());
      }
    }
  }
  return 0;
}
