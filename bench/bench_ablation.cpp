// Ablations over the design choices DESIGN.md calls out:
//  1. redundant-coarse-data handling: keep vs mean-fill (paper §2.2's
//     "omit the redundant data during compression" optimization);
//  2. SZ-L/R block size (6 is SZ2's default);
//  3. transform codec (zfp-like) vs the prediction codecs;
//  4. quantizer code-space radius.

#include "bench_util.hpp"
#include "compress/compressor.hpp"
#include "compress/szlr.hpp"
#include "compress/zmesh_like.hpp"
#include "core/datasets.hpp"
#include "core/study.hpp"

int main(int argc, char** argv) {
  using namespace amrvis;
  Cli cli;
  if (!bench::parse_standard_flags(cli, argc, argv)) return 0;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  bench::banner("Ablations", "design-choice sensitivity (eb = 1e-3)");
  bench::JsonReport report("ablation", "design-choice sensitivity, eb = 1e-3");

  for (const char* name : {"warpx", "nyx"}) {
    core::DatasetSpec spec =
        core::dataset_spec(name, cli.get_bool("full"), seed);
    if (cli.get_bool("smoke")) spec = core::smoke_spec(spec);
    const sim::SyntheticDataset dataset = core::make_dataset(spec);
    std::printf("\n--- dataset %s ---\n", name);

    // 1. Redundant handling.
    const auto szlr = compress::make_compressor("sz-lr");
    for (const auto handling : {compress::RedundantHandling::kKeep,
                                compress::RedundantHandling::kMeanFill}) {
      const auto row =
          core::run_compression_study(dataset, *szlr, 1e-3, handling);
      const char* handling_name =
          handling == compress::RedundantHandling::kKeep ? "keep"
                                                         : "mean-fill";
      std::printf("redundant=%-9s CR=%7.2f  PSNR=%7.2f\n", handling_name,
                  row.ratio, row.psnr_db);
      report.add_record()
          .set("dataset", name)
          .set("ablation", "redundant_handling")
          .set("variant", handling_name)
          .set("ratio", row.ratio)
          .set("psnr_db", row.psnr_db);
    }

    // 2. Block size.
    for (const int bs : {4, 6, 8, 12}) {
      const compress::SzLrCompressor codec(bs);
      const auto row = core::run_compression_study(dataset, codec, 1e-3);
      std::printf("szlr block=%-2d      CR=%7.2f  PSNR=%7.2f\n", bs,
                  row.ratio, row.psnr_db);
      report.add_record()
          .set("dataset", name)
          .set("ablation", "block_size")
          .set("variant", std::to_string(bs))
          .set("ratio", row.ratio)
          .set("psnr_db", row.psnr_db);
    }

    // 3. Codec family.
    for (const char* codec_name : {"sz-lr", "sz-interp", "zfp-like"}) {
      const auto codec = compress::make_compressor(codec_name);
      const auto row = core::run_compression_study(dataset, *codec, 1e-3);
      std::printf("codec=%-10s    CR=%7.2f  PSNR=%7.2f  R-SSIM=%.3e\n",
                  codec_name, row.ratio, row.psnr_db, row.rssim());
      report.add_record()
          .set("dataset", name)
          .set("ablation", "codec_family")
          .set("variant", codec_name)
          .set("ratio", row.ratio)
          .set("psnr_db", row.psnr_db)
          .set("rssim", row.rssim());
    }

    // 4. zMesh-style 1-D flattening vs per-patch 3-D (paper §1: 1-D
    // rearrangement loses spatial locality).
    {
      const auto codec = compress::make_compressor("sz-lr");
      const double flat = compress::compress_hierarchy_flat1d(
                              dataset.hierarchy, *codec, 1e-3)
                              .ratio();
      const double patch =
          compress::compress_hierarchy(dataset.hierarchy, *codec, 1e-3,
                                       compress::RedundantHandling::kKeep)
              .ratio();
      std::printf("layout=zmesh-1d    CR=%7.2f   vs per-patch-3d CR=%7.2f\n",
                  flat, patch);
      report.add_record()
          .set("dataset", name)
          .set("ablation", "layout")
          .set("variant", "zmesh-1d")
          .set("ratio", flat);
      report.add_record()
          .set("dataset", name)
          .set("ablation", "layout")
          .set("variant", "per-patch-3d")
          .set("ratio", patch);
    }
  }
  report.write(cli.get("json"));
  return 0;
}
