// Reproduces paper Table 1: per-level grid sizes and data densities of
// the two evaluation datasets.
//
//   Paper:  WarpX  128x128x1024 / 256x256x2048, densities 91.4% / 8.6%
//           Nyx    256^3 / 512^3,               densities 59.3% / 40.7%
//
// Default runs the 1/4-scale grids (same structure); --full reproduces
// the paper-scale shapes.

#include "bench_util.hpp"
#include "core/datasets.hpp"

int main(int argc, char** argv) {
  using namespace amrvis;
  Cli cli;
  if (!bench::parse_standard_flags(cli, argc, argv)) return 0;
  const bool full = cli.get_bool("full");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  bench::banner("Table 1: tested AMR datasets",
                "paper: WarpX 91.4%/8.6%, Nyx 59.3%/40.7%");
  std::printf("%-8s %-9s %-22s %10s %10s %10s\n", "Run", "level",
              "grid size", "patches", "density", "covered");
  for (const char* name : {"warpx", "nyx"}) {
    const core::DatasetSpec spec = core::dataset_spec(name, full, seed);
    const sim::SyntheticDataset dataset = core::make_dataset(spec);
    for (const auto& s : dataset.hierarchy.level_stats()) {
      char grid[64];
      std::snprintf(grid, sizeof grid, "%lldx%lldx%lld",
                    static_cast<long long>(s.domain_shape.nx),
                    static_cast<long long>(s.domain_shape.ny),
                    static_cast<long long>(s.domain_shape.nz));
      std::printf("%-8s %-9d %-22s %10lld %9.1f%% %9.1f%%\n",
                  s.level == 0 ? name : "", s.level, grid,
                  static_cast<long long>(s.num_patches), 100.0 * s.density,
                  100.0 * s.covered_fraction);
    }
  }
  return 0;
}
