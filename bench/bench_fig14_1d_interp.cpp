// Reproduces paper Figure 14: the 1-D explanation of why re-sampling
// looks better than dual-cell on decompressed data — interpolation
// partially cancels SZ-L/R's block-constant artifacts.
//
// Two variants: the paper's hand-built "111//444//777" staircase, and the
// same effect driven by the real SZ-L/R codec at a large error bound.
// Expected shape: re-sampled artifact energy < dual-cell artifact energy.

#include "bench_util.hpp"
#include "core/demo1d.hpp"

int main(int argc, char** argv) {
  using namespace amrvis;
  Cli cli;
  if (!bench::parse_standard_flags(cli, argc, argv)) return 0;

  bench::banner("Figure 14: 1-D interpolation vs dual-cell on block "
                "artifacts",
                "artifact energy = MSE vs the original at matched samples");

  {
    const core::Demo1dResult r = core::run_demo1d(9, 3);
    std::printf("paper staircase (n=9, block=3)\n");
    std::printf("  original:     ");
    for (double v : r.original) std::printf("%5.2f ", v);
    std::printf("\n  decompressed: ");
    for (double v : r.decompressed) std::printf("%5.2f ", v);
    std::printf("\n  re-sampled:   ");
    for (double v : r.resampled) std::printf("%5.2f ", v);
    std::printf("\n  artifact energy: dual-cell=%.4f  re-sampling=%.4f  "
                "(ratio %.2fx)\n\n",
                r.dual_artifact_energy, r.resampled_artifact_energy,
                r.dual_artifact_energy /
                    std::max(r.resampled_artifact_energy, 1e-12));
  }

  for (const double eb : {0.05, 0.1, 0.2}) {
    const core::Demo1dResult r = core::run_demo1d_real_codec(96, eb);
    std::printf("real SZ-L/R (n=96, rel eb=%.2f): dual-cell=%.5f  "
                "re-sampling=%.5f  (ratio %.2fx)\n",
                eb, r.dual_artifact_energy, r.resampled_artifact_energy,
                r.dual_artifact_energy /
                    std::max(r.resampled_artifact_energy, 1e-12));
  }
  std::printf("\n(re-sampling energy should be consistently lower: "
              "interpolation smooths the block steps)\n");
  return 0;
}
