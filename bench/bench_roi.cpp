// Region-of-interest decode speedup (extension): the v2 chunked container
// decodes only the tiles a request box touches, so an interactive probe,
// slice view, or isosurface band query should cost a fraction of a full
// inflate. This bench is the harness of record for the BENCH_roi.json
// trajectory: full decompress vs a 1-tile region vs a 1-cell-thick plane,
// single-threaded so the speedup measures work avoided, not thread
// scheduling (at N threads a full decode of N tiles finishes in ~1 tile's
// wall time and the comparison would say nothing). A value-band culling
// census (tiles_overlapping) rides along. CI gates the 1-tile speedup via
// tools/check_bench_regression.py --mode quality.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "compress/chunked.hpp"
#include "compress/compressor.hpp"
#include "sim/fields.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace {

using namespace amrvis;

template <typename Fn>
double time_median_s(double min_ms, const Fn& fn) {
  fn();  // warm-up
  std::vector<double> samples;
  double total = 0.0;
  while (total * 1e3 < min_ms || samples.size() < 3) {
    Timer t;
    fn();
    const double s = t.seconds();
    samples.push_back(s);
    total += s;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_flag("minms", "300", "min measured milliseconds per data point");
  if (!bench::parse_standard_flags(cli, argc, argv)) return 0;
  const bool smoke = cli.get_bool("smoke");
  const double min_ms =
      smoke ? 30.0 : static_cast<double>(cli.get_double("minms"));

#ifdef _OPENMP
  omp_set_num_threads(1);
#endif

  sim::WarpXLikeSpec spec;
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const Shape3 shape = smoke              ? Shape3{32, 32, 64}
                       : cli.get_bool("full") ? Shape3{128, 128, 256}
                                              : Shape3{64, 64, 128};
  const Array3<double> data = sim::warpx_like_ez(shape, spec);
  const double mb =
      static_cast<double>(data.size()) * static_cast<double>(sizeof(double)) /
      1e6;

  bench::banner("ROI decode (extension)",
                "v2 container region decode vs full inflate, 1 thread; "
                "MB = 1e6 bytes");

  const auto codec = compress::make_compressor("chunked-sz-lr");
  const auto* chunked =
      dynamic_cast<const compress::ChunkedCompressor*>(codec.get());
  const double abs_eb = compress::resolve_abs_eb(
      compress::ErrorBoundMode::kRelative, 1e-3, data.span());
  const Bytes blob = codec->compress(data.view(), abs_eb);

  const amr::Box field = amr::Box::from_shape(shape);
  const compress::ChunkShape tile = chunked->tile();
  const amr::Box one_tile{
      {0, 0, 0},
      {std::min(tile.nx, shape.nx) - 1, std::min(tile.ny, shape.ny) - 1,
       std::min(tile.nz, shape.nz) - 1}};
  const amr::Box plane{{0, 0, shape.nz / 2}, {shape.nx - 1, shape.ny - 1,
                                              shape.nz / 2}};

  compress::RegionDecodeStats tile_stats, plane_stats;
  (void)chunked->decompress_region(blob, one_tile, &tile_stats);
  (void)chunked->decompress_region(blob, plane, &plane_stats);

  const double full_s = time_median_s(min_ms, [&] {
    const Array3<double> d = codec->decompress(blob);
    bench::do_not_optimize(d);
  });
  const double tile_s = time_median_s(min_ms, [&] {
    const Array3<double> d = chunked->decompress_region(blob, one_tile);
    bench::do_not_optimize(d);
  });
  const double plane_s = time_median_s(min_ms, [&] {
    const Array3<double> d = chunked->decompress_region(blob, plane);
    bench::do_not_optimize(d);
  });

  std::printf("field: warpx-like Ez %lldx%lldx%lld (%.1f MB), tile "
              "%lldx%lldx%lld\n\n",
              static_cast<long long>(shape.nx),
              static_cast<long long>(shape.ny),
              static_cast<long long>(shape.nz), mb,
              static_cast<long long>(tile.nx),
              static_cast<long long>(tile.ny),
              static_cast<long long>(tile.nz));
  std::printf("%-22s %12s %10s %16s\n", "stage", "ms", "speedup",
              "tiles decoded");
  std::printf("%-22s %12.2f %10s %10lld/%lld\n", "decompress_full",
              full_s * 1e3, "1.00x",
              static_cast<long long>(tile_stats.tiles_total),
              static_cast<long long>(tile_stats.tiles_total));
  std::printf("%-22s %12.2f %9.2fx %10lld/%lld\n", "roi_1tile",
              tile_s * 1e3, full_s / tile_s,
              static_cast<long long>(tile_stats.tiles_decoded),
              static_cast<long long>(tile_stats.tiles_total));
  std::printf("%-22s %12.2f %9.2fx %10lld/%lld\n", "roi_plane",
              plane_s * 1e3, full_s / plane_s,
              static_cast<long long>(plane_stats.tiles_decoded),
              static_cast<long long>(plane_stats.tiles_total));

  // Value-band culling census: an isosurface near the field maximum only
  // lives in the tiles whose range reaches it — those are the only ones a
  // vis query has to inflate.
  const auto mm = min_max(data.span());
  const auto hits = chunked->tiles_overlapping(
      blob, mm.max - 0.05 * mm.range(), mm.max);
  std::printf("\ntiles_overlapping(top 5%% of value range): %zu of %lld "
              "tiles\n",
              hits.size(), static_cast<long long>(tile_stats.tiles_total));

  bench::JsonReport report(
      "roi", "v2 container region decode vs full inflate; single-thread "
             "(speedup measures work avoided); MB = 1e6 bytes");
  report.add_record()
      .set("stage", "config")
      .set("field", "warpx_like_ez")
      .set("nx", shape.nx)
      .set("ny", shape.ny)
      .set("nz", shape.nz)
      .set("threads", std::int64_t{1});
  report.add_record()
      .set("codec", "chunked-sz-lr")
      .set("stage", "decompress_full")
      .set("threads", std::int64_t{1})
      .set("mb_per_s", mb / full_s)
      .set("ms", full_s * 1e3);
  report.add_record()
      .set("codec", "chunked-sz-lr")
      .set("stage", "roi_1tile")
      .set("threads", std::int64_t{1})
      .set("ms", tile_s * 1e3)
      .set("speedup", full_s / tile_s)
      .set("tiles_decoded", tile_stats.tiles_decoded)
      .set("tiles_total", tile_stats.tiles_total);
  report.add_record()
      .set("codec", "chunked-sz-lr")
      .set("stage", "roi_plane")
      .set("threads", std::int64_t{1})
      .set("ms", plane_s * 1e3)
      .set("speedup", full_s / plane_s)
      .set("tiles_decoded", plane_stats.tiles_decoded)
      .set("tiles_total", plane_stats.tiles_total);
  report.write(cli.get("json"));
  return 0;
}
