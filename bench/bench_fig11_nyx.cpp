// Reproduces paper Figure 11: Nyx at eb = 1e-2, original vs SZ-L/R vs
// SZ-Interp under both visualization methods.
//
// Expected shape:
//  - dual-cell degrades decompressed visual quality vs re-sampling for
//    BOTH codecs (higher image R-SSIM);
//  - despite its block artifacts, SZ-L/R beats SZ-Interp on this complex
//    irregular data (lower image R-SSIM / higher PSNR), paper §4.2.

#include "bench_util.hpp"
#include "compress/compressor.hpp"
#include "core/datasets.hpp"
#include "core/study.hpp"
#include "core/visual_study.hpp"

int main(int argc, char** argv) {
  using namespace amrvis;
  Cli cli;
  cli.add_flag("out", "", "prefix for PGM renders");
  cli.add_flag("eb", "1e-2", "relative error bound (paper uses 1e-2)");
  if (!bench::parse_standard_flags(cli, argc, argv)) return 0;

  core::DatasetSpec spec = core::nyx_spec(
      cli.get_bool("full"), static_cast<std::uint64_t>(cli.get_int("seed")));
  if (cli.get_bool("smoke")) spec = core::smoke_spec(spec);
  const sim::SyntheticDataset dataset = core::make_dataset(spec);
  const double iso = core::pick_iso_value(spec, dataset.fine_truth);
  const double eb = cli.get_double("eb");

  bench::banner("Figure 11: Nyx, original vs SZ-L/R vs SZ-Interp",
                "both visualization methods at eb = " + cli.get("eb"));

  core::VisualStudyOptions options;
  options.axis = core::render_axis(spec);
  bench::JsonReport report("fig11_nyx",
                           "Nyx visual study at eb = " + cli.get("eb"));

  // Original-data census first (Fig. 11a/11d).
  std::printf("%-12s %-18s %14s %12s %10s\n", "data", "vis method",
              "image R-SSIM", "PSNR", "CR");
  for (const auto method : {vis::VisMethod::kResampling,
                            vis::VisMethod::kDualCellSwitching}) {
    if (!cli.get("out").empty())
      options.dump_prefix =
          cli.get("out") + "_original_" + vis::vis_method_name(method);
    core::run_original_visual_census(dataset, iso, method, options);
    std::printf("%-12s %-18s %14s %12s %10s\n", "original",
                vis::vis_method_name(method), "0 (reference)", "-", "-");
  }

  for (const char* codec_name : {"sz-lr", "sz-interp"}) {
    const auto codec = compress::make_compressor(codec_name);
    amr::AmrHierarchy decompressed;
    const core::StudyRow row = core::run_compression_study(
        dataset, *codec, eb, compress::RedundantHandling::kMeanFill,
        &decompressed);
    for (const auto method : {vis::VisMethod::kResampling,
                              vis::VisMethod::kDualCellSwitching}) {
      if (!cli.get("out").empty())
        options.dump_prefix = cli.get("out") + "_" +
                              std::string(codec_name) + "_" +
                              vis::vis_method_name(method);
      const auto vr = core::run_visual_study(dataset, decompressed, iso,
                                             method, options);
      std::printf("%-12s %-18s %14.3e %12.2f %10.1f\n", codec_name,
                  vis::vis_method_name(method), vr.image_rssim(),
                  row.psnr_db, row.ratio);
      report.add_record()
          .set("codec", codec_name)
          .set("vis_method", vis::vis_method_name(method))
          .set("image_rssim", vr.image_rssim())
          .set("psnr_db", row.psnr_db)
          .set("ratio", row.ratio);
    }
  }
  report.write(cli.get("json"));
  std::printf("\n(expect: dual-cell > re-sampling in image R-SSIM for both "
              "codecs;\n sz-lr < sz-interp in data-domain R-SSIM on this "
              "irregular data —\n at eb=1e-2 the image metric saturates; "
              "see bench_fig13_rd_nyx for the codec comparison)\n");
  return 0;
}
