// Reproduces paper Figure 10: WarpX + SZ-Interp, re-sampling vs
// dual-cell at eb = 1e-3 (plus the neighboring bounds for context).
//
// Expected shape: dual-cell shows more bump artifacts -> higher image
// R-SSIM than re-sampling, even though SZ-Interp has no block structure.

#include "bench_util.hpp"
#include "compress/compressor.hpp"
#include "core/datasets.hpp"
#include "core/study.hpp"
#include "core/visual_study.hpp"

int main(int argc, char** argv) {
  using namespace amrvis;
  Cli cli;
  cli.add_flag("out", "", "prefix for PGM renders");
  if (!bench::parse_standard_flags(cli, argc, argv)) return 0;

  const core::DatasetSpec spec = core::warpx_spec(
      cli.get_bool("full"), static_cast<std::uint64_t>(cli.get_int("seed")));
  const sim::SyntheticDataset dataset = core::make_dataset(spec);
  const double iso = core::pick_iso_value(spec, dataset.fine_truth);
  const auto codec = compress::make_compressor("sz-interp");

  bench::banner("Figure 10: WarpX + SZ-Interp, re-sampling vs dual-cell",
                "paper highlights eb = 1e-3 (R-SSIM 4.5e-05)");

  core::VisualStudyOptions options;
  options.axis = core::render_axis(spec);
  std::printf("%-8s %8s %10s | %-18s %14s %12s\n", "eb", "CR", "R-SSIM",
              "vis method", "image R-SSIM", "area dev");
  for (const double eb : {1e-4, 1e-3, 1e-2}) {
    amr::AmrHierarchy decompressed;
    const core::StudyRow row = core::run_compression_study(
        dataset, *codec, eb, compress::RedundantHandling::kMeanFill,
        &decompressed);
    bool first = true;
    for (const auto method : {vis::VisMethod::kResampling,
                              vis::VisMethod::kDualCellSwitching}) {
      if (!cli.get("out").empty())
        options.dump_prefix = cli.get("out") + "_eb" + std::to_string(eb) +
                              "_" + vis::vis_method_name(method);
      const auto vr = core::run_visual_study(dataset, decompressed, iso,
                                             method, options);
      if (first)
        std::printf("%-8.0e %8.1f %10.3e | %-18s %14.3e %11.2f%%\n", eb,
                    row.ratio, row.rssim(), vis::vis_method_name(method),
                    vr.image_rssim(), 100.0 * vr.area_deviation());
      else
        std::printf("%-8s %8s %10s | %-18s %14.3e %11.2f%%\n", "", "", "",
                    vis::vis_method_name(method), vr.image_rssim(),
                    100.0 * vr.area_deviation());
      first = false;
    }
  }
  return 0;
}
