// Streaming-tile pipeline bench (extension): out-of-core isosurface of a
// compressed field via the TileStream subsystem vs the full-inflate
// path. This is the harness of record for the BENCH_stream.json
// trajectory: it measures wall time, CONTAINER TILES DECODED (the work
// the value cull avoids) and a peak-RSS proxy (live raster bytes held by
// the sweep vs the full-inflate raster footprint). Single-threaded so
// the comparison measures work avoided, not scheduling. CI gates
// tiles_saved_frac — the streamed path must keep decoding at most half
// the tiles on the standard isovalue — via check_bench_regression.py
// --mode quality.
//
// The mesh produced by the streamed path is asserted bit-identical to
// the full-inflate mesh before anything is reported: a fast wrong
// pipeline must fail the bench, not win it.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "compress/amr_compress.hpp"
#include "compress/compressor.hpp"
#include "core/datasets.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"
#include "vis/amr_iso.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace {

using namespace amrvis;

template <typename Fn>
double time_median_s(double min_ms, const Fn& fn) {
  fn();  // warm-up
  std::vector<double> samples;
  double total = 0.0;
  while (total * 1e3 < min_ms || samples.size() < 3) {
    Timer t;
    fn();
    const double s = t.seconds();
    samples.push_back(s);
    total += s;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Single-level hierarchy holding `data` as one whole-domain patch.
amr::AmrHierarchy wrap_field(Array3<double> data) {
  amr::AmrHierarchy hier(2);
  const amr::Box dom = amr::Box::from_shape(data.shape());
  amr::AmrLevel l0;
  l0.domain = dom;
  amr::FArrayBox fab(dom);
  std::copy(data.span().begin(), data.span().end(), fab.values().begin());
  l0.box_array.push_back(dom);
  l0.fabs.push_back(std::move(fab));
  hier.add_level(std::move(l0));
  return hier;
}

bool mesh_identical(const vis::TriMesh& a, const vis::TriMesh& b) {
  if (a.vertices.size() != b.vertices.size() ||
      a.triangles.size() != b.triangles.size())
    return false;
  if (!a.vertices.empty() &&
      std::memcmp(a.vertices.data(), b.vertices.data(),
                  a.vertices.size() * sizeof(vis::Vec3)) != 0)
    return false;
  for (std::size_t t = 0; t < a.triangles.size(); ++t)
    if (a.triangles[t].v != b.triangles[t].v ||
        a.triangles[t].level != b.triangles[t].level)
      return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_flag("minms", "300", "min measured milliseconds per data point");
  cli.add_flag("field", "warpx",
               "dataset field: warpx (smooth Ez) or nyx (baryon density)");
  if (!bench::parse_standard_flags(cli, argc, argv)) return 0;
  const bool smoke = cli.get_bool("smoke");
  const double min_ms =
      smoke ? 30.0 : static_cast<double>(cli.get_double("minms"));

#ifdef _OPENMP
  omp_set_num_threads(1);
#endif

  const std::string field = cli.get("field");
  const std::string field_label =
      field == "nyx" ? "nyx_like_density" : "warpx_like_ez";
  const Shape3 shape = smoke              ? Shape3{32, 32, 64}
                       : cli.get_bool("full") ? Shape3{128, 128, 256}
                                              : Shape3{64, 64, 128};
  Array3<double> data = core::uniform_truth_field(
      field, shape, static_cast<std::uint64_t>(cli.get_int("seed")));

  // The standard isovalue of the dataset's *streamed-iso* study: the
  // localized-structure surface. For WarpX that is the wavefront
  // amplitude rule (same as every other study); for Nyx it is the halo
  // surface (`iso_quantile_halo`) — the interface-crossing outskirts
  // quantile sits inside the lognormal background, which straddles
  // nearly every tile and so measures nothing about culling.
  const core::DatasetSpec spec = core::dataset_spec(field);
  const double iso = core::pick_halo_iso_value(spec, data);
  const std::string iso_rule =
      spec.iso_quantile_halo > 0 ? "halo_surface" : "standard";

  const double mb =
      static_cast<double>(data.size()) * static_cast<double>(sizeof(double)) /
      1e6;

  bench::banner("Streaming tile pipeline (extension)",
                "full-inflate iso vs TileStream-swept iso, 1 thread; "
                "MB = 1e6 bytes");

  // One whole-domain patch, tiled by the chunk policy: small tiles in
  // every axis so the per-tile stats give the sweep real culling
  // granularity — the pulse/halo structures are localized in x/y too.
  const auto codec = compress::make_compressor("sz-lr");
  compress::AmrChunkPolicy policy;
  policy.oversized_patch_cells = 1;  // always tile
  policy.tile = compress::ChunkShape{8, 8, 8};
  const amr::AmrHierarchy hier = wrap_field(std::move(data));
  const compress::AmrCompressed compressed = compress_hierarchy(
      hier, *codec, 1e-3, compress::RedundantHandling::kKeep, policy);

  vis::StreamedIsoOptions opt;
  opt.slab_nz = policy.tile.nz;  // aligned: every tile decoded at most once

  // Correctness first: identical meshes or no numbers at all.
  const amr::AmrHierarchy inflated = decompress_hierarchy(compressed, *codec);
  const vis::TriMesh full_mesh =
      vis::amr_isosurface(inflated, iso, vis::VisMethod::kResampling);
  vis::StreamedIsoStats stats;
  const vis::TriMesh streamed_mesh = vis::amr_isosurface_streamed(
      compressed, *codec, iso, vis::VisMethod::kResampling, opt, &stats);
  if (!mesh_identical(full_mesh, streamed_mesh)) {
    std::fprintf(stderr,
                 "FATAL: streamed mesh differs from full-inflate mesh\n");
    return 1;
  }

  const double full_s = time_median_s(min_ms, [&] {
    const amr::AmrHierarchy h = decompress_hierarchy(compressed, *codec);
    const vis::TriMesh m =
        vis::amr_isosurface(h, iso, vis::VisMethod::kResampling);
    bench::do_not_optimize(m);
  });
  const double stream_s = time_median_s(min_ms, [&] {
    const vis::TriMesh m = vis::amr_isosurface_streamed(
        compressed, *codec, iso, vis::VisMethod::kResampling, opt);
    bench::do_not_optimize(m);
  });

  // Peak-RSS proxies: the full path holds the inflated hierarchy plus a
  // domain-shaped raster pair; the streamed path holds what its
  // instrumentation measured.
  const double full_raster_mb =
      static_cast<double>(shape.size()) *
      (2.0 * sizeof(double) + 2.0 * sizeof(std::uint8_t)) / 1e6;
  const double stream_peak_mb =
      static_cast<double>(stats.peak_live_bytes) / 1e6;
  const double saved_frac =
      1.0 - static_cast<double>(stats.tiles_decoded) /
                static_cast<double>(stats.tiles_total);

  std::printf("field: %s %lldx%lldx%lld (%.1f MB), iso %.4g, tile "
              "%lldx%lldx%lld\n\n",
              field_label.c_str(), static_cast<long long>(shape.nx),
              static_cast<long long>(shape.ny),
              static_cast<long long>(shape.nz), mb, iso,
              static_cast<long long>(policy.tile.nx),
              static_cast<long long>(policy.tile.ny),
              static_cast<long long>(policy.tile.nz));
  std::printf("%-14s %10s %10s %16s %14s\n", "stage", "ms", "speedup",
              "tiles decoded", "peak MB");
  std::printf("%-14s %10.2f %10s %10lld/%lld %14.2f\n", "full_iso",
              full_s * 1e3, "1.00x",
              static_cast<long long>(stats.tiles_total),
              static_cast<long long>(stats.tiles_total), full_raster_mb);
  std::printf("%-14s %10.2f %9.2fx %10lld/%lld %14.2f\n", "streamed_iso",
              stream_s * 1e3, full_s / stream_s,
              static_cast<long long>(stats.tiles_decoded),
              static_cast<long long>(stats.tiles_total), stream_peak_mb);
  std::printf("\ntriangles: %zu (identical meshes), tiles saved: %.1f%%, "
              "slabs decoded: %lld/%lld\n",
              full_mesh.num_triangles(), 100.0 * saved_frac,
              static_cast<long long>(stats.slabs_decoded),
              static_cast<long long>(stats.slabs_total));

  bench::JsonReport report(
      "stream",
      "full-inflate iso vs TileStream-swept iso on the standard isovalue; "
      "single-thread; tiles_saved_frac and mesh identity are the "
      "contract, ms is hardware-dependent context");
  report.add_record()
      .set("stage", "config")
      .set("field", field_label)
      .set("iso_rule", iso_rule)
      .set("nx", shape.nx)
      .set("ny", shape.ny)
      .set("nz", shape.nz)
      .set("threads", std::int64_t{1});
  report.add_record()
      .set("stage", "full_iso")
      .set("method", "re-sampling")
      .set("threads", std::int64_t{1})
      .set("ms", full_s * 1e3)
      .set("tiles_decoded", stats.tiles_total)
      .set("tiles_total", stats.tiles_total)
      .set("peak_mb", full_raster_mb);
  // The gated record carries only structurally-stable identity fields
  // (the quality gate keys records on string+int values): a one-tile
  // platform wobble in the cull must move tiles_saved_frac, not break
  // record matching. Raw counts live in the ungated detail record.
  report.add_record()
      .set("stage", "streamed_iso")
      .set("field", field_label)
      .set("method", "re-sampling")
      .set("threads", std::int64_t{1})
      .set("ms", stream_s * 1e3)
      .set("speedup", full_s / stream_s)
      .set("tiles_total", stats.tiles_total)
      .set("tiles_saved_frac", saved_frac)
      .set("peak_mb", stream_peak_mb)
      .set("mesh_identical", std::int64_t{1});
  report.add_record()
      .set("stage", "streamed_iso_detail")
      .set("field", field_label)
      .set("method", "re-sampling")
      .set("threads", std::int64_t{1})
      .set("tiles_decoded", stats.tiles_decoded)
      .set("tiles_total", stats.tiles_total)
      .set("tiles_culled_exact", stats.tiles_culled_exact)
      .set("tiles_culled_conservative", stats.tiles_culled_conservative)
      .set("slabs_decoded", stats.slabs_decoded)
      .set("slabs_total", stats.slabs_total);
  // Observability cross-check: the same run, as the registry saw it
  // (stream.* / iso.* counters, tile cache traffic, codec stage spans).
  report.set_metrics_json(amrvis::obs::snapshot_json());
  report.write(cli.get("json"));
  return 0;
}
