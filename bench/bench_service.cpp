// Concurrent query service bench (extension): N clients firing a mixed
// point-probe / plane-slice / region-decode workload at ONE shared
// QueryService (shared byte-bounded tile cache, all loops on the
// persistent pool) vs the same N workloads run sequentially through the
// uncached library primitives (sample_point_compressed,
// sample_plane_compressed, decompress_level_region) — the only
// single-caller option before the service layer existed, since the
// decoded-tile cache IS part of that layer. This is the harness of
// record for the BENCH_service.json trajectory; CI gates `speedup`
// (aggregate queries/s, concurrent-shared over sequential-uncached) via
// check_bench_regression.py --mode quality. The reference container is
// single-core, so the gated speedup comes from DECODE ELIMINATION —
// repeated and overlapping queries hit the shared cache instead of
// re-inflating the same tiles — not from parallel scheduling;
// multi-core runners only add to it.
//
// Correctness is asserted before anything is reported: every concurrent
// client's results must be bit-identical to an uncached single-caller
// run of its own workload (a fast wrong service must fail the bench, not
// win it). Per-request p50/p95/p99 service latency is reported for the
// concurrent run.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "compress/compressor.hpp"
#include "core/datasets.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/query_service.hpp"
#include "sim/tagging.hpp"
#include "util/fault.hpp"
#include "util/timer.hpp"

namespace {

using namespace amrvis;

/// One client's deterministic mixed workload. Clients overlap heavily on
/// purpose: interactive viewers orbit the same interesting feature, and
/// the shared-cache win the service exists for is exactly that overlap.
struct Workload {
  std::vector<service::Request> requests;
};

Workload make_workload(int client, const amr::Box& finest, int reps) {
  Workload w;
  const Shape3 fs = finest.shape();
  const amr::Box coarse{{0, 0, 0},
                        {fs.nx / 2 - 1, fs.ny / 2 - 1, fs.nz / 2 - 1}};
  const Shape3 cs = coarse.shape();
  for (int r = 0; r < reps; ++r) {
    // Point probes along a client-specific ray through the shared tiles.
    for (int i = 0; i < 4; ++i) {
      const amr::IntVect p{
          finest.lo().x + (client * 3 + i * 7) % fs.nx,
          finest.lo().y + (r * 5 + i * 11) % fs.ny,
          finest.lo().z + (client + r + i * 13) % fs.nz};
      w.requests.push_back(service::Request::Point(p));
    }
    // A handful of plane slices near the domain mid — clients share most
    // of the decoded tiles here.
    w.requests.push_back(service::Request::Plane(
        2, finest.lo().z + (fs.nz / 2 + client + r) % fs.nz));
    // Overlapping level-0 ROIs: each client's window is shifted a few
    // cells, so the union is barely larger than one window.
    const std::int64_t sx = (client * 2 + r) % std::max<std::int64_t>(
                                                  1, cs.nx / 4);
    const amr::Box roi{
        {coarse.lo().x + sx, coarse.lo().y, coarse.lo().z},
        {std::min(coarse.hi().x, coarse.lo().x + sx + cs.nx / 2),
         coarse.hi().y, coarse.hi().z}};
    w.requests.push_back(service::Request::Region(0, roi));
  }
  return w;
}

bool responses_identical(const service::Response& a,
                         const service::Response& b) {
  if (a.value != b.value) return false;
  if (a.slice.size() != b.slice.size()) return false;
  for (std::int64_t i = 0; i < a.slice.size(); ++i)
    if (a.slice[i] != b.slice[i]) return false;
  if (a.patches.size() != b.patches.size()) return false;
  for (std::size_t p = 0; p < a.patches.size(); ++p) {
    if (a.patches[p].box != b.patches[p].box) return false;
    for (std::int64_t i = 0; i < a.patches[p].data.size(); ++i)
      if (a.patches[p].data[i] != b.patches[p].data[i]) return false;
  }
  return true;
}

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_flag("clients", "4", "number of concurrent query clients");
  cli.add_flag("reps", "3", "workload repetitions per client");
  cli.add_flag("cachemb", "64", "shared cache budget (MB)");
  if (!bench::parse_standard_flags(cli, argc, argv)) return 0;
  const bool smoke = cli.get_bool("smoke");
  const int clients = static_cast<int>(cli.get_int("clients"));
  const int reps = smoke ? 2 : static_cast<int>(cli.get_int("reps"));
  const Shape3 shape = smoke                  ? Shape3{32, 32, 64}
                       : cli.get_bool("full") ? Shape3{128, 128, 256}
                                              : Shape3{64, 64, 128};

  // The fault-injection layer is compiled into every decode path this
  // bench measures; the gated numbers are only meaningful with it
  // DISARMED (one relaxed load per hook, the zero-cost-when-disabled
  // claim the speedup gate now also guards).
  if (amrvis::fault::enabled()) {
    std::fprintf(stderr,
                 "FATAL: a fault plan is armed (AMRVIS_FAULT_SPEC?); "
                 "bench numbers would be meaningless\n");
    return 1;
  }
  // Same policy for tracing: span emission serializes scope exits through
  // the ring mutex, which is exactly the contention this bench measures.
  if (obs::trace_armed()) {
    std::fprintf(stderr,
                 "FATAL: tracing is armed (AMRVIS_TRACE?); gated bench "
                 "numbers must be measured with spans disarmed\n");
    return 1;
  }

  Array3<double> field = core::uniform_truth_field(
      "warpx", shape, static_cast<std::uint64_t>(cli.get_int("seed")));

  // Two-level hierarchy under the chunked codec: real tile traffic on
  // both levels, small tiles so ROIs touch many container slots.
  sim::TaggingSpec spec;
  spec.fine_fraction = 0.3;
  spec.block = 4;
  spec.max_grid_size = 32;
  const sim::SyntheticDataset ds =
      sim::build_two_level_hierarchy(std::move(field), spec);
  const auto codec = compress::make_compressor("chunked-sz-lr@16x16x16");
  const compress::AmrCompressed compressed = compress::compress_hierarchy(
      ds.hierarchy, *codec, 1e-3, compress::RedundantHandling::kKeep);
  const amr::Box finest = compressed.domains.back();

  bench::banner(
      "Concurrent query service (extension)",
      "N clients, mixed point/plane/region workload; shared cache+pool "
      "vs sequential uncached single-caller runs");

  std::vector<Workload> workloads;
  workloads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c)
    workloads.push_back(make_workload(c, finest, reps));
  std::int64_t total_queries = 0;
  for (const Workload& w : workloads)
    total_queries += static_cast<std::int64_t>(w.requests.size());

  service::ServiceOptions opts;
  opts.cache_bytes =
      static_cast<std::size_t>(cli.get_int("cachemb")) << 20;

  // Both phases are timed best-of-kRounds: the workloads are
  // deterministic, so repeat rounds re-measure the same work and the min
  // discards OS-scheduling noise (this container shares one core). For
  // the shared service, round 1 warms the cache and later rounds measure
  // steady state — which is the state an interactive service lives in.
  constexpr int kRounds = 3;

  // ---- baseline: each client sequentially, uncached primitives ----
  // This is what N independent viewers cost before this layer existed:
  // every query re-inflates the tiles it touches, every round.
  std::vector<std::vector<service::Response>> reference(
      static_cast<std::size_t>(clients));
  std::int64_t seq_decodes = 0;
  double seq_s = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    Timer seq_timer;
    for (int c = 0; c < clients; ++c) {
      auto& out = reference[static_cast<std::size_t>(c)];
      const auto& reqs = workloads[static_cast<std::size_t>(c)].requests;
      out.clear();
      out.reserve(reqs.size());
      for (const auto& req : reqs) {
        service::Response resp;
        compress::RegionDecodeStats rs;
        switch (req.kind) {
          case service::Request::Kind::kPoint:
            resp.value = amr::sample_point_compressed(compressed, *codec,
                                                      req.point, &rs);
            break;
          case service::Request::Kind::kPlane:
            resp.slice = amr::sample_plane_compressed(
                compressed, *codec, req.axis, req.plane_index, &rs);
            break;
          case service::Request::Kind::kRegion:
            resp.patches = compress::decompress_level_region(
                compressed, *codec, req.level, req.region, &rs);
            break;
          case service::Request::Kind::kIso:
            break;  // workload has no iso requests
        }
        if (round == 0) seq_decodes += rs.tiles_decoded;
        out.push_back(std::move(resp));
      }
    }
    const double s = seq_timer.seconds();
    seq_s = (round == 0) ? s : std::min(seq_s, s);
  }

  // ---- measured: one shared service, all clients concurrent ----
  service::QueryService shared(compressed, *codec, opts);
  std::vector<std::vector<service::Response>> concurrent(
      static_cast<std::size_t>(clients));
  // Every concurrent request's service_ms, accumulated across ALL rounds
  // so the sample set matches the registry histogram exactly (the service
  // observes each request into "service.service_ms" as it executes).
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(total_queries * kRounds));
  double conc_s = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    for (auto& per_client : concurrent) per_client.clear();
    std::atomic<int> start_gate{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    Timer conc_timer;
    for (int c = 0; c < clients; ++c)
      threads.emplace_back([&, c] {
        start_gate.fetch_add(1);
        while (start_gate.load() < clients) std::this_thread::yield();
        auto& out = concurrent[static_cast<std::size_t>(c)];
        const auto& reqs = workloads[static_cast<std::size_t>(c)].requests;
        out.reserve(reqs.size());
        for (const auto& req : reqs) out.push_back(shared.execute(req));
      });
    for (auto& t : threads) t.join();
    const double s = conc_timer.seconds();
    conc_s = (round == 0) ? s : std::min(conc_s, s);
    for (const auto& per_client : concurrent)
      for (const auto& resp : per_client)
        latencies.push_back(resp.stats.service_ms);
  }

  // Correctness before speed: the shared concurrent run must be
  // bit-identical to the uncached single-caller baseline.
  for (int c = 0; c < clients; ++c)
    for (std::size_t q = 0;
         q < reference[static_cast<std::size_t>(c)].size(); ++q)
      if (!responses_identical(reference[static_cast<std::size_t>(c)][q],
                               concurrent[static_cast<std::size_t>(c)][q])) {
        std::fprintf(stderr,
                     "FATAL: concurrent response differs from uncached "
                     "single-caller reference (client %d, query %zu)\n",
                     c, q);
        return 1;
      }

  std::sort(latencies.begin(), latencies.end());

  // The reported p50/p95/p99 come from the obs registry histogram the
  // service populated while executing — not from the private sample
  // vector. The samples only CHECK the histogram: the rank conventions
  // match, so each sample percentile must land inside the bucket
  // quantile_bucket() reports; any drift means the instrumentation
  // dropped or double-counted observations.
  const obs::Histogram& service_hist =
      obs::histogram("service.service_ms", obs::latency_ms_buckets());
  if (service_hist.count() != latencies.size()) {
    std::fprintf(stderr,
                 "FATAL: registry histogram saw %llu observations but the "
                 "bench collected %zu samples\n",
                 static_cast<unsigned long long>(service_hist.count()),
                 latencies.size());
    return 1;
  }
  const double quantiles[] = {0.50, 0.95, 0.99};
  double hist_p[3] = {0.0, 0.0, 0.0};
  for (int i = 0; i < 3; ++i) {
    const auto bucket = service_hist.quantile_bucket(quantiles[i]);
    const double sample = percentile(latencies, quantiles[i]);
    if (!(sample > bucket.lo && sample <= bucket.hi)) {
      std::fprintf(stderr,
                   "FATAL: sample p%.0f=%.6f ms falls outside the registry "
                   "histogram's quantile bucket (%.6f, %.6f]\n",
                   quantiles[i] * 100.0, sample, bucket.lo, bucket.hi);
      return 1;
    }
    if (!std::isfinite(bucket.hi)) {
      std::fprintf(stderr,
                   "FATAL: p%.0f landed in the histogram overflow bucket "
                   "(> %.0f ms) — not a reportable latency\n",
                   quantiles[i] * 100.0, obs::latency_ms_buckets().back());
      return 1;
    }
    hist_p[i] = bucket.hi;
  }

  const double seq_qps = static_cast<double>(total_queries) / seq_s;
  const double conc_qps = static_cast<double>(total_queries) / conc_s;
  const double speedup = conc_qps / seq_qps;
  const auto shared_ctr = shared.counters();

  std::printf("%-28s %10s %12s %10s\n", "mode", "queries", "queries/s",
              "decodes");
  std::printf("%-28s %10lld %12.1f %10lld\n", "sequential uncached (base)",
              static_cast<long long>(total_queries), seq_qps,
              static_cast<long long>(seq_decodes));
  std::printf("%-28s %10lld %12.1f %10lld\n", "concurrent shared",
              static_cast<long long>(total_queries), conc_qps,
              static_cast<long long>(shared_ctr.tiles_decoded));
  std::printf("\naggregate speedup: %.2fx   cache hits: %lld   "
              "latency ms p50/p95/p99 <= %.3f/%.3f/%.3f (registry "
              "histogram; samples %.3f/%.3f/%.3f)\n",
              speedup, static_cast<long long>(shared_ctr.cache_hits),
              hist_p[0], hist_p[1], hist_p[2],
              percentile(latencies, 0.50), percentile(latencies, 0.95),
              percentile(latencies, 0.99));

  bench::JsonReport report(
      "service",
      "N-client mixed workload; speedup = aggregate queries/s of the "
      "shared concurrent service over sequential uncached single-caller "
      "runs (single-core: decode elimination, not scheduling)");
  report.add_record()
      .set("stage", "config")
      .set("field", "warpx_like_ez")
      .set("nx", shape.nx)
      .set("ny", shape.ny)
      .set("nz", shape.nz)
      .set("clients", static_cast<std::int64_t>(clients))
      .set("reps", static_cast<std::int64_t>(reps))
      .set("fault_hooks", std::int64_t{0});  // layer present, disarmed
  report.add_record()
      .set("stage", "sequential")
      .set("queries", total_queries)
      .set("queries_per_s", seq_qps)
      .set("tiles_decoded", seq_decodes);
  report.add_record()
      .set("stage", "concurrent")
      .set("queries", total_queries)
      .set("queries_per_s", conc_qps)
      .set("tiles_decoded", shared_ctr.tiles_decoded)
      .set("cache_hits", shared_ctr.cache_hits)
      .set("p50_ms", hist_p[0])
      .set("p95_ms", hist_p[1])
      .set("p99_ms", hist_p[2]);
  report.add_record()
      .set("stage", "speedup")
      .set("clients", static_cast<std::int64_t>(clients))
      .set("speedup", speedup);
  report.set_metrics_json(obs::snapshot_json());
  report.write(cli.get("json"));
  return 0;
}
