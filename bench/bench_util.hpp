#pragma once
// Shared scaffolding for the paper-reproduction bench binaries: common
// flags (--full for paper-scale grids, --smoke for sub-10s CI runs,
// --seed, --json), table printing helpers, and machine-readable JSON
// emission so the BENCH_* trajectory can be populated and gated in CI.
// Each bench regenerates one table or figure of the paper; see DESIGN.md
// §4 for the index.

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "util/bytestream.hpp"
#include "util/cli.hpp"

namespace amrvis::bench {

/// Keep `value` (and the computation feeding it) alive under the
/// optimizer, google-benchmark's DoNotOptimize without the dependency.
template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// Standard bench flags; returns false if --help was printed.
inline bool parse_standard_flags(Cli& cli, int argc, char** argv) {
  cli.add_flag("full", "0", "paper-scale grids (slow)");
  cli.add_flag("smoke", "0", "shrunken grids so the bench finishes in seconds");
  cli.add_flag("seed", "42", "dataset generation seed");
  cli.add_flag("json", "", "write machine-readable results to this path");
  return cli.parse(argc, argv);
}

/// Print a banner naming the paper artifact this bench regenerates.
inline void banner(const std::string& artifact, const std::string& note) {
  std::printf("==============================================================="
              "=\n%s\n%s\n"
              "================================================================"
              "\n",
              artifact.c_str(), note.c_str());
}

/// Machine-readable bench results: a flat list of records (one per
/// measured configuration), each an ordered set of key -> value fields.
/// Written as pretty-printed JSON so committed baselines diff cleanly:
///
///   {
///     "bench": "throughput",
///     "note": "...",
///     "records": [
///       {"codec": "sz-lr", "stage": "compress", "mb_per_s": 123.4, ...}
///     ]
///   }
///
/// CI consumes this via tools/check_bench_regression.py.
class JsonReport {
 public:
  explicit JsonReport(std::string bench, std::string note = "")
      : bench_(std::move(bench)), note_(std::move(note)) {}

  class Record {
   public:
    Record& set(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, quote(value));
      return *this;
    }
    Record& set(const std::string& key, const char* value) {
      return set(key, std::string(value));
    }
    Record& set(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.9g", value);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Record& set(const std::string& key, std::int64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }

   private:
    friend class JsonReport;
    static std::string quote(const std::string& s) {
      std::string out = "\"";
      for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// References stay valid across later add_record() calls (deque).
  Record& add_record() { return records_.emplace_back(); }

  /// Attach a pre-rendered JSON object (e.g. obs::snapshot_json()) as a
  /// top-level "metrics" member. The string must already be valid JSON;
  /// it is embedded verbatim, not quoted.
  void set_metrics_json(std::string json) { metrics_json_ = std::move(json); }

  [[nodiscard]] std::string render() const {
    std::string out = "{\n  \"bench\": " + Record::quote(bench_);
    if (!note_.empty()) out += ",\n  \"note\": " + Record::quote(note_);
    if (!metrics_json_.empty()) out += ",\n  \"metrics\": " + metrics_json_;
    out += ",\n  \"records\": [";
    for (std::size_t r = 0; r < records_.size(); ++r) {
      out += r == 0 ? "\n" : ",\n";
      out += "    {";
      const auto& fields = records_[r].fields_;
      for (std::size_t f = 0; f < fields.size(); ++f) {
        if (f > 0) out += ", ";
        out += Record::quote(fields[f].first) + ": " + fields[f].second;
      }
      out += "}";
    }
    out += "\n  ]\n}\n";
    return out;
  }

  /// Write to `path`; no-op when the path is empty (flag unset).
  void write(const std::string& path) const {
    if (path.empty()) return;
    const std::string text = render();
    write_file(path, {reinterpret_cast<const std::uint8_t*>(text.data()),
                      text.size()});
    std::printf("[json] wrote %zu records to %s\n", records_.size(),
                path.c_str());
  }

 private:
  std::string bench_;
  std::string note_;
  std::string metrics_json_;
  std::deque<Record> records_;
};

}  // namespace amrvis::bench
