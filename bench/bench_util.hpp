#pragma once
// Shared scaffolding for the paper-reproduction bench binaries: common
// flags (--full for paper-scale grids, --seed, --csv) and table printing
// helpers. Each bench regenerates one table or figure of the paper; see
// DESIGN.md §4 for the index.

#include <cstdio>
#include <string>
#include <vector>

#include "util/cli.hpp"

namespace amrvis::bench {

/// Standard bench flags; returns false if --help was printed.
inline bool parse_standard_flags(Cli& cli, int argc, char** argv) {
  cli.add_flag("full", "0", "paper-scale grids (slow)");
  cli.add_flag("seed", "42", "dataset generation seed");
  return cli.parse(argc, argv);
}

/// Print a banner naming the paper artifact this bench regenerates.
inline void banner(const std::string& artifact, const std::string& note) {
  std::printf("==============================================================="
              "=\n%s\n%s\n"
              "================================================================"
              "\n",
              artifact.c_str(), note.c_str());
}

}  // namespace amrvis::bench
