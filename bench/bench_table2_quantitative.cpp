// Reproduces paper Table 2: CR / PSNR / SSIM / R-SSIM for
// {WarpX, Nyx} x {SZ-L/R, SZ-Interp} x relative eb {1e-4, 1e-3, 1e-2}.
//
// Paper values for comparison (CR rows):
//   WarpX SZ-L/R  23.7 / 31.4 / 42.3    SZ-Itp 32.4 / 45.1 / 52.6
//   Nyx   SZ-L/R  14.6 / 28.6 / 61.9    SZ-Itp 15.8 / 34.7 / 77.9

#include "bench_util.hpp"
#include "compress/compressor.hpp"
#include "core/datasets.hpp"
#include "core/study.hpp"

int main(int argc, char** argv) {
  using namespace amrvis;
  Cli cli;
  if (!bench::parse_standard_flags(cli, argc, argv)) return 0;
  const bool full = cli.get_bool("full");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  bench::banner("Table 2: detailed quantitative results",
                "rows: CR, PSNR, SSIM, R-SSIM per codec");

  const std::vector<double> ebs{1e-4, 1e-3, 1e-2};
  std::printf("%-12s %-10s", "Application", "ErrorBound");
  for (double eb : ebs) std::printf(" %12.0e", eb);
  std::printf("\n");

  for (const char* dataset_name : {"warpx", "nyx"}) {
    const core::DatasetSpec spec =
        core::dataset_spec(dataset_name, full, seed);
    const sim::SyntheticDataset dataset = core::make_dataset(spec);
    for (const char* codec_name : {"sz-lr", "sz-interp"}) {
      const auto codec = compress::make_compressor(codec_name);
      std::vector<core::StudyRow> rows;
      for (double eb : ebs)
        rows.push_back(core::run_compression_study(dataset, *codec, eb));

      std::printf("%-12s %-10s", dataset_name, codec_name);
      for (const auto& r : rows) std::printf(" %12.1f", r.ratio);
      std::printf("  | CR\n");
      std::printf("%-12s %-10s", "", "");
      for (const auto& r : rows) std::printf(" %12.2f", r.psnr_db);
      std::printf("  | PSNR\n");
      std::printf("%-12s %-10s", "", "");
      for (const auto& r : rows) std::printf(" %12.7f", r.ssim_value);
      std::printf("  | SSIM\n");
      std::printf("%-12s %-10s", "", "");
      for (const auto& r : rows) std::printf(" %12.3e", r.rssim());
      std::printf("  | R-SSIM\n");
    }
  }
  return 0;
}
