// Compressor-stage throughput (extension; the paper reports no timing
// table, but compression throughput is one of its three stated metrics,
// §2.1). google-benchmark over: end-to-end compress/decompress for each
// codec, plus the Huffman and LZSS stages in isolation.

#include <benchmark/benchmark.h>

#include "compress/compressor.hpp"
#include "compress/huffman.hpp"
#include "compress/lzss.hpp"
#include "sim/fields.hpp"
#include "util/rng.hpp"

namespace {

using namespace amrvis;

Array3<double> bench_field() {
  static const Array3<double> field = [] {
    sim::WarpXLikeSpec spec;
    return sim::warpx_like_ez({64, 64, 128}, spec);
  }();
  return field;
}

void BM_Compress(benchmark::State& state, const char* codec_name) {
  const auto codec = compress::make_compressor(codec_name);
  const Array3<double> data = bench_field();
  const double abs_eb =
      compress::resolve_abs_eb(compress::ErrorBoundMode::kRelative, 1e-3,
                               data.span());
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto blob = codec->compress(data.view(), abs_eb);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          data.size() * static_cast<std::int64_t>(sizeof(double)));
  state.counters["ratio"] =
      static_cast<double>(data.size()) * sizeof(double) /
      static_cast<double>(bytes);
}

void BM_Decompress(benchmark::State& state, const char* codec_name) {
  const auto codec = compress::make_compressor(codec_name);
  const Array3<double> data = bench_field();
  const double abs_eb =
      compress::resolve_abs_eb(compress::ErrorBoundMode::kRelative, 1e-3,
                               data.span());
  const Bytes blob = codec->compress(data.view(), abs_eb);
  for (auto _ : state) {
    auto out = codec->decompress(blob);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          data.size() * static_cast<std::int64_t>(sizeof(double)));
}

void BM_Huffman(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::uint32_t> syms;
  for (int i = 0; i < 1 << 20; ++i)
    syms.push_back(
        static_cast<std::uint32_t>(32768 + std::lround(rng.normal() * 2)));
  for (auto _ : state) {
    auto blob = compress::huffman_encode(syms);
    benchmark::DoNotOptimize(blob);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(syms.size()));
}

void BM_Lzss(benchmark::State& state) {
  Rng rng(6);
  Bytes input;
  for (int i = 0; i < 1 << 20; ++i)
    input.push_back(static_cast<std::uint8_t>(rng.next_below(16)));
  for (auto _ : state) {
    auto blob = compress::lzss_encode(input);
    benchmark::DoNotOptimize(blob);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(input.size()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Compress, sz_lr, "sz-lr")->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Compress, sz_interp, "sz-interp")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Compress, zfp_like, "zfp-like")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Decompress, sz_lr, "sz-lr")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Decompress, sz_interp, "sz-interp")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Decompress, zfp_like, "zfp-like")
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Huffman)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Lzss)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
