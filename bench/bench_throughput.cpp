// Compressor-stage throughput (extension; the paper reports no timing
// table, but compression throughput is one of its three stated metrics,
// §2.1). This is the harness of record for the BENCH_throughput.json
// trajectory: end-to-end compress/decompress for each codec plus the
// Huffman and LZSS stages in isolation (single-threaded), and the
// chunk-parallel container (chunked-<codec>) swept over OMP_NUM_THREADS
// 1/2/4/8. Machine-readable JSON emission (--json) is consumed by CI's
// regression + thread-scaling gates (tools/check_bench_regression.py);
// every record carries a `threads` field so baselines only match records
// measured at the same thread count.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "compress/compressor.hpp"
#include "compress/huffman.hpp"
#include "compress/lzss.hpp"
#include "core/datasets.hpp"
#include "metrics/quality.hpp"
#include "sim/fields.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace {

using namespace amrvis;

/// Median seconds per call: warm up once, then repeat until `min_ms` of
/// total measured time and at least 3 samples. Median (not mean) so a
/// stray scheduler hiccup on a busy CI runner can't poison the number.
template <typename Fn>
double time_median_s(double min_ms, const Fn& fn) {
  fn();  // warm-up: page in buffers, populate allocator pools
  std::vector<double> samples;
  double total = 0.0;
  while (total * 1e3 < min_ms || samples.size() < 3) {
    Timer t;
    fn();
    const double s = t.seconds();
    samples.push_back(s);
    total += s;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_flag("minms", "300", "min measured milliseconds per data point");
  cli.add_flag("field", "warpx",
               "dataset field: warpx (smooth Ez) or nyx (clumpy baryon "
               "density)");
  if (!bench::parse_standard_flags(cli, argc, argv)) return 0;
  const bool smoke = cli.get_bool("smoke");
  const double min_ms =
      smoke ? 30.0 : static_cast<double>(cli.get_double("minms"));

  // The acceptance field for the perf trajectory: WarpX-like Ez on a
  // 64x64x128 grid (4 MiB of doubles), single thread. --smoke shrinks it
  // so the ctest smoke entry stays fast; --full (128x128x256, 33 MB)
  // leaves every cache level behind and is recorded as the ungated
  // trajectory_full lane of BENCH_throughput.json. --field nyx swaps in
  // the clumpy Nyx-like baryon density, whose value distribution stresses
  // the quantizer/Huffman stages the smooth pulse cannot.
  const std::string field = cli.get("field");
  const std::string field_label =
      field == "nyx" ? "nyx_like_density" : "warpx_like_ez";
  const Shape3 shape = smoke              ? Shape3{32, 32, 64}
                       : cli.get_bool("full") ? Shape3{128, 128, 256}
                                              : Shape3{64, 64, 128};
  const Array3<double> data = core::uniform_truth_field(
      field, shape, static_cast<std::uint64_t>(cli.get_int("seed")));
  const auto raw_bytes =
      static_cast<double>(data.size()) * static_cast<double>(sizeof(double));
  const double mb = raw_bytes / 1e6;

  bench::banner("Throughput (extension)",
                "codec and entropy-stage rates, plus chunked multi-thread "
                "scaling; MB = 1e6 bytes");
  std::printf("field: %s %lldx%lldx%lld (%.1f MB)\n\n", field_label.c_str(),
              static_cast<long long>(shape.nx),
              static_cast<long long>(shape.ny),
              static_cast<long long>(shape.nz), mb);

  bench::JsonReport report(
      "throughput",
      "median-of-runs; MB = 1e6 bytes; records carry a threads field "
      "(plain codec/entropy stages are single-thread, chunked-* sweeps "
      "OMP_NUM_THREADS)");
  auto& cfg = report.add_record();
  cfg.set("stage", "config")
      .set("field", field_label)
      .set("nx", shape.nx)
      .set("ny", shape.ny)
      .set("nz", shape.nz)
      .set("threads", std::int64_t{1});

  std::printf("%-10s %-12s %10s %10s %10s\n", "codec", "stage", "MB/s",
              "ratio", "PSNR dB");
  for (const char* codec_name : {"sz-lr", "sz-interp", "zfp-like"}) {
    const auto codec = compress::make_compressor(codec_name);
    const double abs_eb = compress::resolve_abs_eb(
        compress::ErrorBoundMode::kRelative, 1e-3, data.span());

    const Bytes blob = codec->compress(data.view(), abs_eb);
    const Array3<double> out = codec->decompress(blob);
    const double ratio = compress::compression_ratio(data.size(), blob.size());
    const double psnr_db = metrics::psnr(data.span(), out.span());

    const double comp_s = time_median_s(min_ms, [&] {
      const Bytes b = codec->compress(data.view(), abs_eb);
      bench::do_not_optimize(b);
    });
    const double decomp_s = time_median_s(min_ms, [&] {
      const Array3<double> d = codec->decompress(blob);
      bench::do_not_optimize(d);
    });

    const double comp_mb_s = mb / comp_s;
    const double decomp_mb_s = mb / decomp_s;
    std::printf("%-10s %-12s %10.1f %10.2f %10.2f\n", codec_name, "compress",
                comp_mb_s, ratio, psnr_db);
    std::printf("%-10s %-12s %10.1f %10s %10s\n", codec_name, "decompress",
                decomp_mb_s, "-", "-");
    report.add_record()
        .set("codec", codec_name)
        .set("stage", "compress")
        .set("threads", std::int64_t{1})
        .set("mb_per_s", comp_mb_s)
        .set("ratio", ratio)
        .set("psnr_db", psnr_db);
    report.add_record()
        .set("codec", codec_name)
        .set("stage", "decompress")
        .set("threads", std::int64_t{1})
        .set("mb_per_s", decomp_mb_s);
  }

  // Chunk-parallel container: the same field through chunked-<codec> at
  // 1/2/4/8 threads. Blobs are bit-identical across thread counts by
  // construction, so ratio/PSNR are reported once per codec; MB/s is what
  // the thread sweep measures. Thread counts beyond the machine's cores
  // still run (oversubscribed) so the record set is machine-independent
  // and baseline matching stays exact.
  {
#ifdef _OPENMP
    const std::vector<int> sweep = {1, 2, 4, 8};
    const int restore_threads = omp_get_max_threads();
#else
    const std::vector<int> sweep = {1};
#endif
    for (const char* base_name : {"sz-lr", "sz-interp", "zfp-like"}) {
      const std::string chunked_name = std::string("chunked-") + base_name;
      const auto codec = compress::make_compressor(chunked_name);
      const double abs_eb = compress::resolve_abs_eb(
          compress::ErrorBoundMode::kRelative, 1e-3, data.span());
      const Bytes blob = codec->compress(data.view(), abs_eb);
      const Array3<double> out = codec->decompress(blob);
      const double ratio =
          compress::compression_ratio(data.size(), blob.size());
      const double psnr_db = metrics::psnr(data.span(), out.span());

      for (const int nt : sweep) {
#ifdef _OPENMP
        omp_set_num_threads(nt);
#endif
        const double comp_s = time_median_s(min_ms, [&] {
          const Bytes b = codec->compress(data.view(), abs_eb);
          bench::do_not_optimize(b);
        });
        const double decomp_s = time_median_s(min_ms, [&] {
          const Array3<double> d = codec->decompress(blob);
          bench::do_not_optimize(d);
        });
        const double comp_mb_s = mb / comp_s;
        const double decomp_mb_s = mb / decomp_s;
        std::printf("%-18s %-10s t=%d %10.1f MB/s (ratio %.2f)\n",
                    chunked_name.c_str(), "compress", nt, comp_mb_s, ratio);
        std::printf("%-18s %-10s t=%d %10.1f MB/s\n", chunked_name.c_str(),
                    "decompress", nt, decomp_mb_s);
        report.add_record()
            .set("codec", chunked_name)
            .set("stage", "compress")
            .set("threads", static_cast<std::int64_t>(nt))
            .set("mb_per_s", comp_mb_s)
            .set("ratio", ratio)
            .set("psnr_db", psnr_db);
        report.add_record()
            .set("codec", chunked_name)
            .set("stage", "decompress")
            .set("threads", static_cast<std::int64_t>(nt))
            .set("mb_per_s", decomp_mb_s);
      }
#ifdef _OPENMP
      omp_set_num_threads(restore_threads);
#endif
    }
  }

  // Entropy stages in isolation, on a quantizer-like symbol distribution
  // (narrow normal around the zero-residual code) and low-entropy bytes.
  {
    Rng rng(5);
    std::vector<std::uint32_t> syms;
    const int n = smoke ? 1 << 17 : 1 << 20;
    syms.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      syms.push_back(
          static_cast<std::uint32_t>(32768 + std::lround(rng.normal() * 2)));
    const double sym_mb =
        static_cast<double>(syms.size()) * sizeof(std::uint32_t) / 1e6;
    const Bytes enc = compress::huffman_encode(syms);

    const double enc_s = time_median_s(min_ms, [&] {
      const Bytes b = compress::huffman_encode(syms);
      bench::do_not_optimize(b);
    });
    const double dec_s = time_median_s(min_ms, [&] {
      const auto decoded = compress::huffman_decode(enc);
      bench::do_not_optimize(decoded);
    });
    std::printf("%-10s %-12s %10.1f %10s %10s\n", "huffman", "encode",
                sym_mb / enc_s, "-", "-");
    std::printf("%-10s %-12s %10.1f %10s %10s\n", "huffman", "decode",
                sym_mb / dec_s, "-", "-");
    report.add_record()
        .set("codec", "huffman")
        .set("stage", "encode")
        .set("threads", std::int64_t{1})
        .set("mb_per_s", sym_mb / enc_s)
        .set("msym_per_s", static_cast<double>(syms.size()) / enc_s / 1e6);
    report.add_record()
        .set("codec", "huffman")
        .set("stage", "decode")
        .set("threads", std::int64_t{1})
        .set("mb_per_s", sym_mb / dec_s)
        .set("msym_per_s", static_cast<double>(syms.size()) / dec_s / 1e6);
  }
  {
    // LZSS v2 at every parse level on low-entropy quantizer-like bytes.
    // Plain "lzss" is the default lazy level (continuing the historical
    // record series); the encode records carry the lossless ratio
    // (input/compressed) so the quality gate pins parser regressions,
    // not just speed.
    Rng rng(6);
    Bytes input;
    const int n = smoke ? 1 << 17 : 1 << 20;
    input.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      input.push_back(static_cast<std::uint8_t>(rng.next_below(16)));
    const double in_mb = static_cast<double>(input.size()) / 1e6;

    const struct {
      const char* name;
      compress::LzssLevel level;
    } levels[] = {{"lzss+fast", compress::LzssLevel::kFast},
                  {"lzss", compress::LzssLevel::kLazy},
                  {"lzss+optimal", compress::LzssLevel::kOptimal}};
    for (const auto& [lvl_name, level] : levels) {
      const Bytes enc = compress::lzss_encode(input, level);
      const double lossless_ratio = static_cast<double>(input.size()) /
                                    static_cast<double>(enc.size());

      const double enc_s = time_median_s(min_ms, [&] {
        const Bytes b = compress::lzss_encode(input, level);
        bench::do_not_optimize(b);
      });
      const double dec_s = time_median_s(min_ms, [&] {
        const Bytes b = compress::lzss_decode(enc);
        bench::do_not_optimize(b);
      });
      std::printf("%-12s %-12s %10.1f %10.3f %10s\n", lvl_name, "encode",
                  in_mb / enc_s, lossless_ratio, "-");
      std::printf("%-12s %-12s %10.1f %10s %10s\n", lvl_name, "decode",
                  in_mb / dec_s, "-", "-");
      report.add_record()
          .set("codec", lvl_name)
          .set("stage", "encode")
          .set("threads", std::int64_t{1})
          .set("mb_per_s", in_mb / enc_s)
          .set("ratio", lossless_ratio);
      report.add_record()
          .set("codec", lvl_name)
          .set("stage", "decode")
          .set("threads", std::int64_t{1})
          .set("mb_per_s", in_mb / dec_s);
    }
  }

  report.write(cli.get("json"));
  return 0;
}
