// Reproduces paper Figure 9: WarpX + SZ-L/R at eb in {1e-4, 1e-3, 1e-2},
// re-sampling (a-c) vs dual-cell (d-f) visual quality of decompressed
// data.
//
// Expected shape: image R-SSIM grows with eb for both methods, and the
// dual-cell rows are consistently worse than the re-sampling rows at the
// same bound (the dual-cell method amplifies the SZ-L/R block artifacts,
// §4.1).

#include "bench_util.hpp"
#include "compress/compressor.hpp"
#include "core/datasets.hpp"
#include "core/study.hpp"
#include "core/visual_study.hpp"

int main(int argc, char** argv) {
  using namespace amrvis;
  Cli cli;
  cli.add_flag("out", "", "prefix for PGM renders");
  cli.add_flag("codec", "sz-lr", "compressor under study");
  cli.add_flag("dataset", "warpx", "dataset under study");
  if (!bench::parse_standard_flags(cli, argc, argv)) return 0;

  const core::DatasetSpec spec = core::dataset_spec(
      cli.get("dataset"), cli.get_bool("full"),
      static_cast<std::uint64_t>(cli.get_int("seed")));
  const sim::SyntheticDataset dataset = core::make_dataset(spec);
  const double iso = core::pick_iso_value(spec, dataset.fine_truth);
  const auto codec = compress::make_compressor(cli.get("codec"));

  bench::banner(
      "Figure 9: " + cli.get("dataset") + " + " + cli.get("codec") +
          ", re-sampling vs dual-cell across error bounds",
      "image R-SSIM vs the original-data render of the same pipeline");

  core::VisualStudyOptions options;
  options.axis = core::render_axis(spec);
  std::printf("%-8s %8s %10s | %-18s %14s %12s %10s\n", "eb", "CR",
              "R-SSIM", "vis method", "image R-SSIM", "area dev",
              "edges");
  for (const double eb : {1e-4, 1e-3, 1e-2}) {
    amr::AmrHierarchy decompressed;
    const core::StudyRow row = core::run_compression_study(
        dataset, *codec, eb, compress::RedundantHandling::kMeanFill,
        &decompressed);
    for (const auto method : {vis::VisMethod::kResampling,
                              vis::VisMethod::kDualCellSwitching}) {
      if (!cli.get("out").empty())
        options.dump_prefix = cli.get("out") + "_eb" + std::to_string(eb) +
                              "_" + vis::vis_method_name(method);
      const auto vr = core::run_visual_study(dataset, decompressed, iso,
                                             method, options);
      if (method == vis::VisMethod::kResampling)
        std::printf("%-8.0e %8.1f %10.3e | %-18s %14.3e %11.2f%% %10lld\n",
                    eb, row.ratio, row.rssim(), vis::vis_method_name(method),
                    vr.image_rssim(), 100.0 * vr.area_deviation(),
                    static_cast<long long>(
                        vr.decompressed_cracks.interior_boundary_edges));
      else
        std::printf("%-8s %8s %10s | %-18s %14.3e %11.2f%% %10lld\n", "",
                    "", "", vis::vis_method_name(method), vr.image_rssim(),
                    100.0 * vr.area_deviation(),
                    static_cast<long long>(
                        vr.decompressed_cracks.interior_boundary_edges));
    }
  }
  std::printf("\n(dual-cell rows should show larger image R-SSIM than "
              "re-sampling at every eb)\n");
  return 0;
}
