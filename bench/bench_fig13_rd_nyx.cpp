// Reproduces paper Figure 13: rate-distortion on the Nyx "Density" field
// — PSNR vs CR (13a) and R-SSIM vs CR (13b), SZ-L/R vs SZ-Interp.
//
// Expected shape: unlike WarpX, SZ-Interp does NOT dominate; SZ-L/R's
// block-local prediction captures the irregular structure better and wins
// R-SSIM (paper §4.2).

#include "bench_util.hpp"
#include "compress/compressor.hpp"
#include "core/datasets.hpp"
#include "core/study.hpp"

int main(int argc, char** argv) {
  using namespace amrvis;
  Cli cli;
  if (!bench::parse_standard_flags(cli, argc, argv)) return 0;

  const core::DatasetSpec spec = core::nyx_spec(
      cli.get_bool("full"), static_cast<std::uint64_t>(cli.get_int("seed")));
  const sim::SyntheticDataset dataset = core::make_dataset(spec);

  bench::banner("Figure 13: rate-distortion on nyx \"Density\"",
                "series: PSNR vs CR and R-SSIM vs CR, SZ-L/R vs SZ-Interp");

  const std::vector<double> ebs{5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2};
  std::printf("%-10s %-8s %10s %10s %12s\n", "codec", "eb", "CR", "PSNR",
              "R-SSIM");
  for (const char* codec_name : {"sz-lr", "sz-interp"}) {
    const auto codec = compress::make_compressor(codec_name);
    const auto points = core::rate_distortion_sweep(dataset, *codec, ebs);
    for (const auto& p : points)
      std::printf("%-10s %-8.0e %10.2f %10.2f %12.3e\n", codec_name,
                  p.rel_eb, p.ratio, p.psnr_db, p.rssim());
  }
  std::printf("\n(sz-lr should match or beat sz-interp in R-SSIM at equal "
              "CR on this irregular data)\n");
  return 0;
}
