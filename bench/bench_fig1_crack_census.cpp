// Reproduces paper Figure 1 quantitatively: iso-surfaces of ORIGINAL
// (uncompressed) WarpX-like AMR data under (a) re-sampling, (b) dual-cell
// and (c) dual-cell with switching cells.
//
// Expected shape: (a) cracks — interior boundary edges with nonzero gap;
// (b) gaps — larger mean gap than (a)'s cracks; (c) gap bridged — mean
// gap far below both. Renders are written when --out is set.

#include "bench_util.hpp"
#include "core/datasets.hpp"
#include "core/visual_study.hpp"

int main(int argc, char** argv) {
  using namespace amrvis;
  Cli cli;
  cli.add_flag("out", "", "prefix for level-colored PPM renders");
  cli.add_flag("dataset", "warpx", "warpx (paper Fig. 1) or nyx");
  if (!bench::parse_standard_flags(cli, argc, argv)) return 0;

  const core::DatasetSpec spec = core::dataset_spec(
      cli.get("dataset"), cli.get_bool("full"),
      static_cast<std::uint64_t>(cli.get_int("seed")));
  const sim::SyntheticDataset dataset = core::make_dataset(spec);
  const double iso = core::pick_iso_value(spec, dataset.fine_truth);

  bench::banner("Figure 1: crack/gap census on original AMR data",
                "re-sampling cracks vs dual-cell gaps vs switching cells");

  core::VisualStudyOptions options;
  options.axis = core::render_axis(spec);
  std::printf("%-20s %10s %14s %10s %10s\n", "method", "triangles",
              "interior edges", "mean gap", "max gap");
  for (const auto method :
       {vis::VisMethod::kResampling, vis::VisMethod::kDualCell,
        vis::VisMethod::kDualCellSwitching}) {
    if (!cli.get("out").empty())
      options.dump_prefix =
          cli.get("out") + "_" + vis::vis_method_name(method);
    const auto r =
        core::run_original_visual_census(dataset, iso, method, options);
    std::printf("%-20s %10zu %14lld %10.3f %10.3f\n",
                vis::vis_method_name(method), r.original_triangles,
                static_cast<long long>(
                    r.original_cracks.interior_boundary_edges),
                r.original_cracks.mean_gap, r.original_cracks.max_gap);
  }
  std::printf("\n(gap unit: finest-level cell width; dual-cell+switch "
              "should be smallest)\n");
  return 0;
}
