#pragma once
// Refinement tagging and grid generation: turn a finest-resolution truth
// field into a two-level patch-based hierarchy the way an AMReX regrid
// does (paper §2.2, Fig. 2): score blocks by a refinement criterion,
// threshold at a quantile calibrated to a target fine coverage, buffer,
// and cluster tagged blocks into rectangular patches.

#include <cstdint>
#include <vector>

#include "amr/hierarchy.hpp"
#include "util/array3d.hpp"

namespace amrvis::sim {

enum class RefineCriterion {
  kMaxValue,      ///< refine where the block max exceeds the threshold
  kMaxAbsValue,   ///< refine on |value| (signed fields like Ez)
  kGradient,      ///< refine on the max gradient magnitude in the block
};

struct TaggingSpec {
  RefineCriterion criterion = RefineCriterion::kMaxValue;
  double fine_fraction = 0.4;   ///< target fraction of the domain refined
  std::int64_t block = 8;       ///< tagging granularity in fine cells
  std::int64_t buffer_blocks = 1;  ///< dilation around tagged blocks
  std::int64_t max_grid_size = 64; ///< patches are split to at most this
};

/// Two-level dataset: the hierarchy plus the uniform truth field it was
/// built from (kept for reference-quality comparisons).
struct SyntheticDataset {
  amr::AmrHierarchy hierarchy;
  Array3<double> fine_truth;
};

/// Build a two-level hierarchy from `fine_field` (defined on the fine
/// domain). Level 0 is the conservative average of the field at half
/// resolution (split into max_grid_size^3 patches); level 1 contains the
/// clustered fine patches. Fine extents must be divisible by 2*block.
SyntheticDataset build_two_level_hierarchy(Array3<double> fine_field,
                                           const TaggingSpec& spec);

/// Greedy rectangular clustering of tagged blocks (in block units):
/// x-runs merged into y-plates merged into z-bricks.
std::vector<amr::Box> cluster_tags(const Array3<std::uint8_t>& tags);

/// Per-block refinement scores for `field` at granularity `block`.
Array3<double> block_scores(const Array3<double>& field,
                            RefineCriterion criterion, std::int64_t block);

}  // namespace amrvis::sim
