#pragma once
// A small periodic advection-diffusion stepper used to "evolve" a truth
// field over time, so examples can show AMR grid structures adapting
// across timesteps (paper Fig. 2).

#include "util/array3d.hpp"

namespace amrvis::sim {

struct AdvectionSpec {
  double vx = 0.6, vy = 0.3, vz = 0.2;  ///< cells per step
  double diffusion = 0.05;              ///< explicit diffusion coefficient
};

/// Advance `field` by `steps` first-order upwind advection-diffusion
/// steps with periodic boundaries. CFL is the caller's responsibility
/// (|v| < 1 and diffusion < 1/6 keep it stable).
void advect_diffuse(Array3<double>& field, const AdvectionSpec& spec,
                    int steps);

}  // namespace amrvis::sim
