#include "sim/advection.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace amrvis::sim {

void advect_diffuse(Array3<double>& field, const AdvectionSpec& spec,
                    int steps) {
  AMRVIS_REQUIRE(std::abs(spec.vx) < 1.0 && std::abs(spec.vy) < 1.0 &&
                 std::abs(spec.vz) < 1.0);
  AMRVIS_REQUIRE(spec.diffusion >= 0.0 && spec.diffusion < 1.0 / 6.0);
  const Shape3 s = field.shape();
  Array3<double> next(s);
  auto wrap = [](std::int64_t i, std::int64_t n) {
    return i < 0 ? i + n : (i >= n ? i - n : i);
  };
  for (int step = 0; step < steps; ++step) {
    auto f = field.view();
    auto g = next.view();
    parallel_for(s.nz, [&](std::int64_t k) {
      for (std::int64_t j = 0; j < s.ny; ++j)
        for (std::int64_t i = 0; i < s.nx; ++i) {
          const double c = f(i, j, k);
          // Upwind differences.
          const double dx =
              spec.vx >= 0 ? c - f(wrap(i - 1, s.nx), j, k)
                           : f(wrap(i + 1, s.nx), j, k) - c;
          const double dy =
              spec.vy >= 0 ? c - f(i, wrap(j - 1, s.ny), k)
                           : f(i, wrap(j + 1, s.ny), k) - c;
          const double dz =
              spec.vz >= 0 ? c - f(i, j, wrap(k - 1, s.nz))
                           : f(i, j, wrap(k + 1, s.nz)) - c;
          const double lap = f(wrap(i - 1, s.nx), j, k) +
                             f(wrap(i + 1, s.nx), j, k) +
                             f(i, wrap(j - 1, s.ny), k) +
                             f(i, wrap(j + 1, s.ny), k) +
                             f(i, j, wrap(k - 1, s.nz)) +
                             f(i, j, wrap(k + 1, s.nz)) - 6.0 * c;
          g(i, j, k) = c - std::abs(spec.vx) * dx - std::abs(spec.vy) * dy -
                       std::abs(spec.vz) * dz + spec.diffusion * lap;
        }
    });
    std::swap(field, next);
  }
}

}  // namespace amrvis::sim
