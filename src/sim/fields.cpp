#include "sim/fields.hpp"

#include <cmath>

#include "sim/grf.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace amrvis::sim {

Array3<double> nyx_like_density(Shape3 shape, const NyxLikeSpec& spec) {
  GrfSpec grf;
  grf.seed = spec.seed;
  grf.spectral_index = 3.0;
  Array3<double> delta = gaussian_random_field(shape, grf);

  // Lognormal transform: positive, skewed, filamentary.
  Array3<double> rho(shape);
  parallel_for(rho.size(), [&](std::int64_t i) {
    rho[i] = std::exp(spec.lognormal_bias * delta[i]);
  });

  // Halo injection: compact high-density peaks with a power-law
  // amplitude distribution, the structures iso-surface studies key on.
  Rng rng(spec.seed * 7919 + 17);
  auto rv = rho.view();
  for (int h = 0; h < spec.num_halos; ++h) {
    const double cx = rng.uniform(0.0, static_cast<double>(shape.nx));
    const double cy = rng.uniform(0.0, static_cast<double>(shape.ny));
    const double cz = rng.uniform(0.0, static_cast<double>(shape.nz));
    const double amp =
        spec.halo_amplitude * std::pow(rng.next_double() + 0.05, -0.8);
    const double sigma =
        rng.uniform(1.5, 4.0) * static_cast<double>(shape.nx) / 128.0;
    const double inv2s2 = 1.0 / (2.0 * sigma * sigma);
    // Only touch a local window around the halo.
    const auto lo = [&](double c) {
      return std::max<std::int64_t>(
          0, static_cast<std::int64_t>(c - 4.0 * sigma));
    };
    const auto hi = [&](double c, std::int64_t n) {
      return std::min<std::int64_t>(
          n - 1, static_cast<std::int64_t>(c + 4.0 * sigma));
    };
    for (std::int64_t k = lo(cz); k <= hi(cz, shape.nz); ++k)
      for (std::int64_t j = lo(cy); j <= hi(cy, shape.ny); ++j)
        for (std::int64_t i = lo(cx); i <= hi(cx, shape.nx); ++i) {
          const double dx = static_cast<double>(i) - cx;
          const double dy = static_cast<double>(j) - cy;
          const double dz = static_cast<double>(k) - cz;
          rv(i, j, k) +=
              amp * std::exp(-(dx * dx + dy * dy + dz * dz) * inv2s2);
        }
  }
  return rho;
}

Array3<double> warpx_like_ez(Shape3 shape, const WarpXLikeSpec& spec) {
  Array3<double> ez(shape);
  auto v = ez.view();
  const double nz = static_cast<double>(shape.nz);
  const double z0 = spec.pulse_center_z * nz;
  const double sz = spec.pulse_sigma_z * nz;
  const double sr = spec.pulse_sigma_r * static_cast<double>(shape.nx);
  const double k_carrier =
      2.0 * 3.14159265358979323846 * spec.carrier_periods / (6.0 * sz);
  const double k_wake =
      2.0 * 3.14159265358979323846 * spec.wake_periods / (z0 + 1.0);
  const double cx = static_cast<double>(shape.nx - 1) / 2.0;
  const double cy = static_cast<double>(shape.ny - 1) / 2.0;

  parallel_for(shape.nz, [&](std::int64_t k) {
    const double z = static_cast<double>(k);
    const double dz = z - z0;
    const double env_z = std::exp(-dz * dz / (2.0 * sz * sz));
    // Wake exists behind the pulse, decaying slowly away from it.
    const double behind = dz < 0 ? std::exp(dz / (16.0 * sz)) : 0.0;
    for (std::int64_t j = 0; j < shape.ny; ++j)
      for (std::int64_t i = 0; i < shape.nx; ++i) {
        const double rx = static_cast<double>(i) - cx;
        const double ry = static_cast<double>(j) - cy;
        const double env_r =
            std::exp(-(rx * rx + ry * ry) / (2.0 * sr * sr));
        const double pulse = env_z * env_r * std::cos(k_carrier * dz);
        const double wake =
            spec.wake_amplitude * behind * env_r * std::sin(k_wake * dz);
        // Weak global field structure (boundary fields, residual EM
        // modes): smooth variation present across the whole box, as in
        // real PIC snapshots.
        const double background =
            0.06 * std::sin(0.11 * static_cast<double>(i)) *
            std::sin(0.09 * static_cast<double>(j)) *
            std::cos(0.05 * z);
        v(i, j, k) = pulse + wake + background;
      }
  });
  if (spec.noise_amplitude > 0) {
    // Deterministic per-cell noise independent of thread count.
    Rng rng(spec.seed * 1000003 + 9);
    for (std::int64_t i = 0; i < ez.size(); ++i)
      ez[i] += spec.noise_amplitude * rng.normal();
  }
  return ez;
}

Array3<double> sphere_field(Shape3 shape, double cx, double cy, double cz,
                            double radius) {
  Array3<double> f(shape);
  auto v = f.view();
  parallel_for(shape.nz, [&](std::int64_t k) {
    for (std::int64_t j = 0; j < shape.ny; ++j)
      for (std::int64_t i = 0; i < shape.nx; ++i) {
        const double dx = static_cast<double>(i) - cx;
        const double dy = static_cast<double>(j) - cy;
        const double dz = static_cast<double>(k) - cz;
        v(i, j, k) = radius - std::sqrt(dx * dx + dy * dy + dz * dz);
      }
  });
  return f;
}

}  // namespace amrvis::sim
