#pragma once
// Synthetic stand-ins for the paper's two AMR applications plus small
// analytic fields used by tests.
//
// - nyx_like_density: lognormal transform of a power-law Gaussian random
//   field with injected halo peaks — clumpy, irregular, strictly positive,
//   the qualitative fingerprint of the Nyx baryon-density snapshots.
// - warpx_like_ez: a focused laser pulse (Gaussian envelope x carrier
//   oscillation) plus a trailing plasma wake on an elongated domain — the
//   smooth anisotropic fingerprint of the WarpX "Ez" field.

#include <cstdint>

#include "util/array3d.hpp"

namespace amrvis::sim {

struct NyxLikeSpec {
  double lognormal_bias = 1.8;   ///< exp(bias * delta): clumpiness knob
  int num_halos = 60;            ///< injected high-density peaks
  double halo_amplitude = 40.0;  ///< peak density multiplier scale
  std::uint64_t seed = 42;
};

/// Clumpy positive density field on a power-of-two grid.
Array3<double> nyx_like_density(Shape3 shape, const NyxLikeSpec& spec = {});

struct WarpXLikeSpec {
  double pulse_center_z = 0.7;    ///< fraction of the z extent
  double pulse_sigma_z = 0.035;   ///< envelope width, fraction of z extent
  double pulse_sigma_r = 0.22;    ///< transverse width, fraction of x extent
  double carrier_periods = 4.0;  ///< oscillations under the envelope
  double wake_amplitude = 0.25;   ///< plasma wake relative amplitude
  double wake_periods = 5.0;      ///< wake oscillations behind the pulse
  /// PIC particle-noise floor relative to the pulse amplitude. Present in
  /// any real PIC field; it is what makes global interpolation beat the
  /// noise-amplifying Lorenzo predictor on smooth data (paper Fig. 12).
  double noise_amplitude = 0.002;
  std::uint64_t seed = 42;
};

/// Smooth signed field on an elongated (z-long) grid.
Array3<double> warpx_like_ez(Shape3 shape, const WarpXLikeSpec& spec = {});

/// |p - c| <= r sphere indicator smoothed: f = r - |p - c| (iso value 0 is
/// a sphere). Used by marching-cubes tests.
Array3<double> sphere_field(Shape3 shape, double cx, double cy, double cz,
                            double radius);

}  // namespace amrvis::sim
