#include "sim/grf.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/fft.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace amrvis::sim {

Array3<double> gaussian_random_field(Shape3 shape, const GrfSpec& spec) {
  AMRVIS_REQUIRE_MSG(is_pow2(shape.nx) && is_pow2(shape.ny) &&
                         is_pow2(shape.nz),
                     "GRF: extents must be powers of two");
  Array3<Complex> modes(shape);
  Rng rng(spec.seed);

  // Independent complex Gaussian mode amplitudes with |k|^-index/2 power.
  // Taking the real part of the inverse transform symmetrizes the field
  // (equivalent to averaging the mode with its Hermitian mirror).
  auto wavenumber = [](std::int64_t i, std::int64_t n) {
    const std::int64_t half = n / 2;
    const std::int64_t k = i <= half ? i : i - n;
    return static_cast<double>(k);
  };
  for (std::int64_t kz = 0; kz < shape.nz; ++kz)
    for (std::int64_t ky = 0; ky < shape.ny; ++ky)
      for (std::int64_t kx = 0; kx < shape.nx; ++kx) {
        const double wx = wavenumber(kx, shape.nx);
        const double wy = wavenumber(ky, shape.ny);
        const double wz = wavenumber(kz, shape.nz);
        const double k = std::sqrt(wx * wx + wy * wy + wz * wz);
        double amp = 0.0;
        if (k >= spec.kmin)
          amp = std::pow(k, -spec.spectral_index / 2.0);
        modes(kx, ky, kz) =
            Complex(rng.normal() * amp, rng.normal() * amp);
      }
  modes(0, 0, 0) = Complex(0.0, 0.0);  // zero mean

  fft_3d(modes, /*inverse=*/true);

  Array3<double> out(shape);
  for (std::int64_t i = 0; i < out.size(); ++i) out[i] = modes[i].real();

  // Normalize to zero mean, unit variance.
  const double m = mean(out.span());
  double var = 0.0;
  for (std::int64_t i = 0; i < out.size(); ++i) {
    out[i] -= m;
    var += out[i] * out[i];
  }
  var /= static_cast<double>(out.size());
  const double inv_std = var > 0 ? 1.0 / std::sqrt(var) : 1.0;
  for (std::int64_t i = 0; i < out.size(); ++i) out[i] *= inv_std;
  return out;
}

}  // namespace amrvis::sim
