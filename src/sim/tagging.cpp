#include "sim/tagging.hpp"

#include <algorithm>
#include <cmath>

#include "amr/sampling.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace amrvis::sim {

using amr::AmrHierarchy;
using amr::AmrLevel;
using amr::Box;
using amr::BoxArray;
using amr::FArrayBox;
using amr::IntVect;

Array3<double> block_scores(const Array3<double>& field,
                            RefineCriterion criterion, std::int64_t block) {
  const Shape3 fs = field.shape();
  const Shape3 bs{(fs.nx + block - 1) / block, (fs.ny + block - 1) / block,
                  (fs.nz + block - 1) / block};
  Array3<double> scores(bs, 0.0);
  auto sv = scores.view();
  auto fv = field.view();
  parallel_for(bs.nz, [&](std::int64_t bk) {
    for (std::int64_t bj = 0; bj < bs.ny; ++bj)
      for (std::int64_t bi = 0; bi < bs.nx; ++bi) {
        double score = -std::numeric_limits<double>::infinity();
        const std::int64_t k1 = std::min((bk + 1) * block, fs.nz);
        const std::int64_t j1 = std::min((bj + 1) * block, fs.ny);
        const std::int64_t i1 = std::min((bi + 1) * block, fs.nx);
        for (std::int64_t k = bk * block; k < k1; ++k)
          for (std::int64_t j = bj * block; j < j1; ++j)
            for (std::int64_t i = bi * block; i < i1; ++i) {
              double c = 0.0;
              switch (criterion) {
                case RefineCriterion::kMaxValue:
                  c = fv(i, j, k);
                  break;
                case RefineCriterion::kMaxAbsValue:
                  c = std::abs(fv(i, j, k));
                  break;
                case RefineCriterion::kGradient: {
                  const double gx =
                      fv(std::min(i + 1, fs.nx - 1), j, k) -
                      fv(std::max<std::int64_t>(i - 1, 0), j, k);
                  const double gy =
                      fv(i, std::min(j + 1, fs.ny - 1), k) -
                      fv(i, std::max<std::int64_t>(j - 1, 0), k);
                  const double gz =
                      fv(i, j, std::min(k + 1, fs.nz - 1)) -
                      fv(i, j, std::max<std::int64_t>(k - 1, 0));
                  c = std::sqrt(gx * gx + gy * gy + gz * gz);
                  break;
                }
              }
              score = std::max(score, c);
            }
        sv(bi, bj, bk) = score;
      }
  });
  return scores;
}

std::vector<Box> cluster_tags(const Array3<std::uint8_t>& tags) {
  const Shape3 s = tags.shape();
  // Step 1: x-runs per (j, k).
  struct Run {
    std::int64_t x0, x1, y0, y1, z0, z1;
  };
  std::vector<Run> runs;
  for (std::int64_t k = 0; k < s.nz; ++k)
    for (std::int64_t j = 0; j < s.ny; ++j) {
      std::int64_t i = 0;
      while (i < s.nx) {
        if (!tags(i, j, k)) {
          ++i;
          continue;
        }
        std::int64_t start = i;
        while (i < s.nx && tags(i, j, k)) ++i;
        runs.push_back({start, i - 1, j, j, k, k});
      }
    }

  // Step 2: merge runs with identical x-extent adjacent in y (same z).
  std::vector<Run> plates;
  for (const Run& r : runs) {
    bool merged = false;
    for (Run& p : plates)
      if (p.z0 == r.z0 && p.z1 == r.z1 && p.x0 == r.x0 && p.x1 == r.x1 &&
          p.y1 + 1 == r.y0) {
        p.y1 = r.y1;
        merged = true;
        break;
      }
    if (!merged) plates.push_back(r);
  }

  // Step 3: merge plates with identical (x, y)-extent adjacent in z.
  std::vector<Run> bricks;
  for (const Run& p : plates) {
    bool merged = false;
    for (Run& b : bricks)
      if (b.x0 == p.x0 && b.x1 == p.x1 && b.y0 == p.y0 && b.y1 == p.y1 &&
          b.z1 + 1 == p.z0) {
        b.z1 = p.z1;
        merged = true;
        break;
      }
    if (!merged) bricks.push_back(p);
  }

  std::vector<Box> out;
  out.reserve(bricks.size());
  for (const Run& b : bricks)
    out.emplace_back(IntVect{b.x0, b.y0, b.z0}, IntVect{b.x1, b.y1, b.z1});
  return out;
}

namespace {

/// Split a box into pieces no larger than `max_size` per dimension.
void split_box(const Box& b, std::int64_t max_size, std::vector<Box>& out) {
  const IntVect sz = b.size();
  if (sz.x <= max_size && sz.y <= max_size && sz.z <= max_size) {
    out.push_back(b);
    return;
  }
  // Split the longest axis in half (aligned to 2 for refinement parity).
  int axis = 0;
  if (sz.y > sz[axis]) axis = 1;
  if (sz.z > sz[axis]) axis = 2;
  IntVect hi = b.hi();
  const std::int64_t mid =
      b.lo()[axis] + ((sz[axis] / 2 + 1) & ~std::int64_t{1}) - 1;
  hi[axis] = mid;
  IntVect lo2 = b.lo();
  lo2[axis] = mid + 1;
  split_box(Box{b.lo(), hi}, max_size, out);
  split_box(Box{lo2, b.hi()}, max_size, out);
}

}  // namespace

namespace {

Array3<std::uint8_t> dilate_tags(const Array3<std::uint8_t>& tags,
                                 std::int64_t r) {
  if (r <= 0) return tags;
  const Shape3 bs = tags.shape();
  Array3<std::uint8_t> dilated(bs, 0);
  auto tv = tags.view();
  auto dv = dilated.view();
  for (std::int64_t k = 0; k < bs.nz; ++k)
    for (std::int64_t j = 0; j < bs.ny; ++j)
      for (std::int64_t i = 0; i < bs.nx; ++i) {
        if (!tv(i, j, k)) continue;
        for (std::int64_t dk = -r; dk <= r; ++dk)
          for (std::int64_t dj = -r; dj <= r; ++dj)
            for (std::int64_t di = -r; di <= r; ++di) {
              const std::int64_t a = i + di, b = j + dj, c = k + dk;
              if (a >= 0 && a < bs.nx && b >= 0 && b < bs.ny && c >= 0 &&
                  c < bs.nz)
                dv(a, b, c) = 1;
            }
      }
  return dilated;
}

Array3<std::uint8_t> tags_for_threshold(const Array3<double>& scores,
                                        double threshold, std::int64_t r) {
  Array3<std::uint8_t> tags(scores.shape(), 0);
  for (std::int64_t i = 0; i < scores.size(); ++i)
    tags[i] = scores[i] >= threshold ? 1 : 0;
  return dilate_tags(tags, r);
}

double coverage(const Array3<std::uint8_t>& tags) {
  std::int64_t n = 0;
  for (std::int64_t i = 0; i < tags.size(); ++i) n += tags[i];
  return static_cast<double>(n) / static_cast<double>(tags.size());
}

}  // namespace

SyntheticDataset build_two_level_hierarchy(Array3<double> fine_field,
                                           const TaggingSpec& spec) {
  const Shape3 fs = fine_field.shape();
  AMRVIS_REQUIRE_MSG(fs.nx % (2 * spec.block) == 0 &&
                         fs.ny % (2 * spec.block) == 0 &&
                         fs.nz % (2 * spec.block) == 0,
                     "fine extents must be divisible by 2*block");

  // Score blocks, then bisect the threshold so the *post-dilation*
  // coverage hits the target fraction (the buffer would otherwise inflate
  // the refined region well past it).
  Array3<double> scores =
      block_scores(fine_field, spec.criterion, spec.block);
  std::vector<double> sorted(scores.span().begin(), scores.span().end());
  std::sort(sorted.begin(), sorted.end());
  // Bisect over the sorted score index (coverage is monotone in it).
  std::size_t lo = 0, hi = sorted.size() - 1;
  Array3<std::uint8_t> tags;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    tags = tags_for_threshold(scores, sorted[mid], spec.buffer_blocks);
    if (coverage(tags) > spec.fine_fraction)
      lo = mid + 1;  // too much refined: raise the threshold
    else
      hi = mid;
  }
  tags = tags_for_threshold(scores, sorted[lo], spec.buffer_blocks);

  // Cluster into patches (block units -> fine cells), split oversized.
  std::vector<Box> fine_boxes;
  for (const Box& bb : cluster_tags(tags)) {
    const Box cells{bb.lo() * spec.block,
                    (bb.hi() + IntVect::uniform(1)) * spec.block -
                        IntVect::uniform(1)};
    split_box(cells, spec.max_grid_size, fine_boxes);
  }

  // Assemble the hierarchy.
  const Box fine_domain = Box::from_shape(fs);
  const Box coarse_domain = fine_domain.coarsen(2);

  AmrHierarchy hier(2);

  // Level 0: conservative average of the truth, chunked patches.
  Array3<double> coarse = amr::coarsen_average(fine_field.view(), 2);
  AmrLevel l0;
  l0.domain = coarse_domain;
  std::vector<Box> coarse_boxes;
  split_box(coarse_domain, spec.max_grid_size, coarse_boxes);
  for (const Box& cb : coarse_boxes) {
    FArrayBox fab(cb);
    for (std::int64_t k = cb.lo().z; k <= cb.hi().z; ++k)
      for (std::int64_t j = cb.lo().y; j <= cb.hi().y; ++j)
        for (std::int64_t i = cb.lo().x; i <= cb.hi().x; ++i)
          fab.at({i, j, k}) = coarse(i, j, k);
    l0.box_array.push_back(cb);
    l0.fabs.push_back(std::move(fab));
  }
  hier.add_level(std::move(l0));

  // Level 1: fine patches filled from the truth field.
  AmrLevel l1;
  l1.domain = fine_domain;
  for (const Box& fb : fine_boxes) {
    FArrayBox fab(fb);
    for (std::int64_t k = fb.lo().z; k <= fb.hi().z; ++k)
      for (std::int64_t j = fb.lo().y; j <= fb.hi().y; ++j)
        for (std::int64_t i = fb.lo().x; i <= fb.hi().x; ++i)
          fab.at({i, j, k}) = fine_field(i, j, k);
    l1.box_array.push_back(fb);
    l1.fabs.push_back(std::move(fab));
  }
  hier.add_level(std::move(l1));

  return SyntheticDataset{std::move(hier), std::move(fine_field)};
}

}  // namespace amrvis::sim
