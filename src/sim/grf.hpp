#pragma once
// Gaussian random fields with power-law spectra, generated spectrally via
// the in-house FFT. This is the statistical engine behind the Nyx-like
// synthetic cosmology field.

#include <cstdint>

#include "util/array3d.hpp"

namespace amrvis::sim {

struct GrfSpec {
  double spectral_index = 3.0;  ///< P(k) ~ k^-index (3 => scale-invariant-ish)
  double kmin = 1.0;            ///< low-k cutoff in grid modes
  std::uint64_t seed = 42;
};

/// Real Gaussian random field on a power-of-two grid, normalized to zero
/// mean and unit variance.
Array3<double> gaussian_random_field(Shape3 shape, const GrfSpec& spec);

}  // namespace amrvis::sim
