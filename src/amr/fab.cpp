#include "amr/fab.hpp"

namespace amrvis::amr {

void FArrayBox::copy_from(const FArrayBox& src) {
  const auto overlap = box_.intersect(src.box());
  if (!overlap) return;
  const Box& o = *overlap;
  for (std::int64_t k = o.lo().z; k <= o.hi().z; ++k)
    for (std::int64_t j = o.lo().y; j <= o.hi().y; ++j)
      for (std::int64_t i = o.lo().x; i <= o.hi().x; ++i) {
        const IntVect p{i, j, k};
        at(p) = src.at(p);
      }
}

}  // namespace amrvis::amr
