#pragma once
// BoxArray: the set of patches making up one AMR level — the analogue of
// amrex::BoxArray. Boxes may not overlap each other (checked on demand).

#include <vector>

#include "amr/box.hpp"

namespace amrvis::amr {

class BoxArray {
 public:
  BoxArray() = default;
  explicit BoxArray(std::vector<Box> boxes) : boxes_(std::move(boxes)) {}

  void push_back(const Box& b) { boxes_.push_back(b); }

  [[nodiscard]] std::size_t size() const { return boxes_.size(); }
  [[nodiscard]] bool empty() const { return boxes_.empty(); }
  [[nodiscard]] const Box& operator[](std::size_t i) const {
    return boxes_[i];
  }
  [[nodiscard]] const std::vector<Box>& boxes() const { return boxes_; }

  [[nodiscard]] auto begin() const { return boxes_.begin(); }
  [[nodiscard]] auto end() const { return boxes_.end(); }

  /// Total number of cells across all boxes.
  [[nodiscard]] std::int64_t num_cells() const;

  /// Smallest box containing every patch; empty-box if none.
  [[nodiscard]] Box minimal_bounding_box() const;

  /// True if `p` lies inside any patch.
  [[nodiscard]] bool contains_cell(IntVect p) const;

  /// True if `b` is fully covered by the union of patches.
  [[nodiscard]] bool covers(const Box& b) const;

  /// True if no two patches overlap.
  [[nodiscard]] bool is_disjoint() const;

  /// Refine / coarsen every patch.
  [[nodiscard]] BoxArray refine(std::int64_t r) const;
  [[nodiscard]] BoxArray coarsen(std::int64_t r) const;

 private:
  std::vector<Box> boxes_;
};

}  // namespace amrvis::amr
