#pragma once
// FArrayBox: a Box plus the field values over it — the analogue of
// amrex::FArrayBox with one component. Values are stored x-fastest.

#include <span>

#include "amr/box.hpp"
#include "util/array3d.hpp"

namespace amrvis::amr {

class FArrayBox {
 public:
  FArrayBox() = default;
  explicit FArrayBox(const Box& box, double fill = 0.0)
      : box_(box), data_(box.shape(), fill) {}

  [[nodiscard]] const Box& box() const { return box_; }
  [[nodiscard]] Shape3 shape() const { return data_.shape(); }
  [[nodiscard]] std::int64_t size() const { return data_.size(); }

  [[nodiscard]] std::span<double> values() { return data_.span(); }
  [[nodiscard]] std::span<const double> values() const { return data_.span(); }
  [[nodiscard]] View3<double> view() { return data_.view(); }
  [[nodiscard]] View3<const double> view() const { return data_.view(); }

  /// Value at global cell index p (must lie inside box()).
  double& at(IntVect p) { return data_[box_.flat_index(p)]; }
  [[nodiscard]] double at(IntVect p) const { return data_[box_.flat_index(p)]; }

  /// Copy the overlap region from `src` (matching global indices).
  void copy_from(const FArrayBox& src);

  /// Fill every cell with `value`.
  void set_all(double value) {
    for (auto& v : data_.span()) v = value;
  }

 private:
  Box box_;
  Array3<double> data_;
};

}  // namespace amrvis::amr
