#pragma once
// Patch-based AMR hierarchy — the analogue of a single-component AMReX
// MultiFab hierarchy.
//
// Semantics (matching AMReX / the paper §2.2):
// - Level 0 covers the whole problem domain at the coarsest resolution.
// - Each finer level is a union of patches (BoxArray) in that level's
//   index space; refinement ratio between consecutive levels is fixed.
// - Patch-based redundancy: every fine patch is also represented in the
//   coarse level underneath it ("redundant coarse data", the 0D point of
//   paper Fig. 3). Post-analysis flattens the hierarchy to the finest
//   resolution, omitting the redundant coarse values.

#include <cstdint>
#include <vector>

#include "amr/boxarray.hpp"
#include "amr/fab.hpp"

namespace amrvis::amr {

/// One refinement level: a set of patches with data.
struct AmrLevel {
  BoxArray box_array;            ///< patch index regions (level index space)
  std::vector<FArrayBox> fabs;   ///< one FAB per patch, same order
  Box domain;                    ///< whole problem domain at this level

  [[nodiscard]] std::int64_t num_cells() const {
    return box_array.num_cells();
  }
};

/// Per-level contribution statistics (paper Table 1).
struct LevelStats {
  int level = 0;
  Shape3 domain_shape{};       ///< full-domain grid size at this level
  std::int64_t num_patches = 0;
  std::int64_t num_cells = 0;  ///< cells stored at this level
  double covered_fraction = 0; ///< fraction of this level covered by finer
  double density = 0;          ///< fraction of composite contributed ("Density")
};

class AmrHierarchy {
 public:
  AmrHierarchy() = default;
  /// `ref_ratio` applies between every pair of consecutive levels.
  explicit AmrHierarchy(std::int64_t ref_ratio) : ref_ratio_(ref_ratio) {}

  /// Append a level; level 0 must cover its whole domain, every finer
  /// level's patches must be contained in the refined coarser domain.
  void add_level(AmrLevel level);

  [[nodiscard]] int num_levels() const {
    return static_cast<int>(levels_.size());
  }
  [[nodiscard]] std::int64_t ref_ratio() const { return ref_ratio_; }
  [[nodiscard]] const AmrLevel& level(int l) const { return levels_.at(l); }
  [[nodiscard]] AmrLevel& level(int l) { return levels_.at(l); }

  /// Ratio between level `l` index space and the finest index space.
  [[nodiscard]] std::int64_t ratio_to_finest(int l) const;

  /// Mask over level `l`'s patch cells: 1 where the cell is covered by a
  /// level l+1 patch (redundant coarse data), 0 otherwise. One mask FAB per
  /// patch, aligned with level(l).fabs.
  [[nodiscard]] std::vector<Array3<std::uint8_t>> covered_masks(int l) const;

  /// Flatten to a uniform grid at the finest resolution: up-sample each
  /// level (piecewise constant) and overwrite with finer data where
  /// present, omitting redundant coarse values (paper Fig. 3 right).
  [[nodiscard]] Array3<double> composite_uniform() const;

  /// Per-level statistics including the paper's per-level "Density":
  /// the fraction of the finest-resolution composite whose values come
  /// from this level (uncovered cells scaled to finest resolution).
  [[nodiscard]] std::vector<LevelStats> level_stats() const;

  /// Total cells actually stored (all levels, including redundant data).
  [[nodiscard]] std::int64_t total_stored_cells() const;

  /// Rebuild the redundant coarse data: for every level l < finest,
  /// overwrite covered coarse cells with the conservative average of the
  /// fine data above them (keeps patch-based redundancy consistent after
  /// fine levels change).
  void synchronize_coarse_from_fine();

 private:
  std::int64_t ref_ratio_ = 2;
  std::vector<AmrLevel> levels_;
};

}  // namespace amrvis::amr
