#pragma once
// Integer index box (cell-centered, inclusive corners) — the analogue of
// amrex::Box. A Box describes the index region [lo, hi] in each dimension.

#include <optional>
#include <ostream>
#include <vector>

#include "amr/intvect.hpp"
#include "util/array3d.hpp"
#include "util/error.hpp"

namespace amrvis::amr {

class Box {
 public:
  Box() = default;  // empty box
  Box(IntVect lo, IntVect hi) : lo_(lo), hi_(hi) {
    AMRVIS_REQUIRE_MSG(lo.all_le(hi), "Box: lo must be <= hi");
  }

  /// Box covering [0, n) in each dimension.
  static Box from_shape(Shape3 shape) {
    return {IntVect{0, 0, 0},
            IntVect{shape.nx - 1, shape.ny - 1, shape.nz - 1}};
  }

  [[nodiscard]] IntVect lo() const { return lo_; }
  [[nodiscard]] IntVect hi() const { return hi_; }
  [[nodiscard]] IntVect size() const {
    return hi_ - lo_ + IntVect::uniform(1);
  }
  [[nodiscard]] Shape3 shape() const {
    const IntVect s = size();
    return {s.x, s.y, s.z};
  }
  [[nodiscard]] std::int64_t num_cells() const { return shape().size(); }

  [[nodiscard]] bool contains(IntVect p) const {
    return lo_.all_le(p) && p.all_le(hi_);
  }
  [[nodiscard]] bool contains(const Box& other) const {
    return contains(other.lo_) && contains(other.hi_);
  }
  [[nodiscard]] bool intersects(const Box& other) const {
    return lo_.all_le(other.hi_) && other.lo_.all_le(hi_);
  }

  /// Intersection; nullopt if disjoint.
  [[nodiscard]] std::optional<Box> intersect(const Box& other) const {
    if (!intersects(other)) return std::nullopt;
    return Box{elementwise_max(lo_, other.lo_),
               elementwise_min(hi_, other.hi_)};
  }

  /// Refine by ratio r: each cell becomes an r^3 block of fine cells.
  [[nodiscard]] Box refine(IntVect r) const {
    return {lo_ * r, (hi_ + IntVect::uniform(1)) * r - IntVect::uniform(1)};
  }
  [[nodiscard]] Box refine(std::int64_t r) const {
    return refine(IntVect::uniform(r));
  }

  /// Coarsen by ratio r (covering coarsen, matching amrex::coarsen).
  [[nodiscard]] Box coarsen(IntVect r) const {
    return {floor_div(lo_, r), floor_div(hi_, r)};
  }
  [[nodiscard]] Box coarsen(std::int64_t r) const {
    return coarsen(IntVect::uniform(r));
  }

  /// Grow by `n` cells in every direction.
  [[nodiscard]] Box grow(std::int64_t n) const {
    return {lo_ - IntVect::uniform(n), hi_ + IntVect::uniform(n)};
  }

  /// Shift by `offset`.
  [[nodiscard]] Box shift(IntVect offset) const {
    return {lo_ + offset, hi_ + offset};
  }

  /// Node-centered extent: one more point per dimension (the vertices
  /// surrounding the cells) — analogue of amrex::surroundingNodes.
  [[nodiscard]] Box surrounding_nodes() const {
    return {lo_, hi_ + IntVect::uniform(1)};
  }

  /// Flat index of cell p within this box (x fastest).
  [[nodiscard]] std::int64_t flat_index(IntVect p) const {
    AMRVIS_ASSERT(contains(p));
    const IntVect s = size();
    const IntVect q = p - lo_;
    return (q.z * s.y + q.y) * s.x + q.x;
  }

  friend bool operator==(const Box&, const Box&) = default;

  friend std::ostream& operator<<(std::ostream& os, const Box& b) {
    return os << '[' << b.lo_ << ".." << b.hi_ << ']';
  }

 private:
  IntVect lo_{0, 0, 0};
  IntVect hi_{-1, -1, -1};  // default: empty sentinel (lo > hi)
};

/// Subtract `b` from `a`: the set a \ b as a disjoint list of boxes
/// (at most 6). Used to build uncovered-region lists.
std::vector<Box> box_difference(const Box& a, const Box& b);

}  // namespace amrvis::amr
