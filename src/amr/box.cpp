#include "amr/box.hpp"

namespace amrvis::amr {

std::vector<Box> box_difference(const Box& a, const Box& b) {
  std::vector<Box> out;
  const auto overlap = a.intersect(b);
  if (!overlap) {
    out.push_back(a);
    return out;
  }
  const Box& o = *overlap;
  // Slab decomposition: peel off the six (at most) slabs of `a` outside
  // `o`, axis by axis, so the result is disjoint.
  Box rest = a;
  for (int d = 0; d < 3; ++d) {
    if (rest.lo()[d] < o.lo()[d]) {
      IntVect hi = rest.hi();
      hi[d] = o.lo()[d] - 1;
      out.emplace_back(rest.lo(), hi);
      IntVect lo = rest.lo();
      lo[d] = o.lo()[d];
      rest = Box{lo, rest.hi()};
    }
    if (rest.hi()[d] > o.hi()[d]) {
      IntVect lo = rest.lo();
      lo[d] = o.hi()[d] + 1;
      out.emplace_back(lo, rest.hi());
      IntVect hi = rest.hi();
      hi[d] = o.hi()[d];
      rest = Box{rest.lo(), hi};
    }
  }
  return out;
}

}  // namespace amrvis::amr
