#include "amr/boxarray.hpp"

#include <deque>

namespace amrvis::amr {

std::int64_t BoxArray::num_cells() const {
  std::int64_t n = 0;
  for (const Box& b : boxes_) n += b.num_cells();
  return n;
}

Box BoxArray::minimal_bounding_box() const {
  if (boxes_.empty()) return Box{};
  IntVect lo = boxes_.front().lo();
  IntVect hi = boxes_.front().hi();
  for (const Box& b : boxes_) {
    lo = elementwise_min(lo, b.lo());
    hi = elementwise_max(hi, b.hi());
  }
  return {lo, hi};
}

bool BoxArray::contains_cell(IntVect p) const {
  for (const Box& b : boxes_)
    if (b.contains(p)) return true;
  return false;
}

bool BoxArray::covers(const Box& target) const {
  // Work-list subtraction: carve every patch out of `target`; covered iff
  // nothing remains.
  std::deque<Box> work{target};
  for (const Box& b : boxes_) {
    std::deque<Box> next;
    while (!work.empty()) {
      Box piece = work.front();
      work.pop_front();
      for (const Box& rest : box_difference(piece, b)) next.push_back(rest);
    }
    work = std::move(next);
    if (work.empty()) return true;
  }
  return work.empty();
}

bool BoxArray::is_disjoint() const {
  for (std::size_t i = 0; i < boxes_.size(); ++i)
    for (std::size_t j = i + 1; j < boxes_.size(); ++j)
      if (boxes_[i].intersects(boxes_[j])) return false;
  return true;
}

BoxArray BoxArray::refine(std::int64_t r) const {
  std::vector<Box> out;
  out.reserve(boxes_.size());
  for (const Box& b : boxes_) out.push_back(b.refine(r));
  return BoxArray{std::move(out)};
}

BoxArray BoxArray::coarsen(std::int64_t r) const {
  std::vector<Box> out;
  out.reserve(boxes_.size());
  for (const Box& b : boxes_) out.push_back(b.coarsen(r));
  return BoxArray{std::move(out)};
}

}  // namespace amrvis::amr
