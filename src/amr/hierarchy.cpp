#include "amr/hierarchy.hpp"

#include "amr/sampling.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace amrvis::amr {

void AmrHierarchy::add_level(AmrLevel level) {
  AMRVIS_REQUIRE_MSG(level.box_array.size() == level.fabs.size(),
                     "AmrLevel: one FAB per box required");
  for (std::size_t p = 0; p < level.fabs.size(); ++p)
    AMRVIS_REQUIRE_MSG(level.fabs[p].box() == level.box_array[p],
                       "AmrLevel: FAB box must match BoxArray entry");
  AMRVIS_REQUIRE_MSG(level.box_array.is_disjoint(),
                     "AmrLevel: patches must not overlap");
  if (levels_.empty()) {
    AMRVIS_REQUIRE_MSG(level.box_array.covers(level.domain),
                       "level 0 must cover the whole domain");
  } else {
    const Box expected_domain = levels_.back().domain.refine(ref_ratio_);
    AMRVIS_REQUIRE_MSG(level.domain == expected_domain,
                       "finer domain must be refined coarser domain");
    for (const Box& b : level.box_array)
      AMRVIS_REQUIRE_MSG(level.domain.contains(b),
                         "fine patch outside domain");
  }
  levels_.push_back(std::move(level));
}

std::int64_t AmrHierarchy::ratio_to_finest(int l) const {
  std::int64_t r = 1;
  for (int i = l; i + 1 < num_levels(); ++i) r *= ref_ratio_;
  return r;
}

std::vector<Array3<std::uint8_t>> AmrHierarchy::covered_masks(int l) const {
  const AmrLevel& lvl = level(l);
  std::vector<Array3<std::uint8_t>> masks;
  masks.reserve(lvl.fabs.size());
  // Coarsened fine boxes (empty for the finest level).
  std::vector<Box> fine_coarsened;
  if (l + 1 < num_levels())
    for (const Box& fb : level(l + 1).box_array)
      fine_coarsened.push_back(fb.coarsen(ref_ratio_));

  for (const Box& patch : lvl.box_array) {
    Array3<std::uint8_t> mask(patch.shape(), 0);
    for (const Box& cb : fine_coarsened) {
      const auto overlap = patch.intersect(cb);
      if (!overlap) continue;
      const Box& o = *overlap;
      for (std::int64_t k = o.lo().z; k <= o.hi().z; ++k)
        for (std::int64_t j = o.lo().y; j <= o.hi().y; ++j)
          for (std::int64_t i = o.lo().x; i <= o.hi().x; ++i)
            mask[patch.flat_index({i, j, k})] = 1;
    }
    masks.push_back(std::move(mask));
  }
  return masks;
}

Array3<double> AmrHierarchy::composite_uniform() const {
  AMRVIS_REQUIRE(num_levels() >= 1);
  const Box fine_domain = level(num_levels() - 1).domain;
  Array3<double> out(fine_domain.shape());
  auto ov = out.view();
  // Paint coarse-to-fine so finer data overwrites redundant coarse data.
  for (int l = 0; l < num_levels(); ++l) {
    const AmrLevel& lvl = level(l);
    const std::int64_t r = ratio_to_finest(l);
    for (std::size_t p = 0; p < lvl.fabs.size(); ++p) {
      const FArrayBox& fab = lvl.fabs[p];
      const Box fine_box = fab.box().refine(r);
      parallel_for(fine_box.shape().nz, [&](std::int64_t kk) {
        const std::int64_t k = fine_box.lo().z + kk;
        for (std::int64_t j = fine_box.lo().y; j <= fine_box.hi().y; ++j)
          for (std::int64_t i = fine_box.lo().x; i <= fine_box.hi().x; ++i) {
            const IntVect coarse_cell = floor_div(
                IntVect{i, j, k}, IntVect::uniform(r));
            ov(i - fine_domain.lo().x, j - fine_domain.lo().y,
               k - fine_domain.lo().z) = fab.at(coarse_cell);
          }
      });
    }
  }
  return out;
}

std::vector<LevelStats> AmrHierarchy::level_stats() const {
  std::vector<LevelStats> stats;
  const std::int64_t finest_cells =
      level(num_levels() - 1).domain.num_cells();
  for (int l = 0; l < num_levels(); ++l) {
    const AmrLevel& lvl = level(l);
    LevelStats s;
    s.level = l;
    s.domain_shape = lvl.domain.shape();
    s.num_patches = static_cast<std::int64_t>(lvl.box_array.size());
    s.num_cells = lvl.num_cells();
    std::int64_t covered = 0;
    for (const auto& mask : covered_masks(l))
      for (std::int64_t i = 0; i < mask.size(); ++i) covered += mask[i];
    s.covered_fraction =
        s.num_cells > 0
            ? static_cast<double>(covered) / static_cast<double>(s.num_cells)
            : 0.0;
    const std::int64_t r = ratio_to_finest(l);
    const std::int64_t contributed_fine_cells =
        (s.num_cells - covered) * r * r * r;
    s.density = static_cast<double>(contributed_fine_cells) /
                static_cast<double>(finest_cells);
    stats.push_back(s);
  }
  return stats;
}

std::int64_t AmrHierarchy::total_stored_cells() const {
  std::int64_t n = 0;
  for (const AmrLevel& lvl : levels_) n += lvl.num_cells();
  return n;
}

void AmrHierarchy::synchronize_coarse_from_fine() {
  for (int l = num_levels() - 2; l >= 0; --l) {
    AmrLevel& coarse = levels_[static_cast<std::size_t>(l)];
    const AmrLevel& fine = levels_[static_cast<std::size_t>(l + 1)];
    for (const FArrayBox& ffab : fine.fabs) {
      // Average the fine patch down and copy into every coarse patch it
      // touches.
      const Box cbox = ffab.box().coarsen(ref_ratio_);
      Array3<double> avg = coarsen_average(ffab.view(), ref_ratio_);
      FArrayBox cfab(cbox);
      std::copy(avg.span().begin(), avg.span().end(),
                cfab.values().begin());
      for (FArrayBox& target : coarse.fabs) target.copy_from(cfab);
    }
  }
}

}  // namespace amrvis::amr
