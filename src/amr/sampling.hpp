#pragma once
// Resolution transfer operators between AMR levels, plus region-decode
// sampling of *compressed* hierarchies.
//
// - upsample_nearest: piecewise-constant injection coarse -> fine (the
//   default "up-sample and merge" used when flattening a patch-based
//   hierarchy to a uniform grid, paper Fig. 3 right).
// - upsample_trilinear: cell-centered trilinear prolongation.
// - coarsen_average: conservative average fine -> coarse (used when
//   building the redundant coarse data underneath fine patches).
// - sample_point_compressed / sample_plane_compressed: point and
//   axis-aligned-plane queries served directly from an AmrCompressed via
//   decompress_level_region, so an interactive probe or slice view
//   inflates only the tiles its query touches instead of whole patches.

#include "amr/intvect.hpp"
#include "compress/amr_compress.hpp"
#include "util/array3d.hpp"

namespace amrvis::amr {

/// Fine(i) = Coarse(i / r) for every fine cell. Output shape = in * r.
Array3<double> upsample_nearest(View3<const double> coarse, std::int64_t r);

/// Cell-centered trilinear interpolation by factor r. Fine cell centers at
/// (i + 0.5)/r - 0.5 in coarse index space, clamped at the boundary.
Array3<double> upsample_trilinear(View3<const double> coarse, std::int64_t r);

/// Coarse(I) = average of the r^3 fine cells it covers. Extents of `fine`
/// must be divisible by r (per dimension, unless that extent is 1).
Array3<double> coarsen_average(View3<const double> fine, std::int64_t r);

/// Value at finest-index-space cell `p` of a compressed hierarchy, read
/// from the finest level whose patches contain the (coarsened) point —
/// the same value composite_uniform() of the decompressed hierarchy would
/// hold at `p`. Chunked patches inflate only the tile covering the point.
/// Throws if `p` lies outside the finest-level domain. `stats`, when
/// non-null, receives the decode counts of the one region decode issued.
double sample_point_compressed(const compress::AmrCompressed& compressed,
                               const compress::Compressor& comp, IntVect p,
                               compress::RegionDecodeStats* stats = nullptr);

/// Axis-aligned plane slice (axis in {0,1,2}; `index` in finest index
/// space) of a compressed hierarchy, composited coarse-to-fine at finest
/// resolution exactly like AmrHierarchy::composite_uniform — but decoding
/// only the cells each level contributes to the plane. The returned array
/// has extent 1 along `axis`. `stats`, when non-null, accumulates decode
/// counts across all levels.
Array3<double> sample_plane_compressed(
    const compress::AmrCompressed& compressed,
    const compress::Compressor& comp, int axis, std::int64_t index,
    compress::RegionDecodeStats* stats = nullptr);

}  // namespace amrvis::amr
