#pragma once
// Resolution transfer operators between AMR levels.
//
// - upsample_nearest: piecewise-constant injection coarse -> fine (the
//   default "up-sample and merge" used when flattening a patch-based
//   hierarchy to a uniform grid, paper Fig. 3 right).
// - upsample_trilinear: cell-centered trilinear prolongation.
// - coarsen_average: conservative average fine -> coarse (used when
//   building the redundant coarse data underneath fine patches).

#include "util/array3d.hpp"

namespace amrvis::amr {

/// Fine(i) = Coarse(i / r) for every fine cell. Output shape = in * r.
Array3<double> upsample_nearest(View3<const double> coarse, std::int64_t r);

/// Cell-centered trilinear interpolation by factor r. Fine cell centers at
/// (i + 0.5)/r - 0.5 in coarse index space, clamped at the boundary.
Array3<double> upsample_trilinear(View3<const double> coarse, std::int64_t r);

/// Coarse(I) = average of the r^3 fine cells it covers. Extents of `fine`
/// must be divisible by r (per dimension, unless that extent is 1).
Array3<double> coarsen_average(View3<const double> fine, std::int64_t r);

}  // namespace amrvis::amr
