#pragma once
// Resolution transfer operators between AMR levels, plus region-decode
// sampling and tile streaming of *compressed* hierarchies.
//
// - upsample_nearest: piecewise-constant injection coarse -> fine (the
//   default "up-sample and merge" used when flattening a patch-based
//   hierarchy to a uniform grid, paper Fig. 3 right).
// - upsample_trilinear: cell-centered trilinear prolongation.
// - coarsen_average: conservative average fine -> coarse (used when
//   building the redundant coarse data underneath fine patches).
// - sample_point_compressed / sample_plane_compressed: point and
//   axis-aligned-plane queries served directly from an AmrCompressed via
//   decompress_level_region, so an interactive probe or slice view
//   inflates only the tiles its query touches instead of whole patches.
// - for_each_tile_compressed: patch-level streaming — visit every stored
//   tile of a compressed hierarchy one decoded buffer at a time
//   (compress/tile_stream.hpp under each chunked patch blob), so a
//   consumer can walk a --full-scale hierarchy without ever holding more
//   than two inflated tiles per patch stream.

#include <functional>
#include <optional>
#include <vector>

#include "amr/intvect.hpp"
#include "compress/amr_compress.hpp"
#include "compress/tile_stream.hpp"
#include "util/array3d.hpp"

namespace amrvis::amr {

/// Fine(i) = Coarse(i / r) for every fine cell. Output shape = in * r.
Array3<double> upsample_nearest(View3<const double> coarse, std::int64_t r);

/// Cell-centered trilinear interpolation by factor r. Fine cell centers at
/// (i + 0.5)/r - 0.5 in coarse index space, clamped at the boundary.
Array3<double> upsample_trilinear(View3<const double> coarse, std::int64_t r);

/// Coarse(I) = average of the r^3 fine cells it covers. Extents of `fine`
/// must be divisible by r (per dimension, unless that extent is 1).
Array3<double> coarsen_average(View3<const double> fine, std::int64_t r);

/// Value at finest-index-space cell `p` of a compressed hierarchy, read
/// from the finest level whose patches contain the (coarsened) point —
/// the same value composite_uniform() of the decompressed hierarchy would
/// hold at `p`. Chunked patches inflate only the tile covering the point.
/// Throws if `p` lies outside the finest-level domain. `stats`, when
/// non-null, receives the decode counts of the one region decode issued.
/// `cache`, when non-null (bound to `compressed`), serves repeated
/// decodes from the shared tile cache. `read` forwards cancellation and
/// patch skipping (quarantine) to every level decode; a skipped fine
/// patch degrades to the coarser data beneath it, and a point every
/// covering level skips throws Error{kUnavailable}.
double sample_point_compressed(
    const compress::AmrCompressed& compressed,
    const compress::Compressor& comp, IntVect p,
    compress::RegionDecodeStats* stats = nullptr,
    const compress::AmrTileCache* cache = nullptr,
    const compress::LevelReadOptions& read = {});

/// Axis-aligned plane slice (axis in {0,1,2}; `index` in finest index
/// space) of a compressed hierarchy, composited coarse-to-fine at finest
/// resolution exactly like AmrHierarchy::composite_uniform — but decoding
/// only the cells each level contributes to the plane. The returned array
/// has extent 1 along `axis`. `stats`, when non-null, accumulates decode
/// counts across all levels.
Array3<double> sample_plane_compressed(
    const compress::AmrCompressed& compressed,
    const compress::Compressor& comp, int axis, std::int64_t index,
    compress::RegionDecodeStats* stats = nullptr,
    const compress::AmrTileCache* cache = nullptr,
    const compress::LevelReadOptions& read = {});

/// One streamed tile of a compressed hierarchy: which level/patch it came
/// from, its cell box in that LEVEL's index space, the container stats
/// (conservative (-inf, +inf) for plain patch blobs and v1 containers)
/// and the owning decoded buffer.
struct HierTile {
  int level = 0;
  std::size_t patch = 0;
  amr::Box box;
  compress::TileStats stats;
  Array3<double> data;  ///< box-shaped decoded values
};

/// Knobs forwarded to the per-patch TileStream.
struct HierTileOptions {
  /// When set, only tiles whose value range (widened by the hierarchy's
  /// abs_eb) intersects [band_lo, band_hi] are decoded; plain patch blobs
  /// carry no stats and always qualify — conservative, never wrong.
  std::optional<double> band_lo, band_hi;
  /// Optional per-tile filter for chunked patches: called with the patch
  /// index and the PATCH-LOCAL TileRegion; tiles it rejects are never
  /// decoded. Plain patch blobs cannot be filtered and always decode.
  std::function<bool(std::size_t, const compress::TileRegion&)> tile_select;
  /// Optional shared decoded-tile cache bound to the hierarchy
  /// (compress/tile_cache.hpp). Plain patch blobs ALWAYS route through
  /// it when set: a plain blob has no partial decode, so a slab sweep
  /// calling for_each_tile_compressed once per slab would otherwise
  /// inflate the same patch once per slab it spans; with the cache it
  /// decodes once (counted once) and is sliced per call. This replaces
  /// the old per-sweep `vector<optional<Array3>>` plain_cache — the
  /// sizing invariant is held by AmrTileCache's construction instead of
  /// re-checked by every consumer. The caller owns cache lifetime.
  const compress::AmrTileCache* cache = nullptr;
  /// Route CHUNKED container tiles through `cache` too (the concurrent
  /// query service shares its byte-bounded cache across queries this
  /// way). Off for the sweep-local unbounded caches of the streamed iso
  /// path, which must keep the <= 2 live decoded tiles guarantee.
  bool cache_chunked_tiles = false;
  bool prefetch = true;  ///< pair decode-ahead inside each patch stream
  /// Optional cooperative deadline/cancellation, checked once per patch
  /// and at tile granularity inside each chunked stream. The token must
  /// outlive the call.
  const util::CancelToken* cancel = nullptr;
};

/// Stream every stored tile of `level` intersecting `region` (a box in
/// that level's index space), in patch order then container layout order,
/// invoking `fn` once per decoded tile. Chunked patch blobs stream
/// through TileStream (at most 2 live decoded tiles); a plain patch blob
/// is decoded whole, once, and yielded as a single tile clipped to
/// `region`. Chunked tiles are yielded WHOLE (their box may extend past
/// `region`); consumers clip. Values are bit-identical to the same cells
/// of decompress_hierarchy BEFORE coarse/fine synchronization — with
/// kMeanFill, covered coarse cells hold the placeholder (see the
/// all-levels overload). `stats`, when non-null, accumulates decode
/// counts (a plain patch counts as one tile).
void for_each_tile_compressed(
    const compress::AmrCompressed& compressed,
    const compress::Compressor& comp, int level, const Box& region,
    const std::function<void(HierTile&&)>& fn,
    const HierTileOptions& options = {},
    compress::RegionDecodeStats* stats = nullptr);

/// All-levels variant: streams every patch of every level, FINEST FIRST —
/// the mean-fill-safe order (same reason sample_point_compressed probes
/// finest-first): a consumer that paints or keeps the first value it sees
/// per region reads real data before any coarser level whose covered
/// cells may hold mean-fill placeholders.
void for_each_tile_compressed(
    const compress::AmrCompressed& compressed,
    const compress::Compressor& comp,
    const std::function<void(HierTile&&)>& fn,
    const HierTileOptions& options = {},
    compress::RegionDecodeStats* stats = nullptr);

}  // namespace amrvis::amr
