#pragma once
// 3-component integer vector used for cell indices, box corners and
// refinement ratios — the analogue of amrex::IntVect.

#include <algorithm>
#include <array>
#include <cstdint>
#include <ostream>

namespace amrvis::amr {

struct IntVect {
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t z = 0;

  constexpr IntVect() = default;
  constexpr IntVect(std::int64_t xx, std::int64_t yy, std::int64_t zz)
      : x(xx), y(yy), z(zz) {}
  /// Uniform vector (s, s, s).
  static constexpr IntVect uniform(std::int64_t s) { return {s, s, s}; }

  constexpr std::int64_t operator[](int d) const {
    return d == 0 ? x : (d == 1 ? y : z);
  }
  std::int64_t& operator[](int d) { return d == 0 ? x : (d == 1 ? y : z); }

  friend constexpr IntVect operator+(IntVect a, IntVect b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend constexpr IntVect operator-(IntVect a, IntVect b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend constexpr IntVect operator*(IntVect a, IntVect b) {
    return {a.x * b.x, a.y * b.y, a.z * b.z};
  }
  friend constexpr IntVect operator*(IntVect a, std::int64_t s) {
    return {a.x * s, a.y * s, a.z * s};
  }
  friend constexpr bool operator==(IntVect a, IntVect b) {
    return a.x == b.x && a.y == b.y && a.z == b.z;
  }
  /// Componentwise "all <=" — a partial order, used for box containment.
  [[nodiscard]] constexpr bool all_le(IntVect b) const {
    return x <= b.x && y <= b.y && z <= b.z;
  }
  [[nodiscard]] constexpr bool all_lt(IntVect b) const {
    return x < b.x && y < b.y && z < b.z;
  }
  [[nodiscard]] constexpr bool all_ge(IntVect b) const {
    return x >= b.x && y >= b.y && z >= b.z;
  }

  friend IntVect elementwise_min(IntVect a, IntVect b) {
    return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
  }
  friend IntVect elementwise_max(IntVect a, IntVect b) {
    return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
  }

  friend std::ostream& operator<<(std::ostream& os, IntVect v) {
    return os << '(' << v.x << ',' << v.y << ',' << v.z << ')';
  }
};

/// Floor division that rounds toward negative infinity (needed when
/// coarsening boxes with negative corners, matching AMReX semantics).
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  const std::int64_t q = a / b;
  return (a % b != 0 && ((a < 0) != (b < 0))) ? q - 1 : q;
}

constexpr IntVect floor_div(IntVect a, IntVect b) {
  return {floor_div(a.x, b.x), floor_div(a.y, b.y), floor_div(a.z, b.z)};
}

}  // namespace amrvis::amr
