#include "amr/sampling.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>

#include "compress/lzss.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace amrvis::amr {

namespace {
Shape3 refined_shape(Shape3 s, std::int64_t r) {
  return {s.nx * r, s.ny * r, s.nz * r};
}
}  // namespace

Array3<double> upsample_nearest(View3<const double> coarse, std::int64_t r) {
  AMRVIS_REQUIRE(r >= 1);
  const Shape3 cs = coarse.shape();
  Array3<double> fine(refined_shape(cs, r));
  auto fv = fine.view();
  const Shape3 fs = fine.shape();
  parallel_for(fs.nz, [&](std::int64_t k) {
    for (std::int64_t j = 0; j < fs.ny; ++j)
      for (std::int64_t i = 0; i < fs.nx; ++i)
        fv(i, j, k) = coarse(i / r, j / r, k / r);
  });
  return fine;
}

Array3<double> upsample_trilinear(View3<const double> coarse, std::int64_t r) {
  AMRVIS_REQUIRE(r >= 1);
  const Shape3 cs = coarse.shape();
  Array3<double> fine(refined_shape(cs, r));
  auto fv = fine.view();
  const Shape3 fs = fine.shape();
  const double inv_r = 1.0 / static_cast<double>(r);

  // Sample position of fine cell center f in coarse index space.
  auto pos = [&](std::int64_t f) {
    return (static_cast<double>(f) + 0.5) * inv_r - 0.5;
  };
  // Clamped base index + weight along one axis.
  auto axis = [&](double x, std::int64_t n, std::int64_t& i0, double& w) {
    const double xf = std::floor(x);
    i0 = static_cast<std::int64_t>(xf);
    w = x - xf;
    if (i0 < 0) {
      i0 = 0;
      w = 0.0;
    }
    if (i0 >= n - 1) {
      i0 = std::max<std::int64_t>(n - 2, 0);
      w = (n == 1) ? 0.0 : 1.0;
    }
  };

  parallel_for(fs.nz, [&](std::int64_t k) {
    std::int64_t k0;
    double wz;
    axis(pos(k), cs.nz, k0, wz);
    const std::int64_t k1 = std::min(k0 + 1, cs.nz - 1);
    for (std::int64_t j = 0; j < fs.ny; ++j) {
      std::int64_t j0;
      double wy;
      axis(pos(j), cs.ny, j0, wy);
      const std::int64_t j1 = std::min(j0 + 1, cs.ny - 1);
      for (std::int64_t i = 0; i < fs.nx; ++i) {
        std::int64_t i0;
        double wx;
        axis(pos(i), cs.nx, i0, wx);
        const std::int64_t i1 = std::min(i0 + 1, cs.nx - 1);
        const double c00 =
            coarse(i0, j0, k0) * (1 - wx) + coarse(i1, j0, k0) * wx;
        const double c10 =
            coarse(i0, j1, k0) * (1 - wx) + coarse(i1, j1, k0) * wx;
        const double c01 =
            coarse(i0, j0, k1) * (1 - wx) + coarse(i1, j0, k1) * wx;
        const double c11 =
            coarse(i0, j1, k1) * (1 - wx) + coarse(i1, j1, k1) * wx;
        const double c0 = c00 * (1 - wy) + c10 * wy;
        const double c1 = c01 * (1 - wy) + c11 * wy;
        fv(i, j, k) = c0 * (1 - wz) + c1 * wz;
      }
    }
  });
  return fine;
}

double sample_point_compressed(const compress::AmrCompressed& compressed,
                               const compress::Compressor& comp, IntVect p,
                               compress::RegionDecodeStats* stats,
                               const compress::AmrTileCache* cache,
                               const compress::LevelReadOptions& read) {
  const int nlev = static_cast<int>(compressed.levels.size());
  AMRVIS_REQUIRE_MSG(nlev >= 1, "sample_point_compressed: empty hierarchy");
  AMRVIS_REQUIRE_MSG(compressed.domains.back().contains(p),
                     "sample_point_compressed: point outside finest domain");
  // Finest-first: the first level whose patches cover the (coarsened)
  // point is the one composite_uniform would read at `p`, and skipping
  // coarser levels also skips their mean-fill placeholders.
  std::int64_t r = 1;
  for (int l = nlev - 1; l >= 0; --l) {
    const IntVect pl = floor_div(p, IntVect::uniform(r));
    compress::RegionDecodeStats rs;
    const auto rps =
        compress::decompress_level_region(compressed, comp, l, Box{pl, pl},
                                          &rs, cache, read);
    if (!rps.empty()) {
      if (stats != nullptr) *stats = rs;
      // Overlapping same-level patches paint in patch order during
      // compositing, so the last one containing the cell wins.
      return rps.back().data[0];
    }
    r *= compressed.ref_ratio;
  }
  // With skip_patch in play this is a degraded no-coverage outcome, not
  // corruption: every level's covering patches were skipped.
  throw Error(ErrorCode::kUnavailable,
              "sample_point_compressed: point not covered by any level");
}

Array3<double> sample_plane_compressed(
    const compress::AmrCompressed& compressed,
    const compress::Compressor& comp, int axis, std::int64_t index,
    compress::RegionDecodeStats* stats,
    const compress::AmrTileCache* cache,
    const compress::LevelReadOptions& read) {
  const int nlev = static_cast<int>(compressed.levels.size());
  AMRVIS_REQUIRE_MSG(nlev >= 1, "sample_plane_compressed: empty hierarchy");
  AMRVIS_REQUIRE_MSG(axis >= 0 && axis < 3,
                     "sample_plane_compressed: axis must be 0, 1 or 2");
  const Box fine_domain = compressed.domains.back();
  AMRVIS_REQUIRE_MSG(
      index >= fine_domain.lo()[axis] && index <= fine_domain.hi()[axis],
      "sample_plane_compressed: plane index outside finest domain");

  Shape3 out_shape = fine_domain.shape();
  (axis == 0 ? out_shape.nx : axis == 1 ? out_shape.ny : out_shape.nz) = 1;
  Array3<double> out(out_shape);
  compress::RegionDecodeStats agg;

  // Paint coarse-to-fine like composite_uniform, but only the cells each
  // level contributes to the plane — region decode keeps chunked patches
  // partial.
  for (int l = 0; l < nlev; ++l) {
    std::int64_t r = 1;
    for (int i = l; i + 1 < nlev; ++i) r *= compressed.ref_ratio;
    const Box& dom = compressed.domains[static_cast<std::size_t>(l)];
    IntVect rlo = dom.lo(), rhi = dom.hi();
    rlo[axis] = rhi[axis] = floor_div(index, r);
    compress::RegionDecodeStats rs;
    const auto rps = compress::decompress_level_region(
        compressed, comp, l, Box{rlo, rhi}, &rs, cache, read);
    agg.tiles_decoded += rs.tiles_decoded;
    agg.tiles_total += rs.tiles_total;
    agg.cache_hits += rs.cache_hits;
    for (const auto& rp : rps) {
      const IntVect blo = rp.box.lo();
      const Shape3 bs = rp.box.shape();
      for (std::int64_t dz = 0; dz < bs.nz; ++dz)
        for (std::int64_t dy = 0; dy < bs.ny; ++dy)
          for (std::int64_t dx = 0; dx < bs.nx; ++dx) {
            const double v = rp.data(dx, dy, dz);
            const IntVect q{blo.x + dx, blo.y + dy, blo.z + dz};
            // Fine cells of q on the plane: `axis` is pinned to `index`
            // (which q's refined block contains by construction of the
            // region), the free axes span r cells.
            IntVect flo = q * r;
            IntVect fhi = flo + IntVect::uniform(r - 1);
            flo[axis] = fhi[axis] = index;
            for (std::int64_t fz = flo.z; fz <= fhi.z; ++fz)
              for (std::int64_t fy = flo.y; fy <= fhi.y; ++fy)
                for (std::int64_t fx = flo.x; fx <= fhi.x; ++fx) {
                  IntVect o = IntVect{fx, fy, fz} - fine_domain.lo();
                  o[axis] = 0;
                  out(o.x, o.y, o.z) = v;
                }
          }
    }
  }
  if (stats != nullptr) *stats = agg;
  return out;
}

void for_each_tile_compressed(
    const compress::AmrCompressed& compressed,
    const compress::Compressor& comp, int level, const Box& region,
    const std::function<void(HierTile&&)>& fn,
    const HierTileOptions& options, compress::RegionDecodeStats* stats) {
  AMRVIS_REQUIRE_MSG(
      compress::codec_names_compatible(comp.name(),
                                       compressed.compressor_name),
                     "for_each_tile_compressed: codec mismatch");
  AMRVIS_REQUIRE_MSG(
      level >= 0 &&
          static_cast<std::size_t>(level) < compressed.levels.size(),
      "for_each_tile_compressed: level out of range");
  AMRVIS_REQUIRE_MSG(
      options.band_lo.has_value() == options.band_hi.has_value(),
      "for_each_tile_compressed: set both band_lo and band_hi or neither");
  AMRVIS_REQUIRE_MSG(!options.band_lo.has_value() ||
                         *options.band_lo <= *options.band_hi,
                     "for_each_tile_compressed: value band needs lo <= hi");
  const auto& clevel = compressed.levels[static_cast<std::size_t>(level)];
  const auto& boxes = compressed.boxes[static_cast<std::size_t>(level)];
  // Note: no cache sizing check — AmrTileCache::ref() carries the
  // invariant by construction (one container id per patch).
  const auto* chunked_codec =
      dynamic_cast<const compress::ChunkedCompressor*>(&comp);

  compress::RegionDecodeStats agg;
  for (std::size_t p = 0; p < boxes.size(); ++p) {
    const auto overlap = boxes[p].intersect(region);
    if (!overlap) continue;
    if (options.cancel != nullptr) options.cancel->check();
    const Bytes& blob = clevel.patches[p].blob;
    // The container speaks 0-based patch-local coordinates.
    const Box local{overlap->lo() - boxes[p].lo(),
                    overlap->hi() - boxes[p].lo()};
    if (chunked_codec != nullptr ||
        compress::ChunkedCompressor::is_chunked_blob(blob)) {
      // Tiled patch: stream the container, one decoded tile at a time.
      // Tiles are yielded whole and shifted into level index space.
      std::optional<compress::ChunkedCompressor> wrap;
      const compress::ChunkedCompressor* cc = chunked_codec;
      if (cc == nullptr) cc = &wrap.emplace(comp);
      compress::TileStreamOptions so;
      so.prefetch = options.prefetch;
      so.region = local;
      so.cancel = options.cancel;
      if (options.cache != nullptr && options.cache_chunked_tiles)
        so.cache = options.cache->ref(level, p);
      if (options.tile_select)
        so.select = [&options, p](const compress::TileRegion& t) {
          return options.tile_select(p, t);
        };
      if (options.band_lo.has_value()) {
        so.order = compress::TileStreamOptions::Order::kValueBand;
        so.band_lo = *options.band_lo;
        so.band_hi = *options.band_hi;
        // The band targets decoded values. v4 container stats bound
        // decoded values already (the stream culls exactly); for pre-v4
        // original-value stats the stream widens by this hierarchy-wide
        // absolute bound.
        so.band_widen = compressed.abs_eb;
      }
      compress::TileStream stream(*cc, blob, so);
      while (auto tile = stream.next()) {
        HierTile ht;
        ht.level = level;
        ht.patch = p;
        ht.box = tile->box.shift(boxes[p].lo());
        ht.stats = tile->stats;
        ht.data = std::move(tile->data);
        fn(std::move(ht));
      }
      agg.tiles_decoded += stream.tiles_decoded() - stream.cache_hits();
      agg.cache_hits += stream.cache_hits();
      agg.tiles_total += stream.tiles_total();
      agg.tiles_culled_exact += stream.skipped_exact();
      agg.tiles_culled_conservative += stream.skipped_conservative();
    } else {
      // Plain blob: no partial decode possible; inflate (once per call,
      // or once per cache lifetime through the shared cache) and yield
      // the region clip as a single tile with unknown value range.
      Array3<double> local_full;
      std::shared_ptr<const Array3<double>> shared_full;
      const Array3<double>* full = nullptr;
      if (options.cache != nullptr) {
        const compress::TileCacheRef cref = options.cache->ref(level, p);
        bool was_hit = false;
        shared_full = cref.cache->get_or_decode(
            cref.container, compress::TileCache::kWholeBlob,
            [&] { return comp.decompress(blob); }, &was_hit);
        (was_hit ? agg.cache_hits : agg.tiles_decoded) += 1;
        full = shared_full.get();
      } else {
        local_full = comp.decompress(blob);
        agg.tiles_decoded += 1;
        full = &local_full;
      }
      AMRVIS_REQUIRE_MSG(full->shape() == boxes[p].shape(),
                         "for_each_tile_compressed: shape mismatch");
      HierTile ht;
      ht.level = level;
      ht.patch = p;
      ht.box = *overlap;
      ht.stats = {-std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::infinity()};
      ht.data = Array3<double>(local.shape());
      const Shape3 os = ht.data.shape();
      for (std::int64_t dz = 0; dz < os.nz; ++dz)
        for (std::int64_t dy = 0; dy < os.ny; ++dy)
          std::memcpy(&ht.data(0, dy, dz),
                      &(*full)(local.lo().x, local.lo().y + dy,
                               local.lo().z + dz),
                      static_cast<std::size_t>(os.nx) * sizeof(double));
      fn(std::move(ht));
      agg.tiles_total += 1;
    }
  }
  if (stats != nullptr) *stats = agg;
}

void for_each_tile_compressed(
    const compress::AmrCompressed& compressed,
    const compress::Compressor& comp,
    const std::function<void(HierTile&&)>& fn,
    const HierTileOptions& options, compress::RegionDecodeStats* stats) {
  // Finest first: real data before coarse levels whose covered cells may
  // hold mean-fill placeholders (the sample_point_compressed order).
  compress::RegionDecodeStats agg;
  for (int l = static_cast<int>(compressed.levels.size()) - 1; l >= 0; --l) {
    compress::RegionDecodeStats ls;
    for_each_tile_compressed(compressed, comp, l,
                             compressed.domains[static_cast<std::size_t>(l)],
                             fn, options, &ls);
    agg.tiles_decoded += ls.tiles_decoded;
    agg.tiles_total += ls.tiles_total;
    agg.cache_hits += ls.cache_hits;
  }
  if (stats != nullptr) *stats = agg;
}

Array3<double> coarsen_average(View3<const double> fine, std::int64_t r) {
  AMRVIS_REQUIRE(r >= 1);
  const Shape3 fs = fine.shape();
  auto coarse_extent = [&](std::int64_t n) {
    if (n == 1) return std::int64_t{1};
    AMRVIS_REQUIRE_MSG(n % r == 0,
                       "coarsen_average: extent not divisible by ratio");
    return n / r;
  };
  const Shape3 cs{coarse_extent(fs.nx), coarse_extent(fs.ny),
                  coarse_extent(fs.nz)};
  Array3<double> coarse(cs);
  auto cv = coarse.view();
  const std::int64_t rx = fs.nx == 1 ? 1 : r;
  const std::int64_t ry = fs.ny == 1 ? 1 : r;
  const std::int64_t rz = fs.nz == 1 ? 1 : r;
  const double inv = 1.0 / static_cast<double>(rx * ry * rz);
  parallel_for(cs.nz, [&](std::int64_t K) {
    for (std::int64_t J = 0; J < cs.ny; ++J)
      for (std::int64_t I = 0; I < cs.nx; ++I) {
        double sum = 0.0;
        for (std::int64_t dz = 0; dz < rz; ++dz)
          for (std::int64_t dy = 0; dy < ry; ++dy)
            for (std::int64_t dx = 0; dx < rx; ++dx)
              sum += fine(I * rx + dx, J * ry + dy, K * rz + dz);
        cv(I, J, K) = sum * inv;
      }
  });
  return coarse;
}

}  // namespace amrvis::amr
