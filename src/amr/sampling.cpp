#include "amr/sampling.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace amrvis::amr {

namespace {
Shape3 refined_shape(Shape3 s, std::int64_t r) {
  return {s.nx * r, s.ny * r, s.nz * r};
}
}  // namespace

Array3<double> upsample_nearest(View3<const double> coarse, std::int64_t r) {
  AMRVIS_REQUIRE(r >= 1);
  const Shape3 cs = coarse.shape();
  Array3<double> fine(refined_shape(cs, r));
  auto fv = fine.view();
  const Shape3 fs = fine.shape();
  parallel_for(fs.nz, [&](std::int64_t k) {
    for (std::int64_t j = 0; j < fs.ny; ++j)
      for (std::int64_t i = 0; i < fs.nx; ++i)
        fv(i, j, k) = coarse(i / r, j / r, k / r);
  });
  return fine;
}

Array3<double> upsample_trilinear(View3<const double> coarse, std::int64_t r) {
  AMRVIS_REQUIRE(r >= 1);
  const Shape3 cs = coarse.shape();
  Array3<double> fine(refined_shape(cs, r));
  auto fv = fine.view();
  const Shape3 fs = fine.shape();
  const double inv_r = 1.0 / static_cast<double>(r);

  // Sample position of fine cell center f in coarse index space.
  auto pos = [&](std::int64_t f) {
    return (static_cast<double>(f) + 0.5) * inv_r - 0.5;
  };
  // Clamped base index + weight along one axis.
  auto axis = [&](double x, std::int64_t n, std::int64_t& i0, double& w) {
    const double xf = std::floor(x);
    i0 = static_cast<std::int64_t>(xf);
    w = x - xf;
    if (i0 < 0) {
      i0 = 0;
      w = 0.0;
    }
    if (i0 >= n - 1) {
      i0 = std::max<std::int64_t>(n - 2, 0);
      w = (n == 1) ? 0.0 : 1.0;
    }
  };

  parallel_for(fs.nz, [&](std::int64_t k) {
    std::int64_t k0;
    double wz;
    axis(pos(k), cs.nz, k0, wz);
    const std::int64_t k1 = std::min(k0 + 1, cs.nz - 1);
    for (std::int64_t j = 0; j < fs.ny; ++j) {
      std::int64_t j0;
      double wy;
      axis(pos(j), cs.ny, j0, wy);
      const std::int64_t j1 = std::min(j0 + 1, cs.ny - 1);
      for (std::int64_t i = 0; i < fs.nx; ++i) {
        std::int64_t i0;
        double wx;
        axis(pos(i), cs.nx, i0, wx);
        const std::int64_t i1 = std::min(i0 + 1, cs.nx - 1);
        const double c00 =
            coarse(i0, j0, k0) * (1 - wx) + coarse(i1, j0, k0) * wx;
        const double c10 =
            coarse(i0, j1, k0) * (1 - wx) + coarse(i1, j1, k0) * wx;
        const double c01 =
            coarse(i0, j0, k1) * (1 - wx) + coarse(i1, j0, k1) * wx;
        const double c11 =
            coarse(i0, j1, k1) * (1 - wx) + coarse(i1, j1, k1) * wx;
        const double c0 = c00 * (1 - wy) + c10 * wy;
        const double c1 = c01 * (1 - wy) + c11 * wy;
        fv(i, j, k) = c0 * (1 - wz) + c1 * wz;
      }
    }
  });
  return fine;
}

double sample_point_compressed(const compress::AmrCompressed& compressed,
                               const compress::Compressor& comp, IntVect p,
                               compress::RegionDecodeStats* stats) {
  const int nlev = static_cast<int>(compressed.levels.size());
  AMRVIS_REQUIRE_MSG(nlev >= 1, "sample_point_compressed: empty hierarchy");
  AMRVIS_REQUIRE_MSG(compressed.domains.back().contains(p),
                     "sample_point_compressed: point outside finest domain");
  // Finest-first: the first level whose patches cover the (coarsened)
  // point is the one composite_uniform would read at `p`, and skipping
  // coarser levels also skips their mean-fill placeholders.
  std::int64_t r = 1;
  for (int l = nlev - 1; l >= 0; --l) {
    const IntVect pl = floor_div(p, IntVect::uniform(r));
    compress::RegionDecodeStats rs;
    const auto rps =
        compress::decompress_level_region(compressed, comp, l, Box{pl, pl},
                                          &rs);
    if (!rps.empty()) {
      if (stats != nullptr) *stats = rs;
      // Overlapping same-level patches paint in patch order during
      // compositing, so the last one containing the cell wins.
      return rps.back().data[0];
    }
    r *= compressed.ref_ratio;
  }
  throw Error("sample_point_compressed: point not covered by any level");
}

Array3<double> sample_plane_compressed(
    const compress::AmrCompressed& compressed,
    const compress::Compressor& comp, int axis, std::int64_t index,
    compress::RegionDecodeStats* stats) {
  const int nlev = static_cast<int>(compressed.levels.size());
  AMRVIS_REQUIRE_MSG(nlev >= 1, "sample_plane_compressed: empty hierarchy");
  AMRVIS_REQUIRE_MSG(axis >= 0 && axis < 3,
                     "sample_plane_compressed: axis must be 0, 1 or 2");
  const Box fine_domain = compressed.domains.back();
  AMRVIS_REQUIRE_MSG(
      index >= fine_domain.lo()[axis] && index <= fine_domain.hi()[axis],
      "sample_plane_compressed: plane index outside finest domain");

  Shape3 out_shape = fine_domain.shape();
  (axis == 0 ? out_shape.nx : axis == 1 ? out_shape.ny : out_shape.nz) = 1;
  Array3<double> out(out_shape);
  compress::RegionDecodeStats agg;

  // Paint coarse-to-fine like composite_uniform, but only the cells each
  // level contributes to the plane — region decode keeps chunked patches
  // partial.
  for (int l = 0; l < nlev; ++l) {
    std::int64_t r = 1;
    for (int i = l; i + 1 < nlev; ++i) r *= compressed.ref_ratio;
    const Box& dom = compressed.domains[static_cast<std::size_t>(l)];
    IntVect rlo = dom.lo(), rhi = dom.hi();
    rlo[axis] = rhi[axis] = floor_div(index, r);
    compress::RegionDecodeStats rs;
    const auto rps = compress::decompress_level_region(compressed, comp, l,
                                                       Box{rlo, rhi}, &rs);
    agg.tiles_decoded += rs.tiles_decoded;
    agg.tiles_total += rs.tiles_total;
    for (const auto& rp : rps) {
      const IntVect blo = rp.box.lo();
      const Shape3 bs = rp.box.shape();
      for (std::int64_t dz = 0; dz < bs.nz; ++dz)
        for (std::int64_t dy = 0; dy < bs.ny; ++dy)
          for (std::int64_t dx = 0; dx < bs.nx; ++dx) {
            const double v = rp.data(dx, dy, dz);
            const IntVect q{blo.x + dx, blo.y + dy, blo.z + dz};
            // Fine cells of q on the plane: `axis` is pinned to `index`
            // (which q's refined block contains by construction of the
            // region), the free axes span r cells.
            IntVect flo = q * r;
            IntVect fhi = flo + IntVect::uniform(r - 1);
            flo[axis] = fhi[axis] = index;
            for (std::int64_t fz = flo.z; fz <= fhi.z; ++fz)
              for (std::int64_t fy = flo.y; fy <= fhi.y; ++fy)
                for (std::int64_t fx = flo.x; fx <= fhi.x; ++fx) {
                  IntVect o = IntVect{fx, fy, fz} - fine_domain.lo();
                  o[axis] = 0;
                  out(o.x, o.y, o.z) = v;
                }
          }
    }
  }
  if (stats != nullptr) *stats = agg;
  return out;
}

Array3<double> coarsen_average(View3<const double> fine, std::int64_t r) {
  AMRVIS_REQUIRE(r >= 1);
  const Shape3 fs = fine.shape();
  auto coarse_extent = [&](std::int64_t n) {
    if (n == 1) return std::int64_t{1};
    AMRVIS_REQUIRE_MSG(n % r == 0,
                       "coarsen_average: extent not divisible by ratio");
    return n / r;
  };
  const Shape3 cs{coarse_extent(fs.nx), coarse_extent(fs.ny),
                  coarse_extent(fs.nz)};
  Array3<double> coarse(cs);
  auto cv = coarse.view();
  const std::int64_t rx = fs.nx == 1 ? 1 : r;
  const std::int64_t ry = fs.ny == 1 ? 1 : r;
  const std::int64_t rz = fs.nz == 1 ? 1 : r;
  const double inv = 1.0 / static_cast<double>(rx * ry * rz);
  parallel_for(cs.nz, [&](std::int64_t K) {
    for (std::int64_t J = 0; J < cs.ny; ++J)
      for (std::int64_t I = 0; I < cs.nx; ++I) {
        double sum = 0.0;
        for (std::int64_t dz = 0; dz < rz; ++dz)
          for (std::int64_t dy = 0; dy < ry; ++dy)
            for (std::int64_t dx = 0; dx < rx; ++dx)
              sum += fine(I * rx + dx, J * ry + dy, K * rz + dz);
        cv(I, J, K) = sum * inv;
      }
  });
  return coarse;
}

}  // namespace amrvis::amr
