#pragma once
// Reconstruction-quality metrics used throughout the paper's evaluation:
// PSNR (data domain), windowed SSIM (data volumes and rendered images),
// and the paper's proposed R-SSIM = 1 - SSIM (Eq. 1), which spreads the
// "many nines" SSIM regime onto an interpretable log scale.

#include <span>

#include "util/array3d.hpp"

namespace amrvis::metrics {

/// Mean squared error.
double mse(std::span<const double> a, std::span<const double> b);

/// PSNR in dB with the peak taken as the value range of `a` (the original
/// data), matching SZ's convention: 20*log10(range) - 10*log10(MSE).
double psnr(std::span<const double> a, std::span<const double> b);

struct SsimOptions {
  int window = 7;       ///< cubic box window edge length (odd)
  double k1 = 0.01;     ///< standard SSIM stabilizer constants
  double k2 = 0.03;
};

/// Mean windowed SSIM between two equal-shape volumes (2-D images are
/// volumes with nz == 1). Box-window implementation via running sums:
/// O(N) regardless of window size. Dynamic range is taken from `a`.
double ssim(View3<const double> a, View3<const double> b,
            const SsimOptions& options = {});

/// The paper's reverse SSIM (Eq. 1).
inline double reverse_ssim(double ssim_value) { return 1.0 - ssim_value; }

/// One point on a rate-distortion curve (Figs. 12-13).
struct RdPoint {
  double rel_eb = 0.0;
  double ratio = 0.0;   ///< compression ratio
  double psnr_db = 0.0;
  double ssim_value = 0.0;
  [[nodiscard]] double rssim() const { return reverse_ssim(ssim_value); }
};

}  // namespace amrvis::metrics
