#include "metrics/csv.hpp"

#include <cstdio>

#include "util/bytestream.hpp"
#include "util/error.hpp"

namespace amrvis::metrics {

void CsvTable::add_row(std::vector<std::string> row) {
  AMRVIS_REQUIRE_MSG(row.size() == header_.size(),
                     "CsvTable: row width mismatch");
  rows_.push_back(std::move(row));
}

void CsvTable::add_row(const std::vector<double>& values) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    row.emplace_back(buf);
  }
  add_row(std::move(row));
}

namespace {
std::string quote(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string CsvTable::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) out += ',';
    out += quote(header_[i]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += quote(row[i]);
    }
    out += '\n';
  }
  return out;
}

void CsvTable::write(const std::string& path) const {
  const std::string text = to_string();
  write_file(path, {reinterpret_cast<const std::uint8_t*>(text.data()),
                    text.size()});
}

CsvTable rd_series_to_csv(const std::string& codec,
                          const std::vector<RdPoint>& points) {
  CsvTable table({"codec", "rel_eb", "ratio", "psnr_db", "ssim", "rssim"});
  for (const RdPoint& p : points) {
    char eb[32], cr[32], psnr[32], ssim_s[32], rssim[32];
    std::snprintf(eb, sizeof eb, "%.6g", p.rel_eb);
    std::snprintf(cr, sizeof cr, "%.6g", p.ratio);
    std::snprintf(psnr, sizeof psnr, "%.6g", p.psnr_db);
    std::snprintf(ssim_s, sizeof ssim_s, "%.9g", p.ssim_value);
    std::snprintf(rssim, sizeof rssim, "%.6g", p.rssim());
    table.add_row(std::vector<std::string>{codec, eb, cr, psnr, ssim_s,
                                           rssim});
  }
  return table;
}

}  // namespace amrvis::metrics
