#pragma once
// Minimal CSV emission for bench results: rate-distortion series and
// generic tables, so plots of Figs. 12-13 can be regenerated outside the
// terminal.

#include <string>
#include <vector>

#include "metrics/quality.hpp"

namespace amrvis::metrics {

/// A generic CSV table: header plus string rows.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Add a row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Row from doubles, formatted with %.6g.
  void add_row(const std::vector<double>& values);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Serialize (RFC-4180-style quoting for cells containing commas).
  [[nodiscard]] std::string to_string() const;

  void write(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Rate-distortion series (one codec) to CSV rows: eb, cr, psnr, ssim,
/// rssim.
CsvTable rd_series_to_csv(const std::string& codec,
                          const std::vector<RdPoint>& points);

}  // namespace amrvis::metrics
