#include "metrics/quality.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace amrvis::metrics {

double mse(std::span<const double> a, std::span<const double> b) {
  AMRVIS_REQUIRE(a.size() == b.size() && !a.empty());
  const auto n = static_cast<std::int64_t>(a.size());
  return parallel_reduce<double>(
             n, 0.0,
             [&](std::int64_t i) {
               const double d = a[static_cast<std::size_t>(i)] -
                                b[static_cast<std::size_t>(i)];
               return d * d;
             },
             [](double x, double y) { return x + y; }) /
         static_cast<double>(n);
}

double psnr(std::span<const double> a, std::span<const double> b) {
  const double m = mse(a, b);
  const double range = min_max(a).range();
  if (m == 0.0) return std::numeric_limits<double>::infinity();
  AMRVIS_REQUIRE_MSG(range > 0.0, "psnr: constant reference data");
  return 20.0 * std::log10(range) - 10.0 * std::log10(m);
}

namespace {

/// Separable box sum: out(i,j,k) = sum of in over the centered w-window
/// (clamped at borders we simply sum fewer entries; the caller divides by
/// the matching count volume, computed the same way on a ones-array —
/// here implemented by also box-summing a count field implicitly).
void box_sum_axis(const Array3<double>& in, Array3<double>& out, int axis,
                  int radius) {
  const Shape3 s = in.shape();
  auto iv = in.view();
  auto ov = out.view();
  const std::int64_t n[3] = {s.nx, s.ny, s.nz};
  const std::int64_t na = n[axis];
  // Lines along `axis`: iterate over the other two dimensions.
  const int u = axis == 0 ? 1 : 0;
  const int v = axis == 2 ? 1 : 2;
  const std::int64_t nu = n[u], nv = n[v];
  parallel_for(nv, [&](std::int64_t cv) {
    std::vector<double> prefix(static_cast<std::size_t>(na) + 1, 0.0);
    for (std::int64_t cu = 0; cu < nu; ++cu) {
      auto at = [&](std::int64_t ca) -> std::int64_t {
        std::int64_t idx[3];
        idx[axis] = ca;
        idx[u] = cu;
        idx[v] = cv;
        return (idx[2] * s.ny + idx[1]) * s.nx + idx[0];
      };
      for (std::int64_t ca = 0; ca < na; ++ca)
        prefix[static_cast<std::size_t>(ca) + 1] =
            prefix[static_cast<std::size_t>(ca)] + iv[at(ca)];
      for (std::int64_t ca = 0; ca < na; ++ca) {
        const std::int64_t lo = std::max<std::int64_t>(0, ca - radius);
        const std::int64_t hi = std::min(na - 1, ca + radius);
        ov[at(ca)] = prefix[static_cast<std::size_t>(hi) + 1] -
                     prefix[static_cast<std::size_t>(lo)];
      }
    }
  });
}

Array3<double> box_filter(const Array3<double>& in, int radius) {
  Array3<double> tmp(in.shape());
  Array3<double> out(in.shape());
  box_sum_axis(in, tmp, 0, radius);
  box_sum_axis(tmp, out, 1, radius);
  box_sum_axis(out, tmp, 2, radius);
  return tmp;
}

}  // namespace

double ssim(View3<const double> a, View3<const double> b,
            const SsimOptions& options) {
  AMRVIS_REQUIRE(a.shape() == b.shape());
  AMRVIS_REQUIRE(options.window >= 1 && options.window % 2 == 1);
  const Shape3 s = a.shape();
  const int radius = options.window / 2;

  const double range = [&] {
    MinMax mm;
    for (std::int64_t i = 0; i < a.size(); ++i) {
      mm.min = std::min(mm.min, a[i]);
      mm.max = std::max(mm.max, a[i]);
    }
    return mm.range() > 0 ? mm.range() : 1.0;
  }();
  const double c1 = (options.k1 * range) * (options.k1 * range);
  const double c2 = (options.k2 * range) * (options.k2 * range);

  // Window sums of x, y, x^2, y^2, xy and the window volume.
  Array3<double> ax(s), by(s), axx(s), byy(s), axy(s), ones(s, 1.0);
  for (std::int64_t i = 0; i < s.size(); ++i) {
    ax[i] = a[i];
    by[i] = b[i];
    axx[i] = a[i] * a[i];
    byy[i] = b[i] * b[i];
    axy[i] = a[i] * b[i];
  }
  const Array3<double> sx = box_filter(ax, radius);
  const Array3<double> sy = box_filter(by, radius);
  const Array3<double> sxx = box_filter(axx, radius);
  const Array3<double> syy = box_filter(byy, radius);
  const Array3<double> sxy = box_filter(axy, radius);
  const Array3<double> cnt = box_filter(ones, radius);

  const double total = parallel_reduce<double>(
      s.size(), 0.0,
      [&](std::int64_t i) {
        const double n = cnt[i];
        const double mx = sx[i] / n;
        const double my = sy[i] / n;
        const double vx = std::max(0.0, sxx[i] / n - mx * mx);
        const double vy = std::max(0.0, syy[i] / n - my * my);
        const double cov = sxy[i] / n - mx * my;
        const double num = (2.0 * mx * my + c1) * (2.0 * cov + c2);
        const double den =
            (mx * mx + my * my + c1) * (vx + vy + c2);
        return den != 0.0 ? num / den : 1.0;
      },
      [](double x, double y) { return x + y; });
  return total / static_cast<double>(s.size());
}

}  // namespace amrvis::metrics
