#pragma once
// Cooperative cancellation and deadlines for long-running decode loops.
//
// A CancelToken is a cheap-to-copy handle pairing an optional shared
// cancellation flag with an optional absolute deadline. Work loops call
// check() at tile granularity; it throws Error{kCancelled} or
// Error{kTimeout}, which the query service converts into a typed failed
// outcome. The default-constructed token never fires, so plumbed-through
// call sites cost one null test when no deadline is in play.

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>

#include "util/error.hpp"

namespace amrvis::util {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never cancels, never expires.
  CancelToken() = default;

  CancelToken(std::shared_ptr<std::atomic<bool>> flag,
              std::optional<Clock::time_point> deadline)
      : flag_(std::move(flag)), deadline_(deadline) {}

  static CancelToken with_deadline(Clock::time_point deadline) {
    return {nullptr, deadline};
  }

  /// A token whose cancel() has an effect (owns a flag, no deadline).
  static CancelToken manual() {
    return {std::make_shared<std::atomic<bool>>(false), std::nullopt};
  }

  void cancel() const {
    if (flag_) flag_->store(true, std::memory_order_release);
  }

  [[nodiscard]] bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_acquire);
  }

  [[nodiscard]] bool expired() const {
    return deadline_ && Clock::now() > *deadline_;
  }

  /// Throws Error{kCancelled} / Error{kTimeout} when fired.
  void check() const {
    if (cancelled())
      throw Error(ErrorCode::kCancelled, "request cancelled");
    if (expired())
      throw Error(ErrorCode::kTimeout, "request deadline exceeded");
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
  std::optional<Clock::time_point> deadline_;
};

}  // namespace amrvis::util
