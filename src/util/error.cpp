#include "util/error.hpp"

#include <sstream>
#include <string_view>

namespace amrvis {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kGeneric: return "generic";
    case ErrorCode::kPrecondition: return "precondition";
    case ErrorCode::kInvariant: return "invariant";
    case ErrorCode::kCorruptHeader: return "corrupt-header";
    case ErrorCode::kCorruptPayload: return "corrupt-payload";
    case ErrorCode::kStatsInvalid: return "stats-invalid";
    case ErrorCode::kDecodeFailure: return "decode-failure";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kQuarantined: return "quarantined";
    case ErrorCode::kFaultInjected: return "fault-injected";
    case ErrorCode::kBadFaultSpec: return "bad-fault-spec";
    case ErrorCode::kUnavailable: return "unavailable";
  }
  return "unknown";
}

namespace {

std::string format_what(ErrorCode code, const std::string& message,
                        const ErrorContext& ctx) {
  std::ostringstream os;
  // kGeneric keeps the bare legacy text so pre-taxonomy what() strings
  // (and the tests matching them) are unchanged; macro-built messages
  // already lead with the code name, so don't tag those twice.
  const char* name = error_code_name(code);
  if (code != ErrorCode::kGeneric && message.rfind(name, 0) != 0) {
    os << '[' << name << "] ";
  }
  os << message;
  if (ctx.any()) {
    os << " (";
    const char* sep = "";
    if (ctx.container != 0) {
      os << "container " << ctx.container;
      sep = ", ";
    }
    if (ctx.tile != ErrorContext::kNoTile) {
      os << sep << "tile " << ctx.tile;
      sep = ", ";
    }
    if (ctx.byte_offset >= 0) os << sep << "byte " << ctx.byte_offset;
    os << ')';
  }
  return os.str();
}

}  // namespace

Error::Error(ErrorCode code, const std::string& message, ErrorContext ctx)
    : std::runtime_error(format_what(code, message, ctx)),
      code_(code),
      ctx_(ctx),
      message_(message) {}

Error Error::with_context(const ErrorContext& extra) const {
  ErrorContext merged = ctx_;
  if (merged.container == 0) merged.container = extra.container;
  if (merged.tile == ErrorContext::kNoTile) merged.tile = extra.tile;
  if (merged.byte_offset < 0) merged.byte_offset = extra.byte_offset;
  return {code_, message_, merged};
}

namespace detail {

namespace {
[[noreturn]] void fail_impl(ErrorCode code, const char* kind,
                            const char* expr, const char* file, int line,
                            const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  // The message leads with the kind/code name, so format_what leaves it
  // untagged: the REQUIRE/ASSERT macros keep their exact legacy what()
  // text while still classifying the error.
  throw Error(code, os.str());
}
}  // namespace

void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& msg) {
  const ErrorCode code = (std::string_view(kind) == "invariant")
                             ? ErrorCode::kInvariant
                             : ErrorCode::kPrecondition;
  fail_impl(code, kind, expr, file, line, msg);
}

void fail(ErrorCode code, const char* expr, const char* file, int line,
          const std::string& msg) {
  fail_impl(code, error_code_name(code), expr, file, line, msg);
}

}  // namespace detail

}  // namespace amrvis
