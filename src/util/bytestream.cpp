#include "util/bytestream.hpp"

#include <cstdio>
#include <memory>

namespace amrvis {

void write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  AMRVIS_REQUIRE_MSG(f != nullptr, "cannot open for write: " + path);
  if (!data.empty()) {
    const std::size_t n = std::fwrite(data.data(), 1, data.size(), f.get());
    AMRVIS_REQUIRE_MSG(n == data.size(), "short write: " + path);
  }
}

Bytes read_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  AMRVIS_REQUIRE_MSG(f != nullptr, "cannot open for read: " + path);
  std::fseek(f.get(), 0, SEEK_END);
  const long size = std::ftell(f.get());
  AMRVIS_REQUIRE_MSG(size >= 0, "cannot stat: " + path);
  std::fseek(f.get(), 0, SEEK_SET);
  Bytes data(static_cast<std::size_t>(size));
  if (size > 0) {
    const std::size_t n =
        std::fread(data.data(), 1, data.size(), f.get());
    AMRVIS_REQUIRE_MSG(n == data.size(), "short read: " + path);
  }
  return data;
}

}  // namespace amrvis
