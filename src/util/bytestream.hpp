#pragma once
// Byte- and bit-granular serialization used by the compression codecs.
//
// ByteWriter/ByteReader: little-endian POD packing with bounds checking.
// BitWriter/BitReader: MSB-first bit packing (Huffman codes, ZFP-like
// bit planes). All containers are std::vector<std::uint8_t>.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace amrvis {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  explicit ByteWriter(Bytes& out) : out_(out) {}

  template <typename T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t pos = out_.size();
    out_.resize(pos + sizeof(T));
    std::memcpy(out_.data() + pos, &value, sizeof(T));
  }

  void put_bytes(std::span<const std::uint8_t> bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }

  /// Length-prefixed (u64) byte blob.
  void put_blob(std::span<const std::uint8_t> bytes) {
    put<std::uint64_t>(bytes.size());
    put_bytes(bytes);
  }

  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  Bytes& out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> in) : in_(in) {}

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    AMRVIS_CHECK(ErrorCode::kCorruptPayload, pos_ + sizeof(T) <= in_.size(),
                 "ByteReader: truncated stream");
    T value;
    std::memcpy(&value, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  std::span<const std::uint8_t> get_bytes(std::size_t n) {
    // Checked as `n <= remaining` (not `pos_ + n <= size`): a corrupt
    // length prefix near SIZE_MAX would overflow the addition and pass.
    AMRVIS_CHECK(ErrorCode::kCorruptPayload, n <= in_.size() - pos_,
                 "ByteReader: truncated stream");
    auto s = in_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::span<const std::uint8_t> get_blob() {
    const auto n = get<std::uint64_t>();
    return get_bytes(static_cast<std::size_t>(n));
  }

  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
};

/// MSB-first bit writer.
class BitWriter {
 public:
  /// Append the low `nbits` bits of `value`, most significant first.
  void put_bits(std::uint64_t value, int nbits) {
    AMRVIS_ASSERT(nbits >= 0 && nbits <= 64);
    for (int b = nbits - 1; b >= 0; --b) put_bit((value >> b) & 1u);
  }

  void put_bit(std::uint64_t bit) {
    if (fill_ == 0) bytes_.push_back(0);
    bytes_.back() |= static_cast<std::uint8_t>((bit & 1u) << (7 - fill_));
    fill_ = (fill_ + 1) & 7;
  }

  /// Total bits written so far.
  [[nodiscard]] std::uint64_t bit_count() const {
    return bytes_.empty()
               ? 0
               : (static_cast<std::uint64_t>(bytes_.size()) - 1) * 8 +
                     (fill_ == 0 ? 8 : static_cast<std::uint64_t>(fill_));
  }

  [[nodiscard]] const Bytes& bytes() const { return bytes_; }
  [[nodiscard]] Bytes take() { return std::move(bytes_); }

 private:
  Bytes bytes_;
  int fill_ = 0;  // bits used in the last byte (0 == byte full / none open)
};

/// MSB-first bit reader.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint64_t get_bit() {
    AMRVIS_CHECK(ErrorCode::kCorruptPayload, byte_ < bytes_.size(),
                 "BitReader: out of bits");
    const std::uint64_t bit = (bytes_[byte_] >> (7 - bit_)) & 1u;
    if (++bit_ == 8) {
      bit_ = 0;
      ++byte_;
    }
    return bit;
  }

  [[nodiscard]] std::uint64_t get_bits(int nbits) {
    std::uint64_t v = 0;
    for (int i = 0; i < nbits; ++i) v = (v << 1) | get_bit();
    return v;
  }

  [[nodiscard]] std::uint64_t bits_consumed() const {
    return byte_ * 8 + static_cast<std::uint64_t>(bit_);
  }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t byte_ = 0;
  int bit_ = 0;
};

/// Write bytes to a file, throwing on failure.
void write_file(const std::string& path, std::span<const std::uint8_t> data);

/// Read a whole file, throwing on failure.
Bytes read_file(const std::string& path);

}  // namespace amrvis
