#include "util/fault.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <thread>

#include "util/error.hpp"

namespace amrvis::fault {

namespace {

struct ActiveRule {
  Rule rule;
  std::uint64_t fired = 0;
};

// All mutable plan state lives behind one mutex; `armed` is the only field
// read outside it. Faults are a test/debug facility — the serialized slow
// path only runs while a plan is installed, and determinism of the op
// order within one site is exactly what the serialization buys.
struct Registry {
  std::atomic<bool> armed{false};
  std::mutex mu;
  std::vector<ActiveRule> rules;
  std::array<std::uint64_t, kSiteCount> op_count{};
  std::array<std::uint64_t, kSiteCount> injected{};
};

Registry& registry() {
  static Registry* reg = [] {
    auto* r = new Registry;
    if (const char* spec = std::getenv("AMRVIS_FAULT_SPEC")) {
      // Parse errors propagate as Error{kBadFaultSpec} from the first
      // instrumented op — typed and catchable, never a silent no-op.
      FaultPlan plan = FaultPlan::parse(spec);
      for (const Rule& rule : plan.rules) r->rules.push_back({rule, 0});
      r->armed.store(!r->rules.empty(), std::memory_order_release);
    }
    return r;
  }();
  return *reg;
}

/// splitmix64: deterministic bit choice for flip faults.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  throw Error(ErrorCode::kBadFaultSpec,
              "fault spec \"" + spec + "\": " + why);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t end = s.find(sep, begin);
    if (end == std::string::npos) {
      out.push_back(s.substr(begin));
      break;
    }
    out.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

}  // namespace

const char* site_name(Site site) {
  switch (site) {
    case Site::kTileDecode: return "tiledecode";
    case Site::kHeaderParse: return "headerparse";
    case Site::kCacheInsert: return "cacheinsert";
    case Site::kPoolTask: return "pooltask";
  }
  return "unknown";
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& rule_text : split(spec, ';')) {
    if (rule_text.empty()) continue;
    const std::vector<std::string> parts = split(rule_text, ':');
    if (parts.size() < 2 || parts.size() > 3)
      bad_spec(spec, "rule \"" + rule_text + "\" is not site:kind[:opts]");

    Rule rule;
    bool site_ok = false;
    for (int s = 0; s < kSiteCount; ++s) {
      if (parts[0] == site_name(static_cast<Site>(s))) {
        rule.site = static_cast<Site>(s);
        site_ok = true;
      }
    }
    if (!site_ok) bad_spec(spec, "unknown site \"" + parts[0] + "\"");

    if (parts[1] == "throw") rule.kind = Kind::kThrow;
    else if (parts[1] == "flip") rule.kind = Kind::kBitFlip;
    else if (parts[1] == "delay") rule.kind = Kind::kDelay;
    else bad_spec(spec, "unknown kind \"" + parts[1] + "\"");

    if (parts.size() == 3) {
      for (const std::string& kv : split(parts[2], ',')) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos)
          bad_spec(spec, "option \"" + kv + "\" is not key=value");
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        std::uint64_t n = 0;
        try {
          std::size_t used = 0;
          n = std::stoull(value, &used);
          if (used != value.size()) throw std::invalid_argument(value);
        } catch (const std::exception&) {
          bad_spec(spec, "option " + key + "=" + value +
                             " is not a non-negative integer");
        }
        if (key == "start") rule.start = n;
        else if (key == "every") rule.every = n;
        else if (key == "count") rule.count = static_cast<std::int64_t>(n);
        else if (key == "ms") rule.ms = n;
        else if (key == "seed") rule.seed = n;
        else bad_spec(spec, "unknown option \"" + key + "\"");
      }
    }
    if (rule.every == 0) bad_spec(spec, "every=0 never fires");
    plan.rules.push_back(rule);
  }
  return plan;
}

bool enabled() {
  return registry().armed.load(std::memory_order_relaxed);
}

void install(const FaultPlan& plan) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.rules.clear();
  for (const Rule& rule : plan.rules) reg.rules.push_back({rule, 0});
  reg.op_count.fill(0);
  reg.injected.fill(0);
  reg.armed.store(!reg.rules.empty(), std::memory_order_release);
}

void uninstall() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.armed.store(false, std::memory_order_release);
  reg.rules.clear();
}

std::uint64_t ops(Site site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.op_count[static_cast<int>(site)];
}

std::uint64_t injected(Site site) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.injected[static_cast<int>(site)];
}

std::optional<Bytes> on_op(Site site, std::span<const std::uint8_t> payload) {
  Registry& reg = registry();
  std::optional<Rule> fire;
  std::uint64_t op = 0;
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    if (!reg.armed.load(std::memory_order_relaxed)) return std::nullopt;
    op = reg.op_count[static_cast<int>(site)]++;
    for (ActiveRule& ar : reg.rules) {
      const Rule& rule = ar.rule;
      if (rule.site != site || op < rule.start) continue;
      if ((op - rule.start) % rule.every != 0) continue;
      if (rule.count >= 0 &&
          ar.fired >= static_cast<std::uint64_t>(rule.count))
        continue;
      ++ar.fired;
      ++reg.injected[static_cast<int>(site)];
      fire = rule;  // copied: the plan may be uninstalled mid-flight
      break;
    }
  }
  if (!fire) return std::nullopt;

  switch (fire->kind) {
    case Kind::kThrow:
      throw Error(ErrorCode::kFaultInjected,
                  std::string("injected fault at ") + site_name(site) +
                      " (op " + std::to_string(op) + ")");
    case Kind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fire->ms));
      return std::nullopt;
    case Kind::kBitFlip: {
      if (payload.empty()) return std::nullopt;
      Bytes mutated(payload.begin(), payload.end());
      const std::uint64_t bit =
          mix(fire->seed * 0x5851f42d4c957f2dull + op) %
          (static_cast<std::uint64_t>(mutated.size()) * 8);
      mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      return mutated;
    }
  }
  return std::nullopt;
}

}  // namespace amrvis::fault
