#pragma once
// Wall-clock timer for throughput accounting.

#include <chrono>

namespace amrvis {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace amrvis
