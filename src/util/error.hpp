#pragma once
// Error handling for amrvis.
//
// Library code reports contract violations and unrecoverable conditions by
// throwing amrvis::Error. Every Error carries an ErrorCode classifying the
// failure and an optional ErrorContext locating it (container id, tile slot,
// byte offset), so callers — the query service's retry/quarantine machinery
// in particular — can react to *what* failed, not just that something did.
// Error still derives from std::runtime_error, so catch-by-std::exception
// call sites keep working unchanged.
//
// AMRVIS_REQUIRE is used for preconditions on public API entry points
// (always on, independent of NDEBUG); AMRVIS_CHECK is the typed variant for
// data-validation sites (corrupt headers/payloads, invalid stats);
// AMRVIS_ASSERT is an internal invariant check compiled out in release-like
// builds.

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace amrvis {

enum class ErrorCode : std::uint8_t {
  kOk = 0,          ///< not an error (used by service Response outcomes)
  kGeneric,         ///< untyped failure (legacy string constructor)
  kPrecondition,    ///< AMRVIS_REQUIRE on a public entry point
  kInvariant,       ///< AMRVIS_ASSERT internal invariant
  kCorruptHeader,   ///< container/blob header failed validation
  kCorruptPayload,  ///< codec payload failed decode-side validation
  kStatsInvalid,    ///< per-tile stats/faces table failed validation
  kDecodeFailure,   ///< decoded data inconsistent (shape mismatch, poisoned)
  kTimeout,         ///< request deadline expired
  kCancelled,       ///< cooperative cancellation requested
  kQuarantined,     ///< container/slot refused by the circuit breaker
  kFaultInjected,   ///< deterministic fault injection fired (transient)
  kBadFaultSpec,    ///< malformed AMRVIS_FAULT_SPEC grammar
  kUnavailable,     ///< no data can be served (e.g. every covering patch
                    ///< skipped by quarantine)
};

/// Stable lowercase name for an ErrorCode ("corrupt-header", ...).
const char* error_code_name(ErrorCode code);

/// True for failures that a bounded retry can plausibly clear. Injected
/// faults are transient by construction; genuinely corrupt data is not —
/// retrying a corrupt payload re-reads the same bytes.
constexpr bool error_is_transient(ErrorCode code) {
  return code == ErrorCode::kFaultInjected;
}

/// Where an error happened, in the coordinates the serving layer reasons
/// in. All fields are optional; the sentinels mean "unknown".
struct ErrorContext {
  static constexpr std::int64_t kNoTile =
      std::numeric_limits<std::int64_t>::min();

  std::uint64_t container = 0;    ///< TileCache container id; 0 = unknown
  std::int64_t tile = kNoTile;    ///< tile slot within the container
  std::int64_t byte_offset = -1;  ///< offset into the blob; -1 = unknown

  [[nodiscard]] bool any() const {
    return container != 0 || tile != kNoTile || byte_offset >= 0;
  }
};

/// Exception type thrown by all amrvis libraries.
class Error : public std::runtime_error {
 public:
  /// Untyped (legacy) constructor: classified kGeneric.
  explicit Error(const std::string& what)
      : Error(ErrorCode::kGeneric, what) {}

  Error(ErrorCode code, const std::string& message, ErrorContext ctx = {});

  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const ErrorContext& context() const { return ctx_; }
  /// The unformatted message (what() adds the code tag and context).
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Copy of this error with any context fields it does not already carry
  /// filled in from `extra`. Fields the error already knows win, so an
  /// inner throw site's precise location survives outer enrichment.
  [[nodiscard]] Error with_context(const ErrorContext& extra) const;

 private:
  ErrorCode code_;
  ErrorContext ctx_;
  std::string message_;
};

namespace detail {
[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& msg);
[[noreturn]] void fail(ErrorCode code, const char* expr, const char* file,
                       int line, const std::string& msg);
}  // namespace detail

}  // namespace amrvis

/// Precondition check: always active.
#define AMRVIS_REQUIRE(expr)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::amrvis::detail::fail("precondition", #expr, __FILE__, __LINE__,  \
                             std::string{});                              \
  } while (0)

/// Precondition check with message: always active.
#define AMRVIS_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                    \
    if (!(expr))                                                          \
      ::amrvis::detail::fail("precondition", #expr, __FILE__, __LINE__,  \
                             (msg));                                      \
  } while (0)

/// Typed validation check: always active, throws Error carrying `code`.
#define AMRVIS_CHECK(code, expr, msg)                                     \
  do {                                                                    \
    if (!(expr))                                                          \
      ::amrvis::detail::fail((code), #expr, __FILE__, __LINE__, (msg));   \
  } while (0)

#ifdef NDEBUG
#define AMRVIS_ASSERT(expr) ((void)0)
#else
/// Internal invariant check: active unless NDEBUG.
#define AMRVIS_ASSERT(expr)                                               \
  do {                                                                    \
    if (!(expr))                                                          \
      ::amrvis::detail::fail("invariant", #expr, __FILE__, __LINE__,     \
                             std::string{});                              \
  } while (0)
#endif
