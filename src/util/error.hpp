#pragma once
// Error handling for amrvis.
//
// Library code reports contract violations and unrecoverable conditions by
// throwing amrvis::Error. AMRVIS_REQUIRE is used for preconditions on public
// API entry points (always on, independent of NDEBUG); AMRVIS_ASSERT is an
// internal invariant check compiled out in release-like builds.

#include <sstream>
#include <stdexcept>
#include <string>

namespace amrvis {

/// Exception type thrown by all amrvis libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace amrvis

/// Precondition check: always active.
#define AMRVIS_REQUIRE(expr)                                              \
  do {                                                                    \
    if (!(expr))                                                          \
      ::amrvis::detail::fail("precondition", #expr, __FILE__, __LINE__,  \
                             std::string{});                              \
  } while (0)

/// Precondition check with message: always active.
#define AMRVIS_REQUIRE_MSG(expr, msg)                                     \
  do {                                                                    \
    if (!(expr))                                                          \
      ::amrvis::detail::fail("precondition", #expr, __FILE__, __LINE__,  \
                             (msg));                                      \
  } while (0)

#ifdef NDEBUG
#define AMRVIS_ASSERT(expr) ((void)0)
#else
/// Internal invariant check: active unless NDEBUG.
#define AMRVIS_ASSERT(expr)                                               \
  do {                                                                    \
    if (!(expr))                                                          \
      ::amrvis::detail::fail("invariant", #expr, __FILE__, __LINE__,     \
                             std::string{});                              \
  } while (0)
#endif
