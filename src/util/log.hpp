#pragma once
// Minimal leveled logger. Thread-safe; writes to stderr.

#include <sstream>
#include <string>

namespace amrvis {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (used by the AMRVIS_LOG macro).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace amrvis

#define AMRVIS_LOG(level) ::amrvis::detail::LogLine(::amrvis::LogLevel::level)
