#pragma once
// Minimal leveled logger. Thread-safe; writes to stderr by default.
//
// Each line is prefixed with an ISO-8601 UTC timestamp and a dense
// per-process thread id:
//
//   2026-08-08T12:34:56.789Z [amrvis INFO t0] message
//
// Tests (or embedders) can capture output instead of letting it hit
// stderr via set_log_sink; the sink receives the already-formatted line.

#include <functional>
#include <sstream>
#include <string>

namespace amrvis {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Receives every formatted line that passes the level filter (without a
/// trailing newline). Called under the logger's mutex: lines never
/// interleave, and the sink must not log re-entrantly.
using LogSink = std::function<void(LogLevel, const std::string& line)>;

/// Replace the default stderr sink; pass nullptr to restore it.
void set_log_sink(LogSink sink);

/// The exact line a message formats to — the default sink writes this
/// plus '\n' to stderr. Exposed so tests can pin the format.
std::string format_log_line(LogLevel level, const std::string& msg);

/// Emit one log line (used by the AMRVIS_LOG macro).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace amrvis

#define AMRVIS_LOG(level) ::amrvis::detail::LogLine(::amrvis::LogLevel::level)
