#pragma once
// Radix-2 complex FFT (1-D) and a 3-D transform built from it.
//
// Used only by the Gaussian-random-field generator in src/sim; sizes are
// powers of two. Forward transform uses e^{-i...}; inverse divides by N.

#include <complex>
#include <vector>

#include "util/array3d.hpp"

namespace amrvis {

using Complex = std::complex<double>;

/// In-place iterative radix-2 FFT. `n` must be a power of two.
/// `inverse` selects the inverse transform (includes the 1/n scaling).
void fft_1d(Complex* data, std::int64_t n, bool inverse);

/// 3-D FFT over an Array3<Complex>; each extent must be a power of two.
void fft_3d(Array3<Complex>& data, bool inverse);

/// True iff v is a power of two (v >= 1).
constexpr bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

}  // namespace amrvis
