#pragma once
// Tiny command-line flag parser shared by benches and examples.
//
// Supports `--name value`, `--name=value`, and boolean `--name`. Unknown
// flags are an error so typos in bench invocations fail loudly.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace amrvis {

class Cli {
 public:
  /// Declare a flag with a default value and help text before parse().
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parse argv; throws amrvis::Error on unknown flags. `--help` prints
  /// usage and returns false (caller should exit 0).
  bool parse(int argc, char** argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

 private:
  struct Flag {
    std::string value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  std::string program_;
};

}  // namespace amrvis
