#pragma once
// Persistent work-stealing thread pool — the process-wide execution layer
// behind util/parallel.hpp's kPool backend and the concurrent query
// service (service/query_service.hpp).
//
// Why a pool when OpenMP already parallelizes the hot loops: an OpenMP
// `parallel for` region is owned by its calling thread. N concurrent
// callers (query clients) each fork their own team, oversubscribing the
// machine N-fold, and a nested region inside an active one is serialized.
// The pool inverts that: one fixed set of workers serves every caller,
// and a caller always PARTICIPATES in its own job — it claims chunk
// tickets like any worker until the job is done. Nested run() calls
// therefore compose instead of deadlocking or oversubscribing: the
// submitting thread drains whatever chunks no worker has claimed, so
// forward progress never depends on a free worker.
//
// Exception contract (same as util/parallel.hpp): the first exception
// thrown by any chunk is captured, remaining chunks are skipped best
// effort, and the exception is rethrown on the calling thread after every
// chunk has been accounted for. Workers never terminate the process.
//
// Determinism: run(n, chunk) executes every chunk exactly once; which
// thread runs a chunk is scheduling-dependent, so chunk bodies must be
// data-parallel (own-output-slot only) exactly like parallel_for bodies.
// Under that contract outputs are bitwise independent of scheduling.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace amrvis {

class ThreadPool {
 public:
  /// Spins up `threads` persistent workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool used by the kPool parallel backend. Sized by
  /// AMRVIS_POOL_THREADS when set, else std::thread::hardware_concurrency.
  /// Created on first use, joined at process exit.
  static ThreadPool& global();

  /// True when the calling thread is a worker of ANY ThreadPool. The
  /// parallel helpers use this to route nested loops back into the pool
  /// regardless of the configured backend — the composition guarantee.
  static bool on_worker_thread();

  /// Worker count (callers additionally participate in their own jobs).
  [[nodiscard]] int size() const {
    return static_cast<int>(workers_.size());
  }

  /// Execute chunk(0) .. chunk(nchunks-1), each exactly once, across the
  /// workers AND the calling thread; returns after all chunks completed.
  /// First exception wins and is rethrown here; remaining chunks are
  /// skipped best effort. Safe to call concurrently from many threads and
  /// recursively from inside a chunk.
  void run(std::int64_t nchunks,
           const std::function<void(std::int64_t)>& chunk);

  /// Fire-and-forget task on some worker (the async service front end).
  /// The task must not throw; exceptions must be routed through the
  /// caller's own channel (e.g. a std::promise).
  void post(std::function<void()> task);

  /// Chunks stolen from another worker's deque (instrumentation).
  [[nodiscard]] std::uint64_t steals() const;
  /// Tasks executed by pool workers (instrumentation; caller-executed
  /// chunks of run() are not pool tasks and are not counted).
  [[nodiscard]] std::uint64_t tasks_executed() const;

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> q;
  };

  void worker_main(std::size_t self);
  bool try_run_one(std::size_t self);
  void enqueue(std::size_t slot, std::function<void()> task);

  std::vector<std::unique_ptr<Queue>> queues_;  ///< one per worker
  Queue injection_;                             ///< external post() tasks
  std::vector<std::thread> workers_;

  std::mutex sleep_mu_;                 ///< guards pending_ and stop_
  std::condition_variable sleep_cv_;
  std::int64_t pending_ = 0;            ///< queued, not yet popped tasks
  bool stop_ = false;

  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::size_t> rr_{0};      ///< round-robin enqueue cursor
};

}  // namespace amrvis
