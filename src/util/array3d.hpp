#pragma once
// Lightweight 3-D array views and owning arrays with (i fastest) C-order
// layout index = (k*ny + j)*nx + i, matching the x-fastest layout AMReX
// uses for a single FAB. All compressors and visualization kernels operate
// on these views so the memory layout assumption lives here.

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace amrvis {

/// Shape of a 3-D array. 2-D data uses nz == 1; 1-D uses ny == nz == 1.
struct Shape3 {
  std::int64_t nx = 0;
  std::int64_t ny = 0;
  std::int64_t nz = 0;

  [[nodiscard]] std::int64_t size() const { return nx * ny * nz; }
  [[nodiscard]] bool valid() const { return nx > 0 && ny > 0 && nz > 0; }
  /// Number of dimensions with extent > 1 (minimum 1).
  [[nodiscard]] int rank() const {
    int r = 0;
    if (nx > 1) ++r;
    if (ny > 1) ++r;
    if (nz > 1) ++r;
    return r == 0 ? 1 : r;
  }
  friend bool operator==(const Shape3&, const Shape3&) = default;
};

/// Non-owning mutable 3-D view.
template <typename T>
class View3 {
 public:
  View3() = default;
  View3(T* data, Shape3 shape) : data_(data), shape_(shape) {
    AMRVIS_REQUIRE(shape.valid());
  }
  View3(std::span<T> data, Shape3 shape) : View3(data.data(), shape) {
    AMRVIS_REQUIRE(static_cast<std::int64_t>(data.size()) >= shape.size());
  }
  /// View3<T> converts implicitly to View3<const T>.
  template <typename U = T,
            typename = std::enable_if_t<std::is_const_v<U>>>
  View3(View3<std::remove_const_t<T>> other)  // NOLINT(google-explicit-constructor)
      : data_(other.data()), shape_(other.shape()) {}

  [[nodiscard]] const Shape3& shape() const { return shape_; }
  [[nodiscard]] std::int64_t size() const { return shape_.size(); }
  [[nodiscard]] T* data() const { return data_; }
  [[nodiscard]] std::span<T> span() const {
    return {data_, static_cast<std::size_t>(size())};
  }

  [[nodiscard]] std::int64_t index(std::int64_t i, std::int64_t j,
                                   std::int64_t k) const {
    AMRVIS_ASSERT(i >= 0 && i < shape_.nx);
    AMRVIS_ASSERT(j >= 0 && j < shape_.ny);
    AMRVIS_ASSERT(k >= 0 && k < shape_.nz);
    return (k * shape_.ny + j) * shape_.nx + i;
  }

  T& operator()(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return data_[index(i, j, k)];
  }
  T& operator[](std::int64_t flat) const { return data_[flat]; }

 private:
  T* data_ = nullptr;
  Shape3 shape_{};
};

/// Owning 3-D array.
template <typename T>
class Array3 {
 public:
  Array3() = default;
  explicit Array3(Shape3 shape, T fill = T{})
      : shape_(shape), data_(static_cast<std::size_t>(shape.size()), fill) {
    AMRVIS_REQUIRE(shape.valid());
  }

  [[nodiscard]] const Shape3& shape() const { return shape_; }
  [[nodiscard]] std::int64_t size() const { return shape_.size(); }
  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  [[nodiscard]] std::span<T> span() { return data_; }
  [[nodiscard]] std::span<const T> span() const { return data_; }

  [[nodiscard]] View3<T> view() { return {data_.data(), shape_}; }
  [[nodiscard]] View3<const T> view() const { return {data_.data(), shape_}; }

  T& operator()(std::int64_t i, std::int64_t j, std::int64_t k) {
    return data_[static_cast<std::size_t>(view().index(i, j, k))];
  }
  const T& operator()(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return data_[static_cast<std::size_t>(view().index(i, j, k))];
  }
  T& operator[](std::int64_t flat) {
    return data_[static_cast<std::size_t>(flat)];
  }
  const T& operator[](std::int64_t flat) const {
    return data_[static_cast<std::size_t>(flat)];
  }

 private:
  Shape3 shape_{};
  std::vector<T> data_;
};

}  // namespace amrvis
