#include "util/fft.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace amrvis {

void fft_1d(Complex* data, std::int64_t n, bool inverse) {
  AMRVIS_REQUIRE_MSG(is_pow2(n), "fft_1d: size must be a power of two");
  // Bit-reversal permutation.
  for (std::int64_t i = 1, j = 0; i < n; ++i) {
    std::int64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Danielson–Lanczos butterflies.
  for (std::int64_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::int64_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::int64_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (std::int64_t i = 0; i < n; ++i) data[i] *= scale;
  }
}

void fft_3d(Array3<Complex>& data, bool inverse) {
  const Shape3 s = data.shape();
  AMRVIS_REQUIRE_MSG(is_pow2(s.nx) && is_pow2(s.ny) && is_pow2(s.nz),
                     "fft_3d: extents must be powers of two");
  Complex* d = data.data();

  // Transform along x: contiguous rows.
  parallel_for(s.ny * s.nz, [&](std::int64_t row) {
    fft_1d(d + row * s.nx, s.nx, inverse);
  });

  // Transform along y: gather strided columns per (k, i).
  parallel_for(s.nz * s.nx, [&](std::int64_t idx) {
    const std::int64_t k = idx / s.nx;
    const std::int64_t i = idx % s.nx;
    std::vector<Complex> tmp(static_cast<std::size_t>(s.ny));
    for (std::int64_t j = 0; j < s.ny; ++j)
      tmp[static_cast<std::size_t>(j)] = d[(k * s.ny + j) * s.nx + i];
    fft_1d(tmp.data(), s.ny, inverse);
    for (std::int64_t j = 0; j < s.ny; ++j)
      d[(k * s.ny + j) * s.nx + i] = tmp[static_cast<std::size_t>(j)];
  });

  // Transform along z.
  parallel_for(s.ny * s.nx, [&](std::int64_t idx) {
    const std::int64_t j = idx / s.nx;
    const std::int64_t i = idx % s.nx;
    std::vector<Complex> tmp(static_cast<std::size_t>(s.nz));
    for (std::int64_t k = 0; k < s.nz; ++k)
      tmp[static_cast<std::size_t>(k)] = d[(k * s.ny + j) * s.nx + i];
    fft_1d(tmp.data(), s.nz, inverse);
    for (std::int64_t k = 0; k < s.nz; ++k)
      d[(k * s.ny + j) * s.nx + i] = tmp[static_cast<std::size_t>(k)];
  });
}

}  // namespace amrvis
