#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

#include "obs/metrics.hpp"
#include "util/fault.hpp"

namespace amrvis {

namespace {

/// Set for the lifetime of a worker thread; queried by on_worker_thread()
/// so nested parallel loops auto-route into the pool.
thread_local bool tl_is_pool_worker = false;

int clamp_threads(int threads) { return threads < 1 ? 1 : threads; }

int default_pool_threads() {
  if (const char* env = std::getenv("AMRVIS_POOL_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Shared state of one run() call. Chunks are claimed by an atomic ticket
/// counter; a claimed ticket is executed immediately by the claiming
/// thread, so a blocked thread only ever waits on chunks that are
/// actively executing — nested waits terminate by induction on depth.
struct RunJob {
  std::int64_t n = 0;
  const std::function<void(std::int64_t)>* chunk = nullptr;
  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> completed{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first;  ///< written once by the failed_ CAS winner
  std::mutex mu;
  std::condition_variable done;
};

/// Claim and execute tickets until none remain. The completed counter's
/// release increments order the first-exception write (same iteration)
/// before the caller's acquire load in the done-wait.
void participate(const std::shared_ptr<RunJob>& job) {
  for (;;) {
    const std::int64_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->n) return;
    if (!job->failed.load(std::memory_order_relaxed)) {
      try {
        // Inside the try: an injected pool-task fault rides the existing
        // first-exception capture, exactly like a throwing chunk.
        AMRVIS_FAULT_POINT(::amrvis::fault::Site::kPoolTask);
        (*job->chunk)(i);
      } catch (...) {
        bool expected = false;
        if (job->failed.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel))
          job->first = std::current_exception();
      }
    }
    if (job->completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->n) {
      std::lock_guard<std::mutex> lk(job->mu);
      job->done.notify_all();
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int n = clamp_threads(threads);
  queues_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back(
        [this, i] { worker_main(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_pool_threads());
  return pool;
}

bool ThreadPool::on_worker_thread() { return tl_is_pool_worker; }

void ThreadPool::enqueue(std::size_t slot, std::function<void()> task) {
  Queue& q = slot < queues_.size() ? *queues_[slot] : injection_;
  {
    std::lock_guard<std::mutex> lk(q.mu);
    q.q.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    ++pending_;
    static auto& depth = obs::gauge("pool.queue_depth");
    depth.set(static_cast<std::int64_t>(pending_));
  }
  sleep_cv_.notify_one();
}

void ThreadPool::post(std::function<void()> task) {
  enqueue(queues_.size(), std::move(task));  // injection queue
}

void ThreadPool::run(std::int64_t nchunks,
                     const std::function<void(std::int64_t)>& chunk) {
  if (nchunks <= 0) return;
  if (nchunks == 1) {
    // No sharing possible; skip the job machinery (and its allocation).
    chunk(0);
    return;
  }
  auto job = std::make_shared<RunJob>();
  job->n = nchunks;
  job->chunk = &chunk;
  // One participation task per worker (capped by the chunk count): each
  // claims tickets until the job is drained. The caller participates too,
  // so completion never depends on a free worker. Tasks that arrive after
  // the job drained claim no ticket and drop their (shared) reference —
  // job->chunk is only dereferenced under a valid ticket, which the
  // caller's completion wait keeps alive.
  const std::int64_t helpers =
      std::min<std::int64_t>(size(), nchunks - 1);
  for (std::int64_t h = 0; h < helpers; ++h)
    enqueue(rr_.fetch_add(1, std::memory_order_relaxed) % queues_.size(),
            [job] { participate(job); });
  participate(job);
  {
    std::unique_lock<std::mutex> lk(job->mu);
    job->done.wait(lk, [&] {
      return job->completed.load(std::memory_order_acquire) == job->n;
    });
  }
  if (job->failed.load(std::memory_order_acquire) && job->first)
    std::rethrow_exception(job->first);
}

bool ThreadPool::try_run_one(std::size_t self) {
  std::function<void()> task;
  // Own deque first (LIFO: cache-warm, most recently posted), then the
  // injection queue, then steal the OLDEST task of a sibling (FIFO keeps
  // stolen work coarse).
  auto pop_back = [&](Queue& q) {
    std::lock_guard<std::mutex> lk(q.mu);
    if (q.q.empty()) return false;
    task = std::move(q.q.back());
    q.q.pop_back();
    return true;
  };
  auto pop_front = [&](Queue& q) {
    std::lock_guard<std::mutex> lk(q.mu);
    if (q.q.empty()) return false;
    task = std::move(q.q.front());
    q.q.pop_front();
    return true;
  };
  bool stolen = false;
  bool got = pop_back(*queues_[self]) || pop_front(injection_);
  if (!got) {
    for (std::size_t off = 1; off < queues_.size() && !got; ++off) {
      const std::size_t victim = (self + off) % queues_.size();
      got = pop_front(*queues_[victim]);
      stolen = got;
    }
  }
  if (!got) return false;
  {
    std::lock_guard<std::mutex> lk(sleep_mu_);
    --pending_;
    static auto& depth = obs::gauge("pool.queue_depth");
    depth.set(static_cast<std::int64_t>(pending_));
  }
  if (stolen) {
    steals_.fetch_add(1, std::memory_order_relaxed);
    static auto& steals = obs::counter("pool.steals");
    steals.add();
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  static auto& tasks = obs::counter("pool.tasks");
  tasks.add();
  task();
  return true;
}

void ThreadPool::worker_main(std::size_t self) {
  tl_is_pool_worker = true;
  for (;;) {
    if (try_run_one(self)) continue;
    std::unique_lock<std::mutex> lk(sleep_mu_);
    if (stop_) return;
    sleep_cv_.wait(lk, [&] { return stop_ || pending_ > 0; });
    if (stop_) return;
  }
}

std::uint64_t ThreadPool::steals() const {
  return steals_.load(std::memory_order_relaxed);
}

std::uint64_t ThreadPool::tasks_executed() const {
  return executed_.load(std::memory_order_relaxed);
}

}  // namespace amrvis
