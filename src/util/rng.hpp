#pragma once
// Deterministic, seedable RNG (xoshiro256**). All synthetic data in amrvis
// is generated through this so every experiment is reproducible bit-for-bit
// across runs and thread counts (generation is sharded deterministically).

#include <cmath>
#include <cstdint>

namespace amrvis {

/// xoshiro256** by Blackman & Vigna (public domain algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal via Box–Muller (cached second value not kept:
  /// simplicity beats the factor-of-two here).
  double normal() {
    double u1 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace amrvis
