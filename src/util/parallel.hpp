#pragma once
// OpenMP-backed parallel loop helpers.
//
// All hot loops in amrvis go through parallel_for / parallel_reduce so the
// parallelization policy lives in one place. Loops must be data-parallel:
// the body may not touch shared mutable state other than its own output
// slot. Determinism: iteration->result mapping is fixed, so outputs are
// bitwise reproducible regardless of thread count (reductions over doubles
// are done per-thread then combined in index order).

#include <cstdint>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace amrvis {

/// Number of threads the parallel helpers will use.
inline int hardware_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Parallel loop over [0, n). `body(i)` must be independent across i.
template <typename Body>
void parallel_for(std::int64_t n, const Body& body) {
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t i = 0; i < n; ++i) body(i);
}

/// Parallel loop with a grain size: chunks of `grain` consecutive indices
/// are dispatched together (useful when per-index work is tiny).
template <typename Body>
void parallel_for_chunked(std::int64_t n, std::int64_t grain,
                          const Body& body) {
  const std::int64_t chunks = (n + grain - 1) / grain;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = c * grain;
    const std::int64_t hi = (lo + grain < n) ? lo + grain : n;
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  }
}

/// Deterministic parallel reduction: per-thread partials combined in thread
/// order. `init` is the identity; `map(i)` produces a value; `combine(a,b)`
/// folds. Result is independent of scheduling because static scheduling
/// fixes the index->thread mapping.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::int64_t n, T init, const Map& map,
                  const Combine& combine) {
#ifdef _OPENMP
  const int nt = omp_get_max_threads();
  if (nt <= 1 || n <= 1) {
    // Thread-count=1 edge case: skip the parallel region entirely so a
    // single-thread OpenMP build folds in exactly the same order (and with
    // the same number of `combine(init, ...)` applications) as the
    // serial-fallback build below.
    T result = init;
    for (std::int64_t i = 0; i < n; ++i) result = combine(result, map(i));
    return result;
  }
  std::vector<T> partial(static_cast<std::size_t>(nt), init);
#pragma omp parallel num_threads(nt)
  {
    const int tid = omp_get_thread_num();
    T local = init;
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i) local = combine(local, map(i));
    partial[static_cast<std::size_t>(tid)] = local;
  }
  T result = init;
  for (const T& p : partial) result = combine(result, p);
  return result;
#else
  T result = init;
  for (std::int64_t i = 0; i < n; ++i) result = combine(result, map(i));
  return result;
#endif
}

}  // namespace amrvis
