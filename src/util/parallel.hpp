#pragma once
// OpenMP-backed parallel loop helpers.
//
// All hot loops in amrvis go through parallel_for / parallel_reduce so the
// parallelization policy lives in one place. Loops must be data-parallel:
// the body may not touch shared mutable state other than its own output
// slot. Determinism: iteration->result mapping is fixed, so outputs are
// bitwise reproducible regardless of thread count (reductions over doubles
// are done per-thread then combined in index order).
//
// Exception safety: an exception escaping an OpenMP worker thread is
// std::terminate, so every body invocation runs under a guard that captures
// the first exception thrown anywhere in the region; remaining iterations
// are skipped (best effort) and the captured exception is rethrown on the
// calling thread after the region joins. Callers therefore see the original
// exception exactly as they would from a serial loop.

#include <atomic>
#include <cstdint>
#include <exception>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace amrvis {

/// Number of threads the parallel helpers will use.
inline int hardware_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

#ifdef _OPENMP
namespace detail {

/// Captures the first exception thrown inside an OpenMP region so it can be
/// rethrown on the calling thread after the join. The CAS on `failed_`
/// elects a single writer for `first_`; the implicit barrier at the end of
/// the parallel region orders that write before rethrow() on the caller.
class ParallelExceptionGuard {
 public:
  template <typename Fn>
  void run(const Fn& fn) noexcept {
    if (failed_.load(std::memory_order_relaxed)) return;  // skip remaining work
    try {
      fn();
    } catch (...) {
      bool expected = false;
      if (failed_.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel))
        first_ = std::current_exception();
    }
  }

  void rethrow() const {
    if (first_) std::rethrow_exception(first_);
  }

 private:
  std::atomic<bool> failed_{false};
  std::exception_ptr first_;
};

}  // namespace detail
#endif

/// Parallel loop over [0, n). `body(i)` must be independent across i.
/// An exception thrown by any body propagates to the caller (the first one
/// thrown wins; later iterations are skipped best-effort).
template <typename Body>
void parallel_for(std::int64_t n, const Body& body) {
#ifdef _OPENMP
  if (n <= 1) {
    // Skip the parallel region entirely: besides avoiding fork/join
    // overhead, this keeps a nested parallel_for (e.g. the chunked codec
    // called on a single oversized patch) from landing inside an active
    // region where nested parallelism is disabled.
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  detail::ParallelExceptionGuard guard;
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i)
    guard.run([&] { body(i); });
  guard.rethrow();
#else
  for (std::int64_t i = 0; i < n; ++i) body(i);
#endif
}

/// Parallel loop with a grain size: chunks of `grain` consecutive indices
/// are dispatched together (useful when per-index work is tiny). Same
/// exception contract as parallel_for, at chunk granularity.
template <typename Body>
void parallel_for_chunked(std::int64_t n, std::int64_t grain,
                          const Body& body) {
  const std::int64_t chunks = (n + grain - 1) / grain;
#ifdef _OPENMP
  if (chunks <= 1) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  detail::ParallelExceptionGuard guard;
#pragma omp parallel for schedule(static)
  for (std::int64_t c = 0; c < chunks; ++c) {
    guard.run([&] {
      const std::int64_t lo = c * grain;
      const std::int64_t hi = (lo + grain < n) ? lo + grain : n;
      for (std::int64_t i = lo; i < hi; ++i) body(i);
    });
  }
  guard.rethrow();
#else
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = c * grain;
    const std::int64_t hi = (lo + grain < n) ? lo + grain : n;
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  }
#endif
}

/// Deterministic parallel reduction: per-thread partials combined in thread
/// order. `init` is the identity; `map(i)` produces a value; `combine(a,b)`
/// folds. Result is independent of scheduling because static scheduling
/// fixes the index->thread mapping. Exceptions from map/combine propagate
/// to the caller like parallel_for's.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::int64_t n, T init, const Map& map,
                  const Combine& combine) {
#ifdef _OPENMP
  const int nt = omp_get_max_threads();
  if (nt <= 1 || n <= 1) {
    // Thread-count=1 edge case: skip the parallel region entirely so a
    // single-thread OpenMP build folds in exactly the same order (and with
    // the same number of `combine(init, ...)` applications) as the
    // serial-fallback build below.
    T result = init;
    for (std::int64_t i = 0; i < n; ++i) result = combine(result, map(i));
    return result;
  }
  detail::ParallelExceptionGuard guard;
  std::vector<T> partial(static_cast<std::size_t>(nt), init);
#pragma omp parallel num_threads(nt)
  {
    const int tid = omp_get_thread_num();
    T local = init;
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i)
      guard.run([&] { local = combine(local, map(i)); });
    partial[static_cast<std::size_t>(tid)] = local;
  }
  guard.rethrow();
  T result = init;
  for (const T& p : partial) result = combine(result, p);
  return result;
#else
  T result = init;
  for (std::int64_t i = 0; i < n; ++i) result = combine(result, map(i));
  return result;
#endif
}

}  // namespace amrvis
