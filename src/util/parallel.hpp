#pragma once
// Parallel loop helpers with a pluggable execution backend.
//
// All hot loops in amrvis go through parallel_for / parallel_reduce so the
// parallelization policy lives in one place. Loops must be data-parallel:
// the body may not touch shared mutable state other than its own output
// slot. Determinism: iteration->result mapping is fixed, so outputs are
// bitwise reproducible regardless of thread count or backend (reductions
// over doubles are done per-partition then combined in partition order).
//
// Backends:
//  - kOpenMP  the historical `#pragma omp parallel for schedule(static)`
//             path (serial when built without OpenMP). One fork/join team
//             per loop, owned by the calling thread.
//  - kPool    the persistent work-stealing pool (util/thread_pool.hpp).
//             Nested and CONCURRENT loops compose: every caller shares
//             one fixed worker set instead of forking its own team, so N
//             query clients cannot oversubscribe the machine N-fold.
//             Compiled in when AMRVIS_HAVE_THREAD_POOL is defined (CMake
//             option AMRVIS_ENABLE_THREAD_POOL, default ON).
//  - kSerial  plain loops (debugging / reference).
//
// The process default is kOpenMP (matching every prior release); it can
// be switched globally with set_parallel_backend() or per-thread with
// ScopedParallelBackend (the query service runs its requests under a
// scoped kPool so concurrent clients share the pool). Regardless of the
// configured backend, a loop issued FROM a pool worker thread always
// routes back into the pool: an OpenMP region inside a pool task would
// fork a fresh team per task — exactly the oversubscription the pool
// exists to prevent.
//
// Exception safety: an exception escaping an OpenMP worker thread is
// std::terminate, so every body invocation runs under a guard that captures
// the first exception thrown anywhere in the region; remaining iterations
// are skipped (best effort) and the captured exception is rethrown on the
// calling thread after the region joins. The pool backend honors the same
// contract (ThreadPool::run captures/rethrows identically). Callers
// therefore see the original exception exactly as they would from a
// serial loop.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#ifdef AMRVIS_HAVE_THREAD_POOL
#include "util/thread_pool.hpp"
#endif

namespace amrvis {

/// Number of threads the parallel helpers will use.
inline int hardware_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

enum class ParallelBackend {
  kOpenMP,  ///< per-loop OpenMP team (serial without OpenMP)
  kPool,    ///< shared persistent pool (OpenMP path if not compiled in)
  kSerial,  ///< plain loops
};

namespace detail {

inline std::atomic<ParallelBackend>& backend_state() {
  static std::atomic<ParallelBackend> backend{ParallelBackend::kOpenMP};
  return backend;
}

/// Per-thread override; -1 = none. An int (not optional<enum>) so the
/// thread_local stays trivially destructible.
inline int& backend_override() {
  thread_local int override_ = -1;
  return override_;
}

}  // namespace detail

/// Process-wide default backend (kOpenMP unless reconfigured).
inline ParallelBackend parallel_backend() {
  return detail::backend_state().load(std::memory_order_relaxed);
}

inline void set_parallel_backend(ParallelBackend b) {
  detail::backend_state().store(b, std::memory_order_relaxed);
}

/// Backend the CURRENT thread's next parallel_* call will dispatch to:
/// thread-local override first, then pool-worker auto-routing, then the
/// process default.
inline ParallelBackend effective_parallel_backend() {
  if (detail::backend_override() >= 0)
    return static_cast<ParallelBackend>(detail::backend_override());
#ifdef AMRVIS_HAVE_THREAD_POOL
  if (ThreadPool::on_worker_thread()) return ParallelBackend::kPool;
#endif
  return parallel_backend();
}

/// RAII thread-local backend override — scopes a backend to one call
/// tree without touching the process default (the query service wraps
/// each request in ScopedParallelBackend(kPool)).
class ScopedParallelBackend {
 public:
  explicit ScopedParallelBackend(ParallelBackend b)
      : saved_(detail::backend_override()) {
    detail::backend_override() = static_cast<int>(b);
  }
  ~ScopedParallelBackend() { detail::backend_override() = saved_; }
  ScopedParallelBackend(const ScopedParallelBackend&) = delete;
  ScopedParallelBackend& operator=(const ScopedParallelBackend&) = delete;

 private:
  int saved_;
};

#ifdef _OPENMP
namespace detail {

/// Captures the first exception thrown inside an OpenMP region so it can be
/// rethrown on the calling thread after the join. The CAS on `failed_`
/// elects a single writer for `first_`; the implicit barrier at the end of
/// the parallel region orders that write before rethrow() on the caller.
class ParallelExceptionGuard {
 public:
  template <typename Fn>
  void run(const Fn& fn) noexcept {
    if (failed_.load(std::memory_order_relaxed)) return;  // skip remaining work
    try {
      fn();
    } catch (...) {
      bool expected = false;
      if (failed_.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel))
        first_ = std::current_exception();
    }
  }

  void rethrow() const {
    if (first_) std::rethrow_exception(first_);
  }

 private:
  std::atomic<bool> failed_{false};
  std::exception_ptr first_;
};

}  // namespace detail
#endif

#ifdef AMRVIS_HAVE_THREAD_POOL
namespace detail {

/// Pool width + 1: the caller participates alongside the workers, so the
/// natural partition count mirrors an OpenMP team of that many threads.
inline std::int64_t pool_partitions() {
  return static_cast<std::int64_t>(ThreadPool::global().size()) + 1;
}

/// Dispatch [0, n) to the pool in contiguous chunks of `grain` indices.
/// ThreadPool::run provides the first-exception capture/rethrow.
template <typename Body>
void pool_for_grained(std::int64_t n, std::int64_t grain, const Body& body) {
  const std::int64_t chunks = (n + grain - 1) / grain;
  const std::function<void(std::int64_t)> chunk_fn = [&](std::int64_t c) {
    const std::int64_t lo = c * grain;
    const std::int64_t hi = (lo + grain < n) ? lo + grain : n;
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  };
  ThreadPool::global().run(chunks, chunk_fn);
}

/// Grain for a bare parallel_for: ~4 chunks per participant gives the
/// stealing some slack without shredding cache locality.
inline std::int64_t pool_auto_grain(std::int64_t n) {
  const std::int64_t target = 4 * pool_partitions();
  const std::int64_t grain = (n + target - 1) / target;
  return grain < 1 ? 1 : grain;
}

}  // namespace detail
#endif

/// Parallel loop over [0, n). `body(i)` must be independent across i.
/// An exception thrown by any body propagates to the caller (the first one
/// thrown wins; later iterations are skipped best-effort).
template <typename Body>
void parallel_for(std::int64_t n, const Body& body) {
  if (n <= 1) {
    // Skip any parallel machinery entirely: besides avoiding fork/join
    // overhead, this keeps a nested parallel_for (e.g. the chunked codec
    // called on a single oversized patch) from landing inside an active
    // OpenMP region where nested parallelism is disabled.
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  const ParallelBackend be = effective_parallel_backend();
  if (be == ParallelBackend::kSerial) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
#ifdef AMRVIS_HAVE_THREAD_POOL
  if (be == ParallelBackend::kPool) {
    detail::pool_for_grained(n, detail::pool_auto_grain(n), body);
    return;
  }
#endif
#ifdef _OPENMP
  detail::ParallelExceptionGuard guard;
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i)
    guard.run([&] { body(i); });
  guard.rethrow();
#else
  for (std::int64_t i = 0; i < n; ++i) body(i);
#endif
}

/// Parallel loop with a grain size: chunks of `grain` consecutive indices
/// are dispatched together (useful when per-index work is tiny). Same
/// exception contract as parallel_for, at chunk granularity.
template <typename Body>
void parallel_for_chunked(std::int64_t n, std::int64_t grain,
                          const Body& body) {
  const std::int64_t chunks = (n + grain - 1) / grain;
  if (chunks <= 1) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  const ParallelBackend be = effective_parallel_backend();
  if (be == ParallelBackend::kSerial) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
#ifdef AMRVIS_HAVE_THREAD_POOL
  if (be == ParallelBackend::kPool) {
    detail::pool_for_grained(n, grain, body);
    return;
  }
#endif
#ifdef _OPENMP
  detail::ParallelExceptionGuard guard;
#pragma omp parallel for schedule(static)
  for (std::int64_t c = 0; c < chunks; ++c) {
    guard.run([&] {
      const std::int64_t lo = c * grain;
      const std::int64_t hi = (lo + grain < n) ? lo + grain : n;
      for (std::int64_t i = lo; i < hi; ++i) body(i);
    });
  }
  guard.rethrow();
#else
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = c * grain;
    const std::int64_t hi = (lo + grain < n) ? lo + grain : n;
    for (std::int64_t i = lo; i < hi; ++i) body(i);
  }
#endif
}

/// Deterministic parallel reduction: per-partition partials combined in
/// partition order. `init` is the identity; `map(i)` produces a value;
/// `combine(a,b)` folds. Result is independent of scheduling because the
/// index->partition mapping is fixed (OpenMP: static schedule per-thread;
/// pool: contiguous blocks in block order). Exceptions from map/combine
/// propagate to the caller like parallel_for's.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::int64_t n, T init, const Map& map,
                  const Combine& combine) {
  auto serial = [&] {
    T result = init;
    for (std::int64_t i = 0; i < n; ++i) result = combine(result, map(i));
    return result;
  };
  if (n <= 1) return serial();
  const ParallelBackend be = effective_parallel_backend();
  if (be == ParallelBackend::kSerial) return serial();
#ifdef AMRVIS_HAVE_THREAD_POOL
  if (be == ParallelBackend::kPool) {
    const std::int64_t nb = std::min(n, detail::pool_partitions());
    if (nb <= 1) return serial();
    const std::int64_t len = (n + nb - 1) / nb;
    std::vector<T> partial(static_cast<std::size_t>(nb), init);
    const std::function<void(std::int64_t)> block = [&](std::int64_t b) {
      const std::int64_t lo = b * len;
      const std::int64_t hi = (lo + len < n) ? lo + len : n;
      T local = init;
      for (std::int64_t i = lo; i < hi; ++i) local = combine(local, map(i));
      partial[static_cast<std::size_t>(b)] = local;
    };
    ThreadPool::global().run(nb, block);
    T result = init;
    for (const T& p : partial) result = combine(result, p);
    return result;
  }
#endif
#ifdef _OPENMP
  const int nt = omp_get_max_threads();
  if (nt <= 1) {
    // Thread-count=1 edge case: skip the parallel region entirely so a
    // single-thread OpenMP build folds in exactly the same order (and with
    // the same number of `combine(init, ...)` applications) as the
    // serial-fallback build below.
    return serial();
  }
  detail::ParallelExceptionGuard guard;
  std::vector<T> partial(static_cast<std::size_t>(nt), init);
#pragma omp parallel num_threads(nt)
  {
    const int tid = omp_get_thread_num();
    T local = init;
#pragma omp for schedule(static)
    for (std::int64_t i = 0; i < n; ++i)
      guard.run([&] { local = combine(local, map(i)); });
    partial[static_cast<std::size_t>(tid)] = local;
  }
  guard.rethrow();
  T result = init;
  for (const T& p : partial) result = combine(result, p);
  return result;
#else
  return serial();
#endif
}

}  // namespace amrvis
