#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <utility>

#include "obs/metrics.hpp"  // obs::detail::thread_index()

namespace amrvis {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;
LogSink g_sink;  // empty = default stderr sink; guarded by g_mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

std::string format_log_line(LogLevel level, const std::string& msg) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &secs);
#else
  gmtime_r(&secs, &tm);
#endif
  char head[96];
  std::snprintf(head, sizeof(head),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ [amrvis %s t%d] ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms),
                level_name(level), obs::detail::thread_index());
  return std::string(head) + msg;
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const std::string line = format_log_line(level, msg);
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(level, line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace amrvis
