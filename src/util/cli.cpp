#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace amrvis {

void Cli::add_flag(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  flags_[name] = Flag{default_value, help};
}

bool Cli::parse(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "amrvis";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    AMRVIS_REQUIRE_MSG(arg.rfind("--", 0) == 0, "expected --flag, got " + arg);
    arg = arg.substr(2);
    if (arg == "help") {
      std::printf("usage: %s [flags]\n", program_.c_str());
      for (const auto& [name, flag] : flags_)
        std::printf("  --%-24s %s (default: %s)\n", name.c_str(),
                    flag.help.c_str(), flag.value.c_str());
      return false;
    }
    // Initialized to the boolean-flag value up front: assigning a literal
    // after the substr calls trips GCC 12's -Wrestrict false positive
    // (PR105329) under -Werror.
    std::string value = "1";
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    auto it = flags_.find(arg);
    AMRVIS_REQUIRE_MSG(it != flags_.end(), "unknown flag: --" + arg);
    it->second.value = value;
  }
  return true;
}

std::string Cli::get(const std::string& name) const {
  auto it = flags_.find(name);
  AMRVIS_REQUIRE_MSG(it != flags_.end(), "undeclared flag: " + name);
  return it->second.value;
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace amrvis
