#pragma once
// Small statistics helpers over spans of doubles.

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "util/error.hpp"

namespace amrvis {

struct MinMax {
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  [[nodiscard]] double range() const { return max - min; }
};

inline MinMax min_max(std::span<const double> xs) {
  AMRVIS_REQUIRE(!xs.empty());
  MinMax mm;
  for (double x : xs) {
    mm.min = std::min(mm.min, x);
    mm.max = std::max(mm.max, x);
  }
  return mm;
}

inline double mean(std::span<const double> xs) {
  AMRVIS_REQUIRE(!xs.empty());
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double variance(std::span<const double> xs) {
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

/// Maximum absolute pointwise difference between two equal-length spans.
inline double max_abs_diff(std::span<const double> a,
                           std::span<const double> b) {
  AMRVIS_REQUIRE(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace amrvis
