#pragma once
// Deterministic fault injection for robustness testing.
//
// A FaultPlan is a list of rules, each bound to an instrumented site and
// firing on an op-counter schedule — no wall clock, no global RNG state —
// so a given plan produces the same fault sequence on every run. Plans are
// installed programmatically (FaultScope in tests) or from the
// AMRVIS_FAULT_SPEC environment variable at first use.
//
// Spec grammar (parse errors throw Error{kBadFaultSpec}):
//
//   spec  := rule (';' rule)*
//   rule  := site ':' kind (':' key '=' value (',' key '=' value)*)?
//   site  := tiledecode | headerparse | cacheinsert | pooltask
//   kind  := throw | flip | delay
//   keys  := start  first op index that can fire (default 0)
//            every  fire on every Nth op from start (default 1)
//            count  maximum number of fires (default unlimited)
//            ms     delay duration for kind=delay (default 1)
//            seed   bit-position seed for kind=flip (default 0)
//
// Example: "tiledecode:throw:start=4,every=7,count=3;pooltask:delay:ms=2"
//
// Hooks are zero-cost when disabled: AMRVIS_FAULT_POINT compiles to one
// relaxed atomic load and a predictable branch. kind=throw raises
// Error{kFaultInjected} (classified transient — the retry layer's target);
// kind=delay sleeps to widen race windows under TSan; kind=flip corrupts
// one deterministically chosen bit of the payload offered at a decode site
// (sites that carry no payload count the fire but corrupt nothing).

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/bytestream.hpp"

namespace amrvis::fault {

enum class Site : int {
  kTileDecode = 0,  ///< decoding one compressed tile payload
  kHeaderParse,     ///< parsing a chunked container header
  kCacheInsert,     ///< publishing a decoded tile into the TileCache
  kPoolTask,        ///< running one chunk of a ThreadPool job
};
inline constexpr int kSiteCount = 4;

/// Spec-grammar name of a site ("tiledecode", ...).
const char* site_name(Site site);

enum class Kind { kThrow, kBitFlip, kDelay };

struct Rule {
  Site site = Site::kTileDecode;
  Kind kind = Kind::kThrow;
  std::uint64_t start = 0;   ///< first op index (per site) that can fire
  std::uint64_t every = 1;   ///< fire on every Nth op from start
  std::int64_t count = -1;   ///< max fires; -1 = unlimited
  std::uint64_t ms = 1;      ///< delay duration (kind=delay)
  std::uint64_t seed = 0;    ///< bit-position seed (kind=flip)
};

struct FaultPlan {
  std::vector<Rule> rules;

  /// Parse the AMRVIS_FAULT_SPEC grammar; throws Error{kBadFaultSpec}.
  static FaultPlan parse(const std::string& spec);
};

/// One relaxed atomic load; false unless a plan is installed.
bool enabled();

/// Install a plan (resets all op/injection counters) / remove it.
void install(const FaultPlan& plan);
void uninstall();

/// Ops evaluated / faults fired at a site since the last install().
std::uint64_t ops(Site site);
std::uint64_t injected(Site site);

/// Evaluate one op at `site` against the installed plan. May throw
/// Error{kFaultInjected} or sleep. When a flip rule fires and `payload` is
/// non-empty, returns a copy with one deterministic bit flipped; returns
/// nullopt otherwise. Callers without a payload use AMRVIS_FAULT_POINT.
std::optional<Bytes> on_op(Site site,
                           std::span<const std::uint8_t> payload = {});

/// RAII plan installation for tests: installs on construction (from a plan
/// or a spec string), uninstalls on destruction.
class FaultScope {
 public:
  explicit FaultScope(const FaultPlan& plan) { install(plan); }
  explicit FaultScope(const std::string& spec) {
    install(FaultPlan::parse(spec));
  }
  ~FaultScope() { uninstall(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

}  // namespace amrvis::fault

/// Hook for sites that carry no payload; zero-cost when disabled.
#define AMRVIS_FAULT_POINT(site_)                                          \
  do {                                                                     \
    if (::amrvis::fault::enabled()) (void)::amrvis::fault::on_op(site_);   \
  } while (0)
