#pragma once
// The paper's two evaluation datasets (Table 1), reproduced synthetically:
//
//   Runs    #Levels  Grid size (coarse->fine)           Density
//   WarpX   2        128x128x1024, 256x256x2048         91.4%, 8.6%
//   Nyx     2        256^3, 512^3                       59.3%, 40.7%
//
// `full` builds the paper-scale grids; the default is a 1/4-scale version
// with identical aspect ratio, level structure and per-level densities
// (the tagging threshold is calibrated by quantile to the target fine
// coverage). Iso values are chosen per application the way the paper's
// figures frame them: a high-density quantile for Nyx halos, a mid-range
// field amplitude for the WarpX pulse.

#include <string>

#include "sim/tagging.hpp"

namespace amrvis::core {

struct DatasetSpec {
  std::string name;          ///< "nyx" or "warpx"
  std::string field;         ///< paper field name ("Density", "Ez")
  Shape3 fine_shape{};
  double fine_fraction = 0;  ///< target fine-level coverage (Table 1)
  sim::RefineCriterion criterion{};
  std::uint64_t seed = 42;
  double iso_quantile = 0;   ///< iso value as a quantile of the truth field
  /// When > 0, overrides the quantile: iso = fraction * max value. Used
  /// for signed fields whose interesting surfaces sit at an absolute
  /// amplitude (the WarpX wavefronts) rather than a quantile.
  double iso_fraction_of_max = 0;
  /// When > 0, the quantile of the dataset's *localized-structure*
  /// surface — for Nyx the halo surface (the compact high-density peaks
  /// sim::nyx_like_density injects; the structures isosurface studies
  /// key on). `iso_quantile` stays the interface-crossing study value
  /// (halo outskirts); this one is what the streamed-iso/decode-
  /// avoidance studies contour. 0 means the dataset has no separate
  /// localized surface (WarpX: the wavefront already is one).
  double iso_quantile_halo = 0;
};

/// Nyx-like: clumpy lognormal density, 40.7% refined, value tagging.
DatasetSpec nyx_spec(bool full_scale = false, std::uint64_t seed = 42);

/// WarpX-like: smooth pulse "Ez", 8.6% refined, |value| tagging.
DatasetSpec warpx_spec(bool full_scale = false, std::uint64_t seed = 42);

/// Spec by name ("nyx"/"warpx"); throws on unknown names.
DatasetSpec dataset_spec(const std::string& name, bool full_scale = false,
                         std::uint64_t seed = 42);

/// Smoke-test variant: halves each fine-grid dimension (floor 16 cells)
/// while keeping the level structure, densities and tagging behavior, so
/// heavyweight benches finish in seconds under `ctest -L bench_smoke`.
DatasetSpec smoke_spec(DatasetSpec spec);

/// Generate the truth field and build the two-level hierarchy.
sim::SyntheticDataset make_dataset(const DatasetSpec& spec);

/// Uniform (no-hierarchy) truth field by dataset name, for the
/// throughput/streaming bench surface: "warpx" is the smooth anisotropic
/// Ez pulse, "nyx" the clumpy Nyx-like baryon density — the two value
/// distributions whose cache behaviour brackets the paper's workloads.
/// Throws on unknown names.
Array3<double> uniform_truth_field(const std::string& name, Shape3 shape,
                                   std::uint64_t seed = 42);

/// Iso value for `spec` given its truth field (quantile-based).
double pick_iso_value(const DatasetSpec& spec,
                      const Array3<double>& truth);

/// Iso value of the dataset's localized-structure surface (for Nyx the
/// halo surface, `iso_quantile_halo`); falls back to pick_iso_value
/// when the spec defines none.
double pick_halo_iso_value(const DatasetSpec& spec,
                           const Array3<double>& truth);

/// Axis to project renders along: the shortest domain axis (maximizes
/// visible surface for elongated domains).
int render_axis(const DatasetSpec& spec);

}  // namespace amrvis::core
