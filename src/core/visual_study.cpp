#include "core/visual_study.hpp"

#include <cmath>

#include "metrics/quality.hpp"
#include "util/error.hpp"

namespace amrvis::core {

using render::Image;
using render::OrthoCamera;
using vis::TriMesh;
using vis::Vec3;

namespace {

Vec3 domain_hi_world(const amr::AmrHierarchy& hier) {
  const auto shape = hier.level(hier.num_levels() - 1).domain.shape();
  return {static_cast<double>(shape.nx), static_cast<double>(shape.ny),
          static_cast<double>(shape.nz)};
}

/// SSIM between two renders, as a 2-D volume.
double image_ssim(const Image& a, const Image& b) {
  AMRVIS_REQUIRE(a.width == b.width && a.height == b.height);
  const Shape3 s{a.width, a.height, 1};
  const View3<const double> va(a.gray.data(), s);
  const View3<const double> vb(b.gray.data(), s);
  metrics::SsimOptions opt;
  opt.window = 11;  // image-typical window
  return metrics::ssim(va, vb, opt);
}

}  // namespace

VisualStudyResult run_visual_study(const sim::SyntheticDataset& original,
                                   const amr::AmrHierarchy& decompressed,
                                   double iso, vis::VisMethod method,
                                   const VisualStudyOptions& options) {
  VisualStudyResult result;
  result.method = method;

  const TriMesh mesh_orig =
      vis::amr_isosurface(original.hierarchy, iso, method);
  const TriMesh mesh_dec = vis::amr_isosurface(decompressed, iso, method);
  result.original_triangles = mesh_orig.num_triangles();
  result.decompressed_triangles = mesh_dec.num_triangles();
  result.original_area = mesh_orig.area();
  result.decompressed_area = mesh_dec.area();

  const Vec3 lo{0, 0, 0};
  const Vec3 hi = domain_hi_world(original.hierarchy);
  result.original_cracks = vis::measure_cracks(mesh_orig, lo, hi);
  result.decompressed_cracks = vis::measure_cracks(mesh_dec, lo, hi);

  const OrthoCamera camera = OrthoCamera::fit(lo, hi, options.axis);
  // Keep pixels square-ish for elongated domains by scaling the height to
  // the window aspect.
  const double aspect =
      (camera.v1 - camera.v0) / (camera.u1 - camera.u0);
  const int width = options.image_size;
  const int height = std::max(
      16, static_cast<int>(std::lround(options.image_size * aspect)));
  const Image img_orig = render::render_mesh(mesh_orig, camera, width, height);
  const Image img_dec = render::render_mesh(mesh_dec, camera, width, height);
  result.image_ssim = image_ssim(img_orig, img_dec);

  if (!options.dump_prefix.empty()) {
    render::write_pgm(img_orig, options.dump_prefix + "_original.pgm");
    render::write_pgm(img_dec, options.dump_prefix + "_decompressed.pgm");
    render::write_level_colored_ppm(mesh_dec, camera, width, height,
                                    options.dump_prefix + "_levels.ppm");
  }
  return result;
}

VisualStudyResult run_original_visual_census(
    const sim::SyntheticDataset& original, double iso, vis::VisMethod method,
    const VisualStudyOptions& options) {
  VisualStudyResult result;
  result.method = method;
  const TriMesh mesh = vis::amr_isosurface(original.hierarchy, iso, method);
  result.original_triangles = result.decompressed_triangles =
      mesh.num_triangles();
  result.original_area = result.decompressed_area = mesh.area();
  const Vec3 lo{0, 0, 0};
  const Vec3 hi = domain_hi_world(original.hierarchy);
  result.original_cracks = result.decompressed_cracks =
      vis::measure_cracks(mesh, lo, hi);
  result.image_ssim = 1.0;
  if (!options.dump_prefix.empty()) {
    const OrthoCamera camera = OrthoCamera::fit(lo, hi, options.axis);
    const double aspect = (camera.v1 - camera.v0) / (camera.u1 - camera.u0);
    const int width = options.image_size;
    const int height = std::max(
        16, static_cast<int>(std::lround(options.image_size * aspect)));
    render::write_level_colored_ppm(mesh, camera, width, height,
                                    options.dump_prefix + "_levels.ppm");
  }
  return result;
}

}  // namespace amrvis::core
