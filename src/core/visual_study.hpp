#pragma once
// Visual-impact study: the harness behind Figs. 1 and 9-11.
//
// For a given visualization method it extracts the iso-surface of the
// original hierarchy and of a decompressed hierarchy, renders both with
// the same orthographic camera, and reports:
//  - image R-SSIM between the two renders (the paper's per-figure metric),
//  - crack/gap census on each mesh (Fig. 1's cracks and gaps, quantified),
//  - surface-area deviation,
//  - a block-artifact score on the render of the decompressed data
//    (energy of one-pixel jumps aligned with the SZ-L/R block grid).

#include <optional>
#include <string>

#include "core/datasets.hpp"
#include "render/render.hpp"
#include "vis/amr_iso.hpp"
#include "vis/crack.hpp"

namespace amrvis::core {

struct VisualStudyOptions {
  int image_size = 384;       ///< square render resolution
  int axis = 0;               ///< projection axis
  std::string dump_prefix;    ///< when set, write PGM/PPM/OBJ artifacts
};

struct VisualStudyResult {
  vis::VisMethod method{};
  double image_ssim = 1.0;
  [[nodiscard]] double image_rssim() const { return 1.0 - image_ssim; }
  vis::CrackStats original_cracks;
  vis::CrackStats decompressed_cracks;
  double original_area = 0.0;
  double decompressed_area = 0.0;
  [[nodiscard]] double area_deviation() const {
    return original_area > 0
               ? std::abs(decompressed_area - original_area) / original_area
               : 0.0;
  }
  std::size_t original_triangles = 0;
  std::size_t decompressed_triangles = 0;
};

/// Compare `decompressed` against the dataset's own hierarchy under one
/// visualization method at iso value `iso`.
VisualStudyResult run_visual_study(const sim::SyntheticDataset& original,
                                   const amr::AmrHierarchy& decompressed,
                                   double iso, vis::VisMethod method,
                                   const VisualStudyOptions& options);

/// Crack census of the *original* data under one method (Fig. 1 harness).
VisualStudyResult run_original_visual_census(
    const sim::SyntheticDataset& original, double iso, vis::VisMethod method,
    const VisualStudyOptions& options);

}  // namespace amrvis::core
