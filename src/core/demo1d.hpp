#pragma once
// The paper's Fig. 14 explanation, made executable: on 1-D data with
// block-constant compression artifacts, re-sampling's interpolation
// partially cancels the block steps while the dual-cell method preserves
// them verbatim. We quantify "artifact energy" as the mean squared
// difference from the original at matched sample locations.

#include <vector>

namespace amrvis::core {

struct Demo1dResult {
  std::vector<double> original;          ///< cell-centered truth
  std::vector<double> decompressed;      ///< block-artifact reconstruction
  std::vector<double> dual_cell;         ///< dual-cell samples (verbatim)
  std::vector<double> resampled;         ///< vertex-centered (interpolated)
  double dual_artifact_energy = 0.0;     ///< MSE of dual samples vs truth
  double resampled_artifact_energy = 0.0;///< MSE of re-sampled vs truth
};

/// Build the Fig.-14 setup: a linear ramp 0..n-1 compressed with an
/// SZ-L/R-style block-constant approximation of width `block`.
Demo1dResult run_demo1d(int n = 9, int block = 3);

/// Same demo but driven by the real SZ-L/R codec at a large error bound
/// (blocks arise from the codec itself rather than being synthesized).
Demo1dResult run_demo1d_real_codec(int n = 96, double rel_eb = 0.1);

}  // namespace amrvis::core
