#include "core/study.hpp"

#include "util/timer.hpp"

namespace amrvis::core {

using compress::AmrCompressed;
using compress::Compressor;
using compress::RedundantHandling;

StudyRow run_compression_study(const sim::SyntheticDataset& dataset,
                               const Compressor& comp, double rel_eb,
                               RedundantHandling handling,
                               amr::AmrHierarchy* decompressed_out) {
  StudyRow row;
  row.compressor = comp.name();
  row.rel_eb = rel_eb;

  Timer timer;
  const AmrCompressed compressed =
      compress::compress_hierarchy(dataset.hierarchy, comp, rel_eb, handling);
  row.compress_seconds = timer.seconds();

  timer.reset();
  amr::AmrHierarchy decompressed =
      compress::decompress_hierarchy(compressed, comp);
  row.decompress_seconds = timer.seconds();

  row.ratio = compressed.ratio();

  const Array3<double> original = dataset.hierarchy.composite_uniform();
  const Array3<double> reconstructed = decompressed.composite_uniform();
  row.psnr_db = metrics::psnr(original.span(), reconstructed.span());
  row.ssim_value = metrics::ssim(original.view(), reconstructed.view());

  if (decompressed_out != nullptr) *decompressed_out = std::move(decompressed);
  return row;
}

std::vector<metrics::RdPoint> rate_distortion_sweep(
    const sim::SyntheticDataset& dataset, const Compressor& comp,
    const std::vector<double>& rel_ebs, RedundantHandling handling) {
  std::vector<metrics::RdPoint> points;
  points.reserve(rel_ebs.size());
  for (double eb : rel_ebs) {
    const StudyRow row = run_compression_study(dataset, comp, eb, handling);
    metrics::RdPoint p;
    p.rel_eb = eb;
    p.ratio = row.ratio;
    p.psnr_db = row.psnr_db;
    p.ssim_value = row.ssim_value;
    points.push_back(p);
  }
  return points;
}

}  // namespace amrvis::core
