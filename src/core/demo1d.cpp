#include "core/demo1d.hpp"

#include <cmath>

#include "compress/szlr.hpp"
#include "util/array3d.hpp"

namespace amrvis::core {

namespace {

/// Interior vertex samples: v_i = (c_{i-1} + c_i) / 2 — the 1-D analogue
/// of cell->vertex re-sampling. Evaluated at cell interfaces.
std::vector<double> resample_1d(const std::vector<double>& cells) {
  std::vector<double> verts(cells.size() + 1);
  verts.front() = cells.front();
  verts.back() = cells.back();
  for (std::size_t i = 1; i < cells.size(); ++i)
    verts[i] = 0.5 * (cells[i - 1] + cells[i]);
  return verts;
}

/// Truth evaluated at the same vertex locations for a fair comparison:
/// the ramp is linear, so the exact interface value is the midpoint.
std::vector<double> truth_at_vertices(const std::vector<double>& cells) {
  return resample_1d(cells);  // exact for piecewise-linear truth
}

Demo1dResult finish(std::vector<double> original,
                    std::vector<double> decompressed) {
  Demo1dResult r;
  r.original = std::move(original);
  r.decompressed = std::move(decompressed);
  // Dual-cell: original sample positions, decompressed values verbatim.
  r.dual_cell = r.decompressed;
  // Re-sampling: interpolated to vertices.
  r.resampled = resample_1d(r.decompressed);
  const std::vector<double> vertex_truth = truth_at_vertices(r.original);

  double dual = 0.0;
  for (std::size_t i = 0; i < r.original.size(); ++i) {
    const double d = r.dual_cell[i] - r.original[i];
    dual += d * d;
  }
  r.dual_artifact_energy = dual / static_cast<double>(r.original.size());

  double res = 0.0;
  for (std::size_t i = 0; i < vertex_truth.size(); ++i) {
    const double d = r.resampled[i] - vertex_truth[i];
    res += d * d;
  }
  r.resampled_artifact_energy =
      res / static_cast<double>(vertex_truth.size());
  return r;
}

}  // namespace

Demo1dResult run_demo1d(int n, int block) {
  std::vector<double> original(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) original[static_cast<std::size_t>(i)] = i;
  // Block-constant artifact: every block collapses to its first value
  // (the paper's "111//444//777" example).
  std::vector<double> decompressed(original.size());
  for (int i = 0; i < n; ++i)
    decompressed[static_cast<std::size_t>(i)] =
        original[static_cast<std::size_t>((i / block) * block)];
  return finish(std::move(original), std::move(decompressed));
}

Demo1dResult run_demo1d_real_codec(int n, double rel_eb) {
  std::vector<double> original(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    original[static_cast<std::size_t>(i)] =
        static_cast<double>(i) +
        0.35 * std::sin(0.8 * static_cast<double>(i));
  const Shape3 shape{n, 1, 1};
  const View3<const double> view(original.data(), shape);
  const compress::SzLrCompressor codec;
  const double abs_eb = rel_eb * static_cast<double>(n - 1);
  const auto blob = codec.compress(view, abs_eb);
  const Array3<double> back = codec.decompress(blob);
  std::vector<double> decompressed(back.span().begin(), back.span().end());
  return finish(std::move(original), std::move(decompressed));
}

}  // namespace amrvis::core
