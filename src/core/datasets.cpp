#include "core/datasets.hpp"

#include <algorithm>

#include "sim/fields.hpp"
#include "util/error.hpp"

namespace amrvis::core {

DatasetSpec nyx_spec(bool full_scale, std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = "nyx";
  spec.field = "Density";
  spec.fine_shape = full_scale ? Shape3{512, 512, 512} : Shape3{128, 128, 128};
  spec.fine_fraction = 0.407;
  spec.criterion = sim::RefineCriterion::kMaxValue;
  spec.seed = seed;
  spec.iso_quantile = 0.88;  // halo outskirts: crosses level interfaces
  // The halo surface proper: encloses the injected density peaks and the
  // densest filaments, the localized structure the streamed-iso /
  // decode-avoidance studies contour (at 0.88 the lognormal background
  // still straddles nearly every tile; at 0.995 it does not).
  spec.iso_quantile_halo = 0.995;
  return spec;
}

DatasetSpec warpx_spec(bool full_scale, std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = "warpx";
  spec.field = "Ez";
  spec.fine_shape =
      full_scale ? Shape3{256, 256, 2048} : Shape3{64, 64, 512};
  spec.fine_fraction = 0.086;
  spec.criterion = sim::RefineCriterion::kMaxAbsValue;
  spec.seed = seed;
  // Wavefront amplitude low enough that the surface spans the pulse (fine
  // level) and the trailing wake (coarse level), crossing the interface.
  spec.iso_fraction_of_max = 0.06;
  return spec;
}

DatasetSpec dataset_spec(const std::string& name, bool full_scale,
                         std::uint64_t seed) {
  if (name == "nyx") return nyx_spec(full_scale, seed);
  if (name == "warpx") return warpx_spec(full_scale, seed);
  throw Error("unknown dataset: " + name + " (expected nyx or warpx)");
}

DatasetSpec smoke_spec(DatasetSpec spec) {
  auto half = [](std::int64_t n) { return std::max<std::int64_t>(16, n / 2); };
  spec.fine_shape = {half(spec.fine_shape.nx), half(spec.fine_shape.ny),
                     half(spec.fine_shape.nz)};
  return spec;
}

sim::SyntheticDataset make_dataset(const DatasetSpec& spec) {
  Array3<double> truth;
  if (spec.name == "nyx") {
    sim::NyxLikeSpec field_spec;
    field_spec.seed = spec.seed;
    truth = sim::nyx_like_density(spec.fine_shape, field_spec);
  } else if (spec.name == "warpx") {
    sim::WarpXLikeSpec field_spec;
    field_spec.seed = spec.seed;
    truth = sim::warpx_like_ez(spec.fine_shape, field_spec);
  } else {
    throw Error("unknown dataset: " + spec.name);
  }
  sim::TaggingSpec tagging;
  tagging.criterion = spec.criterion;
  tagging.fine_fraction = spec.fine_fraction;
  // Granularity scales with resolution so patch counts stay realistic.
  tagging.block = std::max<std::int64_t>(4, spec.fine_shape.nx / 16);
  tagging.buffer_blocks = 1;
  tagging.max_grid_size = 64;
  return sim::build_two_level_hierarchy(std::move(truth), tagging);
}

Array3<double> uniform_truth_field(const std::string& name, Shape3 shape,
                                   std::uint64_t seed) {
  if (name == "nyx") {
    sim::NyxLikeSpec spec;
    spec.seed = seed;
    return sim::nyx_like_density(shape, spec);
  }
  if (name == "warpx") {
    sim::WarpXLikeSpec spec;
    spec.seed = seed;
    return sim::warpx_like_ez(shape, spec);
  }
  throw Error("unknown dataset: " + name + " (expected nyx or warpx)");
}

namespace {

double value_quantile(const Array3<double>& truth, double quantile) {
  std::vector<double> sorted(truth.span().begin(), truth.span().end());
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      std::clamp(quantile * static_cast<double>(sorted.size()), 0.0,
                 static_cast<double>(sorted.size() - 1)));
  return sorted[idx];
}

}  // namespace

double pick_iso_value(const DatasetSpec& spec, const Array3<double>& truth) {
  if (spec.iso_fraction_of_max > 0) {
    double max_v = truth[0];
    for (std::int64_t i = 0; i < truth.size(); ++i)
      max_v = std::max(max_v, truth[i]);
    return spec.iso_fraction_of_max * max_v;
  }
  return value_quantile(truth, spec.iso_quantile);
}

double pick_halo_iso_value(const DatasetSpec& spec,
                           const Array3<double>& truth) {
  if (spec.iso_quantile_halo <= 0) return pick_iso_value(spec, truth);
  return value_quantile(truth, spec.iso_quantile_halo);
}

int render_axis(const DatasetSpec& spec) {
  const Shape3& s = spec.fine_shape;
  if (s.nx <= s.ny && s.nx <= s.nz) return 0;
  if (s.ny <= s.nx && s.ny <= s.nz) return 1;
  return 2;
}

}  // namespace amrvis::core
