#pragma once
// Quantitative compression study: the harness behind Table 2 and the
// rate-distortion curves (Figs. 12-13).
//
// For one (dataset, compressor, relative error bound) it compresses the
// hierarchy per level, decompresses, flattens both hierarchies to the
// finest uniform grid (omitting redundant coarse data, paper Fig. 3), and
// reports CR / PSNR / SSIM / R-SSIM on that composite — the
// uniform-resolution data a post-analysis consumer would see.

#include <vector>

#include "compress/amr_compress.hpp"
#include "metrics/quality.hpp"
#include "sim/tagging.hpp"

namespace amrvis::core {

struct StudyRow {
  std::string compressor;
  double rel_eb = 0.0;
  double ratio = 0.0;
  double psnr_db = 0.0;
  double ssim_value = 0.0;
  [[nodiscard]] double rssim() const { return 1.0 - ssim_value; }
  double compress_seconds = 0.0;
  double decompress_seconds = 0.0;
};

/// Run one cell of Table 2. The decompressed hierarchy is returned through
/// `decompressed_out` when non-null so visual studies can reuse it.
StudyRow run_compression_study(
    const sim::SyntheticDataset& dataset, const compress::Compressor& comp,
    double rel_eb,
    compress::RedundantHandling handling =
        compress::RedundantHandling::kMeanFill,
    amr::AmrHierarchy* decompressed_out = nullptr);

/// Sweep relative error bounds into a rate-distortion curve (one line of
/// Fig. 12/13).
std::vector<metrics::RdPoint> rate_distortion_sweep(
    const sim::SyntheticDataset& dataset, const compress::Compressor& comp,
    const std::vector<double>& rel_ebs,
    compress::RedundantHandling handling =
        compress::RedundantHandling::kMeanFill);

}  // namespace amrvis::core
