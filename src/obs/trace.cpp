#include "obs/trace.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // detail::thread_index()

namespace amrvis::obs {

namespace detail {

std::atomic<int> g_trace_state{0};

namespace {

struct Event {
  const char* name;
  std::int64_t ts_us;
  std::int64_t dur_us;
  int tid;
  SpanArg a;
  SpanArg b;
  bool async;  // backdated interval; cat "amrvis.async", nesting-exempt
};

// All mutable trace state lives behind one mutex in a leaked singleton so
// emits racing a disarm (or static destruction) stay well-defined.
struct TraceState {
  std::mutex mu;
  std::FILE* file = nullptr;
  std::vector<Event> ring;
  std::size_t capacity = 0;
  bool wrote_event = false;  // need a comma before the next one?
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked on purpose
  return *s;
}

void append_quoted(std::string& out, const char* s) {
  out += '"';
  for (; *s; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

// Serialize + write the buffered events. Caller holds st.mu.
void flush_locked(TraceState& st) {
  if (!st.file || st.ring.empty()) return;
  std::string out;
  out.reserve(st.ring.size() * 96);
  for (const Event& e : st.ring) {
    if (st.wrote_event) out += ",\n";
    st.wrote_event = true;
    out += "{\"name\":";
    append_quoted(out, e.name);
    out += e.async ? ",\"ph\":\"X\",\"cat\":\"amrvis.async\",\"pid\":1,\"tid\":"
                   : ",\"ph\":\"X\",\"cat\":\"amrvis\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    out += std::to_string(e.ts_us);
    out += ",\"dur\":";
    out += std::to_string(e.dur_us);
    if (e.a.key || e.b.key) {
      out += ",\"args\":{";
      bool first = true;
      for (const SpanArg* arg : {&e.a, &e.b}) {
        if (!arg->key) continue;
        if (!first) out += ',';
        first = false;
        append_quoted(out, arg->key);
        out += ':';
        out += std::to_string(arg->value);
      }
      out += '}';
    }
    out += '}';
  }
  std::fwrite(out.data(), 1, out.size(), st.file);
  st.ring.clear();
}

void disarm_at_exit() { trace_disarm(); }

}  // namespace

std::int64_t trace_now_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void trace_emit(const char* name, std::int64_t ts_us, std::int64_t dur_us,
                SpanArg a, SpanArg b, bool async) noexcept {
  TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  // Re-check under the lock: a disarm may have closed the file between the
  // caller's armed check and here; dropping the event is the safe outcome.
  if (!st.file) return;
  st.ring.push_back(Event{name, ts_us, dur_us, thread_index(), a, b, async});
  if (st.ring.size() >= st.capacity) flush_locked(st);
}

bool trace_check_env_and_arm() {
  // Resolve the tri-state exactly once even under races: the loser of the
  // exchange just reads the winner's decision.
  static std::mutex env_mu;
  std::lock_guard<std::mutex> lock(env_mu);
  int s = g_trace_state.load(std::memory_order_relaxed);
  if (s != 0) return s == 2;
  const char* path = std::getenv("AMRVIS_TRACE");
  if (path && *path) {
    trace_arm(path);
    return true;
  }
  g_trace_state.store(1, std::memory_order_relaxed);
  return false;
}

}  // namespace detail

void trace_arm(const char* path, std::size_t ring_capacity) {
  using detail::state;
  trace_disarm();  // close any previous file first
  detail::TraceState& st = state();
  std::lock_guard<std::mutex> lock(st.mu);
  st.file = std::fopen(path, "w");
  if (!st.file) {
    detail::g_trace_state.store(1, std::memory_order_relaxed);
    return;
  }
  std::fputs("[\n", st.file);
  st.wrote_event = false;
  st.capacity = ring_capacity ? ring_capacity : 1;
  st.ring.clear();
  st.ring.reserve(st.capacity);
  static const bool hook = [] {
    std::atexit(detail::disarm_at_exit);
    return true;
  }();
  (void)hook;
  detail::g_trace_state.store(2, std::memory_order_relaxed);
}

void trace_flush() {
  detail::TraceState& st = detail::state();
  std::lock_guard<std::mutex> lock(st.mu);
  detail::flush_locked(st);
  if (st.file) std::fflush(st.file);
}

void trace_disarm() {
  // Disarm first so new spans stop starting, then drain under the lock.
  detail::TraceState& st = detail::state();
  std::lock_guard<std::mutex> lock(st.mu);
  if (detail::g_trace_state.load(std::memory_order_relaxed) == 2)
    detail::g_trace_state.store(1, std::memory_order_relaxed);
  if (!st.file) return;
  detail::flush_locked(st);
  std::fputs("\n]\n", st.file);
  std::fclose(st.file);
  st.file = nullptr;
  st.ring.clear();
  st.ring.shrink_to_fit();
}

}  // namespace amrvis::obs
