#pragma once
// Scoped trace spans emitting Chrome trace-event JSON (Perfetto-loadable).
//
// Usage:
//   OBS_SPAN("tile.decode", {"container", cid}, {"tile", t});
//   ... scope body ...
// On scope exit (including unwind) one complete "X" event is recorded with
// the span's name, start timestamp (µs), duration, thread id, and up to two
// integer args. Complete events are used instead of B/E pairs so a trace is
// well-formed even if tracing is disarmed mid-run: a span that started
// before disarm simply drops its event, never leaving an unmatched "B".
//
// Arming (mirrors util/fault.hpp): tracing is DISARMED by default and the
// hot-path cost is exactly one relaxed atomic load and a predictable branch
// — no clock reads, no allocations. It arms either programmatically via
// trace_arm(path) or from AMRVIS_TRACE=<path> checked once at first use.
// Armed spans push events into a fixed-capacity in-memory ring that is
// flushed to the file when full, on trace_flush(), and at trace_disarm()/
// process exit. The output file is one JSON array of event objects, valid
// for chrome://tracing and ui.perfetto.dev.
//
// Events are pushed under one mutex, so within a thread id the file order
// equals program order — tools/check_trace.py relies on this to validate
// span nesting without timestamp tie-breaking.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace amrvis::obs {

/// One optional integer annotation on a span. `key` must be a string
/// literal (or otherwise outlive the span); it is not copied until emit.
struct SpanArg {
  const char* key = nullptr;
  std::int64_t value = 0;
};

namespace detail {
// 0 = unknown (check AMRVIS_TRACE once), 1 = disarmed, 2 = armed.
extern std::atomic<int> g_trace_state;
bool trace_check_env_and_arm();  // resolves state 0; returns armed?
void trace_emit(const char* name, std::int64_t ts_us, std::int64_t dur_us,
                SpanArg a, SpanArg b, bool async = false) noexcept;
std::int64_t trace_now_us() noexcept;
}  // namespace detail

/// True when spans are being recorded. Steady state: one relaxed load.
inline bool trace_armed() noexcept {
  int s = detail::g_trace_state.load(std::memory_order_relaxed);
  if (s == 0) return detail::trace_check_env_and_arm();
  return s == 2;
}

/// Start recording spans to `path` (truncates). `ring_capacity` bounds the
/// in-memory event buffer; the ring flushes to the file when full.
void trace_arm(const char* path, std::size_t ring_capacity = 4096);

/// Flush buffered events to the trace file without disarming.
void trace_flush();

/// Stop recording: final flush, close the JSON array, close the file.
/// Safe to call when already disarmed. Also runs at process exit.
void trace_disarm();

/// Timestamp on the span clock (steady, microseconds) — for callers that
/// measured an interval themselves and emit it via trace_emit_span.
inline std::int64_t trace_clock_us() noexcept { return detail::trace_now_us(); }

/// Record one already-measured interval as a complete span (no RAII).
/// Drops silently when disarmed.
inline void trace_emit_span(const char* name, std::int64_t ts_us,
                            std::int64_t dur_us, SpanArg a = {},
                            SpanArg b = {}) noexcept {
  if (trace_armed()) detail::trace_emit(name, ts_us, dur_us, a, b);
}

/// Like trace_emit_span, but for BACKDATED intervals that did not happen
/// inside a scope on the emitting thread (e.g. how long a request sat in a
/// queue before this thread picked it up). Emitted with category
/// "amrvis.async" so tools/check_trace.py exempts it from the per-thread
/// scope-nesting invariant — a backdated interval legitimately overlaps
/// whatever scopes the emitting thread was inside during it.
inline void trace_emit_async_span(const char* name, std::int64_t ts_us,
                                  std::int64_t dur_us, SpanArg a = {},
                                  SpanArg b = {}) noexcept {
  if (trace_armed()) detail::trace_emit(name, ts_us, dur_us, a, b, true);
}

/// RAII span. Constructing when disarmed costs one relaxed load; the
/// destructor re-checks so spans straddling a disarm are dropped whole.
class SpanScope {
 public:
  explicit SpanScope(const char* name, SpanArg a = {}, SpanArg b = {}) noexcept
      : name_(name), a_(a), b_(b) {
    if (trace_armed()) start_us_ = detail::trace_now_us();
  }
  ~SpanScope() {
    if (start_us_ >= 0 && trace_armed())
      detail::trace_emit(name_, start_us_, detail::trace_now_us() - start_us_,
                         a_, b_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_;
  SpanArg a_, b_;
  std::int64_t start_us_ = -1;
};

}  // namespace amrvis::obs

#define AMRVIS_OBS_CONCAT2(a, b) a##b
#define AMRVIS_OBS_CONCAT(a, b) AMRVIS_OBS_CONCAT2(a, b)

/// OBS_SPAN("name") / OBS_SPAN("name", {"k", v}) /
/// OBS_SPAN("name", {"k1", v1}, {"k2", v2})
#define OBS_SPAN(...)                                      \
  ::amrvis::obs::SpanScope AMRVIS_OBS_CONCAT(obs_span_at_, \
                                             __LINE__) {   \
    __VA_ARGS__                                            \
  }
