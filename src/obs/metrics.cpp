#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>

namespace amrvis::obs {

namespace detail {

int thread_index() noexcept {
  static std::atomic<int> next{0};
  thread_local int idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  // Defensive: bounds must be strictly ascending for bucket search.
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  stride_ = bounds_.size() + 1;  // + overflow bucket
  counts_ = std::vector<detail::PaddedU64>(stride_ * detail::kShards);
}

Histogram::~Histogram() = default;

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.v.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

void Histogram::observe(double x) noexcept {
  std::size_t b =
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin();
  // lower_bound gives first bound >= x, i.e. the bucket with
  // bounds[b-1] < x <= bounds[b]; b == bounds_.size() is overflow.
  std::size_t shard =
      static_cast<std::size_t>(detail::thread_index() % detail::kShards);
  counts_[shard * stride_ + b].v.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + x,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : counts_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> merged(stride_, 0);
  for (int s = 0; s < detail::kShards; ++s)
    for (std::size_t b = 0; b < stride_; ++b)
      merged[b] += counts_[static_cast<std::size_t>(s) * stride_ + b].v.load(
          std::memory_order_relaxed);
  return merged;
}

Histogram::QuantileBucket Histogram::quantile_bucket(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<std::uint64_t> merged = bucket_counts();
  std::uint64_t n = 0;
  for (std::uint64_t c : merged) n += c;
  QuantileBucket out;
  if (n == 0) {
    out.lo = 0.0;
    out.hi = bounds_.empty() ? 0.0 : bounds_.front();
    out.index = 0;
    return out;
  }
  // Same rank convention as a sorted-sample percentile with
  // idx = floor(q*(n-1)+0.5): the rank-idx observation (0-based) is the
  // one whose bucket we report.
  std::uint64_t rank = static_cast<std::uint64_t>(
      q * static_cast<double>(n - 1) + 0.5);
  if (rank >= n) rank = n - 1;
  std::uint64_t seen = 0;
  std::size_t b = 0;
  for (; b < merged.size(); ++b) {
    seen += merged[b];
    if (seen > rank) break;
  }
  if (b >= merged.size()) b = merged.size() - 1;
  out.index = b;
  out.lo = (b == 0) ? -std::numeric_limits<double>::infinity()
                    : bounds_[b - 1];
  out.hi = (b < bounds_.size()) ? bounds_[b]
                                : std::numeric_limits<double>::infinity();
  return out;
}

const std::vector<double>& latency_ms_buckets() {
  static const std::vector<double> kBuckets = {
      0.05, 0.1,  0.2,  0.5,   1.0,   2.0,   5.0,    10.0,
      20.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2000.0, 8000.0};
  return kBuckets;
}

const std::vector<double>& size_bytes_buckets() {
  static const std::vector<double> kBuckets = {
      64.0,      256.0,      1024.0,      4096.0,      16384.0,
      65536.0,   262144.0,   1048576.0,   4194304.0,   16777216.0,
      67108864.0, 268435456.0};
  return kBuckets;
}

// ---------------------------------------------------------------------------
// Registry

namespace {

// Registered metrics are interned and intentionally leaked: references
// handed out from counter()/gauge()/histogram() must outlive static
// destruction so atexit dumps and late-destructing singletons (the global
// ThreadPool) can still touch them safely.
struct Registry {
  std::mutex mu;
  std::map<std::string, Counter*> counters;
  std::map<std::string, Gauge*> gauges;
  std::map<std::string, Histogram*> histograms;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked on purpose
  return *r;
}

void dump_metrics_at_exit() {
  const char* path = std::getenv("AMRVIS_METRICS_DUMP");
  if (!path || !*path) return;
  std::FILE* f = std::fopen(path, "w");
  if (!f) return;
  const std::string json = snapshot_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

void ensure_dump_hook() {
  static const bool once = [] {
    std::atexit(dump_metrics_at_exit);
    return true;
  }();
  (void)once;
}

// Shortest-round-trip double formatting that stays valid JSON (no inf/nan
// leaks: callers only feed finite values; histogram edges use bounds).
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Try to shorten: %.17g is always exact but often noisy.
  for (int prec = 1; prec <= 16; ++prec) {
    char trial[64];
    std::snprintf(trial, sizeof(trial), "%.*g", prec, v);
    if (std::strtod(trial, nullptr) == v) {
      out += trial;
      return;
    }
  }
  out += buf;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_dump_hook();
  auto it = r.counters.find(name);
  if (it == r.counters.end())
    it = r.counters.emplace(name, new Counter()).first;
  return *it->second;
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_dump_hook();
  auto it = r.gauges.find(name);
  if (it == r.gauges.end()) it = r.gauges.emplace(name, new Gauge()).first;
  return *it->second;
}

Histogram& histogram(const std::string& name,
                     const std::vector<double>& upper_bounds) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_dump_hook();
  auto it = r.histograms.find(name);
  if (it == r.histograms.end())
    it = r.histograms.emplace(name, new Histogram(upper_bounds)).first;
  return *it->second;
}

Snapshot snapshot() {
  Registry& r = registry();
  Snapshot snap;
  std::lock_guard<std::mutex> lock(r.mu);
  snap.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters)
    snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges)
    snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    Snapshot::HistogramView v;
    v.name = name;
    v.bounds = h->bounds();
    v.counts = h->bucket_counts();
    // Derive count from the same merged vector so count == sum(counts)
    // even while writers race the snapshot.
    v.count = 0;
    for (std::uint64_t c : v.counts) v.count += c;
    v.sum = h->sum();
    snap.histograms.push_back(std::move(v));
  }
  return snap;  // std::map iteration is already name-sorted
}

std::string snapshot_json() {
  const Snapshot snap = snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : snap.counters) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, c.name);
    out += ':';
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : snap.gauges) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, g.name);
    out += ':';
    out += std::to_string(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, h.name);
    out += ":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    append_double(out, h.sum);
    out += ",\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ',';
      append_double(out, h.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(h.counts[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string snapshot_text() {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  for (const auto& c : snap.counters)
    os << "counter   " << c.name << " = " << c.value << "\n";
  for (const auto& g : snap.gauges)
    os << "gauge     " << g.name << " = " << g.value << "\n";
  for (const auto& h : snap.histograms) {
    os << "histogram " << h.name << " count=" << h.count << " sum=" << h.sum
       << "\n";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      os << "           le ";
      if (i < h.bounds.size())
        os << h.bounds[i];
      else
        os << "+inf";
      os << ": " << h.counts[i] << "\n";
    }
  }
  return os.str();
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) {
    (void)name;
    c->reset();
  }
  for (auto& [name, g] : r.gauges) {
    (void)name;
    g->set(0);
  }
  for (auto& [name, h] : r.histograms) {
    (void)name;
    h->reset();
  }
}

}  // namespace amrvis::obs
