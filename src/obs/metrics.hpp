#pragma once
// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms, cheap enough to leave compiled into every hot path.
//
// Design goals (mirrors util/fault.hpp's always-on philosophy):
//   - Updates are lock-free. Counters and histograms spread their hot
//     atomics over cache-line-padded per-thread shards, so eight threads
//     hammering the same counter never contend on one line; a snapshot
//     merges the shards.
//   - Metric objects are interned by name in a mutex-guarded registry and
//     never destroyed (intentionally leaked), so a reference obtained once
//     (`static auto& c = obs::counter("tile.decode");`) stays valid through
//     static destruction — including atexit dump paths.
//   - The snapshot is a stable, name-sorted JSON document
//     (obs::snapshot_json()) plus a human text dump (obs::snapshot_text()).
//   - AMRVIS_METRICS_DUMP=<path> writes the JSON snapshot at process exit.
//
// Histograms use fixed ascending bucket upper bounds fixed at first
// registration; `quantile_bucket(q)` returns the bucket that contains the
// rank-q observation, letting benches cross-check sampled percentiles
// against the registry (equal-within-bucket).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace amrvis::obs {

namespace detail {
// One cache line per shard so concurrent writers from different threads
// do not false-share. 16 shards is plenty for the pool sizes we run.
inline constexpr int kShards = 16;

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

/// Dense per-thread index used to pick a shard (also reused by trace.cpp
/// and log.cpp as a short human-readable thread id).
int thread_index() noexcept;
}  // namespace detail

/// Monotonic counter. add() is a relaxed fetch_add on a per-thread shard.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::thread_index() % detail::kShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  detail::PaddedU64 shards_[detail::kShards];
};

/// Last-write-wins signed gauge with an atomic max helper.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) noexcept {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  /// Raise the gauge to at least v (CAS loop; used for peak trackers).
  void set_max(std::int64_t v) noexcept {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram. Bucket i counts observations x with
/// bounds[i-1] < x <= bounds[i]; one extra overflow bucket catches
/// x > bounds.back(). Bounds are fixed by the first registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);
  ~Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double x) noexcept;

  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Merged per-bucket counts (size bounds().size() + 1; last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;

  struct QuantileBucket {
    double lo = 0.0;       ///< exclusive lower edge (-inf encoded as lowest())
    double hi = 0.0;       ///< inclusive upper edge (+inf for overflow)
    std::size_t index = 0; ///< bucket index
  };
  /// Bucket containing the observation of rank floor(q*(count-1)+0.5)
  /// (the same rank a sorted-sample percentile with that convention picks),
  /// so a sampled percentile provably lies in [lo, hi] of the result.
  QuantileBucket quantile_bucket(double q) const;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  // counts_[shard * stride_ + bucket]
  std::vector<detail::PaddedU64> counts_;
  std::size_t stride_ = 0;
  std::atomic<double> sum_{0.0};
};

/// Preset: latency buckets in milliseconds, 0.05 ms .. ~8 s, ~2x steps.
const std::vector<double>& latency_ms_buckets();
/// Preset: size buckets in bytes, 64 B .. 256 MiB, 4x steps.
const std::vector<double>& size_bytes_buckets();

/// Intern a metric by name. The returned reference is valid forever.
/// For histograms, `upper_bounds` is consulted only on first registration.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name,
                     const std::vector<double>& upper_bounds);

/// Point-in-time merged view of every registered metric, name-sorted.
struct Snapshot {
  struct CounterView {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeView {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramView {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 entries
  };
  std::vector<CounterView> counters;
  std::vector<GaugeView> gauges;
  std::vector<HistogramView> histograms;
};

Snapshot snapshot();

/// Stable JSON encoding of snapshot():
///   {"counters":{name:value,...},
///    "gauges":{name:value,...},
///    "histograms":{name:{"count":N,"sum":S,"bounds":[..],"counts":[..]}}}
/// Keys are name-sorted; numbers use shortest round-trip formatting.
std::string snapshot_json();

/// Human-oriented one-metric-per-line dump of snapshot().
std::string snapshot_text();

/// Zero every registered metric (counters, gauges, histogram buckets).
/// Metric identities survive; only values reset. Test/bench helper — not
/// linearizable against concurrent writers.
void reset();

}  // namespace amrvis::obs
