#pragma once
// Iso-surface extraction from a vertex-centered scalar grid (marching
// cubes family, paper §2.3).
//
// Each hexahedral cell of the vertex grid is split into six tetrahedra
// sharing the main diagonal and each tetrahedron is contoured — identical
// crack behaviour at AMR level interfaces to table-based marching cubes
// (surface vertices lie on cube edges/diagonals; dangling nodes between
// levels still produce discontinuities), watertight within a grid. See
// DESIGN.md §3.4 for why this MC-family variant was chosen.
//
// A 2-D marching-squares contourer is provided for slice figures and
// tests of the depicted 16-case behaviour (paper Fig. 4 right).

#include "util/array3d.hpp"
#include "vis/mesh.hpp"

namespace amrvis::vis {

/// Maps grid index space to world space: world = origin + index * spacing.
struct GridTransform {
  Vec3 origin{0, 0, 0};
  double spacing = 1.0;
};

/// Extract the iso-surface of vertex-centered `values`. `cell_valid`
/// (optional, shape = values shape - 1) restricts extraction to valid
/// cells; pass an empty view to extract everywhere. Triangles are tagged
/// with `level`.
TriMesh extract_isosurface(View3<const double> values, double iso,
                           const GridTransform& transform, int level = 0,
                           View3<const std::uint8_t> cell_valid = {});

/// Slab variant for streaming consumers: identical to extract_isosurface
/// restricted to cube anchors with z in [k_begin, k_end) — the triangles
/// (values, order, level tags) are exactly the corresponding subsequence
/// of a full extraction, so z-windowed callers (vis/amr_iso streamed
/// path) can emit a big mesh slab by slab without ever holding the whole
/// grid. `k_begin`/`k_end` index cube layers (0 .. values.nz - 1).
TriMesh extract_isosurface_slab(View3<const double> values, double iso,
                                const GridTransform& transform, int level,
                                View3<const std::uint8_t> cell_valid,
                                std::int64_t k_begin, std::int64_t k_end);

/// Row-span extraction for brick-sweep consumers (vis/amr_iso brick
/// order): extracts cube anchors with i in [i_begin, i_end), j in
/// [j_begin, j_end), k in [k_begin, k_end) — the triangles are
/// bit-identical to the corresponding subsequence of a full extraction —
/// and records per (k, j) anchor row the triangle span it produced, so a
/// sweep that owns disjoint anchor boxes can re-interleave several
/// bricks' meshes into the exact global (k; j; i) emission order.
/// Vertices are stored 3 per triangle: triangle t owns vertices
/// [3t, 3t + 3) and its indices are {3t, 3t + 1, 3t + 2}.
struct RowSpanMesh {
  TriMesh mesh;
  /// (k - k_begin) * (j_end - j_begin) + (j - j_begin) -> index of the
  /// row's first triangle; one-past-the-end sentinel at the back.
  std::vector<std::size_t> row_begin;
};

RowSpanMesh extract_isosurface_rows(View3<const double> values, double iso,
                                    const GridTransform& transform, int level,
                                    View3<const std::uint8_t> cell_valid,
                                    std::int64_t i_begin, std::int64_t i_end,
                                    std::int64_t j_begin, std::int64_t j_end,
                                    std::int64_t k_begin,
                                    std::int64_t k_end);

struct Segment2D {
  double ax = 0, ay = 0, bx = 0, by = 0;
};

/// 2-D marching squares on vertex-centered values (nz must be 1).
/// Ambiguous saddles are resolved with the cell-average rule.
std::vector<Segment2D> marching_squares(View3<const double> values,
                                        double iso);

}  // namespace amrvis::vis
