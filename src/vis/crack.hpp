#pragma once
// Quantitative crack/gap census at AMR level interfaces — the measurable
// counterpart of the paper's Fig. 1 visual comparison.
//
// A crack or gap manifests as *interior* mesh boundary: edges referenced
// by a single triangle that do not lie on the outer domain faces. For each
// such edge we also measure the distance from its midpoint to the nearest
// triangle produced by a *different* AMR level: re-sampling cracks show
// small-but-nonzero distances, plain dual-cell gaps show ~cell-size
// distances, and dual-cell with switching cells closes them (the coarse
// redundant-data surface passes through the fine boundary).

#include "vis/mesh.hpp"

namespace amrvis::vis {

struct CrackStats {
  std::int64_t interior_boundary_edges = 0;
  double boundary_length = 0.0;  ///< total interior boundary edge length
  double mean_gap = 0.0;         ///< mean midpoint->other-level distance
  double max_gap = 0.0;
  std::int64_t edges_measured = 0;  ///< edges with another level present
};

/// Measure cracks for a (multi-level) iso-surface mesh. `domain_lo` /
/// `domain_hi` are the world-space outer domain corners; boundary edges
/// lying on those faces (within `eps`) are not cracks.
CrackStats measure_cracks(const TriMesh& mesh, Vec3 domain_lo,
                          Vec3 domain_hi, double eps = 1e-6);

/// Exact point-to-triangle distance (Ericson, Real-Time Collision
/// Detection). Exposed for tests.
double point_triangle_distance(Vec3 p, Vec3 a, Vec3 b, Vec3 c);

}  // namespace amrvis::vis
