#include "vis/amr_iso.hpp"

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "vis/isosurface.hpp"
#include "vis/resample.hpp"

namespace amrvis::vis {

using amr::AmrHierarchy;
using amr::AmrLevel;
using amr::Box;
using amr::FArrayBox;
using amr::IntVect;

std::vector<LevelField> rasterize_levels(const AmrHierarchy& hier) {
  std::vector<LevelField> out;
  for (int l = 0; l < hier.num_levels(); ++l) {
    const AmrLevel& lvl = hier.level(l);
    const Box& dom = lvl.domain;
    LevelField lf;
    lf.cell_size = hier.ratio_to_finest(l);
    lf.values = Array3<double>(dom.shape(), 0.0);
    lf.has_data = Array3<std::uint8_t>(dom.shape(), 0);
    lf.uncovered = Array3<std::uint8_t>(dom.shape(), 0);
    auto vv = lf.values.view();
    auto hv = lf.has_data.view();
    for (const FArrayBox& fab : lvl.fabs) {
      const Box& b = fab.box();
      for (std::int64_t k = b.lo().z; k <= b.hi().z; ++k)
        for (std::int64_t j = b.lo().y; j <= b.hi().y; ++j)
          for (std::int64_t i = b.lo().x; i <= b.hi().x; ++i) {
            const IntVect rel = IntVect{i, j, k} - dom.lo();
            vv(rel.x, rel.y, rel.z) = fab.at({i, j, k});
            hv(rel.x, rel.y, rel.z) = 1;
          }
    }
    // Uncovered = has_data minus the footprint of finer patches.
    auto uv = lf.uncovered.view();
    for (std::int64_t i = 0; i < lf.has_data.size(); ++i)
      lf.uncovered[i] = lf.has_data[i];
    if (l + 1 < hier.num_levels()) {
      for (const Box& fb : hier.level(l + 1).box_array) {
        const Box cb = fb.coarsen(hier.ref_ratio());
        for (std::int64_t k = cb.lo().z; k <= cb.hi().z; ++k)
          for (std::int64_t j = cb.lo().y; j <= cb.hi().y; ++j)
            for (std::int64_t i = cb.lo().x; i <= cb.hi().x; ++i) {
              const IntVect rel = IntVect{i, j, k} - dom.lo();
              uv(rel.x, rel.y, rel.z) = 0;
            }
      }
    }
    out.push_back(std::move(lf));
  }
  return out;
}

TriMesh resampling_isosurface(const AmrHierarchy& hier, double iso) {
  TriMesh mesh;
  const auto fields = rasterize_levels(hier);
  for (int l = 0; l < hier.num_levels(); ++l) {
    const LevelField& lf = fields[static_cast<std::size_t>(l)];
    // Vertex-centred data from the *used* (uncovered) cells only.
    Array3<std::uint8_t> vertex_valid;
    Array3<double> verts = resample_to_vertices_masked(
        lf.values.view(), lf.uncovered.view(), vertex_valid);
    // Contour the uncovered cells of this level.
    const GridTransform tf{Vec3{0, 0, 0},
                           static_cast<double>(lf.cell_size)};
    TriMesh level_mesh = extract_isosurface(verts.view(), iso, tf, l,
                                            lf.uncovered.view());
    mesh.append(level_mesh);
  }
  return mesh;
}

namespace {

/// Build the dual-cell validity mask for one level: a dual cube whose
/// corners are the 8 cells [i..i+1]x[j..j+1]x[k..k+1]. With switching
/// cells, a cube is valid when all corners have data and at least one is
/// uncovered (the redundant coarse data bridges into the fine region);
/// without, all corners must be uncovered.
Array3<std::uint8_t> dual_mask(const LevelField& lf, bool switching) {
  const Shape3 cs = lf.values.shape();
  const Shape3 ds{std::max<std::int64_t>(cs.nx - 1, 1),
                  std::max<std::int64_t>(cs.ny - 1, 1),
                  std::max<std::int64_t>(cs.nz - 1, 1)};
  Array3<std::uint8_t> mask(ds, 0);
  auto mv = mask.view();
  auto has = lf.has_data.view();
  auto unc = lf.uncovered.view();
  parallel_for(ds.nz, [&](std::int64_t k) {
    for (std::int64_t j = 0; j < ds.ny; ++j)
      for (std::int64_t i = 0; i < ds.nx; ++i) {
        bool all_data = true, all_unc = true, any_unc = false;
        for (int c = 0; c < 8; ++c) {
          const std::int64_t ci = i + (c & 1);
          const std::int64_t cj = j + ((c >> 1) & 1);
          const std::int64_t ck = k + ((c >> 2) & 1);
          if (ci >= cs.nx || cj >= cs.ny || ck >= cs.nz) {
            all_data = false;
            all_unc = false;
            continue;
          }
          if (!has(ci, cj, ck)) all_data = false;
          if (unc(ci, cj, ck)) any_unc = true;
          else all_unc = false;
        }
        const bool ok = switching ? (all_data && any_unc) : all_unc;
        mv(i, j, k) = ok ? 1 : 0;
      }
  });
  return mask;
}

}  // namespace

TriMesh dualcell_isosurface(const AmrHierarchy& hier, double iso,
                            bool switching_cells) {
  TriMesh mesh;
  const auto fields = rasterize_levels(hier);
  for (int l = 0; l < hier.num_levels(); ++l) {
    const LevelField& lf = fields[static_cast<std::size_t>(l)];
    const Shape3 cs = lf.values.shape();
    if (cs.nx < 2 || cs.ny < 2 || cs.nz < 2) continue;
    Array3<std::uint8_t> mask = dual_mask(lf, switching_cells);
    // Dual nodes sit at cell centers: origin offset of half a cell.
    const double h = static_cast<double>(lf.cell_size);
    const GridTransform tf{Vec3{0.5 * h, 0.5 * h, 0.5 * h}, h};
    TriMesh level_mesh =
        extract_isosurface(lf.values.view(), iso, tf, l, mask.view());
    mesh.append(level_mesh);
  }
  return mesh;
}

TriMesh amr_isosurface(const AmrHierarchy& hier, double iso,
                       VisMethod method) {
  switch (method) {
    case VisMethod::kResampling:
      return resampling_isosurface(hier, iso);
    case VisMethod::kDualCell:
      return dualcell_isosurface(hier, iso, false);
    case VisMethod::kDualCellSwitching:
      return dualcell_isosurface(hier, iso, true);
  }
  throw Error("amr_isosurface: bad method");
}

const char* vis_method_name(VisMethod method) {
  switch (method) {
    case VisMethod::kResampling:
      return "re-sampling";
    case VisMethod::kDualCell:
      return "dual-cell";
    case VisMethod::kDualCellSwitching:
      return "dual-cell+switch";
  }
  return "?";
}

}  // namespace amrvis::vis
