#include "vis/amr_iso.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <optional>
#include <vector>

#include "amr/sampling.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "vis/isosurface.hpp"
#include "vis/resample.hpp"

namespace amrvis::vis {

using amr::AmrHierarchy;
using amr::AmrLevel;
using amr::Box;
using amr::FArrayBox;
using amr::IntVect;

std::vector<LevelField> rasterize_levels(const AmrHierarchy& hier) {
  std::vector<LevelField> out;
  for (int l = 0; l < hier.num_levels(); ++l) {
    const AmrLevel& lvl = hier.level(l);
    const Box& dom = lvl.domain;
    LevelField lf;
    lf.cell_size = hier.ratio_to_finest(l);
    lf.values = Array3<double>(dom.shape(), 0.0);
    lf.has_data = Array3<std::uint8_t>(dom.shape(), 0);
    lf.uncovered = Array3<std::uint8_t>(dom.shape(), 0);
    auto vv = lf.values.view();
    auto hv = lf.has_data.view();
    for (const FArrayBox& fab : lvl.fabs) {
      const Box& b = fab.box();
      for (std::int64_t k = b.lo().z; k <= b.hi().z; ++k)
        for (std::int64_t j = b.lo().y; j <= b.hi().y; ++j)
          for (std::int64_t i = b.lo().x; i <= b.hi().x; ++i) {
            const IntVect rel = IntVect{i, j, k} - dom.lo();
            vv(rel.x, rel.y, rel.z) = fab.at({i, j, k});
            hv(rel.x, rel.y, rel.z) = 1;
          }
    }
    // Uncovered = has_data minus the footprint of finer patches.
    auto uv = lf.uncovered.view();
    for (std::int64_t i = 0; i < lf.has_data.size(); ++i)
      lf.uncovered[i] = lf.has_data[i];
    if (l + 1 < hier.num_levels()) {
      for (const Box& fb : hier.level(l + 1).box_array) {
        const Box cb = fb.coarsen(hier.ref_ratio());
        for (std::int64_t k = cb.lo().z; k <= cb.hi().z; ++k)
          for (std::int64_t j = cb.lo().y; j <= cb.hi().y; ++j)
            for (std::int64_t i = cb.lo().x; i <= cb.hi().x; ++i) {
              const IntVect rel = IntVect{i, j, k} - dom.lo();
              uv(rel.x, rel.y, rel.z) = 0;
            }
      }
    }
    out.push_back(std::move(lf));
  }
  return out;
}

TriMesh resampling_isosurface(const AmrHierarchy& hier, double iso) {
  TriMesh mesh;
  const auto fields = rasterize_levels(hier);
  for (int l = 0; l < hier.num_levels(); ++l) {
    const LevelField& lf = fields[static_cast<std::size_t>(l)];
    // Vertex-centred data from the *used* (uncovered) cells only.
    Array3<std::uint8_t> vertex_valid;
    Array3<double> verts = resample_to_vertices_masked(
        lf.values.view(), lf.uncovered.view(), vertex_valid);
    // Contour the uncovered cells of this level.
    const GridTransform tf{Vec3{0, 0, 0},
                           static_cast<double>(lf.cell_size)};
    TriMesh level_mesh = extract_isosurface(verts.view(), iso, tf, l,
                                            lf.uncovered.view());
    mesh.append(level_mesh);
  }
  return mesh;
}

namespace {

/// Build the dual-cell validity mask for one level: a dual cube whose
/// corners are the 8 cells [i..i+1]x[j..j+1]x[k..k+1]. With switching
/// cells, a cube is valid when all corners have data and at least one is
/// uncovered (the redundant coarse data bridges into the fine region);
/// without, all corners must be uncovered.
Array3<std::uint8_t> dual_mask(const LevelField& lf, bool switching) {
  const Shape3 cs = lf.values.shape();
  const Shape3 ds{std::max<std::int64_t>(cs.nx - 1, 1),
                  std::max<std::int64_t>(cs.ny - 1, 1),
                  std::max<std::int64_t>(cs.nz - 1, 1)};
  Array3<std::uint8_t> mask(ds, 0);
  auto mv = mask.view();
  auto has = lf.has_data.view();
  auto unc = lf.uncovered.view();
  parallel_for(ds.nz, [&](std::int64_t k) {
    for (std::int64_t j = 0; j < ds.ny; ++j)
      for (std::int64_t i = 0; i < ds.nx; ++i) {
        bool all_data = true, all_unc = true, any_unc = false;
        for (int c = 0; c < 8; ++c) {
          const std::int64_t ci = i + (c & 1);
          const std::int64_t cj = j + ((c >> 1) & 1);
          const std::int64_t ck = k + ((c >> 2) & 1);
          if (ci >= cs.nx || cj >= cs.ny || ck >= cs.nz) {
            all_data = false;
            all_unc = false;
            continue;
          }
          if (!has(ci, cj, ck)) all_data = false;
          if (unc(ci, cj, ck)) any_unc = true;
          else all_unc = false;
        }
        const bool ok = switching ? (all_data && any_unc) : all_unc;
        mv(i, j, k) = ok ? 1 : 0;
      }
  });
  return mask;
}

}  // namespace

TriMesh dualcell_isosurface(const AmrHierarchy& hier, double iso,
                            bool switching_cells) {
  TriMesh mesh;
  const auto fields = rasterize_levels(hier);
  for (int l = 0; l < hier.num_levels(); ++l) {
    const LevelField& lf = fields[static_cast<std::size_t>(l)];
    const Shape3 cs = lf.values.shape();
    if (cs.nx < 2 || cs.ny < 2 || cs.nz < 2) continue;
    Array3<std::uint8_t> mask = dual_mask(lf, switching_cells);
    // Dual nodes sit at cell centers: origin offset of half a cell.
    const double h = static_cast<double>(lf.cell_size);
    const GridTransform tf{Vec3{0.5 * h, 0.5 * h, 0.5 * h}, h};
    TriMesh level_mesh =
        extract_isosurface(lf.values.view(), iso, tf, l, mask.view());
    mesh.append(level_mesh);
  }
  return mesh;
}

TriMesh amr_isosurface(const AmrHierarchy& hier, double iso,
                       VisMethod method) {
  switch (method) {
    case VisMethod::kResampling:
      return resampling_isosurface(hier, iso);
    case VisMethod::kDualCell:
      return dualcell_isosurface(hier, iso, false);
    case VisMethod::kDualCellSwitching:
      return dualcell_isosurface(hier, iso, true);
  }
  throw Error("amr_isosurface: bad method");
}

// ------------------------- streamed pipeline ---------------------------

namespace {

using compress::AmrCompressed;
using compress::ChunkedCompressor;
using compress::Compressor;

/// Value range accumulated from per-tile container stats; `any` is false
/// while nothing contributed (a slab with no stored cells).
struct VRange {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  bool any = false;

  void add(double l, double h) {
    lo = std::min(lo, l);
    hi = std::max(hi, h);
    any = true;
  }
  void add(const VRange& o) {
    if (o.any) add(o.lo, o.hi);
  }
};

/// Could a cube whose values lie in `r` widened by `eb` survive the
/// extraction quick-reject (some value > iso, some <= iso)? Mirrors the
/// reject exactly: kept cubes have max > iso and min <= iso; decoded
/// values sit within [stats.min - eb, stats.max + eb], and both vertex
/// averages (re-sampling) and raw cell values (dual) stay in that hull.
bool straddles(const VRange& r, double iso, double eb) {
  return r.any && r.lo - eb <= iso && iso < r.hi + eb;
}

/// Dense raster of one z-slab of one level (full xy extent,
/// domain-relative planes [z0, z1]) — the streamed analogue of a
/// LevelField restricted to the slab, plus a `dec` mask marking the
/// cells whose tile was actually decoded (the value cull may skip tiles;
/// a cell with has=1, dec=0 belongs to a provably non-straddling cube).
struct SlabRaster {
  std::int64_t z0 = 0, z1 = -1;
  Array3<double> values;
  Array3<std::uint8_t> has, unc, dec;

  [[nodiscard]] std::size_t bytes() const {
    return static_cast<std::size_t>(values.size()) *
           (sizeof(double) + 3 * sizeof(std::uint8_t));
  }
};

/// One cullable decode unit of a level: a container tile of a chunked
/// patch (index >= 0) or a whole plain-blob patch (index -1, range
/// unknown). Boxes are in LEVEL index space. Face-slab ranges default to
/// the whole-tile range when the container predates v3 (every slab is a
/// subset of it — conservative, never wrong).
struct LevelTile {
  std::size_t patch = 0;
  std::int64_t index = -1;
  amr::Box box;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  compress::TileFaceStats faces{};
  bool decode = true;
};

/// Tile-grid view of one chunked patch (tiles in slot order, x fastest).
struct PatchGridInfo {
  bool grid = false;  ///< block tests applicable (grid with safe extents)
  std::size_t first = 0;  ///< index of slot 0 in the level tile list
  std::int64_t tnx = 0, tny = 0, tnz = 0;
};

/// Everything the per-level sweep needs in one place.
struct LevelSweep {
  const AmrCompressed* compressed = nullptr;
  const Compressor* comp = nullptr;
  int level = 0;
  amr::Box dom;
  Shape3 ds{};
  std::int64_t cell_size = 1;
  bool switching = false;
  StreamedIsoOptions options{};
  StreamedIsoStats* stats = nullptr;
};

/// Decoded — and, below the finest level of a mean-fill hierarchy,
/// synchronized — values of `level` over `box`. Cells outside any patch
/// stay 0 (callers only read patch cells). Recursion mirrors the
/// finest-to-coarse cascade of synchronize_coarse_from_fine.
Array3<double> synced_level_values(const LevelSweep& ls, int level,
                                   const amr::Box& box);

/// For every `level` cell inside `target` that is covered by a level+1
/// patch AND lies inside a level patch, hand `write` the synchronized
/// average the full-inflate path would produce there. Replicates
/// coarsen_average cell-for-cell (same summand order, same 1/(r^3)
/// factor) so the rebuilt values are bit-identical.
template <typename Write>
void sync_covered(const LevelSweep& ls, int level, const amr::Box& target,
                  const Write& write) {
  const AmrCompressed& c = *ls.compressed;
  const std::int64_t rr = c.ref_ratio;
  const auto& fine_boxes = c.boxes[static_cast<std::size_t>(level) + 1];
  const auto& coarse_boxes = c.boxes[static_cast<std::size_t>(level)];
  for (const Box& fb : fine_boxes) {
    const Shape3 fs = fb.shape();
    const std::int64_t rx = fs.nx == 1 ? 1 : rr;
    const std::int64_t ry = fs.ny == 1 ? 1 : rr;
    const std::int64_t rz = fs.nz == 1 ? 1 : rr;
    // The full-inflate path would throw from coarsen_average on a
    // non-divisible patch; a misaligned origin would silently corrupt it
    // there, so it is rejected here rather than reproduced.
    AMRVIS_REQUIRE_MSG(
        (fs.nx == 1 || fs.nx % rr == 0) && (fs.ny == 1 || fs.ny % rr == 0) &&
            (fs.nz == 1 || fs.nz % rr == 0),
        "coarsen_average: extent not divisible by ratio");
    AMRVIS_REQUIRE_MSG(
        (rx == 1 || amr::floor_div(fb.lo().x, rr) * rr == fb.lo().x) &&
            (ry == 1 || amr::floor_div(fb.lo().y, rr) * rr == fb.lo().y) &&
            (rz == 1 || amr::floor_div(fb.lo().z, rr) * rr == fb.lo().z),
        "streamed iso: fine patch origin not aligned to the refinement "
        "ratio");
    const IntVect rvec{rx, ry, rz};
    const Box cb = fb.coarsen(rr);
    const double inv = 1.0 / static_cast<double>(rx * ry * rz);
    for (const Box& pb : coarse_boxes) {
      auto ov = cb.intersect(pb);
      if (ov) ov = ov->intersect(target);
      if (!ov) continue;
      // Fine cells feeding the overlap: fb.lo + (c - cb.lo)*r + [0, r).
      const Box need{fb.lo() + (ov->lo() - cb.lo()) * rvec,
                     fb.lo() + (ov->hi() - cb.lo()) * rvec + rvec -
                         IntVect::uniform(1)};
      const Array3<double> fine = synced_level_values(ls, level + 1, need);
      for (std::int64_t cz = ov->lo().z; cz <= ov->hi().z; ++cz)
        for (std::int64_t cy = ov->lo().y; cy <= ov->hi().y; ++cy)
          for (std::int64_t cx = ov->lo().x; cx <= ov->hi().x; ++cx) {
            const IntVect base =
                fb.lo() +
                (IntVect{cx, cy, cz} - cb.lo()) * rvec - need.lo();
            double sum = 0.0;
            for (std::int64_t dz = 0; dz < rz; ++dz)
              for (std::int64_t dy = 0; dy < ry; ++dy)
                for (std::int64_t dx = 0; dx < rx; ++dx)
                  sum += fine(base.x + dx, base.y + dy, base.z + dz);
            write(IntVect{cx, cy, cz}, sum * inv);
          }
    }
  }
}

Array3<double> synced_level_values(const LevelSweep& ls, int level,
                                   const amr::Box& box) {
  Array3<double> out(box.shape(), 0.0);
  compress::RegionDecodeStats rs;
  compress::LevelReadOptions read;
  read.cancel = ls.options.cancel;
  const auto rps = compress::decompress_level_region(
      *ls.compressed, *ls.comp, level, box, &rs, ls.options.cache, read);
  if (ls.stats != nullptr) {
    ls.stats->tiles_decoded += rs.tiles_decoded;
    ls.stats->cache_hits += rs.cache_hits;
  }
  for (const auto& rp : rps) {
    const Shape3 os = rp.box.shape();
    for (std::int64_t dz = 0; dz < os.nz; ++dz)
      for (std::int64_t dy = 0; dy < os.ny; ++dy)
        std::memcpy(&out(rp.box.lo().x - box.lo().x,
                         rp.box.lo().y - box.lo().y + dy,
                         rp.box.lo().z - box.lo().z + dz),
                    &rp.data(0, dy, dz),
                    static_cast<std::size_t>(os.nx) * sizeof(double));
  }
  if (static_cast<std::size_t>(level) + 1 < ls.compressed->levels.size())
    sync_covered(ls, level, box, [&](IntVect cc, double v) {
      const IntVect o = cc - box.lo();
      out(o.x, o.y, o.z) = v;
    });
  return out;
}

/// Build the raster of slab [z0, z1]: paint has/uncovered/decoded masks
/// from the box arrays and the cull plan, stream-decode the selected
/// tiles (`do_decode` false skips all decoding — the slab then only
/// serves masks to its neighbor's seam cubes), and (for switching cells
/// on a mean-fill hierarchy) rebuild the covered coarse values from
/// region-decoded fine data.
SlabRaster build_slab(const LevelSweep& ls,
                      const std::vector<LevelTile>& tiles,
                      const std::vector<std::vector<char>>& decided,
                      const compress::AmrTileCache& cache,
                      bool cache_chunked, std::int64_t z0, std::int64_t z1,
                      bool do_decode) {
  SlabRaster r;
  r.z0 = z0;
  r.z1 = z1;
  const Shape3 rs{ls.ds.nx, ls.ds.ny, z1 - z0 + 1};
  r.values = Array3<double>(rs, 0.0);
  r.has = Array3<std::uint8_t>(rs, 0);
  r.unc = Array3<std::uint8_t>(rs, 0);
  r.dec = Array3<std::uint8_t>(rs, 0);
  const amr::Box slab_box{
      {ls.dom.lo().x, ls.dom.lo().y, ls.dom.lo().z + z0},
      {ls.dom.hi().x, ls.dom.hi().y, ls.dom.lo().z + z1}};

  // Masks first — they cost no decode.
  const auto& boxes =
      ls.compressed->boxes[static_cast<std::size_t>(ls.level)];
  auto paint_mask = [&](Array3<std::uint8_t>& mask, const Box& b,
                        std::uint8_t v) {
    const auto ov = b.intersect(slab_box);
    if (!ov) return;
    for (std::int64_t k = ov->lo().z; k <= ov->hi().z; ++k)
      for (std::int64_t j = ov->lo().y; j <= ov->hi().y; ++j)
        for (std::int64_t i = ov->lo().x; i <= ov->hi().x; ++i)
          mask(i - ls.dom.lo().x, j - ls.dom.lo().y,
               k - ls.dom.lo().z - z0) = v;
  };
  for (const Box& pb : boxes) paint_mask(r.has, pb, 1);
  for (std::int64_t f = 0; f < r.has.size(); ++f) r.unc[f] = r.has[f];
  const bool has_finer = static_cast<std::size_t>(ls.level) + 1 <
                         ls.compressed->levels.size();
  if (has_finer) {
    for (const Box& fb :
         ls.compressed->boxes[static_cast<std::size_t>(ls.level) + 1])
      paint_mask(r.unc, fb.coarsen(ls.compressed->ref_ratio), 0);
  }
  if (!do_decode) return r;
  for (const LevelTile& t : tiles)
    if (t.decode) paint_mask(r.dec, t.box, 1);

  // Values: one decoded tile at a time through the cull plan; a tile may
  // overhang the slab in z, only the slab rows are kept.
  amr::HierTileOptions hto;
  hto.prefetch = ls.options.prefetch;
  hto.cache = &cache;  // plain patches inflate once per cache lifetime
  hto.cache_chunked_tiles = cache_chunked;
  hto.cancel = ls.options.cancel;
  hto.tile_select = [&](std::size_t p, const compress::TileRegion& tr) {
    return decided[p].empty() ||
           decided[p][static_cast<std::size_t>(tr.index)] != 0;
  };
  compress::RegionDecodeStats dstats;
  amr::for_each_tile_compressed(
      *ls.compressed, *ls.comp, ls.level, slab_box,
      [&](amr::HierTile&& t) {
        const auto ov = t.box.intersect(slab_box);
        if (!ov) return;
        const Shape3 os = ov->shape();
        for (std::int64_t dz = 0; dz < os.nz; ++dz)
          for (std::int64_t dy = 0; dy < os.ny; ++dy)
            std::memcpy(
                &r.values(ov->lo().x - ls.dom.lo().x,
                          ov->lo().y - ls.dom.lo().y + dy,
                          ov->lo().z - ls.dom.lo().z - z0 + dz),
                &t.data(ov->lo().x - t.box.lo().x,
                        ov->lo().y - t.box.lo().y + dy,
                        ov->lo().z - t.box.lo().z + dz),
                static_cast<std::size_t>(os.nx) * sizeof(double));
      },
      hto, &dstats);
  if (ls.stats != nullptr) {
    ls.stats->tiles_decoded += dstats.tiles_decoded;
    ls.stats->cache_hits += dstats.cache_hits;
  }

  // Switching cells read the redundant coarse data; under mean-fill the
  // stored values there are placeholders, so rebuild them from the fine
  // level exactly like synchronize_coarse_from_fine (coarse-to-fine).
  // Those levels never cull (stats cannot bound rebuilt values), so the
  // rebuilt cells are always decoded cells.
  if (ls.switching && has_finer &&
      ls.compressed->handling == compress::RedundantHandling::kMeanFill) {
    sync_covered(ls, ls.level, slab_box, [&](IntVect cc, double v) {
      r.values(cc.x - ls.dom.lo().x, cc.y - ls.dom.lo().y,
               cc.z - ls.dom.lo().z - z0) = v;
    });
  }
  return r;
}

/// Streamed sweep of one level; appends its triangles to `mesh` in the
/// exact order the full-inflate pipeline would emit them.
void sweep_level(const LevelSweep& ls, VisMethod method, double iso,
                 TriMesh& mesh) {
  const AmrCompressed& c = *ls.compressed;
  const Shape3 ds = ls.ds;
  const bool resampling = method == VisMethod::kResampling;
  if (!resampling && (ds.nx < 2 || ds.ny < 2 || ds.nz < 2))
    return;  // the full dual-cell path skips such levels too

  // ---- planning: the cullable tile set of this level ----
  const auto& boxes = c.boxes[static_cast<std::size_t>(ls.level)];
  const auto& patches = c.levels[static_cast<std::size_t>(ls.level)].patches;
  const auto* chunked_codec = dynamic_cast<const ChunkedCompressor*>(ls.comp);
  // Mean-fill rebuilds covered coarse values from fine data, which the
  // stored per-tile stats do not bound — stats are unusable there.
  const bool stats_usable =
      !(ls.switching &&
        c.handling == compress::RedundantHandling::kMeanFill &&
        static_cast<std::size_t>(ls.level) + 1 < c.levels.size());

  std::vector<LevelTile> tiles;
  std::vector<PatchGridInfo> pgrids(boxes.size());
  // Per patch: decode flags per container slot (empty for plain blobs,
  // which always decode whole).
  std::vector<std::vector<char>> decided(boxes.size());
  for (std::size_t p = 0; p < boxes.size(); ++p) {
    const Box& pb = boxes[p];
    const bool tiled = chunked_codec != nullptr ||
                       ChunkedCompressor::is_chunked_blob(patches[p].blob);
    if (tiled) {
      std::optional<ChunkedCompressor> wrap;
      const ChunkedCompressor* cc = chunked_codec;
      if (cc == nullptr) cc = &wrap.emplace(*ls.comp);
      // One header parse serves the tile boxes, the overall stats AND
      // the face table (no payload is touched).
      const auto pc = compress::detail::parse_container(
          patches[p].blob, cc->inner().name());
      decided[p].assign(static_cast<std::size_t>(pc.ntiles), 0);
      PatchGridInfo& g = pgrids[p];
      g.first = tiles.size();
      // Only v3 stats are trusted by the cull: the pre-v3 writers
      // computed ranges by SKIPPING NaN cells, and a NaN-cornered
      // marching cube can emit geometry a finite range never admits —
      // a v1/v2 patch blob therefore decodes whole (conservative,
      // mesh-identical) rather than risking dropped triangles.
      const bool trust_stats = stats_usable && !pc.faces.empty();
      for (std::int64_t t = 0; t < pc.ntiles; ++t) {
        LevelTile lt;
        lt.patch = p;
        lt.index = t;
        lt.box = compress::detail::tile_cell_box(
                     compress::detail::tile_box(t, pc.grid, pc.shape,
                                                pc.tile))
                     .shift(pb.lo());
        if (trust_stats) {
          const compress::TileStats st = pc.stats_of(t);
          lt.lo = st.min;
          lt.hi = st.max;
          lt.faces = pc.faces[static_cast<std::size_t>(t)];
        } else {
          lt.faces.fill({lt.lo, lt.hi});  // unbounded: always decoded
        }
        tiles.push_back(lt);
      }
      g.tnx = pc.grid.tnx;
      g.tny = pc.grid.tny;
      g.tnz = pc.grid.tnz;
      // Block tests assume a cell window spans at most two tiles per
      // axis: true when interior tile extents are >= 2 (only the last
      // tile of an axis is ever clipped).
      g.grid = (g.tnx < 2 || pc.tile.nx >= 2) &&
               (g.tny < 2 || pc.tile.ny >= 2) &&
               (g.tnz < 2 || pc.tile.nz >= 2);
    } else {
      LevelTile lt;
      lt.patch = p;
      lt.box = pb;
      tiles.push_back(lt);  // range unknown: always decoded
    }
  }
  if (ls.stats != nullptr)
    ls.stats->tiles_total += static_cast<std::int64_t>(tiles.size());

  // Exact cull. A cube can only straddle the isovalue if the union of
  // the widened value ranges of the regions its cell window touches
  // does. Within a patch grid the window spans at most two tiles per
  // axis, and each tile's share of a seam/edge/corner window lies in
  // its two-layer face slabs — so testing every face pair, edge quad
  // and corner octet against the respective face-slab ranges (v3
  // stats; whole-tile ranges for older containers) and decoding every
  // participant of a straddling test guarantees every potentially
  // contributing cube is fully decoded. Cubes touching a skipped tile
  // are provably silent and masked off below. Windows crossing PATCH
  // boundaries (and patches whose tiling defeats the two-tile
  // assumption) fall back to the grow(2) whole-range union.
  const double eb = c.abs_eb;
  if (!ls.options.value_cull) {
    for (LevelTile& t : tiles) t.decode = true;
  } else {
    for (LevelTile& t : tiles)
      t.decode = straddles(VRange{t.lo, t.hi, true}, iso, eb);

    // Range of a tile's block-facing region: intersection of the face
    // ranges toward the block, one per spanned axis (the region lies in
    // each of those slabs). An empty intersection means the region holds
    // no non-NaN value and contributes nothing.
    auto face_bound = [&](const LevelTile& t, int fx, int fy,
                          int fz) -> VRange {
      double lo = t.lo, hi = t.hi;
      auto clip = [&](const compress::TileStats& st) {
        lo = std::max(lo, st.min);
        hi = std::min(hi, st.max);
      };
      if (fx >= 0) clip(t.faces[static_cast<std::size_t>(fx)]);
      if (fy >= 0) clip(t.faces[static_cast<std::size_t>(fy)]);
      if (fz >= 0) clip(t.faces[static_cast<std::size_t>(fz)]);
      if (lo > hi) return {};
      return {lo, hi, true};
    };
    for (std::size_t p = 0; p < boxes.size(); ++p) {
      const PatchGridInfo& g = pgrids[p];
      if (!g.grid) continue;
      auto at = [&](std::int64_t i, std::int64_t j,
                    std::int64_t k) -> LevelTile& {
        return tiles[g.first + static_cast<std::size_t>(
                                   (k * g.tny + j) * g.tnx + i)];
      };
      // Every face pair (1 spanned axis), edge quad (2) and corner
      // octet (3) of adjacent tiles: union the block-facing bounds; if
      // they straddle, decode every participant.
      for (int ax = 0; ax <= (g.tnx > 1 ? 1 : 0); ++ax)
        for (int ay = 0; ay <= (g.tny > 1 ? 1 : 0); ++ay)
          for (int az = 0; az <= (g.tnz > 1 ? 1 : 0); ++az) {
            if (ax + ay + az == 0) continue;  // own-range test done
            for (std::int64_t bz = 0; bz + az < g.tnz; ++bz)
              for (std::int64_t by = 0; by + ay < g.tny; ++by)
                for (std::int64_t bx = 0; bx + ax < g.tnx; ++bx) {
                  VRange u;
                  for (int ox = 0; ox <= ax; ++ox)
                    for (int oy = 0; oy <= ay; ++oy)
                      for (int oz = 0; oz <= az; ++oz) {
                        const LevelTile& t =
                            at(bx + ox, by + oy, bz + oz);
                        u.add(face_bound(
                            t, ax ? (ox ? 0 : 1) : -1,
                            ay ? (oy ? 2 : 3) : -1,
                            az ? (oz ? 4 : 5) : -1));
                      }
                  if (!straddles(u, iso, eb)) continue;
                  for (int ox = 0; ox <= ax; ++ox)
                    for (int oy = 0; oy <= ay; ++oy)
                      for (int oz = 0; oz <= az; ++oz)
                        at(bx + ox, by + oy, bz + oz).decode = true;
                }
          }
    }
    // Cross-patch seams and non-grid tilings: conservative whole-range
    // neighborhood union, applied to every tile near a foreign tile.
    // A single grid-tiled patch (the flagship whole-domain container)
    // has neither, so the quadratic scan is skipped entirely.
    const bool need_fallback_scan =
        boxes.size() > 1 || (!pgrids.empty() && !pgrids[0].grid);
    if (need_fallback_scan) {
      for (LevelTile& t : tiles) {
        if (t.decode) continue;
        const Box probe = t.box.grow(2);
        bool fallback = !pgrids[t.patch].grid && t.index >= 0;
        if (!fallback) {
          for (const LevelTile& o : tiles)
            if (o.patch != t.patch && o.box.intersects(probe)) {
              fallback = true;
              break;
            }
        }
        if (!fallback) continue;
        VRange u;
        for (const LevelTile& o : tiles)
          if (o.box.intersects(probe)) u.add(o.lo, o.hi);
        t.decode = straddles(u, iso, eb);
      }
    }
  }
  for (const LevelTile& t : tiles)
    if (t.decode && t.index >= 0)
      decided[t.patch][static_cast<std::size_t>(t.index)] = 1;

  // ---- sweep: slabs in z order; decode planned tiles, contour, cache
  // a two-plane halo (masks always exist; values only where decoded) ----
  const std::int64_t T = std::max<std::int64_t>(2, ls.options.slab_nz);
  const std::int64_t nslab = (ds.nz + T - 1) / T;
  if (ls.stats != nullptr) ls.stats->slabs_total += nslab;
  const double h = static_cast<double>(ls.cell_size);

  auto slab_has_decode = [&](std::int64_t k) {
    const amr::Box sb{{ls.dom.lo().x, ls.dom.lo().y,
                       ls.dom.lo().z + k * T},
                      {ls.dom.hi().x, ls.dom.hi().y,
                       ls.dom.lo().z + std::min(k * T + T - 1, ds.nz - 1)}};
    for (const LevelTile& t : tiles)
      if (t.decode && t.box.intersects(sb)) return true;
    return false;
  };

  SlabRaster halo;  // last two planes of the previous slab (masks always)
  bool prev_decoded = false;
  // Plain patch blobs have no partial decode: inflate each at most once
  // per sweep (held for the whole level sweep — they are the patches the
  // chunk policy deemed small enough not to tile). Without a shared
  // service cache, a sweep-local unbounded store plays that role; chunked
  // tiles stay uncached there so the <= 2 live decoded tiles per stream
  // guarantee holds.
  std::optional<compress::TileCache> local_store;
  std::optional<compress::AmrTileCache> local_cache;
  const bool shared = ls.options.cache != nullptr;
  if (!shared) {
    local_store.emplace(compress::TileCache::kUnbounded);
    local_cache.emplace(*local_store, *ls.compressed);
  }
  const compress::AmrTileCache& cache =
      shared ? *ls.options.cache : *local_cache;
  for (std::int64_t k = 0; k < nslab; ++k) {
    const std::int64_t z0 = k * T;
    const std::int64_t z1 = std::min(z0 + T - 1, ds.nz - 1);
    const bool decode_k = slab_has_decode(k);
    // Anchors owned by this iteration: the seam layer into the previous
    // slab plus this slab's interior (the top layer belongs to the next
    // iteration, whose window sees both slabs).
    const std::int64_t a_lo = k == 0 ? 0 : z0 - 1;
    const std::int64_t a_hi =
        k == nslab - 1 ? (resampling ? ds.nz - 1 : ds.nz - 2)
                       : z1 - 1;
    const bool emit_any = (decode_k || prev_decoded) && a_lo <= a_hi;
    // Undecoded slabs still materialize (mask-only, no decode): their
    // has/uncovered planes feed the next iteration's seam windows, where
    // data-free cells are legitimately averaged around.
    SlabRaster cur =
        build_slab(ls, tiles, decided, cache, shared, z0, z1, decode_k);
    if (ls.stats != nullptr && decode_k) ls.stats->slabs_decoded += 1;

    if (emit_any) {
      // Working window: up to two halo planes + the current slab. For
      // k > 0 the halo always exists (built even for undecoded slabs —
      // masks cost no decode).
      const std::int64_t w0 = k == 0 ? 0 : z0 - 2;
      const Shape3 ws{ds.nx, ds.ny, z1 - w0 + 1};
      Array3<double> wv(ws, 0.0);
      Array3<std::uint8_t> wh(ws, 0), wu(ws, 0), wd(ws, 0);
      auto copy_plane = [&](const SlabRaster& src, std::int64_t z) {
        const std::int64_t sz = z - src.z0, dz = z - w0;
        const std::size_t row = static_cast<std::size_t>(ws.nx);
        for (std::int64_t j = 0; j < ws.ny; ++j) {
          std::memcpy(&wv(0, j, dz), &src.values(0, j, sz),
                      row * sizeof(double));
          std::memcpy(&wh(0, j, dz), &src.has(0, j, sz), row);
          std::memcpy(&wu(0, j, dz), &src.unc(0, j, sz), row);
          std::memcpy(&wd(0, j, dz), &src.dec(0, j, sz), row);
        }
      };
      for (std::int64_t z = w0; z < z0; ++z) copy_plane(halo, z);
      for (std::int64_t z = z0; z <= z1; ++z) copy_plane(cur, z);

      // A cell with data whose tile the cull skipped: any cube whose
      // window touches it is provably non-straddling — mask it off.
      Array3<std::uint8_t> missing(ws, 0);
      for (std::int64_t f = 0; f < missing.size(); ++f)
        missing[f] = static_cast<std::uint8_t>(wh[f] != 0 && wd[f] == 0);
      const std::int64_t win = resampling ? 1 : 0;  // window low reach
      auto window_clean = [&](std::int64_t i, std::int64_t j,
                              std::int64_t kk) {
        const std::int64_t i0 = std::max<std::int64_t>(i - win, 0);
        const std::int64_t j0 = std::max<std::int64_t>(j - win, 0);
        const std::int64_t k0 = std::max<std::int64_t>(kk - win, 0);
        const std::int64_t i1 = std::min(i + 1, ws.nx - 1);
        const std::int64_t j1 = std::min(j + 1, ws.ny - 1);
        const std::int64_t k1 = std::min(kk + 1, ws.nz - 1);
        for (std::int64_t cz = k0; cz <= k1; ++cz)
          for (std::int64_t cy = j0; cy <= j1; ++cy)
            for (std::int64_t cx = i0; cx <= i1; ++cx)
              if (missing(cx, cy, cz)) return false;
        return true;
      };

      std::size_t live = cur.bytes() + halo.bytes() +
                         static_cast<std::size_t>(wv.size()) *
                             (sizeof(double) + 4);
      if (local_store) live += local_store->counters().bytes;
      auto emit = [&](View3<const double> grid,
                      View3<const std::uint8_t> mask,
                      const GridTransform& tf) {
        mesh.append(extract_isosurface_slab(grid, iso, tf, ls.level, mask,
                                            a_lo - w0, a_hi - w0 + 1));
      };
      if (resampling) {
        Array3<std::uint8_t> vertex_valid;
        const Array3<double> verts =
            resample_to_vertices_masked(wv.view(), wu.view(), vertex_valid);
        // Extraction mask = uncovered anchors whose 3-cell windows hold
        // no missing cells (their vertex averages would read them).
        Array3<std::uint8_t> cmask(ws, 0);
        parallel_for(ws.nz, [&](std::int64_t kk) {
          for (std::int64_t j = 0; j < ws.ny; ++j)
            for (std::int64_t i = 0; i < ws.nx; ++i)
              cmask(i, j, kk) = static_cast<std::uint8_t>(
                  wu(i, j, kk) != 0 && window_clean(i, j, kk));
        });
        live += static_cast<std::size_t>(verts.size()) *
                    (sizeof(double) + 1) +
                static_cast<std::size_t>(cmask.size());
        const GridTransform tf{Vec3{0, 0, static_cast<double>(w0) * h}, h};
        emit(verts.view(), cmask.view(), tf);
      } else {
        // Dual mask over the window's cube grid: the dual_mask corner
        // rules (no clipping needed — every corner is in-window for the
        // anchors emitted here) plus the missing-cell veto.
        const Shape3 ms{ds.nx - 1, ds.ny - 1, ws.nz - 1};
        Array3<std::uint8_t> dmask(ms, 0);
        auto mv = dmask.view();
        parallel_for(ms.nz, [&](std::int64_t kk) {
          for (std::int64_t j = 0; j < ms.ny; ++j)
            for (std::int64_t i = 0; i < ms.nx; ++i) {
              bool all_data = true, all_unc = true, any_unc = false;
              bool clean = true;
              for (int cnr = 0; cnr < 8; ++cnr) {
                const std::int64_t ci = i + (cnr & 1);
                const std::int64_t cj = j + ((cnr >> 1) & 1);
                const std::int64_t ck = kk + ((cnr >> 2) & 1);
                if (!wh(ci, cj, ck)) all_data = false;
                if (wu(ci, cj, ck)) any_unc = true;
                else all_unc = false;
                if (missing(ci, cj, ck)) clean = false;
              }
              const bool ok =
                  (ls.switching ? (all_data && any_unc) : all_unc) && clean;
              mv(i, j, kk) = ok ? 1 : 0;
            }
        });
        live += static_cast<std::size_t>(dmask.size());
        const GridTransform tf{
            Vec3{0.5 * h, 0.5 * h, 0.5 * h + static_cast<double>(w0) * h},
            h};
        emit(wv.view(), dmask.view(), tf);
      }
      if (ls.stats != nullptr)
        ls.stats->peak_live_bytes =
            std::max(ls.stats->peak_live_bytes, live);
    }

    // Cache the last two planes as the next iteration's halo.
    const std::int64_t h0 = std::max(z0, z1 - 1);
    halo.z0 = h0;
    halo.z1 = z1;
    const Shape3 hs{ds.nx, ds.ny, z1 - h0 + 1};
    halo.values = Array3<double>(hs);
    halo.has = Array3<std::uint8_t>(hs);
    halo.unc = Array3<std::uint8_t>(hs);
    halo.dec = Array3<std::uint8_t>(hs);
    for (std::int64_t z = h0; z <= z1; ++z) {
      const std::int64_t sz = z - z0, dz = z - h0;
      for (std::int64_t j = 0; j < ds.ny; ++j) {
        std::memcpy(&halo.values(0, j, dz), &cur.values(0, j, sz),
                    static_cast<std::size_t>(ds.nx) * sizeof(double));
        std::memcpy(&halo.has(0, j, dz), &cur.has(0, j, sz),
                    static_cast<std::size_t>(ds.nx));
        std::memcpy(&halo.unc(0, j, dz), &cur.unc(0, j, sz),
                    static_cast<std::size_t>(ds.nx));
        std::memcpy(&halo.dec(0, j, dz), &cur.dec(0, j, sz),
                    static_cast<std::size_t>(ds.nx));
      }
    }
    prev_decoded = decode_k;
  }
}

}  // namespace

TriMesh amr_isosurface_streamed(const AmrCompressed& compressed,
                                const Compressor& comp, double iso,
                                VisMethod method,
                                const StreamedIsoOptions& options,
                                StreamedIsoStats* stats) {
  AMRVIS_REQUIRE_MSG(!compressed.levels.empty(),
                     "amr_isosurface_streamed: empty hierarchy");
  AMRVIS_REQUIRE_MSG(comp.name() == compressed.compressor_name,
                     "amr_isosurface_streamed: codec mismatch");
  if (stats != nullptr) *stats = {};
  TriMesh mesh;
  const int nlev = static_cast<int>(compressed.levels.size());
  for (int l = 0; l < nlev; ++l) {
    LevelSweep ls;
    ls.compressed = &compressed;
    ls.comp = &comp;
    ls.level = l;
    ls.dom = compressed.domains[static_cast<std::size_t>(l)];
    ls.ds = ls.dom.shape();
    std::int64_t r = 1;
    for (int i = l; i + 1 < nlev; ++i) r *= compressed.ref_ratio;
    ls.cell_size = r;
    ls.switching = method == VisMethod::kDualCellSwitching;
    ls.options = options;
    ls.stats = stats;
    sweep_level(ls, method, iso, mesh);
  }
  return mesh;
}

const char* vis_method_name(VisMethod method) {
  switch (method) {
    case VisMethod::kResampling:
      return "re-sampling";
    case VisMethod::kDualCell:
      return "dual-cell";
    case VisMethod::kDualCellSwitching:
      return "dual-cell+switch";
  }
  return "?";
}

}  // namespace amrvis::vis
