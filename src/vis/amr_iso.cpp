#include "vis/amr_iso.hpp"

#include <algorithm>
#include <cstring>
#include <limits>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include "compress/lzss.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "vis/isosurface.hpp"
#include "vis/resample.hpp"

namespace amrvis::vis {

using amr::AmrHierarchy;
using amr::AmrLevel;
using amr::Box;
using amr::FArrayBox;
using amr::IntVect;

std::vector<LevelField> rasterize_levels(const AmrHierarchy& hier) {
  std::vector<LevelField> out;
  for (int l = 0; l < hier.num_levels(); ++l) {
    const AmrLevel& lvl = hier.level(l);
    const Box& dom = lvl.domain;
    LevelField lf;
    lf.cell_size = hier.ratio_to_finest(l);
    lf.values = Array3<double>(dom.shape(), 0.0);
    lf.has_data = Array3<std::uint8_t>(dom.shape(), 0);
    lf.uncovered = Array3<std::uint8_t>(dom.shape(), 0);
    auto vv = lf.values.view();
    auto hv = lf.has_data.view();
    for (const FArrayBox& fab : lvl.fabs) {
      const Box& b = fab.box();
      for (std::int64_t k = b.lo().z; k <= b.hi().z; ++k)
        for (std::int64_t j = b.lo().y; j <= b.hi().y; ++j)
          for (std::int64_t i = b.lo().x; i <= b.hi().x; ++i) {
            const IntVect rel = IntVect{i, j, k} - dom.lo();
            vv(rel.x, rel.y, rel.z) = fab.at({i, j, k});
            hv(rel.x, rel.y, rel.z) = 1;
          }
    }
    // Uncovered = has_data minus the footprint of finer patches.
    auto uv = lf.uncovered.view();
    for (std::int64_t i = 0; i < lf.has_data.size(); ++i)
      lf.uncovered[i] = lf.has_data[i];
    if (l + 1 < hier.num_levels()) {
      for (const Box& fb : hier.level(l + 1).box_array) {
        const Box cb = fb.coarsen(hier.ref_ratio());
        for (std::int64_t k = cb.lo().z; k <= cb.hi().z; ++k)
          for (std::int64_t j = cb.lo().y; j <= cb.hi().y; ++j)
            for (std::int64_t i = cb.lo().x; i <= cb.hi().x; ++i) {
              const IntVect rel = IntVect{i, j, k} - dom.lo();
              uv(rel.x, rel.y, rel.z) = 0;
            }
      }
    }
    out.push_back(std::move(lf));
  }
  return out;
}

TriMesh resampling_isosurface(const AmrHierarchy& hier, double iso) {
  TriMesh mesh;
  const auto fields = rasterize_levels(hier);
  for (int l = 0; l < hier.num_levels(); ++l) {
    const LevelField& lf = fields[static_cast<std::size_t>(l)];
    // Vertex-centred data from the *used* (uncovered) cells only.
    Array3<std::uint8_t> vertex_valid;
    Array3<double> verts = resample_to_vertices_masked(
        lf.values.view(), lf.uncovered.view(), vertex_valid);
    // Contour the uncovered cells of this level.
    const GridTransform tf{Vec3{0, 0, 0},
                           static_cast<double>(lf.cell_size)};
    TriMesh level_mesh = extract_isosurface(verts.view(), iso, tf, l,
                                            lf.uncovered.view());
    mesh.append(level_mesh);
  }
  return mesh;
}

namespace {

/// Build the dual-cell validity mask for one level: a dual cube whose
/// corners are the 8 cells [i..i+1]x[j..j+1]x[k..k+1]. With switching
/// cells, a cube is valid when all corners have data and at least one is
/// uncovered (the redundant coarse data bridges into the fine region);
/// without, all corners must be uncovered.
Array3<std::uint8_t> dual_mask(const LevelField& lf, bool switching) {
  const Shape3 cs = lf.values.shape();
  const Shape3 ds{std::max<std::int64_t>(cs.nx - 1, 1),
                  std::max<std::int64_t>(cs.ny - 1, 1),
                  std::max<std::int64_t>(cs.nz - 1, 1)};
  Array3<std::uint8_t> mask(ds, 0);
  auto mv = mask.view();
  auto has = lf.has_data.view();
  auto unc = lf.uncovered.view();
  parallel_for(ds.nz, [&](std::int64_t k) {
    for (std::int64_t j = 0; j < ds.ny; ++j)
      for (std::int64_t i = 0; i < ds.nx; ++i) {
        bool all_data = true, all_unc = true, any_unc = false;
        for (int c = 0; c < 8; ++c) {
          const std::int64_t ci = i + (c & 1);
          const std::int64_t cj = j + ((c >> 1) & 1);
          const std::int64_t ck = k + ((c >> 2) & 1);
          if (ci >= cs.nx || cj >= cs.ny || ck >= cs.nz) {
            all_data = false;
            all_unc = false;
            continue;
          }
          if (!has(ci, cj, ck)) all_data = false;
          if (unc(ci, cj, ck)) any_unc = true;
          else all_unc = false;
        }
        const bool ok = switching ? (all_data && any_unc) : all_unc;
        mv(i, j, k) = ok ? 1 : 0;
      }
  });
  return mask;
}

}  // namespace

TriMesh dualcell_isosurface(const AmrHierarchy& hier, double iso,
                            bool switching_cells) {
  TriMesh mesh;
  const auto fields = rasterize_levels(hier);
  for (int l = 0; l < hier.num_levels(); ++l) {
    const LevelField& lf = fields[static_cast<std::size_t>(l)];
    const Shape3 cs = lf.values.shape();
    if (cs.nx < 2 || cs.ny < 2 || cs.nz < 2) continue;
    Array3<std::uint8_t> mask = dual_mask(lf, switching_cells);
    // Dual nodes sit at cell centers: origin offset of half a cell.
    const double h = static_cast<double>(lf.cell_size);
    const GridTransform tf{Vec3{0.5 * h, 0.5 * h, 0.5 * h}, h};
    TriMesh level_mesh =
        extract_isosurface(lf.values.view(), iso, tf, l, mask.view());
    mesh.append(level_mesh);
  }
  return mesh;
}

TriMesh amr_isosurface(const AmrHierarchy& hier, double iso,
                       VisMethod method) {
  switch (method) {
    case VisMethod::kResampling:
      return resampling_isosurface(hier, iso);
    case VisMethod::kDualCell:
      return dualcell_isosurface(hier, iso, false);
    case VisMethod::kDualCellSwitching:
      return dualcell_isosurface(hier, iso, true);
  }
  throw Error("amr_isosurface: bad method");
}

// ------------------------- streamed pipeline ---------------------------

namespace {

using compress::AmrCompressed;
using compress::ChunkedCompressor;
using compress::Compressor;

/// Value range accumulated from per-tile container stats; `any` is false
/// while nothing contributed (a slab with no stored cells).
struct VRange {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  bool any = false;

  void add(double l, double h) {
    lo = std::min(lo, l);
    hi = std::max(hi, h);
    any = true;
  }
  void add(const VRange& o) {
    if (o.any) add(o.lo, o.hi);
  }
};

/// Could a cube whose values lie in `r` survive the extraction
/// quick-reject (some value > iso, some <= iso)? Mirrors the reject
/// exactly: kept cubes have max > iso and min <= iso. The caller's
/// ranges bound DECODED values already — exact v4 bounds served raw,
/// pre-v4 original-value stats widened by the codec's abs_eb when the
/// plan fills its LevelTiles — and both vertex averages (re-sampling)
/// and raw cell values (dual) stay inside that hull.
bool straddles(const VRange& r, double iso) {
  return r.any && r.lo <= iso && iso < r.hi;
}

/// Sweep-local decoded-tile LRU (used when no shared cache is given):
/// retains tiles that span bricks the sweep has not reached yet, so a
/// tile crossing brick seams is decoded once, under a hard byte budget
/// of `lru_tiles` worst-case tiles. MRU at the back; an entry larger
/// than the whole budget is simply not retained (bypass).
class SweepTileLru {
 public:
  explicit SweepTileLru(std::size_t budget) : budget_(budget) {}

  /// The decoded tile keyed (patch, slot), refreshed to MRU; null miss.
  std::shared_ptr<const Array3<double>> lookup(std::size_t patch,
                                               std::int64_t slot) {
    const auto it = index_.find({patch, slot});
    if (it == index_.end()) return nullptr;
    order_.splice(order_.end(), order_, it->second);
    return it->second->data;
  }

  void insert(std::size_t patch, std::int64_t slot,
              std::shared_ptr<const Array3<double>> data) {
    const std::size_t n =
        static_cast<std::size_t>(data->size()) * sizeof(double);
    if (n > budget_) return;  // would evict everything else: bypass
    order_.push_back(Entry{{patch, slot}, std::move(data), n});
    index_[order_.back().key] = std::prev(order_.end());
    bytes_ += n;
    while (bytes_ > budget_) {
      index_.erase(order_.front().key);
      bytes_ -= order_.front().bytes;
      order_.pop_front();
    }
  }

  [[nodiscard]] int entries() const {
    return static_cast<int>(order_.size());
  }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }

 private:
  struct Entry {
    std::pair<std::size_t, std::int64_t> key;
    std::shared_ptr<const Array3<double>> data;
    std::size_t bytes = 0;
  };
  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::list<Entry> order_;  ///< LRU at the front, MRU at the back
  std::map<std::pair<std::size_t, std::int64_t>,
           std::list<Entry>::iterator>
      index_;
};

/// Value planes saved off a finished brick for the halo cells of its
/// up-order neighbors: the last two cell planes toward +x/+y/+z over the
/// brick's full extent in the other axes. Shells of adjacent bricks may
/// overlap; overlapping cells hold identical bytes (same decoded
/// source), so halo fill just copies every stored shell of every
/// low-side neighbor, in any order.
struct BrickShell {
  amr::Box box;  ///< global cell box of the saved planes
  Array3<double> values;
};

/// One emitted brick's triangles, re-interleavable into the global
/// (k; j; i) emission order: anchor row r = (k - ak0) * nj + (j - aj0)
/// owns triangles [rows.row_begin[r], rows.row_begin[r + 1]).
struct BrickMesh {
  RowSpanMesh rows;
  std::int64_t ak0 = 0, aj0 = 0, nj = 0;
};

/// One cullable decode unit of a level: a container tile of a chunked
/// patch (index >= 0) or a whole plain-blob patch (index -1, range
/// unknown). Boxes are in LEVEL index space. Face-slab ranges default to
/// the whole-tile range when the container predates v3 (every slab is a
/// subset of it — conservative, never wrong).
struct LevelTile {
  std::size_t patch = 0;
  std::int64_t index = -1;
  amr::Box box;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  compress::TileFaceStats faces{};
  bool decode = true;
};

/// Tile-grid view of one chunked patch (tiles in slot order, x fastest).
struct PatchGridInfo {
  bool grid = false;  ///< block tests applicable (grid with safe extents)
  std::size_t first = 0;  ///< index of slot 0 in the level tile list
  std::int64_t tnx = 0, tny = 0, tnz = 0;
};

/// Everything the per-level sweep needs in one place.
struct LevelSweep {
  const AmrCompressed* compressed = nullptr;
  const Compressor* comp = nullptr;
  int level = 0;
  amr::Box dom;
  Shape3 ds{};
  std::int64_t cell_size = 1;
  bool switching = false;
  StreamedIsoOptions options{};
  StreamedIsoStats* stats = nullptr;
};

/// Decoded — and, below the finest level of a mean-fill hierarchy,
/// synchronized — values of `level` over `box`. Cells outside any patch
/// stay 0 (callers only read patch cells). Recursion mirrors the
/// finest-to-coarse cascade of synchronize_coarse_from_fine.
Array3<double> synced_level_values(const LevelSweep& ls, int level,
                                   const amr::Box& box);

/// For every `level` cell inside `target` that is covered by a level+1
/// patch AND lies inside a level patch, hand `write` the synchronized
/// average the full-inflate path would produce there. Replicates
/// coarsen_average cell-for-cell (same summand order, same 1/(r^3)
/// factor) so the rebuilt values are bit-identical.
template <typename Write>
void sync_covered(const LevelSweep& ls, int level, const amr::Box& target,
                  const Write& write) {
  const AmrCompressed& c = *ls.compressed;
  const std::int64_t rr = c.ref_ratio;
  const auto& fine_boxes = c.boxes[static_cast<std::size_t>(level) + 1];
  const auto& coarse_boxes = c.boxes[static_cast<std::size_t>(level)];
  for (const Box& fb : fine_boxes) {
    const Shape3 fs = fb.shape();
    const std::int64_t rx = fs.nx == 1 ? 1 : rr;
    const std::int64_t ry = fs.ny == 1 ? 1 : rr;
    const std::int64_t rz = fs.nz == 1 ? 1 : rr;
    // The full-inflate path would throw from coarsen_average on a
    // non-divisible patch; a misaligned origin would silently corrupt it
    // there, so it is rejected here rather than reproduced.
    AMRVIS_REQUIRE_MSG(
        (fs.nx == 1 || fs.nx % rr == 0) && (fs.ny == 1 || fs.ny % rr == 0) &&
            (fs.nz == 1 || fs.nz % rr == 0),
        "coarsen_average: extent not divisible by ratio");
    AMRVIS_REQUIRE_MSG(
        (rx == 1 || amr::floor_div(fb.lo().x, rr) * rr == fb.lo().x) &&
            (ry == 1 || amr::floor_div(fb.lo().y, rr) * rr == fb.lo().y) &&
            (rz == 1 || amr::floor_div(fb.lo().z, rr) * rr == fb.lo().z),
        "streamed iso: fine patch origin not aligned to the refinement "
        "ratio");
    const IntVect rvec{rx, ry, rz};
    const Box cb = fb.coarsen(rr);
    const double inv = 1.0 / static_cast<double>(rx * ry * rz);
    for (const Box& pb : coarse_boxes) {
      auto ov = cb.intersect(pb);
      if (ov) ov = ov->intersect(target);
      if (!ov) continue;
      // Fine cells feeding the overlap: fb.lo + (c - cb.lo)*r + [0, r).
      const Box need{fb.lo() + (ov->lo() - cb.lo()) * rvec,
                     fb.lo() + (ov->hi() - cb.lo()) * rvec + rvec -
                         IntVect::uniform(1)};
      const Array3<double> fine = synced_level_values(ls, level + 1, need);
      for (std::int64_t cz = ov->lo().z; cz <= ov->hi().z; ++cz)
        for (std::int64_t cy = ov->lo().y; cy <= ov->hi().y; ++cy)
          for (std::int64_t cx = ov->lo().x; cx <= ov->hi().x; ++cx) {
            const IntVect base =
                fb.lo() +
                (IntVect{cx, cy, cz} - cb.lo()) * rvec - need.lo();
            double sum = 0.0;
            for (std::int64_t dz = 0; dz < rz; ++dz)
              for (std::int64_t dy = 0; dy < ry; ++dy)
                for (std::int64_t dx = 0; dx < rx; ++dx)
                  sum += fine(base.x + dx, base.y + dy, base.z + dz);
            write(IntVect{cx, cy, cz}, sum * inv);
          }
    }
  }
}

Array3<double> synced_level_values(const LevelSweep& ls, int level,
                                   const amr::Box& box) {
  Array3<double> out(box.shape(), 0.0);
  compress::RegionDecodeStats rs;
  compress::LevelReadOptions read;
  read.cancel = ls.options.cancel;
  const auto rps = compress::decompress_level_region(
      *ls.compressed, *ls.comp, level, box, &rs, ls.options.cache, read);
  if (ls.stats != nullptr) {
    ls.stats->tiles_decoded += rs.tiles_decoded;
    ls.stats->cache_hits += rs.cache_hits;
  }
  for (const auto& rp : rps) {
    const Shape3 os = rp.box.shape();
    for (std::int64_t dz = 0; dz < os.nz; ++dz)
      for (std::int64_t dy = 0; dy < os.ny; ++dy)
        std::memcpy(&out(rp.box.lo().x - box.lo().x,
                         rp.box.lo().y - box.lo().y + dy,
                         rp.box.lo().z - box.lo().z + dz),
                    &rp.data(0, dy, dz),
                    static_cast<std::size_t>(os.nx) * sizeof(double));
  }
  if (static_cast<std::size_t>(level) + 1 < ls.compressed->levels.size())
    sync_covered(ls, level, box, [&](IntVect cc, double v) {
      const IntVect o = cc - box.lo();
      out(o.x, o.y, o.z) = v;
    });
  return out;
}

/// Streamed sweep of one level; appends its triangles to `mesh` in the
/// exact order the full-inflate pipeline would emit them.
void sweep_level(const LevelSweep& ls, VisMethod method, double iso,
                 TriMesh& mesh) {
  const AmrCompressed& c = *ls.compressed;
  const Shape3 ds = ls.ds;
  const bool resampling = method == VisMethod::kResampling;
  if (!resampling && (ds.nx < 2 || ds.ny < 2 || ds.nz < 2))
    return;  // the full dual-cell path skips such levels too

  // ---- planning: the cullable tile set of this level ----
  const auto& boxes = c.boxes[static_cast<std::size_t>(ls.level)];
  const auto& patches = c.levels[static_cast<std::size_t>(ls.level)].patches;
  const auto* chunked_codec = dynamic_cast<const ChunkedCompressor*>(ls.comp);
  // Mean-fill rebuilds covered coarse values from fine data, which the
  // stored per-tile stats do not bound — stats are unusable there.
  const bool stats_usable =
      !(ls.switching &&
        c.handling == compress::RedundantHandling::kMeanFill &&
        static_cast<std::size_t>(ls.level) + 1 < c.levels.size());

  std::vector<LevelTile> tiles;
  std::vector<PatchGridInfo> pgrids(boxes.size());
  // Parsed container headers of the tiled patches, kept alive for the
  // whole sweep: the brick loop below decodes tile payloads through
  // them (the compressed blobs outlive the sweep inside `c`).
  std::vector<std::optional<compress::detail::ParsedContainer>> parsed(
      boxes.size());
  // Per patch: does its container carry exact decoded-value stats (v4)?
  std::vector<char> patch_exact(boxes.size(), 0);
  std::optional<ChunkedCompressor> wrap;
  const ChunkedCompressor* cc = chunked_codec;
  for (std::size_t p = 0; p < boxes.size(); ++p) {
    const Box& pb = boxes[p];
    const bool tiled = chunked_codec != nullptr ||
                       ChunkedCompressor::is_chunked_blob(patches[p].blob);
    if (tiled) {
      if (cc == nullptr) cc = &wrap.emplace(*ls.comp);
      // One header parse serves the tile boxes, the stats, the face
      // table AND the sweep's per-brick decodes (no payload touched
      // here).
      parsed[p] = compress::detail::parse_container(patches[p].blob,
                                                    cc->inner().name());
      const auto& pc = *parsed[p];
      // Range semantics go through the shared stats view: v4 ranges
      // bound decoded values and are served raw; pre-v4 ranges bound
      // original values and are widened by the hierarchy's abs_eb HERE,
      // at fill — the straddle tests below then need no widening of
      // their own.
      const compress::TileStatsView view(pc, c.abs_eb);
      patch_exact[p] = view.exact() ? 1 : 0;
      PatchGridInfo& g = pgrids[p];
      g.first = tiles.size();
      // Only v3+ stats are trusted by the cull: the pre-v3 writers
      // computed ranges by SKIPPING NaN cells, and a NaN-cornered
      // marching cube can emit geometry a finite range never admits —
      // a v1/v2 patch blob therefore decodes whole (conservative,
      // mesh-identical) rather than risking dropped triangles. (v3+
      // writers record the unbounded range for NaN-holding regions.)
      const bool trust_stats = stats_usable && !pc.faces.empty();
      for (std::int64_t t = 0; t < pc.ntiles; ++t) {
        LevelTile lt;
        lt.patch = p;
        lt.index = t;
        lt.box = compress::detail::tile_cell_box(
                     compress::detail::tile_box(t, pc.grid, pc.shape,
                                                pc.tile))
                     .shift(pb.lo());
        if (trust_stats) {
          const compress::TileStats st = view.tile_range(t);
          lt.lo = st.min;
          lt.hi = st.max;
          for (int f = 0; f < 6; ++f)
            lt.faces[static_cast<std::size_t>(f)] = view.face_range(t, f);
        } else {
          lt.faces.fill({lt.lo, lt.hi});  // unbounded: always decoded
        }
        tiles.push_back(lt);
      }
      g.tnx = pc.grid.tnx;
      g.tny = pc.grid.tny;
      g.tnz = pc.grid.tnz;
      // Block tests assume a cell window spans at most two tiles per
      // axis: true when interior tile extents are >= 2 (only the last
      // tile of an axis is ever clipped).
      g.grid = (g.tnx < 2 || pc.tile.nx >= 2) &&
               (g.tny < 2 || pc.tile.ny >= 2) &&
               (g.tnz < 2 || pc.tile.nz >= 2);
    } else {
      LevelTile lt;
      lt.patch = p;
      lt.box = pb;
      tiles.push_back(lt);  // range unknown: always decoded
    }
  }
  if (ls.stats != nullptr)
    ls.stats->tiles_total += static_cast<std::int64_t>(tiles.size());

  // Value cull. A cube can only straddle the isovalue if the union of
  // the value ranges of the regions its cell window touches does —
  // exact decoded-value ranges on a v4 container, eb-widened stats
  // otherwise (the plan pre-widened them at fill). Within a patch grid
  // the window spans at most two tiles per axis, and each tile's share
  // of a seam/edge/corner window lies in its two-layer face slabs — so
  // testing every face pair, edge quad and corner octet against the
  // respective face-slab ranges (v3+ stats; whole-tile ranges for older
  // containers) and decoding every participant of a straddling test
  // guarantees every potentially contributing cube is fully decoded.
  // Cubes touching a skipped tile are provably silent and masked off
  // below. Windows crossing PATCH boundaries (and patches whose tiling
  // defeats the two-tile assumption) fall back to the grow(2)
  // whole-range union.
  if (!ls.options.value_cull) {
    for (LevelTile& t : tiles) t.decode = true;
  } else {
    for (LevelTile& t : tiles)
      t.decode = straddles(VRange{t.lo, t.hi, true}, iso);

    // Range of a tile's block-facing region: intersection of the face
    // ranges toward the block, one per spanned axis (the region lies in
    // each of those slabs). An empty intersection means the region holds
    // no non-NaN value and contributes nothing.
    auto face_bound = [&](const LevelTile& t, int fx, int fy,
                          int fz) -> VRange {
      double lo = t.lo, hi = t.hi;
      auto clip = [&](const compress::TileStats& st) {
        lo = std::max(lo, st.min);
        hi = std::min(hi, st.max);
      };
      if (fx >= 0) clip(t.faces[static_cast<std::size_t>(fx)]);
      if (fy >= 0) clip(t.faces[static_cast<std::size_t>(fy)]);
      if (fz >= 0) clip(t.faces[static_cast<std::size_t>(fz)]);
      if (lo > hi) return {};
      return {lo, hi, true};
    };
    for (std::size_t p = 0; p < boxes.size(); ++p) {
      const PatchGridInfo& g = pgrids[p];
      if (!g.grid) continue;
      auto at = [&](std::int64_t i, std::int64_t j,
                    std::int64_t k) -> LevelTile& {
        return tiles[g.first + static_cast<std::size_t>(
                                   (k * g.tny + j) * g.tnx + i)];
      };
      // Every face pair (1 spanned axis), edge quad (2) and corner
      // octet (3) of adjacent tiles: union the block-facing bounds; if
      // they straddle, decode every participant.
      for (int ax = 0; ax <= (g.tnx > 1 ? 1 : 0); ++ax)
        for (int ay = 0; ay <= (g.tny > 1 ? 1 : 0); ++ay)
          for (int az = 0; az <= (g.tnz > 1 ? 1 : 0); ++az) {
            if (ax + ay + az == 0) continue;  // own-range test done
            for (std::int64_t bz = 0; bz + az < g.tnz; ++bz)
              for (std::int64_t by = 0; by + ay < g.tny; ++by)
                for (std::int64_t bx = 0; bx + ax < g.tnx; ++bx) {
                  VRange u;
                  for (int ox = 0; ox <= ax; ++ox)
                    for (int oy = 0; oy <= ay; ++oy)
                      for (int oz = 0; oz <= az; ++oz) {
                        const LevelTile& t =
                            at(bx + ox, by + oy, bz + oz);
                        u.add(face_bound(
                            t, ax ? (ox ? 0 : 1) : -1,
                            ay ? (oy ? 2 : 3) : -1,
                            az ? (oz ? 4 : 5) : -1));
                      }
                  if (!straddles(u, iso)) continue;
                  for (int ox = 0; ox <= ax; ++ox)
                    for (int oy = 0; oy <= ay; ++oy)
                      for (int oz = 0; oz <= az; ++oz)
                        at(bx + ox, by + oy, bz + oz).decode = true;
                }
          }
    }
    // Cross-patch seams and non-grid tilings: conservative whole-range
    // neighborhood union, applied to every tile near a foreign tile.
    // A single grid-tiled patch (the flagship whole-domain container)
    // has neither, so the quadratic scan is skipped entirely.
    const bool need_fallback_scan =
        boxes.size() > 1 || (!pgrids.empty() && !pgrids[0].grid);
    if (need_fallback_scan) {
      for (LevelTile& t : tiles) {
        if (t.decode) continue;
        const Box probe = t.box.grow(2);
        bool fallback = !pgrids[t.patch].grid && t.index >= 0;
        if (!fallback) {
          for (const LevelTile& o : tiles)
            if (o.patch != t.patch && o.box.intersects(probe)) {
              fallback = true;
              break;
            }
        }
        if (!fallback) continue;
        VRange u;
        for (const LevelTile& o : tiles)
          if (o.box.intersects(probe)) u.add(o.lo, o.hi);
        t.decode = straddles(u, iso);
      }
    }
  }
  if (ls.stats != nullptr) {
    for (const LevelTile& t : tiles)
      if (t.index >= 0 && !t.decode)
        ++(patch_exact[t.patch] != 0 ? ls.stats->tiles_culled_exact
                                     : ls.stats->tiles_culled_conservative);
  }

  const bool has_finer =
      static_cast<std::size_t>(ls.level) + 1 < c.levels.size();
  const bool mean_fill_sync =
      ls.switching && has_finer &&
      c.handling == compress::RedundantHandling::kMeanFill;

  // ---- sweep geometry: bricks follow the container tile grid in xy
  // (overridable via brick_nx/brick_ny), slab_nz in z. Only the last
  // brick of an axis is ever clipped, so interior bricks keep extents
  // >= 2 — the seam-shell coverage proof relies on that. ----
  std::int64_t tile_x = 0, tile_y = 0;
  for (std::size_t p = 0; p < boxes.size(); ++p)
    if (parsed[p]) {
      tile_x = parsed[p]->tile.nx;
      tile_y = parsed[p]->tile.ny;
      break;
    }
  auto brick_extent = [](std::int64_t opt, std::int64_t tile_ext,
                         std::int64_t dom_ext) {
    const std::int64_t b =
        opt > 0 ? opt : (tile_ext > 0 ? tile_ext : dom_ext);
    return std::max<std::int64_t>(2, b);
  };
  const std::int64_t Bx = brick_extent(ls.options.brick_nx, tile_x, ds.nx);
  const std::int64_t By = brick_extent(ls.options.brick_ny, tile_y, ds.ny);
  const std::int64_t Bz = std::max<std::int64_t>(2, ls.options.slab_nz);
  const std::int64_t nbx = (ds.nx + Bx - 1) / Bx;
  const std::int64_t nby = (ds.ny + By - 1) / By;
  const std::int64_t nbz = (ds.nz + Bz - 1) / Bz;
  auto brick_of = [&](std::int64_t bx, std::int64_t by, std::int64_t bz) {
    return (bz * nby + by) * nbx + bx;
  };
  const double h = static_cast<double>(ls.cell_size);

  // Which planned tiles touch which brick's working window (the brick
  // grown two cells to the LOW side): tile ∩ window(b) != ∅ iff
  // tile-grown-high-by-2 ∩ brick != ∅.
  std::vector<std::vector<std::size_t>> brick_paint(
      static_cast<std::size_t>(nbx * nby * nbz));
  std::vector<char> slab_decode(static_cast<std::size_t>(nbz), 0);
  for (std::size_t ti = 0; ti < tiles.size(); ++ti) {
    const LevelTile& t = tiles[ti];
    if (!t.decode) continue;
    const IntVect lo = t.box.lo() - ls.dom.lo();  // level-local
    const IntVect hi = t.box.hi() - ls.dom.lo();
    const std::int64_t bx1 = std::min((hi.x + 2) / Bx, nbx - 1);
    const std::int64_t by1 = std::min((hi.y + 2) / By, nby - 1);
    const std::int64_t bz1 = std::min((hi.z + 2) / Bz, nbz - 1);
    for (std::int64_t bz = lo.z / Bz; bz <= bz1; ++bz)
      for (std::int64_t by = lo.y / By; by <= by1; ++by)
        for (std::int64_t bx = lo.x / Bx; bx <= bx1; ++bx)
          brick_paint[static_cast<std::size_t>(brick_of(bx, by, bz))]
              .push_back(ti);
    for (std::int64_t bz = lo.z / Bz; bz <= hi.z / Bz; ++bz)
      slab_decode[static_cast<std::size_t>(bz)] = 1;
  }
  if (ls.stats != nullptr) {
    ls.stats->slabs_total += nbz;
    for (const char d : slab_decode)
      ls.stats->slabs_decoded += d != 0 ? 1 : 0;
  }

  // Plain patch blobs have no partial decode: inflate each at most once
  // per sweep (they are the patches the chunk policy deemed small
  // enough not to tile). Without a shared service cache, a sweep-local
  // unbounded store plays that role; chunked tiles instead ride the
  // byte-bounded LRU below, preserving the O(k·tile) decoded-memory
  // contract.
  std::optional<compress::TileCache> local_store;
  std::optional<compress::AmrTileCache> local_cache;
  const bool shared = ls.options.cache != nullptr;
  if (!shared) {
    local_store.emplace(compress::TileCache::kUnbounded);
    local_cache.emplace(*local_store, *ls.compressed);
  }
  const compress::AmrTileCache& pcache =
      shared ? *ls.options.cache : *local_cache;

  // LRU budget: lru_tiles worst-case decoded tiles of this level.
  std::size_t max_tile_bytes = 0;
  for (std::size_t p = 0; p < boxes.size(); ++p)
    if (parsed[p]) {
      const auto& tn = parsed[p]->tile;
      max_tile_bytes = std::max(
          max_tile_bytes, static_cast<std::size_t>(tn.nx * tn.ny * tn.nz) *
                              sizeof(double));
    }
  SweepTileLru lru(static_cast<std::size_t>(std::max<std::int64_t>(
                       1, ls.options.lru_tiles)) *
                   max_tile_bytes);

  std::map<std::int64_t, BrickShell> shell_x, shell_y, shell_z;
  auto shell_bytes = [&] {
    std::size_t n = 0;
    for (const auto* m : {&shell_x, &shell_y, &shell_z})
      for (const auto& kv : *m)
        n += static_cast<std::size_t>(kv.second.values.size()) *
             sizeof(double);
    return n;
  };
  std::vector<BrickMesh> emitted(static_cast<std::size_t>(nbx * nby * nbz));
  // ---- sweep: tile columns (bx, by) in row order, bricks of a column
  // bottom-up. Each brick paints its masks window-wide, fills halo
  // values from its low neighbors' shells, decodes its planned tiles,
  // and row-span-extracts the anchors it owns; the rows are merged into
  // global emission order once the level is complete. ----
  for (std::int64_t by = 0; by < nby; ++by) {
    for (std::int64_t bx = 0; bx < nbx; ++bx) {
      for (std::int64_t bz = 0; bz < nbz; ++bz) {
        [&] {
          const std::int64_t bi = brick_of(bx, by, bz);
          const auto& paint = brick_paint[static_cast<std::size_t>(bi)];
          // Brick cells, level-local inclusive.
          const std::int64_t c0x = bx * Bx;
          const std::int64_t c1x = std::min(c0x + Bx, ds.nx) - 1;
          const std::int64_t c0y = by * By;
          const std::int64_t c1y = std::min(c0y + By, ds.ny) - 1;
          const std::int64_t c0z = bz * Bz;
          const std::int64_t c1z = std::min(c0z + Bz, ds.nz) - 1;
          const Box brick_g{ls.dom.lo() + IntVect{c0x, c0y, c0z},
                            ls.dom.lo() + IntVect{c1x, c1y, c1z}};
          // Anchors this brick owns: the seam layer into each low
          // neighbor plus the interior (the high seam belongs to the
          // next brick, whose window sees both).
          const std::int64_t ai0 = bx == 0 ? 0 : c0x - 1;
          const std::int64_t ai1 =
              bx == nbx - 1 ? (resampling ? ds.nx - 1 : ds.nx - 2)
                            : c1x - 1;
          const std::int64_t aj0 = by == 0 ? 0 : c0y - 1;
          const std::int64_t aj1 =
              by == nby - 1 ? (resampling ? ds.ny - 1 : ds.ny - 2)
                            : c1y - 1;
          const std::int64_t ak0 = bz == 0 ? 0 : c0z - 1;
          const std::int64_t ak1 =
              bz == nbz - 1 ? (resampling ? ds.nz - 1 : ds.nz - 2)
                            : c1z - 1;
          bool has_work = false;
          for (const std::size_t ti : paint)
            if (tiles[ti].box.intersects(brick_g)) {
              has_work = true;
              break;
            }
          // No decode for this or any later brick, and provably nothing
          // to emit (an emitting cube needs a decoded window cell — see
          // the cull proof): skip the brick outright.
          const bool emit_rows =
              !paint.empty() && ai0 <= ai1 && aj0 <= aj1 && ak0 <= ak1;
          if (!has_work && !emit_rows) return;
          if (ls.options.cancel != nullptr) ls.options.cancel->check();

          // Working window: the brick plus up to two halo cell planes
          // on each low side.
          const std::int64_t w0x = std::max<std::int64_t>(c0x - 2, 0);
          const std::int64_t w0y = std::max<std::int64_t>(c0y - 2, 0);
          const std::int64_t w0z = std::max<std::int64_t>(c0z - 2, 0);
          const Shape3 ws{c1x - w0x + 1, c1y - w0y + 1, c1z - w0z + 1};
          const Box win_g{ls.dom.lo() + IntVect{w0x, w0y, w0z},
                          ls.dom.lo() + IntVect{c1x, c1y, c1z}};
          Array3<double> wv(ws, 0.0);
          Array3<std::uint8_t> wh(ws, 0), wu(ws, 0), wd(ws, 0);
          const IntVect w0g = win_g.lo();

          const std::size_t window_bytes =
              static_cast<std::size_t>(wv.size()) * (sizeof(double) + 3);
          auto note_bytes = [&](std::size_t extra) {
            if (ls.stats == nullptr) return;
            std::size_t live =
                window_bytes + shell_bytes() + lru.bytes() + extra;
            if (local_store) live += local_store->counters().bytes;
            ls.stats->peak_live_bytes =
                std::max(ls.stats->peak_live_bytes, live);
          };
          auto note_tiles = [&](int held) {
            if (ls.stats == nullptr) return;
            ls.stats->peak_live_tiles =
                std::max(ls.stats->peak_live_tiles, lru.entries() + held);
          };

          // Masks first — they cost no decode and exist window-wide.
          auto paint_mask = [&](Array3<std::uint8_t>& mask, const Box& b,
                                std::uint8_t v) {
            const auto ov = b.intersect(win_g);
            if (!ov) return;
            for (std::int64_t k = ov->lo().z; k <= ov->hi().z; ++k)
              for (std::int64_t j = ov->lo().y; j <= ov->hi().y; ++j)
                for (std::int64_t i = ov->lo().x; i <= ov->hi().x; ++i)
                  mask(i - w0g.x, j - w0g.y, k - w0g.z) = v;
          };
          for (const Box& pb : boxes) paint_mask(wh, pb, 1);
          for (std::int64_t f = 0; f < wh.size(); ++f) wu[f] = wh[f];
          if (has_finer) {
            for (const Box& fb :
                 c.boxes[static_cast<std::size_t>(ls.level) + 1])
              paint_mask(wu, fb.coarsen(c.ref_ratio), 0);
          }
          for (const std::size_t ti : paint)
            paint_mask(wd, tiles[ti].box, 1);

          // Halo values: copy every stored shell of every low-side
          // neighbor intersecting the window. Overlapping shells hold
          // identical bytes, so order is irrelevant; halo cells no
          // shell covers are undecoded or data-free and vetoed/masked
          // below.
          auto copy_rows = [&](const Array3<double>& src,
                               const Box& src_box) {
            const auto ov = src_box.intersect(win_g);
            if (!ov) return;
            const Shape3 os = ov->shape();
            for (std::int64_t dz = 0; dz < os.nz; ++dz)
              for (std::int64_t dy = 0; dy < os.ny; ++dy)
                std::memcpy(
                    &wv(ov->lo().x - w0g.x, ov->lo().y - w0g.y + dy,
                        ov->lo().z - w0g.z + dz),
                    &src(ov->lo().x - src_box.lo().x,
                         ov->lo().y - src_box.lo().y + dy,
                         ov->lo().z - src_box.lo().z + dz),
                    static_cast<std::size_t>(os.nx) * sizeof(double));
          };
          for (int dz = -1; dz <= 0; ++dz)
            for (int dy = -1; dy <= 0; ++dy)
              for (int dx = -1; dx <= 0; ++dx) {
                if (dx == 0 && dy == 0 && dz == 0) continue;
                if (bx + dx < 0 || by + dy < 0 || bz + dz < 0) continue;
                const std::int64_t nid =
                    brick_of(bx + dx, by + dy, bz + dz);
                for (const auto* m : {&shell_x, &shell_y, &shell_z}) {
                  const auto it = m->find(nid);
                  if (it != m->end())
                    copy_rows(it->second.values, it->second.box);
                }
              }

          // Decode the planned tiles intersecting the brick proper
          // (halo-only tiles arrive through shells): serve from the
          // shared cache / sweep LRU, copy the window rows, retain in
          // the LRU only when the tile still spans an unswept brick.
          for (const std::size_t ti : paint) {
            const LevelTile& t = tiles[ti];
            if (!t.box.intersects(brick_g)) continue;
            if (ls.options.cancel != nullptr) ls.options.cancel->check();
            if (t.index < 0) {
              // Plain blob: whole-patch inflate through the patch cache.
              const compress::TileCacheRef cref =
                  pcache.ref(ls.level, t.patch);
              bool was_hit = false;
              const auto full = cref.cache->get_or_decode(
                  cref.container, compress::TileCache::kWholeBlob,
                  [&] { return ls.comp->decompress(patches[t.patch].blob); },
                  &was_hit);
              AMRVIS_REQUIRE_MSG(
                  full->shape() == boxes[t.patch].shape(),
                  "streamed iso: patch shape does not match its box");
              if (ls.stats != nullptr)
                (was_hit ? ls.stats->cache_hits
                         : ls.stats->tiles_decoded) += 1;
              copy_rows(*full, t.box);
              note_bytes(0);
              continue;
            }
            const auto& pc = *parsed[t.patch];
            std::shared_ptr<const Array3<double>> data;
            bool resident = false;  // already owned by LRU/shared cache?
            auto run = [&] {
              return compress::detail::decode_tile(
                  cc->inner(),
                  pc.tiles[static_cast<std::size_t>(t.index)]);
            };
            if (shared) {
              const compress::TileCacheRef cref =
                  pcache.ref(ls.level, t.patch);
              bool was_hit = false;
              try {
                data = cref.cache->get_or_decode(cref.container, t.index,
                                                 run, &was_hit);
              } catch (const Error& e) {
                throw e.with_context({cref.container, t.index, -1});
              }
              if (ls.stats != nullptr)
                (was_hit ? ls.stats->cache_hits
                         : ls.stats->tiles_decoded) += 1;
            } else {
              data = lru.lookup(t.patch, t.index);
              if (data) {
                resident = true;
                if (ls.stats != nullptr) ls.stats->cache_hits += 1;
              } else {
                try {
                  data = std::make_shared<const Array3<double>>(run());
                } catch (const Error& e) {
                  throw e.with_context({0, t.index, -1});
                }
                if (ls.stats != nullptr) ls.stats->tiles_decoded += 1;
              }
            }
            AMRVIS_CHECK(ErrorCode::kDecodeFailure,
                         data->shape() == t.box.shape(),
                         "streamed iso: tile shape does not match its slot");
            if (!shared && !resident &&
                (t.box.hi().x > brick_g.hi().x ||
                 t.box.hi().y > brick_g.hi().y ||
                 t.box.hi().z > brick_g.hi().z)) {
              // Spans a brick the sweep has not reached: retain.
              lru.insert(t.patch, t.index, data);
              resident = true;
            }
            note_tiles(resident ? 0 : 1);
            note_bytes(resident ? 0
                                : static_cast<std::size_t>(data->size()) *
                                      sizeof(double));
            copy_rows(*data, t.box);
          }

          // Switching cells read the redundant coarse data; under
          // mean-fill the stored values there are placeholders, so
          // rebuild them from the fine level exactly like
          // synchronize_coarse_from_fine. Those levels never cull
          // (stats cannot bound rebuilt values), so the rebuilt cells
          // are always decoded cells.
          if (has_work && mean_fill_sync) {
            sync_covered(ls, ls.level, brick_g, [&](IntVect cell, double v) {
              wv(cell.x - w0g.x, cell.y - w0g.y, cell.z - w0g.z) = v;
            });
          }

          // Save the seam shells up-order neighbors will need (bricks
          // without decode work have no values a neighbor could read).
          if (has_work) {
            auto save_shell = [&](std::map<std::int64_t, BrickShell>& m,
                                  const Box& sb) {
              BrickShell s;
              s.box = sb;
              s.values = Array3<double>(sb.shape());
              const Shape3 os = sb.shape();
              for (std::int64_t dz = 0; dz < os.nz; ++dz)
                for (std::int64_t dy = 0; dy < os.ny; ++dy)
                  std::memcpy(&s.values(0, dy, dz),
                              &wv(sb.lo().x - w0g.x,
                                  sb.lo().y - w0g.y + dy,
                                  sb.lo().z - w0g.z + dz),
                              static_cast<std::size_t>(os.nx) *
                                  sizeof(double));
              m[bi] = std::move(s);
            };
            const IntVect g0 = brick_g.lo(), g1 = brick_g.hi();
            if (bx + 1 < nbx)
              save_shell(shell_x,
                         Box{{std::max(g1.x - 1, g0.x), g0.y, g0.z}, g1});
            if (by + 1 < nby)
              save_shell(shell_y,
                         Box{{g0.x, std::max(g1.y - 1, g0.y), g0.z}, g1});
            if (bz + 1 < nbz)
              save_shell(shell_z,
                         Box{{g0.x, g0.y, std::max(g1.z - 1, g0.z)}, g1});
          }

          if (!emit_rows) return;
          // A cell with data whose tile the cull skipped: any cube
          // whose window touches it is provably non-straddling — mask
          // it off.
          Array3<std::uint8_t> missing(ws, 0);
          for (std::int64_t f = 0; f < missing.size(); ++f)
            missing[f] =
                static_cast<std::uint8_t>(wh[f] != 0 && wd[f] == 0);
          const std::int64_t win = resampling ? 1 : 0;  // low reach
          auto window_clean = [&](std::int64_t i, std::int64_t j,
                                  std::int64_t kk) {
            const std::int64_t i0 = std::max<std::int64_t>(i - win, 0);
            const std::int64_t j0 = std::max<std::int64_t>(j - win, 0);
            const std::int64_t k0 = std::max<std::int64_t>(kk - win, 0);
            const std::int64_t i1 = std::min(i + 1, ws.nx - 1);
            const std::int64_t j1 = std::min(j + 1, ws.ny - 1);
            const std::int64_t k1 = std::min(kk + 1, ws.nz - 1);
            for (std::int64_t cz = k0; cz <= k1; ++cz)
              for (std::int64_t cy = j0; cy <= j1; ++cy)
                for (std::int64_t cx = i0; cx <= i1; ++cx)
                  if (missing(cx, cy, cz)) return false;
            return true;
          };

          BrickMesh& bm = emitted[static_cast<std::size_t>(bi)];
          bm.ak0 = ak0;
          bm.aj0 = aj0;
          bm.nj = aj1 - aj0 + 1;
          if (resampling) {
            Array3<std::uint8_t> vertex_valid;
            const Array3<double> verts = resample_to_vertices_masked(
                wv.view(), wu.view(), vertex_valid);
            // Extraction mask = uncovered anchors whose 3-cell windows
            // hold no missing cells (their vertex averages would read
            // them).
            Array3<std::uint8_t> cmask(ws, 0);
            parallel_for(ws.nz, [&](std::int64_t kk) {
              for (std::int64_t j = 0; j < ws.ny; ++j)
                for (std::int64_t i = 0; i < ws.nx; ++i)
                  cmask(i, j, kk) = static_cast<std::uint8_t>(
                      wu(i, j, kk) != 0 && window_clean(i, j, kk));
            });
            note_bytes(static_cast<std::size_t>(missing.size()) +
                       static_cast<std::size_t>(verts.size()) *
                           (sizeof(double) + 1) +
                       static_cast<std::size_t>(cmask.size()));
            const GridTransform tf{Vec3{static_cast<double>(w0x) * h,
                                        static_cast<double>(w0y) * h,
                                        static_cast<double>(w0z) * h},
                                   h};
            bm.rows = extract_isosurface_rows(
                verts.view(), iso, tf, ls.level, cmask.view(), ai0 - w0x,
                ai1 - w0x + 1, aj0 - w0y, aj1 - w0y + 1, ak0 - w0z,
                ak1 - w0z + 1);
          } else {
            // Dual mask over the window's cube grid: the dual_mask
            // corner rules (no clipping needed — every corner is
            // in-window for the anchors emitted here) plus the
            // missing-cell veto.
            const Shape3 ms{ws.nx - 1, ws.ny - 1, ws.nz - 1};
            Array3<std::uint8_t> dmask(ms, 0);
            auto mv = dmask.view();
            parallel_for(ms.nz, [&](std::int64_t kk) {
              for (std::int64_t j = 0; j < ms.ny; ++j)
                for (std::int64_t i = 0; i < ms.nx; ++i) {
                  bool all_data = true, all_unc = true, any_unc = false;
                  bool clean = true;
                  for (int cnr = 0; cnr < 8; ++cnr) {
                    const std::int64_t ci = i + (cnr & 1);
                    const std::int64_t cj = j + ((cnr >> 1) & 1);
                    const std::int64_t ck = kk + ((cnr >> 2) & 1);
                    if (!wh(ci, cj, ck)) all_data = false;
                    if (wu(ci, cj, ck)) any_unc = true;
                    else all_unc = false;
                    if (missing(ci, cj, ck)) clean = false;
                  }
                  const bool ok =
                      (ls.switching ? (all_data && any_unc) : all_unc) &&
                      clean;
                  mv(i, j, kk) = ok ? 1 : 0;
                }
            });
            note_bytes(static_cast<std::size_t>(missing.size()) +
                       static_cast<std::size_t>(dmask.size()));
            const GridTransform tf{
                Vec3{0.5 * h + static_cast<double>(w0x) * h,
                     0.5 * h + static_cast<double>(w0y) * h,
                     0.5 * h + static_cast<double>(w0z) * h},
                h};
            bm.rows = extract_isosurface_rows(
                wv.view(), iso, tf, ls.level, dmask.view(), ai0 - w0x,
                ai1 - w0x + 1, aj0 - w0y, aj1 - w0y + 1, ak0 - w0z,
                ak1 - w0z + 1);
          }
        }();
        // The +z shell of the brick below has no reader beyond this
        // brick: drop it before moving up the column.
        if (bz > 0) shell_z.erase(brick_of(bx, by, bz - 1));
      }
      // Shells whose last possible reader column — (cx+1, cy+1) for
      // +x/+y shells, clamped to the grid — is now done are dead.
      for (auto* m : {&shell_x, &shell_y, &shell_z}) {
        for (auto it = m->begin(); it != m->end();) {
          const std::int64_t id = it->first;
          const std::int64_t scx = (id % (nbx * nby)) % nbx;
          const std::int64_t scy = (id % (nbx * nby)) / nbx;
          const std::int64_t lx = std::min(scx + 1, nbx - 1);
          const std::int64_t ly = std::min(scy + 1, nby - 1);
          const bool done = ly < by || (ly == by && lx <= bx);
          it = done ? m->erase(it) : std::next(it);
        }
      }
    }
  }

  // ---- merge: re-interleave the bricks' row spans into the global
  // (k; j; i) emission order of the full-inflate pipeline. Triangle t
  // of a row-span mesh owns vertices [3t, 3t + 3), so spans re-append
  // cheaply. ----
  const std::int64_t Ktot = resampling ? ds.nz : ds.nz - 1;
  const std::int64_t Jtot = resampling ? ds.ny : ds.ny - 1;
  auto owner = [](std::int64_t a, std::int64_t n, std::int64_t B) {
    return std::min(a + 1, n - 1) / B;
  };
  std::size_t nverts = 0, ntris = 0;
  for (const BrickMesh& bm : emitted) {
    nverts += bm.rows.mesh.vertices.size();
    ntris += bm.rows.mesh.triangles.size();
  }
  mesh.vertices.reserve(mesh.vertices.size() + nverts);
  mesh.triangles.reserve(mesh.triangles.size() + ntris);
  for (std::int64_t k = 0; k < Ktot; ++k) {
    const std::int64_t bz = owner(k, ds.nz, Bz);
    for (std::int64_t j = 0; j < Jtot; ++j) {
      const std::int64_t by = owner(j, ds.ny, By);
      for (std::int64_t bx = 0; bx < nbx; ++bx) {
        const BrickMesh& bm =
            emitted[static_cast<std::size_t>(brick_of(bx, by, bz))];
        if (bm.rows.row_begin.empty()) continue;
        const std::size_t row = static_cast<std::size_t>(
            (k - bm.ak0) * bm.nj + (j - bm.aj0));
        for (std::size_t t = bm.rows.row_begin[row];
             t < bm.rows.row_begin[row + 1]; ++t) {
          const auto base =
              static_cast<std::uint32_t>(mesh.vertices.size());
          mesh.vertices.push_back(bm.rows.mesh.vertices[3 * t]);
          mesh.vertices.push_back(bm.rows.mesh.vertices[3 * t + 1]);
          mesh.vertices.push_back(bm.rows.mesh.vertices[3 * t + 2]);
          mesh.triangles.push_back(
              {{base, base + 1, base + 2},
               bm.rows.mesh.triangles[t].level});
        }
      }
    }
  }
}

}  // namespace

TriMesh amr_isosurface_streamed(const AmrCompressed& compressed,
                                const Compressor& comp, double iso,
                                VisMethod method,
                                const StreamedIsoOptions& options,
                                StreamedIsoStats* stats) {
  AMRVIS_REQUIRE_MSG(!compressed.levels.empty(),
                     "amr_isosurface_streamed: empty hierarchy");
  AMRVIS_REQUIRE_MSG(
      compress::codec_names_compatible(comp.name(),
                                       compressed.compressor_name),
                     "amr_isosurface_streamed: codec mismatch");
  OBS_SPAN("iso.streamed", {"levels",
                            static_cast<std::int64_t>(
                                compressed.levels.size())});
  // Sweep into a local stats block even when the caller passed none, so
  // the registry sees every streamed sweep's aggregate.
  StreamedIsoStats local{};
  StreamedIsoStats* agg = stats != nullptr ? stats : &local;
  *agg = {};
  TriMesh mesh;
  const int nlev = static_cast<int>(compressed.levels.size());
  for (int l = 0; l < nlev; ++l) {
    LevelSweep ls;
    ls.compressed = &compressed;
    ls.comp = &comp;
    ls.level = l;
    ls.dom = compressed.domains[static_cast<std::size_t>(l)];
    ls.ds = ls.dom.shape();
    std::int64_t r = 1;
    for (int i = l; i + 1 < nlev; ++i) r *= compressed.ref_ratio;
    ls.cell_size = r;
    ls.switching = method == VisMethod::kDualCellSwitching;
    ls.options = options;
    ls.stats = agg;
    sweep_level(ls, method, iso, mesh);
  }
  obs::counter("iso.tiles_decoded")
      .add(static_cast<std::uint64_t>(agg->tiles_decoded));
  obs::counter("iso.tiles_culled_exact")
      .add(static_cast<std::uint64_t>(agg->tiles_culled_exact));
  obs::counter("iso.tiles_culled_conservative")
      .add(static_cast<std::uint64_t>(agg->tiles_culled_conservative));
  obs::counter("iso.cache_hits")
      .add(static_cast<std::uint64_t>(agg->cache_hits));
  obs::counter("iso.slabs_decoded")
      .add(static_cast<std::uint64_t>(agg->slabs_decoded));
  obs::gauge("iso.peak_live_bytes")
      .set_max(static_cast<std::int64_t>(agg->peak_live_bytes));
  return mesh;
}

const char* vis_method_name(VisMethod method) {
  switch (method) {
    case VisMethod::kResampling:
      return "re-sampling";
    case VisMethod::kDualCell:
      return "dual-cell";
    case VisMethod::kDualCellSwitching:
      return "dual-cell+switch";
  }
  return "?";
}

}  // namespace amrvis::vis
