#pragma once
// The paper's two AMR iso-surface pipelines (§2.3–2.4, §3.1):
//
// Re-sampling + marching cubes (basic): each level's cell data is diffused
// to vertices (tri-linear re-sampling) and contoured over its *uncovered*
// cells. Dangling nodes at coarse/fine interfaces produce cracks
// (Figs. 1a, 5, 6).
//
// Dual-cell + marching cubes (advanced): each level's grid connects cell
// centers, keeping original cell values (no interpolation). Plain dual
// grids leave gaps between levels (Figs. 1b, 8-left); enabling "switching
// cells" extends the coarse dual grid into the redundant coarse data under
// fine patches, bridging the gap (Figs. 1c, 8-upper).
//
// World coordinates: the finest level's cells have unit size; a level-l
// cell has size ratio_to_finest(l).
//
// Streamed path (amr_isosurface_streamed): the same three pipelines
// driven directly from a COMPRESSED hierarchy, without ever inflating a
// level whole. Each level is swept in full-xy z-slabs; a slab is decoded
// (tile-streamed through amr::for_each_tile_compressed, at most two live
// decoded tiles per patch stream) only when its value range — assembled
// from the container's per-tile stats and widened by the hierarchy's
// absolute error bound — straddles the isovalue, alone or paired with a
// neighboring slab (seam cubes can cross the isovalue between two slabs
// neither of which straddles it alone). Cubes spanning a slab seam are
// contoured from a one-cell halo cached off the previous slab, so every
// tile is decoded at most once per slab sweep and the resulting mesh is
// BIT-IDENTICAL — triangles, vertex coordinates and order — to running
// the full-inflate pipeline on decompress_hierarchy(). Peak memory is
// two cell slabs (one being built, one cached as two halo planes) plus
// the per-patch stream buffers, instrumented in StreamedIsoStats.

#include "amr/hierarchy.hpp"
#include "compress/amr_compress.hpp"
#include "vis/mesh.hpp"

namespace amrvis::vis {

/// Dense per-level rasterization of a hierarchy level over its domain.
struct LevelField {
  Array3<double> values;            ///< cell values (0 where no data)
  Array3<std::uint8_t> has_data;    ///< cell stored at this level
  Array3<std::uint8_t> uncovered;   ///< stored and not covered by finer
  std::int64_t cell_size = 1;      ///< world size of one cell
};

/// Rasterize every level of `hier` onto dense domain-shaped arrays.
std::vector<LevelField> rasterize_levels(const amr::AmrHierarchy& hier);

/// Basic pipeline: re-sampling + marching cubes per level.
TriMesh resampling_isosurface(const amr::AmrHierarchy& hier, double iso);

/// Advanced pipeline: dual cells per level; `switching_cells` bridges
/// inter-level gaps using the redundant coarse data.
TriMesh dualcell_isosurface(const amr::AmrHierarchy& hier, double iso,
                            bool switching_cells);

/// Which pipeline to run (used by the study harness in src/core).
enum class VisMethod { kResampling, kDualCell, kDualCellSwitching };

TriMesh amr_isosurface(const amr::AmrHierarchy& hier, double iso,
                       VisMethod method);

const char* vis_method_name(VisMethod method);

/// Knobs for the streamed pipeline.
struct StreamedIsoOptions {
  /// z-thickness of the sweep slabs (clamped to >= 2; align it with the
  /// chunk tile nz so every container tile is decoded at most once).
  std::int64_t slab_nz = 16;
  /// Skip slabs whose widened value range cannot straddle the isovalue.
  /// Off = decode every slab that holds data (still out-of-core).
  bool value_cull = true;
  /// Pair decode-ahead inside each patch's TileStream.
  bool prefetch = true;
  /// Optional shared decoded-tile cache bound to the hierarchy: plain
  /// patches AND chunked tiles are served from / retained in it across
  /// slabs, levels and whole queries (the concurrent query service
  /// shares one byte-bounded cache across clients this way). When null,
  /// each sweep uses its own unbounded plain-patch cache — the historical
  /// behavior, keeping the <= 2 live decoded tiles per stream guarantee.
  /// The mesh is bit-identical either way.
  const compress::AmrTileCache* cache = nullptr;
  /// Optional cooperative deadline/cancellation, checked at tile
  /// granularity inside every level sweep (fires as Error{kTimeout} /
  /// Error{kCancelled}). The token must outlive the extraction.
  const util::CancelToken* cancel = nullptr;
};

/// Decode-work and memory instrumentation of one streamed extraction.
struct StreamedIsoStats {
  std::int64_t tiles_decoded = 0;  ///< container tile decode events
  std::int64_t tiles_total = 0;    ///< tiles stored across all levels
  std::int64_t cache_hits = 0;     ///< decodes served by a shared cache
  std::int64_t slabs_decoded = 0;
  std::int64_t slabs_total = 0;
  std::size_t peak_live_bytes = 0;  ///< rasters + vertex planes + masks
};

/// Isosurface a COMPRESSED hierarchy by streaming slabs of decoded tiles:
/// walks only the slabs whose [min - abs_eb, max + abs_eb] value range
/// (from the v2 per-tile stats; plain blobs and v1 containers are
/// conservatively unbounded) straddles `iso`, pulling seam-crossing cubes
/// from a one-cell halo cached off the neighboring slab. The mesh is
/// bit-identical — vertices, triangles, emission order — to
/// amr_isosurface(decompress_hierarchy(compressed, comp), iso, method).
/// Mean-fill-compressed hierarchies are handled coarse-to-fine: for the
/// switching-cell pipeline the redundant coarse values under fine patches
/// are rebuilt from region-decoded fine tiles exactly like
/// synchronize_coarse_from_fine (and value culling is disabled on those
/// levels, since the rebuilt values are not bounded by the stored stats).
TriMesh amr_isosurface_streamed(const compress::AmrCompressed& compressed,
                                const compress::Compressor& comp, double iso,
                                VisMethod method,
                                const StreamedIsoOptions& options = {},
                                StreamedIsoStats* stats = nullptr);

}  // namespace amrvis::vis
