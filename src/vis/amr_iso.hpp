#pragma once
// The paper's two AMR iso-surface pipelines (§2.3–2.4, §3.1):
//
// Re-sampling + marching cubes (basic): each level's cell data is diffused
// to vertices (tri-linear re-sampling) and contoured over its *uncovered*
// cells. Dangling nodes at coarse/fine interfaces produce cracks
// (Figs. 1a, 5, 6).
//
// Dual-cell + marching cubes (advanced): each level's grid connects cell
// centers, keeping original cell values (no interpolation). Plain dual
// grids leave gaps between levels (Figs. 1b, 8-left); enabling "switching
// cells" extends the coarse dual grid into the redundant coarse data under
// fine patches, bridging the gap (Figs. 1c, 8-upper).
//
// World coordinates: the finest level's cells have unit size; a level-l
// cell has size ratio_to_finest(l).

#include "amr/hierarchy.hpp"
#include "vis/mesh.hpp"

namespace amrvis::vis {

/// Dense per-level rasterization of a hierarchy level over its domain.
struct LevelField {
  Array3<double> values;            ///< cell values (0 where no data)
  Array3<std::uint8_t> has_data;    ///< cell stored at this level
  Array3<std::uint8_t> uncovered;   ///< stored and not covered by finer
  std::int64_t cell_size = 1;      ///< world size of one cell
};

/// Rasterize every level of `hier` onto dense domain-shaped arrays.
std::vector<LevelField> rasterize_levels(const amr::AmrHierarchy& hier);

/// Basic pipeline: re-sampling + marching cubes per level.
TriMesh resampling_isosurface(const amr::AmrHierarchy& hier, double iso);

/// Advanced pipeline: dual cells per level; `switching_cells` bridges
/// inter-level gaps using the redundant coarse data.
TriMesh dualcell_isosurface(const amr::AmrHierarchy& hier, double iso,
                            bool switching_cells);

/// Which pipeline to run (used by the study harness in src/core).
enum class VisMethod { kResampling, kDualCell, kDualCellSwitching };

TriMesh amr_isosurface(const amr::AmrHierarchy& hier, double iso,
                       VisMethod method);

const char* vis_method_name(VisMethod method);

}  // namespace amrvis::vis
