#pragma once
// The paper's two AMR iso-surface pipelines (§2.3–2.4, §3.1):
//
// Re-sampling + marching cubes (basic): each level's cell data is diffused
// to vertices (tri-linear re-sampling) and contoured over its *uncovered*
// cells. Dangling nodes at coarse/fine interfaces produce cracks
// (Figs. 1a, 5, 6).
//
// Dual-cell + marching cubes (advanced): each level's grid connects cell
// centers, keeping original cell values (no interpolation). Plain dual
// grids leave gaps between levels (Figs. 1b, 8-left); enabling "switching
// cells" extends the coarse dual grid into the redundant coarse data under
// fine patches, bridging the gap (Figs. 1c, 8-upper).
//
// World coordinates: the finest level's cells have unit size; a level-l
// cell has size ratio_to_finest(l).
//
// Streamed path (amr_isosurface_streamed): the same three pipelines
// driven directly from a COMPRESSED hierarchy, without ever inflating a
// level whole. Each level is swept as a grid of BRICKS — xy extents
// follow the container's tile grid (overridable), z extent is slab_nz —
// walked column by column ((bx, by) outer, bz inner). A brick decodes
// only the tiles the value cull planned for it: per-tile decoded-value
// bounds (container v4 — exact, no error-bound widening) or eb-widened
// original-value stats (v2/v3), with face-slab seam tests between
// neighbors. Cubes spanning brick seams are contoured from shell planes
// saved off the three low-side neighbor bricks, so each tile is decoded
// once per brick it spans; tiles spanning several bricks of a column are
// kept in a small k-tile LRU (StreamedIsoOptions::lru_tiles) instead of
// being re-decoded. The resulting mesh is BIT-IDENTICAL — triangles,
// vertex coordinates and order — to running the full-inflate pipeline on
// decompress_hierarchy(): each brick extracts its anchor rows with
// extract_isosurface_rows and the rows are re-interleaved into global
// (k; j; i) order at level end. Peak decoded memory is O(k·tile) — one
// brick window, the LRU, and the live seam shells — instrumented in
// StreamedIsoStats (peak_live_tiles / peak_live_bytes), never just
// promised.

#include "amr/hierarchy.hpp"
#include "compress/amr_compress.hpp"
#include "vis/mesh.hpp"

namespace amrvis::vis {

/// Dense per-level rasterization of a hierarchy level over its domain.
struct LevelField {
  Array3<double> values;            ///< cell values (0 where no data)
  Array3<std::uint8_t> has_data;    ///< cell stored at this level
  Array3<std::uint8_t> uncovered;   ///< stored and not covered by finer
  std::int64_t cell_size = 1;      ///< world size of one cell
};

/// Rasterize every level of `hier` onto dense domain-shaped arrays.
std::vector<LevelField> rasterize_levels(const amr::AmrHierarchy& hier);

/// Basic pipeline: re-sampling + marching cubes per level.
TriMesh resampling_isosurface(const amr::AmrHierarchy& hier, double iso);

/// Advanced pipeline: dual cells per level; `switching_cells` bridges
/// inter-level gaps using the redundant coarse data.
TriMesh dualcell_isosurface(const amr::AmrHierarchy& hier, double iso,
                            bool switching_cells);

/// Which pipeline to run (used by the study harness in src/core).
enum class VisMethod { kResampling, kDualCell, kDualCellSwitching };

TriMesh amr_isosurface(const amr::AmrHierarchy& hier, double iso,
                       VisMethod method);

const char* vis_method_name(VisMethod method);

/// Knobs for the streamed pipeline.
struct StreamedIsoOptions {
  /// z-thickness of the sweep bricks (clamped to >= 2; align it with the
  /// chunk tile nz so every container tile is decoded at most once).
  std::int64_t slab_nz = 16;
  /// xy extents of the sweep bricks (clamped to >= 2). 0 = automatic:
  /// the tile extents of the level's first chunked patch, or the whole
  /// domain extent when the level holds only plain blobs — aligned
  /// bricks decode each planned tile exactly once.
  std::int64_t brick_nx = 0;
  std::int64_t brick_ny = 0;
  /// Capacity (in tiles) of the per-sweep decoded-tile LRU that carries
  /// tiles spanning several bricks — the k of the O(k·tile) memory
  /// bound. Ignored when a shared `cache` is supplied (it retains tiles
  /// instead). Clamped to >= 1.
  std::int64_t lru_tiles = 16;
  /// Skip tiles whose value range cannot straddle the isovalue — exact
  /// decoded-value bounds on a v4 container, eb-widened stats otherwise.
  /// Off = decode every tile that holds data (still out-of-core).
  bool value_cull = true;
  /// Pair decode-ahead inside each patch's TileStream.
  bool prefetch = true;
  /// Optional shared decoded-tile cache bound to the hierarchy: plain
  /// patches AND chunked tiles are served from / retained in it across
  /// slabs, levels and whole queries (the concurrent query service
  /// shares one byte-bounded cache across clients this way). When null,
  /// each sweep uses its own unbounded plain-patch cache — the historical
  /// behavior, keeping the <= 2 live decoded tiles per stream guarantee.
  /// The mesh is bit-identical either way.
  const compress::AmrTileCache* cache = nullptr;
  /// Optional cooperative deadline/cancellation, checked at tile
  /// granularity inside every level sweep (fires as Error{kTimeout} /
  /// Error{kCancelled}). The token must outlive the extraction.
  const util::CancelToken* cancel = nullptr;
};

/// Decode-work and memory instrumentation of one streamed extraction.
struct StreamedIsoStats {
  std::int64_t tiles_decoded = 0;  ///< container tile decode events
  std::int64_t tiles_total = 0;    ///< tiles stored across all levels
  /// Decodes served without work: by the shared cache when one is
  /// supplied, by the sweep-local LRU otherwise.
  std::int64_t cache_hits = 0;
  /// Tiles the value cull removed from the plan, split by regime: v4
  /// exact decoded-value bounds vs eb-widened conservative stats.
  std::int64_t tiles_culled_exact = 0;
  std::int64_t tiles_culled_conservative = 0;
  std::int64_t slabs_decoded = 0;  ///< z-slabs with at least one decode
  std::int64_t slabs_total = 0;
  /// High-water mark of decoded tiles resident at once (LRU + tiles held
  /// by the brick being built); the O(k·tile) contract, instrumented.
  int peak_live_tiles = 0;
  std::size_t peak_live_bytes = 0;  ///< window + verts + masks + shells
};

/// Isosurface a COMPRESSED hierarchy by sweeping bricks of decoded tiles:
/// decodes only the tiles whose value range straddles `iso` — the exact
/// decoded-value bounds of a v4 container, or [min - abs_eb, max + abs_eb]
/// from older per-tile stats (plain blobs and v1 containers are
/// conservatively unbounded) — pulling seam-crossing cubes from shell
/// planes saved off the low-side neighbor bricks. The mesh is
/// bit-identical — vertices, triangles, emission order — to
/// amr_isosurface(decompress_hierarchy(compressed, comp), iso, method).
/// Mean-fill-compressed hierarchies are handled coarse-to-fine: for the
/// switching-cell pipeline the redundant coarse values under fine patches
/// are rebuilt from region-decoded fine tiles exactly like
/// synchronize_coarse_from_fine (and value culling is disabled on those
/// levels, since the rebuilt values are not bounded by the stored stats).
TriMesh amr_isosurface_streamed(const compress::AmrCompressed& compressed,
                                const compress::Compressor& comp, double iso,
                                VisMethod method,
                                const StreamedIsoOptions& options = {},
                                StreamedIsoStats* stats = nullptr);

}  // namespace amrvis::vis
