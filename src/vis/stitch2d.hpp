#pragma once
// 2-D dual-grid contouring with an explicit stitching mesh — the paper's
// Fig. 8 (lower path): instead of reusing redundant coarse data, the gap
// strip between a coarse dual grid and a fine dual grid is filled with
// dedicated "stitching cells" (trapezoids connecting coarse and fine cell
// centers) that are contoured like marching-squares cells.
//
// This module is 2-D (the paper's own illustration is 2-D): a coarse row
// of cells abuts a refined region; we contour the coarse dual grid, the
// fine dual grid, and the stitch strip, and verify the union is
// continuous (no dangling segment endpoints in the strip interior).

#include <vector>

#include "util/array3d.hpp"
#include "vis/isosurface.hpp"

namespace amrvis::vis {

/// A 2-D two-level configuration: the coarse level covers the whole
/// [0, nx) x [0, ny) cell domain (cell size 2 in world units); the fine
/// level covers the cells with x < split_x (fine index space, cell size
/// 1). Values are cell-centered samples of a scalar field.
struct TwoLevel2d {
  Array3<double> coarse;      ///< shape (nx, ny, 1), cell size 2
  Array3<double> fine;        ///< shape (2*split_x, 2*ny, 1), cell size 1
  std::int64_t split_x = 0;   ///< coarse-index x where the fine region ends
};

/// Build a TwoLevel2d by sampling f(x, y) at cell centers (world units;
/// fine cell size 1).
TwoLevel2d sample_two_level_2d(std::int64_t coarse_nx, std::int64_t coarse_ny,
                               std::int64_t split_x, double (*f)(double,
                                                                 double));

struct Stitch2dResult {
  std::vector<Segment2D> coarse_segments;  ///< coarse dual grid (uncovered)
  std::vector<Segment2D> fine_segments;    ///< fine dual grid
  std::vector<Segment2D> stitch_segments;  ///< the stitching strip
  /// Dangling contour endpoints strictly inside the stitched strip after
  /// merging all three sets; 0 means the stitch closed the gap.
  int dangling_endpoints = 0;
};

/// Contour all three meshes at `iso` and count dangling endpoints.
/// `with_stitch` = false skips the strip (reproducing the gap).
Stitch2dResult stitch_contour_2d(const TwoLevel2d& data, double iso,
                                 bool with_stitch);

}  // namespace amrvis::vis
