#include "vis/stitch2d.hpp"

#include <cmath>
#include <map>

#include "util/error.hpp"

namespace amrvis::vis {

TwoLevel2d sample_two_level_2d(std::int64_t coarse_nx, std::int64_t coarse_ny,
                               std::int64_t split_x,
                               double (*f)(double, double)) {
  AMRVIS_REQUIRE(split_x > 0 && split_x < coarse_nx);
  TwoLevel2d out;
  out.split_x = split_x;
  out.coarse = Array3<double>({coarse_nx, coarse_ny, 1});
  for (std::int64_t j = 0; j < coarse_ny; ++j)
    for (std::int64_t i = 0; i < coarse_nx; ++i)
      out.coarse(i, j, 0) = f(2.0 * static_cast<double>(i) + 1.0,
                              2.0 * static_cast<double>(j) + 1.0);
  out.fine = Array3<double>({2 * split_x, 2 * coarse_ny, 1});
  for (std::int64_t j = 0; j < 2 * coarse_ny; ++j)
    for (std::int64_t i = 0; i < 2 * split_x; ++i)
      out.fine(i, j, 0) = f(static_cast<double>(i) + 0.5,
                            static_cast<double>(j) + 0.5);
  return out;
}

namespace {

/// Contour one linear triangle; appends at most one segment.
void contour_triangle(double iso, const double px[3], const double py[3],
                      const double fv[3], std::vector<Segment2D>& out) {
  int above = 0;
  for (int i = 0; i < 3; ++i)
    if (fv[i] > iso) ++above;
  if (above == 0 || above == 3) return;
  double xs[2], ys[2];
  int n = 0;
  for (int e = 0; e < 3; ++e) {
    const int a = e, b = (e + 1) % 3;
    const bool ia = fv[a] > iso, ib = fv[b] > iso;
    if (ia == ib) continue;
    const double t = (iso - fv[a]) / (fv[b] - fv[a]);
    if (n < 2) {
      xs[n] = px[a] + t * (px[b] - px[a]);
      ys[n] = py[a] + t * (py[b] - py[a]);
    }
    ++n;
  }
  if (n == 2) out.push_back({xs[0], ys[0], xs[1], ys[1]});
}

}  // namespace

Stitch2dResult stitch_contour_2d(const TwoLevel2d& data, double iso,
                                 bool with_stitch) {
  Stitch2dResult result;
  const Shape3 cs = data.coarse.shape();
  const Shape3 fs = data.fine.shape();
  const std::int64_t sx = data.split_x;

  // Coarse dual grid over the uncovered columns [sx, nx).
  {
    const std::int64_t w = cs.nx - sx;
    Array3<double> sub({w, cs.ny, 1});
    for (std::int64_t j = 0; j < cs.ny; ++j)
      for (std::int64_t i = 0; i < w; ++i)
        sub(i, j, 0) = data.coarse(sx + i, j, 0);
    for (const Segment2D& s : marching_squares(sub.view(), iso))
      result.coarse_segments.push_back(
          {2.0 * (s.ax + static_cast<double>(sx)) + 1.0, 2.0 * s.ay + 1.0,
           2.0 * (s.bx + static_cast<double>(sx)) + 1.0, 2.0 * s.by + 1.0});
  }

  // Fine dual grid over the whole fine patch.
  for (const Segment2D& s : marching_squares(data.fine.view(), iso))
    result.fine_segments.push_back(
        {s.ax + 0.5, s.ay + 0.5, s.bx + 0.5, s.by + 0.5});

  // Stitching strip: zipper triangles between the last fine-center
  // column (x = 2*sx - 0.5) and the first uncovered coarse-center column
  // (x = 2*sx + 1), paper Fig. 8 (lower).
  if (with_stitch) {
    const double xf = 2.0 * static_cast<double>(sx) - 0.5;
    const double xc = 2.0 * static_cast<double>(sx) + 1.0;
    const std::int64_t nf = fs.ny;   // fine points along y
    const std::int64_t nc = cs.ny;   // coarse points along y
    auto fine_y = [](std::int64_t j) {
      return static_cast<double>(j) + 0.5;
    };
    auto coarse_y = [](std::int64_t j) {
      return 2.0 * static_cast<double>(j) + 1.0;
    };
    auto fine_v = [&](std::int64_t j) {
      return data.fine(fs.nx - 1, j, 0);
    };
    auto coarse_v = [&](std::int64_t j) { return data.coarse(sx, j, 0); };

    std::int64_t fi = 0, ci = 0;
    while (fi + 1 < nf || ci + 1 < nc) {
      // Advance the side whose *next* point has the smaller y; tie goes
      // to the fine side (denser sampling).
      const bool advance_fine =
          (ci + 1 >= nc) ||
          (fi + 1 < nf && fine_y(fi + 1) <= coarse_y(ci + 1));
      double px[3], py[3], fv[3];
      px[0] = xf;
      py[0] = fine_y(fi);
      fv[0] = fine_v(fi);
      px[1] = xc;
      py[1] = coarse_y(ci);
      fv[1] = coarse_v(ci);
      if (advance_fine) {
        px[2] = xf;
        py[2] = fine_y(fi + 1);
        fv[2] = fine_v(fi + 1);
        ++fi;
      } else {
        px[2] = xc;
        py[2] = coarse_y(ci + 1);
        fv[2] = coarse_v(ci + 1);
        ++ci;
      }
      contour_triangle(iso, px, py, fv, result.stitch_segments);
    }
  }

  // Dangling-endpoint census inside the strip.
  const double xf = 2.0 * static_cast<double>(sx) - 0.5;
  const double xc = 2.0 * static_cast<double>(sx) + 1.0;
  std::map<std::pair<std::int64_t, std::int64_t>, int> degree;
  auto key = [](double x, double y) {
    return std::pair{static_cast<std::int64_t>(std::llround(x * 1e6)),
                     static_cast<std::int64_t>(std::llround(y * 1e6))};
  };
  auto add = [&](const std::vector<Segment2D>& segs) {
    for (const Segment2D& s : segs) {
      ++degree[key(s.ax, s.ay)];
      ++degree[key(s.bx, s.by)];
    }
  };
  add(result.coarse_segments);
  add(result.fine_segments);
  add(result.stitch_segments);
  const double y_top = 2.0 * static_cast<double>(cs.ny) - 1.0;
  for (const auto& [k, deg] : degree) {
    if (deg != 1) continue;
    const double x = static_cast<double>(k.first) * 1e-6;
    const double y = static_cast<double>(k.second) * 1e-6;
    if (x >= xf - 1e-9 && x <= xc + 1e-9 && y > 1.0 && y < y_top - 1.0)
      ++result.dangling_endpoints;
  }
  return result;
}

}  // namespace amrvis::vis
