#include "vis/crack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace amrvis::vis {

double point_triangle_distance(Vec3 p, Vec3 a, Vec3 b, Vec3 c) {
  // Ericson's closest-point-on-triangle.
  const Vec3 ab = b - a;
  const Vec3 ac = c - a;
  const Vec3 ap = p - a;
  const double d1 = dot(ab, ap);
  const double d2 = dot(ac, ap);
  if (d1 <= 0.0 && d2 <= 0.0) return norm(p - a);

  const Vec3 bp = p - b;
  const double d3 = dot(ab, bp);
  const double d4 = dot(ac, bp);
  if (d3 >= 0.0 && d4 <= d3) return norm(p - b);

  const double vc = d1 * d4 - d3 * d2;
  if (vc <= 0.0 && d1 >= 0.0 && d3 <= 0.0) {
    const double v = d1 / (d1 - d3);
    return norm(p - (a + ab * v));
  }

  const Vec3 cp = p - c;
  const double d5 = dot(ab, cp);
  const double d6 = dot(ac, cp);
  if (d6 >= 0.0 && d5 <= d6) return norm(p - c);

  const double vb = d5 * d2 - d1 * d6;
  if (vb <= 0.0 && d2 >= 0.0 && d6 <= 0.0) {
    const double w = d2 / (d2 - d6);
    return norm(p - (a + ac * w));
  }

  const double va = d3 * d6 - d5 * d4;
  if (va <= 0.0 && (d4 - d3) >= 0.0 && (d5 - d6) >= 0.0) {
    const double w = (d4 - d3) / ((d4 - d3) + (d5 - d6));
    return norm(p - (b + (c - b) * w));
  }

  const double denom = 1.0 / (va + vb + vc);
  const double v = vb * denom;
  const double w = vc * denom;
  return norm(p - (a + ab * v + ac * w));
}

namespace {

struct CellKey {
  std::int64_t x, y, z;
  friend bool operator==(const CellKey&, const CellKey&) = default;
};
struct CellKeyHash {
  std::size_t operator()(const CellKey& k) const {
    std::size_t h = static_cast<std::size_t>(k.x) * 0x9e3779b97f4a7c15ull;
    h ^= static_cast<std::size_t>(k.y) * 0xc2b2ae3d27d4eb4full + (h << 6);
    h ^= static_cast<std::size_t>(k.z) * 0x165667b19e3779f9ull + (h >> 2);
    return h;
  }
};

/// Uniform hash grid over triangle bounding boxes for nearest queries.
class TriangleGrid {
 public:
  TriangleGrid(const TriMesh& mesh, double cell) : mesh_(mesh), cell_(cell) {
    for (std::uint32_t t = 0; t < mesh.triangles.size(); ++t) {
      Vec3 lo, hi;
      tri_bounds(t, lo, hi);
      for (std::int64_t z = idx(lo.z); z <= idx(hi.z); ++z)
        for (std::int64_t y = idx(lo.y); y <= idx(hi.y); ++y)
          for (std::int64_t x = idx(lo.x); x <= idx(hi.x); ++x)
            grid_[{x, y, z}].push_back(t);
    }
  }

  /// Distance from `p` to the nearest triangle whose level != skip_level,
  /// searched within `max_ring` grid cells (~2 world units per cell).
  /// Returns +inf when nothing lies within the search radius — gaps that
  /// wide are no longer "cracks", they are missing geometry.
  double nearest(Vec3 p, int skip_level, std::int64_t max_ring = 6) const {
    double best = std::numeric_limits<double>::infinity();
    const std::int64_t cx = idx(p.x), cy = idx(p.y), cz = idx(p.z);
    for (std::int64_t ring = 0; ring <= max_ring; ++ring) {
      // Once a hit is known, we only need to expand until the ring's
      // inner boundary exceeds the current best distance.
      if (best < static_cast<double>(ring - 1) * cell_) break;
      for (std::int64_t z = cz - ring; z <= cz + ring; ++z)
        for (std::int64_t y = cy - ring; y <= cy + ring; ++y)
          for (std::int64_t x = cx - ring; x <= cx + ring; ++x) {
            // Shell only.
            if (std::max({std::llabs(x - cx), std::llabs(y - cy),
                          std::llabs(z - cz)}) != ring)
              continue;
            const auto it = grid_.find({x, y, z});
            if (it == grid_.end()) continue;
            for (std::uint32_t t : it->second) {
              const Triangle& tri = mesh_.triangles[t];
              if (tri.level == skip_level) continue;
              best = std::min(
                  best, point_triangle_distance(p, mesh_.vertices[tri.v[0]],
                                                mesh_.vertices[tri.v[1]],
                                                mesh_.vertices[tri.v[2]]));
            }
          }
    }
    return best;
  }

 private:
  void tri_bounds(std::uint32_t t, Vec3& lo, Vec3& hi) const {
    const Triangle& tri = mesh_.triangles[t];
    lo = hi = mesh_.vertices[tri.v[0]];
    for (int i = 1; i < 3; ++i) {
      const Vec3& v = mesh_.vertices[tri.v[i]];
      lo.x = std::min(lo.x, v.x);
      lo.y = std::min(lo.y, v.y);
      lo.z = std::min(lo.z, v.z);
      hi.x = std::max(hi.x, v.x);
      hi.y = std::max(hi.y, v.y);
      hi.z = std::max(hi.z, v.z);
    }
  }
  [[nodiscard]] std::int64_t idx(double v) const {
    return static_cast<std::int64_t>(std::floor(v / cell_));
  }

  const TriMesh& mesh_;
  double cell_;
  std::unordered_map<CellKey, std::vector<std::uint32_t>, CellKeyHash> grid_;
};

bool on_domain_boundary(const Vec3& a, const Vec3& b, Vec3 lo, Vec3 hi,
                        double eps) {
  // Both endpoints on the same outer face.
  auto on_plane = [&](double va, double vb, double plane) {
    return std::abs(va - plane) <= eps && std::abs(vb - plane) <= eps;
  };
  return on_plane(a.x, b.x, lo.x) || on_plane(a.x, b.x, hi.x) ||
         on_plane(a.y, b.y, lo.y) || on_plane(a.y, b.y, hi.y) ||
         on_plane(a.z, b.z, lo.z) || on_plane(a.z, b.z, hi.z);
}

}  // namespace

CrackStats measure_cracks(const TriMesh& mesh, Vec3 domain_lo,
                          Vec3 domain_hi, double eps) {
  CrackStats stats;
  if (mesh.empty()) return stats;

  // Weld per level so only true boundaries remain; keep levels separate
  // when welding (vertices shared across levels must not stitch cracks).
  std::vector<BoundaryEdge> boundary;
  int max_level = 0;
  for (const Triangle& t : mesh.triangles)
    max_level = std::max(max_level, t.level);
  for (int l = 0; l <= max_level; ++l) {
    TriMesh level_mesh;
    level_mesh.vertices = mesh.vertices;
    for (const Triangle& t : mesh.triangles)
      if (t.level == l) level_mesh.triangles.push_back(t);
    if (level_mesh.triangles.empty()) continue;
    level_mesh.weld();
    for (const BoundaryEdge& e : level_mesh.boundary_edges())
      boundary.push_back({e.a, e.b, l});
  }

  const bool multi_level = max_level > 0;
  TriangleGrid grid(mesh, 2.0);

  // First pass: census every interior boundary edge (cheap).
  std::vector<const BoundaryEdge*> interior;
  for (const BoundaryEdge& e : boundary) {
    if (on_domain_boundary(e.a, e.b, domain_lo, domain_hi, eps)) continue;
    ++stats.interior_boundary_edges;
    stats.boundary_length += norm(e.b - e.a);
    interior.push_back(&e);
  }

  // Second pass: gap distances on a deterministic sample (the nearest-
  // triangle query is the expensive part; a few thousand edges pin the
  // mean/max gap well).
  if (multi_level) {
    constexpr std::size_t kMaxMeasured = 2048;
    const std::size_t stride =
        interior.size() > kMaxMeasured ? interior.size() / kMaxMeasured : 1;
    for (std::size_t i = 0; i < interior.size(); i += stride) {
      const BoundaryEdge& e = *interior[i];
      const Vec3 mid = (e.a + e.b) * 0.5;
      const double d = grid.nearest(mid, e.level);
      if (std::isfinite(d)) {
        stats.mean_gap += d;
        stats.max_gap = std::max(stats.max_gap, d);
        ++stats.edges_measured;
      }
    }
  }
  if (stats.edges_measured > 0)
    stats.mean_gap /= static_cast<double>(stats.edges_measured);
  return stats;
}

}  // namespace amrvis::vis
