#include "vis/mesh.hpp"

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <unordered_map>

#include "util/error.hpp"

namespace amrvis::vis {

double norm(Vec3 a) { return std::sqrt(dot(a, a)); }

Vec3 normalized(Vec3 a) {
  const double n = norm(a);
  return n > 0 ? a * (1.0 / n) : Vec3{0, 0, 0};
}

void TriMesh::append(const TriMesh& other) {
  const auto base = static_cast<std::uint32_t>(vertices.size());
  vertices.insert(vertices.end(), other.vertices.begin(),
                  other.vertices.end());
  triangles.reserve(triangles.size() + other.triangles.size());
  for (Triangle t : other.triangles) {
    for (auto& idx : t.v) idx += base;
    triangles.push_back(t);
  }
}

namespace {
struct QuantKey {
  std::int64_t x, y, z;
  friend bool operator==(const QuantKey&, const QuantKey&) = default;
};
struct QuantKeyHash {
  std::size_t operator()(const QuantKey& k) const {
    std::size_t h = static_cast<std::size_t>(k.x) * 0x9e3779b97f4a7c15ull;
    h ^= static_cast<std::size_t>(k.y) * 0xc2b2ae3d27d4eb4full + (h << 6);
    h ^= static_cast<std::size_t>(k.z) * 0x165667b19e3779f9ull + (h >> 2);
    return h;
  }
};
}  // namespace

void TriMesh::weld(double tol) {
  AMRVIS_REQUIRE(tol > 0);
  const double inv = 1.0 / tol;
  std::unordered_map<QuantKey, std::uint32_t, QuantKeyHash> seen;
  std::vector<std::uint32_t> remap(vertices.size());
  std::vector<Vec3> unique_vertices;
  unique_vertices.reserve(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const Vec3& v = vertices[i];
    const QuantKey key{static_cast<std::int64_t>(std::llround(v.x * inv)),
                       static_cast<std::int64_t>(std::llround(v.y * inv)),
                       static_cast<std::int64_t>(std::llround(v.z * inv))};
    auto [it, inserted] = seen.try_emplace(
        key, static_cast<std::uint32_t>(unique_vertices.size()));
    if (inserted) unique_vertices.push_back(v);
    remap[i] = it->second;
  }
  std::vector<Triangle> kept;
  kept.reserve(triangles.size());
  for (Triangle t : triangles) {
    for (auto& idx : t.v) idx = remap[idx];
    if (t.v[0] == t.v[1] || t.v[1] == t.v[2] || t.v[0] == t.v[2]) continue;
    kept.push_back(t);
  }
  vertices = std::move(unique_vertices);
  triangles = std::move(kept);
}

double TriMesh::area() const {
  double total = 0.0;
  for (const Triangle& t : triangles) {
    const Vec3 e1 = vertices[t.v[1]] - vertices[t.v[0]];
    const Vec3 e2 = vertices[t.v[2]] - vertices[t.v[0]];
    total += 0.5 * norm(cross(e1, e2));
  }
  return total;
}

std::vector<BoundaryEdge> TriMesh::boundary_edges() const {
  // Count undirected edge occurrences.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<int, int>>
      edges;  // (count, level of first owner)
  for (const Triangle& t : triangles)
    for (int e = 0; e < 3; ++e) {
      std::uint32_t a = t.v[e];
      std::uint32_t b = t.v[(e + 1) % 3];
      if (a > b) std::swap(a, b);
      auto [it, inserted] = edges.try_emplace({a, b}, std::pair{0, t.level});
      ++it->second.first;
    }
  std::vector<BoundaryEdge> out;
  for (const auto& [key, info] : edges)
    if (info.first == 1)
      out.push_back({vertices[key.first], vertices[key.second], info.second});
  return out;
}

bool TriMesh::bounds(Vec3& lo, Vec3& hi) const {
  if (vertices.empty()) return false;
  lo = hi = vertices.front();
  for (const Vec3& v : vertices) {
    lo.x = std::min(lo.x, v.x);
    lo.y = std::min(lo.y, v.y);
    lo.z = std::min(lo.z, v.z);
    hi.x = std::max(hi.x, v.x);
    hi.y = std::max(hi.y, v.y);
    hi.z = std::max(hi.z, v.z);
  }
  return true;
}

void TriMesh::write_obj(const std::string& path) const {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(
      std::fopen(path.c_str(), "w"), &std::fclose);
  AMRVIS_REQUIRE_MSG(f != nullptr, "cannot open for write: " + path);
  for (const Vec3& v : vertices)
    std::fprintf(f.get(), "v %.9g %.9g %.9g\n", v.x, v.y, v.z);
  for (const Triangle& t : triangles)
    std::fprintf(f.get(), "f %u %u %u\n", t.v[0] + 1, t.v[1] + 1,
                 t.v[2] + 1);
}

}  // namespace amrvis::vis
