#pragma once
// Cell-centered -> vertex-centered re-sampling (paper §2.3, Fig. 4 left):
// every vertex takes the average of its adjacent cells (up to 8 in 3-D),
// which is exactly tri-linear interpolation evaluated at cell corners.
// Each dimension grows by one.

#include "util/array3d.hpp"

namespace amrvis::vis {

/// Plain dense version: every cell participates.
Array3<double> resample_to_vertices(View3<const double> cells);

/// Masked version for sparse AMR levels: a vertex averages only its valid
/// adjacent cells; `vertex_valid` (same shape as the result) is set to 1
/// where at least one adjacent cell was valid.
Array3<double> resample_to_vertices_masked(
    View3<const double> cells, View3<const std::uint8_t> valid,
    Array3<std::uint8_t>& vertex_valid);

}  // namespace amrvis::vis
