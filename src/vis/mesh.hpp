#pragma once
// Triangle mesh with per-triangle AMR-level tags, plus the mesh utilities
// the visualization studies need: vertex welding, area/normal computation,
// boundary-edge extraction and OBJ export.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace amrvis::vis {

struct Vec3 {
  double x = 0, y = 0, z = 0;

  friend Vec3 operator+(Vec3 a, Vec3 b) {
    return {a.x + b.x, a.y + b.y, a.z + b.z};
  }
  friend Vec3 operator-(Vec3 a, Vec3 b) {
    return {a.x - b.x, a.y - b.y, a.z - b.z};
  }
  friend Vec3 operator*(Vec3 a, double s) {
    return {a.x * s, a.y * s, a.z * s};
  }
  friend bool operator==(const Vec3&, const Vec3&) = default;
};

inline double dot(Vec3 a, Vec3 b) { return a.x * b.x + a.y * b.y + a.z * b.z; }
inline Vec3 cross(Vec3 a, Vec3 b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}
double norm(Vec3 a);
Vec3 normalized(Vec3 a);

struct Triangle {
  std::array<std::uint32_t, 3> v;
  int level = 0;  ///< AMR level that produced this triangle
};

/// An edge referenced by exactly one triangle (mesh boundary).
struct BoundaryEdge {
  Vec3 a, b;
  int level = 0;
};

class TriMesh {
 public:
  std::vector<Vec3> vertices;
  std::vector<Triangle> triangles;

  [[nodiscard]] std::size_t num_vertices() const { return vertices.size(); }
  [[nodiscard]] std::size_t num_triangles() const {
    return triangles.size();
  }
  [[nodiscard]] bool empty() const { return triangles.empty(); }

  /// Append another mesh (vertex indices are rebased).
  void append(const TriMesh& other);

  /// Merge vertices closer than `tol` (hash-grid exact-duplicate weld;
  /// iso-surface extraction produces bitwise-identical coordinates for
  /// shared edge crossings, so a tiny tolerance suffices). Degenerate
  /// triangles left behind by welding are dropped.
  void weld(double tol = 1e-9);

  /// Total surface area.
  [[nodiscard]] double area() const;

  /// Edges referenced by exactly one triangle.
  [[nodiscard]] std::vector<BoundaryEdge> boundary_edges() const;

  /// Axis-aligned bounds; returns false for an empty mesh.
  bool bounds(Vec3& lo, Vec3& hi) const;

  /// Write a Wavefront OBJ file.
  void write_obj(const std::string& path) const;
};

}  // namespace amrvis::vis
