#include "vis/isosurface.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace amrvis::vis {

namespace {

// Cube corner c (bit 0 = +x, bit 1 = +y, bit 2 = +z) offsets.
constexpr int kDx[8] = {0, 1, 0, 1, 0, 1, 0, 1};
constexpr int kDy[8] = {0, 0, 1, 1, 0, 0, 1, 1};
constexpr int kDz[8] = {0, 0, 0, 0, 1, 1, 1, 1};

// Six tetrahedra sharing the 0-7 main diagonal; consistent across
// neighboring cubes because faces are split along consistent diagonals.
constexpr int kTets[6][4] = {{0, 5, 1, 7}, {0, 1, 3, 7}, {0, 3, 2, 7},
                             {0, 2, 6, 7}, {0, 6, 4, 7}, {0, 4, 5, 7}};

Vec3 interp_edge(const Vec3& pa, const Vec3& pb, double fa, double fb,
                 double iso) {
  const double denom = fb - fa;
  double t = denom != 0.0 ? (iso - fa) / denom : 0.5;
  t = std::clamp(t, 0.0, 1.0);
  return pa + (pb - pa) * t;
}

/// Contour one tetrahedron into `mesh`.
void contour_tet(const Vec3 p[4], const double f[4], double iso, int level,
                 TriMesh& mesh) {
  int inside_mask = 0;
  for (int i = 0; i < 4; ++i)
    if (f[i] > iso) inside_mask |= 1 << i;
  if (inside_mask == 0 || inside_mask == 0xf) return;

  auto emit_tri = [&](Vec3 a, Vec3 b, Vec3 c) {
    const auto base = static_cast<std::uint32_t>(mesh.vertices.size());
    mesh.vertices.push_back(a);
    mesh.vertices.push_back(b);
    mesh.vertices.push_back(c);
    mesh.triangles.push_back({{base, base + 1, base + 2}, level});
  };

  const int count = __builtin_popcount(static_cast<unsigned>(inside_mask));
  if (count == 1 || count == 3) {
    // Isolate the lone vertex (inside for count==1, outside for count==3).
    int lone = 0;
    for (int i = 0; i < 4; ++i) {
      const bool in = (inside_mask >> i) & 1;
      if ((count == 1 && in) || (count == 3 && !in)) lone = i;
    }
    Vec3 pts[3];
    int n = 0;
    for (int i = 0; i < 4; ++i) {
      if (i == lone) continue;
      pts[n++] = interp_edge(p[lone], p[i], f[lone], f[i], iso);
    }
    emit_tri(pts[0], pts[1], pts[2]);
  } else {
    // Two inside, two outside: a quad.
    int in[2], out[2];
    int ni = 0, no = 0;
    for (int i = 0; i < 4; ++i) {
      if ((inside_mask >> i) & 1) in[ni++] = i;
      else out[no++] = i;
    }
    const Vec3 q0 = interp_edge(p[in[0]], p[out[0]], f[in[0]], f[out[0]], iso);
    const Vec3 q1 = interp_edge(p[in[0]], p[out[1]], f[in[0]], f[out[1]], iso);
    const Vec3 q2 = interp_edge(p[in[1]], p[out[1]], f[in[1]], f[out[1]], iso);
    const Vec3 q3 = interp_edge(p[in[1]], p[out[0]], f[in[1]], f[out[0]], iso);
    emit_tri(q0, q1, q2);
    emit_tri(q0, q2, q3);
  }
}

}  // namespace

TriMesh extract_isosurface(View3<const double> values, double iso,
                           const GridTransform& transform, int level,
                           View3<const std::uint8_t> cell_valid) {
  return extract_isosurface_slab(values, iso, transform, level, cell_valid,
                                 0, values.shape().nz - 1);
}

TriMesh extract_isosurface_slab(View3<const double> values, double iso,
                                const GridTransform& transform, int level,
                                View3<const std::uint8_t> cell_valid,
                                std::int64_t k_begin, std::int64_t k_end) {
  const Shape3 vs = values.shape();
  AMRVIS_REQUIRE_MSG(vs.nx >= 2 && vs.ny >= 2 && vs.nz >= 2,
                     "isosurface: need at least a 2x2x2 vertex grid");
  const std::int64_t cz = vs.nz - 1;
  AMRVIS_REQUIRE_MSG(k_begin >= 0 && k_end <= cz && k_begin <= k_end,
                     "isosurface: cube layer range outside the grid");
  return extract_isosurface_rows(values, iso, transform, level, cell_valid,
                                 0, vs.nx - 1, 0, vs.ny - 1, k_begin, k_end)
      .mesh;
}

RowSpanMesh extract_isosurface_rows(View3<const double> values, double iso,
                                    const GridTransform& transform, int level,
                                    View3<const std::uint8_t> cell_valid,
                                    std::int64_t i_begin, std::int64_t i_end,
                                    std::int64_t j_begin, std::int64_t j_end,
                                    std::int64_t k_begin,
                                    std::int64_t k_end) {
  const Shape3 vs = values.shape();
  AMRVIS_REQUIRE_MSG(vs.nx >= 2 && vs.ny >= 2 && vs.nz >= 2,
                     "isosurface: need at least a 2x2x2 vertex grid");
  const std::int64_t cx = vs.nx - 1, cy = vs.ny - 1, cz = vs.nz - 1;
  AMRVIS_REQUIRE_MSG(i_begin >= 0 && i_end <= cx && i_begin <= i_end &&
                         j_begin >= 0 && j_end <= cy && j_begin <= j_end &&
                         k_begin >= 0 && k_end <= cz && k_begin <= k_end,
                     "isosurface: cube row range outside the grid");
  const bool has_mask = cell_valid.data() != nullptr;
  if (has_mask)
    AMRVIS_REQUIRE_MSG((cell_valid.shape() == Shape3{cx, cy, cz}),
                       "isosurface: mask shape must be cells of the grid");

  // Deterministic parallelism: one sub-mesh per z-layer, appended in
  // order; per-row triangle counts are recorded as the layer extracts.
  const std::int64_t nk = k_end - k_begin, nj = j_end - j_begin;
  std::vector<TriMesh> layers(static_cast<std::size_t>(nk));
  std::vector<std::vector<std::size_t>> counts(static_cast<std::size_t>(nk));
  parallel_for(nk, [&](std::int64_t kk) {
    const std::int64_t k = k_begin + kk;
    TriMesh& m = layers[static_cast<std::size_t>(kk)];
    auto& cnt = counts[static_cast<std::size_t>(kk)];
    cnt.assign(static_cast<std::size_t>(nj), 0);
    for (std::int64_t j = j_begin; j < j_end; ++j) {
      const std::size_t row_start = m.triangles.size();
      for (std::int64_t i = i_begin; i < i_end; ++i) {
        if (has_mask && !cell_valid(i, j, k)) continue;
        Vec3 pos[8];
        double val[8];
        for (int c = 0; c < 8; ++c) {
          const std::int64_t vi = i + kDx[c];
          const std::int64_t vj = j + kDy[c];
          const std::int64_t vk = k + kDz[c];
          val[c] = values(vi, vj, vk);
          pos[c] = {transform.origin.x +
                        static_cast<double>(vi) * transform.spacing,
                    transform.origin.y +
                        static_cast<double>(vj) * transform.spacing,
                    transform.origin.z +
                        static_cast<double>(vk) * transform.spacing};
        }
        // Quick reject: all 8 on the same side.
        int above = 0;
        for (double v : val)
          if (v > iso) ++above;
        if (above == 0 || above == 8) continue;
        for (const auto& tet : kTets) {
          const Vec3 tp[4] = {pos[tet[0]], pos[tet[1]], pos[tet[2]],
                              pos[tet[3]]};
          const double tf[4] = {val[tet[0]], val[tet[1]], val[tet[2]],
                                val[tet[3]]};
          contour_tet(tp, tf, iso, level, m);
        }
      }
      cnt[static_cast<std::size_t>(j - j_begin)] =
          m.triangles.size() - row_start;
    }
  });

  RowSpanMesh out;
  out.row_begin.assign(static_cast<std::size_t>(nk * nj) + 1, 0);
  std::size_t total = 0;
  for (std::int64_t kk = 0; kk < nk; ++kk)
    for (std::int64_t jj = 0; jj < nj; ++jj) {
      out.row_begin[static_cast<std::size_t>(kk * nj + jj)] = total;
      total += counts[static_cast<std::size_t>(kk)]
                     [static_cast<std::size_t>(jj)];
    }
  out.row_begin[static_cast<std::size_t>(nk * nj)] = total;
  out.mesh.vertices.reserve(3 * total);
  out.mesh.triangles.reserve(total);
  for (const TriMesh& m : layers) out.mesh.append(m);
  return out;
}

std::vector<Segment2D> marching_squares(View3<const double> values,
                                        double iso) {
  const Shape3 vs = values.shape();
  AMRVIS_REQUIRE_MSG(vs.nz == 1, "marching_squares: 2-D input required");
  std::vector<Segment2D> segments;

  auto lerp = [&](double x0, double y0, double f0, double x1, double y1,
                  double f1) -> std::pair<double, double> {
    const double denom = f1 - f0;
    double t = denom != 0.0 ? (iso - f0) / denom : 0.5;
    t = std::clamp(t, 0.0, 1.0);
    return {x0 + (x1 - x0) * t, y0 + (y1 - y0) * t};
  };

  for (std::int64_t j = 0; j + 1 < vs.ny; ++j)
    for (std::int64_t i = 0; i + 1 < vs.nx; ++i) {
      // Corner order: 0=(i,j) 1=(i+1,j) 2=(i+1,j+1) 3=(i,j+1).
      const double f0 = values(i, j, 0);
      const double f1 = values(i + 1, j, 0);
      const double f2 = values(i + 1, j + 1, 0);
      const double f3 = values(i, j + 1, 0);
      const double x0 = static_cast<double>(i), y0 = static_cast<double>(j);
      const double x1 = x0 + 1, y1 = y0 + 1;
      int c = 0;
      if (f0 > iso) c |= 1;
      if (f1 > iso) c |= 2;
      if (f2 > iso) c |= 4;
      if (f3 > iso) c |= 8;
      if (c == 0 || c == 15) continue;

      // Edge midpoints: bottom(0-1), right(1-2), top(3-2), left(0-3).
      const auto bottom = lerp(x0, y0, f0, x1, y0, f1);
      const auto right = lerp(x1, y0, f1, x1, y1, f2);
      const auto top = lerp(x0, y1, f3, x1, y1, f2);
      const auto left = lerp(x0, y0, f0, x0, y1, f3);

      auto add = [&](std::pair<double, double> a,
                     std::pair<double, double> b) {
        segments.push_back({a.first, a.second, b.first, b.second});
      };

      switch (c) {
        case 1: case 14: add(left, bottom); break;
        case 2: case 13: add(bottom, right); break;
        case 3: case 12: add(left, right); break;
        case 4: case 11: add(right, top); break;
        case 6: case 9: add(bottom, top); break;
        case 7: case 8: add(left, top); break;
        case 5: case 10: {
          // Saddle: disambiguate with the cell average.
          const double center = 0.25 * (f0 + f1 + f2 + f3);
          const bool center_in = center > iso;
          if ((c == 5) == center_in) {
            add(left, top);
            add(bottom, right);
          } else {
            add(left, bottom);
            add(right, top);
          }
          break;
        }
        default: break;
      }
    }
  return segments;
}

}  // namespace amrvis::vis
