#include "vis/resample.hpp"

#include "util/parallel.hpp"

namespace amrvis::vis {

namespace {
Shape3 vertex_shape(Shape3 s) { return {s.nx + 1, s.ny + 1, s.nz + 1}; }
}  // namespace

Array3<double> resample_to_vertices(View3<const double> cells) {
  const Shape3 cs = cells.shape();
  const Shape3 vs = vertex_shape(cs);
  Array3<double> verts(vs);
  auto vv = verts.view();
  parallel_for(vs.nz, [&](std::int64_t k) {
    for (std::int64_t j = 0; j < vs.ny; ++j)
      for (std::int64_t i = 0; i < vs.nx; ++i) {
        double sum = 0.0;
        int n = 0;
        for (std::int64_t dk = -1; dk <= 0; ++dk)
          for (std::int64_t dj = -1; dj <= 0; ++dj)
            for (std::int64_t di = -1; di <= 0; ++di) {
              const std::int64_t ci = i + di, cj = j + dj, ck = k + dk;
              if (ci < 0 || cj < 0 || ck < 0 || ci >= cs.nx || cj >= cs.ny ||
                  ck >= cs.nz)
                continue;
              sum += cells(ci, cj, ck);
              ++n;
            }
        vv(i, j, k) = sum / static_cast<double>(n);
      }
  });
  return verts;
}

Array3<double> resample_to_vertices_masked(
    View3<const double> cells, View3<const std::uint8_t> valid,
    Array3<std::uint8_t>& vertex_valid) {
  const Shape3 cs = cells.shape();
  const Shape3 vs = vertex_shape(cs);
  Array3<double> verts(vs, 0.0);
  vertex_valid = Array3<std::uint8_t>(vs, 0);
  auto vv = verts.view();
  auto mv = vertex_valid.view();
  parallel_for(vs.nz, [&](std::int64_t k) {
    for (std::int64_t j = 0; j < vs.ny; ++j)
      for (std::int64_t i = 0; i < vs.nx; ++i) {
        double sum = 0.0;
        int n = 0;
        for (std::int64_t dk = -1; dk <= 0; ++dk)
          for (std::int64_t dj = -1; dj <= 0; ++dj)
            for (std::int64_t di = -1; di <= 0; ++di) {
              const std::int64_t ci = i + di, cj = j + dj, ck = k + dk;
              if (ci < 0 || cj < 0 || ck < 0 || ci >= cs.nx || cj >= cs.ny ||
                  ck >= cs.nz || !valid(ci, cj, ck))
                continue;
              sum += cells(ci, cj, ck);
              ++n;
            }
        if (n > 0) {
          vv(i, j, k) = sum / static_cast<double>(n);
          mv(i, j, k) = 1;
        }
      }
  });
  return verts;
}

}  // namespace amrvis::vis
