#pragma once
// LZSS-style lossless back end applied after entropy coding — the
// "lossless compression" tail of the SZ pipeline (paper §2.1 stage 3).
//
// Blob layout (little-endian):
//
//   v2 (current writer)                 v1 (legacy, decode-only)
//   ------------------------------      -----------------------------
//   u64  out_size | kLzssV2Bit          u64  out_size   (bit 63 clear)
//        (bit 63 set)
//   u8   tag 0xA2 (magic nibble 0xA,
//        version nibble 2)
//   u64  token_len                      u64  token_len
//   u8[] token stream                   u8[] token stream
//
// Token stream (identical in both versions): a control byte describes the
// next 8 tokens, LSB first. Bit clear => literal (1 byte). Bit set =>
// match: u16 offset (0 encodes the full 65536-byte window), u8 length-4
// (match lengths 4..258). Both versions share one decoder; the version
// switch keys off bit 63 of the leading size word, which no v1 writer can
// set (it is the input byte count).
//
// Decode strictness differs by version:
//  - both: a match may never push the output past the declared out_size
//    (a corrupt token throws kCorruptPayload instead of returning a
//    buffer larger than its declared size), and out_size is capped at the
//    maximum possible expansion of the token stream before any
//    allocation.
//  - v2 only: the token stream must be consumed exactly — trailing token
//    bytes, trailing bytes after the token blob, and set control bits
//    past the final token all throw kCorruptPayload. v1 blobs keep the
//    historical leniency (trailing bytes ignored) so frozen v1 payloads
//    decode forever.
//
// The v2 encoder chooses tokens with a per-token bit-cost model (control
// bit + payload: literal = 9 bits, match = 25 bits) at one of three
// levels; all levels emit the same format and any level's output decodes
// with the same decoder.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/bytestream.hpp"

namespace amrvis::compress {

/// Parse effort for the v2 encoder. Levels trade compress throughput for
/// ratio; the format (and decode speed) is identical across levels.
enum class LzssLevel {
  kFast,     ///< greedy with skip acceleration (chunked compress path)
  kLazy,     ///< one-step-deferred lazy matching (default)
  kOptimal,  ///< DP optimal parse for the 9/25-bit cost model (archival)
};

/// Factory-name suffix for a level: "" for the default kLazy, "+fast" /
/// "+optimal" otherwise. Codec name()s append this so
/// make_compressor(codec->name()) round-trips the level.
std::string_view lzss_level_suffix(LzssLevel level);

/// Split a codec name into its base and an optional lzss level suffix
/// ("+fast" / "+lazy" / "+optimal"); names without a suffix parse as the
/// default kLazy ("+lazy" is accepted and normalizes to it).
struct LzssLevelSplit {
  std::string base;
  LzssLevel level;
};
LzssLevelSplit split_lzss_level(const std::string& name);

/// True when two codec names differ at most in their lzss level suffix.
/// The level changes the bytes a codec emits, not the format: any level's
/// blobs decode with any other level's codec, so blob/codec name checks
/// must compare level-agnostically.
bool codec_names_compatible(const std::string& a, const std::string& b);

/// Compress `input` into a v2 blob; output always decodable by
/// lzss_decode regardless of level.
Bytes lzss_encode(std::span<const std::uint8_t> input,
                  LzssLevel level = LzssLevel::kLazy);

/// Frozen v1 greedy writer (the PR3-era encoder, byte-for-byte). Kept so
/// the embedded-seed identity test and the v1-leniency regressions have a
/// live v1 producer; production codecs always write v2.
Bytes lzss_encode_v1(std::span<const std::uint8_t> input);

/// Decompress a blob produced by lzss_encode (v2) or lzss_encode_v1 (v1).
Bytes lzss_decode(std::span<const std::uint8_t> blob);

}  // namespace amrvis::compress
