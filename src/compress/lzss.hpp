#pragma once
// LZSS-style lossless back end applied after entropy coding — the
// "lossless compression" tail of the SZ pipeline (paper §2.1 stage 3).
//
// Greedy hash-chain matcher, 64 KiB window, minimum match 4 bytes. The
// format is self-describing and round-trips arbitrary bytes; incompressible
// input grows by at most 1/8 + O(1).

#include <cstdint>
#include <span>

#include "util/bytestream.hpp"

namespace amrvis::compress {

/// Compress `input`; output always decodable by lzss_decode.
Bytes lzss_encode(std::span<const std::uint8_t> input);

/// Decompress a blob produced by lzss_encode.
Bytes lzss_decode(std::span<const std::uint8_t> blob);

}  // namespace amrvis::compress
