#include "compress/szlr.hpp"

#include <algorithm>
#include <cmath>

#include "compress/huffman.hpp"
#include "compress/lzss.hpp"
#include "compress/quantizer.hpp"

namespace amrvis::compress {

namespace {

constexpr std::uint32_t kMagic = 0x535a4c52;  // "SZLR"

/// Zigzag varint append for signed coefficient codes.
void put_svarint(Bytes& out, std::int64_t v) {
  std::uint64_t u = (static_cast<std::uint64_t>(v) << 1) ^
                    static_cast<std::uint64_t>(v >> 63);
  while (u >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(u) | 0x80);
    u >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(u));
}

std::int64_t get_svarint(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint64_t u = 0;
  int shift = 0;
  while (true) {
    AMRVIS_REQUIRE_MSG(pos < in.size(), "szlr: truncated coeff stream");
    const std::uint8_t b = in[pos++];
    u |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

/// First-order 3-D Lorenzo prediction from the reconstructed field;
/// out-of-domain neighbors read as 0 (SZ convention).
inline double lorenzo_predict(const View3<const double>& recon,
                              std::int64_t i, std::int64_t j,
                              std::int64_t k) {
  auto f = [&](std::int64_t a, std::int64_t b, std::int64_t c) -> double {
    if (a < 0 || b < 0 || c < 0) return 0.0;
    return recon(a, b, c);
  };
  return f(i - 1, j, k) + f(i, j - 1, k) + f(i, j, k - 1) -
         f(i - 1, j - 1, k) - f(i - 1, j, k - 1) - f(i, j - 1, k - 1) +
         f(i - 1, j - 1, k - 1);
}

/// Least-squares plane fit over one block of original values.
struct RegressionFit {
  double b0 = 0, bx = 0, by = 0, bz = 0;
};

RegressionFit fit_block(View3<const double> data, std::int64_t i0,
                        std::int64_t j0, std::int64_t k0, std::int64_t bx,
                        std::int64_t by, std::int64_t bz) {
  // Centered coordinates are mutually orthogonal on a full grid, so each
  // slope is an independent 1-D least-squares solution.
  const double mx = (static_cast<double>(bx) - 1.0) / 2.0;
  const double my = (static_cast<double>(by) - 1.0) / 2.0;
  const double mz = (static_cast<double>(bz) - 1.0) / 2.0;
  double sum = 0, sx = 0, sy = 0, sz = 0, vxx = 0, vyy = 0, vzz = 0;
  for (std::int64_t dz = 0; dz < bz; ++dz)
    for (std::int64_t dy = 0; dy < by; ++dy)
      for (std::int64_t dx = 0; dx < bx; ++dx) {
        const double v = data(i0 + dx, j0 + dy, k0 + dz);
        const double cx = static_cast<double>(dx) - mx;
        const double cy = static_cast<double>(dy) - my;
        const double cz = static_cast<double>(dz) - mz;
        sum += v;
        sx += cx * v;
        sy += cy * v;
        sz += cz * v;
        vxx += cx * cx;
        vyy += cy * cy;
        vzz += cz * cz;
      }
  const double n = static_cast<double>(bx * by * bz);
  RegressionFit fit;
  fit.bx = vxx > 0 ? sx / vxx : 0.0;
  fit.by = vyy > 0 ? sy / vyy : 0.0;
  fit.bz = vzz > 0 ? sz / vzz : 0.0;
  // Express as v = b0 + bx*dx + by*dy + bz*dz with dx from block origin.
  fit.b0 = sum / n - fit.bx * mx - fit.by * my - fit.bz * mz;
  return fit;
}

/// Coefficient quantizer state: per-coefficient error bound and the
/// previous block's codes for delta encoding.
struct CoeffCodec {
  double eb0, ebs;  // intercept / slope bounds
  std::int64_t prev[4] = {0, 0, 0, 0};

  explicit CoeffCodec(double abs_eb, int block_size)
      : eb0(abs_eb * 0.5),
        ebs(abs_eb / (2.0 * static_cast<double>(block_size))) {}

  /// Quantize a fit, append delta codes, return the reconstructed fit the
  /// decoder will see.
  RegressionFit encode(const RegressionFit& fit, Bytes& stream) {
    const double ebs_[4] = {eb0, ebs, ebs, ebs};
    const double vals[4] = {fit.b0, fit.bx, fit.by, fit.bz};
    double recon[4];
    for (int c = 0; c < 4; ++c) {
      const auto code = static_cast<std::int64_t>(
          std::llround(vals[c] / (2.0 * ebs_[c])));
      put_svarint(stream, code - prev[c]);
      prev[c] = code;
      recon[c] = 2.0 * ebs_[c] * static_cast<double>(code);
    }
    return {recon[0], recon[1], recon[2], recon[3]};
  }

  RegressionFit decode(std::span<const std::uint8_t> stream,
                       std::size_t& pos) {
    const double ebs_[4] = {eb0, ebs, ebs, ebs};
    double recon[4];
    for (int c = 0; c < 4; ++c) {
      prev[c] += get_svarint(stream, pos);
      recon[c] = 2.0 * ebs_[c] * static_cast<double>(prev[c]);
    }
    return {recon[0], recon[1], recon[2], recon[3]};
  }
};

}  // namespace

Bytes SzLrCompressor::compress(View3<const double> data,
                               double abs_eb) const {
  const Shape3 s = data.shape();
  const std::int64_t bs = block_size_;
  const LinearQuantizer quant(abs_eb);

  Array3<double> recon_arr(s);
  auto recon = recon_arr.view();
  View3<const double> recon_c(recon_arr.data(), s);

  std::vector<std::uint32_t> codes;
  codes.reserve(static_cast<std::size_t>(s.size()));
  std::vector<double> outliers;
  Bytes choice_bits;          // one byte per block (0 = Lorenzo, 1 = regression)
  Bytes coeff_stream;
  CoeffCodec coeffs(abs_eb, block_size_);

  const std::int64_t nbx = (s.nx + bs - 1) / bs;
  const std::int64_t nby = (s.ny + bs - 1) / bs;
  const std::int64_t nbz = (s.nz + bs - 1) / bs;

  for (std::int64_t bk = 0; bk < nbz; ++bk)
    for (std::int64_t bj = 0; bj < nby; ++bj)
      for (std::int64_t bi = 0; bi < nbx; ++bi) {
        const std::int64_t i0 = bi * bs, j0 = bj * bs, k0 = bk * bs;
        const std::int64_t ex = std::min(bs, s.nx - i0);
        const std::int64_t ey = std::min(bs, s.ny - j0);
        const std::int64_t ez = std::min(bs, s.nz - k0);

        // Candidate 1: regression fit on original values.
        const RegressionFit fit = fit_block(data, i0, j0, k0, ex, ey, ez);

        // Estimate both predictors' error on the original data. Lorenzo
        // is estimated with original neighbors (cheap, decoder-free), the
        // standard SZ2 selection heuristic.
        double err_reg = 0.0, err_lor = 0.0;
        for (std::int64_t dz = 0; dz < ez; ++dz)
          for (std::int64_t dy = 0; dy < ey; ++dy)
            for (std::int64_t dx = 0; dx < ex; ++dx) {
              const std::int64_t i = i0 + dx, j = j0 + dy, k = k0 + dz;
              const double v = data(i, j, k);
              const double pr = fit.b0 + fit.bx * static_cast<double>(dx) +
                                fit.by * static_cast<double>(dy) +
                                fit.bz * static_cast<double>(dz);
              err_reg += std::abs(v - pr);
              auto f = [&](std::int64_t a, std::int64_t b,
                           std::int64_t c) -> double {
                if (a < 0 || b < 0 || c < 0) return 0.0;
                return data(a, b, c);
              };
              const double pl = f(i - 1, j, k) + f(i, j - 1, k) +
                                f(i, j, k - 1) - f(i - 1, j - 1, k) -
                                f(i - 1, j, k - 1) - f(i, j - 1, k - 1) +
                                f(i - 1, j - 1, k - 1);
              err_lor += std::abs(v - pl);
            }

        const bool use_regression = err_reg < err_lor;
        choice_bits.push_back(use_regression ? 1 : 0);

        RegressionFit qfit;
        if (use_regression) qfit = coeffs.encode(fit, coeff_stream);

        for (std::int64_t dz = 0; dz < ez; ++dz)
          for (std::int64_t dy = 0; dy < ey; ++dy)
            for (std::int64_t dx = 0; dx < ex; ++dx) {
              const std::int64_t i = i0 + dx, j = j0 + dy, k = k0 + dz;
              const double v = data(i, j, k);
              const double pred =
                  use_regression
                      ? qfit.b0 + qfit.bx * static_cast<double>(dx) +
                            qfit.by * static_cast<double>(dy) +
                            qfit.bz * static_cast<double>(dz)
                      : lorenzo_predict(recon_c, i, j, k);
              double rv;
              codes.push_back(quant.encode(v, pred, rv, outliers));
              recon(i, j, k) = rv;
            }
      }

  // Assemble the container.
  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint32_t>(kMagic);
  w.put<std::int64_t>(s.nx);
  w.put<std::int64_t>(s.ny);
  w.put<std::int64_t>(s.nz);
  w.put<double>(abs_eb);
  w.put<std::int32_t>(static_cast<std::int32_t>(bs));

  const Bytes choice_z = lzss_encode(choice_bits);
  const Bytes coeff_z = lzss_encode(coeff_stream);
  const Bytes codes_z = lzss_encode(huffman_encode(codes));
  w.put_blob(choice_z);
  w.put_blob(coeff_z);
  w.put_blob(codes_z);
  w.put<std::uint64_t>(outliers.size());
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(outliers.data()),
               outliers.size() * sizeof(double)});
  return blob;
}

Array3<double> SzLrCompressor::decompress(
    std::span<const std::uint8_t> blob) const {
  ByteReader r(blob);
  AMRVIS_REQUIRE_MSG(r.get<std::uint32_t>() == kMagic,
                     "szlr: bad magic");
  Shape3 s;
  s.nx = r.get<std::int64_t>();
  s.ny = r.get<std::int64_t>();
  s.nz = r.get<std::int64_t>();
  const double abs_eb = r.get<double>();
  const auto bs = static_cast<std::int64_t>(r.get<std::int32_t>());

  const Bytes choice_bits = lzss_decode(r.get_blob());
  const Bytes coeff_stream = lzss_decode(r.get_blob());
  const std::vector<std::uint32_t> codes =
      huffman_decode(lzss_decode(r.get_blob()));
  const auto n_outliers = r.get<std::uint64_t>();
  // Checked before the multiply: a corrupt count near 2^61 would wrap the
  // byte size and sneak past get_bytes' own bounds check.
  AMRVIS_REQUIRE_MSG(n_outliers <= r.remaining() / sizeof(double),
                     "sz-lr: truncated outlier stream");
  const auto outlier_bytes =
      r.get_bytes(static_cast<std::size_t>(n_outliers) * sizeof(double));
  std::vector<double> outliers(static_cast<std::size_t>(n_outliers));
  std::memcpy(outliers.data(), outlier_bytes.data(), outlier_bytes.size());

  const LinearQuantizer quant(abs_eb);
  Array3<double> out(s);
  auto recon = out.view();
  View3<const double> recon_c(out.data(), s);

  const std::int64_t nbx = (s.nx + bs - 1) / bs;
  const std::int64_t nby = (s.ny + bs - 1) / bs;
  const std::int64_t nbz = (s.nz + bs - 1) / bs;

  CoeffCodec coeffs(abs_eb, static_cast<int>(bs));
  std::size_t coeff_pos = 0;
  std::size_t code_pos = 0;
  std::size_t outlier_pos = 0;
  std::size_t block_idx = 0;

  for (std::int64_t bk = 0; bk < nbz; ++bk)
    for (std::int64_t bj = 0; bj < nby; ++bj)
      for (std::int64_t bi = 0; bi < nbx; ++bi, ++block_idx) {
        const std::int64_t i0 = bi * bs, j0 = bj * bs, k0 = bk * bs;
        const std::int64_t ex = std::min(bs, s.nx - i0);
        const std::int64_t ey = std::min(bs, s.ny - j0);
        const std::int64_t ez = std::min(bs, s.nz - k0);
        AMRVIS_REQUIRE_MSG(block_idx < choice_bits.size(),
                           "szlr: truncated choice stream");
        const bool use_regression = choice_bits[block_idx] != 0;
        RegressionFit qfit;
        if (use_regression) qfit = coeffs.decode(coeff_stream, coeff_pos);

        for (std::int64_t dz = 0; dz < ez; ++dz)
          for (std::int64_t dy = 0; dy < ey; ++dy)
            for (std::int64_t dx = 0; dx < ex; ++dx) {
              const std::int64_t i = i0 + dx, j = j0 + dy, k = k0 + dz;
              const double pred =
                  use_regression
                      ? qfit.b0 + qfit.bx * static_cast<double>(dx) +
                            qfit.by * static_cast<double>(dy) +
                            qfit.bz * static_cast<double>(dz)
                      : lorenzo_predict(recon_c, i, j, k);
              AMRVIS_REQUIRE_MSG(code_pos < codes.size(),
                                 "szlr: truncated code stream");
              recon(i, j, k) = quant.decode(codes[code_pos++], pred,
                                            outliers.data(), outlier_pos);
            }
      }
  return out;
}

}  // namespace amrvis::compress
