#include "compress/szlr.hpp"

#include <algorithm>
#include <cmath>

#include "compress/huffman.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "compress/lzss.hpp"
#include "compress/quantizer.hpp"

namespace amrvis::compress {

namespace {

constexpr std::uint32_t kMagic = 0x535a4c52;  // "SZLR"

/// Zigzag varint append for signed coefficient codes.
void put_svarint(Bytes& out, std::int64_t v) {
  std::uint64_t u = (static_cast<std::uint64_t>(v) << 1) ^
                    static_cast<std::uint64_t>(v >> 63);
  while (u >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(u) | 0x80);
    u >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(u));
}

std::int64_t get_svarint(std::span<const std::uint8_t> in, std::size_t& pos) {
  std::uint64_t u = 0;
  int shift = 0;
  while (true) {
    AMRVIS_CHECK(ErrorCode::kCorruptPayload, pos < in.size(),
                 "szlr: truncated coeff stream");
    // Guard the shift before it passes the type width (UB on a corrupt
    // run of continuation bytes); 10 bytes cover any 64-bit value.
    AMRVIS_CHECK(ErrorCode::kCorruptPayload, shift < 64,
                 "szlr: corrupt coeff varint");
    const std::uint8_t b = in[pos++];
    u |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) break;
    shift += 7;
  }
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

/// First-order 3-D Lorenzo prediction from the reconstructed field;
/// out-of-domain neighbors read as 0 (SZ convention). General (boundary)
/// form — the hot interior path reads the same stencil through raw
/// pointers in the block loops below.
inline double lorenzo_predict(const View3<const double>& recon,
                              std::int64_t i, std::int64_t j,
                              std::int64_t k) {
  auto f = [&](std::int64_t a, std::int64_t b, std::int64_t c) -> double {
    if (a < 0 || b < 0 || c < 0) return 0.0;
    return recon(a, b, c);
  };
  return f(i - 1, j, k) + f(i, j - 1, k) + f(i, j, k - 1) -
         f(i - 1, j - 1, k) - f(i - 1, j, k - 1) - f(i, j - 1, k - 1) +
         f(i - 1, j - 1, k - 1);
}

/// Least-squares plane fit over one block of original values.
struct RegressionFit {
  double b0 = 0, bx = 0, by = 0, bz = 0;
};

/// Geometry of one block: origin and clipped extents.
struct BlockGeom {
  std::int64_t i0, j0, k0;  ///< block origin
  std::int64_t ex, ey, ez;  ///< clipped extents
  /// True when every point's full Lorenzo stencil is in-domain, i.e. the
  /// block touches no low boundary: neighbor reads need i-1, j-1, k-1
  /// only, so high-side clipping never leaves the domain.
  bool interior;
};

/// Fused pass over one block of original values: the regression-fit
/// moments and the Lorenzo predictor's error estimate (against original
/// neighbors — the standard SZ2 selection heuristic, decoder-free) in a
/// single sweep. Interior blocks read the 7-point stencil through raw row
/// pointers with no per-point domain checks.
RegressionFit fit_and_lorenzo_error(const double* dp, std::int64_t sy,
                                    std::int64_t sz, const BlockGeom& g,
                                    double& err_lor_out) {
  // Centered coordinates are mutually orthogonal on a full grid, so each
  // slope is an independent 1-D least-squares solution.
  const double mx = (static_cast<double>(g.ex) - 1.0) / 2.0;
  const double my = (static_cast<double>(g.ey) - 1.0) / 2.0;
  const double mz = (static_cast<double>(g.ez) - 1.0) / 2.0;
  double sum = 0, sx = 0, sy_ = 0, sz_ = 0, vxx = 0, vyy = 0, vzz = 0;
  double err_lor = 0.0;
  for (std::int64_t dz = 0; dz < g.ez; ++dz)
    for (std::int64_t dy = 0; dy < g.ey; ++dy) {
      const double* p = dp + (g.k0 + dz) * sz + (g.j0 + dy) * sy + g.i0;
      const double cy = static_cast<double>(dy) - my;
      const double cz = static_cast<double>(dz) - mz;
      if (g.interior) {
        for (std::int64_t dx = 0; dx < g.ex; ++dx) {
          const double v = p[dx];
          const double cx = static_cast<double>(dx) - mx;
          sum += v;
          sx += cx * v;
          sy_ += cy * v;
          sz_ += cz * v;
          vxx += cx * cx;
          vyy += cy * cy;
          vzz += cz * cz;
          const double pl = p[dx - 1] + p[dx - sy] + p[dx - sz] -
                            p[dx - 1 - sy] - p[dx - 1 - sz] -
                            p[dx - sy - sz] + p[dx - 1 - sy - sz];
          err_lor += std::abs(v - pl);
        }
      } else {
        const std::int64_t j = g.j0 + dy, k = g.k0 + dz;
        for (std::int64_t dx = 0; dx < g.ex; ++dx) {
          const double v = p[dx];
          const double cx = static_cast<double>(dx) - mx;
          sum += v;
          sx += cx * v;
          sy_ += cy * v;
          sz_ += cz * v;
          vxx += cx * cx;
          vyy += cy * cy;
          vzz += cz * cz;
          const std::int64_t i = g.i0 + dx;
          auto f = [&](std::int64_t a, std::int64_t b,
                       std::int64_t c) -> double {
            if (a < 0 || b < 0 || c < 0) return 0.0;
            return dp[c * sz + b * sy + a];
          };
          const double pl = f(i - 1, j, k) + f(i, j - 1, k) +
                            f(i, j, k - 1) - f(i - 1, j - 1, k) -
                            f(i - 1, j, k - 1) - f(i, j - 1, k - 1) +
                            f(i - 1, j - 1, k - 1);
          err_lor += std::abs(v - pl);
        }
      }
    }
  const double n = static_cast<double>(g.ex * g.ey * g.ez);
  RegressionFit fit;
  fit.bx = vxx > 0 ? sx / vxx : 0.0;
  fit.by = vyy > 0 ? sy_ / vyy : 0.0;
  fit.bz = vzz > 0 ? sz_ / vzz : 0.0;
  // Express as v = b0 + bx*dx + by*dy + bz*dz with dx from block origin.
  fit.b0 = sum / n - fit.bx * mx - fit.by * my - fit.bz * mz;
  err_lor_out = err_lor;
  return fit;
}

/// Regression predictor's error estimate over one block (needs the
/// completed fit, hence its own light pass: no stencil reads, no
/// branches).
double regression_error(const double* dp, std::int64_t sy, std::int64_t sz,
                        const BlockGeom& g, const RegressionFit& fit) {
  double err_reg = 0.0;
  for (std::int64_t dz = 0; dz < g.ez; ++dz)
    for (std::int64_t dy = 0; dy < g.ey; ++dy) {
      const double* p = dp + (g.k0 + dz) * sz + (g.j0 + dy) * sy + g.i0;
      for (std::int64_t dx = 0; dx < g.ex; ++dx) {
        const double v = p[dx];
        const double pr = fit.b0 + fit.bx * static_cast<double>(dx) +
                          fit.by * static_cast<double>(dy) +
                          fit.bz * static_cast<double>(dz);
        err_reg += std::abs(v - pr);
      }
    }
  return err_reg;
}

/// Coefficient quantizer state: per-coefficient error bound and the
/// previous block's codes for delta encoding.
struct CoeffCodec {
  double eb0, ebs;  // intercept / slope bounds
  std::int64_t prev[4] = {0, 0, 0, 0};

  explicit CoeffCodec(double abs_eb, int block_size)
      : eb0(abs_eb * 0.5),
        ebs(abs_eb / (2.0 * static_cast<double>(block_size))) {}

  /// Quantize a fit, append delta codes, return the reconstructed fit the
  /// decoder will see.
  RegressionFit encode(const RegressionFit& fit, Bytes& stream) {
    const double ebs_[4] = {eb0, ebs, ebs, ebs};
    const double vals[4] = {fit.b0, fit.bx, fit.by, fit.bz};
    double recon[4];
    for (int c = 0; c < 4; ++c) {
      const auto code = static_cast<std::int64_t>(
          std::llround(vals[c] / (2.0 * ebs_[c])));
      put_svarint(stream, code - prev[c]);
      prev[c] = code;
      recon[c] = 2.0 * ebs_[c] * static_cast<double>(code);
    }
    return {recon[0], recon[1], recon[2], recon[3]};
  }

  RegressionFit decode(std::span<const std::uint8_t> stream,
                       std::size_t& pos) {
    const double ebs_[4] = {eb0, ebs, ebs, ebs};
    double recon[4];
    for (int c = 0; c < 4; ++c) {
      prev[c] += get_svarint(stream, pos);
      recon[c] = 2.0 * ebs_[c] * static_cast<double>(prev[c]);
    }
    return {recon[0], recon[1], recon[2], recon[3]};
  }
};

}  // namespace

Bytes SzLrCompressor::compress(View3<const double> data,
                               double abs_eb) const {
  static auto& ops = obs::counter("codec.sz-lr.compress");
  ops.add();
  OBS_SPAN("codec.sz-lr.compress", {"cells", data.shape().size()});
  const Shape3 s = data.shape();
  const std::int64_t bs = block_size_;
  const LinearQuantizer quant(abs_eb);

  Array3<double> recon_arr(s);
  double* rbase = recon_arr.data();
  auto recon = recon_arr.view();
  View3<const double> recon_c(recon_arr.data(), s);

  const double* dp = data.data();
  const std::int64_t sy = s.nx;         // element step for j+1
  const std::int64_t sz = s.nx * s.ny;  // element step for k+1

  // One code per point, written through a cursor: the block loops below
  // visit every point exactly once, so the final cursor position is
  // checked against the pre-sized buffer instead of growing it per push.
  std::vector<std::uint32_t> codes(static_cast<std::size_t>(s.size()));
  std::uint32_t* cp = codes.data();
  std::vector<double> outliers;
  Bytes choice_bits;          // one byte per block (0 = Lorenzo, 1 = regression)
  Bytes coeff_stream;
  CoeffCodec coeffs(abs_eb, block_size_);

  const std::int64_t nbx = (s.nx + bs - 1) / bs;
  const std::int64_t nby = (s.ny + bs - 1) / bs;
  const std::int64_t nbz = (s.nz + bs - 1) / bs;

  for (std::int64_t bk = 0; bk < nbz; ++bk)
    for (std::int64_t bj = 0; bj < nby; ++bj)
      for (std::int64_t bi = 0; bi < nbx; ++bi) {
        BlockGeom g;
        g.i0 = bi * bs;
        g.j0 = bj * bs;
        g.k0 = bk * bs;
        g.ex = std::min(bs, s.nx - g.i0);
        g.ey = std::min(bs, s.ny - g.j0);
        g.ez = std::min(bs, s.nz - g.k0);
        g.interior = g.i0 > 0 && g.j0 > 0 && g.k0 > 0;

        // Candidate 1: regression fit on original values, fused with the
        // Lorenzo predictor's error estimate (original-neighbor form).
        double err_lor = 0.0;
        const RegressionFit fit =
            fit_and_lorenzo_error(dp, sy, sz, g, err_lor);
        const double err_reg = regression_error(dp, sy, sz, g, fit);

        const bool use_regression = err_reg < err_lor;
        choice_bits.push_back(use_regression ? 1 : 0);

        if (use_regression) {
          // Branch-free quantize: the plane predictor reads no neighbors,
          // so clipping and boundaries are irrelevant.
          const RegressionFit qfit = coeffs.encode(fit, coeff_stream);
          for (std::int64_t dz = 0; dz < g.ez; ++dz)
            for (std::int64_t dy = 0; dy < g.ey; ++dy) {
              const std::int64_t row =
                  (g.k0 + dz) * sz + (g.j0 + dy) * sy + g.i0;
              const double* p = dp + row;
              double* rp = rbase + row;
              for (std::int64_t dx = 0; dx < g.ex; ++dx) {
                const double pred =
                    qfit.b0 + qfit.bx * static_cast<double>(dx) +
                    qfit.by * static_cast<double>(dy) +
                    qfit.bz * static_cast<double>(dz);
                double rv;
                *cp++ = quant.encode(p[dx], pred, rv, outliers);
                rp[dx] = rv;
              }
            }
        } else if (g.interior) {
          // Lorenzo from the reconstruction through raw pointers; the
          // full stencil is in-domain for every point of the block.
          for (std::int64_t dz = 0; dz < g.ez; ++dz)
            for (std::int64_t dy = 0; dy < g.ey; ++dy) {
              const std::int64_t row =
                  (g.k0 + dz) * sz + (g.j0 + dy) * sy + g.i0;
              const double* p = dp + row;
              double* rp = rbase + row;
              for (std::int64_t dx = 0; dx < g.ex; ++dx) {
                const double pred =
                    rp[dx - 1] + rp[dx - sy] + rp[dx - sz] -
                    rp[dx - 1 - sy] - rp[dx - 1 - sz] -
                    rp[dx - sy - sz] + rp[dx - 1 - sy - sz];
                double rv;
                *cp++ = quant.encode(p[dx], pred, rv, outliers);
                rp[dx] = rv;
              }
            }
        } else {
          // Boundary block: general branchy path (zero-extended reads).
          for (std::int64_t dz = 0; dz < g.ez; ++dz)
            for (std::int64_t dy = 0; dy < g.ey; ++dy)
              for (std::int64_t dx = 0; dx < g.ex; ++dx) {
                const std::int64_t i = g.i0 + dx, j = g.j0 + dy,
                                   k = g.k0 + dz;
                const double pred = lorenzo_predict(recon_c, i, j, k);
                double rv;
                *cp++ = quant.encode(data(i, j, k), pred, rv, outliers);
                recon(i, j, k) = rv;
              }
        }
      }

  AMRVIS_REQUIRE(cp == codes.data() + codes.size());

  // Assemble the container.
  Bytes blob;
  ByteWriter w(blob);
  w.put<std::uint32_t>(kMagic);
  w.put<std::int64_t>(s.nx);
  w.put<std::int64_t>(s.ny);
  w.put<std::int64_t>(s.nz);
  w.put<double>(abs_eb);
  w.put<std::int32_t>(static_cast<std::int32_t>(bs));

  const Bytes choice_z = lzss_encode(choice_bits, lzss_level_);
  const Bytes coeff_z = lzss_encode(coeff_stream, lzss_level_);
  const Bytes codes_z = lzss_encode(huffman_encode(codes), lzss_level_);
  w.put_blob(choice_z);
  w.put_blob(coeff_z);
  w.put_blob(codes_z);
  w.put<std::uint64_t>(outliers.size());
  w.put_bytes({reinterpret_cast<const std::uint8_t*>(outliers.data()),
               outliers.size() * sizeof(double)});
  return blob;
}

Array3<double> SzLrCompressor::decompress(
    std::span<const std::uint8_t> blob) const {
  static auto& ops = obs::counter("codec.sz-lr.decompress");
  ops.add();
  OBS_SPAN("codec.sz-lr.decompress",
           {"bytes", static_cast<std::int64_t>(blob.size())});
  ByteReader r(blob);
  AMRVIS_CHECK(ErrorCode::kCorruptPayload, r.get<std::uint32_t>() == kMagic,
               "szlr: bad magic");
  Shape3 s;
  s.nx = r.get<std::int64_t>();
  s.ny = r.get<std::int64_t>();
  s.nz = r.get<std::int64_t>();
  const double abs_eb = r.get<double>();
  const auto bs = static_cast<std::int64_t>(r.get<std::int32_t>());
  // Header fields are attacker-controlled on a corrupt blob: reject
  // shapes that would overflow the cell count and strides that would
  // divide by zero BEFORE anything is allocated or looped over.
  constexpr std::int64_t kMaxDim = std::int64_t{1} << 24;
  constexpr std::int64_t kMaxCells = std::int64_t{1} << 31;
  AMRVIS_CHECK(ErrorCode::kCorruptPayload,
               s.nx >= 1 && s.ny >= 1 && s.nz >= 1 && s.nx <= kMaxDim &&
                   s.ny <= kMaxDim && s.nz <= kMaxDim &&
                   s.ny <= kMaxCells / s.nx &&
                   s.nz <= kMaxCells / (s.nx * s.ny),
               "szlr: corrupt shape");
  AMRVIS_CHECK(ErrorCode::kCorruptPayload, bs >= 2 && bs <= kMaxDim,
               "szlr: corrupt block size");

  const Bytes choice_bits = lzss_decode(r.get_blob());
  const Bytes coeff_stream = lzss_decode(r.get_blob());
  const std::vector<std::uint32_t> codes =
      huffman_decode(lzss_decode(r.get_blob()));
  const auto n_outliers = r.get<std::uint64_t>();
  // Checked before the multiply: a corrupt count near 2^61 would wrap the
  // byte size and sneak past get_bytes' own bounds check.
  AMRVIS_CHECK(ErrorCode::kCorruptPayload,
               n_outliers <= r.remaining() / sizeof(double),
               "sz-lr: truncated outlier stream");
  const auto outlier_bytes =
      r.get_bytes(static_cast<std::size_t>(n_outliers) * sizeof(double));
  std::vector<double> outliers(static_cast<std::size_t>(n_outliers));
  std::memcpy(outliers.data(), outlier_bytes.data(), outlier_bytes.size());

  // One upfront completeness check instead of one per point: a truncated
  // code stream throws before any block is decoded (the seed threw at the
  // first missing code). Ordered before the output allocation so a
  // corrupt shape cannot commit cells the stored streams never encoded.
  AMRVIS_CHECK(ErrorCode::kCorruptPayload,
               static_cast<std::int64_t>(codes.size()) >= s.size(),
               "szlr: truncated code stream");

  const LinearQuantizer quant(abs_eb);
  Array3<double> out(s);
  double* rbase = out.data();
  auto recon = out.view();
  View3<const double> recon_c(out.data(), s);

  const std::int64_t sy = s.nx;
  const std::int64_t sz = s.nx * s.ny;

  const std::int64_t nbx = (s.nx + bs - 1) / bs;
  const std::int64_t nby = (s.ny + bs - 1) / bs;
  const std::int64_t nbz = (s.nz + bs - 1) / bs;

  CoeffCodec coeffs(abs_eb, static_cast<int>(bs));
  std::size_t coeff_pos = 0;
  std::size_t code_pos = 0;
  std::size_t outlier_pos = 0;
  std::size_t block_idx = 0;

  for (std::int64_t bk = 0; bk < nbz; ++bk)
    for (std::int64_t bj = 0; bj < nby; ++bj)
      for (std::int64_t bi = 0; bi < nbx; ++bi, ++block_idx) {
        BlockGeom g;
        g.i0 = bi * bs;
        g.j0 = bj * bs;
        g.k0 = bk * bs;
        g.ex = std::min(bs, s.nx - g.i0);
        g.ey = std::min(bs, s.ny - g.j0);
        g.ez = std::min(bs, s.nz - g.k0);
        g.interior = g.i0 > 0 && g.j0 > 0 && g.k0 > 0;
        AMRVIS_CHECK(ErrorCode::kCorruptPayload,
                     block_idx < choice_bits.size(),
                     "szlr: truncated choice stream");
        const bool use_regression = choice_bits[block_idx] != 0;

        if (use_regression) {
          const RegressionFit qfit = coeffs.decode(coeff_stream, coeff_pos);
          for (std::int64_t dz = 0; dz < g.ez; ++dz)
            for (std::int64_t dy = 0; dy < g.ey; ++dy) {
              double* rp =
                  rbase + (g.k0 + dz) * sz + (g.j0 + dy) * sy + g.i0;
              for (std::int64_t dx = 0; dx < g.ex; ++dx) {
                const double pred =
                    qfit.b0 + qfit.bx * static_cast<double>(dx) +
                    qfit.by * static_cast<double>(dy) +
                    qfit.bz * static_cast<double>(dz);
                rp[dx] = quant.decode(codes[code_pos++], pred, outliers,
                                      outlier_pos);
              }
            }
        } else if (g.interior) {
          for (std::int64_t dz = 0; dz < g.ez; ++dz)
            for (std::int64_t dy = 0; dy < g.ey; ++dy) {
              double* rp =
                  rbase + (g.k0 + dz) * sz + (g.j0 + dy) * sy + g.i0;
              for (std::int64_t dx = 0; dx < g.ex; ++dx) {
                const double pred =
                    rp[dx - 1] + rp[dx - sy] + rp[dx - sz] -
                    rp[dx - 1 - sy] - rp[dx - 1 - sz] -
                    rp[dx - sy - sz] + rp[dx - 1 - sy - sz];
                rp[dx] = quant.decode(codes[code_pos++], pred, outliers,
                                      outlier_pos);
              }
            }
        } else {
          for (std::int64_t dz = 0; dz < g.ez; ++dz)
            for (std::int64_t dy = 0; dy < g.ey; ++dy)
              for (std::int64_t dx = 0; dx < g.ex; ++dx) {
                const std::int64_t i = g.i0 + dx, j = g.j0 + dy,
                                   k = g.k0 + dz;
                const double pred = lorenzo_predict(recon_c, i, j, k);
                recon(i, j, k) = quant.decode(codes[code_pos++], pred,
                                              outliers, outlier_pos);
              }
        }
      }
  return out;
}

}  // namespace amrvis::compress
