#pragma once
// Canonical Huffman codec over 32-bit symbols — the entropy stage of the
// SZ-style pipelines (paper §2.1 stage 3, "customized Huffman coding").
//
// The encoder builds a length-limited (<= 32 bit) canonical code from
// symbol frequencies and serializes a compact table: used symbols in
// increasing order (delta-varint) plus one length byte each. A stream of
// identical symbols degenerates to a 1-bit/symbol code.

#include <cstdint>
#include <span>
#include <vector>

#include "util/bytestream.hpp"

namespace amrvis::compress {

/// Encode `symbols` into a self-describing byte blob.
Bytes huffman_encode(std::span<const std::uint32_t> symbols);

/// Decode a blob produced by huffman_encode.
std::vector<std::uint32_t> huffman_decode(std::span<const std::uint8_t> blob);

}  // namespace amrvis::compress
