#pragma once
// TileStream: out-of-core, one-decoded-tile-at-a-time iteration over a
// chunked container blob (compress/chunked.hpp) — the read-path primitive
// behind streamed visualization of fields too large to inflate whole.
//
// Where decompress() materializes the entire field and decompress_region()
// materializes one box, TileStream yields one decoded tile per next()
// call: the tile's cell box, its v2 stats (conservative (-inf, +inf) on a
// v1 container) and an owning buffer the caller takes. Peak memory held
// by the stream is bounded by TWO inflated tiles plus the compressed blob
// — instrumented (peak_live_tiles() / peak_live_bytes()) and asserted,
// never just promised.
//
// Ordering policy:
//  - kLayout        every selected tile in container slot order
//                   (row-major, tx fastest — the order decompress()
//                   assembles).
//  - kValueBand     only tiles whose recorded [min, max] range intersects
//                   [band_lo, band_hi]; still in slot order. Band
//                   semantics go through TileStatsView: on a v4 container
//                   the recorded ranges bound decoded values, so the
//                   match is exact and `band_widen` is ignored; on older
//                   containers the ranges describe original values and
//                   are widened by `band_widen` (pass the codec's abs_eb
//                   when the query targets decoded values). On a v1
//                   container every tile qualifies — conservative, never
//                   wrong. skipped_exact()/skipped_conservative() report
//                   how many tiles the band cut and under which regime.
//  - kExpectedBand  the kValueBand selection, reordered by the v4
//                   histogram sketch's expected in-band cell mass
//                   (descending, stable by slot) — decode-ahead reaches
//                   the surface-dense tiles first. Without a sketch the
//                   order degrades to kValueBand's slot order.
// An optional `region` box additionally restricts any order to tiles
// intersecting it (the slab-raster access pattern of the streamed
// isosurface path).
//
// Prefetch: with `prefetch` on (default), tiles are decoded in pairs
// through the exception-safe parallel helpers (util/parallel.hpp), so the
// tile after the one being consumed is already inflated when next() is
// called for it — one-tile decode-ahead at the cost of the second live
// buffer. The yielded sequence, and every decoded byte, is identical with
// prefetch on or off, serial or threaded (each tile blob is decoded by
// the wrapped codec's single-thread-deterministic decoder). A codec
// exception inside the prefetch batch is rethrown from next() on the
// calling thread, exactly as a serial decode would throw; the thrown
// Error carries the (container id, slot) of the failed tile. The cursor
// does not advance, so ONE subsequent next() call retries the failed
// batch — a transient failure (e.g. an injected fault) clears and the
// stream continues losslessly. A second consecutive failure poisons the
// stream: further next() calls throw Error{kDecodeFailure} instead of
// yielding tiles, so a catch-and-continue caller can never mistake an
// undecoded buffer for data.
//
// Lifetime: the stream aliases both the codec and the blob — the caller
// keeps them alive for the stream's lifetime.

#include <atomic>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "amr/box.hpp"
#include "compress/chunked.hpp"

namespace amrvis::compress {

/// One decoded tile: slot index, cell box in the full field (0-based,
/// inclusive corners), header stats and the owning decoded buffer.
struct StreamTile {
  std::int64_t index = 0;
  amr::Box box;
  TileStats stats;
  Array3<double> data;  ///< box-shaped decoded values
};

struct TileStreamOptions {
  enum class Order {
    kLayout,        ///< all tiles, container slot order
    kValueBand,     ///< only tiles whose value range meets the band
    kExpectedBand,  ///< band tiles, ranked by expected in-band mass
  };
  Order order = Order::kLayout;
  double band_lo = 0.0;    ///< band orders: inclusive band low edge
  double band_hi = 0.0;    ///< band orders: inclusive band high edge
  /// Widen the band by this (codec abs_eb) when culling against pre-v4
  /// original-value stats; ignored when the container carries exact
  /// decoded-value stats (v4).
  double band_widen = 0.0;
  std::optional<amr::Box> region;  ///< keep only tiles intersecting this
  /// Optional custom filter, applied after the order/region filters:
  /// tiles it rejects are never decoded. Receives the slot index,
  /// field-local cell box and header stats — the streamed isosurface
  /// cull plans its exact tile set through this.
  std::function<bool(const TileRegion&)> select;
  bool prefetch = true;    ///< pair decode-ahead via parallel helpers
  /// Optional shared decoded-tile cache (compress/tile_cache.hpp): tiles
  /// are served from / retained in it keyed by (cache.container, slot).
  /// The yielded sequence and every byte stay identical; only the decode
  /// work moves (cache_hits() counts the tiles that skipped a decode).
  TileCacheRef cache{};
  /// Optional cancellation/deadline token checked before each decode
  /// batch; fires as Error{kCancelled}/Error{kTimeout} from next(). The
  /// token must outlive the stream.
  const util::CancelToken* cancel = nullptr;
};

class TileStream {
 public:
  /// Parses and validates the container header (throws on corruption);
  /// no tile payload is decoded until next().
  TileStream(const ChunkedCompressor& codec,
             std::span<const std::uint8_t> blob, TileStreamOptions options = {});

  /// The next selected tile, or nullopt when the stream is exhausted.
  /// Ownership of the decoded buffer transfers to the caller.
  std::optional<StreamTile> next();

  [[nodiscard]] const Shape3& field_shape() const { return pc_.shape; }
  /// Tiles in the container.
  [[nodiscard]] std::int64_t tiles_total() const { return pc_.ntiles; }
  /// Tiles passing the ordering policy / region filters.
  [[nodiscard]] std::int64_t tiles_selected() const {
    return static_cast<std::int64_t>(selected_.size());
  }
  /// Tiles decoded so far (== tiles handed out + tiles still buffered).
  [[nodiscard]] std::int64_t tiles_decoded() const { return decoded_; }
  /// Of tiles_decoded(), how many were served by the shared cache
  /// without running a decode (0 without TileStreamOptions::cache).
  [[nodiscard]] std::int64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  /// Tiles the value band rejected using exact v4 decoded-value bounds.
  [[nodiscard]] std::int64_t skipped_exact() const { return skipped_exact_; }
  /// Tiles the value band rejected using eb-widened pre-v4 bounds.
  [[nodiscard]] std::int64_t skipped_conservative() const {
    return skipped_conservative_;
  }

  /// Decoded tiles currently held by the stream (prefetch buffer).
  [[nodiscard]] int live_tiles() const {
    return static_cast<int>(buffer_.size() - head_);
  }
  /// High-water mark of live_tiles(); the memory-bound contract is <= 2.
  [[nodiscard]] int peak_live_tiles() const { return peak_live_tiles_; }
  /// High-water mark of decoded bytes held by the stream.
  [[nodiscard]] std::size_t peak_live_bytes() const {
    return peak_live_bytes_;
  }

 private:
  void refill();
  void decode_batch(std::size_t batch);

  const ChunkedCompressor* codec_;
  detail::ParsedContainer pc_;
  bool prefetch_;
  TileCacheRef cache_;
  const util::CancelToken* cancel_ = nullptr;
  std::vector<std::int64_t> selected_;  ///< slot indices, policy order
  std::size_t cursor_ = 0;              ///< next selected_ entry to decode
  std::int64_t skipped_exact_ = 0;
  std::int64_t skipped_conservative_ = 0;
  std::vector<StreamTile> buffer_;      ///< decoded, not yet handed out
  std::size_t head_ = 0;                ///< first live entry of buffer_
  std::int64_t decoded_ = 0;
  /// Atomic: the prefetch pair decodes concurrently, and both batch
  /// members may hit the cache at once (the S1 counter-safety contract;
  /// the other counters are only written after the batch joins).
  std::atomic<std::int64_t> cache_hits_{0};
  int batch_failures_ = 0;  ///< consecutive failures of the CURRENT batch
  bool poisoned_ = false;   ///< the batch failed twice; next() refuses
  ErrorContext failed_ctx_{};  ///< (container, slot) of the failed tile
  int peak_live_tiles_ = 0;
  std::size_t peak_live_bytes_ = 0;
};

}  // namespace amrvis::compress
