#pragma once
// Top-level error-bounded lossy compressor interface.
//
// All codecs consume a 3-D view of doubles and an *absolute* error bound,
// and emit a self-describing byte blob (shape and parameters included).
// Relative error bounds (the mode used throughout the paper) are resolved
// against the data value range by resolve_abs_eb().

#include <memory>
#include <string>
#include <vector>

#include "util/array3d.hpp"
#include "util/bytestream.hpp"

namespace amrvis::compress {

enum class ErrorBoundMode {
  kAbsolute,  ///< bound on |x - x'| directly
  kRelative,  ///< bound is eb * (max - min) of the input
};

/// Convert a (mode, value) error bound into the absolute bound for `data`.
/// For constant data in relative mode, falls back to a tiny absolute bound
/// so the quantizer stays well-defined.
double resolve_abs_eb(ErrorBoundMode mode, double eb,
                      std::span<const double> data);

class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Short identifier, e.g. "sz-lr".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Compress with an absolute error bound; guarantees
  /// max |x - decompress(compress(x))| <= abs_eb.
  [[nodiscard]] virtual Bytes compress(View3<const double> data,
                                       double abs_eb) const = 0;

  /// Decompress a blob produced by this codec's compress().
  [[nodiscard]] virtual Array3<double> decompress(
      std::span<const std::uint8_t> blob) const = 0;
};

/// Base codec names make_compressor accepts (without the "chunked-"
/// container prefix), in registration order. Error messages and CLI help
/// build on this so the list can never drift from the factory.
const std::vector<std::string>& registered_compressor_names();

/// Factory: any name from registered_compressor_names(), optionally with
/// an LZSS parse-level suffix "+fast"/"+lazy"/"+optimal" (default lazy),
/// optionally wrapped in the tile-parallel container as "chunked-<codec>"
/// with an optional tile-shape suffix "chunked-<codec>@TXxTYxTZ" (e.g.
/// "chunked-sz-lr+optimal@32x32x16"). Codec name()s re-emit the level
/// suffix, so make_compressor(codec->name()) round-trips. Throws on
/// unknown names; the exception message lists every registered codec and
/// the suffix forms.
std::unique_ptr<Compressor> make_compressor(const std::string& name);

/// Convenience: compression ratio of original doubles vs blob size.
inline double compression_ratio(std::int64_t num_values,
                                std::size_t compressed_bytes) {
  return static_cast<double>(num_values) * static_cast<double>(sizeof(double)) /
         static_cast<double>(compressed_bytes);
}

}  // namespace amrvis::compress
