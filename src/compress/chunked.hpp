#pragma once
// Chunk-parallel wrapper codec: tiles a field into fixed-size slabs,
// compresses each tile independently with a wrapped codec via
// parallel_for, and concatenates the tile blobs under a versioned
// container header with per-tile sizes and (since v2) per-tile
// min/max statistics.
//
// Determinism: the tile -> slot mapping is fixed (row-major tile order,
// tx fastest) and the concatenation is serial after the parallel region
// joins, so a container blob is bit-identical across OMP_NUM_THREADS
// settings and across the no-OpenMP build (each tile blob is produced by
// the wrapped codec, whose encoders are single-thread deterministic).
// Per-tile stats are computed inside each tile's own (serial) pass and
// serialized after the join, so v2 keeps the same guarantee.
//
// Container layout (little-endian, all fields validated on decompress):
//
//   u32  magic "AVCK"
//   u16  version (1, 2 or 3; the writer emits 3, all decode)
//   u16  codec-name length, followed by that many name bytes
//   i64  nx, ny, nz        full field shape
//   i64  tx, ty, tz        tile extents (boundary tiles are clipped)
//   u64  ntiles            must equal ceil(nx/tx)*ceil(ny/ty)*ceil(nz/tz)
//   u64  size[ntiles]      byte size of each tile blob, tile order
//   f64  (min,max)[ntiles] v2+: per-tile input value range, tile order
//   f64  face (min,max)[6][ntiles]
//                          v3 only: per-tile FACE-SLAB value ranges —
//                          the range of the cells within two layers of
//                          each tile face, face order [-x,+x,-y,+y,-z,+z]
//                          — tile order
//        payload           concatenated tile blobs, tile order
//
// The stats table is what makes the container a queryable store instead
// of a blob pipe: decompress_region() inflates only the tiles a request
// box touches, and tiles_overlapping(lo, hi) culls tiles whose value
// range cannot intersect an isosurface / query band without touching the
// payload at all. Stats are ranges of the *original* data; decoded
// values may exceed them by up to the absolute error bound, so widen the
// query band by abs_eb when culling against decompressed values. A tile
// (or face slab) containing any NaN cell records (-inf, +inf) — the
// same conservative "anything" range a v1 container implies: the
// quantizer round-trips non-finite values losslessly, so NaN-masked
// fields are legal inputs, and a marching cube with a NaN corner can
// still emit geometry, so no finite range may vouch for such a region.
//
// The v3 face-slab table exists for seam-exact streaming consumers (the
// streamed isosurface in vis/amr_iso): a cube of cells crossing a tile
// boundary draws its values from the two facing boundary slabs, so a
// neighbor tile needs decoding only when those slabs' combined range can
// cross the query band — without face ranges, every neighbor of an
// interesting tile must be decoded and a thin isosurface shell dilates
// into most of the field. Two layers deep because the re-sampling
// pipeline's vertex windows reach two cells past a seam.
//
// Error-bound semantics are unchanged: every tile is compressed with the
// same absolute bound, so the wrapper provides the same max-error
// guarantee as the wrapped codec.

#include <array>
#include <memory>
#include <vector>

#include "amr/box.hpp"
#include "compress/compressor.hpp"
#include "compress/tile_cache.hpp"
#include "util/cancel.hpp"

namespace amrvis::compress {

/// Tile extents used by ChunkedCompressor. The default is a z-slab-ish
/// tile: big enough that per-tile codec headers are noise, small enough
/// that the flagship 64x64x128 field splits into 8 tiles for load balance.
struct ChunkShape {
  std::int64_t nx = 64;
  std::int64_t ny = 64;
  std::int64_t nz = 16;

  [[nodiscard]] bool valid() const { return nx > 0 && ny > 0 && nz > 0; }
  friend bool operator==(const ChunkShape&, const ChunkShape&) = default;
};

/// Parse a "TXxTYxTZ" tile spec (e.g. "32x32x16") into a ChunkShape.
/// Throws on malformed specs or non-positive extents. This is the format
/// make_compressor accepts after '@' in "chunked-<codec>@TXxTYxTZ".
ChunkShape parse_chunk_shape(const std::string& spec);

/// Per-tile value range recorded in the v2+ container header.
struct TileStats {
  double min = 0.0;
  double max = 0.0;
};

/// Per-tile face-slab ranges (v3): range of the cells within two layers
/// of each face, order [-x, +x, -y, +y, -z, +z] (index 2*axis + side).
using TileFaceStats = std::array<TileStats, 6>;

/// One tile selected by a header query: its slot index and the cell
/// region it covers in the full field (0-based, inclusive corners).
struct TileRegion {
  std::int64_t index = 0;
  amr::Box box;
  TileStats stats;
};

/// Decode-count instrumentation for decompress_region: how many tiles
/// were actually inflated vs how many the container holds. Tests use it
/// to prove partial decode stays partial. Instances are per-query stack
/// state, never shared between threads — concurrent queries each carry
/// their own (the thread-safety story for instrumentation under the
/// concurrent query service).
struct RegionDecodeStats {
  std::int64_t tiles_decoded = 0;  ///< tiles this query inflated itself
  std::int64_t tiles_total = 0;
  std::int64_t cache_hits = 0;     ///< tiles served from a shared cache
};

namespace detail {

/// Tile grid geometry for a field shape under fixed tile extents.
struct TileGrid {
  std::int64_t tnx = 0, tny = 0, tnz = 0;  ///< tiles per axis
  [[nodiscard]] std::int64_t count() const { return tnx * tny * tnz; }
};

TileGrid tile_grid(const Shape3& s, const ChunkShape& t);

/// Origin and clipped extents of one tile slot (row-major, tx fastest).
struct TileBox {
  std::int64_t i0 = 0, j0 = 0, k0 = 0;
  Shape3 ext;
};

TileBox tile_box(std::int64_t t, const TileGrid& g, const Shape3& s,
                 const ChunkShape& tile);

amr::Box tile_cell_box(const TileBox& b);

/// Fully validated container header plus payload slices. Slicing the tile
/// spans is O(ntiles) pointer arithmetic — no payload is inflated, so
/// header-only queries (tiles_overlapping, TileStream planning) stay
/// cheap. The spans alias the parsed blob: the blob must outlive the
/// ParsedContainer.
struct ParsedContainer {
  std::uint16_t version = 0;
  Shape3 shape;
  ChunkShape tile;
  TileGrid grid{};
  std::int64_t ntiles = 0;
  std::vector<std::span<const std::uint8_t>> tiles;
  std::vector<TileStats> stats;       ///< empty on a v1 container
  std::vector<TileFaceStats> faces;   ///< empty below v3

  /// Stats of slot `t`; the conservative (-inf, +inf) on a v1 container.
  [[nodiscard]] TileStats stats_of(std::int64_t t) const;
};

ParsedContainer parse_container(std::span<const std::uint8_t> blob,
                                const std::string& expect_codec);

/// While alive on this thread, parse_container degrades an invalid
/// stats/faces table to "no table" (the conservative v1 semantics: every
/// tile may hold anything) instead of throwing Error{kStatsInvalid}.
/// Header and payload corruption still throw. The scope is thread-local
/// ambient state: it covers the serving thread's parse calls only, which
/// is where every parse in the query pipeline happens — tile decode work
/// handed to pool workers never re-parses the header.
class ScopedLenientStats {
 public:
  ScopedLenientStats();
  ~ScopedLenientStats();
  ScopedLenientStats(const ScopedLenientStats&) = delete;
  ScopedLenientStats& operator=(const ScopedLenientStats&) = delete;
};

[[nodiscard]] bool lenient_stats_active();

/// The one true tile-payload decode: the fault-injection tile-decode site
/// (throw / bit-flip) wraps the inner codec here, so every decode path —
/// full inflate, region decode, tile stream, cache fill, batch prefetch —
/// is instrumentable.
Array3<double> decode_tile(const Compressor& inner,
                           std::span<const std::uint8_t> blob);

}  // namespace detail

class ChunkedCompressor final : public Compressor {
 public:
  /// Owning wrapper (what make_compressor("chunked-...") builds).
  explicit ChunkedCompressor(std::unique_ptr<Compressor> inner,
                             ChunkShape tile = {});

  /// Non-owning wrapper around a codec the caller keeps alive — used by
  /// the AMR pipeline to route oversized patches through tiling without
  /// cloning the codec.
  explicit ChunkedCompressor(const Compressor& inner, ChunkShape tile = {});

  /// "chunked-" + wrapped codec name, e.g. "chunked-sz-lr"; a non-default
  /// tile shape is appended as "@TXxTYxTZ" (e.g. "chunked-sz-lr@32x32x16")
  /// so make_compressor(name()) reproduces the codec including its tile
  /// policy.
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] Bytes compress(View3<const double> data,
                               double abs_eb) const override;
  [[nodiscard]] Array3<double> decompress(
      std::span<const std::uint8_t> blob) const override;

  /// Region-of-interest decode: inflate only the tiles intersecting
  /// `region` (0-based cell box, must lie inside the field) and return
  /// the region's values as a region-shaped array. Bit-identical to the
  /// same box sliced out of a full decompress(). Works on v1 and v2
  /// containers; `stats`, when non-null, receives the decode counts.
  /// `cache`, when engaged, serves/retains whole decoded tiles keyed by
  /// (cache.container, slot) — concurrent queries for the same tile
  /// decode it once, and stats split into tiles_decoded vs cache_hits.
  /// `cancel`, when non-null, is checked at tile granularity and aborts
  /// the decode with Error{kCancelled}/Error{kTimeout}.
  [[nodiscard]] Array3<double> decompress_region(
      std::span<const std::uint8_t> blob, const amr::Box& region,
      RegionDecodeStats* stats = nullptr, const TileCacheRef& cache = {},
      const util::CancelToken* cancel = nullptr) const;

  /// Value-range tile cull: the tiles whose recorded [min, max] range
  /// intersects [lo, hi], without touching the payload. On a v1
  /// container (no stats table) every tile is returned — conservative,
  /// never wrong. Stats describe the original data; widen [lo, hi] by
  /// the absolute error bound when the query targets decoded values.
  [[nodiscard]] std::vector<TileRegion> tiles_overlapping(
      std::span<const std::uint8_t> blob, double lo, double hi) const;

  /// Per-tile face-slab ranges (slot order) from a v3 container header —
  /// no payload touched. Empty for v1/v2 containers: consumers must fall
  /// back to the whole-tile range (every face slab is a subset of it).
  [[nodiscard]] std::vector<TileFaceStats> tile_face_stats(
      std::span<const std::uint8_t> blob) const;

  [[nodiscard]] const ChunkShape& tile() const { return tile_; }
  [[nodiscard]] const Compressor& inner() const {
    return owned_ ? *owned_ : *borrowed_;
  }

  /// True when `blob` starts with the chunked container magic; used to
  /// detect tiled patch blobs inside an AmrCompressed.
  static bool is_chunked_blob(std::span<const std::uint8_t> blob);

 private:
  std::unique_ptr<Compressor> owned_;
  const Compressor* borrowed_ = nullptr;
  ChunkShape tile_;
};

}  // namespace amrvis::compress
