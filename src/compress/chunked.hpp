#pragma once
// Chunk-parallel wrapper codec: tiles a field into fixed-size slabs,
// compresses each tile independently with a wrapped codec via
// parallel_for, and concatenates the tile blobs under a versioned
// container header with per-tile sizes.
//
// Determinism: the tile -> slot mapping is fixed (row-major tile order,
// tx fastest) and the concatenation is serial after the parallel region
// joins, so a container blob is bit-identical across OMP_NUM_THREADS
// settings and across the no-OpenMP build (each tile blob is produced by
// the wrapped codec, whose encoders are single-thread deterministic).
//
// Container layout (little-endian, all fields validated on decompress):
//
//   u32  magic "AVCK"
//   u16  version (1)
//   u16  codec-name length, followed by that many name bytes
//   i64  nx, ny, nz        full field shape
//   i64  tx, ty, tz        tile extents (boundary tiles are clipped)
//   u64  ntiles            must equal ceil(nx/tx)*ceil(ny/ty)*ceil(nz/tz)
//   u64  size[ntiles]      byte size of each tile blob, tile order
//        payload           concatenated tile blobs, tile order
//
// Error-bound semantics are unchanged: every tile is compressed with the
// same absolute bound, so the wrapper provides the same max-error
// guarantee as the wrapped codec.

#include <memory>

#include "compress/compressor.hpp"

namespace amrvis::compress {

/// Tile extents used by ChunkedCompressor. The default is a z-slab-ish
/// tile: big enough that per-tile codec headers are noise, small enough
/// that the flagship 64x64x128 field splits into 8 tiles for load balance.
struct ChunkShape {
  std::int64_t nx = 64;
  std::int64_t ny = 64;
  std::int64_t nz = 16;

  [[nodiscard]] bool valid() const { return nx > 0 && ny > 0 && nz > 0; }
};

class ChunkedCompressor final : public Compressor {
 public:
  /// Owning wrapper (what make_compressor("chunked-...") builds).
  explicit ChunkedCompressor(std::unique_ptr<Compressor> inner,
                             ChunkShape tile = {});

  /// Non-owning wrapper around a codec the caller keeps alive — used by
  /// the AMR pipeline to route oversized patches through tiling without
  /// cloning the codec.
  explicit ChunkedCompressor(const Compressor& inner, ChunkShape tile = {});

  /// "chunked-" + wrapped codec name, e.g. "chunked-sz-lr".
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] Bytes compress(View3<const double> data,
                               double abs_eb) const override;
  [[nodiscard]] Array3<double> decompress(
      std::span<const std::uint8_t> blob) const override;

  [[nodiscard]] const ChunkShape& tile() const { return tile_; }
  [[nodiscard]] const Compressor& inner() const {
    return owned_ ? *owned_ : *borrowed_;
  }

  /// True when `blob` starts with the chunked container magic; used to
  /// detect tiled patch blobs inside an AmrCompressed.
  static bool is_chunked_blob(std::span<const std::uint8_t> blob);

 private:
  std::unique_ptr<Compressor> owned_;
  const Compressor* borrowed_ = nullptr;
  ChunkShape tile_;
};

}  // namespace amrvis::compress
