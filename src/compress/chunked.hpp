#pragma once
// Chunk-parallel wrapper codec: tiles a field into fixed-size slabs,
// compresses each tile independently with a wrapped codec via
// parallel_for, and concatenates the tile blobs under a versioned
// container header with per-tile sizes and (since v2) per-tile
// min/max statistics.
//
// Determinism: the tile -> slot mapping is fixed (row-major tile order,
// tx fastest) and the concatenation is serial after the parallel region
// joins, so a container blob is bit-identical across OMP_NUM_THREADS
// settings and across the no-OpenMP build (each tile blob is produced by
// the wrapped codec, whose encoders are single-thread deterministic).
// Per-tile stats — including the v4 round-trip decode that derives them —
// are computed inside each tile's own (serial) pass and serialized after
// the join, so every version keeps the same guarantee.
//
// Container layout (little-endian, all fields validated on decompress):
//
//   u32  magic "AVCK"
//   u16  version (1-4; the writer emits 4, all decode)
//   u16  codec-name length, followed by that many name bytes
//   i64  nx, ny, nz        full field shape
//   i64  tx, ty, tz        tile extents (boundary tiles are clipped)
//   u64  ntiles            must equal ceil(nx/tx)*ceil(ny/ty)*ceil(nz/tz)
//   u64  size[ntiles]      byte size of each tile blob, tile order
//   f64  (min,max)[ntiles] v2+: per-tile value range, tile order
//   f64  face (min,max)[6][ntiles]
//                          v3+: per-tile FACE-SLAB value ranges —
//                          the range of the cells within two layers of
//                          each tile face, face order [-x,+x,-y,+y,-z,+z]
//                          — tile order
//   f64  max_err[ntiles]   v4: per-tile ACHIEVED max |orig - decoded|
//                          over finite cells (>= 0, NaN rejected)
//   u32  hist[16][ntiles]  v4: per-tile decoded-value histogram, 16
//                          equal-width buckets over the tile's decoded
//                          [min, max]; bucket counts sum to the tile's
//                          cell count, or are all zero ("no info", the
//                          NaN-tile encoding) — tile order
//        payload           concatenated tile blobs, tile order
//
// The stats table is what makes the container a queryable store instead
// of a blob pipe: decompress_region() inflates only the tiles a request
// box touches, and tiles_overlapping(lo, hi) culls tiles whose value
// range cannot intersect an isosurface / query band without touching the
// payload at all.
//
// v2/v3 stats are ranges of the *original* data; decoded values may
// exceed them by up to the absolute error bound, so widen the query band
// by abs_eb when culling against decompressed values. Since v4 the
// writer round-trips every tile through the wrapped codec during
// compression and records the range of the values a decoder will
// actually reconstruct — the cull is EXACT at decoded-value level, no
// widening, which is what rescues bands the eb-widened original-value
// cull cannot separate (the Nyx density field). The round-trip also
// yields the achieved max error per tile and a 16-bucket decoded-value
// histogram used to rank tiles by expected in-band cell mass for
// decode-ahead ordering. A tile (or face slab) containing any NaN cell
// records (-inf, +inf) — the same conservative "anything" range a v1
// container implies: the quantizer round-trips non-finite values
// losslessly, so NaN-masked fields are legal inputs, and a marching cube
// with a NaN corner can still emit geometry, so no finite range may
// vouch for such a region. NaN tiles write an all-zero histogram.
//
// The v3 face-slab table exists for seam-exact streaming consumers (the
// streamed isosurface in vis/amr_iso): a cube of cells crossing a tile
// boundary draws its values from the two facing boundary slabs, so a
// neighbor tile needs decoding only when those slabs' combined range can
// cross the query band — without face ranges, every neighbor of an
// interesting tile must be decoded and a thin isosurface shell dilates
// into most of the field. Two layers deep because the re-sampling
// pipeline's vertex windows reach two cells past a seam.
//
// Error-bound semantics are unchanged: every tile is compressed with the
// same absolute bound, so the wrapper provides the same max-error
// guarantee as the wrapped codec.

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "amr/box.hpp"
#include "compress/compressor.hpp"
#include "compress/tile_cache.hpp"
#include "util/cancel.hpp"

namespace amrvis::compress {

/// Tile extents used by ChunkedCompressor. The default is a z-slab-ish
/// tile: big enough that per-tile codec headers are noise, small enough
/// that the flagship 64x64x128 field splits into 8 tiles for load balance.
struct ChunkShape {
  std::int64_t nx = 64;
  std::int64_t ny = 64;
  std::int64_t nz = 16;

  [[nodiscard]] bool valid() const { return nx > 0 && ny > 0 && nz > 0; }
  friend bool operator==(const ChunkShape&, const ChunkShape&) = default;
};

/// Parse a "TXxTYxTZ" tile spec (e.g. "32x32x16") into a ChunkShape.
/// Throws on malformed specs or non-positive extents. This is the format
/// make_compressor accepts after '@' in "chunked-<codec>@TXxTYxTZ".
ChunkShape parse_chunk_shape(const std::string& spec);

/// Per-tile value range recorded in the v2+ container header.
struct TileStats {
  double min = 0.0;
  double max = 0.0;
};

/// Per-tile face-slab ranges (v3+): range of the cells within two layers
/// of each face, order [-x, +x, -y, +y, -z, +z] (index 2*axis + side).
using TileFaceStats = std::array<TileStats, 6>;

/// Fixed-width decoded-value histogram sketch recorded per tile in v4
/// containers: equal-width buckets over the tile's decoded [min, max].
inline constexpr int kTileHistBuckets = 16;
using TileHistogram = std::array<std::uint32_t, kTileHistBuckets>;

/// One tile selected by a header query: its slot index and the cell
/// region it covers in the full field (0-based, inclusive corners).
struct TileRegion {
  std::int64_t index = 0;
  amr::Box box;
  TileStats stats;
};

/// Decode-count instrumentation for decompress_region: how many tiles
/// were actually inflated vs how many the container holds. Tests use it
/// to prove partial decode stays partial. Instances are per-query stack
/// state, never shared between threads — concurrent queries each carry
/// their own (the thread-safety story for instrumentation under the
/// concurrent query service).
struct RegionDecodeStats {
  std::int64_t tiles_decoded = 0;  ///< tiles this query inflated itself
  std::int64_t tiles_total = 0;
  std::int64_t cache_hits = 0;     ///< tiles served from a shared cache
  /// Tiles skipped by a value cull, split by WHY the skip was sound:
  /// `exact` when v4 decoded-value bounds ruled the tile out with no
  /// widening, `conservative` when pre-v4 original-value bounds did so
  /// only after eb-widening. Zero outside value-culled paths.
  std::int64_t tiles_culled_exact = 0;
  std::int64_t tiles_culled_conservative = 0;
};

namespace detail {

/// Tile grid geometry for a field shape under fixed tile extents.
struct TileGrid {
  std::int64_t tnx = 0, tny = 0, tnz = 0;  ///< tiles per axis
  [[nodiscard]] std::int64_t count() const { return tnx * tny * tnz; }
};

TileGrid tile_grid(const Shape3& s, const ChunkShape& t);

/// Origin and clipped extents of one tile slot (row-major, tx fastest).
struct TileBox {
  std::int64_t i0 = 0, j0 = 0, k0 = 0;
  Shape3 ext;
};

TileBox tile_box(std::int64_t t, const TileGrid& g, const Shape3& s,
                 const ChunkShape& tile);

amr::Box tile_cell_box(const TileBox& b);

/// Fully validated container header plus payload slices. Slicing the tile
/// spans is O(ntiles) pointer arithmetic — no payload is inflated, so
/// header-only queries (tiles_overlapping, TileStream planning) stay
/// cheap. The spans alias the parsed blob: the blob must outlive the
/// ParsedContainer.
struct ParsedContainer {
  std::uint16_t version = 0;
  Shape3 shape;
  ChunkShape tile;
  TileGrid grid{};
  std::int64_t ntiles = 0;
  std::vector<std::span<const std::uint8_t>> tiles;
  std::vector<TileStats> stats;       ///< empty on a v1 container
  std::vector<TileFaceStats> faces;   ///< empty below v3
  std::vector<double> max_err;        ///< empty below v4
  std::vector<TileHistogram> hist;    ///< empty below v4

  /// Stats of slot `t`; the conservative (-inf, +inf) on a v1 container.
  [[nodiscard]] TileStats stats_of(std::int64_t t) const;
};

ParsedContainer parse_container(std::span<const std::uint8_t> blob,
                                const std::string& expect_codec);

/// While alive on this thread, parse_container degrades an invalid
/// stats/faces table to "no table" (the conservative v1 semantics: every
/// tile may hold anything) instead of throwing Error{kStatsInvalid}.
/// Header and payload corruption still throw. The scope is thread-local
/// ambient state: it covers the serving thread's parse calls only, which
/// is where every parse in the query pipeline happens — tile decode work
/// handed to pool workers never re-parses the header.
class ScopedLenientStats {
 public:
  ScopedLenientStats();
  ~ScopedLenientStats();
  ScopedLenientStats(const ScopedLenientStats&) = delete;
  ScopedLenientStats& operator=(const ScopedLenientStats&) = delete;
};

[[nodiscard]] bool lenient_stats_active();

/// The one true tile-payload decode: the fault-injection tile-decode site
/// (throw / bit-flip) wraps the inner codec here, so every decode path —
/// full inflate, region decode, tile stream, cache fill, batch prefetch —
/// is instrumentable.
Array3<double> decode_tile(const Compressor& inner,
                           std::span<const std::uint8_t> blob);

}  // namespace detail

/// The one shared read-side view over a container's per-tile statistics —
/// every cull/rank decision (tiles_overlapping, TileStream band order,
/// the streamed-iso seam cull, QueryService prefetch ranking) consumes
/// stats through this instead of poking at the raw tables.
///
/// Semantics: on a v4 container the stats bound DECODED values, so
/// ranges are served raw and `exact()` is true; on older containers (or
/// a v4 whose tables were dropped by a lenient parse) the stats bound
/// original values, so every range is widened by the `widen` the caller
/// supplies (its abs_eb) and `exact()` is false. Non-owning: the parsed
/// container must outlive the view.
class TileStatsView {
 public:
  explicit TileStatsView(const detail::ParsedContainer& pc,
                         double widen = 0.0);

  /// True when ranges are exact decoded-value bounds (v4 stats present):
  /// a cull against them needs no eb-widening.
  [[nodiscard]] bool exact() const { return exact_; }

  /// Whole-tile value range of slot `t`, widened when not exact.
  /// (-inf, +inf) when the container carries no usable stats.
  [[nodiscard]] TileStats tile_range(std::int64_t t) const;

  /// Face-slab range of slot `t`, face order [-x,+x,-y,+y,-z,+z];
  /// falls back to the whole-tile range below v3. Widened when not exact.
  [[nodiscard]] TileStats face_range(std::int64_t t, int face) const;

  /// Achieved max |orig - decoded| of slot `t`; +inf below v4 (the
  /// conservative "only the eb bound is known" answer).
  [[nodiscard]] double max_err(std::int64_t t) const;

  /// May slot `t` hold a decoded value in [lo, hi]? Never wrongly false.
  [[nodiscard]] bool may_contain(std::int64_t t, double lo, double hi) const;

  /// Upper bound on the fraction of slot `t`'s cells whose decoded value
  /// lies in [lo, hi], from the v4 histogram sketch; 1.0 when no sketch
  /// is available. Monotone ranking signal, not an exact count.
  [[nodiscard]] double expected_in_band(std::int64_t t, double lo,
                                        double hi) const;

 private:
  const detail::ParsedContainer* pc_;
  double widen_ = 0.0;
  bool exact_ = false;
};

class ChunkedCompressor final : public Compressor {
 public:
  /// Owning wrapper (what make_compressor("chunked-...") builds).
  explicit ChunkedCompressor(std::unique_ptr<Compressor> inner,
                             ChunkShape tile = {});

  /// Non-owning wrapper around a codec the caller keeps alive — used by
  /// the AMR pipeline to route oversized patches through tiling without
  /// cloning the codec.
  explicit ChunkedCompressor(const Compressor& inner, ChunkShape tile = {});

  /// "chunked-" + wrapped codec name, e.g. "chunked-sz-lr"; a non-default
  /// tile shape is appended as "@TXxTYxTZ" (e.g. "chunked-sz-lr@32x32x16")
  /// so make_compressor(name()) reproduces the codec including its tile
  /// policy.
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] Bytes compress(View3<const double> data,
                               double abs_eb) const override;
  [[nodiscard]] Array3<double> decompress(
      std::span<const std::uint8_t> blob) const override;

  /// Region-of-interest decode: inflate only the tiles intersecting
  /// `region` (0-based cell box, must lie inside the field) and return
  /// the region's values as a region-shaped array. Bit-identical to the
  /// same box sliced out of a full decompress(). Works on v1 and v2
  /// containers; `stats`, when non-null, receives the decode counts.
  /// `cache`, when engaged, serves/retains whole decoded tiles keyed by
  /// (cache.container, slot) — concurrent queries for the same tile
  /// decode it once, and stats split into tiles_decoded vs cache_hits.
  /// `cancel`, when non-null, is checked at tile granularity and aborts
  /// the decode with Error{kCancelled}/Error{kTimeout}.
  [[nodiscard]] Array3<double> decompress_region(
      std::span<const std::uint8_t> blob, const amr::Box& region,
      RegionDecodeStats* stats = nullptr, const TileCacheRef& cache = {},
      const util::CancelToken* cancel = nullptr) const;

  /// Value-range tile cull: the tiles whose recorded [min, max] range
  /// intersects [lo, hi], without touching the payload. On a v1
  /// container (no stats table) every tile is returned — conservative,
  /// never wrong. v4 stats bound decoded values, so the cull is exact
  /// with no widening; v2/v3 stats describe the original data — widen
  /// [lo, hi] by the absolute error bound when the query targets decoded
  /// values.
  [[nodiscard]] std::vector<TileRegion> tiles_overlapping(
      std::span<const std::uint8_t> blob, double lo, double hi) const;

  /// Per-tile face-slab ranges (slot order) from a v3 container header —
  /// no payload touched. Empty for v1/v2 containers: consumers must fall
  /// back to the whole-tile range (every face slab is a subset of it).
  [[nodiscard]] std::vector<TileFaceStats> tile_face_stats(
      std::span<const std::uint8_t> blob) const;

  [[nodiscard]] const ChunkShape& tile() const { return tile_; }
  [[nodiscard]] const Compressor& inner() const {
    return owned_ ? *owned_ : *borrowed_;
  }

  /// True when `blob` starts with the chunked container magic; used to
  /// detect tiled patch blobs inside an AmrCompressed.
  static bool is_chunked_blob(std::span<const std::uint8_t> blob);

 private:
  std::unique_ptr<Compressor> owned_;
  const Compressor* borrowed_ = nullptr;
  ChunkShape tile_;
};

}  // namespace amrvis::compress
