#pragma once
// SZ-Interp: global interpolation-based compressor in the style of SZ3
// (Zhao et al., ICDE 2021), the paper's second algorithm (§3.3).
//
// A coarse anchor grid (stride 2^L) is stored raw; each level then halves
// the stride with three axis sweeps, predicting every new point from its
// already-reconstructed neighbors along that axis (cubic spline where four
// neighbors exist, linear otherwise; the better of the two is chosen per
// (level, axis) sweep against the original data — the "dynamic" part of
// dynamic spline interpolation). Residuals use the same quantization /
// Huffman / LZSS pipeline as SZ-L/R.
//
// Being global rather than block-based, its artifacts are smooth bumps
// rather than block edges — exactly the contrast the paper studies.

#include "compress/compressor.hpp"
#include "compress/lzss.hpp"

namespace amrvis::compress {

class SzInterpCompressor final : public Compressor {
 public:
  /// `max_anchor_stride` bounds the coarsest grid (power of two).
  explicit SzInterpCompressor(std::int64_t max_anchor_stride = 64,
                              LzssLevel lzss_level = LzssLevel::kLazy)
      : max_stride_(max_anchor_stride), lzss_level_(lzss_level) {
    AMRVIS_REQUIRE(max_anchor_stride >= 2);
    AMRVIS_REQUIRE((max_anchor_stride & (max_anchor_stride - 1)) == 0);
  }

  [[nodiscard]] std::string name() const override {
    std::string n = "sz-interp";
    n.append(lzss_level_suffix(lzss_level_));
    return n;
  }
  [[nodiscard]] Bytes compress(View3<const double> data,
                               double abs_eb) const override;
  [[nodiscard]] Array3<double> decompress(
      std::span<const std::uint8_t> blob) const override;

 private:
  std::int64_t max_stride_;
  LzssLevel lzss_level_;
};

}  // namespace amrvis::compress
