#include "compress/plotfile.hpp"

#include <cstring>

#include "util/bytestream.hpp"
#include "util/error.hpp"

namespace amrvis::compress {
using amr::AmrHierarchy;
using amr::AmrLevel;
using amr::Box;
using amr::FArrayBox;
using amr::IntVect;

namespace {

constexpr std::uint32_t kHeaderMagic = 0x414d5021;  // "AMP!"

void put_box(ByteWriter& w, const Box& b) {
  w.put<std::int64_t>(b.lo().x);
  w.put<std::int64_t>(b.lo().y);
  w.put<std::int64_t>(b.lo().z);
  w.put<std::int64_t>(b.hi().x);
  w.put<std::int64_t>(b.hi().y);
  w.put<std::int64_t>(b.hi().z);
}

Box get_box(ByteReader& r) {
  IntVect lo, hi;
  lo.x = r.get<std::int64_t>();
  lo.y = r.get<std::int64_t>();
  lo.z = r.get<std::int64_t>();
  hi.x = r.get<std::int64_t>();
  hi.y = r.get<std::int64_t>();
  hi.z = r.get<std::int64_t>();
  return {lo, hi};
}

}  // namespace

void write_plotfile(const std::string& path, const AmrHierarchy& hier,
                    const compress::Compressor* codec, double abs_eb) {
  // Header: structure of every level.
  Bytes header;
  ByteWriter hw(header);
  hw.put<std::uint32_t>(kHeaderMagic);
  hw.put<std::int64_t>(hier.ref_ratio());
  hw.put<std::int32_t>(hier.num_levels());
  const std::string codec_name = codec != nullptr ? codec->name() : "";
  hw.put<std::uint32_t>(static_cast<std::uint32_t>(codec_name.size()));
  hw.put_bytes({reinterpret_cast<const std::uint8_t*>(codec_name.data()),
                codec_name.size()});
  hw.put<double>(abs_eb);
  for (int l = 0; l < hier.num_levels(); ++l) {
    const AmrLevel& lvl = hier.level(l);
    put_box(hw, lvl.domain);
    hw.put<std::uint32_t>(static_cast<std::uint32_t>(lvl.box_array.size()));
    for (const Box& b : lvl.box_array) put_box(hw, b);
  }
  write_file(path + "/header", header);

  // One payload file per level, matching the paper's per-level datasets.
  for (int l = 0; l < hier.num_levels(); ++l) {
    Bytes payload;
    ByteWriter pw(payload);
    for (const FArrayBox& fab : hier.level(l).fabs) {
      if (codec != nullptr) {
        pw.put_blob(codec->compress(fab.view(), abs_eb));
      } else {
        const auto vals = fab.values();
        pw.put_blob({reinterpret_cast<const std::uint8_t*>(vals.data()),
                     vals.size() * sizeof(double)});
      }
    }
    write_file(path + "/level_" + std::to_string(l) + ".bin", payload);
  }
}

AmrHierarchy read_plotfile(const std::string& path) {
  const Bytes header = read_file(path + "/header");
  ByteReader hr(header);
  AMRVIS_REQUIRE_MSG(hr.get<std::uint32_t>() == kHeaderMagic,
                     "plotfile: bad header magic");
  const auto ref_ratio = hr.get<std::int64_t>();
  const auto num_levels = hr.get<std::int32_t>();
  const auto name_len = hr.get<std::uint32_t>();
  const auto name_bytes = hr.get_bytes(name_len);
  const std::string codec_name(name_bytes.begin(), name_bytes.end());
  (void)hr.get<double>();  // abs_eb (informational)

  std::unique_ptr<Compressor> codec;
  if (!codec_name.empty()) codec = make_compressor(codec_name);

  AmrHierarchy hier(ref_ratio);
  for (int l = 0; l < num_levels; ++l) {
    AmrLevel lvl;
    lvl.domain = get_box(hr);
    const auto num_boxes = hr.get<std::uint32_t>();
    for (std::uint32_t b = 0; b < num_boxes; ++b)
      lvl.box_array.push_back(get_box(hr));

    const Bytes payload =
        read_file(path + "/level_" + std::to_string(l) + ".bin");
    ByteReader pr(payload);
    for (std::uint32_t b = 0; b < num_boxes; ++b) {
      const Box& box = lvl.box_array[b];
      FArrayBox fab(box);
      const auto blob = pr.get_blob();
      if (codec) {
        Array3<double> data = codec->decompress(blob);
        AMRVIS_REQUIRE_MSG(data.shape() == box.shape(),
                           "plotfile: payload shape mismatch");
        std::copy(data.span().begin(), data.span().end(),
                  fab.values().begin());
      } else {
        AMRVIS_REQUIRE_MSG(
            blob.size() == static_cast<std::size_t>(box.num_cells()) *
                               sizeof(double),
            "plotfile: raw payload size mismatch");
        std::memcpy(fab.values().data(), blob.data(), blob.size());
      }
      lvl.fabs.push_back(std::move(fab));
    }
    hier.add_level(std::move(lvl));
  }
  return hier;
}

}  // namespace amrvis::compress
