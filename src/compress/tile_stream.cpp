#include "compress/tile_stream.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace amrvis::compress {

namespace {

/// Live decoded bytes of one buffered tile.
std::size_t tile_bytes(const StreamTile& t) {
  return static_cast<std::size_t>(t.data.size()) * sizeof(double);
}

}  // namespace

TileStream::TileStream(const ChunkedCompressor& codec,
                       std::span<const std::uint8_t> blob,
                       TileStreamOptions options)
    : codec_(&codec),
      pc_(detail::parse_container(blob, codec.inner().name())),
      prefetch_(options.prefetch),
      cache_(options.cache),
      cancel_(options.cancel) {
  const bool band =
      options.order == TileStreamOptions::Order::kValueBand ||
      options.order == TileStreamOptions::Order::kExpectedBand;
  if (band) {
    AMRVIS_REQUIRE_MSG(options.band_lo <= options.band_hi,
                       "tile_stream: value band needs lo <= hi");
    AMRVIS_REQUIRE_MSG(options.band_widen >= 0.0,
                       "tile_stream: band_widen must be >= 0");
  }
  if (options.region) {
    AMRVIS_REQUIRE_MSG(
        amr::Box::from_shape(pc_.shape).contains(*options.region),
        "tile_stream: region outside the stored field");
  }
  // The view applies band_widen only to conservative (pre-v4) stats —
  // exact decoded-value bounds need no widening, which is the point.
  const TileStatsView view(pc_, options.band_widen);
  selected_.reserve(static_cast<std::size_t>(pc_.ntiles));
  for (std::int64_t t = 0; t < pc_.ntiles; ++t) {
    const amr::Box box = detail::tile_cell_box(
        detail::tile_box(t, pc_.grid, pc_.shape, pc_.tile));
    if (options.region && !options.region->intersects(box)) continue;
    const TileStats st = pc_.stats_of(t);
    if (band && !view.may_contain(t, options.band_lo, options.band_hi)) {
      ++(view.exact() ? skipped_exact_ : skipped_conservative_);
      continue;
    }
    if (options.select && !options.select(TileRegion{t, box, st})) continue;
    selected_.push_back(t);
  }
  if (skipped_exact_ > 0)
    obs::counter("stream.tiles_culled_exact")
        .add(static_cast<std::uint64_t>(skipped_exact_));
  if (skipped_conservative_ > 0)
    obs::counter("stream.tiles_culled_conservative")
        .add(static_cast<std::uint64_t>(skipped_conservative_));
  if (options.order == TileStreamOptions::Order::kExpectedBand) {
    // Rank by the v4 histogram sketch's expected in-band cell mass,
    // descending; the stable sort keeps slot order among ties, so
    // without a sketch (every score 1.0) this degrades to kValueBand.
    std::vector<double> score(static_cast<std::size_t>(pc_.ntiles), 0.0);
    for (const std::int64_t t : selected_)
      score[static_cast<std::size_t>(t)] =
          view.expected_in_band(t, options.band_lo, options.band_hi);
    std::stable_sort(selected_.begin(), selected_.end(),
                     [&](std::int64_t a, std::int64_t b) {
                       return score[static_cast<std::size_t>(a)] >
                              score[static_cast<std::size_t>(b)];
                     });
  }
}

void TileStream::refill() {
  // Batch decode through the exception-safe parallel helpers: with
  // prefetch on, two tiles inflate concurrently and the second one waits,
  // already decoded, for the following next() call. The batch size is the
  // memory bound: never more than 2 live decoded tiles.
  const std::size_t remaining = selected_.size() - cursor_;
  const std::size_t batch = std::min<std::size_t>(prefetch_ ? 2 : 1,
                                                  remaining);
  OBS_SPAN("stream.refill", {"batch", static_cast<std::int64_t>(batch)});
  buffer_.clear();
  buffer_.resize(batch);
  head_ = 0;
  // A decode failure must not leave half-constructed tiles behind a live
  // head_: the buffer is dropped and the cursor does not advance, so the
  // NEXT next() call retries the same batch once — a transient failure
  // clears losslessly. A second consecutive failure poisons the stream so
  // later next() calls throw instead of handing out default StreamTiles
  // as data.
  try {
    if (cancel_ != nullptr) cancel_->check();
    decode_batch(batch);
    batch_failures_ = 0;
  } catch (const Error& e) {
    buffer_.clear();
    head_ = 0;
    failed_ctx_ = e.context();
    if (++batch_failures_ >= 2) poisoned_ = true;
    throw;
  } catch (...) {
    buffer_.clear();
    head_ = 0;
    if (++batch_failures_ >= 2) poisoned_ = true;
    throw;
  }
  cursor_ += batch;
  decoded_ += static_cast<std::int64_t>(batch);
  static auto& tiles_decoded = obs::counter("stream.tiles_decoded");
  tiles_decoded.add(batch);

  AMRVIS_ASSERT(live_tiles() <= 2);  // the contract, not a hope
  peak_live_tiles_ = std::max(peak_live_tiles_, live_tiles());
  std::size_t live_bytes = 0;
  for (std::size_t i = head_; i < buffer_.size(); ++i)
    live_bytes += tile_bytes(buffer_[i]);
  peak_live_bytes_ = std::max(peak_live_bytes_, live_bytes);
  obs::gauge("stream.peak_live_bytes")
      .set_max(static_cast<std::int64_t>(peak_live_bytes_));
}

void TileStream::decode_batch(std::size_t batch) {
  parallel_for(static_cast<std::int64_t>(batch), [&](std::int64_t b) {
    const std::int64_t t = selected_[cursor_ + static_cast<std::size_t>(b)];
    const detail::TileBox tb =
        detail::tile_box(t, pc_.grid, pc_.shape, pc_.tile);
    StreamTile& out = buffer_[static_cast<std::size_t>(b)];
    out.index = t;
    out.box = detail::tile_cell_box(tb);
    out.stats = pc_.stats_of(t);
    try {
      if (cache_) {
        bool was_hit = false;
        const auto shared = cache_.cache->get_or_decode(
            cache_.container, t,
            [&] {
              return detail::decode_tile(
                  codec_->inner(), pc_.tiles[static_cast<std::size_t>(t)]);
            },
            &was_hit);
        if (was_hit) {
          cache_hits_.fetch_add(1, std::memory_order_relaxed);
          static auto& hits = obs::counter("stream.cache_hits");
          hits.add();
        }
        out.data = *shared;  // the caller owns its buffer (next() moves it)
      } else {
        out.data = detail::decode_tile(
            codec_->inner(), pc_.tiles[static_cast<std::size_t>(t)]);
      }
      AMRVIS_CHECK(ErrorCode::kDecodeFailure, out.data.shape() == tb.ext,
                   "tile_stream: tile shape does not match its slot");
    } catch (const Error& e) {
      throw e.with_context({cache_ ? cache_.container : 0, t, -1});
    }
  });
}

std::optional<StreamTile> TileStream::next() {
  if (poisoned_) {
    throw Error(ErrorCode::kDecodeFailure,
                "tile_stream: a tile decode failed twice; the stream "
                "cannot continue",
                failed_ctx_);
  }
  if (head_ == buffer_.size()) {
    if (cursor_ == selected_.size()) return std::nullopt;
    refill();
  }
  StreamTile out = std::move(buffer_[head_]);
  ++head_;
  return out;
}

}  // namespace amrvis::compress
