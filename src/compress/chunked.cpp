#include "compress/chunked.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>

#include "compress/lzss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"

namespace amrvis::compress {

namespace {

constexpr std::uint32_t kMagic = 0x4156434b;  // "AVCK"
constexpr std::uint16_t kVersionV1 = 1;       // no stats table (PR3 format)
constexpr std::uint16_t kVersionV2 = 2;       // per-tile min/max after sizes
constexpr std::uint16_t kVersionV3 = 3;       // + per-tile face-slab ranges
constexpr std::uint16_t kVersionV4 = 4;       // decoded-value stats +
                                              // max_err + histogram sketch
// Decompress-side sanity caps: a corrupt header must not drive the output
// allocation (cells * 8 bytes) from attacker-controlled dimensions alone.
constexpr std::int64_t kMaxDim = std::int64_t{1} << 24;
constexpr std::int64_t kMaxCells = std::int64_t{1} << 31;

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace

namespace detail {

TileGrid tile_grid(const Shape3& s, const ChunkShape& t) {
  return {ceil_div(s.nx, t.nx), ceil_div(s.ny, t.ny), ceil_div(s.nz, t.nz)};
}

TileBox tile_box(std::int64_t t, const TileGrid& g, const Shape3& s,
                 const ChunkShape& tile) {
  const std::int64_t tz = t / (g.tnx * g.tny);
  const std::int64_t rem = t % (g.tnx * g.tny);
  const std::int64_t ty = rem / g.tnx;
  const std::int64_t tx = rem % g.tnx;
  TileBox b;
  b.i0 = tx * tile.nx;
  b.j0 = ty * tile.ny;
  b.k0 = tz * tile.nz;
  b.ext = {std::min(tile.nx, s.nx - b.i0), std::min(tile.ny, s.ny - b.j0),
           std::min(tile.nz, s.nz - b.k0)};
  return b;
}

amr::Box tile_cell_box(const TileBox& b) {
  return {amr::IntVect{b.i0, b.j0, b.k0},
          amr::IntVect{b.i0 + b.ext.nx - 1, b.j0 + b.ext.ny - 1,
                       b.k0 + b.ext.nz - 1}};
}

TileStats ParsedContainer::stats_of(std::int64_t t) const {
  if (stats.empty()) {
    // v1 container: no stats table, every tile may hold anything.
    return {-std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
  }
  return stats[static_cast<std::size_t>(t)];
}

namespace {

thread_local int lenient_stats_depth = 0;

ParsedContainer parse_body(ByteReader& r, const std::string& expect_codec) {
  AMRVIS_CHECK(ErrorCode::kCorruptHeader, r.get<std::uint32_t>() == kMagic,
               "chunked: bad container magic");
  ParsedContainer pc;
  pc.version = r.get<std::uint16_t>();
  AMRVIS_CHECK(ErrorCode::kCorruptHeader,
               pc.version >= kVersionV1 && pc.version <= kVersionV4,
               "chunked: unsupported container version");
  const auto name_len = r.get<std::uint16_t>();
  const auto name_bytes = r.get_bytes(name_len);
  const std::string codec(reinterpret_cast<const char*>(name_bytes.data()),
                          name_bytes.size());
  // Level-agnostic comparison: the LZSS parse level ("+fast"/"+optimal")
  // changes the bytes a codec writes, never the format it reads, so a
  // container written at one level decodes with a codec at any other.
  AMRVIS_CHECK(ErrorCode::kCorruptHeader,
               codec_names_compatible(codec, expect_codec),
               "chunked: codec mismatch (container says '" + codec +
                   "', decoding with '" + expect_codec + "')");

  pc.shape.nx = r.get<std::int64_t>();
  pc.shape.ny = r.get<std::int64_t>();
  pc.shape.nz = r.get<std::int64_t>();
  pc.tile.nx = r.get<std::int64_t>();
  pc.tile.ny = r.get<std::int64_t>();
  pc.tile.nz = r.get<std::int64_t>();
  const Shape3& s = pc.shape;
  // Per-axis bound first, then the cell cap via division so the product
  // itself can never overflow int64 on a corrupt header (2^24 cubed would).
  AMRVIS_CHECK(ErrorCode::kCorruptHeader,
               s.valid() && s.nx <= kMaxDim && s.ny <= kMaxDim &&
                   s.nz <= kMaxDim && s.ny <= kMaxCells / s.nx &&
                   s.nz <= kMaxCells / (s.nx * s.ny),
               "chunked: implausible field shape");
  AMRVIS_CHECK(ErrorCode::kCorruptHeader,
               pc.tile.valid() && pc.tile.nx <= kMaxDim &&
                   pc.tile.ny <= kMaxDim && pc.tile.nz <= kMaxDim,
               "chunked: implausible tile shape");

  // Tiles per axis never exceed cells per axis (tile extents >= 1), so
  // the count is bounded by the validated cell count — no overflow.
  pc.grid = tile_grid(s, pc.tile);
  pc.ntiles = pc.grid.count();
  AMRVIS_CHECK(ErrorCode::kCorruptHeader,
               r.get<std::uint64_t>() ==
                   static_cast<std::uint64_t>(pc.ntiles),
               "chunked: tile count does not match shape/tile header");
  // The fixed-size tables (u64 size, a min/max double pair in v2+, six
  // more pairs of face ranges in v3) must fit in what the blob actually
  // carries before any ntiles-sized allocation happens: a ~100-byte
  // corrupt header must not be able to force a multi-GiB vector (same
  // class as the lzss out_size cap).
  const std::size_t entry_bytes =
      sizeof(std::uint64_t) +
      (pc.version >= kVersionV2 ? 2 * sizeof(double) : 0) +
      (pc.version >= kVersionV3 ? 12 * sizeof(double) : 0) +
      (pc.version >= kVersionV4
           ? sizeof(double) + kTileHistBuckets * sizeof(std::uint32_t)
           : 0);
  AMRVIS_CHECK(ErrorCode::kCorruptHeader,
               r.remaining() / entry_bytes >=
                   static_cast<std::uint64_t>(pc.ntiles),
               "chunked: tile size/stats tables exceed container");

  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(pc.ntiles));
  for (auto& sz : sizes) sz = r.get<std::uint64_t>();
  // An invalid stats/faces entry normally rejects the container; under a
  // ScopedLenientStats (the iso fallback path) the table is still consumed
  // byte-wise but dropped wholesale at the end — the v1 "every tile may
  // hold anything" semantics, conservative and never wrong.
  bool stats_ok = true;
  if (pc.version >= kVersionV2) {
    pc.stats.resize(static_cast<std::size_t>(pc.ntiles));
    for (auto& st : pc.stats) {
      st.min = r.get<double>();
      st.max = r.get<double>();
      // `min <= max` also rejects NaN (comparison is false): a stats table
      // the culling predicate cannot trust is a corrupt container.
      if (!(st.min <= st.max)) {
        if (lenient_stats_depth == 0)
          throw Error(ErrorCode::kStatsInvalid,
                      "chunked: corrupt tile stats (min > max)");
        stats_ok = false;
      }
    }
  }
  if (pc.version >= kVersionV3) {
    pc.faces.resize(static_cast<std::size_t>(pc.ntiles));
    for (auto& tf : pc.faces) {
      for (TileStats& st : tf) {
        st.min = r.get<double>();
        st.max = r.get<double>();
        // NaN rejected the same way; a face slab is NOT required to be a
        // sub-range of the tile range (an all-NaN slab legally records
        // the conservative (-inf, +inf) inside a finite-ranged tile).
        if (!(st.min <= st.max)) {
          if (lenient_stats_depth == 0)
            throw Error(ErrorCode::kStatsInvalid,
                        "chunked: corrupt tile face stats (min > max)");
          stats_ok = false;
        }
      }
    }
  }
  if (pc.version >= kVersionV4) {
    pc.max_err.resize(static_cast<std::size_t>(pc.ntiles));
    for (double& me : pc.max_err) {
      me = r.get<double>();
      // `me >= 0` rejects both NaN (comparison false) and negatives: an
      // achieved-error entry the exactness claim rests on must be a real
      // non-negative number.
      if (!(me >= 0.0)) {
        if (lenient_stats_depth == 0)
          throw Error(ErrorCode::kStatsInvalid,
                      "chunked: corrupt tile max-error (negative or NaN)");
        stats_ok = false;
      }
    }
    pc.hist.resize(static_cast<std::size_t>(pc.ntiles));
    for (std::int64_t t = 0; t < pc.ntiles; ++t) {
      TileHistogram& h = pc.hist[static_cast<std::size_t>(t)];
      std::uint64_t mass = 0;
      for (std::uint32_t& bucket : h) {
        bucket = r.get<std::uint32_t>();
        mass += bucket;
      }
      // The sketch must account for every cell of its tile, or carry no
      // information at all (all zeros — the NaN-tile encoding): anything
      // in between is a table the ranking heuristic cannot trust.
      const TileBox b = tile_box(t, pc.grid, pc.shape, pc.tile);
      const auto cells = static_cast<std::uint64_t>(
          b.ext.nx * b.ext.ny * b.ext.nz);
      if (mass != 0 && mass != cells) {
        if (lenient_stats_depth == 0)
          throw Error(ErrorCode::kStatsInvalid,
                      "chunked: tile histogram mass does not match its "
                      "cell count");
        stats_ok = false;
      }
    }
  }
  if (!stats_ok) {
    pc.stats.clear();
    pc.faces.clear();
    pc.max_err.clear();
    pc.hist.clear();
  }
  // Slice the payload serially; get_bytes bounds-checks every size against
  // the remaining payload, so corrupt sizes throw here instead of reading
  // out of bounds in the parallel region.
  pc.tiles.resize(static_cast<std::size_t>(pc.ntiles));
  for (std::size_t t = 0; t < pc.tiles.size(); ++t)
    pc.tiles[t] = r.get_bytes(static_cast<std::size_t>(sizes[t]));
  AMRVIS_CHECK(ErrorCode::kCorruptHeader, r.remaining() == 0,
               "chunked: trailing container bytes");
  return pc;
}

}  // namespace

ScopedLenientStats::ScopedLenientStats() { ++lenient_stats_depth; }
ScopedLenientStats::~ScopedLenientStats() { --lenient_stats_depth; }
bool lenient_stats_active() { return lenient_stats_depth > 0; }

ParsedContainer parse_container(std::span<const std::uint8_t> blob,
                                const std::string& expect_codec) {
  static auto& parses = obs::counter("container.parse");
  parses.add();
  OBS_SPAN("container.parse",
           {"bytes", static_cast<std::int64_t>(blob.size())});
  AMRVIS_FAULT_POINT(fault::Site::kHeaderParse);
  ByteReader r(blob);
  try {
    return parse_body(r, expect_codec);
  } catch (const Error& e) {
    const ErrorContext at{0, ErrorContext::kNoTile,
                          static_cast<std::int64_t>(r.position())};
    // ByteReader bounds failures (and anything untyped) surfacing here
    // mean the container itself is truncated: header corruption.
    if (e.code() == ErrorCode::kCorruptPayload ||
        e.code() == ErrorCode::kGeneric)
      throw Error(ErrorCode::kCorruptHeader, e.message(), at);
    throw e.with_context(at);
  }
}

Array3<double> decode_tile(const Compressor& inner,
                           std::span<const std::uint8_t> blob) {
  // Every tile inflation in the codebase funnels through this seam —
  // tools/check_trace.py reconciles this counter against the span count.
  static auto& decodes = obs::counter("tile.decode");
  decodes.add();
  OBS_SPAN("tile.decode", {"bytes", static_cast<std::int64_t>(blob.size())});
  if (fault::enabled()) {
    if (auto mutated = fault::on_op(fault::Site::kTileDecode, blob))
      return inner.decompress(*mutated);
  }
  return inner.decompress(blob);
}

}  // namespace detail

using detail::parse_container;
using detail::ParsedContainer;
using detail::tile_box;
using detail::tile_cell_box;
using detail::tile_grid;
using detail::TileBox;
using detail::TileGrid;

namespace {

TileStats widened(TileStats st, double w) {
  // Infinite endpoints absorb the widening (-inf - w == -inf); finite
  // ones move outward by the caller's error bound.
  st.min -= w;
  st.max += w;
  return st;
}

}  // namespace

TileStatsView::TileStatsView(const detail::ParsedContainer& pc, double widen)
    : pc_(&pc),
      widen_(widen),
      // A lenient parse drops an invalid v4 table wholesale, so "version
      // says 4" alone is not enough: exactness requires the stats to
      // actually be present.
      exact_(pc.version >= kVersionV4 && !pc.stats.empty()) {}

TileStats TileStatsView::tile_range(std::int64_t t) const {
  const TileStats st = pc_->stats_of(t);
  return exact_ ? st : widened(st, widen_);
}

TileStats TileStatsView::face_range(std::int64_t t, int face) const {
  if (pc_->faces.empty()) return tile_range(t);
  const TileStats st =
      pc_->faces[static_cast<std::size_t>(t)][static_cast<std::size_t>(face)];
  return exact_ ? st : widened(st, widen_);
}

double TileStatsView::max_err(std::int64_t t) const {
  if (pc_->max_err.empty()) return std::numeric_limits<double>::infinity();
  return pc_->max_err[static_cast<std::size_t>(t)];
}

bool TileStatsView::may_contain(std::int64_t t, double lo, double hi) const {
  const TileStats r = tile_range(t);
  return !(r.max < lo || r.min > hi);
}

double TileStatsView::expected_in_band(std::int64_t t, double lo,
                                       double hi) const {
  if (pc_->hist.empty()) return 1.0;
  const TileHistogram& h = pc_->hist[static_cast<std::size_t>(t)];
  std::uint64_t mass = 0;
  for (const std::uint32_t bucket : h) mass += bucket;
  if (mass == 0) return 1.0;  // "no info" sketch (NaN tiles)
  const TileStats st = pc_->stats_of(t);
  const double span = st.max - st.min;
  if (!std::isfinite(st.min) || !std::isfinite(span)) return 1.0;
  if (!(span > 0.0)) {
    // Degenerate range: every cell holds st.min exactly.
    return (st.min >= lo && st.min <= hi) ? 1.0 : 0.0;
  }
  std::uint64_t in = 0;
  for (int b = 0; b < kTileHistBuckets; ++b) {
    const double b_lo = st.min + span * b / kTileHistBuckets;
    const double b_hi = st.min + span * (b + 1) / kTileHistBuckets;
    if (b_hi >= lo && b_lo <= hi) in += h[static_cast<std::size_t>(b)];
  }
  return static_cast<double>(in) / static_cast<double>(mass);
}

ChunkShape parse_chunk_shape(const std::string& spec) {
  ChunkShape tile;
  std::int64_t* dims[3] = {&tile.nx, &tile.ny, &tile.nz};
  std::size_t pos = 0;
  for (int d = 0; d < 3; ++d) {
    std::size_t used = 0;
    try {
      *dims[d] = std::stoll(spec.substr(pos), &used);
    } catch (const std::exception&) {
      throw Error("chunked: malformed tile spec '" + spec +
                  "' (expected TXxTYxTZ)");
    }
    pos += used;
    const bool want_sep = d < 2;
    const bool have_sep = pos < spec.size() && spec[pos] == 'x';
    AMRVIS_REQUIRE_MSG(want_sep ? have_sep : pos == spec.size(),
                       "chunked: malformed tile spec '" + spec +
                           "' (expected TXxTYxTZ)");
    if (want_sep) ++pos;
  }
  AMRVIS_REQUIRE_MSG(tile.valid(), "chunked: tile spec '" + spec +
                                       "' has non-positive extents");
  return tile;
}

ChunkedCompressor::ChunkedCompressor(std::unique_ptr<Compressor> inner,
                                     ChunkShape tile)
    : owned_(std::move(inner)), tile_(tile) {
  AMRVIS_REQUIRE_MSG(owned_ != nullptr, "chunked: null inner codec");
  AMRVIS_REQUIRE_MSG(tile_.valid(), "chunked: invalid tile shape");
}

ChunkedCompressor::ChunkedCompressor(const Compressor& inner, ChunkShape tile)
    : borrowed_(&inner), tile_(tile) {
  AMRVIS_REQUIRE_MSG(tile_.valid(), "chunked: invalid tile shape");
}

std::string ChunkedCompressor::name() const {
  // Built with append, not operator+: gcc-12 -Wrestrict false-positives
  // on `const char* + std::string` under -Werror (same as util/cli.cpp).
  std::string n = "chunked-";
  n += inner().name();
  if (!(tile_ == ChunkShape{})) {
    n += '@';
    n += std::to_string(tile_.nx);
    n += 'x';
    n += std::to_string(tile_.ny);
    n += 'x';
    n += std::to_string(tile_.nz);
  }
  return n;
}

bool ChunkedCompressor::is_chunked_blob(std::span<const std::uint8_t> blob) {
  if (blob.size() < sizeof(kMagic)) return false;
  std::uint32_t magic;
  std::memcpy(&magic, blob.data(), sizeof(magic));
  return magic == kMagic;
}

Bytes ChunkedCompressor::compress(View3<const double> data,
                                  double abs_eb) const {
  static auto& compresses = obs::counter("container.compress");
  compresses.add();
  OBS_SPAN("container.compress", {"cells", data.shape().size()});
  const Shape3 s = data.shape();
  const TileGrid grid = tile_grid(s, tile_);
  const std::int64_t ntiles = grid.count();

  // Fixed tile -> slot mapping: blobs and stats land in their slot
  // regardless of which thread produced them, and each tile's min/max is
  // a serial pass over that tile alone — the container stays bit-identical
  // across thread counts.
  std::vector<Bytes> blobs(static_cast<std::size_t>(ntiles));
  std::vector<TileStats> stats(static_cast<std::size_t>(ntiles));
  std::vector<TileFaceStats> faces(static_cast<std::size_t>(ntiles));
  std::vector<double> max_err(static_cast<std::size_t>(ntiles), 0.0);
  std::vector<TileHistogram> hists(static_cast<std::size_t>(ntiles));
  parallel_for(ntiles, [&](std::int64_t t) {
    const TileBox b = tile_box(t, grid, s, tile_);
    Array3<double> tdata(b.ext);
    for (std::int64_t dz = 0; dz < b.ext.nz; ++dz)
      for (std::int64_t dy = 0; dy < b.ext.ny; ++dy)
        std::memcpy(&tdata(0, dy, dz), &data(b.i0, b.j0 + dy, b.k0 + dz),
                    static_cast<std::size_t>(b.ext.nx) * sizeof(double));
    Bytes& blob = blobs[static_cast<std::size_t>(t)];
    blob = inner().compress(tdata.view(), abs_eb);
    // v4: round-trip the tile through the wrapped codec so the recorded
    // stats bound the values a decoder will actually reconstruct — the
    // read-side cull then needs no eb-widening. The decode goes straight
    // to the inner codec (not detail::decode_tile): fault injection
    // targets serving-path decodes, and a fault here would bake corrupt
    // stats into a well-formed container.
    const Array3<double> ddata = inner().decompress(blob);
    AMRVIS_CHECK(ErrorCode::kDecodeFailure, ddata.shape() == b.ext,
                 "chunked: round-trip tile shape mismatch");
    // A region CONTAINING any NaN cell records the unbounded "anything"
    // range (the quantizer stores non-finite values losslessly, so
    // NaN-masked fields are legal inputs): NaN poisons every downstream
    // comparison — a marching cube with a NaN corner still emits
    // geometry whenever another corner crosses the band, so no finite
    // range can promise such a region is silent, and the parser rejects
    // NaN in the table itself. Infinities are real range endpoints and
    // stay in.
    auto region_range = [&](std::int64_t x0, std::int64_t x1,
                            std::int64_t y0, std::int64_t y1,
                            std::int64_t z0, std::int64_t z1) {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (std::int64_t z = z0; z <= z1; ++z)
        for (std::int64_t y = y0; y <= y1; ++y)
          for (std::int64_t x = x0; x <= x1; ++x) {
            const double v = ddata(x, y, z);
            if (std::isnan(v)) {
              return TileStats{-std::numeric_limits<double>::infinity(),
                               std::numeric_limits<double>::infinity()};
            }
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
      if (lo > hi) {
        lo = -std::numeric_limits<double>::infinity();
        hi = std::numeric_limits<double>::infinity();
      }
      return TileStats{lo, hi};
    };
    const Shape3& e = b.ext;
    const TileStats st =
        region_range(0, e.nx - 1, 0, e.ny - 1, 0, e.nz - 1);
    stats[static_cast<std::size_t>(t)] = st;
    // Face slabs, two layers deep (clamped): what a seam-crossing cube's
    // vertex window can reach from the neighboring side.
    TileFaceStats& tf = faces[static_cast<std::size_t>(t)];
    const std::int64_t dx = std::min<std::int64_t>(2, e.nx) - 1;
    const std::int64_t dy = std::min<std::int64_t>(2, e.ny) - 1;
    const std::int64_t dz = std::min<std::int64_t>(2, e.nz) - 1;
    tf[0] = region_range(0, dx, 0, e.ny - 1, 0, e.nz - 1);
    tf[1] = region_range(e.nx - 1 - dx, e.nx - 1, 0, e.ny - 1, 0, e.nz - 1);
    tf[2] = region_range(0, e.nx - 1, 0, dy, 0, e.nz - 1);
    tf[3] = region_range(0, e.nx - 1, e.ny - 1 - dy, e.ny - 1, 0, e.nz - 1);
    tf[4] = region_range(0, e.nx - 1, 0, e.ny - 1, 0, dz);
    tf[5] = region_range(0, e.nx - 1, 0, e.ny - 1, e.nz - 1 - dz, e.nz - 1);
    // Achieved error over cells where both sides are finite (non-finite
    // values round-trip losslessly, and inf - inf is NaN, not an error).
    double me = 0.0;
    for (std::int64_t f = 0; f < tdata.size(); ++f) {
      const double o = tdata[f];
      const double d = ddata[f];
      if (std::isfinite(o) && std::isfinite(d))
        me = std::max(me, std::abs(o - d));
    }
    max_err[static_cast<std::size_t>(t)] = me;
    // Histogram sketch over the decoded range. A NaN tile has the
    // unbounded range above and keeps the all-zero "no info" sketch; a
    // degenerate or non-finite span piles every cell into bucket 0 —
    // still a valid (if uninformative) mass distribution.
    if (std::isfinite(st.min) && std::isfinite(st.max)) {
      TileHistogram& h = hists[static_cast<std::size_t>(t)];
      const double span = st.max - st.min;
      for (std::int64_t f = 0; f < ddata.size(); ++f) {
        int bkt = 0;
        if (span > 0.0 && std::isfinite(span)) {
          const double x =
              (ddata[f] - st.min) / span * kTileHistBuckets;
          bkt = x >= kTileHistBuckets ? kTileHistBuckets - 1
                                      : static_cast<int>(x);
        }
        ++h[static_cast<std::size_t>(bkt)];
      }
    }
  });

  // Serial concatenation in slot order after the join keeps the container
  // byte-identical across thread counts.
  const std::string codec = inner().name();
  Bytes out;
  ByteWriter w(out);
  w.put<std::uint32_t>(kMagic);
  w.put<std::uint16_t>(kVersionV4);
  w.put<std::uint16_t>(static_cast<std::uint16_t>(codec.size()));
  // Byte-at-a-time: a range insert from the string's SSO buffer trips a
  // gcc-12 -Warray-bounds false positive under -Werror.
  for (const char c : codec) w.put<std::uint8_t>(static_cast<std::uint8_t>(c));
  w.put<std::int64_t>(s.nx);
  w.put<std::int64_t>(s.ny);
  w.put<std::int64_t>(s.nz);
  w.put<std::int64_t>(tile_.nx);
  w.put<std::int64_t>(tile_.ny);
  w.put<std::int64_t>(tile_.nz);
  w.put<std::uint64_t>(static_cast<std::uint64_t>(ntiles));
  for (const Bytes& b : blobs) w.put<std::uint64_t>(b.size());
  for (const TileStats& st : stats) {
    w.put<double>(st.min);
    w.put<double>(st.max);
  }
  for (const TileFaceStats& tf : faces)
    for (const TileStats& st : tf) {
      w.put<double>(st.min);
      w.put<double>(st.max);
    }
  for (const double me : max_err) w.put<double>(me);
  for (const TileHistogram& h : hists)
    for (const std::uint32_t bucket : h) w.put<std::uint32_t>(bucket);
  for (const Bytes& b : blobs) w.put_bytes(b);
  return out;
}

Array3<double> ChunkedCompressor::decompress(
    std::span<const std::uint8_t> blob) const {
  OBS_SPAN("container.decompress",
           {"bytes", static_cast<std::int64_t>(blob.size())});
  const ParsedContainer pc = parse_container(blob, inner().name());
  Array3<double> out(pc.shape);
  parallel_for(pc.ntiles, [&](std::int64_t t) {
    const TileBox b = tile_box(t, pc.grid, pc.shape, pc.tile);
    try {
      const Array3<double> tdata = detail::decode_tile(
          inner(), pc.tiles[static_cast<std::size_t>(t)]);
      AMRVIS_CHECK(ErrorCode::kDecodeFailure, tdata.shape() == b.ext,
                   "chunked: tile shape does not match its slot");
      for (std::int64_t dz = 0; dz < b.ext.nz; ++dz)
        for (std::int64_t dy = 0; dy < b.ext.ny; ++dy)
          std::memcpy(&out(b.i0, b.j0 + dy, b.k0 + dz), &tdata(0, dy, dz),
                      static_cast<std::size_t>(b.ext.nx) * sizeof(double));
    } catch (const Error& e) {
      throw e.with_context({.tile = t});
    }
  });
  return out;
}

Array3<double> ChunkedCompressor::decompress_region(
    std::span<const std::uint8_t> blob, const amr::Box& region,
    RegionDecodeStats* stats, const TileCacheRef& cache,
    const util::CancelToken* cancel) const {
  OBS_SPAN("container.decompress_region",
           {"bytes", static_cast<std::int64_t>(blob.size())});
  const ParsedContainer pc = parse_container(blob, inner().name());
  const amr::Box field = amr::Box::from_shape(pc.shape);
  AMRVIS_REQUIRE_MSG(field.contains(region),
                     "chunked: region outside the stored field");

  // The request box maps to a dense sub-grid of tiles; enumerate exactly
  // those slots so decode work scales with the region, not the field.
  const std::int64_t tx0 = region.lo().x / pc.tile.nx;
  const std::int64_t tx1 = region.hi().x / pc.tile.nx;
  const std::int64_t ty0 = region.lo().y / pc.tile.ny;
  const std::int64_t ty1 = region.hi().y / pc.tile.ny;
  const std::int64_t tz0 = region.lo().z / pc.tile.nz;
  const std::int64_t tz1 = region.hi().z / pc.tile.nz;
  std::vector<std::int64_t> hit;
  hit.reserve(static_cast<std::size_t>((tx1 - tx0 + 1) * (ty1 - ty0 + 1) *
                                       (tz1 - tz0 + 1)));
  for (std::int64_t tz = tz0; tz <= tz1; ++tz)
    for (std::int64_t ty = ty0; ty <= ty1; ++ty)
      for (std::int64_t tx = tx0; tx <= tx1; ++tx)
        hit.push_back((tz * pc.grid.tny + ty) * pc.grid.tnx + tx);
  // Cache-hit counting is the only cross-tile state; the body otherwise
  // writes disjoint `out` slices (the parallel_for contract).
  std::atomic<std::int64_t> cached_hits{0};
  Array3<double> out(region.shape());
  parallel_for(static_cast<std::int64_t>(hit.size()), [&](std::int64_t h) {
    const std::int64_t t = hit[static_cast<std::size_t>(h)];
    const TileBox b = tile_box(t, pc.grid, pc.shape, pc.tile);
    try {
      if (cancel != nullptr) cancel->check();
      auto decode = [&] {
        Array3<double> td = detail::decode_tile(
            inner(), pc.tiles[static_cast<std::size_t>(t)]);
        AMRVIS_CHECK(ErrorCode::kDecodeFailure, td.shape() == b.ext,
                     "chunked: tile shape does not match its slot");
        return td;
      };
      std::shared_ptr<const Array3<double>> shared;
      Array3<double> local;
      const Array3<double>* tdata = nullptr;
      if (cache) {
        bool was_hit = false;
        shared = cache.cache->get_or_decode(cache.container, t, decode,
                                            &was_hit);
        if (was_hit) cached_hits.fetch_add(1, std::memory_order_relaxed);
        // A cached tile skipped our decode lambda (and its shape check).
        AMRVIS_CHECK(ErrorCode::kDecodeFailure, shared->shape() == b.ext,
                     "chunked: cached tile shape does not match its slot");
        tdata = shared.get();
      } else {
        local = decode();
        tdata = &local;
      }
      const auto ov = tile_cell_box(b).intersect(region);
      AMRVIS_REQUIRE(ov.has_value());
      const Shape3 os = ov->shape();
      for (std::int64_t dz = 0; dz < os.nz; ++dz)
        for (std::int64_t dy = 0; dy < os.ny; ++dy)
          std::memcpy(&out(ov->lo().x - region.lo().x,
                           ov->lo().y - region.lo().y + dy,
                           ov->lo().z - region.lo().z + dz),
                      &(*tdata)(ov->lo().x - b.i0, ov->lo().y - b.j0 + dy,
                                ov->lo().z - b.k0 + dz),
                      static_cast<std::size_t>(os.nx) * sizeof(double));
    } catch (const Error& e) {
      throw e.with_context({cache ? cache.container : 0, t, -1});
    }
  });
  if (stats != nullptr) {
    const std::int64_t hits = cached_hits.load(std::memory_order_relaxed);
    *stats = {static_cast<std::int64_t>(hit.size()) - hits, pc.ntiles,
              hits};
  }
  return out;
}

std::vector<TileFaceStats> ChunkedCompressor::tile_face_stats(
    std::span<const std::uint8_t> blob) const {
  return parse_container(blob, inner().name()).faces;
}

std::vector<TileRegion> ChunkedCompressor::tiles_overlapping(
    std::span<const std::uint8_t> blob, double lo, double hi) const {
  AMRVIS_REQUIRE_MSG(lo <= hi, "chunked: tiles_overlapping needs lo <= hi");
  const ParsedContainer pc = parse_container(blob, inner().name());
  const TileStatsView view(pc);  // caller widens pre-v4 bands; v4 is exact
  std::vector<TileRegion> out;
  for (std::int64_t t = 0; t < pc.ntiles; ++t) {
    if (!view.may_contain(t, lo, hi)) continue;
    out.push_back({t, tile_cell_box(tile_box(t, pc.grid, pc.shape, pc.tile)),
                   view.tile_range(t)});
  }
  return out;
}

}  // namespace amrvis::compress
