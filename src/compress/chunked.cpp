#include "compress/chunked.hpp"

#include <algorithm>
#include <cstring>

#include "util/parallel.hpp"

namespace amrvis::compress {

namespace {

constexpr std::uint32_t kMagic = 0x4156434b;  // "AVCK"
constexpr std::uint16_t kVersion = 1;
// Decompress-side sanity caps: a corrupt header must not drive the output
// allocation (cells * 8 bytes) from attacker-controlled dimensions alone.
constexpr std::int64_t kMaxDim = std::int64_t{1} << 24;
constexpr std::int64_t kMaxCells = std::int64_t{1} << 31;

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Tile grid geometry for a field shape under fixed tile extents.
struct TileGrid {
  std::int64_t tnx, tny, tnz;  ///< tiles per axis
  [[nodiscard]] std::int64_t count() const { return tnx * tny * tnz; }
};

TileGrid tile_grid(const Shape3& s, const ChunkShape& t) {
  return {ceil_div(s.nx, t.nx), ceil_div(s.ny, t.ny), ceil_div(s.nz, t.nz)};
}

/// Origin and clipped extents of tile slot `t` (row-major, tx fastest).
struct TileBox {
  std::int64_t i0, j0, k0;
  Shape3 ext;
};

TileBox tile_box(std::int64_t t, const TileGrid& g, const Shape3& s,
                 const ChunkShape& tile) {
  const std::int64_t tz = t / (g.tnx * g.tny);
  const std::int64_t rem = t % (g.tnx * g.tny);
  const std::int64_t ty = rem / g.tnx;
  const std::int64_t tx = rem % g.tnx;
  TileBox b;
  b.i0 = tx * tile.nx;
  b.j0 = ty * tile.ny;
  b.k0 = tz * tile.nz;
  b.ext = {std::min(tile.nx, s.nx - b.i0), std::min(tile.ny, s.ny - b.j0),
           std::min(tile.nz, s.nz - b.k0)};
  return b;
}

}  // namespace

ChunkedCompressor::ChunkedCompressor(std::unique_ptr<Compressor> inner,
                                     ChunkShape tile)
    : owned_(std::move(inner)), tile_(tile) {
  AMRVIS_REQUIRE_MSG(owned_ != nullptr, "chunked: null inner codec");
  AMRVIS_REQUIRE_MSG(tile_.valid(), "chunked: invalid tile shape");
}

ChunkedCompressor::ChunkedCompressor(const Compressor& inner, ChunkShape tile)
    : borrowed_(&inner), tile_(tile) {
  AMRVIS_REQUIRE_MSG(tile_.valid(), "chunked: invalid tile shape");
}

std::string ChunkedCompressor::name() const {
  return "chunked-" + inner().name();
}

bool ChunkedCompressor::is_chunked_blob(std::span<const std::uint8_t> blob) {
  if (blob.size() < sizeof(kMagic)) return false;
  std::uint32_t magic;
  std::memcpy(&magic, blob.data(), sizeof(magic));
  return magic == kMagic;
}

Bytes ChunkedCompressor::compress(View3<const double> data,
                                  double abs_eb) const {
  const Shape3 s = data.shape();
  const TileGrid grid = tile_grid(s, tile_);
  const std::int64_t ntiles = grid.count();

  // Fixed tile -> slot mapping: blobs land in their slot regardless of
  // which thread produced them.
  std::vector<Bytes> blobs(static_cast<std::size_t>(ntiles));
  parallel_for(ntiles, [&](std::int64_t t) {
    const TileBox b = tile_box(t, grid, s, tile_);
    Array3<double> tdata(b.ext);
    for (std::int64_t dz = 0; dz < b.ext.nz; ++dz)
      for (std::int64_t dy = 0; dy < b.ext.ny; ++dy)
        std::memcpy(&tdata(0, dy, dz), &data(b.i0, b.j0 + dy, b.k0 + dz),
                    static_cast<std::size_t>(b.ext.nx) * sizeof(double));
    blobs[static_cast<std::size_t>(t)] =
        inner().compress(tdata.view(), abs_eb);
  });

  // Serial concatenation in slot order keeps the container byte-identical
  // across thread counts.
  const std::string codec = inner().name();
  Bytes out;
  ByteWriter w(out);
  w.put<std::uint32_t>(kMagic);
  w.put<std::uint16_t>(kVersion);
  w.put<std::uint16_t>(static_cast<std::uint16_t>(codec.size()));
  // Byte-at-a-time: a range insert from the string's SSO buffer trips a
  // gcc-12 -Warray-bounds false positive under -Werror.
  for (const char c : codec) w.put<std::uint8_t>(static_cast<std::uint8_t>(c));
  w.put<std::int64_t>(s.nx);
  w.put<std::int64_t>(s.ny);
  w.put<std::int64_t>(s.nz);
  w.put<std::int64_t>(tile_.nx);
  w.put<std::int64_t>(tile_.ny);
  w.put<std::int64_t>(tile_.nz);
  w.put<std::uint64_t>(static_cast<std::uint64_t>(ntiles));
  for (const Bytes& b : blobs) w.put<std::uint64_t>(b.size());
  for (const Bytes& b : blobs) w.put_bytes(b);
  return out;
}

Array3<double> ChunkedCompressor::decompress(
    std::span<const std::uint8_t> blob) const {
  ByteReader r(blob);
  AMRVIS_REQUIRE_MSG(r.get<std::uint32_t>() == kMagic,
                     "chunked: bad container magic");
  AMRVIS_REQUIRE_MSG(r.get<std::uint16_t>() == kVersion,
                     "chunked: unsupported container version");
  const auto name_len = r.get<std::uint16_t>();
  const auto name_bytes = r.get_bytes(name_len);
  const std::string codec(reinterpret_cast<const char*>(name_bytes.data()),
                          name_bytes.size());
  AMRVIS_REQUIRE_MSG(codec == inner().name(),
                     "chunked: codec mismatch (container says '" + codec +
                         "', decoding with '" + inner().name() + "')");

  Shape3 s;
  s.nx = r.get<std::int64_t>();
  s.ny = r.get<std::int64_t>();
  s.nz = r.get<std::int64_t>();
  ChunkShape tile;
  tile.nx = r.get<std::int64_t>();
  tile.ny = r.get<std::int64_t>();
  tile.nz = r.get<std::int64_t>();
  // Per-axis bound first, then the cell cap via division so the product
  // itself can never overflow int64 on a corrupt header (2^24 cubed would).
  AMRVIS_REQUIRE_MSG(s.valid() && s.nx <= kMaxDim && s.ny <= kMaxDim &&
                         s.nz <= kMaxDim && s.ny <= kMaxCells / s.nx &&
                         s.nz <= kMaxCells / (s.nx * s.ny),
                     "chunked: implausible field shape");
  AMRVIS_REQUIRE_MSG(tile.valid() && tile.nx <= kMaxDim &&
                         tile.ny <= kMaxDim && tile.nz <= kMaxDim,
                     "chunked: implausible tile shape");

  // Tiles per axis never exceed cells per axis (tile extents >= 1), so
  // the count is bounded by the validated cell count — no overflow.
  const TileGrid grid = tile_grid(s, tile);
  const std::int64_t ntiles = grid.count();
  AMRVIS_REQUIRE_MSG(
      r.get<std::uint64_t>() == static_cast<std::uint64_t>(ntiles),
      "chunked: tile count does not match shape/tile header");
  // The size table must fit in what the blob actually carries before any
  // ntiles-sized allocation happens: a ~90-byte corrupt header must not
  // be able to force a multi-GiB vector (same class as the lzss out_size
  // cap).
  AMRVIS_REQUIRE_MSG(
      r.remaining() / sizeof(std::uint64_t) >=
          static_cast<std::uint64_t>(ntiles),
      "chunked: tile size table exceeds container");

  std::vector<std::uint64_t> sizes(static_cast<std::size_t>(ntiles));
  for (auto& sz : sizes) sz = r.get<std::uint64_t>();
  // Slice the payload serially; get_bytes bounds-checks every size against
  // the remaining payload, so corrupt sizes throw here instead of reading
  // out of bounds in the parallel region.
  std::vector<std::span<const std::uint8_t>> tiles(
      static_cast<std::size_t>(ntiles));
  for (std::int64_t t = 0; t < ntiles; ++t)
    tiles[static_cast<std::size_t>(t)] =
        r.get_bytes(static_cast<std::size_t>(sizes[static_cast<std::size_t>(t)]));
  AMRVIS_REQUIRE_MSG(r.remaining() == 0, "chunked: trailing container bytes");

  Array3<double> out(s);
  parallel_for(ntiles, [&](std::int64_t t) {
    const TileBox b = tile_box(t, grid, s, tile);
    const Array3<double> tdata =
        inner().decompress(tiles[static_cast<std::size_t>(t)]);
    AMRVIS_REQUIRE_MSG(tdata.shape() == b.ext,
                       "chunked: tile shape does not match its slot");
    for (std::int64_t dz = 0; dz < b.ext.nz; ++dz)
      for (std::int64_t dy = 0; dy < b.ext.ny; ++dy)
        std::memcpy(&out(b.i0, b.j0 + dy, b.k0 + dz), &tdata(0, dy, dz),
                    static_cast<std::size_t>(b.ext.nx) * sizeof(double));
  });
  return out;
}

}  // namespace amrvis::compress
