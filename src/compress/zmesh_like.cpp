#include "compress/zmesh_like.hpp"

#include "compress/amr_compress.hpp"

namespace amrvis::compress {

Flat1dResult compress_hierarchy_flat1d(const amr::AmrHierarchy& hier,
                                       const Compressor& comp,
                                       double rel_eb) {
  const MinMax mm = hierarchy_min_max(hier);
  const double range =
      mm.range() > 0 ? mm.range() : std::max(std::abs(mm.max), 1.0);
  Flat1dResult out;
  out.abs_eb = rel_eb * range;
  for (int l = 0; l < hier.num_levels(); ++l) {
    std::vector<double> flat;
    for (const amr::FArrayBox& fab : hier.level(l).fabs)
      flat.insert(flat.end(), fab.values().begin(), fab.values().end());
    out.original_cells += static_cast<std::int64_t>(flat.size());
    const View3<const double> view(
        flat.data(), Shape3{static_cast<std::int64_t>(flat.size()), 1, 1});
    out.level_blobs.push_back(comp.compress(view, out.abs_eb));
  }
  return out;
}

std::vector<std::vector<double>> decompress_flat1d(
    const Flat1dResult& compressed, const Compressor& comp) {
  std::vector<std::vector<double>> out;
  for (const Bytes& blob : compressed.level_blobs) {
    Array3<double> data = comp.decompress(blob);
    out.emplace_back(data.span().begin(), data.span().end());
  }
  return out;
}

}  // namespace amrvis::compress
