#pragma once
// On-disk representation of a hierarchy, mirroring the paper's Fig. 3
// storage layout: each AMR level is stored separately (as distinct HDF5
// groups in the paper; as one self-describing binary file per level plus
// a small header file here). Optionally each level's payload is an
// error-bounded compressed blob instead of raw doubles — the "compress
// per level on write, decompress on read" loop of the offline pipeline.

#include <string>

#include "amr/hierarchy.hpp"
#include "compress/compressor.hpp"

namespace amrvis::compress {
using amr::AmrHierarchy;
using amr::AmrLevel;
using amr::Box;
using amr::FArrayBox;
using amr::IntVect;

/// Write `hier` under directory `path` (created by the caller): a
/// `header` file plus `level_<l>.bin` payloads. When `codec` is non-null
/// every patch is compressed at absolute bound `abs_eb`.
void write_plotfile(const std::string& path, const AmrHierarchy& hier,
                    const Compressor* codec = nullptr,
                    double abs_eb = 0.0);

/// Read a plotfile written by write_plotfile. Compressed payloads are
/// decompressed with the codec named in the header (resolved via
/// make_compressor).
AmrHierarchy read_plotfile(const std::string& path);

}  // namespace amrvis::compress
