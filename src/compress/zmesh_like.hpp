#pragma once
// zMesh-style 1-D baseline (Luo et al., IPDPS 2021), discussed in the
// paper's introduction: AMR data is rearranged into a 1-D array before
// compression. The paper's critique — which TAC/AMRIC address — is that
// 1-D flattening "restricts the use of higher-dimension compression,
// leading to a loss of spatial information and data locality". This
// module provides the baseline so benches can quantify that loss against
// the per-patch 3-D path in amr_compress.

#include "amr/hierarchy.hpp"
#include "compress/compressor.hpp"

namespace amrvis::compress {

struct Flat1dResult {
  std::vector<Bytes> level_blobs;     ///< one blob per level
  std::int64_t original_cells = 0;
  double abs_eb = 0.0;

  [[nodiscard]] std::size_t compressed_bytes() const {
    std::size_t n = 0;
    for (const auto& b : level_blobs) n += b.size();
    return n;
  }
  [[nodiscard]] double ratio() const {
    return static_cast<double>(original_cells) * sizeof(double) /
           static_cast<double>(compressed_bytes());
  }
};

/// Flatten each level's patches (in patch order, x-fastest within each)
/// into one 1-D array and compress it with `comp` at relative bound
/// `rel_eb` (range taken over the whole hierarchy, as in amr_compress).
Flat1dResult compress_hierarchy_flat1d(const amr::AmrHierarchy& hier,
                                       const Compressor& comp,
                                       double rel_eb);

/// Decompress and verify shape; returns the per-level flattened arrays.
std::vector<std::vector<double>> decompress_flat1d(
    const Flat1dResult& compressed, const Compressor& comp);

}  // namespace amrvis::compress
