#pragma once
// ZFP-like transform codec (extension / ablation baseline).
//
// The paper cites ZFP (Lindstrom 2014) as the transform-based alternative
// to SZ's prediction-based approach; our benches use this codec to show
// how a transform codec's artifacts differ from both SZ variants. Design
// follows ZFP's structure: 4^3 blocks, block-floating-point conversion to
// integers, the exactly-invertible lifted decorrelating transform applied
// along each axis, then uniform shift-quantization of coefficients and the
// shared Huffman+LZSS entropy stage.
//
// Error control: the coefficient shift is chosen conservatively from the
// requested bound divided by the transform's worst-case reconstruction
// gain, so the absolute bound holds (verified by property tests), at some
// compression-ratio cost versus real ZFP.

#include "compress/compressor.hpp"
#include "compress/lzss.hpp"

namespace amrvis::compress {

class ZfpLikeCompressor final : public Compressor {
 public:
  explicit ZfpLikeCompressor(LzssLevel lzss_level = LzssLevel::kLazy)
      : lzss_level_(lzss_level) {}

  [[nodiscard]] std::string name() const override {
    std::string n = "zfp-like";
    n.append(lzss_level_suffix(lzss_level_));
    return n;
  }
  [[nodiscard]] Bytes compress(View3<const double> data,
                               double abs_eb) const override;
  [[nodiscard]] Array3<double> decompress(
      std::span<const std::uint8_t> blob) const override;

 private:
  LzssLevel lzss_level_;
};

}  // namespace amrvis::compress
