#pragma once
// SZ-L/R: block-based prediction compressor in the style of SZ2
// (Liang et al. 2018), the paper's first algorithm (§3.3).
//
// The input is partitioned into bs^3 blocks (bs = 6 by default). For each
// block the encoder chooses between a first-order 3-D Lorenzo predictor
// and a per-block linear-regression predictor (v ≈ b0 + b1 x + b2 y + b3 z),
// whichever has the smaller estimated absolute error. Residuals go through
// error-controlled linear quantization, canonical Huffman and an LZSS pass.
// Regression coefficients are themselves quantized and delta-encoded
// between consecutive regression blocks.
//
// The block-local prediction is what produces the characteristic
// "block-wise artifacts" the paper analyzes (§3.3, Figs. 9f/11e).

#include "compress/compressor.hpp"
#include "compress/lzss.hpp"

namespace amrvis::compress {

class SzLrCompressor final : public Compressor {
 public:
  explicit SzLrCompressor(int block_size = 6,
                          LzssLevel lzss_level = LzssLevel::kLazy)
      : block_size_(block_size), lzss_level_(lzss_level) {
    AMRVIS_REQUIRE(block_size >= 2);
  }

  [[nodiscard]] std::string name() const override {
    std::string n = "sz-lr";
    n.append(lzss_level_suffix(lzss_level_));
    return n;
  }
  [[nodiscard]] Bytes compress(View3<const double> data,
                               double abs_eb) const override;
  [[nodiscard]] Array3<double> decompress(
      std::span<const std::uint8_t> blob) const override;

  [[nodiscard]] int block_size() const { return block_size_; }

 private:
  int block_size_;
  LzssLevel lzss_level_;
};

}  // namespace amrvis::compress
